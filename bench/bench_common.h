// Shared plumbing for the figure-reproduction benchmarks.
//
// Every bench binary declares its figure as one or more
// harness::ExperimentSpec values and hands them to run_and_report(),
// which executes the (column x point x trial) sweep over a thread pool,
// prints the aligned text table, and persists per-trial CSV (and,
// with --json, JSON) under results/.
//
// Common flags, uniform across every bench:
//   --full         paper-scale sweeps (default: scaled-down, seconds)
//   --seed S       base seed; trial t runs with S + 7*t (harness ladder)
//   --threads N    SweepRunner pool size (default: hardware concurrency)
//   --results-dir D  where CSV/JSON land (default: results)
//   --json         also write JSON results
//   --no-csv       skip CSV output
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "faults/fault_spec.h"
#include "harness/experiment.h"
#include "harness/sinks.h"
#include "harness/stacks.h"
#include "harness/sweep.h"
#include "sched/fluid.h"
#include "workload/workload.h"

namespace pdq::bench {

struct BenchArgs {
  bool full = false;
  /// --scale: the streaming-mode 100k-flow scale point (fig13). Implied
  /// by --full; on its own it adds only the scale table to a quick run.
  bool scale = false;
  std::optional<std::uint64_t> seed;
  int threads = 0;  // 0 = hardware concurrency
  std::string results_dir = "results";
  bool json = false;
  bool csv = true;
  /// --load override for the dynamic-traffic load sweep (fig14); empty =
  /// the bench's default points. Other benches accept and ignore it.
  std::vector<double> loads;
  /// --timeline preset for the dynamic-traffic benches:
  /// both|incast|failure|none. Other benches accept and ignore it.
  std::string timeline = "both";
  /// --faults preset (faults/fault_spec.h): off|loss|burst|ctrl|flap|
  /// reset|chaos. "off" (the default) leaves every run byte-identical
  /// to the historical no-fault path; anything else arms the fault
  /// plane and the run auditor on every sweep sample.
  std::string faults = "off";
  /// --shards N: shard count for the conservative-parallel engine
  /// (sim/sharded.h). 1 (the default) keeps every run on the historical
  /// single-queue engine byte-for-byte; fig13 adds a sharded-engine
  /// counter table when N > 1. Other benches accept and ignore it.
  int shards = 1;

  /// The armed fault plane for --faults, or null for "off".
  std::shared_ptr<const faults::FaultSpec> fault_plane() const {
    return faults::FaultSpec::preset(faults);
  }

  /// The base seed: --seed when given, else the bench's default.
  std::uint64_t seed_or(
      std::uint64_t dflt = harness::kDefaultBaseSeed) const {
    return seed.value_or(dflt);
  }
};

/// The single source of truth for every bench binary's --help flag block
/// (the satellite of docs/workloads.md). One row per flag; print_usage()
/// and the fixed-scenario help (fixed_scenario_help()) both render it.
struct FlagDoc {
  const char* spec;  // "--flag VALUE"
  const char* help;
};

inline constexpr FlagDoc kFlagTable[] = {
    {"--full", "paper-scale sweeps (default: scaled-down)"},
    {"--scale",
     "streaming-mode 100k-flow scale table (fig13; implied by --full; "
     "others accept and ignore)"},
    {"--seed S", "base seed; trial t runs with S + 7*t"},
    {"--threads N", "SweepRunner pool size (default: hw concurrency)"},
    {"--results-dir D", "where CSV/JSON land (default: results)"},
    {"--json", "also write JSON results"},
    {"--no-csv", "skip CSV output"},
    {"--load L[,L...]",
     "offered-load sweep points, rho in (0,1) (dynamic-traffic benches; "
     "others accept and ignore)"},
    {"--timeline T",
     "timeline preset both|incast|failure|none (dynamic-traffic benches; "
     "others accept and ignore)"},
    {"--faults F",
     "fault-plane preset off|loss|burst|ctrl|flap|reset|chaos (default "
     "off: byte-identical to the no-fault path)"},
    {"--shards N",
     "sharded-engine worker count, bit-identical to shards=1 (fig13 adds "
     "a sharded counter table; others accept and ignore)"},
};

inline constexpr const char* kCounterGlossary =
    "Engine-counter tables (fig13/fig14 and BENCH_engine.json) report,\n"
    "per sweep point: events (executed), ev/flow (events per completed\n"
    "flow), coalesced (events elided by per-hop transmit coalescing),\n"
    "scans (flow-list entries visited by the switch fast path),\n"
    "scan/pkt (scans per packet acquire — flat when the PDQ switch is\n"
    "O(1) amortized), pkt_allocs and recycle%, plus the memory peaks:\n"
    "peak_pending (event-queue high-water), pool_highwater (in-flight\n"
    "packet high-water) and peak_flow_bytes (live transport-agent\n"
    "footprint high-water — sublinear in total flows under streaming\n"
    "mode). Sharded runs (--shards) add sync_rounds (conservative\n"
    "windows dispatched), ring_handoffs (cross-shard records),\n"
    "shard_threads (distinct worker threads that executed events — the\n"
    "parallelism proof) and lookahead_ns (the conservative-sync window\n"
    "slack). Deterministic operation/object counts only; wall time is\n"
    "never measured or asserted (single-core CI).\n";

inline void print_flag_block(std::FILE* out) {
  for (const auto& f : kFlagTable) {
    std::fprintf(out, "  %-18s %s\n", f.spec, f.help);
  }
}

inline void print_usage(const char* prog, std::FILE* out) {
  std::fprintf(out, "usage: %s [flags]\n\n", prog);
  print_flag_block(out);
  std::fprintf(out, "\n%s", kCounterGlossary);
}

/// --help handling for the fixed-scenario benches (fig1/fig6/fig7):
/// prints `what` plus the shared flag block and returns true when the
/// caller should exit. Other flags are accepted and ignored there.
inline bool fixed_scenario_help(int argc, char** argv, const char* what) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s\n\n%s; takes no tuning flags (the shared flags "
          "below\napply to the sweep benches and are accepted and "
          "ignored here).\n\n",
          argv[0], what);
      print_flag_block(stdout);
      std::printf("\n%s", kCounterGlossary);
      return true;
    }
  }
  return false;
}

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs a;
  auto value = [&](int& i) -> const char* {
    if (++i >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i - 1]);
      std::exit(2);
    }
    return argv[i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") a.full = true;
    else if (arg == "--scale") a.scale = true;
    else if (arg == "--seed") a.seed = static_cast<std::uint64_t>(std::strtoull(value(i), nullptr, 10));
    else if (arg == "--threads") a.threads = std::atoi(value(i));
    else if (arg == "--results-dir") a.results_dir = value(i);
    else if (arg == "--json") a.json = true;
    else if (arg == "--no-csv") a.csv = false;
    else if (arg == "--load") {
      const std::string list = value(i);
      std::size_t pos = 0;
      while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string tok =
            list.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        const double rho = std::strtod(tok.c_str(), nullptr);
        if (!(rho > 0.0 && rho < 1.0)) {
          std::fprintf(stderr, "--load: %s is not in (0,1)\n", tok.c_str());
          std::exit(2);
        }
        a.loads.push_back(rho);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--timeline") {
      a.timeline = value(i);
      if (a.timeline != "both" && a.timeline != "incast" &&
          a.timeline != "failure" && a.timeline != "none") {
        std::fprintf(stderr,
                     "--timeline: %s is not both|incast|failure|none\n",
                     a.timeline.c_str());
        std::exit(2);
      }
    } else if (arg == "--faults") {
      a.faults = value(i);
      std::string error;
      faults::FaultSpec::preset(a.faults, &error);
      if (!error.empty()) {
        std::fprintf(stderr, "--faults: %s\n", error.c_str());
        std::exit(2);
      }
    } else if (arg == "--shards") {
      a.shards = std::atoi(value(i));
      if (a.shards < 1 || a.shards > 14) {
        std::fprintf(stderr, "--shards: %d is not in [1, 14]\n", a.shards);
        std::exit(2);
      }
    } else if (arg == "--help" || arg == "-h") {
      print_usage(argv[0], stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument %s\n", arg.c_str());
      print_usage(argv[0], stderr);
      std::exit(2);
    }
  }
  return a;
}

/// Fresh stack by registry name; exits with the registry's error message
/// (listing the available stacks) on an unknown name.
inline std::unique_ptr<harness::ProtocolStack> make_stack(
    const std::string& name, const harness::StackOptions& options = {}) {
  std::string error;
  auto stack = harness::StackRegistry::global().make(name, options, &error);
  if (stack == nullptr) {
    std::fprintf(stderr, "%s\n", error.c_str());
    std::exit(2);
  }
  return stack;
}

/// The paper's seven single-path transports, in figure-legend order.
/// Registry additions beyond the paper set are excluded BY NAME and ON
/// PURPOSE: "M-PDQ" and "DCTCP" joining would change the column sets of
/// the historical fig3/fig4 tables and break their golden outputs
/// (tests/bench_golden_test.cc). M-PDQ is compared in fig10, DCTCP in
/// fig15. The exclusion list is pinned by
/// tests/bench_contract_test.cc — extend that test (and the goldens)
/// deliberately if a new stack should join the default set.
inline std::vector<std::string> all_stacks() {
  std::vector<std::string> v;
  for (const auto& name : harness::StackRegistry::global().names()) {
    if (name != "M-PDQ" && name != "DCTCP") v.push_back(name);
  }
  return v;
}

inline std::vector<std::string> main_stacks() {
  return {"PDQ(Full)", "D3", "RCP", "TCP"};
}

/// Persists CSV/JSON per the flags; returns the CSV path (empty if none).
inline std::string write_outputs(const harness::SweepResults& results,
                                 const BenchArgs& args) {
  std::string csv;
  if (args.csv) {
    csv = harness::result_path(args.results_dir, results.name, "csv");
    harness::CsvSink(csv).write(results);
  }
  if (args.json) {
    harness::JsonSink(
        harness::result_path(args.results_dir, results.name, "json"))
        .write(results);
  }
  return csv;
}

/// Runs the spec (honoring --threads/--seed already baked into it),
/// prints the table, persists CSV/JSON, returns the results.
inline harness::SweepResults run_and_report(const harness::ExperimentSpec& spec,
                                            const BenchArgs& args,
                                            const char* cell_format = " %12.2f",
                                            bool transpose = false) {
  harness::SweepRunner runner(args.threads);
  auto results = runner.run(spec);
  harness::TableSink table(stdout, cell_format);
  table.transpose(transpose);
  table.write(results);
  write_outputs(results, args);
  return results;
}

// ---- engine-counter tables (fig13 and friends) ----

/// One simulation per (scenario label, stack, seed), shared by all
/// counter columns, via the canonical SweepRunner::run_sample recipe
/// (cold PacketPool, so packet_allocs is the run's true in-flight
/// high-water mark — deterministic for any thread count or prior pool
/// warmth). The lock only guards the map; concurrent misses on the same
/// key recompute the identical value.
///
/// CONTRACT: the label must uniquely identify the scenario — a
/// SweepPoint that varies anything beyond topology/workload (options,
/// parameters applied in-place) while reusing the same
/// `topology.name + "/" + workload.name` would silently be served
/// another point's cached counters. Encode every varied knob in one of
/// the names (fig13 bakes the flow count into the workload name).
struct EngineCounterSample {
  harness::EngineCounters engine;
  double completed = 0.0;
};

class EngineCounterCache {
 public:
  EngineCounterSample get(const harness::Scenario& sc,
                          const std::string& label, std::uint64_t seed,
                          const std::string& stack) {
    const auto key = std::make_pair(label + "\x1f" + stack, seed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = cache_.find(key);
      if (it != cache_.end()) return it->second;
    }
    const auto run = harness::SweepRunner::run_sample(sc, stack, {}, seed);
    EngineCounterSample sample;
    sample.engine = run.result.engine;
    sample.completed = static_cast<double>(run.result.completed());
    std::lock_guard<std::mutex> lock(mu_);
    return cache_[key] = sample;
  }

 private:
  std::mutex mu_;
  std::map<std::pair<std::string, std::uint64_t>, EngineCounterSample> cache_;
};

/// The canonical engine-counter columns, shared by fig13 and any other
/// counter-reporting bench (see --help for the column glossary). Each
/// column evaluates from the cached sample of (scenario, seed, stack).
inline std::vector<harness::Column> engine_counter_columns(
    std::shared_ptr<EngineCounterCache> cache, std::string stack) {
  struct Def {
    const char* label;
    double (*read)(const EngineCounterSample&);
  };
  static const Def kDefs[] = {
      {"events",
       [](const EngineCounterSample& s) {
         return static_cast<double>(s.engine.events_executed);
       }},
      {"ev/flow",
       [](const EngineCounterSample& s) {
         return static_cast<double>(s.engine.events_executed) /
                std::max(1.0, s.completed);
       }},
      {"coalesced",
       [](const EngineCounterSample& s) {
         return static_cast<double>(s.engine.events_coalesced);
       }},
      {"scans",
       [](const EngineCounterSample& s) {
         return static_cast<double>(s.engine.flowlist_scan_ops);
       }},
      {"scan/pkt",
       [](const EngineCounterSample& s) {
         return static_cast<double>(s.engine.flowlist_scan_ops) /
                static_cast<double>(std::max<std::uint64_t>(
                    1, s.engine.packet_acquires));
       }},
      {"pkt_allocs",
       [](const EngineCounterSample& s) {
         return static_cast<double>(s.engine.packet_allocs);
       }},
      {"recycle%",
       [](const EngineCounterSample& s) {
         return s.engine.recycle_percent();
       }},
      {"peak_pending",
       [](const EngineCounterSample& s) {
         return static_cast<double>(s.engine.peak_pending_events);
       }},
      {"pool_highwater",
       [](const EngineCounterSample& s) {
         return static_cast<double>(s.engine.pool_highwater);
       }},
      {"peak_flow_bytes",
       [](const EngineCounterSample& s) {
         return static_cast<double>(s.engine.peak_flow_bytes);
       }},
  };
  std::vector<harness::Column> columns;
  for (const auto& def : kDefs) {
    harness::Column c;
    c.label = def.label;
    c.evaluate = [cache, stack, read = def.read](const harness::Scenario& sc,
                                                 std::uint64_t seed) {
      return read(cache->get(
          sc, sc.topology.name + "/" + sc.workload.name, seed, stack));
    };
    columns.push_back(std::move(c));
  }
  return columns;
}

/// Sharded-engine counter columns (fig13's --shards table): the window/
/// handoff costs of conservative sync plus the distinct-worker-thread
/// proof. `events` repeats the executed count so the table reads
/// standalone. The caller encodes the shard count in the scenario's
/// options (EngineCounterCache label contract: use a fresh cache per
/// table, or bake the count into the workload name).
inline std::vector<harness::Column> shard_counter_columns(
    std::shared_ptr<EngineCounterCache> cache, std::string stack) {
  struct Def {
    const char* label;
    double (*read)(const EngineCounterSample&);
  };
  static const Def kDefs[] = {
      {"events",
       [](const EngineCounterSample& s) {
         return static_cast<double>(s.engine.events_executed);
       }},
      {"sync_rounds",
       [](const EngineCounterSample& s) {
         return static_cast<double>(s.engine.sync_rounds);
       }},
      {"ring_handoffs",
       [](const EngineCounterSample& s) {
         return static_cast<double>(s.engine.ring_handoffs);
       }},
      {"shard_threads",
       [](const EngineCounterSample& s) {
         return static_cast<double>(s.engine.shard_threads);
       }},
      {"lookahead_ns",
       [](const EngineCounterSample& s) {
         return static_cast<double>(s.engine.lookahead_ns);
       }},
  };
  std::vector<harness::Column> columns;
  for (const auto& def : kDefs) {
    harness::Column c;
    c.label = def.label;
    c.evaluate = [cache, stack, read = def.read](const harness::Scenario& sc,
                                                 std::uint64_t seed) {
      return read(cache->get(
          sc, sc.topology.name + "/" + sc.workload.name, seed, stack));
    };
    columns.push_back(std::move(c));
  }
  return columns;
}

/// Wraps an already-computed grid (e.g. from a binary search per cell,
/// where values are not independent (point x trial) samples) as
/// SweepResults so the sinks apply uniformly. cells[point][column].
inline harness::SweepResults grid_results(
    std::string name, std::string axis, std::string metric,
    std::vector<std::string> columns, std::vector<std::string> points,
    const std::vector<std::vector<double>>& cells, std::uint64_t base_seed) {
  harness::SweepResults r;
  r.name = std::move(name);
  r.axis = std::move(axis);
  r.metric = std::move(metric);
  r.columns = std::move(columns);
  r.points = std::move(points);
  r.base_seed = base_seed;
  r.seeds = {base_seed};
  for (const auto& row : cells) {
    std::vector<std::vector<double>> cols;
    for (double v : row) cols.push_back({v});
    r.samples.push_back(std::move(cols));
  }
  return r;
}

// ---- table printing for the non-sweep (time-series) benches ----

inline void print_header(const char* xlabel,
                         const std::vector<std::string>& cols) {
  std::printf("%-14s", xlabel);
  for (const auto& c : cols) std::printf(" %12s", c.c_str());
  std::printf("\n");
}

inline void print_row(const std::string& x, const std::vector<double>& cells,
                      const char* fmt = " %12.2f") {
  std::printf("%-14s", x.c_str());
  for (double v : cells) std::printf(fmt, v);
  std::printf("\n");
}

}  // namespace pdq::bench
