// Shared plumbing for the figure-reproduction benchmarks.
//
// Every bench binary prints the paper figure's series as an aligned text
// table. Default parameters are scaled to finish in seconds; pass --full
// for paper-scale sweeps.
#pragma once

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/stacks.h"
#include "sched/fluid.h"
#include "workload/workload.h"

namespace pdq::bench {

inline bool full_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) return true;
  }
  return false;
}

/// Factory for a fresh stack by short name (stacks keep per-run state, so
/// benches construct one per run).
inline std::unique_ptr<harness::ProtocolStack> make_stack(
    const std::string& name) {
  using namespace harness;
  if (name == "PDQ(Full)") return std::make_unique<PdqStack>(core::PdqConfig::full(), name);
  if (name == "PDQ(ES+ET)") return std::make_unique<PdqStack>(core::PdqConfig::es_et(), name);
  if (name == "PDQ(ES)") return std::make_unique<PdqStack>(core::PdqConfig::es(), name);
  if (name == "PDQ(Basic)") return std::make_unique<PdqStack>(core::PdqConfig::basic(), name);
  if (name == "D3") return std::make_unique<D3Stack>();
  if (name == "RCP") return std::make_unique<RcpStack>();
  if (name == "TCP") return std::make_unique<TcpStack>();
  std::fprintf(stderr, "unknown stack %s\n", name.c_str());
  std::abort();
}

inline const std::vector<std::string>& all_stacks() {
  static const std::vector<std::string> v{
      "PDQ(Full)", "PDQ(ES+ET)", "PDQ(ES)", "PDQ(Basic)",
      "D3",        "RCP",        "TCP"};
  return v;
}

inline const std::vector<std::string>& main_stacks() {
  static const std::vector<std::string> v{"PDQ(Full)", "D3", "RCP", "TCP"};
  return v;
}

/// Query-aggregation run: n deadline/no-deadline flows into one receiver
/// over the single-bottleneck topology (the paper's S5.2 setting).
struct AggregationSpec {
  int num_flows = 5;
  std::int64_t size_lo = 2'000;
  std::int64_t size_hi = 198'000;
  bool deadlines = true;
  sim::Time deadline_mean = 20 * sim::kMillisecond;
  sim::Time deadline_floor = 3 * sim::kMillisecond;
  std::uint64_t seed = 1;
};

inline std::vector<net::FlowSpec> aggregation_flows(const AggregationSpec& a,
                                                    int num_servers) {
  sim::Rng rng(a.seed);
  auto size = workload::uniform_size(a.size_lo, a.size_hi);
  auto dl = workload::exp_deadline(a.deadline_mean, a.deadline_floor);
  std::vector<net::FlowSpec> flows;
  for (int i = 0; i < a.num_flows; ++i) {
    net::FlowSpec f;
    f.id = i + 1;
    f.size_bytes = size(rng);
    if (a.deadlines) f.deadline = dl(rng);
    // src/dst filled by run_aggregation; store sender index in src.
    f.src = i % num_servers;
    flows.push_back(f);
  }
  return flows;
}

inline harness::RunResult run_aggregation(harness::ProtocolStack& stack,
                                          const AggregationSpec& a) {
  const int senders = std::max(1, std::min(a.num_flows, 32));
  auto flows = aggregation_flows(a, senders);
  auto build = [&](net::Topology& t) {
    auto servers = net::build_single_bottleneck(t, senders);
    for (auto& f : flows) {
      f.src = servers[static_cast<std::size_t>(f.src)];
      f.dst = servers.back();
    }
    return servers;
  };
  harness::RunOptions opts;
  opts.horizon = 30 * sim::kSecond;
  opts.seed = a.seed;
  return harness::run_scenario(stack, build, flows, opts);
}

/// The paper's omniscient Optimal on the same flow set: EDF +
/// Moore-Hodgson (deadlines) or SRPT (mean FCT), on the bottleneck link.
inline std::vector<sched::Job> to_jobs(const std::vector<net::FlowSpec>& fl) {
  std::vector<sched::Job> jobs;
  for (const auto& f : fl) {
    jobs.push_back({f.size_bytes, f.start_time, f.absolute_deadline(),
                    static_cast<int>(f.id)});
  }
  return jobs;
}

inline double optimal_app_throughput(const AggregationSpec& a) {
  auto flows = aggregation_flows(a, std::max(1, std::min(a.num_flows, 32)));
  return sched::optimal_application_throughput(to_jobs(flows), 1e9);
}

inline double optimal_mean_fct_ms(const AggregationSpec& a) {
  auto flows = aggregation_flows(a, std::max(1, std::min(a.num_flows, 32)));
  return sched::optimal_mean_fct_ms(to_jobs(flows), 1e9);
}

/// Averages a metric over `trials` seeds.
inline double average_over_seeds(int trials,
                                 const std::function<double(std::uint64_t)>& f) {
  double total = 0;
  for (int t = 0; t < trials; ++t) {
    total += f(static_cast<std::uint64_t>(1000 + 7 * t));
  }
  return total / trials;
}

// ---- table printing ----

inline void print_header(const char* xlabel,
                         const std::vector<std::string>& cols) {
  std::printf("%-14s", xlabel);
  for (const auto& c : cols) std::printf(" %12s", c.c_str());
  std::printf("\n");
}

inline void print_row(const std::string& x, const std::vector<double>& cells,
                      const char* fmt = " %12.2f") {
  std::printf("%-14s", x.c_str());
  for (double v : cells) std::printf(fmt, v);
  std::printf("\n");
}

}  // namespace pdq::bench
