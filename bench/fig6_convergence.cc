// Figure 6: convergence dynamics. Five ~1 MB flows start together; PDQ
// serves them one at a time with seamless switchovers. Prints the
// per-millisecond series behind Fig 6a (per-flow throughput), 6b
// (bottleneck utilization) and 6c (queue, normalized to data packets).
#include "bench_common.h"
#include <string_view>

using namespace pdq;
using namespace pdq::bench;

int main(int argc, char** argv) {
  if (fixed_scenario_help(
          argc, argv, "Fixed five-flow convergence time series (Figure 6)")) {
    return 0;
  }  // other flags are accepted and ignored (fixed scenario)

  std::vector<net::FlowSpec> flows;
  for (int i = 0; i < 5; ++i) {
    net::FlowSpec f;
    f.id = i + 1;
    f.size_bytes = 1'000'000 + i * 1000;  // smaller index = more critical
    flows.push_back(f);
  }
  auto stack = bench::make_stack("PDQ(Full)");
  auto build = [&](net::Topology& t) {
    auto servers = net::build_single_bottleneck(t, 5);
    for (int i = 0; i < 5; ++i) {
      flows[static_cast<std::size_t>(i)].src =
          servers[static_cast<std::size_t>(i)];
      flows[static_cast<std::size_t>(i)].dst = servers.back();
    }
    return servers;
  };
  harness::RunOptions opts;
  opts.horizon = sim::kSecond;
  opts.watch_link = std::make_pair(net::NodeId{0}, net::NodeId{6});
  opts.per_flow_series = true;
  auto r = harness::run_scenario(*stack, build, flows, opts);

  std::printf("Fig 6: 5 x ~1 MB flows, single 1 Gbps bottleneck\n\n");
  std::printf("%4s %7s %7s %7s %7s %7s | %8s %10s\n", "ms", "f1", "f2", "f3",
              "f4", "f5", "util[%]", "queue[pkt]");
  const std::size_t bins = r.flow_goodput_bps[0].size();
  for (std::size_t b = 0; b < bins && b < 46; ++b) {
    std::printf("%4zu", b);
    for (const auto& s : r.flow_goodput_bps) {
      std::printf(" %7.0f", b < s.size() ? s[b] / 1e6 : 0.0);
    }
    const double util =
        b < r.link_utilization.size() ? 100.0 * r.link_utilization[b] : 0.0;
    const double qpkts =
        r.queue_series.time_average(
            static_cast<sim::Time>(b) * sim::kMillisecond,
            static_cast<sim::Time>(b + 1) * sim::kMillisecond) /
        1516.0;
    std::printf(" | %8.1f %10.2f\n", util, qpkts);
  }

  std::printf("\nper-flow completion [ms]:");
  for (const auto& f : r.flows)
    std::printf(" %.2f", sim::to_millis(f.completion_time()));
  std::printf("\ndrops: %lld\n", static_cast<long long>(r.queue_drops));
  std::printf(
      "\nExpected (paper): flows finish one by one at ~8.5/17/25.5/34/42 ms\n"
      "(ideal 40 ms + 2-RTT init + ~3%% header overhead), ~100%% bottleneck\n"
      "utilization across switchovers, queue of only a few packets, no "
      "drops.\n");
  return 0;
}
