// Figure 13 (beyond-paper): datacenter-scale engine sweep.
//
// Runs thousands of flows over k-ary fat-trees and a DCell server-centric
// fabric — the regime inter-datacenter studies (Zeng) and DCell analyses
// evaluate in — to exercise the pooled-packet/lean-event-queue hot path
// at production scale. Perf is reported as *operation counts*
// (events processed, packet allocations, pool recycle rate): this
// repository's CI is single-core, so wall time is never asserted or
// reported as a metric.
//
// Table 1 (fig13_datacenter_scale): flows completed per stack.
// Table 2 (fig13_engine_counters): engine counters for the lead stack,
// computed once per point via a memoized evaluate column and exported as
// the BENCH_engine.json CI artifact (--json).
#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

harness::Scenario dc_scenario(harness::TopologySpec topo, int num_flows) {
  workload::FlowSetOptions w;
  w.num_flows = num_flows;
  // Mice-dominated short transfers arriving as a Poisson process: the
  // flow count, not per-flow byte volume, is the scale axis.
  w.size = workload::uniform_size(2'000, 30'000);
  w.pattern = workload::staggered_prob(0.5, 4);
  w.arrival_rate_per_sec = 5000.0;
  harness::Scenario s;
  s.topology = std::move(topo);
  s.workload = harness::WorkloadSpec::flow_set(
      w, "dc-mice/" + std::to_string(num_flows));
  s.options.horizon = 120 * sim::kSecond;
  return s;
}

struct Point {
  std::string label;
  harness::TopologySpec topo;
  int flows;
};

/// One simulation per (point, seed), shared by the three counter
/// columns, via the canonical SweepRunner::run_sample recipe (cold
/// PacketPool, so packet_allocs is the run's true in-flight high-water
/// mark — deterministic for any thread count or prior pool warmth).
/// The lock only guards the map; concurrent misses on the same key
/// recompute the identical value.
struct CounterCache {
  std::mutex mu;
  std::map<std::pair<std::string, std::uint64_t>, harness::EngineCounters>
      cache;

  harness::EngineCounters get(const harness::Scenario& sc,
                              const std::string& label, std::uint64_t seed,
                              const std::string& stack) {
    const auto key = std::make_pair(label, seed);
    {
      std::lock_guard<std::mutex> lock(mu);
      auto it = cache.find(key);
      if (it != cache.end()) return it->second;
    }
    const harness::EngineCounters counters =
        harness::SweepRunner::run_sample(sc, stack, {}, seed).result.engine;
    std::lock_guard<std::mutex> lock(mu);
    return cache[key] = counters;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const std::uint64_t base_seed = args.seed_or();

  std::vector<Point> points = {
      {"ft4/1k", harness::TopologySpec::fat_tree(4), 1000},
      {"dcell21/1k", harness::TopologySpec::dcell(2, 1), 1000},
      {"ft8/10k", harness::TopologySpec::fat_tree(8), 10000},
  };
  if (args.full) {
    points.insert(points.end(),
                  {{"ft4/5k", harness::TopologySpec::fat_tree(4), 5000},
                   {"ft8/5k", harness::TopologySpec::fat_tree(8), 5000},
                   {"dcell21/10k", harness::TopologySpec::dcell(2, 1),
                    10000}});
  }

  // --- Table 1: flows completed per stack ---
  std::printf(
      "Fig 13: datacenter-scale sweep — flows completed (of scheduled)\n"
      "per protocol stack; fat-tree k=4/8 and DCell(2,1).\n\n");
  harness::ExperimentSpec spec;
  spec.name = "fig13_datacenter_scale";
  spec.axis = "topology/flows";
  spec.metric = harness::metrics::completed();
  spec.trials = 1;
  spec.base_seed = base_seed;
  spec.base = dc_scenario(harness::TopologySpec::fat_tree(4), 1000);
  for (const char* name : {"PDQ(Full)", "RCP", "TCP"}) {
    spec.columns.push_back(harness::stack_column(name));
  }
  for (const auto& pt : points) {
    harness::SweepPoint p;
    p.label = pt.label;
    p.apply = [topo = pt.topo, flows = pt.flows](harness::Scenario& s) {
      s = dc_scenario(topo, flows);
    };
    spec.points.push_back(std::move(p));
  }
  run_and_report(spec, args, " %12.0f");

  // --- Table 2: engine operation counters, lead stack (PDQ(Full)) ---
  std::printf(
      "\nFig 13 engine counters (PDQ(Full)): operation counts, the perf\n"
      "currency on single-core CI (no wall-time metrics anywhere).\n\n");
  auto cache = std::make_shared<CounterCache>();
  harness::ExperimentSpec counters;
  counters.name = "fig13_engine_counters";
  counters.axis = "topology/flows";
  counters.metric = harness::metrics::events_processed();
  counters.trials = 1;
  counters.base_seed = base_seed;
  counters.base = spec.base;
  struct CounterCol {
    const char* label;
    double (*read)(const harness::EngineCounters&);
  };
  const CounterCol cols[] = {
      {"events", [](const harness::EngineCounters& e) {
         return static_cast<double>(e.events_executed);
       }},
      {"pkt_allocs", [](const harness::EngineCounters& e) {
         return static_cast<double>(e.packet_allocs);
       }},
      {"recycle%", [](const harness::EngineCounters& e) {
         return e.recycle_percent();
       }},
  };
  for (const auto& col : cols) {
    harness::Column c;
    c.label = col.label;
    c.evaluate = [cache, read = col.read](const harness::Scenario& sc,
                                          std::uint64_t seed) {
      return read(cache->get(sc, sc.topology.name + "/" +
                                     sc.workload.name,
                             seed, "PDQ(Full)"));
    };
    counters.columns.push_back(std::move(c));
  }
  for (const auto& pt : points) {
    harness::SweepPoint p;
    p.label = pt.label;
    p.apply = [topo = pt.topo, flows = pt.flows](harness::Scenario& s) {
      s = dc_scenario(topo, flows);
    };
    counters.points.push_back(std::move(p));
  }
  run_and_report(counters, args, " %12.0f");
  std::printf(
      "\nExpected shape: events scale ~linearly with flows; pkt_allocs\n"
      "(measured on a cold pool) is the run's in-flight packet\n"
      "high-water mark, orders of magnitude below acquires — recycle%%\n"
      "near 100 means steady state allocates nothing.\n");
  return 0;
}
