// Figure 13 (beyond-paper): datacenter-scale engine sweep.
//
// Runs thousands of flows over k-ary fat-trees and a DCell server-centric
// fabric — the regime inter-datacenter studies (Zeng) and DCell analyses
// evaluate in — to exercise the pooled-packet/lean-event-queue hot path
// at production scale. Perf is reported as *operation counts*
// (events processed, events coalesced, flow-list scan ops, packet
// allocations, pool recycle rate): this repository's CI is single-core,
// so wall time is never asserted or reported as a metric.
//
// Table 1 (fig13_datacenter_scale): flows completed per stack.
// Table 2 (fig13_engine_counters): engine counters for the lead stack
// via the shared bench_common.h counter columns, computed once per point
// through a memoized EngineCounterCache and exported as the
// BENCH_engine.json CI artifact (--json). `scan/pkt` staying flat as the
// flow count grows 1k -> 10k is the O(1)-amortized switch fast path;
// `coalesced` counts the per-hop events the transmitter elided.
// Table 3 (fig13_scale_streaming, --full or --scale): the 100k-flow
// streaming-mode scale point — web-search sizes scaled 1:100 arriving
// open-loop on a k=8 fat-tree, run with ExperimentSpec::streaming_metrics
// so completed flows retire and per-flow memory stays bounded by the
// *active* flow population. Streaming runs chain flow-creation events
// through reserved sequence numbers (scenario.cc), so peak_pending is
// O(active) too; it joins peak_flow_bytes and pool_highwater as gated
// CI artifacts.
// Table 4 (fig13_scale_hybrid, --full or --scale): the hybrid
// packet/fluid backend (RunOptions::hybrid) — elephants cross the fluid
// middle at their equilibrium rates while mice and every scheduling
// decision stay packet-level. Row 1 repeats Table 3's exact workload
// with hybrid on, so its ev/flow drop is the like-for-like fast-forward
// win; row 2 is the million-flow k=16 point. ev/flow is the headline
// gated counter.
#include <memory>

#include "bench_common.h"
#include "stats/streaming.h"
#include "workload/arrivals.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

harness::Scenario dc_scenario(harness::TopologySpec topo, int num_flows) {
  workload::FlowSetOptions w;
  w.num_flows = num_flows;
  // Mice-dominated short transfers arriving as a Poisson process: the
  // flow count, not per-flow byte volume, is the scale axis.
  w.size = workload::uniform_size(2'000, 30'000);
  w.pattern = workload::staggered_prob(0.5, 4);
  w.arrival_rate_per_sec = 5000.0;
  harness::Scenario s;
  s.topology = std::move(topo);
  s.workload = harness::WorkloadSpec::flow_set(
      w, "dc-mice/" + std::to_string(num_flows));
  s.options.horizon = 120 * sim::kSecond;
  return s;
}

struct Point {
  std::string label;
  harness::TopologySpec topo;
  int flows;
};

// The scale-point scenario: `num_flows` open-loop arrivals on a k=8
// fat-tree with web-search sizes scaled 1:100 (every CDF knot divided by
// 100, mean ~17 KB) so 100k flows stay a minutes-scale single-core run
// while keeping the mice/elephant shape. The flow count is baked into
// the workload name (EngineCounterCache key contract).
harness::Scenario scale_scenario(int num_flows, int fat_tree_k = 8,
                                 double arrivals_per_sec = 10'000.0) {
  // Keep the CDF alive for the loop: points() returns a reference into
  // the object, so iterating web_search().points() directly would walk
  // a destroyed temporary.
  const workload::EmpiricalCdf ws = workload::EmpiricalCdf::web_search();
  std::vector<workload::EmpiricalCdf::Point> pts;
  for (const auto& p : ws.points()) {
    pts.push_back({p.bytes / 100.0, p.cum});
  }
  workload::OpenLoopOptions w;
  w.num_flows = num_flows;
  w.size = workload::EmpiricalCdf::from_points(std::move(pts)).sampler();
  w.arrivals = workload::ArrivalProcess::poisson(arrivals_per_sec);
  w.pattern = workload::staggered_prob(0.5, 4);
  harness::Scenario s;
  s.topology = harness::TopologySpec::fat_tree(fat_tree_k);
  const std::string count = num_flows >= 1'000'000
                                ? std::to_string(num_flows / 1'000'000) + "M"
                                : std::to_string(num_flows / 1000) + "k";
  s.workload = harness::WorkloadSpec::open_loop(w, "ws-scaled100/" + count);
  s.options.horizon = 60 * sim::kSecond;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const std::uint64_t base_seed = args.seed_or();

  std::vector<Point> points = {
      {"ft4/1k", harness::TopologySpec::fat_tree(4), 1000},
      {"dcell21/1k", harness::TopologySpec::dcell(2, 1), 1000},
      {"ft8/10k", harness::TopologySpec::fat_tree(8), 10000},
  };
  if (args.full) {
    points.insert(points.end(),
                  {{"ft4/5k", harness::TopologySpec::fat_tree(4), 5000},
                   {"ft8/5k", harness::TopologySpec::fat_tree(8), 5000},
                   {"dcell21/10k", harness::TopologySpec::dcell(2, 1),
                    10000}});
  }

  // --- Table 1: flows completed per stack ---
  std::printf(
      "Fig 13: datacenter-scale sweep — flows completed (of scheduled)\n"
      "per protocol stack; fat-tree k=4/8 and DCell(2,1).\n\n");
  harness::ExperimentSpec spec;
  spec.name = "fig13_datacenter_scale";
  spec.axis = "topology/flows";
  spec.metric = harness::metrics::completed();
  spec.trials = 1;
  spec.base_seed = base_seed;
  spec.base = dc_scenario(harness::TopologySpec::fat_tree(4), 1000);
  for (const char* name : {"PDQ(Full)", "RCP", "TCP"}) {
    spec.columns.push_back(harness::stack_column(name));
  }
  for (const auto& pt : points) {
    harness::SweepPoint p;
    p.label = pt.label;
    p.apply = [topo = pt.topo, flows = pt.flows](harness::Scenario& s) {
      s = dc_scenario(topo, flows);
    };
    spec.points.push_back(std::move(p));
  }
  run_and_report(spec, args, " %12.0f");

  // --- Table 2: engine operation counters, lead stack (PDQ(Full)) ---
  std::printf(
      "\nFig 13 engine counters (PDQ(Full)): operation counts, the perf\n"
      "currency on single-core CI (no wall-time metrics anywhere).\n\n");
  auto cache = std::make_shared<EngineCounterCache>();
  harness::ExperimentSpec counters;
  counters.name = "fig13_engine_counters";
  counters.axis = "topology/flows";
  counters.metric = harness::metrics::events_processed();
  counters.trials = 1;
  counters.base_seed = base_seed;
  counters.base = spec.base;
  counters.columns = engine_counter_columns(cache, "PDQ(Full)");
  for (const auto& pt : points) {
    harness::SweepPoint p;
    p.label = pt.label;
    p.apply = [topo = pt.topo, flows = pt.flows](harness::Scenario& s) {
      s = dc_scenario(topo, flows);
    };
    counters.points.push_back(std::move(p));
  }
  run_and_report(counters, args, " %12.1f");
  std::printf(
      "\nExpected shape: events scale ~linearly with flows but ev/flow\n"
      "shrinks with idle-link tick dormancy; coalesced counts elided\n"
      "per-hop events; scan/pkt stays flat as flows grow 1k->10k (the\n"
      "O(1)-amortized switch fast path); pkt_allocs (cold pool) is the\n"
      "run's in-flight packet high-water mark — recycle%% near 100 means\n"
      "steady state allocates nothing.\n");

  // --- Table 3: 100k-flow streaming-mode scale point ---
  if (args.full || args.scale) {
    std::printf(
        "\nFig 13 scale point (streaming metrics, PDQ(Full)): 100k\n"
        "open-loop flows, web-search sizes scaled 1:100, fat-tree k=8.\n"
        "Flows retire at termination and creation events are chained\n"
        "through reserved sequence numbers, so peak_flow_bytes AND\n"
        "peak_pending both track the *active* population.\n\n");
    auto scale_cache = std::make_shared<EngineCounterCache>();
    harness::ExperimentSpec scale;
    scale.name = "fig13_scale_streaming";
    scale.axis = "flows";
    scale.metric = harness::metrics::events_processed();
    scale.trials = 1;
    scale.base_seed = base_seed;
    scale.base = scale_scenario(100'000);
    scale.streaming_metrics = std::make_shared<const stats::StreamingSpec>();
    scale.columns = engine_counter_columns(scale_cache, "PDQ(Full)");
    harness::SweepPoint scale_pt;
    scale_pt.label = "ft8/100k";
    scale.points.push_back(std::move(scale_pt));
    run_and_report(scale, args, " %12.1f");
  }

  // --- Table 4: 1M-flow hybrid packet/fluid scale point ---
  if (args.full || args.scale) {
    std::printf(
        "\nFig 13 hybrid scale points (PDQ(Full)): hybrid packet/fluid\n"
        "backend — flows >= 128 KiB cross the fluid middle at\n"
        "equilibrium rates (32 KiB packet head/tail keep admission,\n"
        "preemption and the completion handshake packet-exact); mice\n"
        "and deadline flows never leave the packet engine. Row 1 is the\n"
        "*identical* workload as the Table 3 pure-packet run, so its\n"
        "ev/flow drop is the backend's fast-forward win like-for-like;\n"
        "row 2 is the million-flow k=16 point that is only tractable\n"
        "with the fluid middle carrying the elephant bytes.\n\n");
    auto hybrid = std::make_shared<harness::HybridSpec>();
    hybrid->head_bytes = 32 * 1024;
    hybrid->tail_bytes = 32 * 1024;
    hybrid->min_fluid_bytes = 128 * 1024;
    auto hybrid_cache = std::make_shared<EngineCounterCache>();
    harness::ExperimentSpec mil;
    mil.name = "fig13_scale_hybrid";
    mil.axis = "flows";
    mil.metric = harness::metrics::events_processed();
    mil.trials = 1;
    mil.base_seed = base_seed;
    mil.base = scale_scenario(100'000);
    mil.streaming_metrics = std::make_shared<const stats::StreamingSpec>();
    mil.hybrid_backend = hybrid;
    mil.columns = engine_counter_columns(hybrid_cache, "PDQ(Full)");
    harness::SweepPoint same_as_t3;
    same_as_t3.label = "ft8/100k";
    mil.points.push_back(std::move(same_as_t3));
    harness::SweepPoint mil_pt;
    mil_pt.label = "ft16/1M";
    mil_pt.apply = [](harness::Scenario& s) {
      s = scale_scenario(1'000'000, /*fat_tree_k=*/16,
                         /*arrivals_per_sec=*/100'000.0);
    };
    mil.points.push_back(std::move(mil_pt));
    run_and_report(mil, args, " %12.1f");
  }

  // --- Table 5 (--shards N): sharded-engine quick points ---
  // Identical simulations partitioned across N worker threads
  // (sim/sharded.h) — results are bit-identical to shards=1 (the
  // determinism wall proves it), so the table reports only the sync
  // costs: windows dispatched, cross-shard ring records, the
  // distinct-thread proof and the lookahead. Off by default so the
  // standard fig13 stdout stays byte-identical.
  if (args.shards > 1) {
    std::printf(
        "\nFig 13 sharded engine (PDQ(Full), %d shards): conservative-\n"
        "sync costs. Flow results and every committed counter are\n"
        "bit-identical to shards=1; sync_rounds/ring_handoffs price the\n"
        "windows, shard_threads proves distinct workers ran (never wall\n"
        "time — single-core CI).\n\n",
        args.shards);
    auto shard_cache = std::make_shared<EngineCounterCache>();
    harness::ExperimentSpec sharded;
    sharded.name = "fig13_sharded_engine";
    sharded.axis = "topology/flows";
    sharded.metric = harness::metrics::sync_rounds();
    sharded.trials = 1;
    sharded.base_seed = base_seed;
    sharded.base = dc_scenario(harness::TopologySpec::fat_tree(4), 1000);
    sharded.shards = args.shards;
    sharded.columns = shard_counter_columns(shard_cache, "PDQ(Full)");
    // Fat-tree points only: DCell(2,1) has 3 attachment cells, too few
    // for 4+ shards (make_shard_plan would refuse).
    const std::vector<Point> shard_points = {
        {"ft4/1k", harness::TopologySpec::fat_tree(4), 1000},
        {"ft8/10k", harness::TopologySpec::fat_tree(8), 10000},
    };
    for (const auto& pt : shard_points) {
      harness::SweepPoint p;
      p.label = pt.label;
      p.apply = [topo = pt.topo, flows = pt.flows](harness::Scenario& s) {
        s = dc_scenario(topo, flows);
      };
      sharded.points.push_back(std::move(p));
    }
    run_and_report(sharded, args, " %12.0f");
  }
  return 0;
}
