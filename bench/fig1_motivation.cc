// Figure 1: the motivating example. Three flows (sizes 1,2,3; deadlines
// 1,4,6) on a unit link under (b) fair sharing, (c) SJF/EDF, and (d) D3
// for every one of the 3! arrival orders.
#include <algorithm>

#include "bench_common.h"
#include "flowsim/flowsim.h"
#include "net/builders.h"
#include <string_view>

using namespace pdq;

namespace {

const std::int64_t kUnit = 1'000'000;  // 1 "size unit" = 1 MB
constexpr double kRate = 8e6;          // 1 unit per second

std::vector<sched::Job> jobs() {
  return {{1 * kUnit, 0, sim::from_seconds(1.0), 0},
          {2 * kUnit, 0, sim::from_seconds(4.0), 1},
          {3 * kUnit, 0, sim::from_seconds(6.0), 2}};
}

/// D3 under a given arrival order, via the flow-level first-come
/// first-reserved model with epsilon-staggered starts.
int d3_deadlines_met(const std::vector<int>& order) {
  sim::Simulator simulator;
  net::Topology topo(simulator, 1);
  net::LinkDefaults d;
  d.rate_bps = kRate;
  auto servers = net::build_single_bottleneck(topo, 3, d);
  const sim::Time deadlines[3] = {sim::from_seconds(1.0),
                                  sim::from_seconds(4.0),
                                  sim::from_seconds(6.0)};
  const std::int64_t sizes[3] = {1 * kUnit, 2 * kUnit, 3 * kUnit};
  std::vector<net::FlowSpec> flows;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const int i = order[k];
    net::FlowSpec f;
    f.id = i + 1;
    f.src = servers[static_cast<std::size_t>(i)];
    f.dst = servers.back();
    f.size_bytes = sizes[i];
    f.start_time = static_cast<sim::Time>(k) * sim::kMillisecond;
    f.deadline = deadlines[i] - f.start_time;
    flows.push_back(f);
  }
  flowsim::Options o;
  o.model = flowsim::Model::kD3;
  o.goodput_factor = 1.0;
  o.init_latency = 0;
  o.early_termination = false;
  o.horizon = 20 * sim::kSecond;
  flowsim::FlowLevelSimulator fs(topo, o);
  auto r = fs.run(flows);
  int met = 0;
  for (const auto& f : r.flows) met += f.deadline_met() ? 1 : 0;
  return met;
}

}  // namespace

int main(int argc, char** argv) {
  if (pdq::bench::fixed_scenario_help(argc, argv,
                          "Fixed fluid-model motivation table (Figure 1)")) {
    return 0;
  }  // other flags are accepted and ignored (fixed scenario)

  std::printf("Figure 1: fA=(1,d=1) fB=(2,d=4) fC=(3,d=6), unit-rate link\n\n");
  std::printf("(b/c) centralized fluid schedules:\n");
  std::printf("%-14s %6s %6s %6s %10s %9s\n", "discipline", "fA", "fB", "fC",
              "mean", "deadlines");
  for (auto [name, s] : {std::pair<const char*, sched::Schedule>{
                             "fair sharing", sched::fair_sharing(jobs(), kRate)},
                         {"SJF", sched::srpt(jobs(), kRate)},
                         {"EDF", sched::edf(jobs(), kRate)}}) {
    std::printf("%-14s %5.2fs %5.2fs %5.2fs %8.2fs %7.0f%%\n", name,
                sim::to_seconds(s.completion[0]),
                sim::to_seconds(s.completion[1]),
                sim::to_seconds(s.completion[2]),
                s.mean_fct_ms(jobs()) / 1000.0, s.on_time_percent(jobs()));
  }

  std::printf("\n(d) D3 (first-come first-reserved) per arrival order:\n");
  std::printf("%-14s %14s\n", "arrival order", "deadlines met");
  std::vector<int> order{0, 1, 2};
  const char* names = "ABC";
  int orders_all_met = 0;
  do {
    const int met = d3_deadlines_met(order);
    orders_all_met += (met == 3) ? 1 : 0;
    std::printf("f%c;f%c;f%c      %10d / 3\n", names[order[0]],
                names[order[1]], names[order[2]], met);
  } while (std::next_permutation(order.begin(), order.end()));
  std::printf(
      "\nPaper: D3 satisfies all deadlines for only 1 of 6 orders (the EDF\n"
      "order fA;fB;fC); measured: %d of 6.\n",
      orders_all_met);
  return 0;
}
