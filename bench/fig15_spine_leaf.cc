// Figure 15 (beyond-paper): PDQ vs the DCTCP family on a spine-leaf
// fabric — the industry-shaped comparison every modern reader asks for.
//
// Open-loop Poisson arrivals on a 4-spine x 4-leaf x 4-servers-per-rack
// non-blocking spine-leaf (net::build_spine_leaf), swept over offered
// load rho with the web-search and data-mining empirical size CDFs, a
// 12->1 incast burst and a leaf-uplink failure/recovery mid-run (the
// MQ-ECN/TCN evaluation regime). DCTCP runs with marking multi-queue
// ports installed on every switch (net/multi_queue.h): the canonical
// single-queue config plus an MQ-ECN-scheduled 4-queue DWRR variant.
//
// Table 1 (fig15_spine_leaf): steady-state mean FCT per stack vs rho,
// web-search CDF.
// Table 2 (fig15_data_mining): the same sweep under the data-mining CDF.
// Table 3 (fig15_steady_state): size-bucketed mean/p99 FCT, goodput and
// deadline-miss detail at the highest swept load, one run per stack.
// Table 4 (fig15_engine_counters): engine operation counters for the
// DCTCP lead stack (exercising the multi-queue enqueue/mark path),
// exported to BENCH_engine.json by scripts/record_bench.sh and gated in
// CI by scripts/check_counter_regression.py.
//
// Flags: --load L[,L...] overrides the swept loads; --timeline
// both|incast|failure|none picks the scenario preset (see --help).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/timeline.h"
#include "protocols/dctcp.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

constexpr std::int64_t kMiceMax = 100'000;  // mice/elephant split, bytes
constexpr int kSpines = 4;
constexpr int kTors = 4;
constexpr int kServersPerRack = 4;

struct SpineParams {
  double rho = 0.5;
  int num_flows = 120;
  std::string cdf = "web-search";  // web-search|data-mining
  std::string preset = "both";     // both|incast|failure|none
};

/// One load point: open-loop arrivals over the spine-leaf servers, with
/// the timeline spanning the expected arrival span T = n/rate — warmup
/// 0.1 T, a 12->1 incast at 0.35 T, a leaf-uplink failure over
/// [0.5 T, 0.75 T] on the first server's spine path.
harness::Scenario spine_scenario(const SpineParams& p) {
  const workload::EmpiricalCdf cdf = p.cdf == "data-mining"
                                         ? workload::EmpiricalCdf::data_mining()
                                         : workload::EmpiricalCdf::web_search();

  workload::OpenLoopOptions w;
  w.num_flows = p.num_flows;
  w.arrivals = workload::ArrivalProcess::for_load(p.rho, cdf.mean_bytes());
  w.size = cdf.sampler();
  w.pattern = workload::staggered_prob(0.5, 4);

  char wname[96];
  std::snprintf(wname, sizeof wname, "%s-openloop/%s/rho%.2f/%d",
                p.cdf.c_str(), p.preset.c_str(), p.rho, p.num_flows);

  harness::Scenario s;
  s.topology =
      harness::TopologySpec::spine_leaf(kSpines, kTors, kServersPerRack);
  s.workload = harness::WorkloadSpec::open_loop(w, wname);
  s.options.horizon = 120 * sim::kSecond;

  const double span_ns = 1e9 * p.num_flows / w.arrivals.rate_per_sec;
  auto tl = std::make_shared<harness::TimelineSpec>();
  tl->window(static_cast<sim::Time>(0.1 * span_ns));
  if (p.preset == "incast" || p.preset == "both") {
    // 12 x 40 KB into the last server: ~3.9 ms serialized on the 1 Gbps
    // edge link, so 5 ms deadlines leave ~1 ms of slack for the burst to
    // contend with background load — real scheduling pressure, and the
    // regime DCTCP's marking was designed for (the fabric itself is
    // non-blocking; only the shared edge downlink can miss).
    tl->incast(static_cast<sim::Time>(0.35 * span_ns), 12, 40'000, -1,
               5 * sim::kMillisecond);
  }
  if (p.preset == "failure" || p.preset == "both") {
    // Server 0's cross-rack path enters the spine over a leaf uplink;
    // hop 1 is the leaf->spine link ECMP picked for flow 0 -> 12.
    tl->link_failure(static_cast<sim::Time>(0.5 * span_ns),
                     static_cast<sim::Time>(0.75 * span_ns),
                     harness::link_on_path(0, 12, 1));
  }
  s.options.timeline = std::move(tl);  // window applies even for "none"
  return s;
}

/// The fig15 comparison columns: PDQ vs the DCTCP family vs the
/// rate-based and loss-based baselines. DCTCP(MQ4) runs 4-queue DWRR
/// with MQ-ECN marking — the full multi-queue service path.
std::vector<harness::Column> fig15_columns() {
  std::vector<harness::Column> cols;
  cols.push_back(harness::stack_column("PDQ(Full)"));
  cols.push_back(harness::stack_column("DCTCP"));
  harness::StackOptions mq4;
  protocols::DctcpConfig cfg;
  cfg.mq.num_queues = 4;
  cfg.mq.service = net::MqService::kDwrr;
  cfg.mq.ecn = net::EcnScheme::kMqEcn;
  mq4.dctcp = cfg;
  mq4.label = "DCTCP(MQ4)";
  cols.push_back(harness::stack_column("DCTCP(MQ4)", "DCTCP", mq4));
  cols.push_back(harness::stack_column("RCP"));
  cols.push_back(harness::stack_column("TCP"));
  return cols;
}

std::string rho_label(double rho) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.2f", rho);
  return buf;
}

harness::ExperimentSpec load_sweep(const std::string& name,
                                   const std::string& cdf,
                                   const std::vector<double>& loads,
                                   int num_flows, const BenchArgs& args) {
  harness::ExperimentSpec spec;
  spec.name = name;
  spec.axis = "load rho";
  spec.metric = harness::metrics::windowed_mean_fct_ms();
  spec.trials = 1;
  spec.base_seed = args.seed_or();
  spec.base = spine_scenario({loads.front(), num_flows, cdf, args.timeline});
  // --faults arms the fault plane on every sample; null ("off") leaves
  // the sweep byte-identical to the historical path.
  spec.fault_plane = args.fault_plane();
  spec.columns = fig15_columns();
  for (double rho : loads) {
    harness::SweepPoint pt;
    pt.label = rho_label(rho);
    pt.apply = [rho, num_flows, cdf,
                preset = args.timeline](harness::Scenario& s) {
      s = spine_scenario({rho, num_flows, cdf, preset});
    };
    spec.points.push_back(std::move(pt));
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const std::uint64_t base_seed = args.seed_or();

  std::vector<double> loads = args.loads;
  if (loads.empty()) {
    loads = args.full ? std::vector<double>{0.1, 0.3, 0.5, 0.7, 0.9}
                      : std::vector<double>{0.1, 0.5, 0.9};
  }
  const int num_flows = args.full ? 400 : 120;

  // --- Table 1: web-search CDF, mean FCT vs offered load ---
  std::printf(
      "Fig 15: PDQ vs DCTCP on spine-leaf (%d spines x %d leaves x %d\n"
      "servers/rack, non-blocking). Open-loop Poisson arrivals, web-search\n"
      "size CDF, timeline preset \"%s\". Steady-state mean FCT (ms),\n"
      "warmup trimmed.\n\n",
      kSpines, kTors, kServersPerRack, args.timeline.c_str());
  run_and_report(
      load_sweep("fig15_spine_leaf", "web-search", loads, num_flows, args),
      args);

  // --- Table 2: data-mining CDF (heavier tail) ---
  std::printf("\nFig 15 under the data-mining size CDF (heavier tail):\n\n");
  run_and_report(
      load_sweep("fig15_data_mining", "data-mining", loads, num_flows, args),
      args);

  // --- Table 3: steady-state detail at the highest swept load ---
  // One simulation per column; every row reads the same run.
  const double rho_detail = loads.back();
  std::printf(
      "\nFig 15 steady-state detail at rho=%.2f, web-search CDF (mice =\n"
      "flows < 100 KB):\n\n",
      rho_detail);
  const harness::Scenario detail =
      spine_scenario({rho_detail, num_flows, "web-search", args.timeline});
  const std::vector<harness::Column> cols = fig15_columns();
  const std::vector<std::pair<std::string, harness::MetricSpec>> rows = {
      {"mean_fct_ms", harness::metrics::windowed_mean_fct_ms()},
      {"p99_fct_ms", harness::metrics::windowed_p99_fct_ms()},
      {"mice_mean_fct", harness::metrics::windowed_mean_fct_ms(0, kMiceMax)},
      {"eleph_mean_fct", harness::metrics::windowed_mean_fct_ms(kMiceMax)},
      {"goodput_gbps", harness::metrics::goodput_gbps()},
      {"deadline_miss%", harness::metrics::deadline_miss_percent()},
  };
  std::vector<std::string> col_labels;
  for (const auto& c : cols) col_labels.push_back(c.label);
  std::vector<std::vector<double>> cells(
      rows.size(), std::vector<double>(cols.size(), 0.0));
  for (std::size_t c = 0; c < cols.size(); ++c) {
    const auto run = harness::SweepRunner::run_sample(
        detail, cols[c].stack, cols[c].options, base_seed);
    harness::RunContext ctx;
    ctx.result = &run.result;
    ctx.flows = &run.flows;
    ctx.scenario = &detail;
    ctx.stack = cols[c].stack;
    ctx.seed = base_seed;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      cells[r][c] = rows[r].second.fn(ctx);
    }
  }
  std::vector<std::string> row_labels;
  for (const auto& r : rows) row_labels.push_back(r.first);
  auto detail_results =
      grid_results("fig15_steady_state", "metric", "value", col_labels,
                   row_labels, cells, base_seed);
  harness::TableSink(stdout, " %12.2f").write(detail_results);
  write_outputs(detail_results, args);

  // --- Table 4: engine counters, DCTCP lead stack (CI gate) ---
  std::printf(
      "\nFig 15 engine counters (DCTCP): operation counts through the\n"
      "multi-queue marking ports.\n\n");
  auto cache = std::make_shared<EngineCounterCache>();
  harness::ExperimentSpec counters;
  counters.name = "fig15_engine_counters";
  counters.axis = "load rho";
  counters.metric = harness::metrics::events_processed();
  counters.trials = 1;
  counters.base_seed = base_seed;
  counters.base = spine_scenario({loads.front(), num_flows, "web-search",
                                  args.timeline});
  counters.columns = engine_counter_columns(cache, "DCTCP");
  for (double rho : loads) {
    harness::SweepPoint pt;
    pt.label = rho_label(rho);
    pt.apply = [rho, num_flows,
                preset = args.timeline](harness::Scenario& s) {
      s = spine_scenario({rho, num_flows, "web-search", preset});
    };
    counters.points.push_back(std::move(pt));
  }
  run_and_report(counters, args, " %12.1f");
  std::printf(
      "\nExpected shape: at rho 0.1 the fabric is idle and every stack\n"
      "is within noise of the no-queueing FCT; as load builds PDQ pulls\n"
      "ahead and holds the lowest mean and p99. DCTCP tracks RCP —\n"
      "marking caps queueing delay but cannot preempt, so elephants\n"
      "still crowd mice — and beats TCP's deep tail-drop queues on p99.\n"
      "The tight incast is PDQ's documented worst case (fig14):\n"
      "identically-deadlined same-size flows gain nothing from serial\n"
      "EDF handoffs, so PDQ's last ranks can miss where rate-sharing\n"
      "stacks finish together just under the deadline. The MQ-ECN\n"
      "variant trades a little mice latency for fairness across its\n"
      "class queues.\n");
  return 0;
}
