// Figure 8: impact of network scale across fat-tree, BCube and Jellyfish,
// comparing packet-level and flow-level simulation, plus the per-flow
// FCT-ratio CDF of Fig 8e (RCP FCT / PDQ FCT).
//
// Deadline-unconstrained random-permutation traffic with multiple flows
// per server; packet level runs the smaller sizes, flow level scales up.
#include <algorithm>

#include "bench_common.h"
#include "flowsim/flowsim.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

struct TopoCase {
  const char* name;
  std::function<std::vector<net::NodeId>(net::Topology&, int size_index)>
      build;
  std::vector<int> sizes;  // index -> parameter meaning differs per topo
};

std::vector<net::FlowSpec> perm_flows(const std::vector<net::NodeId>& servers,
                                      int flows_per_server,
                                      std::uint64_t seed) {
  sim::Rng rng(seed);
  workload::FlowSetOptions w;
  w.num_flows = static_cast<int>(servers.size()) * flows_per_server;
  w.size = workload::uniform_size(2'000, 198'000);
  w.pattern = workload::random_permutation();
  return workload::make_flows(servers, w, rng);
}

double packet_level_fct(harness::ProtocolStack& stack,
                        const harness::TopologyBuilder& build, std::uint64_t seed) {
  sim::Simulator s0;
  net::Topology t0(s0, 1);
  auto servers = build(t0);
  auto flows = perm_flows(servers, 3, seed);
  harness::RunOptions opts;
  opts.horizon = 60 * sim::kSecond;
  opts.seed = seed;
  return harness::run_scenario(
             stack, [&](net::Topology& t) { return build(t); }, flows, opts)
      .mean_fct_ms();
}

double flow_level_fct(flowsim::Model model, const harness::TopologyBuilder& build,
                      int flows_per_server, std::uint64_t seed) {
  sim::Simulator simulator;
  net::Topology topo(simulator, seed);
  auto servers = build(topo);
  auto flows = perm_flows(servers, flows_per_server, seed);
  flowsim::Options o;
  o.model = model;
  flowsim::FlowLevelSimulator fs(topo, o);
  return fs.run(flows).mean_fct_ms();
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const std::uint64_t seed = 17;

  // --- Fig 8b-d: mean FCT vs network size per topology ---
  std::printf(
      "Fig 8b-8d: mean FCT [ms], random permutation, 3 flows/server,\n"
      "no deadlines. 'pkt' = packet-level, 'flow' = flow-level.\n\n");
  print_header("topology/size",
               {"PDQ pkt", "PDQ flow", "RCP pkt", "RCP flow"});

  struct Case {
    std::string label;
    harness::TopologyBuilder build;
    bool packet_feasible;
  };
  std::vector<Case> cases;
  for (int k : std::vector<int>{4, full ? 8 : 4}) {
    if (!cases.empty() && cases.back().label == "fat-tree/" +
                              std::to_string(k * k * k / 4))
      continue;
    cases.push_back({"fat-tree/" + std::to_string(k * k * k / 4),
                     [k](net::Topology& t) { return net::build_fat_tree(t, k); },
                     k <= 4});
  }
  cases.push_back({"bcube/16",
                   [](net::Topology& t) { return net::build_bcube(t, 2, 3); },
                   true});
  if (full) {
    cases.push_back({"bcube/64",
                     [](net::Topology& t) { return net::build_bcube(t, 4, 2); },
                     false});
  }
  cases.push_back({"jellyfish/20",
                   [](net::Topology& t) {
                     return net::build_jellyfish(t, 10, 6, 4, 3);
                   },
                   true});
  if (full) {
    cases.push_back({"jellyfish/160",
                     [](net::Topology& t) {
                       return net::build_jellyfish(t, 40, 12, 8, 3);
                     },
                     false});
  }

  for (const auto& c : cases) {
    std::vector<double> cells;
    if (c.packet_feasible) {
      harness::PdqStack pdq;
      cells.push_back(packet_level_fct(pdq, c.build, seed));
    } else {
      cells.push_back(0.0);
    }
    cells.push_back(flow_level_fct(flowsim::Model::kPdq, c.build, 3, seed));
    if (c.packet_feasible) {
      harness::RcpStack rcp;
      cells.push_back(packet_level_fct(rcp, c.build, seed));
    } else {
      cells.push_back(0.0);
    }
    cells.push_back(flow_level_fct(flowsim::Model::kRcp, c.build, 3, seed));
    print_row(c.label, cells);
  }

  // --- Fig 8a: deadline-constrained flows at scale (flow level) ---
  std::printf(
      "\nFig 8a: application throughput [%%] on fat-trees, deadline flows,\n"
      "flow-level simulation, random permutation (fixed 3 flows/server):\n\n");
  print_header("#servers", {"PDQ", "D3", "RCP"});
  for (int k : full ? std::vector<int>{4, 8, 16} : std::vector<int>{4, 8}) {
    sim::Simulator simulator;
    net::Topology topo(simulator, seed);
    auto servers = net::build_fat_tree(topo, k);
    sim::Rng rng(seed);
    workload::FlowSetOptions w;
    w.num_flows = static_cast<int>(servers.size()) * 3;
    w.size = workload::uniform_size(2'000, 198'000);
    w.deadline = workload::exp_deadline();
    w.pattern = workload::random_permutation();
    auto flows = workload::make_flows(servers, w, rng);
    std::vector<double> cells;
    for (auto model : {flowsim::Model::kPdq, flowsim::Model::kD3,
                       flowsim::Model::kRcp}) {
      flowsim::Options o;
      o.model = model;
      flowsim::FlowLevelSimulator fs(topo, o);
      cells.push_back(fs.run(flows).application_throughput());
    }
    print_row(std::to_string(servers.size()), cells, " %12.1f");
  }

  // --- Fig 8e: CDF of RCP FCT / PDQ FCT per flow (flow level) ---
  std::printf(
      "\nFig 8e: CDF of per-flow FCT ratio RCP/PDQ (fat-tree, ~128 servers,\n"
      "flow level):\n\n");
  {
    sim::Simulator simulator;
    net::Topology topo(simulator, seed);
    auto servers = net::build_fat_tree(topo, 8);  // 128 servers
    auto flows = perm_flows(servers, full ? 10 : 8, seed);
    flowsim::Options op;
    op.model = flowsim::Model::kPdq;
    flowsim::FlowLevelSimulator fp(topo, op);
    auto rp = fp.run(flows);
    flowsim::Options orr;
    orr.model = flowsim::Model::kRcp;
    flowsim::FlowLevelSimulator fr(topo, orr);
    auto rr = fr.run(flows);
    std::vector<double> ratio;
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (rp.flows[i].outcome == net::FlowOutcome::kCompleted &&
          rr.flows[i].outcome == net::FlowOutcome::kCompleted) {
        ratio.push_back(
            static_cast<double>(rr.flows[i].completion_time()) /
            static_cast<double>(rp.flows[i].completion_time()));
      }
    }
    std::sort(ratio.begin(), ratio.end());
    print_header("ratio", {"CDF"});
    for (double x : {0.25, 0.5, 1.0, 1.5, 2.0, 4.0, 8.0, 16.0, 32.0}) {
      const auto it = std::upper_bound(ratio.begin(), ratio.end(), x);
      print_row(std::to_string(x).substr(0, 5),
                {100.0 * static_cast<double>(it - ratio.begin()) /
                 static_cast<double>(ratio.size())},
                " %12.1f");
    }
    std::size_t pdq_faster = 0, pdq_2x = 0;
    for (double x : ratio) {
      if (x > 1.0) ++pdq_faster;
      if (x >= 2.0) ++pdq_2x;
    }
    std::printf(
        "\nPDQ faster for %.1f%% of flows; >=2x faster for %.1f%% "
        "(paper: 85-95%% and ~40%%).\n",
        100.0 * pdq_faster / ratio.size(), 100.0 * pdq_2x / ratio.size());
  }
  return 0;
}
