// Figure 8: impact of network scale across fat-tree, BCube and Jellyfish,
// comparing packet-level and flow-level simulation, plus the per-flow
// FCT-ratio CDF of Fig 8e (RCP FCT / PDQ FCT).
//
// Deadline-unconstrained random-permutation traffic with multiple flows
// per server; packet level runs the smaller sizes, flow level scales up.
// The (topology x engine) grid is a multi-point SweepRunner sweep — the
// default mode with >=4 threads finishes several-fold faster than serial
// while producing identical CSV rows.
#include <algorithm>

#include "bench_common.h"
#include "flowsim/flowsim.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

harness::WorkloadSpec perm_workload(int flows_per_server) {
  return harness::WorkloadSpec::custom(
      "perm/" + std::to_string(flows_per_server),
      [flows_per_server](const std::vector<net::NodeId>& servers,
                         sim::Rng& rng) {
        workload::FlowSetOptions w;
        w.num_flows = static_cast<int>(servers.size()) * flows_per_server;
        w.size = workload::uniform_size(2'000, 198'000);
        w.pattern = workload::random_permutation();
        return workload::make_flows(servers, w, rng);
      });
}

harness::Column flowsim_fct(const std::string& label, flowsim::Model model) {
  harness::Column c;
  c.label = label;
  c.evaluate = [model](const harness::Scenario& sc, std::uint64_t seed) {
    sim::Simulator simulator;
    net::Topology topo(simulator, seed);
    auto servers = sc.topology.build(topo);
    sim::Rng rng(seed);
    auto flows = sc.workload.make(servers, rng);
    flowsim::Options o;
    o.model = model;
    flowsim::FlowLevelSimulator fs(topo, o);
    return fs.run(flows).mean_fct_ms();
  };
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const bool full = args.full;
  const std::uint64_t seed = args.seed_or(17);

  // --- Fig 8b-d: mean FCT vs network size per topology ---
  std::printf(
      "Fig 8b-8d: mean FCT [ms], random permutation, 3 flows/server,\n"
      "no deadlines. 'pkt' = packet-level, 'flow' = flow-level.\n\n");
  {
    harness::ExperimentSpec spec;
    spec.name = "fig8bcd_scale_fct";
    spec.axis = "topology/size";
    spec.metric = harness::metrics::mean_fct_ms();
    spec.trials = 1;
    spec.base_seed = seed;
    spec.base.workload = perm_workload(3);
    spec.base.options.horizon = 60 * sim::kSecond;
    spec.columns.push_back(harness::stack_column("PDQ pkt", "PDQ(Full)"));
    spec.columns.push_back(flowsim_fct("PDQ flow", flowsim::Model::kPdq));
    spec.columns.push_back(harness::stack_column("RCP pkt", "RCP"));
    spec.columns.push_back(flowsim_fct("RCP flow", flowsim::Model::kRcp));

    struct Case {
      harness::TopologySpec topo;
      bool packet_feasible;
    };
    std::vector<Case> cases;
    for (int k : std::vector<int>{4, full ? 8 : 4}) {
      if (!cases.empty() &&
          cases.back().topo.name == harness::TopologySpec::fat_tree(k).name)
        continue;
      cases.push_back({harness::TopologySpec::fat_tree(k), k <= 4});
    }
    cases.push_back({harness::TopologySpec::bcube(2, 3), true});
    if (full) cases.push_back({harness::TopologySpec::bcube(4, 2), false});
    cases.push_back({harness::TopologySpec::jellyfish(10, 6, 4, 3), true});
    if (full) {
      cases.push_back({harness::TopologySpec::jellyfish(40, 12, 8, 3), false});
    }
    for (const auto& c : cases) {
      harness::SweepPoint p;
      p.label = c.topo.name;
      p.apply = [topo = c.topo](harness::Scenario& s) { s.topology = topo; };
      if (!c.packet_feasible) {
        // Packet-level simulation is intractable at this size: blank the
        // pkt columns rather than running for hours.
        p.tune = [](harness::Column& col) {
          if (col.label.find("pkt") != std::string::npos) {
            col.stack.clear();
            col.evaluate = [](const harness::Scenario&, std::uint64_t) {
              return 0.0;
            };
          }
        };
      }
      spec.points.push_back(std::move(p));
    }
    run_and_report(spec, args);
  }

  // --- Fig 8a: deadline-constrained flows at scale (flow level) ---
  std::printf(
      "\nFig 8a: application throughput [%%] on fat-trees, deadline flows,\n"
      "flow-level simulation, random permutation (fixed 3 flows/server):\n\n");
  {
    harness::ExperimentSpec spec;
    spec.name = "fig8a_scale_appthroughput";
    spec.axis = "#servers";
    spec.metric = harness::metrics::application_throughput();
    spec.trials = 1;
    spec.base_seed = seed;
    spec.base.workload = harness::WorkloadSpec::custom(
        "perm-deadline/3",
        [](const std::vector<net::NodeId>& servers, sim::Rng& rng) {
          workload::FlowSetOptions w;
          w.num_flows = static_cast<int>(servers.size()) * 3;
          w.size = workload::uniform_size(2'000, 198'000);
          w.deadline = workload::exp_deadline();
          w.pattern = workload::random_permutation();
          return workload::make_flows(servers, w, rng);
        });
    auto app_throughput = [](const std::string& label, flowsim::Model model) {
      harness::Column c;
      c.label = label;
      c.evaluate = [model](const harness::Scenario& sc, std::uint64_t s) {
        sim::Simulator simulator;
        net::Topology topo(simulator, s);
        auto servers = sc.topology.build(topo);
        sim::Rng rng(s);
        auto flows = sc.workload.make(servers, rng);
        flowsim::Options o;
        o.model = model;
        flowsim::FlowLevelSimulator fs(topo, o);
        return fs.run(flows).application_throughput();
      };
      return c;
    };
    spec.columns.push_back(app_throughput("PDQ", flowsim::Model::kPdq));
    spec.columns.push_back(app_throughput("D3", flowsim::Model::kD3));
    spec.columns.push_back(app_throughput("RCP", flowsim::Model::kRcp));
    for (int k : full ? std::vector<int>{4, 8, 16} : std::vector<int>{4, 8}) {
      harness::SweepPoint p;
      p.label = std::to_string(k * k * k / 4);
      p.apply = [k](harness::Scenario& s) {
        s.topology = harness::TopologySpec::fat_tree(k);
      };
      spec.points.push_back(std::move(p));
    }
    run_and_report(spec, args, " %12.1f");
  }

  // --- Fig 8e: CDF of RCP FCT / PDQ FCT per flow (flow level) ---
  std::printf(
      "\nFig 8e: CDF of per-flow FCT ratio RCP/PDQ (fat-tree, ~128 servers,\n"
      "flow level):\n\n");
  {
    sim::Simulator simulator;
    net::Topology topo(simulator, seed);
    auto servers = net::build_fat_tree(topo, 8);  // 128 servers
    sim::Rng rng(seed);
    auto flows = perm_workload(full ? 10 : 8).make(servers, rng);
    flowsim::Options op;
    op.model = flowsim::Model::kPdq;
    flowsim::FlowLevelSimulator fp(topo, op);
    auto rp = fp.run(flows);
    flowsim::Options orr;
    orr.model = flowsim::Model::kRcp;
    flowsim::FlowLevelSimulator fr(topo, orr);
    auto rr = fr.run(flows);
    std::vector<double> ratio;
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (rp.flows[i].outcome == net::FlowOutcome::kCompleted &&
          rr.flows[i].outcome == net::FlowOutcome::kCompleted) {
        ratio.push_back(static_cast<double>(rr.flows[i].completion_time()) /
                        static_cast<double>(rp.flows[i].completion_time()));
      }
    }
    std::sort(ratio.begin(), ratio.end());
    print_header("ratio", {"CDF"});
    for (double x : {0.25, 0.5, 1.0, 1.5, 2.0, 4.0, 8.0, 16.0, 32.0}) {
      const auto it = std::upper_bound(ratio.begin(), ratio.end(), x);
      print_row(std::to_string(x).substr(0, 5),
                {100.0 * static_cast<double>(it - ratio.begin()) /
                 static_cast<double>(ratio.size())},
                " %12.1f");
    }
    std::size_t pdq_faster = 0, pdq_2x = 0;
    for (double x : ratio) {
      if (x > 1.0) ++pdq_faster;
      if (x >= 2.0) ++pdq_2x;
    }
    std::printf(
        "\nPDQ faster for %.1f%% of flows; >=2x faster for %.1f%% "
        "(paper: 85-95%% and ~40%%).\n",
        100.0 * pdq_faster / ratio.size(), 100.0 * pdq_2x / ratio.size());
  }
  return 0;
}
