// Microbenchmarks (google-benchmark) for the simulator hot paths: event
// queue throughput, packet pool recycling, PDQ switch packet processing,
// and path computation.
#include <benchmark/benchmark.h>

#include <functional>

#include "core/pdq_switch.h"
#include "net/builders.h"
#include "net/packet_pool.h"
#include "net/topology.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

using namespace pdq;

namespace {

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue q;
  std::uint64_t x = 9;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      x = x * 6364136223846793005ULL + 1;
      q.schedule(static_cast<sim::Time>(x % 100000), [] {});
    }
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_SimulatorEventCascade(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    int count = 0;
    std::function<void()> tick = [&] {
      if (++count < 1000) s.schedule_in(10, tick);
    };
    s.schedule_in(0, tick);
    s.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventCascade);

void BM_PdqSwitchForward(benchmark::State& state) {
  const auto flows = state.range(0);
  sim::Simulator simulator;
  net::Topology topo(simulator);
  auto servers = net::build_single_bottleneck(topo, 2);
  auto ctl = std::make_unique<core::PdqLinkController>(core::PdqConfig::full());
  auto* c = ctl.get();
  topo.port_on_link(topo.switch_ids()[0], servers.back())
      ->set_controller(std::move(ctl));
  // Pre-populate the list with `flows` flows.
  for (std::int64_t f = 1; f <= flows; ++f) {
    net::Packet p;
    p.flow = f;
    p.type = net::PacketType::kSyn;
    p.pdq.rate_bps = 1e9;
    p.pdq.expected_tx = f * sim::kMillisecond;
    p.pdq.rtt = 200 * sim::kMicrosecond;
    c->on_forward(p);
  }
  std::int64_t f = 1;
  for (auto _ : state) {
    net::Packet p;
    p.flow = f;
    p.type = net::PacketType::kData;
    p.pdq.rate_bps = 1e9;
    p.pdq.expected_tx = f * sim::kMillisecond;
    p.pdq.rtt = 200 * sim::kMicrosecond;
    c->on_forward(p);
    f = f % flows + 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PdqSwitchForward)->Arg(2)->Arg(8)->Arg(32);

void BM_PacketPoolAcquireRelease(benchmark::State& state) {
  net::PacketPool pool;
  { net::PacketPtr warm = pool.acquire(); }  // steady state: 1 free slot
  for (auto _ : state) {
    net::PacketPtr p = pool.acquire();
    p->payload = 1460;
    benchmark::DoNotOptimize(p.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketPoolAcquireRelease);

void BM_FatTreeEcmpRouteFlyweight(benchmark::State& state) {
  sim::Simulator simulator;
  net::Topology topo(simulator);
  auto servers = net::build_fat_tree(topo, 8);
  net::FlowId f = 0;
  for (auto _ : state) {
    auto route = topo.ecmp_route(++f, servers[0],
                                 servers[servers.size() - 1]);
    benchmark::DoNotOptimize(route.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FatTreeEcmpRouteFlyweight);

void BM_FatTreeEcmpPath(benchmark::State& state) {
  sim::Simulator simulator;
  net::Topology topo(simulator);
  auto servers = net::build_fat_tree(topo, 8);
  net::FlowId f = 0;
  for (auto _ : state) {
    auto path = topo.ecmp_path(++f, servers[0],
                               servers[servers.size() - 1]);
    benchmark::DoNotOptimize(path);
  }
}
BENCHMARK(BM_FatTreeEcmpPath);

void BM_EndToEndFiveFlowScenario(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    net::Topology topo(simulator);
    auto servers = net::build_single_bottleneck(topo, 5);
    core::install_pdq(topo, core::PdqConfig::full());
    // Measure raw simulation throughput of the canonical Fig 6 scenario
    // setup (no flows: controller ticks only) for 10 simulated ms.
    simulator.run(10 * sim::kMillisecond);
    benchmark::DoNotOptimize(simulator.now());
  }
}
BENCHMARK(BM_EndToEndFiveFlowScenario);

}  // namespace

BENCHMARK_MAIN();
