// Figure 14 (beyond-paper): dynamic traffic under churn.
//
// Open-loop Poisson arrivals from the empirical web-search size CDF on a
// fat-tree k=4, swept over offered load rho, with a scheduled scenario
// timeline: two 12->1 incast bursts (40 KB, 10 ms deadlines) and a
// single-link failure/recovery on a core link mid-run. This is the
// evaluation regime the dynamic-arrival literature (inter-datacenter
// congestion control, coflow scheduling under arrival churn) drives
// protocols with — the first scenario class in this repo where arrival
// order is not known at t = 0.
//
// Table 1 (fig14_dynamic_traffic): steady-state mean FCT per stack vs
// offered load (timeline active; warmup trimmed).
// Table 2 (fig14_steady_state): size-bucketed mean/p99 FCT, goodput and
// deadline-miss detail at the highest swept load, one simulation per
// stack (all rows read the same run).
// Table 3 (fig14_engine_counters): engine operation counters for the
// lead stack, exported to BENCH_engine.json by scripts/record_bench.sh
// and gated in CI by scripts/check_counter_regression.py.
//
// Flags: --load L[,L...] overrides the swept loads; --timeline
// both|incast|failure|none picks the scenario preset (see --help).
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "harness/timeline.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

constexpr std::int64_t kMiceMax = 100'000;  // mice/elephant split, bytes

struct DynParams {
  double rho = 0.5;
  int num_flows = 120;
  std::string preset = "both";  // both|incast|failure|none
};

/// The open-loop scenario for one load point. The timeline spans the
/// expected arrival span T = n/rate: warmup 0.1 T, incasts at 0.3 T and
/// 0.6 T, link failure over [0.45 T, 0.75 T] on a core-crossing link.
harness::Scenario dyn_scenario(const DynParams& p) {
  const workload::EmpiricalCdf cdf = workload::EmpiricalCdf::web_search();

  workload::OpenLoopOptions w;
  w.num_flows = p.num_flows;
  w.arrivals = workload::ArrivalProcess::for_load(p.rho, cdf.mean_bytes());
  w.size = cdf.sampler();
  w.pattern = workload::staggered_prob(0.5, 4);

  char wname[80];
  std::snprintf(wname, sizeof wname, "ws-openloop/%s/rho%.2f/%d",
                p.preset.c_str(), p.rho, p.num_flows);

  harness::Scenario s;
  s.topology = harness::TopologySpec::fat_tree(4);
  s.workload = harness::WorkloadSpec::open_loop(w, wname);
  s.options.horizon = 120 * sim::kSecond;

  const double span_ns = 1e9 * p.num_flows / w.arrivals.rate_per_sec;
  auto tl = std::make_shared<harness::TimelineSpec>();
  tl->window(static_cast<sim::Time>(0.1 * span_ns));
  if (p.preset == "incast" || p.preset == "both") {
    // 12 x 40 KB into one server is ~3.9 ms of serialized arrival on the
    // 1 Gbps edge link; a 10 ms budget forces real scheduling pressure.
    tl->incast(static_cast<sim::Time>(0.3 * span_ns), 12, 40'000, -1,
               10 * sim::kMillisecond);
    tl->incast(static_cast<sim::Time>(0.6 * span_ns), 12, 40'000, -1,
               10 * sim::kMillisecond);
  }
  if (p.preset == "failure" || p.preset == "both") {
    // Servers 0 and 12 sit in different pods, so the selected path
    // crosses the core; the middle link is an aggregation<->core hop.
    tl->link_failure(static_cast<sim::Time>(0.45 * span_ns),
                     static_cast<sim::Time>(0.75 * span_ns),
                     harness::link_on_path(0, 12));
  }
  s.options.timeline = std::move(tl);  // window applies even for "none"
  return s;
}

std::string rho_label(double rho) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.2f", rho);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const std::uint64_t base_seed = args.seed_or();

  std::vector<double> loads = args.loads;
  if (loads.empty()) {
    loads = args.full ? std::vector<double>{0.1, 0.2, 0.4, 0.6, 0.8}
                      : std::vector<double>{0.1, 0.4, 0.8};
  }
  const int num_flows = args.full ? 600 : 120;

  // --- Table 1: steady-state mean FCT vs offered load ---
  std::printf(
      "Fig 14: dynamic traffic — open-loop Poisson arrivals (web-search\n"
      "size CDF) on fat-tree k=4; timeline preset \"%s\" (incast bursts\n"
      "and/or a core-link failure mid-run). Steady-state mean FCT (ms),\n"
      "warmup trimmed.\n\n",
      args.timeline.c_str());
  harness::ExperimentSpec spec;
  spec.name = "fig14_dynamic_traffic";
  spec.axis = "load rho";
  spec.metric = harness::metrics::windowed_mean_fct_ms();
  spec.trials = 1;
  spec.base_seed = base_seed;
  spec.base = dyn_scenario({loads.front(), num_flows, args.timeline});
  for (const auto& name : main_stacks()) {
    spec.columns.push_back(harness::stack_column(name));
  }
  for (double rho : loads) {
    harness::SweepPoint pt;
    pt.label = rho_label(rho);
    pt.apply = [rho, num_flows, preset = args.timeline](harness::Scenario& s) {
      s = dyn_scenario({rho, num_flows, preset});
    };
    spec.points.push_back(std::move(pt));
  }
  run_and_report(spec, args);

  // --- Table 2: steady-state detail at the highest swept load ---
  // One simulation per stack; every row reads the same run.
  const double rho_detail = loads.back();
  std::printf(
      "\nFig 14 steady-state detail at rho=%.2f (mice = flows < 100 KB):\n\n",
      rho_detail);
  const harness::Scenario detail =
      dyn_scenario({rho_detail, num_flows, args.timeline});
  const std::vector<std::string> stacks = main_stacks();
  const std::vector<std::pair<std::string, harness::MetricSpec>> rows = {
      {"mean_fct_ms", harness::metrics::windowed_mean_fct_ms()},
      {"p99_fct_ms", harness::metrics::windowed_p99_fct_ms()},
      {"mice_mean_fct", harness::metrics::windowed_mean_fct_ms(0, kMiceMax)},
      {"eleph_mean_fct", harness::metrics::windowed_mean_fct_ms(kMiceMax)},
      {"goodput_gbps", harness::metrics::goodput_gbps()},
      {"deadline_miss%", harness::metrics::deadline_miss_percent()},
  };
  std::vector<std::vector<double>> cells(
      rows.size(), std::vector<double>(stacks.size(), 0.0));
  for (std::size_t c = 0; c < stacks.size(); ++c) {
    const auto run =
        harness::SweepRunner::run_sample(detail, stacks[c], {}, base_seed);
    harness::RunContext ctx;
    ctx.result = &run.result;
    ctx.flows = &run.flows;
    ctx.scenario = &detail;
    ctx.stack = stacks[c];
    ctx.seed = base_seed;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      cells[r][c] = rows[r].second.fn(ctx);
    }
  }
  std::vector<std::string> row_labels;
  for (const auto& r : rows) row_labels.push_back(r.first);
  auto detail_results =
      grid_results("fig14_steady_state", "metric", "value", stacks,
                   row_labels, cells, base_seed);
  harness::TableSink(stdout, " %12.2f").write(detail_results);
  write_outputs(detail_results, args);

  // --- Table 3: engine counters, lead stack (CI gate via record_bench) ---
  std::printf(
      "\nFig 14 engine counters (PDQ(Full)): operation counts under churn\n"
      "(timeline events, reroutes and injections included).\n\n");
  auto cache = std::make_shared<EngineCounterCache>();
  harness::ExperimentSpec counters;
  counters.name = "fig14_engine_counters";
  counters.axis = "load rho";
  counters.metric = harness::metrics::events_processed();
  counters.trials = 1;
  counters.base_seed = base_seed;
  counters.base = spec.base;
  counters.columns = engine_counter_columns(cache, "PDQ(Full)");
  for (double rho : loads) {
    harness::SweepPoint pt;
    pt.label = rho_label(rho);
    pt.apply = [rho, num_flows, preset = args.timeline](harness::Scenario& s) {
      s = dyn_scenario({rho, num_flows, preset});
    };
    counters.points.push_back(std::move(pt));
  }
  run_and_report(counters, args, " %12.1f");
  std::printf(
      "\nExpected shape: mean/p99 FCT grow with rho (queueing); PDQ holds\n"
      "the lowest FCT across loads, with the largest margin on elephants.\n"
      "Identically-deadlined same-size incast flows are PDQ's worst case\n"
      "(serial EDF handoffs gain nothing over finishing together), so\n"
      "when the second burst overlaps the link-failure window PDQ's last\n"
      "ranks can miss where D3/RCP rate-sharing meets every deadline.\n"
      "Engine counters stay proportional to delivered bytes — reroutes\n"
      "and injections add no per-packet overhead.\n");
  return 0;
}
