// Figure 16 (beyond-paper): resilience under injected faults — the
// fault-plane companion to fig9's clean-link loss sweep. Where fig9
// turns one knob (uniform loss at a single bottleneck), fig16 walks the
// whole failure ladder of src/faults/ on a k=4 fat-tree fabric:
//
//   off    - no faults (the byte-identical baseline)
//   loss   - 1% uniform loss, data + control, fabric core
//   burst  - Gilbert-Elliott bursty loss (25% inside bad episodes)
//   ctrl   - 5% control-packet-only drop (the fig9 regime: rate
//            feedback and TERM/ACK die, data survives)
//   flap   - one core link flapping (~500 ms up / ~20 ms down)
//   flap2  - two core links flapping twice as fast (the flap-rate axis)
//   chaos  - mild burst + control drop + flapping + a switch reset
//
// Every faulted run arms the watchdog + invariant auditor; a run that
// strands flows or leaks packets fails the bench, not just the metric.
//
// Table 1 (fig16_loss_resilience): deadline miss % per stack vs fault
// preset — open-loop query traffic with exponential-mean-20ms deadlines.
// Table 2 (fig16_p99_fct): p99 FCT (ms) of the same runs' workload shape
// without deadlines (deadline-unconstrained, the fig9b convention).
// Table 3 (fig16_engine_counters): engine operation counters for
// PDQ(Full) under each preset, exported to BENCH_engine.json by
// scripts/record_bench.sh and gated by
// scripts/check_counter_regression.py — the faults-off row doubles as a
// differential guard: it must match the other benches' no-fault runs.
//
// --faults is accepted and ignored here: the preset ladder IS the
// x-axis.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "workload/arrivals.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

/// One x-axis point: a named FaultSpec. `make` rebuilds the spec (null
/// for the baseline) so each point owns an independent plane.
struct FaultPoint {
  const char* label;
  std::shared_ptr<const faults::FaultSpec> (*make)();
};

/// The flap points are tuned to the workload span (~25 ms of arrivals),
/// not the CLI preset's 500 ms epochs: a core link bounces with ~5 ms
/// up-times from t=1 ms, so reroutes land mid-transfer. flap2 doubles
/// both the link count and the flap rate (the flap-rate axis).
std::shared_ptr<const faults::FaultSpec> flap_spec(int links,
                                                   sim::Time mean_up) {
  auto s = std::make_shared<faults::FaultSpec>();
  s->flap(links, mean_up, /*mean_down=*/sim::kMillisecond,
          /*start=*/sim::kMillisecond);
  return s;
}

const FaultPoint kFaultLadder[] = {
    {"off", [] { return faults::FaultSpec::preset("off"); }},
    {"loss", [] { return faults::FaultSpec::preset("loss"); }},
    {"burst", [] { return faults::FaultSpec::preset("burst"); }},
    {"ctrl", [] { return faults::FaultSpec::preset("ctrl"); }},
    {"flap", [] { return flap_spec(1, 5 * sim::kMillisecond); }},
    {"flap2",
     [] { return flap_spec(2, 5 * sim::kMillisecond / 2); }},
    {"chaos", [] { return faults::FaultSpec::preset("chaos"); }},
};

/// Open-loop query traffic on the k=4 fat-tree. The fault preset is
/// baked into the workload name: EngineCounterCache keys runs on
/// topology.name + "/" + workload.name, so every ladder point must have
/// a distinct label (see the CONTRACT note in bench_common.h).
harness::Scenario fig16_scenario(const char* fault_label, bool deadlines,
                                 int num_flows) {
  workload::OpenLoopOptions w;
  w.num_flows = num_flows;
  w.arrivals = workload::ArrivalProcess::poisson(2000.0);
  w.size = workload::uniform_size(2'000, 30'000);
  if (deadlines) {
    w.deadline = workload::exp_deadline(20 * sim::kMillisecond);
  }
  w.pattern = workload::staggered_prob(0.5, 4);

  char wname[64];
  std::snprintf(wname, sizeof wname, "fig16/%s/%s/%d", fault_label,
                deadlines ? "dl" : "nodl", num_flows);

  harness::Scenario s;
  s.topology = harness::TopologySpec::fat_tree(4);
  s.workload = harness::WorkloadSpec::open_loop(w, wname);
  s.options.horizon = 30 * sim::kSecond;
  return s;
}

/// The sweep: one point per fault preset, each arming its own plane
/// (and, transitively, the auditor) in the point's apply hook.
harness::ExperimentSpec ladder_sweep(const std::string& name, bool deadlines,
                                     int num_flows, int trials,
                                     const harness::MetricSpec& metric,
                                     std::uint64_t base_seed) {
  harness::ExperimentSpec spec;
  spec.name = name;
  spec.axis = "fault preset";
  spec.metric = metric;
  spec.trials = trials;
  spec.base_seed = base_seed;
  spec.base = fig16_scenario("off", deadlines, num_flows);
  for (const char* stack : {"PDQ(Full)", "DCTCP", "RCP", "TCP"}) {
    spec.columns.push_back(harness::stack_column(stack));
  }
  for (const FaultPoint& fp : kFaultLadder) {
    harness::SweepPoint pt;
    pt.label = fp.label;
    pt.apply = [fp, deadlines, num_flows](harness::Scenario& s) {
      s = fig16_scenario(fp.label, deadlines, num_flows);
      s.options.faults = fp.make();  // null for "off": historical path
    };
    spec.points.push_back(std::move(pt));
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const std::uint64_t base_seed = args.seed_or();
  const int trials = args.full ? 6 : 3;
  const int num_flows = args.full ? 96 : 48;

  // --- Table 1: deadline miss % vs fault preset ---
  std::printf(
      "Fig 16: deadline miss %% vs injected-fault preset (k=4 fat-tree,\n"
      "open-loop query flows, exp-mean-20ms deadlines). Faulted runs arm\n"
      "the watchdog + invariant auditor; \"off\" is byte-identical to the\n"
      "historical no-fault path.\n\n");
  run_and_report(ladder_sweep("fig16_loss_resilience", /*deadlines=*/true,
                              num_flows, trials,
                              harness::metrics::deadline_miss_percent(),
                              base_seed),
                 args);

  // --- Table 2: p99 FCT, deadline-unconstrained (fig9b convention) ---
  std::printf(
      "\nFig 16b: p99 FCT (ms) of the deadline-unconstrained workload\n"
      "under the same fault ladder:\n\n");
  run_and_report(ladder_sweep("fig16_p99_fct", /*deadlines=*/false,
                              num_flows, trials,
                              harness::metrics::windowed_p99_fct_ms(),
                              base_seed),
                 args);

  // --- Table 3: engine counters, PDQ(Full) per preset (CI gate) ---
  std::printf(
      "\nFig 16 engine counters (PDQ(Full)): operation counts per fault\n"
      "preset. The \"off\" row is the differential guard — byte-identical\n"
      "to a never-faulted run of the same scenario.\n\n");
  auto cache = std::make_shared<EngineCounterCache>();
  harness::ExperimentSpec counters;
  counters.name = "fig16_engine_counters";
  counters.axis = "fault preset";
  counters.metric = harness::metrics::events_processed();
  counters.trials = 1;
  counters.base_seed = base_seed;
  counters.base = fig16_scenario("off", /*deadlines=*/true, num_flows);
  counters.columns = engine_counter_columns(cache, "PDQ(Full)");
  for (const FaultPoint& fp : kFaultLadder) {
    harness::SweepPoint pt;
    pt.label = fp.label;
    pt.apply = [fp, num_flows](harness::Scenario& s) {
      s = fig16_scenario(fp.label, /*deadlines=*/true, num_flows);
      s.options.faults = fp.make();
    };
    counters.points.push_back(std::move(pt));
  }
  run_and_report(counters, args, " %12.1f");

  std::printf(
      "\nExpected shape: PDQ holds the lowest miss rate through loss and\n"
      "burst (rate-stamped recovery needs no congestion inference), and\n"
      "the ctrl column is its stress case — lost grants idle the sender\n"
      "until the next probe tick, where TCP only loses acks it can\n"
      "retransmit into. Flapping hurts every stack about equally (the\n"
      "harness reroutes on the timeline path); chaos compounds all of\n"
      "the above plus a mid-run switch reset that PDQ rebuilds from\n"
      "carried packet state (Algorithm 1). Engine counters grow with\n"
      "fault severity — retransmissions and re-probes are real events —\n"
      "but recycle%% stays high: faults drop packets, never leak them.\n");
  return 0;
}
