// Figure 10: resilience to inaccurate flow information. PDQ with perfect
// flow sizes vs random criticality vs flow-size estimation (criticality
// from bytes already sent, 50 KB buckets), against RCP — under a uniform
// and a Pareto(1.1) flow size distribution. 10 deadline-unconstrained
// flows with mean 100 KB, query aggregation.
#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

double run_mode(const char* dist, core::CriticalityMode mode, bool use_rcp,
                int trials) {
  return average_over_seeds(trials, [&](std::uint64_t seed) {
    sim::Rng rng(seed);
    std::function<std::int64_t(sim::Rng&)> size;
    if (std::string(dist) == "uniform") {
      size = workload::uniform_size(2'000, 198'000);
    } else {
      // Pareto tail index 1.1, scaled to mean ~100 KB:
      // mean = alpha*xm/(alpha-1) => xm = mean*(alpha-1)/alpha.
      size = workload::pareto_size(1.1, 9'090);
    }
    const int n = 10;
    std::vector<net::FlowSpec> flows;
    for (int i = 0; i < n; ++i) {
      net::FlowSpec f;
      f.id = i + 1;
      f.size_bytes = size(rng);
      flows.push_back(f);
    }
    auto build = [&](net::Topology& t) {
      auto servers = net::build_single_bottleneck(t, n);
      for (int i = 0; i < n; ++i) {
        flows[static_cast<std::size_t>(i)].src =
            servers[static_cast<std::size_t>(i)];
        flows[static_cast<std::size_t>(i)].dst = servers.back();
      }
      return servers;
    };
    harness::RunOptions opts;
    opts.horizon = 120 * sim::kSecond;
    opts.seed = seed;
    std::unique_ptr<harness::ProtocolStack> stack;
    if (use_rcp) {
      stack = std::make_unique<harness::RcpStack>();
    } else {
      core::PdqConfig cfg = core::PdqConfig::full();
      cfg.criticality = mode;
      stack = std::make_unique<harness::PdqStack>(cfg, "PDQ");
    }
    return harness::run_scenario(*stack, build, flows, opts).mean_fct_ms();
  });
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int trials = full ? 100 : 48;

  std::printf(
      "Fig 10: mean FCT [ms] with inaccurate flow information\n"
      "(10 flows, mean size 100 KB, query aggregation; flow criticality\n"
      "re-estimated every 50 KB in Estimation mode)\n\n");
  print_header("scheme", {"Uniform", "Pareto(1.1)"});
  struct Row {
    const char* name;
    core::CriticalityMode mode;
    bool rcp;
  };
  const Row rows[] = {
      {"PDQ perfect", core::CriticalityMode::kExact, false},
      {"PDQ random", core::CriticalityMode::kRandom, false},
      {"PDQ estimate", core::CriticalityMode::kEstimation, false},
      {"RCP", core::CriticalityMode::kExact, true},
  };
  for (const auto& row : rows) {
    print_row(row.name, {run_mode("uniform", row.mode, row.rcp, trials),
                         run_mode("pareto", row.mode, row.rcp, trials)});
  }
  std::printf(
      "\nExpected shape (paper): random criticality hurts badly under the\n"
      "heavy-tailed distribution; the simple estimation scheme recovers\n"
      "most of PDQ's advantage and beats RCP under both distributions.\n");
  return 0;
}
