// Figure 10: resilience to inaccurate flow information. PDQ with perfect
// flow sizes vs random criticality vs flow-size estimation (criticality
// from bytes already sent, 50 KB buckets), against RCP — under a uniform
// and a Pareto(1.1) flow size distribution. 10 deadline-unconstrained
// flows with mean 100 KB, query aggregation.
#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

constexpr int kNumFlows = 10;

harness::Scenario dist_scenario(const std::string& dist) {
  harness::Scenario s;
  s.topology = harness::TopologySpec::single_bottleneck(kNumFlows);
  s.workload = harness::WorkloadSpec::custom(
      "aggregation-" + dist,
      [dist](const std::vector<net::NodeId>& servers, sim::Rng& rng) {
        workload::SizeFn size;
        if (dist == "uniform") {
          size = workload::uniform_size(2'000, 198'000);
        } else {
          // Pareto tail index 1.1, scaled to mean ~100 KB:
          // mean = alpha*xm/(alpha-1) => xm = mean*(alpha-1)/alpha.
          size = workload::pareto_size(1.1, 9'090);
        }
        std::vector<net::FlowSpec> flows;
        for (int i = 0; i < kNumFlows; ++i) {
          net::FlowSpec f;
          f.id = i + 1;
          f.size_bytes = size(rng);
          f.src = servers[static_cast<std::size_t>(i)];
          f.dst = servers.back();
          flows.push_back(f);
        }
        return flows;
      });
  s.options.horizon = 120 * sim::kSecond;
  return s;
}

harness::Column pdq_scheme(const char* label, core::CriticalityMode mode) {
  harness::StackOptions options;
  core::PdqConfig cfg = core::PdqConfig::full();
  cfg.criticality = mode;
  options.pdq = cfg;
  options.label = "PDQ";
  return harness::stack_column(label, "PDQ(Full)", options);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const int trials = args.full ? 100 : 48;

  // One sweep per size distribution; schemes are the columns.
  std::vector<harness::SweepResults> by_dist;
  for (const char* dist : {"uniform", "pareto"}) {
    harness::ExperimentSpec spec;
    spec.name = std::string("fig10_inaccurate_info_") + dist;
    spec.axis = "scheme";
    spec.metric = harness::metrics::mean_fct_ms();
    spec.trials = trials;
    spec.base_seed = args.seed_or();
    spec.base = dist_scenario(dist);
    spec.columns.push_back(
        pdq_scheme("PDQ perfect", core::CriticalityMode::kExact));
    spec.columns.push_back(
        pdq_scheme("PDQ random", core::CriticalityMode::kRandom));
    spec.columns.push_back(
        pdq_scheme("PDQ estimate", core::CriticalityMode::kEstimation));
    spec.columns.push_back(harness::stack_column("RCP"));
    spec.points.push_back({dist, nullptr, nullptr});

    harness::SweepRunner runner(args.threads);
    by_dist.push_back(runner.run(spec));
    write_outputs(by_dist.back(), args);
  }

  std::printf(
      "Fig 10: mean FCT [ms] with inaccurate flow information\n"
      "(10 flows, mean size 100 KB, query aggregation; flow criticality\n"
      "re-estimated every 50 KB in Estimation mode)\n\n");
  print_header("scheme", {"Uniform", "Pareto(1.1)"});
  for (std::size_t c = 0; c < by_dist[0].columns.size(); ++c) {
    print_row(by_dist[0].columns[c],
              {by_dist[0].mean(0, c), by_dist[1].mean(0, c)});
  }
  std::printf(
      "\nExpected shape (paper): random criticality hurts badly under the\n"
      "heavy-tailed distribution; the simple estimation scheme recovers\n"
      "most of PDQ's advantage and beats RCP under both distributions.\n");
  return 0;
}
