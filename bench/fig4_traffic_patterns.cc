// Figure 4: performance across sending patterns on the 17-node
// single-rooted tree: Aggregation, Stride(1), Stride(N/2),
// Staggered(0.7), Staggered(0.3), Random Permutation.
//  (a) deadline-constrained: number of flows at 99% application
//      throughput, normalized to PDQ(Full);
//  (b) deadline-unconstrained: mean FCT normalized to PDQ(Full).
#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

struct Pattern {
  const char* name;
  workload::PatternFn fn;
};

std::vector<Pattern> patterns() {
  // 12 servers in 4 racks of 3 (the Fig 2a topology).
  return {
      {"Aggregation", workload::aggregation()},
      {"Stride(1)", workload::stride(1)},
      {"Stride(N/2)", workload::stride(6)},
      {"Staggered(0.7)", workload::staggered_prob(0.7, 3)},
      {"Staggered(0.3)", workload::staggered_prob(0.3, 3)},
      {"RandomPerm", workload::random_permutation()},
  };
}

harness::RunResult run_pattern(harness::ProtocolStack& stack,
                               const workload::PatternFn& pattern,
                               int num_flows, bool deadlines,
                               std::uint64_t seed) {
  sim::Rng rng(seed);
  workload::FlowSetOptions w;
  w.num_flows = num_flows;
  w.size = workload::uniform_size(2'000, 198'000);
  if (deadlines) w.deadline = workload::exp_deadline();
  w.pattern = pattern;

  // Materialize against a scratch copy of the tree for server ids.
  sim::Simulator s0;
  net::Topology t0(s0, 1);
  auto servers = net::build_single_rooted_tree(t0);
  auto flows = workload::make_flows(servers, w, rng);

  auto build = [](net::Topology& t) { return net::build_single_rooted_tree(t); };
  harness::RunOptions opts;
  opts.horizon = 30 * sim::kSecond;
  opts.seed = seed;
  return harness::run_scenario(stack, build, flows, opts);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int trials = full ? 4 : 2;
  const int hi = full ? 64 : 32;
  const std::vector<std::string> stacks = all_stacks();

  std::printf(
      "Fig 4a: flows at 99%% application throughput per sending pattern\n"
      "(absolute counts; paper normalizes to PDQ(Full))\n\n");
  print_header("pattern", stacks);
  for (const auto& p : patterns()) {
    std::vector<double> cells;
    for (const auto& name : stacks) {
      auto pred = [&](int n) {
        return average_over_seeds(trials, [&](std::uint64_t seed) {
                 auto stack = make_stack(name);
                 return run_pattern(*stack, p.fn, n, true, seed)
                     .application_throughput();
               }) >= 99.0;
      };
      cells.push_back(std::max(0, harness::binary_search_max(1, hi, pred)));
    }
    print_row(p.name, cells, " %12.0f");
  }

  std::printf(
      "\nFig 4b: mean FCT per sending pattern, no deadlines (ms; paper\n"
      "normalizes to PDQ(Full))\n\n");
  const std::vector<std::string> fct_stacks{"PDQ(Full)", "PDQ(ES)",
                                            "PDQ(Basic)", "RCP", "TCP"};
  print_header("pattern", fct_stacks);
  const int n_flows = 24;
  for (const auto& p : patterns()) {
    std::vector<double> cells;
    for (const auto& name : fct_stacks) {
      cells.push_back(average_over_seeds(trials, [&](std::uint64_t seed) {
        auto stack = make_stack(name);
        return run_pattern(*stack, p.fn, n_flows, false, seed).mean_fct_ms();
      }));
    }
    print_row(p.name, cells);
  }
  std::printf(
      "\nExpected shape (paper): PDQ wins every pattern; the gap is\n"
      "smallest for Staggered(0.7), where RTT variance is largest.\n");
  return 0;
}
