// Figure 4: performance across sending patterns on the 17-node
// single-rooted tree: Aggregation, Stride(1), Stride(N/2),
// Staggered(0.7), Staggered(0.3), Random Permutation.
//  (a) deadline-constrained: number of flows at 99% application
//      throughput, normalized to PDQ(Full);
//  (b) deadline-unconstrained: mean FCT normalized to PDQ(Full).
#include <algorithm>

#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

struct Pattern {
  const char* name;
  workload::PatternFn fn;
};

std::vector<Pattern> patterns() {
  // 12 servers in 4 racks of 3 (the Fig 2a topology).
  return {
      {"Aggregation", workload::aggregation()},
      {"Stride(1)", workload::stride(1)},
      {"Stride(N/2)", workload::stride(6)},
      {"Staggered(0.7)", workload::staggered_prob(0.7, 3)},
      {"Staggered(0.3)", workload::staggered_prob(0.3, 3)},
      {"RandomPerm", workload::random_permutation()},
  };
}

harness::Scenario pattern_scenario(const workload::PatternFn& pattern,
                                   int num_flows, bool deadlines) {
  workload::FlowSetOptions w;
  w.num_flows = num_flows;
  w.size = workload::uniform_size(2'000, 198'000);
  if (deadlines) w.deadline = workload::exp_deadline();
  w.pattern = pattern;

  harness::Scenario s;
  s.topology = harness::TopologySpec::single_rooted_tree();
  s.workload = harness::WorkloadSpec::flow_set(w);
  s.options.horizon = 30 * sim::kSecond;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const int trials = args.full ? 4 : 2;
  const int hi = args.full ? 64 : 32;
  const std::uint64_t base_seed = args.seed_or();
  const std::vector<std::string> stacks = all_stacks();

  // --- (a) flows at 99% application throughput, binary search ---
  std::printf(
      "Fig 4a: flows at 99%% application throughput per sending pattern\n"
      "(absolute counts; paper normalizes to PDQ(Full))\n\n");
  harness::SweepRunner runner(args.threads);
  {
    std::vector<std::string> points;
    std::vector<std::vector<double>> cells;
    for (const auto& p : patterns()) {
      points.push_back(p.name);
      std::vector<double> row;
      for (const auto& name : stacks) {
        auto pred = [&](int n) {
          return runner.average(
                     pattern_scenario(p.fn, n, true),
                     harness::stack_column(name), trials, base_seed,
                     harness::metrics::application_throughput().fn) >= 99.0;
        };
        row.push_back(std::max(0, harness::binary_search_max(1, hi, pred)));
      }
      cells.push_back(std::move(row));
    }
    auto results = grid_results("fig4a_traffic_patterns", "pattern",
                                "flows_at_99", stacks, points, cells,
                                base_seed);
    harness::TableSink(stdout, " %12.0f").write(results);
    write_outputs(results, args);
  }

  // --- (b) mean FCT, no deadlines ---
  std::printf(
      "\nFig 4b: mean FCT per sending pattern, no deadlines (ms; paper\n"
      "normalizes to PDQ(Full))\n\n");
  harness::ExperimentSpec spec;
  spec.name = "fig4b_traffic_patterns";
  spec.axis = "pattern";
  spec.metric = harness::metrics::mean_fct_ms();
  spec.trials = trials;
  spec.base_seed = base_seed;
  spec.base = pattern_scenario(workload::random_permutation(), 24, false);
  for (const auto& name :
       {"PDQ(Full)", "PDQ(ES)", "PDQ(Basic)", "RCP", "TCP"}) {
    spec.columns.push_back(harness::stack_column(name));
  }
  for (const auto& p : patterns()) {
    harness::SweepPoint point;
    point.label = p.name;
    point.apply = [fn = p.fn](harness::Scenario& s) {
      s = pattern_scenario(fn, 24, false);
    };
    spec.points.push_back(std::move(point));
  }
  run_and_report(spec, args);
  std::printf(
      "\nExpected shape (paper): PDQ wins every pattern; the gap is\n"
      "smallest for Staggered(0.7), where RTT variance is largest.\n");
  return 0;
}
