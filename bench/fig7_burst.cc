// Figure 7: robustness to bursty traffic. A long-lived flow runs from
// t=0; 50 short (~20 KB) flows all arrive at t=10 ms. PDQ preempts the
// long flow, drains the burst near line rate, and resumes.
#include "bench_common.h"
#include <string_view>

using namespace pdq;
using namespace pdq::bench;

int main(int argc, char** argv) {
  if (fixed_scenario_help(argc, argv,
                          "Fixed burst-tolerance time series (Figure 7)")) {
    return 0;
  }  // other flags are accepted and ignored (fixed scenario)

  std::vector<net::FlowSpec> flows;
  net::FlowSpec longf;
  longf.id = 1;
  longf.size_bytes = 12'000'000;
  flows.push_back(longf);
  for (int i = 0; i < 50; ++i) {
    net::FlowSpec f;
    f.id = 2 + i;
    f.size_bytes = 20'000 + (i % 7) * 64;  // 20 KB, small perturbation
    f.start_time = 10 * sim::kMillisecond;
    flows.push_back(f);
  }
  auto stack = bench::make_stack("PDQ(Full)");
  auto build = [&](net::Topology& t) {
    auto servers = net::build_single_bottleneck(t, 51);
    for (std::size_t i = 0; i < flows.size(); ++i) {
      flows[i].src = servers[i];
      flows[i].dst = servers.back();
    }
    return servers;
  };
  harness::RunOptions opts;
  opts.horizon = sim::kSecond;
  opts.watch_link = std::make_pair(net::NodeId{0}, net::NodeId{52});
  opts.per_flow_series = true;
  auto r = harness::run_scenario(*stack, build, flows, opts);

  std::printf(
      "Fig 7: 50 x 20 KB flows burst at t=10 ms into a long-lived flow\n\n");
  std::printf("%4s %12s %13s %9s %11s\n", "ms", "long[Mbps]", "short[Mbps]",
              "util[%]", "queue[pkt]");
  const std::size_t bins = r.flow_goodput_bps[0].size();
  double preempt_util = 0;
  int preempt_bins = 0;
  for (std::size_t b = 0; b < bins && b < 50; ++b) {
    double shorts = 0;
    for (std::size_t i = 1; i < r.flow_goodput_bps.size(); ++i) {
      if (b < r.flow_goodput_bps[i].size()) shorts += r.flow_goodput_bps[i][b];
    }
    const double util =
        b < r.link_utilization.size() ? 100.0 * r.link_utilization[b] : 0.0;
    if (b >= 10 && b < 19) {
      preempt_util += util;
      ++preempt_bins;
    }
    const double qpkts =
        r.queue_series.time_average(
            static_cast<sim::Time>(b) * sim::kMillisecond,
            static_cast<sim::Time>(b + 1) * sim::kMillisecond) /
        1516.0;
    std::printf("%4zu %12.0f %13.0f %9.1f %11.2f\n", b,
                r.flow_goodput_bps[0][b] / 1e6, shorts / 1e6, util, qpkts);
  }
  sim::Time last_short = 0;
  for (const auto& f : r.flows)
    if (f.spec.id >= 2) last_short = std::max(last_short, f.finish_time);
  std::printf(
      "\nburst drained by t=%.1f ms; utilization during preemption: %.1f%%;\n"
      "long flow FCT %.1f ms; peak queue %.1f pkts; drops %lld\n",
      sim::to_millis(last_short),
      preempt_bins ? preempt_util / preempt_bins : 0.0,
      sim::to_millis(r.flow(1)->completion_time()),
      r.queue_series.max_value() / 1516.0,
      static_cast<long long>(r.queue_drops));
  std::printf(
      "\nExpected (paper): burst (1 MB total) drains in ~9 ms at ~92%%\n"
      "utilization; queue stays at 5-10 packets; no drops.\n");
  return 0;
}
