// Figure 5a/5b: the commercial cloud workload (Greenberg et al. [12]
// size mix; our synthetic stand-in), random permutation on the 17-node
// tree, Poisson arrivals. Short flows (<40 KB) carry deadlines.
//  (a) short-flow arrival rate sustainable at 99% application throughput;
//  (b) mean FCT of long flows, normalized to PDQ(Full).
#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

harness::Scenario vl2_scenario(int num_flows, double rate_per_sec) {
  harness::Scenario s;
  s.topology = harness::TopologySpec::single_rooted_tree();
  s.workload = harness::WorkloadSpec::custom(
      "vl2/" + std::to_string(num_flows),
      [num_flows, rate_per_sec](const std::vector<net::NodeId>& servers,
                                sim::Rng& rng) {
        workload::FlowSetOptions w;
        w.num_flows = num_flows;
        w.size = workload::vl2_size();
        w.pattern = workload::random_permutation();
        w.arrival_rate_per_sec = rate_per_sec;
        auto flows = workload::make_flows(servers, w, rng);
        // Short flows (<40 KB) are deadline-constrained (paper S5.3).
        auto dl = workload::exp_deadline();
        for (auto& f : flows) {
          if (f.size_bytes < 40'000) f.deadline = dl(rng);
        }
        return flows;
      });
  s.options.horizon = 30 * sim::kSecond;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const int trials = args.full ? 3 : 2;
  const int num_flows = args.full ? 600 : 200;
  const std::uint64_t base_seed = args.seed_or();
  // With the scaled-down default, a single missed deadline among ~100
  // deadline flows drops below 99%; use a 95% bar by default and the
  // paper's 99% bar in --full mode (which has ~10x the samples).
  const double bar = args.full ? 99.0 : 95.0;

  harness::SweepRunner runner(args.threads);

  std::printf(
      "Fig 5a: flow arrival rate [flows/s] sustained at %.0f%% application\n"
      "throughput (VL2-style size mix, short flows deadline-constrained)\n\n",
      bar);
  const std::vector<std::string> stacks{"PDQ(Full)", "PDQ(ES+ET)",
                                        "PDQ(Basic)", "D3", "RCP", "TCP"};
  {
    // Walk the geometric rate grid until the bar is first missed.
    const std::vector<double> grid =
        args.full ? std::vector<double>{250,  500,   1000,  2000, 4000,
                                        8000, 12000, 16000, 24000}
                  : std::vector<double>{500, 1000, 2000, 4000, 8000, 16000};
    std::vector<std::vector<double>> cells;
    for (const auto& name : stacks) {
      double best = 0;
      for (double rate : grid) {
        const double at = runner.average(
            vl2_scenario(num_flows, rate), harness::stack_column(name),
            trials, base_seed,
            harness::metrics::application_throughput().fn);
        if (at >= bar) {
          best = rate;
        } else {
          break;
        }
      }
      cells.push_back({best});
    }
    auto results =
        grid_results("fig5a_commercial_workload", "protocol", "rate_at_bar",
                     {"rate@bar"}, stacks, cells, base_seed);
    harness::TableSink(stdout, " %12.0f").write(results);
    write_outputs(results, args);
  }

  std::printf(
      "\nFig 5b: mean FCT of long flows (>1 MB) at a moderate arrival rate\n"
      "(ms; paper normalizes to PDQ(Full))\n\n");
  {
    const double rate = args.full ? 2000 : 1000;
    harness::ExperimentSpec spec;
    spec.name = "fig5b_commercial_workload";
    spec.axis = "protocol";
    spec.metric = {"long_flow_fct_ms", [](const harness::RunContext& c) {
                     double sum = 0;
                     int n = 0;
                     for (const auto& f : c.result->flows) {
                       if (f.spec.size_bytes > 1'000'000 &&
                           f.outcome == net::FlowOutcome::kCompleted) {
                         sum += sim::to_millis(f.completion_time());
                         ++n;
                       }
                     }
                     return n ? sum / n : 0.0;
                   }};
    spec.trials = trials;
    spec.base_seed = base_seed;
    spec.base = vl2_scenario(num_flows, rate);
    for (const auto& name :
         {"PDQ(Full)", "PDQ(ES)", "PDQ(Basic)", "RCP", "TCP"}) {
      spec.columns.push_back(harness::stack_column(name));
    }
    spec.points.push_back({"long FCT", nullptr, nullptr});
    run_and_report(spec, args, " %12.2f", /*transpose=*/true);
  }
  std::printf(
      "\nExpected shape (paper): PDQ sustains the highest arrival rate\n"
      "(Suppressed Probing matters here) and shortens long flows ~26%%\n"
      "vs RCP and ~39%% vs TCP.\n");
  return 0;
}
