// Figure 5a/5b: the commercial cloud workload (Greenberg et al. [12]
// size mix; our synthetic stand-in), random permutation on the 17-node
// tree, Poisson arrivals. Short flows (<40 KB) carry deadlines.
//  (a) short-flow arrival rate sustainable at 99% application throughput;
//  (b) mean FCT of long flows, normalized to PDQ(Full).
#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

std::vector<net::FlowSpec> vl2_flows(int num_flows, double rate_per_sec,
                                     std::uint64_t seed) {
  sim::Rng rng(seed);
  sim::Simulator s0;
  net::Topology t0(s0, 1);
  auto servers = net::build_single_rooted_tree(t0);

  workload::FlowSetOptions w;
  w.num_flows = num_flows;
  w.size = workload::vl2_size();
  w.pattern = workload::random_permutation();
  w.arrival_rate_per_sec = rate_per_sec;
  auto flows = workload::make_flows(servers, w, rng);
  // Short flows (<40 KB) are deadline-constrained (paper S5.3).
  auto dl = workload::exp_deadline();
  for (auto& f : flows) {
    if (f.size_bytes < 40'000) f.deadline = dl(rng);
  }
  return flows;
}

harness::RunResult run_vl2(harness::ProtocolStack& stack, int num_flows,
                           double rate, std::uint64_t seed) {
  auto flows = vl2_flows(num_flows, rate, seed);
  auto build = [](net::Topology& t) { return net::build_single_rooted_tree(t); };
  harness::RunOptions opts;
  opts.horizon = 30 * sim::kSecond;
  opts.seed = seed;
  return harness::run_scenario(stack, build, flows, opts);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int trials = full ? 3 : 2;
  const int num_flows = full ? 600 : 200;
  // With the scaled-down default, a single missed deadline among ~100
  // deadline flows drops below 99%; use a 95% bar by default and the
  // paper's 99% bar in --full mode (which has ~10x the samples).
  const double bar = full ? 99.0 : 95.0;

  std::printf(
      "Fig 5a: flow arrival rate [flows/s] sustained at %.0f%% application\n"
      "throughput (VL2-style size mix, short flows deadline-constrained)\n\n",
      bar);
  const std::vector<std::string> stacks{"PDQ(Full)", "PDQ(ES+ET)",
                                        "PDQ(Basic)", "D3", "RCP", "TCP"};
  print_header("protocol", {"rate@bar"});
  for (const auto& name : stacks) {
    // Binary search over the arrival rate (geometric grid, flows/s).
    const std::vector<double> grid =
        full ? std::vector<double>{250,  500,   1000,  2000, 4000,
                                   8000, 12000, 16000, 24000}
             : std::vector<double>{500, 1000, 2000, 4000, 8000, 16000};
    double best = 0;
    for (double rate : grid) {
      const double at = average_over_seeds(trials, [&](std::uint64_t seed) {
        auto stack = make_stack(name);
        return run_vl2(*stack, num_flows, rate, seed).application_throughput();
      });
      if (at >= bar) {
        best = rate;
      } else {
        break;
      }
    }
    print_row(name, {best}, " %12.0f");
  }

  std::printf(
      "\nFig 5b: mean FCT of long flows (>1 MB) at a moderate arrival rate\n"
      "(ms; paper normalizes to PDQ(Full))\n\n");
  print_header("protocol", {"long FCT"});
  const double rate = full ? 2000 : 1000;
  for (const auto& name :
       std::vector<std::string>{"PDQ(Full)", "PDQ(ES)", "PDQ(Basic)", "RCP",
                                "TCP"}) {
    const double fct = average_over_seeds(trials, [&](std::uint64_t seed) {
      auto stack = make_stack(name);
      auto r = run_vl2(*stack, num_flows, rate, seed);
      double sum = 0;
      int n = 0;
      for (const auto& f : r.flows) {
        if (f.spec.size_bytes > 1'000'000 &&
            f.outcome == net::FlowOutcome::kCompleted) {
          sum += sim::to_millis(f.completion_time());
          ++n;
        }
      }
      return n ? sum / n : 0.0;
    });
    print_row(name, {fct});
  }
  std::printf(
      "\nExpected shape (paper): PDQ sustains the highest arrival rate\n"
      "(Suppressed Probing matters here) and shortens long flows ~26%%\n"
      "vs RCP and ~39%% vs TCP.\n");
  return 0;
}
