// Figure 5c: mean FCT under the university data-center workload (EDU1 of
// Benson et al. [6]; our synthetic short-flow-heavy stand-in), normalized
// to PDQ(Full) in the paper.
#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

harness::RunResult run_edu(harness::ProtocolStack& stack, int num_flows,
                           double rate, std::uint64_t seed) {
  sim::Rng rng(seed);
  sim::Simulator s0;
  net::Topology t0(s0, 1);
  auto servers = net::build_single_rooted_tree(t0);

  workload::FlowSetOptions w;
  w.num_flows = num_flows;
  w.size = workload::edu_size();
  w.pattern = workload::random_permutation();
  w.arrival_rate_per_sec = rate;
  auto flows = workload::make_flows(servers, w, rng);

  auto build = [](net::Topology& t) { return net::build_single_rooted_tree(t); };
  harness::RunOptions opts;
  opts.horizon = 60 * sim::kSecond;
  opts.seed = seed;
  return harness::run_scenario(stack, build, flows, opts);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int trials = full ? 4 : 2;
  const int num_flows = full ? 800 : 250;
  const double rate = full ? 4000 : 2000;

  std::printf(
      "Fig 5c: mean FCT under the university (EDU1-style) workload\n"
      "(ms; paper normalizes to PDQ(Full))\n\n");
  const std::vector<std::string> stacks{"PDQ(Full)", "PDQ(ES)", "PDQ(Basic)",
                                        "RCP", "TCP"};
  print_header("protocol", {"mean FCT", "vs PDQ(Full)"});
  double base = 0;
  for (const auto& name : stacks) {
    const double fct = average_over_seeds(trials, [&](std::uint64_t seed) {
      auto stack = make_stack(name);
      return run_edu(*stack, num_flows, rate, seed).mean_fct_ms();
    });
    if (name == "PDQ(Full)") base = fct;
    print_row(name, {fct, base > 0 ? fct / base : 0.0});
  }
  std::printf(
      "\nExpected shape (paper): PDQ(Full) fastest; RCP/D3 and TCP around\n"
      "1.3-2x slower on this short-flow-heavy mix.\n");
  return 0;
}
