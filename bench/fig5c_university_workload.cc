// Figure 5c: mean FCT under the university data-center workload (EDU1 of
// Benson et al. [6]; our synthetic short-flow-heavy stand-in), normalized
// to PDQ(Full) in the paper.
#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const int num_flows = args.full ? 800 : 250;
  const double rate = args.full ? 4000 : 2000;

  harness::ExperimentSpec spec;
  spec.name = "fig5c_university_workload";
  spec.axis = "protocol";
  spec.metric = harness::metrics::mean_fct_ms();
  spec.trials = args.full ? 4 : 2;
  spec.base_seed = args.seed_or();
  {
    workload::FlowSetOptions w;
    w.num_flows = num_flows;
    w.size = workload::edu_size();
    w.pattern = workload::random_permutation();
    w.arrival_rate_per_sec = rate;
    spec.base.topology = harness::TopologySpec::single_rooted_tree();
    spec.base.workload = harness::WorkloadSpec::flow_set(w, "edu");
    spec.base.options.horizon = 60 * sim::kSecond;
  }
  for (const auto& name :
       {"PDQ(Full)", "PDQ(ES)", "PDQ(Basic)", "RCP", "TCP"}) {
    spec.columns.push_back(harness::stack_column(name));
  }
  spec.points.push_back({"mean FCT", nullptr, nullptr});

  std::printf(
      "Fig 5c: mean FCT under the university (EDU1-style) workload\n"
      "(ms; paper normalizes to PDQ(Full))\n\n");
  harness::SweepRunner runner(args.threads);
  auto results = runner.run(spec);
  write_outputs(results, args);

  // Custom table: absolute mean FCT plus the ratio to PDQ(Full).
  print_header("protocol", {"mean FCT", "vs PDQ(Full)"});
  const double base = results.mean(0, 0);  // PDQ(Full) is the first column
  for (std::size_t c = 0; c < results.columns.size(); ++c) {
    const double fct = results.mean(0, c);
    print_row(results.columns[c], {fct, base > 0 ? fct / base : 0.0});
  }
  std::printf(
      "\nExpected shape (paper): PDQ(Full) fastest; RCP/D3 and TCP around\n"
      "1.3-2x slower on this short-flow-heavy mix.\n");
  return 0;
}
