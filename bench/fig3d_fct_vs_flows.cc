// Figure 3d: mean flow completion time (normalized to the omniscient
// optimal) vs number of flows, deadline-unconstrained query aggregation
// with mean flow size 100 KB.
#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int trials = full ? 5 : 3;
  const std::vector<int> flow_counts =
      full ? std::vector<int>{1, 2, 5, 10, 15, 20, 25}
           : std::vector<int>{1, 5, 10, 20};
  // The paper plots PDQ variants, RCP/D3 (identical without deadlines)
  // and TCP.
  const std::vector<std::string> stacks{"PDQ(Full)", "PDQ(ES)", "PDQ(Basic)",
                                        "RCP", "TCP"};

  std::printf(
      "Fig 3d: mean FCT normalized to Optimal vs number of flows\n"
      "(no deadlines, uniform sizes, mean 100 KB; RCP column = RCP/D3)\n\n");
  print_header("#flows", stacks);

  for (int n : flow_counts) {
    std::vector<double> cells;
    for (const auto& name : stacks) {
      cells.push_back(average_over_seeds(trials, [&](std::uint64_t seed) {
        AggregationSpec a;
        a.num_flows = n;
        a.deadlines = false;
        a.seed = seed;
        auto stack = make_stack(name);
        const double fct = run_aggregation(*stack, a).mean_fct_ms();
        const double opt = optimal_mean_fct_ms(a);
        return fct / opt;
      }));
    }
    print_row(std::to_string(n), cells);
  }
  std::printf(
      "\nExpected shape (paper): PDQ(Full) stays near 1 (largest gap at\n"
      "n=1 from flow-initialization latency); RCP/D3 grow toward the fair-\n"
      "sharing penalty (~2x); TCP suffers at both extremes.\n");
  return 0;
}
