// Figure 3d: mean flow completion time (normalized to the omniscient
// optimal) vs number of flows, deadline-unconstrained query aggregation
// with mean flow size 100 KB.
#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const std::vector<int> flow_counts =
      args.full ? std::vector<int>{1, 2, 5, 10, 15, 20, 25}
                : std::vector<int>{1, 5, 10, 20};

  // The paper plots PDQ variants, RCP/D3 (identical without deadlines)
  // and TCP.
  harness::ExperimentSpec spec;
  spec.name = "fig3d_fct_vs_flows";
  spec.title =
      "Fig 3d: mean FCT normalized to Optimal vs number of flows\n"
      "(no deadlines, uniform sizes, mean 100 KB; RCP column = RCP/D3)";
  spec.axis = "#flows";
  spec.metric = harness::metrics::mean_fct_vs_optimal();
  spec.trials = args.full ? 5 : 3;
  spec.base_seed = args.seed_or();
  spec.base = harness::aggregation_scenario({});
  for (const auto& name :
       {"PDQ(Full)", "PDQ(ES)", "PDQ(Basic)", "RCP", "TCP"}) {
    spec.columns.push_back(harness::stack_column(name));
  }
  for (int n : flow_counts) {
    harness::SweepPoint p;
    p.label = std::to_string(n);
    p.apply = [n](harness::Scenario& s) {
      harness::AggregationSpec a;
      a.num_flows = n;
      a.deadlines = false;
      s = harness::aggregation_scenario(a);
    };
    spec.points.push_back(std::move(p));
  }

  std::printf("%s\n\n", spec.title.c_str());
  run_and_report(spec, args);
  std::printf(
      "\nExpected shape (paper): PDQ(Full) stays near 1 (largest gap at\n"
      "n=1 from flow-initialization latency); RCP/D3 grow toward the fair-\n"
      "sharing penalty (~2x); TCP suffers at both extremes.\n");
  return 0;
}
