// Ablation study over PDQ's design parameters — the knobs DESIGN.md calls
// out. Not a paper figure; quantifies each mechanism's contribution on
// two canonical workloads:
//   A) 20 short flows (20 KB) into one receiver (switching-bound);
//   B) 10 mixed flows with deadlines (scheduling-bound).
// Sweeps: Early Start K, Dampening window, Suppressed Probing X, the
// per-link state cap M, and the unpause hysteresis fraction.
#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

double short_flow_mean_fct(const core::PdqConfig& cfg, int trials) {
  return average_over_seeds(trials, [&](std::uint64_t seed) {
    AggregationSpec a;
    a.num_flows = 20;
    a.size_lo = 20'000;
    a.size_hi = 20'000;
    a.deadlines = false;
    a.seed = seed;
    harness::PdqStack stack(cfg, "PDQ");
    return run_aggregation(stack, a).mean_fct_ms();
  });
}

double deadline_app_throughput(const core::PdqConfig& cfg, int trials) {
  return average_over_seeds(trials, [&](std::uint64_t seed) {
    AggregationSpec a;
    a.num_flows = 10;
    a.seed = seed;
    harness::PdqStack stack(cfg, "PDQ");
    return run_aggregation(stack, a).application_throughput();
  });
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int trials = full ? 10 : 4;

  std::printf("PDQ design ablations (A: 20x20KB mean FCT [ms]; "
              "B: 10-flow deadline app throughput [%%])\n\n");

  std::printf("-- Early Start threshold K (paper: any K in [1,2]; 0 = off)\n");
  print_header("K", {"A: FCT", "B: appthr"});
  for (double k : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    core::PdqConfig cfg = core::PdqConfig::full();
    cfg.early_start = k > 0;
    cfg.early_start_K = k;
    print_row(std::to_string(k).substr(0, 3),
              {short_flow_mean_fct(cfg, trials),
               deadline_app_throughput(cfg, trials)});
  }

  std::printf("\n-- Dampening window [us] (suppresses unpause flapping)\n");
  print_header("window", {"A: FCT", "B: appthr"});
  for (int us : {0, 50, 200, 1000, 5000}) {
    core::PdqConfig cfg = core::PdqConfig::full();
    cfg.dampening = us * sim::kMicrosecond;
    print_row(std::to_string(us),
              {short_flow_mean_fct(cfg, trials),
               deadline_app_throughput(cfg, trials)});
  }

  std::printf("\n-- Suppressed Probing X (probe gap = X * list index RTTs)\n");
  print_header("X", {"A: FCT", "B: appthr"});
  for (double x : {0.0, 0.1, 0.2, 0.5, 1.0}) {
    core::PdqConfig cfg = core::PdqConfig::full();
    cfg.suppressed_probing = x > 0;
    cfg.probing_X = x;
    print_row(std::to_string(x).substr(0, 3),
              {short_flow_mean_fct(cfg, trials),
               deadline_app_throughput(cfg, trials)});
  }

  std::printf("\n-- Per-link flow state cap M (RCP fallback beyond M)\n");
  print_header("M", {"A: FCT", "B: appthr"});
  for (int m : {2, 4, 8, 64, 1 << 14}) {
    core::PdqConfig cfg = core::PdqConfig::full();
    cfg.max_flows_M = m;
    print_row(std::to_string(m),
              {short_flow_mean_fct(cfg, trials),
               deadline_app_throughput(cfg, trials)});
  }

  std::printf("\n-- Unpause hysteresis fraction (0 = accept any slack)\n");
  print_header("fraction", {"A: FCT", "B: appthr"});
  for (double f : {0.0, 0.1, 0.5, 0.9}) {
    core::PdqConfig cfg = core::PdqConfig::full();
    cfg.unpause_fraction = f;
    print_row(std::to_string(f).substr(0, 3),
              {short_flow_mean_fct(cfg, trials),
               deadline_app_throughput(cfg, trials)});
  }

  std::printf(
      "\nReading: K in [1,2] balances switching overlap against queueing;\n"
      "tiny M degrades gracefully toward fair sharing (the paper's S3.3.1\n"
      "claim); moderate dampening and hysteresis stabilize switchover.\n");
  return 0;
}
