// Ablation study over PDQ's design parameters — the knobs DESIGN.md calls
// out. Not a paper figure; quantifies each mechanism's contribution on
// two canonical workloads:
//   A) 20 short flows (20 KB) into one receiver (switching-bound);
//   B) 10 mixed flows with deadlines (scheduling-bound).
// Sweeps: Early Start K, Dampening window, Suppressed Probing X, the
// per-link state cap M, and the unpause hysteresis fraction. Each knob
// value runs as a registry config override through the sweep pool.
#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

harness::Scenario scenario_a() {  // 20 x 20 KB, no deadlines
  harness::AggregationSpec a;
  a.num_flows = 20;
  a.size_lo = 20'000;
  a.size_hi = 20'000;
  a.deadlines = false;
  return harness::aggregation_scenario(a);
}

harness::Scenario scenario_b() {  // 10 mixed flows with deadlines
  harness::AggregationSpec a;
  a.num_flows = 10;
  return harness::aggregation_scenario(a);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const int trials = args.full ? 10 : 4;
  const std::uint64_t base_seed = args.seed_or();

  harness::SweepRunner runner(args.threads);
  auto cells_for = [&](const core::PdqConfig& cfg) -> std::vector<double> {
    harness::StackOptions options;
    options.pdq = cfg;
    options.label = "PDQ";
    return {runner.average(scenario_a(),
                           harness::stack_column("A", "PDQ(Full)", options),
                           trials, base_seed,
                           harness::metrics::mean_fct_ms().fn),
            runner.average(scenario_b(),
                           harness::stack_column("B", "PDQ(Full)", options),
                           trials, base_seed,
                           harness::metrics::application_throughput().fn)};
  };
  auto report = [&](const std::string& name, const char* axis,
                    const std::vector<std::string>& points,
                    const std::vector<std::vector<double>>& cells) {
    auto results = grid_results(name, axis, "fct_ms/app_throughput",
                                {"A: FCT", "B: appthr"}, points, cells,
                                base_seed);
    harness::TableSink(stdout).write(results);
    write_outputs(results, args);
  };

  std::printf("PDQ design ablations (A: 20x20KB mean FCT [ms]; "
              "B: 10-flow deadline app throughput [%%])\n\n");

  std::printf("-- Early Start threshold K (paper: any K in [1,2]; 0 = off)\n");
  {
    std::vector<std::string> points;
    std::vector<std::vector<double>> cells;
    for (double k : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
      core::PdqConfig cfg = core::PdqConfig::full();
      cfg.early_start = k > 0;
      cfg.early_start_K = k;
      points.push_back(std::to_string(k).substr(0, 3));
      cells.push_back(cells_for(cfg));
    }
    report("ablation_pdq_early_start", "K", points, cells);
  }

  std::printf("\n-- Dampening window [us] (suppresses unpause flapping)\n");
  {
    std::vector<std::string> points;
    std::vector<std::vector<double>> cells;
    for (int us : {0, 50, 200, 1000, 5000}) {
      core::PdqConfig cfg = core::PdqConfig::full();
      cfg.dampening = us * sim::kMicrosecond;
      points.push_back(std::to_string(us));
      cells.push_back(cells_for(cfg));
    }
    report("ablation_pdq_dampening", "window", points, cells);
  }

  std::printf("\n-- Suppressed Probing X (probe gap = X * list index RTTs)\n");
  {
    std::vector<std::string> points;
    std::vector<std::vector<double>> cells;
    for (double x : {0.0, 0.1, 0.2, 0.5, 1.0}) {
      core::PdqConfig cfg = core::PdqConfig::full();
      cfg.suppressed_probing = x > 0;
      cfg.probing_X = x;
      points.push_back(std::to_string(x).substr(0, 3));
      cells.push_back(cells_for(cfg));
    }
    report("ablation_pdq_probing", "X", points, cells);
  }

  std::printf("\n-- Per-link flow state cap M (RCP fallback beyond M)\n");
  {
    std::vector<std::string> points;
    std::vector<std::vector<double>> cells;
    for (int m : {2, 4, 8, 64, 1 << 14}) {
      core::PdqConfig cfg = core::PdqConfig::full();
      cfg.max_flows_M = m;
      points.push_back(std::to_string(m));
      cells.push_back(cells_for(cfg));
    }
    report("ablation_pdq_state_cap", "M", points, cells);
  }

  std::printf("\n-- Unpause hysteresis fraction (0 = accept any slack)\n");
  {
    std::vector<std::string> points;
    std::vector<std::vector<double>> cells;
    for (double f : {0.0, 0.1, 0.5, 0.9}) {
      core::PdqConfig cfg = core::PdqConfig::full();
      cfg.unpause_fraction = f;
      points.push_back(std::to_string(f).substr(0, 3));
      cells.push_back(cells_for(cfg));
    }
    report("ablation_pdq_hysteresis", "fraction", points, cells);
  }

  std::printf(
      "\nReading: K in [1,2] balances switching overlap against queueing;\n"
      "tiny M degrades gracefully toward fair sharing (the paper's S3.3.1\n"
      "claim); moderate dampening and hysteresis stabilize switchover.\n");
  return 0;
}
