// Figure 3b: application throughput [%] vs average flow size with 3
// concurrent deadline flows (uniform sizes around the mean).
#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const std::vector<int> means_kb =
      args.full ? std::vector<int>{100, 150, 200, 250, 300, 350}
                : std::vector<int>{100, 200, 300};

  harness::ExperimentSpec spec;
  spec.name = "fig3b_appthroughput_vs_size";
  spec.title =
      "Fig 3b: application throughput [%] vs avg flow size, 3 flows";
  spec.axis = "avg size [KB]";
  spec.metric = harness::metrics::application_throughput();
  spec.trials = args.full ? 8 : 4;
  spec.base_seed = args.seed_or();
  spec.base = harness::aggregation_scenario({});

  harness::Column optimal;
  optimal.label = "Optimal";
  optimal.metric = harness::metrics::optimal_application_throughput().fn;
  spec.columns.push_back(optimal);
  for (const auto& name : all_stacks()) {
    spec.columns.push_back(harness::stack_column(name));
  }

  for (int kb : means_kb) {
    harness::SweepPoint p;
    p.label = std::to_string(kb);
    p.apply = [kb](harness::Scenario& s) {
      harness::AggregationSpec a;
      a.num_flows = 3;
      a.size_lo = (kb - 98) * 1000L;
      a.size_hi = (kb + 98) * 1000L;
      s = harness::aggregation_scenario(a);
    };
    spec.points.push_back(std::move(p));
  }

  std::printf("%s\n\n", spec.title.c_str());
  run_and_report(spec, args, " %12.1f");
  std::printf(
      "\nExpected shape (paper): deadline-agnostic TCP/RCP degrade as flows\n"
      "grow; PDQ stays near Optimal at every size.\n");
  return 0;
}
