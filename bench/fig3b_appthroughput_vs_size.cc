// Figure 3b: application throughput [%] vs average flow size with 3
// concurrent deadline flows (uniform sizes around the mean).
#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int trials = full ? 8 : 4;
  const std::vector<int> means_kb = full
                                        ? std::vector<int>{100, 150, 200, 250,
                                                           300, 350}
                                        : std::vector<int>{100, 200, 300};

  std::printf(
      "Fig 3b: application throughput [%%] vs avg flow size, 3 flows\n\n");
  std::vector<std::string> cols{"Optimal"};
  for (const auto& s : all_stacks()) cols.push_back(s);
  print_header("avg size [KB]", cols);

  for (int kb : means_kb) {
    AggregationSpec base;
    base.num_flows = 3;
    base.size_lo = (kb - 98) * 1000L;
    base.size_hi = (kb + 98) * 1000L;
    std::vector<double> cells;
    cells.push_back(average_over_seeds(trials, [&](std::uint64_t seed) {
      AggregationSpec a = base;
      a.seed = seed;
      return optimal_app_throughput(a);
    }));
    for (const auto& name : all_stacks()) {
      cells.push_back(average_over_seeds(trials, [&](std::uint64_t seed) {
        AggregationSpec a = base;
        a.seed = seed;
        auto stack = make_stack(name);
        return run_aggregation(*stack, a).application_throughput();
      }));
    }
    print_row(std::to_string(kb), cells, " %12.1f");
  }
  std::printf(
      "\nExpected shape (paper): deadline-agnostic TCP/RCP degrade as flows\n"
      "grow; PDQ stays near Optimal at every size.\n");
  return 0;
}
