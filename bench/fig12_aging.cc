// Figure 12: flow aging prevents starvation of less critical flows.
// The sender divides its advertised T by 2^(alpha * wait/100ms); larger
// alpha lets long-waiting flows climb the criticality order. Flow-level
// simulation on a fat-tree with random-permutation traffic, as in the
// paper (which uses a 128-server fat-tree).
#include "bench_common.h"
#include "flowsim/flowsim.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

harness::Scenario aging_scenario(int k, int flows_per_server) {
  const int servers = k * k * k / 4;
  workload::FlowSetOptions w;
  w.num_flows = servers * flows_per_server;
  // A strongly skewed mix under near-saturation load, so pure SJF keeps
  // preempting the elephants (the starvation Fig 12 is about).
  w.size = workload::pareto_size(1.25, 30'000, 30'000'000);
  w.pattern = workload::random_permutation();
  w.arrival_rate_per_sec = 400.0 * servers;

  harness::Scenario s;
  s.topology = harness::TopologySpec::fat_tree(k);
  s.workload = harness::WorkloadSpec::flow_set(w, "aging-perm");
  return s;
}

/// Flow-level-simulation column: runs flowsim on the scenario's topology
/// and workload instead of the packet engine.
harness::Column flowsim_column(const std::string& label, double alpha,
                               bool rcp, bool want_max) {
  harness::Column c;
  c.label = label;
  c.evaluate = [alpha, rcp, want_max](const harness::Scenario& sc,
                                      std::uint64_t seed) {
    sim::Simulator simulator;
    net::Topology topo(simulator, seed);
    auto servers = sc.topology.build(topo);
    sim::Rng rng(seed);
    auto flows = sc.workload.make(servers, rng);
    flowsim::Options o;
    o.model = rcp ? flowsim::Model::kRcp : flowsim::Model::kPdq;
    o.aging_alpha = alpha;
    flowsim::FlowLevelSimulator fs(topo, o);
    auto r = fs.run(flows);
    return want_max ? r.max_fct_ms() : r.mean_fct_ms();
  };
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const int k = args.full ? 8 : 4;  // 128 or 16 servers
  // Enough arrivals that the stream outlives the largest elephants --
  // starvation needs sustained competition, not a one-shot burst.
  const int fps = args.full ? 600 : 300;
  const int trials = args.full ? 3 : 1;
  const std::uint64_t base_seed = args.seed_or();

  std::printf(
      "Fig 12: effect of the aging rate alpha on PDQ flow completion\n"
      "times (fat-tree k=%d, Pareto sizes, random permutation)\n\n",
      k);

  harness::SweepRunner runner(args.threads);
  const harness::Scenario scenario = aging_scenario(k, fps);
  const double rcp_mean = runner.average(
      scenario, flowsim_column("RCP mean", 0.0, true, false), trials,
      base_seed);
  const double rcp_max = runner.average(
      scenario, flowsim_column("RCP max", 0.0, true, true), trials, base_seed);

  std::vector<std::string> points;
  std::vector<std::vector<double>> cells;
  for (double alpha :
       (args.full ? std::vector<double>{0.0, 1.0, 2.0, 4.0, 8.0, 10.0}
                  : std::vector<double>{0.0, 2.0, 8.0})) {
    points.push_back(std::to_string(alpha).substr(0, 4));
    cells.push_back(
        {runner.average(scenario,
                        flowsim_column("PDQ mean", alpha, false, false),
                        trials, base_seed),
         runner.average(scenario,
                        flowsim_column("PDQ max", alpha, false, true), trials,
                        base_seed),
         rcp_mean, rcp_max});
  }

  auto results = grid_results("fig12_aging", "alpha", "fct_ms",
                              {"PDQ mean", "PDQ max", "RCP mean", "RCP max"},
                              points, cells, base_seed);
  harness::TableSink(stdout).write(results);
  write_outputs(results, args);
  std::printf(
      "\nExpected shape (paper): aging cuts PDQ's worst-case FCT by ~48%%\n"
      "while the mean rises only ~1.7%%; both stay well below RCP/D3.\n");
  return 0;
}
