// Figure 12: flow aging prevents starvation of less critical flows.
// The sender divides its advertised T by 2^(alpha * wait/100ms); larger
// alpha lets long-waiting flows climb the criticality order. Flow-level
// simulation on a fat-tree with random-permutation traffic, as in the
// paper (which uses a 128-server fat-tree).
#include "bench_common.h"
#include "flowsim/flowsim.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

struct AgingResult {
  double mean_ms;
  double max_ms;
};

AgingResult run_aging(double alpha, bool rcp, int k, int flows_per_server,
                      std::uint64_t seed) {
  sim::Simulator simulator;
  net::Topology topo(simulator, seed);
  auto servers = net::build_fat_tree(topo, k);
  sim::Rng rng(seed);
  workload::FlowSetOptions w;
  w.num_flows = static_cast<int>(servers.size()) * flows_per_server;
  // A strongly skewed mix under near-saturation load, so pure SJF keeps
  // preempting the elephants (the starvation Fig 12 is about).
  w.size = workload::pareto_size(1.25, 30'000, 30'000'000);
  w.pattern = workload::random_permutation();
  w.arrival_rate_per_sec = 400.0 * static_cast<double>(servers.size());
  auto flows = workload::make_flows(servers, w, rng);

  flowsim::Options o;
  o.model = rcp ? flowsim::Model::kRcp : flowsim::Model::kPdq;
  o.aging_alpha = alpha;
  flowsim::FlowLevelSimulator fs(topo, o);
  auto r = fs.run(flows);
  return {r.mean_fct_ms(), r.max_fct_ms()};
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int k = full ? 8 : 4;  // 128 or 16 servers
  // Enough arrivals that the stream outlives the largest elephants --
  // starvation needs sustained competition, not a one-shot burst.
  const int fps = full ? 600 : 300;
  const int trials = full ? 3 : 1;

  std::printf(
      "Fig 12: effect of the aging rate alpha on PDQ flow completion\n"
      "times (fat-tree k=%d, Pareto sizes, random permutation)\n\n",
      k);
  print_header("alpha", {"PDQ mean", "PDQ max", "RCP mean", "RCP max"});

  AgingResult rcp{0, 0};
  {
    double mean = 0, mx = 0;
    for (int t = 0; t < trials; ++t) {
      auto r = run_aging(0.0, true, k, fps, 1000 + 7u * t);
      mean += r.mean_ms;
      mx += r.max_ms;
    }
    rcp = {mean / trials, mx / trials};
  }
  for (double alpha : (full ? std::vector<double>{0.0, 1.0, 2.0, 4.0, 8.0, 10.0}
                            : std::vector<double>{0.0, 2.0, 8.0})) {
    double mean = 0, mx = 0;
    for (int t = 0; t < trials; ++t) {
      auto r = run_aging(alpha, false, k, fps, 1000 + 7u * t);
      mean += r.mean_ms;
      mx += r.max_ms;
    }
    print_row(std::to_string(alpha).substr(0, 4),
              {mean / trials, mx / trials, rcp.mean_ms, rcp.max_ms});
  }
  std::printf(
      "\nExpected shape (paper): aging cuts PDQ's worst-case FCT by ~48%%\n"
      "while the mean rises only ~1.7%%; both stay well below RCP/D3.\n");
  return 0;
}
