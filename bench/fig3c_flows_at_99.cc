// Figure 3c: max number of concurrent flows a protocol supports at 99%
// application throughput, vs mean flow deadline (binary search, as in the
// paper). The seed-averaged predicate inside the search fans its trials
// across the SweepRunner pool.
#include <algorithm>

#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const int trials = args.full ? 5 : 2;
  const int hi = args.full ? 96 : 48;
  const std::vector<int> deadline_ms = args.full
                                           ? std::vector<int>{20, 30, 40, 50, 60}
                                           : std::vector<int>{20, 40, 60};
  const std::uint64_t base_seed = args.seed_or();

  harness::SweepRunner runner(args.threads);
  harness::Column optimal;
  optimal.label = "Optimal";
  optimal.metric = harness::metrics::optimal_application_throughput().fn;

  /// A column "supports" n flows if its application throughput averaged
  /// over the trial seeds is >= 99%.
  auto flows_at_99 = [&](const harness::Column& col, sim::Time mean) {
    auto pred = [&](int n) {
      harness::AggregationSpec a;
      a.num_flows = n;
      a.deadline_mean = mean;
      return runner.average(harness::aggregation_scenario(a), col, trials,
                            base_seed,
                            harness::metrics::application_throughput().fn) >=
             99.0;
    };
    return static_cast<double>(
        std::max(0, harness::binary_search_max(1, hi, pred)));
  };

  std::vector<std::string> columns{"Optimal"};
  for (const auto& s : all_stacks()) columns.push_back(s);
  std::vector<std::string> points;
  std::vector<std::vector<double>> cells;
  for (int ms : deadline_ms) {
    const sim::Time mean = ms * sim::kMillisecond;
    points.push_back(std::to_string(ms));
    std::vector<double> row;
    row.push_back(flows_at_99(optimal, mean));
    for (const auto& name : all_stacks()) {
      row.push_back(flows_at_99(harness::stack_column(name), mean));
    }
    cells.push_back(std::move(row));
  }

  std::printf(
      "Fig 3c: number of flows supported at 99%% application throughput\n"
      "vs mean flow deadline\n\n");
  auto results = grid_results("fig3c_flows_at_99", "deadline [ms]", "flows_at_99",
                              columns, points, cells, base_seed);
  harness::TableSink(stdout, " %12.0f").write(results);
  write_outputs(results, args);
  std::printf(
      "\nExpected shape (paper): PDQ supports >3x the concurrent senders of\n"
      "D3 at 99%% application throughput, widening with the mean deadline.\n");
  return 0;
}
