// Figure 3c: max number of concurrent flows a protocol supports at 99%
// application throughput, vs mean flow deadline (binary search, as in the
// paper).
#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

/// A protocol "supports" n flows if the average application throughput
/// over `trials` seeds is >= 99%.
int flows_at_99(const std::string& stack_name, sim::Time deadline_mean,
                int trials, int hi) {
  auto pred = [&](int n) {
    const double at = average_over_seeds(trials, [&](std::uint64_t seed) {
      AggregationSpec a;
      a.num_flows = n;
      a.deadline_mean = deadline_mean;
      a.seed = seed;
      auto stack = make_stack(stack_name);
      return run_aggregation(*stack, a).application_throughput();
    });
    return at >= 99.0;
  };
  return std::max(0, harness::binary_search_max(1, hi, pred));
}

int optimal_at_99(sim::Time deadline_mean, int trials, int hi) {
  auto pred = [&](int n) {
    return average_over_seeds(trials, [&](std::uint64_t seed) {
             AggregationSpec a;
             a.num_flows = n;
             a.deadline_mean = deadline_mean;
             a.seed = seed;
             return optimal_app_throughput(a);
           }) >= 99.0;
  };
  return std::max(0, harness::binary_search_max(1, hi, pred));
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int trials = full ? 5 : 2;
  const int hi = full ? 96 : 48;
  const std::vector<int> deadline_ms =
      full ? std::vector<int>{20, 30, 40, 50, 60}
           : std::vector<int>{20, 40, 60};

  std::printf(
      "Fig 3c: number of flows supported at 99%% application throughput\n"
      "vs mean flow deadline\n\n");
  std::vector<std::string> cols{"Optimal"};
  for (const auto& s : all_stacks()) cols.push_back(s);
  print_header("deadline [ms]", cols);

  for (int ms : deadline_ms) {
    const sim::Time mean = ms * sim::kMillisecond;
    std::vector<double> cells;
    cells.push_back(optimal_at_99(mean, trials, hi));
    for (const auto& name : all_stacks()) {
      cells.push_back(flows_at_99(name, mean, trials, hi));
    }
    print_row(std::to_string(ms), cells, " %12.0f");
  }
  std::printf(
      "\nExpected shape (paper): PDQ supports >3x the concurrent senders of\n"
      "D3 at 99%% application throughput, widening with the mean deadline.\n");
  return 0;
}
