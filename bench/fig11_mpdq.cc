// Figure 11: Multipath PDQ on BCube(2,3) with random permutation traffic.
//  (a) mean FCT vs load (fraction of hosts sending), PDQ vs M-PDQ(3);
//  (b) mean FCT vs number of subflows at 100% load;
//  (c) flows at 99% application throughput vs number of subflows.
#include <algorithm>

#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

harness::Scenario bcube_scenario(int num_flows, std::int64_t size,
                                 bool deadlines) {
  workload::FlowSetOptions w;
  w.num_flows = num_flows;
  w.size = workload::uniform_size(size, size);
  if (deadlines) w.deadline = workload::exp_deadline(40 * sim::kMillisecond);
  w.pattern = workload::random_permutation();

  harness::Scenario s;
  s.topology = harness::TopologySpec::bcube(2, 3);
  s.workload = harness::WorkloadSpec::flow_set(w, "bcube-perm");
  s.options.horizon = 30 * sim::kSecond;
  return s;
}

harness::Column mpdq_column(const std::string& label, int subflows) {
  if (subflows == 0) return harness::stack_column(label, "PDQ(Full)");
  harness::StackOptions options;
  options.subflows = subflows;
  return harness::stack_column(label, "M-PDQ", options);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const int trials = args.full ? 5 : 2;
  const std::uint64_t base_seed = args.seed_or();

  // --- (a) mean FCT vs load ---
  std::printf("Fig 11a: mean FCT [ms] vs load, PDQ vs M-PDQ (3 subflows)\n\n");
  {
    harness::ExperimentSpec spec;
    spec.name = "fig11a_mpdq_load";
    spec.axis = "load [%hosts]";
    spec.metric = harness::metrics::mean_fct_ms();
    spec.trials = trials;
    spec.base_seed = base_seed;
    spec.base = bcube_scenario(16, 1'000'000, false);
    spec.columns.push_back(mpdq_column("PDQ", 0));
    spec.columns.push_back(mpdq_column("M-PDQ(3)", 3));
    for (double load : {0.25, 0.5, 0.75, 1.0}) {
      const int n = std::max(1, static_cast<int>(16 * load));
      harness::SweepPoint p;
      p.label = std::to_string(static_cast<int>(load * 100));
      p.apply = [n](harness::Scenario& s) {
        s = bcube_scenario(n, 1'000'000, false);
      };
      spec.points.push_back(std::move(p));
    }
    run_and_report(spec, args);
  }

  // --- (b) mean FCT vs subflow count at 100% load ---
  std::printf("\nFig 11b: mean FCT [ms] vs number of subflows (100%% load)\n\n");
  {
    harness::ExperimentSpec spec;
    spec.name = "fig11b_mpdq_subflows";
    spec.axis = "subflows";
    spec.metric = harness::metrics::mean_fct_ms();
    spec.trials = trials;
    spec.base_seed = base_seed;
    spec.base = bcube_scenario(16, 1'000'000, false);
    spec.columns.push_back(mpdq_column("PDQ", 0));
    for (int s : {2, 3, 4, 6, 8}) {
      spec.columns.push_back(mpdq_column(std::to_string(s), s));
    }
    spec.points.push_back({"mean FCT", nullptr, nullptr});
    run_and_report(spec, args, " %12.2f", /*transpose=*/true);
  }

  // --- (c) flows at 99% application throughput vs subflows ---
  std::printf(
      "\nFig 11c: flows at 99%% application throughput vs subflows\n"
      "(deadline-constrained, exp(40 ms) deadlines)\n\n");
  {
    harness::SweepRunner runner(args.threads);
    const int hi = args.full ? 64 : 40;
    auto flows_at_99 = [&](int subflows) {
      auto pred = [&](int n) {
        return runner.average(
                   bcube_scenario(n, 100'000, true),
                   mpdq_column("x", subflows), trials, base_seed,
                   harness::metrics::application_throughput().fn) >= 99.0;
      };
      return static_cast<double>(
          std::max(0, harness::binary_search_max(1, hi, pred)));
    };
    std::vector<std::string> points{"PDQ"};
    std::vector<std::vector<double>> cells{{flows_at_99(0)}};
    for (int s : {2, 4, 8}) {
      points.push_back(std::to_string(s));
      cells.push_back({flows_at_99(s)});
    }
    auto results =
        grid_results("fig11c_mpdq_flows_at_99", "subflows", "flows_at_99",
                     {"flows@99%"}, points, cells, base_seed);
    harness::TableSink(stdout, " %12.0f").write(results);
    write_outputs(results, args);
  }
  std::printf(
      "\nExpected shape (paper): ~2x FCT gain at light load shrinking as\n"
      "load grows; ~4 subflows reach most of the multipath benefit.\n");
  return 0;
}
