// Figure 11: Multipath PDQ on BCube(2,3) with random permutation traffic.
//  (a) mean FCT vs load (fraction of hosts sending), PDQ vs M-PDQ(3);
//  (b) mean FCT vs number of subflows at 100% load;
//  (c) flows at 99% application throughput vs number of subflows.
#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

std::vector<net::FlowSpec> bcube_flows(int num_flows, std::int64_t size,
                                       bool deadlines, std::uint64_t seed) {
  sim::Rng rng(seed);
  sim::Simulator s0;
  net::Topology t0(s0, 1);
  auto servers = net::build_bcube(t0, 2, 3);
  workload::FlowSetOptions w;
  w.num_flows = num_flows;
  w.size = workload::uniform_size(size, size);
  if (deadlines) w.deadline = workload::exp_deadline(40 * sim::kMillisecond);
  w.pattern = workload::random_permutation();
  return workload::make_flows(servers, w, rng);
}

harness::RunResult run_bcube(harness::ProtocolStack& st,
                             const std::vector<net::FlowSpec>& flows,
                             std::uint64_t seed) {
  auto build = [](net::Topology& t) { return net::build_bcube(t, 2, 3); };
  harness::RunOptions opts;
  opts.horizon = 30 * sim::kSecond;
  opts.seed = seed;
  return harness::run_scenario(st, build, flows, opts);
}

double mpdq_fct(int subflows, int num_flows, int trials) {
  return average_over_seeds(trials, [&](std::uint64_t seed) {
    auto flows = bcube_flows(num_flows, 1'000'000, false, seed);
    if (subflows == 0) {
      harness::PdqStack st;
      return run_bcube(st, flows, seed).mean_fct_ms();
    }
    core::MpdqConfig cfg;
    cfg.num_subflows = subflows;
    harness::MpdqStack st(cfg);
    return run_bcube(st, flows, seed).mean_fct_ms();
  });
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int trials = full ? 5 : 2;

  std::printf("Fig 11a: mean FCT [ms] vs load, PDQ vs M-PDQ (3 subflows)\n\n");
  print_header("load [%hosts]", {"PDQ", "M-PDQ(3)"});
  for (double load : {0.25, 0.5, 0.75, 1.0}) {
    const int n = std::max(1, static_cast<int>(16 * load));
    print_row(std::to_string(static_cast<int>(load * 100)),
              {mpdq_fct(0, n, trials), mpdq_fct(3, n, trials)});
  }

  std::printf("\nFig 11b: mean FCT [ms] vs number of subflows (100%% load)\n\n");
  print_header("subflows", {"mean FCT"});
  print_row("PDQ", {mpdq_fct(0, 16, trials)});
  for (int s : {2, 3, 4, 6, 8}) {
    print_row(std::to_string(s), {mpdq_fct(s, 16, trials)});
  }

  std::printf(
      "\nFig 11c: flows at 99%% application throughput vs subflows\n"
      "(deadline-constrained, exp(40 ms) deadlines)\n\n");
  print_header("subflows", {"flows@99%"});
  const int hi = full ? 64 : 40;
  auto flows_at_99 = [&](int subflows) {
    auto pred = [&](int n) {
      return average_over_seeds(trials, [&](std::uint64_t seed) {
               auto flows = bcube_flows(n, 100'000, true, seed);
               if (subflows == 0) {
                 harness::PdqStack st;
                 return run_bcube(st, flows, seed).application_throughput();
               }
               core::MpdqConfig cfg;
               cfg.num_subflows = subflows;
               harness::MpdqStack st(cfg);
               return run_bcube(st, flows, seed).application_throughput();
             }) >= 99.0;
    };
    return std::max(0, harness::binary_search_max(1, hi, pred));
  };
  print_row("PDQ", {static_cast<double>(flows_at_99(0))}, " %12.0f");
  for (int s : {2, 4, 8}) {
    print_row(std::to_string(s), {static_cast<double>(flows_at_99(s))},
              " %12.0f");
  }
  std::printf(
      "\nExpected shape (paper): ~2x FCT gain at light load shrinking as\n"
      "load grows; ~4 subflows reach most of the multipath benefit.\n");
  return 0;
}
