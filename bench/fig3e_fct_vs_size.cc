// Figure 3e: mean FCT normalized to Optimal vs average flow size, with 3
// concurrent deadline-unconstrained flows.
#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const std::vector<int> means_kb =
      args.full ? std::vector<int>{100, 150, 200, 250, 300, 350}
                : std::vector<int>{100, 200, 350};

  harness::ExperimentSpec spec;
  spec.name = "fig3e_fct_vs_size";
  spec.title =
      "Fig 3e: mean FCT normalized to Optimal vs avg flow size (3 flows,\n"
      "no deadlines; RCP column = RCP/D3)";
  spec.axis = "avg size [KB]";
  spec.metric = harness::metrics::mean_fct_vs_optimal();
  spec.trials = args.full ? 8 : 4;
  spec.base_seed = args.seed_or();
  spec.base = harness::aggregation_scenario({});
  for (const auto& name :
       {"PDQ(Full)", "PDQ(ES)", "PDQ(Basic)", "RCP", "TCP"}) {
    spec.columns.push_back(harness::stack_column(name));
  }
  for (int kb : means_kb) {
    harness::SweepPoint p;
    p.label = std::to_string(kb);
    p.apply = [kb](harness::Scenario& s) {
      harness::AggregationSpec a;
      a.num_flows = 3;
      a.deadlines = false;
      a.size_lo = (kb - 98) * 1000L;
      a.size_hi = (kb + 98) * 1000L;
      s = harness::aggregation_scenario(a);
    };
    spec.points.push_back(std::move(p));
  }

  std::printf("%s\n\n", spec.title.c_str());
  run_and_report(spec, args);
  std::printf(
      "\nExpected shape (paper): PDQ approaches 1.0 as flows grow (protocol\n"
      "overhead amortizes); RCP/D3 sit near the fair-sharing penalty.\n");
  return 0;
}
