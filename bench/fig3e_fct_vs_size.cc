// Figure 3e: mean FCT normalized to Optimal vs average flow size, with 3
// concurrent deadline-unconstrained flows.
#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int trials = full ? 8 : 4;
  const std::vector<int> means_kb =
      full ? std::vector<int>{100, 150, 200, 250, 300, 350}
           : std::vector<int>{100, 200, 350};
  const std::vector<std::string> stacks{"PDQ(Full)", "PDQ(ES)", "PDQ(Basic)",
                                        "RCP", "TCP"};

  std::printf(
      "Fig 3e: mean FCT normalized to Optimal vs avg flow size (3 flows,\n"
      "no deadlines; RCP column = RCP/D3)\n\n");
  print_header("avg size [KB]", stacks);

  for (int kb : means_kb) {
    std::vector<double> cells;
    for (const auto& name : stacks) {
      cells.push_back(average_over_seeds(trials, [&](std::uint64_t seed) {
        AggregationSpec a;
        a.num_flows = 3;
        a.deadlines = false;
        a.size_lo = (kb - 98) * 1000L;
        a.size_hi = (kb + 98) * 1000L;
        a.seed = seed;
        auto stack = make_stack(name);
        const double fct = run_aggregation(*stack, a).mean_fct_ms();
        return fct / optimal_mean_fct_ms(a);
      }));
    }
    print_row(std::to_string(kb), cells);
  }
  std::printf(
      "\nExpected shape (paper): PDQ approaches 1.0 as flows grow (protocol\n"
      "overhead amortizes); RCP/D3 sit near the fair-sharing penalty.\n");
  return 0;
}
