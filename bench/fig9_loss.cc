// Figure 9: resilience to random packet loss at the bottleneck link, both
// directions. (a) deadline-constrained: flows supported at 99%
// application throughput; (b) deadline-unconstrained: mean FCT normalized
// to loss-free PDQ.
#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

harness::RunResult run_lossy(harness::ProtocolStack& stack, int n,
                             bool deadlines, double loss,
                             std::uint64_t seed) {
  AggregationSpec a;
  a.num_flows = n;
  a.deadlines = deadlines;
  a.seed = seed;
  const int senders = std::max(1, std::min(n, 32));
  auto flows = aggregation_flows(a, senders);
  auto build = [&](net::Topology& t) {
    auto servers = net::build_single_bottleneck(t, senders);
    for (auto& f : flows) {
      f.src = servers[static_cast<std::size_t>(f.src)];
      f.dst = servers.back();
    }
    return servers;
  };
  harness::RunOptions opts;
  opts.horizon = 60 * sim::kSecond;
  opts.seed = seed;
  // The bottleneck link is switch(0) -> receiver(last host id).
  opts.watch_link = std::make_pair(net::NodeId{0},
                                   static_cast<net::NodeId>(senders + 1));
  opts.watch_link_drop_rate = loss;
  return harness::run_scenario(stack, build, flows, opts);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int trials = full ? 4 : 2;
  const std::vector<double> loss_rates{0.0, 0.01, 0.02, 0.03};

  std::printf(
      "Fig 9a: flows at 99%% application throughput vs packet loss rate\n"
      "(loss applied in both directions at the bottleneck)\n\n");
  print_header("loss [%]", {"PDQ", "TCP"});
  const int hi = full ? 32 : 16;
  for (double loss : loss_rates) {
    std::vector<double> cells;
    for (const char* name : {"PDQ(Full)", "TCP"}) {
      auto pred = [&](int n) {
        return average_over_seeds(trials, [&](std::uint64_t seed) {
                 auto stack = make_stack(name);
                 return run_lossy(*stack, n, true, loss, seed)
                     .application_throughput();
               }) >= 99.0;
      };
      cells.push_back(std::max(0, harness::binary_search_max(1, hi, pred)));
    }
    print_row(std::to_string(static_cast<int>(loss * 100)), cells,
              " %12.0f");
  }

  std::printf(
      "\nFig 9a': application throughput [%%] at 8 concurrent deadline\n"
      "flows vs loss rate (smoother view of the same resilience)\n\n");
  print_header("loss [%]", {"PDQ", "TCP"});
  for (double loss : loss_rates) {
    std::vector<double> cells;
    for (const char* name : {"PDQ(Full)", "TCP"}) {
      cells.push_back(average_over_seeds(trials * 3, [&](std::uint64_t seed) {
        auto stack = make_stack(name);
        return run_lossy(*stack, 8, true, loss, seed)
            .application_throughput();
      }));
    }
    print_row(std::to_string(static_cast<int>(loss * 100)), cells,
              " %12.1f");
  }

  std::printf(
      "\nFig 9b: mean FCT vs loss rate, normalized to each protocol's own\n"
      "loss-free PDQ baseline (10 flows, no deadlines)\n\n");
  print_header("loss [%]", {"PDQ", "TCP"});
  double pdq_base = 0;
  std::vector<std::vector<double>> rows;
  for (double loss : loss_rates) {
    std::vector<double> cells;
    for (const char* name : {"PDQ(Full)", "TCP"}) {
      cells.push_back(average_over_seeds(trials, [&](std::uint64_t seed) {
        auto stack = make_stack(name);
        return run_lossy(*stack, 10, false, loss, seed).mean_fct_ms();
      }));
    }
    if (loss == 0.0) pdq_base = cells[0];
    rows.push_back(cells);
  }
  for (std::size_t i = 0; i < loss_rates.size(); ++i) {
    print_row(std::to_string(static_cast<int>(loss_rates[i] * 100)),
              {rows[i][0] / pdq_base, rows[i][1] / pdq_base});
  }
  std::printf(
      "\nExpected shape (paper): at 3%% loss PDQ's FCT grows ~11%% while\n"
      "TCP's grows ~45%%; PDQ's explicit rate control compensates for "
      "loss.\n");
  return 0;
}
