// Figure 9: resilience to random packet loss at the bottleneck link, both
// directions. (a) deadline-constrained: flows supported at 99%
// application throughput; (b) deadline-unconstrained: mean FCT normalized
// to loss-free PDQ.
#include <algorithm>

#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

namespace {

harness::Scenario lossy_scenario(int n, bool deadlines, double loss) {
  harness::AggregationSpec a;
  a.num_flows = n;
  a.deadlines = deadlines;
  harness::Scenario s = harness::aggregation_scenario(a);
  const int senders = std::max(1, std::min(n, 32));
  s.options.horizon = 60 * sim::kSecond;
  // The bottleneck link is switch(0) -> receiver(last host id).
  s.options.watch_link = std::make_pair(
      net::NodeId{0}, static_cast<net::NodeId>(senders + 1));
  s.options.watch_link_drop_rate = loss;
  return s;
}

std::string loss_label(double loss) {
  return std::to_string(static_cast<int>(loss * 100));
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const int trials = args.full ? 4 : 2;
  const std::uint64_t base_seed = args.seed_or();
  const std::vector<double> loss_rates{0.0, 0.01, 0.02, 0.03};

  harness::SweepRunner runner(args.threads);

  // --- (a) flows at 99%, binary search per (loss, stack) ---
  std::printf(
      "Fig 9a: flows at 99%% application throughput vs packet loss rate\n"
      "(loss applied in both directions at the bottleneck)\n\n");
  {
    const int hi = args.full ? 32 : 16;
    std::vector<std::string> points;
    std::vector<std::vector<double>> cells;
    for (double loss : loss_rates) {
      points.push_back(loss_label(loss));
      std::vector<double> row;
      for (const char* name : {"PDQ(Full)", "TCP"}) {
        auto pred = [&](int n) {
          return runner.average(
                     lossy_scenario(n, true, loss),
                     harness::stack_column(name), trials, base_seed,
                     harness::metrics::application_throughput().fn) >= 99.0;
        };
        row.push_back(std::max(0, harness::binary_search_max(1, hi, pred)));
      }
      cells.push_back(std::move(row));
    }
    auto results = grid_results("fig9a_loss", "loss [%]", "flows_at_99",
                                {"PDQ", "TCP"}, points, cells, base_seed);
    harness::TableSink(stdout, " %12.0f").write(results);
    write_outputs(results, args);
  }

  // --- (a') application throughput at a fixed 8 flows ---
  std::printf(
      "\nFig 9a': application throughput [%%] at 8 concurrent deadline\n"
      "flows vs loss rate (smoother view of the same resilience)\n\n");
  {
    harness::ExperimentSpec spec;
    spec.name = "fig9a_loss_appthroughput";
    spec.axis = "loss [%]";
    spec.metric = harness::metrics::application_throughput();
    spec.trials = trials * 3;
    spec.base_seed = base_seed;
    spec.base = lossy_scenario(8, true, 0.0);
    spec.columns.push_back(
        harness::stack_column("PDQ", "PDQ(Full)"));
    spec.columns.push_back(harness::stack_column("TCP"));
    for (double loss : loss_rates) {
      harness::SweepPoint p;
      p.label = loss_label(loss);
      p.apply = [loss](harness::Scenario& s) {
        s = lossy_scenario(8, true, loss);
      };
      spec.points.push_back(std::move(p));
    }
    run_and_report(spec, args, " %12.1f");
  }

  // --- (b) mean FCT normalized to loss-free PDQ ---
  std::printf(
      "\nFig 9b: mean FCT vs loss rate, normalized to each protocol's own\n"
      "loss-free PDQ baseline (10 flows, no deadlines)\n\n");
  {
    harness::ExperimentSpec spec;
    spec.name = "fig9b_loss_fct";
    spec.axis = "loss [%]";
    spec.metric = harness::metrics::mean_fct_ms();
    spec.trials = trials;
    spec.base_seed = base_seed;
    spec.base = lossy_scenario(10, false, 0.0);
    spec.columns.push_back(harness::stack_column("PDQ", "PDQ(Full)"));
    spec.columns.push_back(harness::stack_column("TCP"));
    for (double loss : loss_rates) {
      harness::SweepPoint p;
      p.label = loss_label(loss);
      p.apply = [loss](harness::Scenario& s) {
        s = lossy_scenario(10, false, loss);
      };
      spec.points.push_back(std::move(p));
    }
    auto results = runner.run(spec);
    write_outputs(results, args);  // CSV keeps the raw (unnormalized) FCTs
    const double pdq_base = results.mean(0, 0);
    print_header("loss [%]", {"PDQ", "TCP"});
    for (std::size_t p = 0; p < results.points.size(); ++p) {
      print_row(results.points[p], {results.mean(p, 0) / pdq_base,
                                    results.mean(p, 1) / pdq_base});
    }
  }
  std::printf(
      "\nExpected shape (paper): at 3%% loss PDQ's FCT grows ~11%% while\n"
      "TCP's grows ~45%%; PDQ's explicit rate control compensates for "
      "loss.\n");
  return 0;
}
