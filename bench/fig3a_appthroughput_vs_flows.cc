// Figure 3a: application throughput [%] vs number of concurrent
// deadline-constrained flows (query aggregation, uniform [2,198] KB,
// exponential 20 ms deadlines, 3 ms floor).
#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const std::vector<int> flow_counts =
      args.full ? std::vector<int>{2, 5, 10, 15, 20, 25}
                : std::vector<int>{2, 5, 10, 15, 20};

  harness::ExperimentSpec spec;
  spec.name = "fig3a_appthroughput_vs_flows";
  spec.title =
      "Fig 3a: application throughput [%] vs number of flows\n"
      "(query aggregation, uniform [2,198] KB, exp(20 ms) deadlines)";
  spec.axis = "#flows";
  spec.metric = harness::metrics::application_throughput();
  spec.trials = args.full ? 5 : 3;
  spec.base_seed = args.seed_or();
  spec.base = harness::aggregation_scenario({});

  harness::Column optimal;
  optimal.label = "Optimal";
  optimal.metric = harness::metrics::optimal_application_throughput().fn;
  spec.columns.push_back(optimal);
  for (const auto& name : all_stacks()) {
    spec.columns.push_back(harness::stack_column(name));
  }

  for (int n : flow_counts) {
    harness::SweepPoint p;
    p.label = std::to_string(n);
    p.apply = [n](harness::Scenario& s) {
      harness::AggregationSpec a;
      a.num_flows = n;
      s = harness::aggregation_scenario(a);
    };
    spec.points.push_back(std::move(p));
  }

  std::printf("%s\n\n", spec.title.c_str());
  run_and_report(spec, args, " %12.1f");
  std::printf(
      "\nExpected shape (paper): PDQ(Full) tracks Optimal; PDQ(Basic) falls\n"
      "behind at high load; D3/RCP/TCP degrade sharply with more flows.\n");
  return 0;
}
