// Figure 3a: application throughput [%] vs number of concurrent
// deadline-constrained flows (query aggregation, uniform [2,198] KB,
// exponential 20 ms deadlines, 3 ms floor).
#include "bench_common.h"

using namespace pdq;
using namespace pdq::bench;

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int trials = full ? 5 : 3;
  std::vector<int> flow_counts = full
                                     ? std::vector<int>{2, 5, 10, 15, 20, 25}
                                     : std::vector<int>{2, 5, 10, 15, 20};

  std::printf(
      "Fig 3a: application throughput [%%] vs number of flows\n"
      "(query aggregation, uniform [2,198] KB, exp(20 ms) deadlines)\n\n");
  std::vector<std::string> cols{"Optimal"};
  for (const auto& s : all_stacks()) cols.push_back(s);
  print_header("#flows", cols);

  for (int n : flow_counts) {
    std::vector<double> cells;
    cells.push_back(average_over_seeds(trials, [&](std::uint64_t seed) {
      AggregationSpec a;
      a.num_flows = n;
      a.seed = seed;
      return optimal_app_throughput(a);
    }));
    for (const auto& name : all_stacks()) {
      cells.push_back(average_over_seeds(trials, [&](std::uint64_t seed) {
        AggregationSpec a;
        a.num_flows = n;
        a.seed = seed;
        auto stack = make_stack(name);
        return run_aggregation(*stack, a).application_throughput();
      }));
    }
    print_row(std::to_string(n), cells, " %12.1f");
  }
  std::printf(
      "\nExpected shape (paper): PDQ(Full) tracks Optimal; PDQ(Basic) falls\n"
      "behind at high load; D3/RCP/TCP degrade sharply with more flows.\n");
  return 0;
}
