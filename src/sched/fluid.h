// Centralized fluid-model schedulers on a single bottleneck link.
//
// These are the paper's reference disciplines: fair sharing (Fig 1b),
// SJF/SRPT and EDF (Fig 1c), and the omniscient "Optimal" used throughout
// S5: sort by EDF, then discard the minimum number of flows that cannot
// meet their deadlines (Moore-Hodgson, "Algorithm 3.3.1 in Pinedo").
//
// The fluid model transmits infinitesimal units: no packetization, no
// feedback delay. Completion times are therefore lower bounds for any
// real protocol.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace pdq::sched {

struct Job {
  std::int64_t size_bytes = 0;
  sim::Time release = 0;                    // arrival time
  sim::Time deadline = sim::kTimeInfinity;  // absolute; infinity = none
  int id = 0;
};

struct Schedule {
  /// Completion time per job (same order as input); kTimeInfinity for
  /// jobs that were discarded (Moore-Hodgson only).
  std::vector<sim::Time> completion;

  double mean_fct_ms(const std::vector<Job>& jobs) const;
  double max_fct_ms(const std::vector<Job>& jobs) const;
  /// Fraction (%) of deadline jobs finishing by their deadline.
  double on_time_percent(const std::vector<Job>& jobs) const;
};

/// Processor sharing: every active job gets rate C/n (Fig 1b).
Schedule fair_sharing(const std::vector<Job>& jobs, double rate_bps);

/// Preemptive shortest-remaining-processing-time; optimal mean FCT on a
/// single link (reduces to SJF when all jobs are released together).
Schedule srpt(const std::vector<Job>& jobs, double rate_bps);

/// Preemptive earliest-deadline-first.
Schedule edf(const std::vector<Job>& jobs, double rate_bps);

/// EDF + Moore-Hodgson: maximizes the number of on-time jobs for jobs
/// released together; discarded jobs get completion = kTimeInfinity.
/// Jobs without deadlines are scheduled after all deadline jobs (SRPT
/// among themselves).
Schedule edf_max_ontime(const std::vector<Job>& jobs, double rate_bps);

/// Convenience: the paper's Optimal application throughput (%) for a set
/// of simultaneously-released deadline jobs on one bottleneck.
double optimal_application_throughput(const std::vector<Job>& jobs,
                                      double rate_bps);

/// Convenience: the paper's Optimal mean flow completion time (ms).
double optimal_mean_fct_ms(const std::vector<Job>& jobs, double rate_bps);

}  // namespace pdq::sched
