#include "sched/fluid.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace pdq::sched {

namespace {

constexpr double kBitsPerByte = 8.0;

double job_bits(const Job& j) {
  return static_cast<double>(j.size_bytes) * kBitsPerByte;
}

/// Event-driven fluid engine: `pick` selects which released, unfinished
/// jobs get bandwidth (equal split among the returned set).
template <typename PickFn>
std::vector<sim::Time> run_fluid(const std::vector<Job>& jobs,
                                 double rate_bps, PickFn pick) {
  const std::size_t n = jobs.size();
  std::vector<double> remaining(n);
  for (std::size_t i = 0; i < n; ++i) remaining[i] = job_bits(jobs[i]);
  std::vector<sim::Time> done(n, sim::kTimeInfinity);

  // Release events in time order.
  std::vector<std::size_t> by_release(n);
  std::iota(by_release.begin(), by_release.end(), 0);
  std::sort(by_release.begin(), by_release.end(), [&](auto a, auto b) {
    return jobs[a].release < jobs[b].release;
  });

  std::size_t next_release = 0;
  std::size_t finished = 0;
  double now_s = 0.0;

  while (finished < n) {
    // Admit releases up to now.
    while (next_release < n &&
           sim::to_seconds(jobs[by_release[next_release]].release) <=
               now_s + 1e-15) {
      ++next_release;
    }
    std::vector<std::size_t> active;
    for (std::size_t k = 0; k < next_release; ++k) {
      const auto i = by_release[k];
      if (done[i] == sim::kTimeInfinity && remaining[i] > 0) active.push_back(i);
    }

    const double next_rel_s =
        next_release < n
            ? sim::to_seconds(jobs[by_release[next_release]].release)
            : std::numeric_limits<double>::infinity();

    if (active.empty()) {
      assert(next_release < n);
      now_s = next_rel_s;
      continue;
    }

    const std::vector<std::size_t> served = pick(active, remaining);
    assert(!served.empty());
    const double per_job = rate_bps / static_cast<double>(served.size());

    // Next event: earliest completion among served jobs, or next release.
    double dt = next_rel_s - now_s;
    for (auto i : served) dt = std::min(dt, remaining[i] / per_job);

    for (auto i : served) {
      remaining[i] -= per_job * dt;
      if (remaining[i] <= 1e-9) {
        remaining[i] = 0;
        done[i] = sim::from_seconds(now_s + dt);
        ++finished;
      }
    }
    now_s += dt;
  }
  return done;
}

}  // namespace

double Schedule::mean_fct_ms(const std::vector<Job>& jobs) const {
  double sum = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (completion[i] == sim::kTimeInfinity) continue;
    sum += sim::to_millis(completion[i] - jobs[i].release);
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double Schedule::max_fct_ms(const std::vector<Job>& jobs) const {
  double m = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (completion[i] == sim::kTimeInfinity) continue;
    m = std::max(m, sim::to_millis(completion[i] - jobs[i].release));
  }
  return m;
}

double Schedule::on_time_percent(const std::vector<Job>& jobs) const {
  std::size_t with_deadline = 0;
  std::size_t met = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].deadline == sim::kTimeInfinity) continue;
    ++with_deadline;
    if (completion[i] != sim::kTimeInfinity &&
        completion[i] <= jobs[i].deadline) {
      ++met;
    }
  }
  return with_deadline == 0
             ? 100.0
             : 100.0 * static_cast<double>(met) /
                   static_cast<double>(with_deadline);
}

Schedule fair_sharing(const std::vector<Job>& jobs, double rate_bps) {
  Schedule s;
  s.completion = run_fluid(jobs, rate_bps,
                           [](const std::vector<std::size_t>& active,
                              const std::vector<double>&) { return active; });
  return s;
}

Schedule srpt(const std::vector<Job>& jobs, double rate_bps) {
  Schedule s;
  s.completion = run_fluid(
      jobs, rate_bps,
      [&](const std::vector<std::size_t>& active,
          const std::vector<double>& remaining) {
        std::size_t best = active.front();
        for (auto i : active) {
          if (remaining[i] < remaining[best] ||
              (remaining[i] == remaining[best] && jobs[i].id < jobs[best].id))
            best = i;
        }
        return std::vector<std::size_t>{best};
      });
  return s;
}

Schedule edf(const std::vector<Job>& jobs, double rate_bps) {
  Schedule s;
  s.completion = run_fluid(
      jobs, rate_bps,
      [&](const std::vector<std::size_t>& active,
          const std::vector<double>& remaining) {
        std::size_t best = active.front();
        for (auto i : active) {
          const auto da = jobs[i].deadline;
          const auto db = jobs[best].deadline;
          if (da < db ||
              (da == db && remaining[i] < remaining[best]) ||
              (da == db && remaining[i] == remaining[best] &&
               jobs[i].id < jobs[best].id))
            best = i;
        }
        return std::vector<std::size_t>{best};
      });
  return s;
}

Schedule edf_max_ontime(const std::vector<Job>& jobs, double rate_bps) {
  // Moore-Hodgson on the deadline jobs (all released together): process in
  // EDF order, keep a running schedule, and whenever the current job would
  // finish late evict the largest job selected so far.
  const std::size_t n = jobs.size();
  std::vector<std::size_t> deadline_jobs;
  for (std::size_t i = 0; i < n; ++i)
    if (jobs[i].deadline != sim::kTimeInfinity) deadline_jobs.push_back(i);
  std::sort(deadline_jobs.begin(), deadline_jobs.end(), [&](auto a, auto b) {
    return jobs[a].deadline != jobs[b].deadline
               ? jobs[a].deadline < jobs[b].deadline
               : jobs[a].size_bytes < jobs[b].size_bytes;
  });

  std::vector<std::size_t> selected;
  double t_s = 0.0;
  for (auto i : deadline_jobs) {
    selected.push_back(i);
    t_s += job_bits(jobs[i]) / rate_bps;
    if (t_s > sim::to_seconds(jobs[i].deadline)) {
      auto worst = std::max_element(
          selected.begin(), selected.end(), [&](auto a, auto b) {
            return jobs[a].size_bytes < jobs[b].size_bytes;
          });
      t_s -= job_bits(jobs[*worst]) / rate_bps;
      selected.erase(worst);
    }
  }

  Schedule s;
  s.completion.assign(n, sim::kTimeInfinity);
  double t = 0.0;
  for (auto i : selected) {
    t += job_bits(jobs[i]) / rate_bps;
    s.completion[i] = sim::from_seconds(t);
  }
  // Discarded deadline jobs stay at infinity; no-deadline jobs run
  // afterwards in SRPT order.
  std::vector<std::size_t> rest;
  for (std::size_t i = 0; i < n; ++i)
    if (jobs[i].deadline == sim::kTimeInfinity) rest.push_back(i);
  std::sort(rest.begin(), rest.end(), [&](auto a, auto b) {
    return jobs[a].size_bytes < jobs[b].size_bytes;
  });
  for (auto i : rest) {
    t += job_bits(jobs[i]) / rate_bps;
    s.completion[i] = sim::from_seconds(t);
  }
  return s;
}

double optimal_application_throughput(const std::vector<Job>& jobs,
                                      double rate_bps) {
  return edf_max_ontime(jobs, rate_bps).on_time_percent(jobs);
}

double optimal_mean_fct_ms(const std::vector<Job>& jobs, double rate_bps) {
  return srpt(jobs, rate_bps).mean_fct_ms(jobs);
}

}  // namespace pdq::sched
