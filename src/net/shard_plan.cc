#include "net/shard_plan.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "net/types.h"
#include "sim/time.h"

namespace pdq::net {

bool make_shard_plan(Topology& topo, int shards, sim::ShardPlan* plan,
                     std::string* error) {
  const auto fail = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (shards < 1 || shards > 14) {
    return fail("shard count must be in [1, 14]");
  }
  for (const auto& l : topo.links()) {
    if (l->drop_rate > 0.0) {
      return fail("lossy links are unsupported under sharded execution");
    }
    if (l->fault != nullptr) {
      return fail("link fault hooks are unsupported under sharded execution");
    }
    if (!l->up) {
      return fail("administratively-down links are unsupported under "
                  "sharded execution");
    }
  }

  const std::size_t n = topo.num_nodes();
  std::vector<std::int32_t> node_shard(n, -1);

  // Attachment groups: host -> first-port neighbor. std::map keeps the
  // groups in ascending attachment-node order — the contiguous-block
  // order that tracks pods / cells / rack groups.
  std::map<NodeId, std::vector<NodeId>> groups;
  for (NodeId h : topo.host_ids()) {
    const auto& ports = topo.node(h).ports();
    if (ports.empty()) return fail("host with no ports cannot be sharded");
    groups[ports[0]->link().to].push_back(h);
  }
  if (static_cast<int>(groups.size()) < shards) {
    return fail("fewer attachment groups than requested shards");
  }

  // Contiguous blocks balanced by host count; every block gets at least
  // one group.
  std::size_t total_hosts = 0;
  for (const auto& [attach, hosts] : groups) total_hosts += hosts.size();
  std::size_t groups_left = groups.size();
  std::size_t hosts_left = total_hosts;
  int block = 0;
  std::size_t block_hosts = 0;
  for (const auto& [attach, hosts] : groups) {
    const int blocks_left = shards - block;
    const std::size_t target =
        (hosts_left + static_cast<std::size_t>(blocks_left) - 1) /
        static_cast<std::size_t>(blocks_left);
    // Close the current block when it hit its share, or when the groups
    // still unconsumed are only just enough to give every remaining
    // block one (no trailing block may end up empty).
    if (block_hosts > 0 && block + 1 < shards &&
        (block_hosts >= target ||
         groups_left < static_cast<std::size_t>(blocks_left))) {
      ++block;
      block_hosts = 0;
    }
    if (node_shard[static_cast<std::size_t>(attach)] < 0) {
      node_shard[static_cast<std::size_t>(attach)] = block;
    }
    for (NodeId h : hosts) node_shard[static_cast<std::size_t>(h)] = block;
    block_hosts += hosts.size();
    hosts_left -= hosts.size();
    --groups_left;
  }

  // Host-less switches: majority-link affinity with already-assigned
  // neighbors, in id order; isolated ones round-robin deterministically.
  for (std::size_t id = 0; id < n; ++id) {
    if (node_shard[id] >= 0) continue;
    std::vector<int> votes(static_cast<std::size_t>(shards), 0);
    bool any = false;
    for (const auto& port : topo.node(static_cast<NodeId>(id)).ports()) {
      const std::int32_t peer = node_shard[static_cast<std::size_t>(
          port->link().to)];
      if (peer >= 0) {
        ++votes[static_cast<std::size_t>(peer)];
        any = true;
      }
    }
    if (any) {
      node_shard[id] = static_cast<std::int32_t>(std::distance(
          votes.begin(), std::max_element(votes.begin(), votes.end())));
    } else {
      node_shard[id] = static_cast<std::int32_t>(id) % shards;
    }
  }

  // Lookahead: the minimum time any packet needs to cross the cut.
  sim::Time lookahead = sim::kTimeInfinity;
  for (const auto& l : topo.links()) {
    if (node_shard[static_cast<std::size_t>(l->from)] ==
        node_shard[static_cast<std::size_t>(l->to)]) {
      continue;
    }
    const sim::Time cross =
        l->prop_delay + sim::transmission_time(kControlBytes, l->rate_bps);
    if (cross < lookahead) lookahead = cross;
  }
  if (shards > 1 && lookahead == sim::kTimeInfinity) {
    return fail("no cross-shard link: partition is degenerate");
  }
  if (lookahead < 1) lookahead = 1;

  plan->shards = shards;
  plan->lookahead = lookahead;
  plan->node_shard = std::move(node_shard);
  return true;
}

std::unique_ptr<ShardedSession> ShardedSession::create(sim::Simulator& sim,
                                                       Topology& topo,
                                                       int shards,
                                                       std::string* error) {
  sim::ShardPlan plan;
  if (!make_shard_plan(topo, shards, &plan, error)) return nullptr;
  std::unique_ptr<ShardedSession> session(new ShardedSession(topo));
  session->pools_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    auto pool = std::make_unique<PacketPool>();
    pool->set_cross_thread_guard(true);
    session->pools_.push_back(std::move(pool));
  }
  ShardedSession* raw = session.get();
  plan.thread_env = [raw](int shard) -> std::shared_ptr<void> {
    return std::make_shared<PacketPool::ScopedPool>(
        *raw->pools_[static_cast<std::size_t>(shard)]);
  };
  session->exec_ = std::make_unique<sim::ShardExecutor>(sim, std::move(plan));
  return session;
}

ShardedSession::~ShardedSession() {
  // Teardown order: worker threads join and pending event closures die
  // inside the executor's destructor; port-queue packets drain here.
  // Both release packets to their origin pools, which the member order
  // (pools_ before exec_) keeps alive until last.
  for (std::size_t id = 0; id < topo_.num_nodes(); ++id) {
    for (const auto& port : topo_.node(static_cast<NodeId>(id)).ports()) {
      while (!port->queue_empty()) port->dequeue();
    }
  }
  exec_.reset();
}

std::uint64_t ShardedSession::packet_allocs() const {
  std::uint64_t sum = 0;
  for (const auto& p : pools_) sum += p->total_allocated();
  return sum;
}

std::uint64_t ShardedSession::packet_acquires() const {
  std::uint64_t sum = 0;
  for (const auto& p : pools_) sum += p->total_acquires();
  return sum;
}

std::size_t ShardedSession::pool_highwater() const {
  std::size_t sum = 0;
  for (const auto& p : pools_) sum += p->live_highwater();
  return sum;
}

}  // namespace pdq::net
