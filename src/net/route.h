// Flyweight source routes.
//
// A RoutePair holds one node path in both directions; every packet of a
// flow (and every reply) shares the same immutable RoutePair through a
// RouteRef instead of carrying its own std::vector copy. Topology caches
// one RoutePair per (src, dst, ECMP choice), so the per-packet route cost
// is one shared_ptr bump. make_reply() flips the direction bit — reply
// routes cost nothing at all.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "net/types.h"

namespace pdq::net {

struct RoutePair {
  std::vector<NodeId> fwd;  // src -> dst node path, endpoints included
  std::vector<NodeId> rev;  // the same path reversed
};

using RouteRef = std::shared_ptr<const RoutePair>;

/// Builds a shared route (and its reverse) from a forward node path.
inline RouteRef make_route(std::vector<NodeId> fwd) {
  auto r = std::make_shared<RoutePair>();
  r->fwd = std::move(fwd);
  r->rev.assign(r->fwd.rbegin(), r->fwd.rend());
  return r;
}

}  // namespace pdq::net
