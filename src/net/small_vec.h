// A tiny inline vector for per-hop header fields (D3 allocation
// vectors): the first N elements live inside the object, so copying a
// packet header does not touch the heap for any path the paper's (or
// fig13's) topologies produce. Longer paths spill to a heap buffer and
// keep working.
//
// Restricted to trivially copyable T — growth and copies are memcpy.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <type_traits>

namespace pdq::net {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is for trivially copyable elements");

 public:
  SmallVec() = default;
  ~SmallVec() { delete[] heap_; }

  SmallVec(const SmallVec& o) { assign(o.data(), o.size_); }
  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) assign(o.data(), o.size_);
    return *this;
  }

  SmallVec(SmallVec&& o) noexcept { steal(o); }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      delete[] heap_;
      heap_ = nullptr;
      steal(o);
    }
    return *this;
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow();
    data()[size_++] = v;
  }

  /// Drops all elements; keeps any heap capacity for reuse.
  void clear() { size_ = 0; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Inline capacity (heap spill begins beyond this).
  static constexpr std::size_t inline_capacity() { return N; }
  std::size_t capacity() const { return cap_; }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return data()[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data()[i];
  }
  T& back() {
    assert(size_ > 0);
    return data()[size_ - 1];
  }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    if (a.size_ != b.size_) return false;
    // Element-wise (not memcmp): keeps std::vector semantics for
    // doubles, where -0.0 == 0.0 and NaN != NaN.
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a.data()[i] == b.data()[i])) return false;
    }
    return true;
  }

 private:
  T* data() { return heap_ != nullptr ? heap_ : inline_; }
  const T* data() const { return heap_ != nullptr ? heap_ : inline_; }

  void assign(const T* src, std::size_t n) {
    if (n > cap_) {
      // Allocate before freeing: a throwing new must leave *this valid.
      T* bigger = new T[n];
      delete[] heap_;
      heap_ = bigger;
      cap_ = n;
    }
    std::memcpy(data(), src, n * sizeof(T));
    size_ = n;
  }

  void grow() {
    const std::size_t new_cap = cap_ * 2;
    T* bigger = new T[new_cap];
    std::memcpy(bigger, data(), size_ * sizeof(T));
    delete[] heap_;
    heap_ = bigger;
    cap_ = new_cap;
  }

  void steal(SmallVec& o) {
    if (o.heap_ != nullptr) {
      heap_ = o.heap_;
      cap_ = o.cap_;
      o.heap_ = nullptr;
      o.cap_ = N;
    } else {
      std::memcpy(inline_, o.inline_, o.size_ * sizeof(T));
      cap_ = N;
    }
    size_ = o.size_;
    o.size_ = 0;
  }

  std::size_t size_ = 0;
  std::size_t cap_ = N;
  T* heap_ = nullptr;
  T inline_[N];
};

}  // namespace pdq::net
