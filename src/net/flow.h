// Flow descriptors and per-flow outcome records.
#pragma once

#include <cstdint>
#include <vector>

#include "net/types.h"
#include "sim/time.h"

namespace pdq::net {

/// A unidirectional transfer request. `deadline` is relative to
/// `start_time`; kTimeInfinity means deadline-unconstrained.
struct FlowSpec {
  FlowId id = kInvalidFlow;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::int64_t size_bytes = 0;
  sim::Time start_time = 0;
  sim::Time deadline = sim::kTimeInfinity;

  /// For M-PDQ subflows: id of the parent flow, or kInvalidFlow.
  FlowId parent = kInvalidFlow;

  bool has_deadline() const { return deadline != sim::kTimeInfinity; }
  sim::Time absolute_deadline() const {
    return has_deadline() ? start_time + deadline : sim::kTimeInfinity;
  }
};

enum class FlowOutcome : std::uint8_t {
  kPending,     // still running when the simulation ended
  kCompleted,   // all bytes acknowledged
  kTerminated,  // gave up (PDQ Early Termination / D3 quenching)
};

struct FlowResult {
  FlowSpec spec;
  FlowOutcome outcome = FlowOutcome::kPending;
  sim::Time finish_time = sim::kTimeInfinity;
  std::int64_t bytes_acked = 0;
  std::int64_t packets_sent = 0;
  std::int64_t retransmissions = 0;

  sim::Time completion_time() const {
    return finish_time == sim::kTimeInfinity ? sim::kTimeInfinity
                                             : finish_time - spec.start_time;
  }
  /// A flow meets its deadline only if it completed in time; terminated or
  /// still-pending flows count as misses.
  bool deadline_met() const {
    if (!spec.has_deadline()) return outcome == FlowOutcome::kCompleted;
    return outcome == FlowOutcome::kCompleted &&
           finish_time <= spec.absolute_deadline();
  }
};

}  // namespace pdq::net
