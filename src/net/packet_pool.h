// PacketPool: a free-list allocator that recycles Packet objects.
//
// Every simulation is single-threaded, so the default pool is
// thread-local (PacketPool::local()) — SweepRunner workers each get their
// own and never contend. acquire() pops a recycled packet (or allocates
// when the free list is dry); dropping the last PacketPtr reference
// resets the packet and pushes it back. The pool owns every packet it
// ever allocated and frees them all in its destructor, so teardown is
// leak-free (ASan-verified) even for packets parked in the free list.
//
// Invariant: a pool must outlive the packets it handed out. The
// thread-local pool trivially satisfies this; tests that construct a
// local PacketPool must drop their PacketPtrs before the pool dies
// (asserted in debug builds).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "net/packet.h"

namespace pdq::net {

class PacketPool {
 public:
  PacketPool() = default;
  ~PacketPool() {
    assert(live_count() == 0 && "packets outliving their pool");
  }
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// The calling thread's pool (what make_packet() uses). By default a
  /// per-thread static pool; ScopedPool swaps in a caller-owned one.
  static PacketPool& local();

  /// Installs `pool` as the calling thread's PacketPool::local() for the
  /// current scope — e.g. to measure one run's allocations from a cold
  /// pool, deterministically, regardless of what ran on this thread
  /// before. Destroy only after every packet drawn from the scope is
  /// released (destruction order: simulator first, ScopedPool last).
  class ScopedPool {
   public:
    explicit ScopedPool(PacketPool& pool);
    ~ScopedPool();
    ScopedPool(const ScopedPool&) = delete;
    ScopedPool& operator=(const ScopedPool&) = delete;

   private:
    PacketPool* previous_;
  };

  /// Arms a spinlock around acquire()/recycle(). The sharded engine
  /// (sim/sharded.h) hands single-reference packets across shards, so a
  /// packet may drop its last reference on a thread other than its
  /// origin pool's — the guard serializes that free-list push against
  /// the owner shard's acquires. Off (the default) the branch is the
  /// only cost; single-threaded runs never pay for the lock.
  void set_cross_thread_guard(bool on) { guarded_ = on; }

  /// A fresh, fully reset packet with one reference.
  PacketPtr acquire() {
    const Guard g(*this);
    ++acquires_;
    Packet* p;
    if (!free_.empty()) {
      p = free_.back();
      free_.pop_back();
    } else {
      owned_.push_back(std::make_unique<Packet>());
      ++allocated_total_;
      p = owned_.back().get();
      p->hook_.origin = this;
    }
    p->hook_.refs = 1;
    const std::size_t live = owned_.size() - free_.size();
    if (live > live_highwater_) live_highwater_ = live;
    return PacketPtr(p);
  }

  /// Called by PacketPtr when the last reference drops.
  void recycle(Packet* p) {
    const Guard g(*this);
    assert(p->hook_.origin == this && p->hook_.refs == 0);
    p->reset();  // drop route/header state now, not at next acquire
    free_.push_back(p);
  }

  // ---- growth accounting (operation-count metrics) ----

  /// Packets ever allocated over the pool's lifetime — a monotone
  /// counter (trim() does not lower it), so before/after deltas are
  /// always safe.
  std::uint64_t total_allocated() const { return allocated_total_; }
  /// acquire() calls over the pool's lifetime; the recycle ratio is
  /// 1 - total_allocated()/total_acquires().
  std::uint64_t total_acquires() const { return acquires_; }
  std::size_t free_count() const { return free_.size(); }
  /// Packets currently held by live PacketPtrs.
  std::size_t live_count() const { return owned_.size() - free_.size(); }
  /// High-water mark of live_count() since construction (or the last
  /// relax_live_highwater()) — the run's true in-flight packet peak,
  /// even on a warm pool where total_allocated() stops moving.
  std::size_t live_highwater() const { return live_highwater_; }
  /// Resets the high-water mark to the current live count, so a run
  /// measured on a reused pool reports its own peak.
  void relax_live_highwater() { live_highwater_ = live_count(); }
  /// Packets currently owned (live + parked in the free list).
  std::size_t owned_count() const { return owned_.size(); }

  /// Frees the packets parked in the free list (keeps live ones).
  /// O(owned); total_allocated() is unaffected.
  void trim() {
    if (free_.empty()) return;
    std::unordered_set<const Packet*> idle(free_.begin(), free_.end());
    auto is_idle = [&idle](const std::unique_ptr<Packet>& p) {
      return idle.count(p.get()) != 0;
    };
    owned_.erase(std::remove_if(owned_.begin(), owned_.end(), is_idle),
                 owned_.end());
    free_.clear();
  }

 private:
  class Guard {
   public:
    explicit Guard(PacketPool& p) : p_(p) {
      if (p_.guarded_) {
        while (p_.lock_.test_and_set(std::memory_order_acquire)) {
        }
      }
    }
    ~Guard() {
      if (p_.guarded_) p_.lock_.clear(std::memory_order_release);
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    PacketPool& p_;
  };

  std::vector<std::unique_ptr<Packet>> owned_;  // live + idle packets
  std::vector<Packet*> free_;                   // subset of owned_, idle
  std::uint64_t acquires_ = 0;
  std::uint64_t allocated_total_ = 0;
  std::size_t live_highwater_ = 0;
  std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  bool guarded_ = false;
};

}  // namespace pdq::net
