// Byte-capacity FIFO tail-drop queue — the only queueing discipline PDQ
// requires of switches (paper S2.2).
//
// Ownership: push() transfers packet ownership into the queue on success
// and destroys the packet on a full-queue drop; pop() hands ownership back
// to the caller (popping an empty queue asserts). Units: capacity and
// occupancy are bytes; the Link that drains this queue handles all timing
// (ns) and rates (bps).
//
// Storage is a small inline ring buffer (kInlineSlots packets, no heap)
// that spills to a heap ring doubling on demand — the fig13 in-flight
// high-water mark was 78 packets fabric-wide, so per-port queues almost
// never leave the inline array and pushing/popping is two index updates.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "net/packet.h"

namespace pdq::net {

class DropTailQueue {
 public:
  explicit DropTailQueue(std::int64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  DropTailQueue(const DropTailQueue&) = delete;
  DropTailQueue& operator=(const DropTailQueue&) = delete;

  /// Returns false (and counts a drop) when the packet does not fit.
  bool push(PacketPtr p) {
    if (bytes_ + p->size_bytes > capacity_bytes_) {
      ++drops_;
      dropped_bytes_ += p->size_bytes;
      return false;
    }
    bytes_ += p->size_bytes;
    if (count_ == cap_) grow();
    ring_[(head_ + count_) & (cap_ - 1)] = std::move(p);
    ++count_;
    return true;
  }

  PacketPtr pop() {
    assert(count_ > 0 && "pop() from an empty DropTailQueue");
    PacketPtr p = std::move(ring_[head_]);
    head_ = (head_ + 1) & (cap_ - 1);
    --count_;
    bytes_ -= p->size_bytes;
    return p;
  }

  /// Head-of-line packet (asserts when empty) — DWRR service needs the
  /// head size without dequeuing.
  const Packet& front() const {
    assert(count_ > 0 && "front() of an empty DropTailQueue");
    return *ring_[head_];
  }

  bool empty() const { return count_ == 0; }
  std::size_t packets() const { return count_; }
  std::int64_t bytes() const { return bytes_; }
  std::int64_t capacity() const { return capacity_bytes_; }
  std::int64_t drops() const { return drops_; }
  std::int64_t dropped_bytes() const { return dropped_bytes_; }

  /// Ring slots currently allocated (inline until first spill). Exposed
  /// for the growth tests.
  std::size_t slot_capacity() const { return cap_; }

  static constexpr std::size_t kInlineSlots = 8;

 private:
  void grow() {
    std::vector<PacketPtr> bigger(cap_ * 2);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = std::move(ring_[(head_ + i) & (cap_ - 1)]);
    }
    heap_.swap(bigger);
    ring_ = heap_.data();
    cap_ = heap_.size();
    head_ = 0;
  }

  std::int64_t capacity_bytes_;
  std::int64_t bytes_ = 0;
  std::int64_t drops_ = 0;
  std::int64_t dropped_bytes_ = 0;

  std::array<PacketPtr, kInlineSlots> inline_{};
  std::vector<PacketPtr> heap_;  // empty until the inline ring spills
  PacketPtr* ring_ = inline_.data();
  std::size_t cap_ = kInlineSlots;  // always a power of two
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace pdq::net
