// Byte-capacity FIFO tail-drop queue — the only queueing discipline PDQ
// requires of switches (paper S2.2).
//
// Ownership: push() transfers packet ownership into the queue on success
// and destroys the packet on a full-queue drop; pop() hands ownership back
// to the caller. Units: capacity and occupancy are bytes; the Link that
// drains this queue handles all timing (ns) and rates (bps).
#pragma once

#include <cstdint>
#include <deque>

#include "net/packet.h"

namespace pdq::net {

class DropTailQueue {
 public:
  explicit DropTailQueue(std::int64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Returns false (and counts a drop) when the packet does not fit.
  bool push(PacketPtr p) {
    if (bytes_ + p->size_bytes > capacity_bytes_) {
      ++drops_;
      dropped_bytes_ += p->size_bytes;
      return false;
    }
    bytes_ += p->size_bytes;
    q_.push_back(std::move(p));
    return true;
  }

  PacketPtr pop() {
    PacketPtr p = std::move(q_.front());
    q_.pop_front();
    bytes_ -= p->size_bytes;
    return p;
  }

  bool empty() const { return q_.empty(); }
  std::size_t packets() const { return q_.size(); }
  std::int64_t bytes() const { return bytes_; }
  std::int64_t capacity() const { return capacity_bytes_; }
  std::int64_t drops() const { return drops_; }
  std::int64_t dropped_bytes() const { return dropped_bytes_; }

 private:
  std::int64_t capacity_bytes_;
  std::int64_t bytes_ = 0;
  std::int64_t drops_ = 0;
  std::int64_t dropped_bytes_ = 0;
  std::deque<PacketPtr> q_;
};

}  // namespace pdq::net
