// Per-output-port protocol hook.
//
// Explicit-rate protocols (PDQ, RCP, D3) do their switch-side work per
// *link*. Each output port of every node owns an optional LinkController:
//  - forward-direction packets (SYN/DATA/PROBE/TERM) hit on_forward() just
//    before being enqueued on the port;
//  - reverse-direction packets (ACKs) hit on_reverse() at the node that
//    owns the paired forward port, i.e. when the ACK arrives back at the
//    upstream side of the link it describes.
// This mirrors the paper's forward-path / reverse-path header processing.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "sim/time.h"

namespace pdq::net {

class Port;

/// One per-link rate grant, as reported by LinkController::granted_flows
/// for the harness invariant auditor (ghost-grant detection).
struct GrantInfo {
  FlowId flow = kInvalidFlow;
  double rate_bps = 0.0;
  /// Time the controller last heard from this flow (kTimeInfinity when
  /// the controller does not track freshness).
  sim::Time last_seen = sim::kTimeInfinity;
};

class LinkController {
 public:
  virtual ~LinkController() = default;

  /// Called once when installed; `port` outlives the controller.
  virtual void attach(Port& port) { port_ = &port; }

  virtual void on_forward(Packet& p) = 0;
  virtual void on_reverse(Packet& p) = 0;

  /// Called for every packet (either direction) accepted into this port's
  /// queue. Lets periodic controller machinery sleep on idle links and
  /// re-arm when traffic appears; must not mutate the packet.
  virtual void on_enqueue() {}

  /// Whether on_reverse() does any work that must run at the instant a
  /// reverse packet arrives at the downstream node. Controllers whose
  /// on_reverse is a no-op return false, which lets the transmitter fold
  /// the arrival into the next-hop dispatch event (node.cc coalescing).
  virtual bool reverse_hook() const { return true; }

  /// Flow-state entries visited by this controller's hot-path operations
  /// (lookups, prefix recomputes, resort shifts). Aggregated by
  /// Topology::total_flowlist_scan_ops() into the fig13 counter table.
  virtual std::uint64_t flow_scan_ops() const { return 0; }

  /// Switch-reset fault (faults::FaultSpec): discard all soft flow state
  /// as if the switch rebooted. Protocols must rebuild from carried
  /// packet state (PDQ re-adds flows from headers, Algorithm 1). The
  /// default keeps stateless controllers untouched.
  virtual void reset_state() {}

  /// Invariant-auditor support: appends every flow this controller
  /// currently counts against link capacity (committed or provisionally
  /// granted rate > 0). Stateless controllers report nothing.
  virtual void granted_flows(std::vector<GrantInfo>& out) const {
    (void)out;
  }

 protected:
  Port* port_ = nullptr;
};

}  // namespace pdq::net
