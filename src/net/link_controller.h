// Per-output-port protocol hook.
//
// Explicit-rate protocols (PDQ, RCP, D3) do their switch-side work per
// *link*. Each output port of every node owns an optional LinkController:
//  - forward-direction packets (SYN/DATA/PROBE/TERM) hit on_forward() just
//    before being enqueued on the port;
//  - reverse-direction packets (ACKs) hit on_reverse() at the node that
//    owns the paired forward port, i.e. when the ACK arrives back at the
//    upstream side of the link it describes.
// This mirrors the paper's forward-path / reverse-path header processing.
#pragma once

#include "net/packet.h"
#include "sim/time.h"

namespace pdq::net {

class Port;

class LinkController {
 public:
  virtual ~LinkController() = default;

  /// Called once when installed; `port` outlives the controller.
  virtual void attach(Port& port) { port_ = &port; }

  virtual void on_forward(Packet& p) = 0;
  virtual void on_reverse(Packet& p) = 0;

 protected:
  Port* port_ = nullptr;
};

}  // namespace pdq::net
