// Multi-queue output ports: N class queues per port with weighted
// round-robin service and pluggable ECN marking — the switch model the
// DCTCP / MQ-ECN evaluation lineage assumes.
//
// A MultiQueuePort is an *optional* drop-in behind Port's queue-path
// helpers (node.h): when installed, enqueue/dequeue route through it;
// when absent, the single drop-tail FIFO runs the historical code path
// bit-for-bit. The port's transmitter state machine (coalescing, event
// scheduling, timestamps) is untouched either way — this class only
// decides admission, marking and service order.
//
// Semantics (mirrored verbatim by the naive model in
// tests/net_ecn_queue_property_test.cc):
//   * Admission: all class queues share one byte budget; a packet that
//     does not fit the *total* is tail-dropped, exactly like
//     DropTailQueue. With num_queues == 1 and no marking, accept
//     decisions and FIFO order are identical to DropTailQueue.
//   * Marking: decided at enqueue time, after admission, on the backlog
//     *including* the arriving packet; only ECN-capable (ECT) packets
//     are ever marked. kPerQueue compares the packet's class backlog
//     against K; kPerPort compares the whole port backlog against K;
//     kMqEcn scales K by the class's weight share of the queues active
//     after this enqueue (an occupancy-based simplification of MQ-ECN's
//     per-round service-rate scaling — stateless and deterministic).
//   * Service: one packet per pop(). kWrr grants each queue `weight`
//     packets per round; kDwrr grants `weight * quantum_bytes` of
//     deficit per round and serves while the head packet fits
//     (Shreedhar-Varghese: deficit persists across rounds while the
//     queue is backlogged, resets to zero when it empties). Queues
//     join the active ring in first-backlogged order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "net/queue.h"

namespace pdq::net {

class Topology;

enum class EcnScheme : std::uint8_t {
  kNone,      // no marking: pure scheduling
  kPerQueue,  // standard ECN per class queue, threshold K
  kPerPort,   // one threshold K on the shared buffer
  kMqEcn,     // per-queue threshold K * weight / sum(active weights)
};

enum class MqService : std::uint8_t {
  kWrr,   // weighted round robin, packet granularity
  kDwrr,  // deficit weighted round robin, byte granularity
};

struct MultiQueueConfig {
  int num_queues = 1;
  MqService service = MqService::kDwrr;
  /// Per-queue service weights; empty means all 1. Shorter vectors are
  /// padded with 1, extra entries are ignored.
  std::vector<int> weights;
  /// DWRR deficit granted per weight unit per round (one MTU).
  std::int64_t quantum_bytes = 1500;
  /// Shared byte budget across all class queues; 0 adopts the port's
  /// configured buffer size at install time.
  std::int64_t capacity_bytes = 0;
  EcnScheme ecn = EcnScheme::kNone;
  /// The marking threshold K, in bytes of backlog.
  std::int64_t ecn_threshold_bytes = 30'000;
  /// Maps a packet to its class queue (clamped to [0, num_queues));
  /// null hashes the flow id with the topology's ECMP mixer.
  std::function<int(const Packet&)> classify;
};

class MultiQueuePort {
 public:
  /// `default_capacity` replaces cfg.capacity_bytes when that is 0.
  MultiQueuePort(MultiQueueConfig cfg, std::int64_t default_capacity);

  MultiQueuePort(const MultiQueuePort&) = delete;
  MultiQueuePort& operator=(const MultiQueuePort&) = delete;

  /// Returns false (and counts a drop) when the packet does not fit the
  /// shared budget. May set p->ecn_ce before enqueueing.
  bool push(PacketPtr p);

  /// Next packet in WRR/DWRR service order (asserts when empty).
  PacketPtr pop();

  bool empty() const { return packets_ == 0; }
  std::size_t packets() const { return packets_; }
  std::int64_t bytes() const { return bytes_; }
  std::int64_t capacity() const { return capacity_bytes_; }
  std::int64_t drops() const { return drops_; }
  std::int64_t dropped_bytes() const { return dropped_bytes_; }
  /// CE marks applied by this port.
  std::int64_t ecn_marks() const { return ecn_marks_; }

  int num_queues() const { return static_cast<int>(queues_.size()); }
  std::int64_t queue_bytes(int q) const { return queues_[idx(q)]->fifo.bytes(); }
  std::size_t queue_packets(int q) const {
    return queues_[idx(q)]->fifo.packets();
  }
  int weight(int q) const { return queues_[idx(q)]->weight; }
  const MultiQueueConfig& config() const { return cfg_; }

  /// The class queue `p` would be assigned to (classifier + clamp).
  int classify(const Packet& p) const;

 private:
  struct ClassQueue {
    explicit ClassQueue(std::int64_t cap) : fifo(cap) {}
    DropTailQueue fifo;
    int weight = 1;
    std::int64_t deficit = 0;  // DWRR byte credit
    int credit = 0;            // WRR packet credit
    /// True when the queue's next service begins a fresh round (grants
    /// new credit/deficit). Set on rotation and on leaving the ring.
    bool fresh = true;
  };

  static std::size_t idx(int q) { return static_cast<std::size_t>(q); }
  bool should_mark(int q, const Packet& p) const;

  MultiQueueConfig cfg_;
  std::int64_t capacity_bytes_;
  std::vector<std::unique_ptr<ClassQueue>> queues_;
  /// Backlogged queue indices in service order; front is served next.
  std::vector<int> active_;
  std::int64_t bytes_ = 0;
  std::size_t packets_ = 0;
  std::int64_t drops_ = 0;
  std::int64_t dropped_bytes_ = 0;
  std::int64_t ecn_marks_ = 0;
};

/// Installs a fresh MultiQueuePort built from `cfg` on every *switch*
/// output port (host NICs keep their single FIFO: sender windows are
/// self-limiting there and DCTCP marks at switches). Totals in
/// Topology::total_queue_drops() and the set_link_state flush follow the
/// installed discipline automatically.
void install_multi_queue(Topology& topo, const MultiQueueConfig& cfg);

}  // namespace pdq::net
