// In-simulator packet representation.
//
// One Packet struct carries the union of all protocol headers under test
// (PDQ scheduling header, RCP rate header, D3 allocation header). A packet
// is source-routed: it shares its flow's immutable RoutePair (see
// route.h) and the `hop` index advances as it is forwarded.
//
// Packets are pooled: PacketPtr is an intrusive refcounted handle, and
// when the last reference drops the packet is reset and returned to the
// PacketPool it came from instead of being freed (packet_pool.h). All
// header fields are inline — D3's per-hop allocation vectors use
// SmallVec — so steady-state forwarding allocates nothing.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/route.h"
#include "net/small_vec.h"
#include "net/types.h"
#include "sim/time.h"

namespace pdq::net {

enum class PacketType : std::uint8_t {
  kSyn,       // flow initialization (forward)
  kSynAck,    // init acknowledgment (reverse)
  kData,      // payload (forward)
  kAck,       // per-packet data ack (reverse)
  kProbe,     // PDQ rate probe, header only (forward)
  kProbeAck,  // probe echo (reverse)
  kTerm,      // flow termination / early termination (forward)
  kTermAck,   // termination echo (reverse)
};

/// True for packets travelling sender -> receiver.
constexpr bool is_forward(PacketType t) {
  return t == PacketType::kSyn || t == PacketType::kData ||
         t == PacketType::kProbe || t == PacketType::kTerm;
}
constexpr bool is_reverse(PacketType t) { return !is_forward(t); }

/// PDQ scheduling header (paper S3). Field names mirror the paper's
/// subscript-H variables.
struct PdqHeader {
  double rate_bps = 0.0;                 // R_H: allocated / requested rate
  NodeId pause_by = kInvalidNode;        // P_H: switch that paused the flow
  sim::Time deadline = sim::kTimeInfinity;  // D_H: absolute deadline
  sim::Time expected_tx = 0;             // T_H: expected transmission time
  sim::Time rtt = 0;                     // RTT_H: sender-measured RTT
  double inter_probe_rtts = 0.0;         // I_H: inter-probe time, in RTTs
};

/// RCP rate header: switches stamp min(fair share) along the path.
struct RcpHeader {
  double rate_bps = -1.0;  // -1 = unset; switches take the running min
  sim::Time rtt = 0;
};

/// One grant per switch on the forward path; sized for the deepest
/// paper/fig13 topologies (fat-tree: 5 hops, BCube(2,3)/DCell: <= 8)
/// with heap spill beyond that.
inline constexpr std::size_t kInlineAllocHops = 8;
using AllocVec = SmallVec<double, kInlineAllocHops>;

/// D3 allocation header. Each switch on the forward path appends its grant
/// to `alloc`; the sender echoes last round's vector in `prev_alloc` so the
/// switch can release it without per-flow state (as in the D3 paper).
struct D3Header {
  double desired_rate_bps = 0.0;
  bool has_deadline = false;
  bool is_request = false;  // set on one packet per RTT by the sender
  AllocVec alloc;
  AllocVec prev_alloc;
  std::int32_t alloc_idx = 0;  // hop cursor into alloc/prev_alloc
};

class PacketPool;

struct Packet {
  FlowId flow = kInvalidFlow;
  PacketType type = PacketType::kData;
  NodeId src = kInvalidNode;  // original sender of the *flow* direction
  NodeId dst = kInvalidNode;  // this packet's destination

  std::int64_t seq = 0;        // first payload byte (forward), echo (reverse)
  std::int32_t payload = 0;    // payload bytes (0 for control)
  std::int64_t ack = 0;        // cumulative ack (TCP) or echoed seq
  std::int32_t size_bytes = kControlBytes;  // total on-wire size

  RouteRef path;           // shared flow route (see route.h)
  bool reversed = false;   // travelling along path->rev
  std::int32_t hop = 0;    // index of the node currently holding it

  sim::Time sent_time = 0;  // stamped by the sender, echoed for RTT

  // ECN codepoints (multi-queue marking ports, net/multi_queue.h, and
  // the DCTCP family, protocols/dctcp.h). Non-ECT packets are never
  // marked; receivers echo CE back as ECE on the cumulative ACK.
  bool ecn_capable = false;  // ECT: sender opted into marking
  bool ecn_ce = false;       // CE: congestion experienced, set by a queue
  bool ecn_echo = false;     // ECE: receiver's echo of CE (reverse dir)

  PdqHeader pdq;
  RcpHeader rcp;
  D3Header d3;

  /// The node path this packet travels, in travel order.
  const std::vector<NodeId>& route() const {
    static const std::vector<NodeId> kNoRoute;
    if (path == nullptr) return kNoRoute;
    return reversed ? path->rev : path->fwd;
  }
  /// Installs `fwd` as the forward path (helper for tests / senders that
  /// build ad-hoc routes).
  void set_route(std::vector<NodeId> fwd) {
    path = make_route(std::move(fwd));
    reversed = false;
  }

  NodeId next_hop() const {
    const auto& r = route();
    const auto next = static_cast<std::size_t>(hop) + 1;
    return next < r.size() ? r[next] : kInvalidNode;
  }
  bool at_destination() const {
    const auto& r = route();
    return !r.empty() && r[static_cast<std::size_t>(hop)] == dst;
  }

  /// Restores every field to its default so a recycled packet is
  /// indistinguishable from a fresh one (pool invariant; tested).
  void reset() {
    flow = kInvalidFlow;
    type = PacketType::kData;
    src = kInvalidNode;
    dst = kInvalidNode;
    seq = 0;
    payload = 0;
    ack = 0;
    size_bytes = kControlBytes;
    path = nullptr;
    reversed = false;
    hop = 0;
    sent_time = 0;
    ecn_capable = false;
    ecn_ce = false;
    ecn_echo = false;
    pdq = PdqHeader{};
    rcp = RcpHeader{};
    d3.desired_rate_bps = 0.0;
    d3.has_deadline = false;
    d3.is_request = false;
    d3.alloc.clear();
    d3.prev_alloc.clear();
    d3.alloc_idx = 0;
  }

 private:
  friend class PacketPool;
  friend class PacketPtr;

  /// Intrusive pool bookkeeping. Deliberately inert under copy/move so a
  /// value-copied Packet never inherits another packet's refcount or pool
  /// identity. Packets never cross threads (each simulation is
  /// single-threaded), so the refcount is plain.
  struct PoolHook {
    std::uint32_t refs = 0;
    PacketPool* origin = nullptr;  // owning pool; null = plain new/delete
    PoolHook() = default;
    PoolHook(const PoolHook&) {}
    PoolHook& operator=(const PoolHook&) { return *this; }
  };
  PoolHook hook_;
};

/// Intrusive refcounted handle; releasing the last reference recycles the
/// packet into its PacketPool (or deletes it when pool-less).
class PacketPtr {
 public:
  PacketPtr() = default;
  PacketPtr(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  PacketPtr(const PacketPtr& o) : p_(o.p_) {
    if (p_ != nullptr) ++p_->hook_.refs;
  }
  PacketPtr(PacketPtr&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }

  PacketPtr& operator=(const PacketPtr& o) {
    PacketPtr copy(o);
    std::swap(p_, copy.p_);
    return *this;
  }
  PacketPtr& operator=(PacketPtr&& o) noexcept {
    std::swap(p_, o.p_);
    return *this;
  }

  ~PacketPtr() { release(); }

  Packet* get() const { return p_; }
  Packet* operator->() const { return p_; }
  Packet& operator*() const { return *p_; }
  explicit operator bool() const { return p_ != nullptr; }

  friend bool operator==(const PacketPtr& a, const PacketPtr& b) {
    return a.p_ == b.p_;
  }
  friend bool operator!=(const PacketPtr& a, const PacketPtr& b) {
    return a.p_ != b.p_;
  }
  friend bool operator==(const PacketPtr& a, std::nullptr_t) {
    return a.p_ == nullptr;
  }
  friend bool operator!=(const PacketPtr& a, std::nullptr_t) {
    return a.p_ != nullptr;
  }

 private:
  friend class PacketPool;
  /// Adopts one reference (pool hand-out path).
  explicit PacketPtr(Packet* adopted) : p_(adopted) {}

  void release();

  Packet* p_ = nullptr;
};

/// Fresh packet from the calling thread's pool (packet_pool.h).
PacketPtr make_packet();

/// Builds the reverse-direction reply skeleton for `p` (same shared
/// route, direction flipped, headers copied, hop reset). The caller sets
/// type/seq/sizes.
inline PacketPtr make_reply(const Packet& p, PacketType type) {
  PacketPtr r = make_packet();
  const auto& fwd_route = p.route();
  r->flow = p.flow;
  r->type = type;
  r->src = p.src;
  r->dst = fwd_route.empty() ? p.src : fwd_route.front();
  r->path = p.path;
  r->reversed = !p.reversed;
  r->hop = 0;
  r->seq = p.seq;
  r->payload = 0;
  r->size_bytes = kControlBytes;
  r->sent_time = p.sent_time;
  r->pdq = p.pdq;
  r->rcp = p.rcp;
  r->d3 = p.d3;
  return r;
}

}  // namespace pdq::net
