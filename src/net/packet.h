// In-simulator packet representation.
//
// One Packet struct carries the union of all protocol headers under test
// (PDQ scheduling header, RCP rate header, D3 allocation header). A packet
// is source-routed: the full node path is computed at flow start and the
// `hop` index advances as it is forwarded.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/types.h"
#include "sim/time.h"

namespace pdq::net {

enum class PacketType : std::uint8_t {
  kSyn,       // flow initialization (forward)
  kSynAck,    // init acknowledgment (reverse)
  kData,      // payload (forward)
  kAck,       // per-packet data ack (reverse)
  kProbe,     // PDQ rate probe, header only (forward)
  kProbeAck,  // probe echo (reverse)
  kTerm,      // flow termination / early termination (forward)
  kTermAck,   // termination echo (reverse)
};

/// True for packets travelling sender -> receiver.
constexpr bool is_forward(PacketType t) {
  return t == PacketType::kSyn || t == PacketType::kData ||
         t == PacketType::kProbe || t == PacketType::kTerm;
}
constexpr bool is_reverse(PacketType t) { return !is_forward(t); }

/// PDQ scheduling header (paper S3). Field names mirror the paper's
/// subscript-H variables.
struct PdqHeader {
  double rate_bps = 0.0;                 // R_H: allocated / requested rate
  NodeId pause_by = kInvalidNode;        // P_H: switch that paused the flow
  sim::Time deadline = sim::kTimeInfinity;  // D_H: absolute deadline
  sim::Time expected_tx = 0;             // T_H: expected transmission time
  sim::Time rtt = 0;                     // RTT_H: sender-measured RTT
  double inter_probe_rtts = 0.0;         // I_H: inter-probe time, in RTTs
};

/// RCP rate header: switches stamp min(fair share) along the path.
struct RcpHeader {
  double rate_bps = -1.0;  // -1 = unset; switches take the running min
  sim::Time rtt = 0;
};

/// D3 allocation header. Each switch on the forward path appends its grant
/// to `alloc`; the sender echoes last round's vector in `prev_alloc` so the
/// switch can release it without per-flow state (as in the D3 paper).
struct D3Header {
  double desired_rate_bps = 0.0;
  bool has_deadline = false;
  bool is_request = false;  // set on one packet per RTT by the sender
  std::vector<double> alloc;
  std::vector<double> prev_alloc;
  std::int32_t alloc_idx = 0;  // hop cursor into alloc/prev_alloc
};

struct Packet {
  FlowId flow = kInvalidFlow;
  PacketType type = PacketType::kData;
  NodeId src = kInvalidNode;  // original sender of the *flow* direction
  NodeId dst = kInvalidNode;  // this packet's destination

  std::int64_t seq = 0;        // first payload byte (forward), echo (reverse)
  std::int32_t payload = 0;    // payload bytes (0 for control)
  std::int64_t ack = 0;        // cumulative ack (TCP) or echoed seq
  std::int32_t size_bytes = kControlBytes;  // total on-wire size

  std::vector<NodeId> route;  // node path including endpoints
  std::int32_t hop = 0;       // index of the node currently holding it

  sim::Time sent_time = 0;  // stamped by the sender, echoed for RTT

  PdqHeader pdq;
  RcpHeader rcp;
  D3Header d3;

  NodeId next_hop() const {
    const auto next = static_cast<std::size_t>(hop) + 1;
    return next < route.size() ? route[next] : kInvalidNode;
  }
  bool at_destination() const {
    return !route.empty() && route[static_cast<std::size_t>(hop)] == dst;
  }
};

using PacketPtr = std::shared_ptr<Packet>;

/// Builds the reverse-direction reply skeleton for `p` (route reversed,
/// headers copied, hop reset). The caller sets type/seq/sizes.
inline PacketPtr make_reply(const Packet& p, PacketType type) {
  auto r = std::make_shared<Packet>();
  r->flow = p.flow;
  r->type = type;
  r->src = p.src;
  r->dst = p.route.empty() ? p.src : p.route.front();
  r->route.assign(p.route.rbegin(), p.route.rend());
  r->hop = 0;
  r->seq = p.seq;
  r->payload = 0;
  r->size_bytes = kControlBytes;
  r->sent_time = p.sent_time;
  r->pdq = p.pdq;
  r->rcp = p.rcp;
  r->d3 = p.d3;
  return r;
}

}  // namespace pdq::net
