#include "net/multi_queue.h"

#include <algorithm>
#include <cassert>

#include "net/topology.h"

namespace pdq::net {

namespace {
/// Same SplitMix64 finalizer as the topology's ECMP hash.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

MultiQueuePort::MultiQueuePort(MultiQueueConfig cfg,
                               std::int64_t default_capacity)
    : cfg_(std::move(cfg)),
      capacity_bytes_(cfg_.capacity_bytes > 0 ? cfg_.capacity_bytes
                                              : default_capacity) {
  assert(cfg_.num_queues >= 1);
  queues_.reserve(static_cast<std::size_t>(cfg_.num_queues));
  for (int q = 0; q < cfg_.num_queues; ++q) {
    // Per-class FIFOs get the full shared budget; admission against the
    // *total* happens in push(), so the inner push can never reject.
    queues_.push_back(std::make_unique<ClassQueue>(capacity_bytes_));
    if (static_cast<std::size_t>(q) < cfg_.weights.size()) {
      queues_.back()->weight = std::max(1, cfg_.weights[idx(q)]);
    }
  }
  active_.reserve(queues_.size());
}

int MultiQueuePort::classify(const Packet& p) const {
  int q;
  if (cfg_.classify) {
    q = cfg_.classify(p);
  } else {
    q = static_cast<int>(mix64(static_cast<std::uint64_t>(p.flow)) %
                         queues_.size());
  }
  return std::clamp(q, 0, static_cast<int>(queues_.size()) - 1);
}

bool MultiQueuePort::should_mark(int q, const Packet& p) const {
  if (!p.ecn_capable || cfg_.ecn == EcnScheme::kNone) return false;
  const std::int64_t K = cfg_.ecn_threshold_bytes;
  switch (cfg_.ecn) {
    case EcnScheme::kPerQueue:
      return queue_bytes(q) + p.size_bytes > K;
    case EcnScheme::kPerPort:
      return bytes_ + p.size_bytes > K;
    case EcnScheme::kMqEcn: {
      // Threshold share over the queues active *after* this enqueue.
      std::int64_t active_weight = 0;
      for (std::size_t i = 0; i < queues_.size(); ++i) {
        if (!queues_[i]->fifo.empty() || static_cast<int>(i) == q) {
          active_weight += queues_[i]->weight;
        }
      }
      const double share =
          static_cast<double>(queues_[idx(q)]->weight) /
          static_cast<double>(active_weight);
      return static_cast<double>(queue_bytes(q) + p.size_bytes) >
             static_cast<double>(K) * share;
    }
    case EcnScheme::kNone:
      break;
  }
  return false;
}

bool MultiQueuePort::push(PacketPtr p) {
  if (bytes_ + p->size_bytes > capacity_bytes_) {
    ++drops_;
    dropped_bytes_ += p->size_bytes;
    return false;
  }
  const int q = classify(*p);
  if (should_mark(q, *p)) {
    p->ecn_ce = true;
    ++ecn_marks_;
  }
  ClassQueue& cq = *queues_[idx(q)];
  const bool was_empty = cq.fifo.empty();
  bytes_ += p->size_bytes;
  ++packets_;
  const bool ok = cq.fifo.push(std::move(p));
  assert(ok && "class FIFO sized to the shared budget cannot reject");
  (void)ok;
  if (was_empty) active_.push_back(q);
  return true;
}

PacketPtr MultiQueuePort::pop() {
  assert(packets_ > 0 && "pop() from an empty MultiQueuePort");
  for (;;) {
    const int qi = active_.front();
    ClassQueue& q = *queues_[idx(qi)];
    assert(!q.fifo.empty() && "active ring entry with an empty queue");

    if (cfg_.service == MqService::kWrr) {
      if (q.fresh) {
        q.credit = q.weight;
        q.fresh = false;
      }
      PacketPtr p = q.fifo.pop();
      bytes_ -= p->size_bytes;
      --packets_;
      --q.credit;
      if (q.fifo.empty()) {
        active_.erase(active_.begin());
        q.fresh = true;
      } else if (q.credit == 0) {
        active_.erase(active_.begin());
        active_.push_back(qi);
        q.fresh = true;
      }
      return p;
    }

    // DWRR: grant deficit on a fresh round, serve while the head fits.
    if (q.fresh) {
      q.deficit += cfg_.quantum_bytes * q.weight;
      q.fresh = false;
    }
    if (q.fifo.front().size_bytes <= q.deficit) {
      PacketPtr p = q.fifo.pop();
      bytes_ -= p->size_bytes;
      --packets_;
      q.deficit -= p->size_bytes;
      if (q.fifo.empty()) {
        active_.erase(active_.begin());
        q.deficit = 0;
        q.fresh = true;
      }
      return p;
    }
    // Turn exhausted: keep the residual deficit, rotate to the back.
    active_.erase(active_.begin());
    active_.push_back(qi);
    q.fresh = true;
  }
}

void install_multi_queue(Topology& topo, const MultiQueueConfig& cfg) {
  for (NodeId sw : topo.switch_ids()) {
    for (const auto& port : topo.node(sw).ports()) {
      port->set_multi_queue(std::make_unique<MultiQueuePort>(
          cfg, port->queue().capacity()));
    }
  }
}

}  // namespace pdq::net
