#include "net/builders.h"

#include <cassert>
#include <numeric>

#include "sim/random.h"

namespace pdq::net {

std::vector<NodeId> build_single_bottleneck(Topology& topo, int n_senders,
                                            const LinkDefaults& d) {
  assert(n_senders >= 1);
  std::vector<NodeId> servers;
  const NodeId sw = topo.add_switch();
  for (int i = 0; i < n_senders; ++i) {
    const NodeId h = topo.add_host();
    topo.add_duplex_link(h, sw, d);
    servers.push_back(h);
  }
  const NodeId receiver = topo.add_host();
  topo.add_duplex_link(sw, receiver, d);
  servers.push_back(receiver);
  return servers;
}

std::vector<NodeId> build_single_rooted_tree(Topology& topo, int num_tors,
                                             int servers_per_tor,
                                             const LinkDefaults& d) {
  std::vector<NodeId> servers;
  const NodeId root = topo.add_switch();
  for (int t = 0; t < num_tors; ++t) {
    const NodeId tor = topo.add_switch();
    topo.add_duplex_link(tor, root, d);
    for (int s = 0; s < servers_per_tor; ++s) {
      const NodeId h = topo.add_host();
      topo.add_duplex_link(h, tor, d);
      servers.push_back(h);
    }
  }
  return servers;
}

std::vector<NodeId> build_fat_tree(Topology& topo, int k,
                                   const LinkDefaults& d) {
  assert(k >= 2 && k % 2 == 0);
  const int half = k / 2;
  std::vector<NodeId> servers;

  // Core switches: half*half of them.
  std::vector<NodeId> cores;
  for (int i = 0; i < half * half; ++i) cores.push_back(topo.add_switch());

  for (int p = 0; p < k; ++p) {
    std::vector<NodeId> edges, aggs;
    for (int i = 0; i < half; ++i) {
      edges.push_back(topo.add_switch());
      aggs.push_back(topo.add_switch());
    }
    // Full bipartite edge<->agg inside the pod.
    for (NodeId e : edges)
      for (NodeId a : aggs) topo.add_duplex_link(e, a, d);
    // Agg i connects to cores [i*half, (i+1)*half).
    for (int i = 0; i < half; ++i)
      for (int j = 0; j < half; ++j)
        topo.add_duplex_link(aggs[static_cast<std::size_t>(i)],
                             cores[static_cast<std::size_t>(i * half + j)], d);
    // Each edge switch hosts k/2 servers.
    for (NodeId e : edges) {
      for (int s = 0; s < half; ++s) {
        const NodeId h = topo.add_host();
        topo.add_duplex_link(h, e, d);
        servers.push_back(h);
      }
    }
  }
  return servers;
}

std::vector<NodeId> build_spine_leaf(Topology& topo, int spines, int tors,
                                     int servers_per_rack, double oversub,
                                     const LinkDefaults& d) {
  assert(spines >= 1 && tors >= 1 && servers_per_rack >= 1 && oversub > 0.0);
  std::vector<NodeId> spine_ids;
  for (int s = 0; s < spines; ++s) spine_ids.push_back(topo.add_switch());

  LinkDefaults up = d;
  up.rate_bps =
      d.rate_bps * servers_per_rack / (static_cast<double>(spines) * oversub);

  std::vector<NodeId> servers;
  for (int t = 0; t < tors; ++t) {
    const NodeId leaf = topo.add_switch();
    for (NodeId s : spine_ids) topo.add_duplex_link(leaf, s, up);
    for (int h = 0; h < servers_per_rack; ++h) {
      const NodeId host = topo.add_host();
      topo.add_duplex_link(host, leaf, d);
      servers.push_back(host);
    }
  }
  return servers;
}

std::vector<int> bcube_address(int server, int n, int k) {
  std::vector<int> digits(static_cast<std::size_t>(k) + 1);
  for (int l = 0; l <= k; ++l) {
    digits[static_cast<std::size_t>(l)] = server % n;
    server /= n;
  }
  return digits;
}

std::vector<NodeId> build_bcube(Topology& topo, int n, int k,
                                const LinkDefaults& d) {
  assert(n >= 2 && k >= 0);
  int num_servers = 1;
  for (int i = 0; i <= k; ++i) num_servers *= n;
  const int switches_per_level = num_servers / n;

  std::vector<NodeId> servers;
  for (int s = 0; s < num_servers; ++s) servers.push_back(topo.add_host());

  // Level-l switch w connects the n servers that agree with w on all
  // address digits except digit l.
  for (int l = 0; l <= k; ++l) {
    for (int w = 0; w < switches_per_level; ++w) {
      const NodeId sw = topo.add_switch();
      // Expand w into the server index with digit l removed.
      int low = w;
      int pow_l = 1;
      for (int i = 0; i < l; ++i) pow_l *= n;
      const int below = low % pow_l;
      const int above = low / pow_l;
      for (int digit = 0; digit < n; ++digit) {
        const int server = above * pow_l * n + digit * pow_l + below;
        topo.add_duplex_link(servers[static_cast<std::size_t>(server)], sw, d);
      }
    }
  }
  return servers;
}

int dcell_server_count(int n, int l) {
  int t = n;
  for (int i = 1; i <= l; ++i) t = t * (t + 1);
  return t;
}

namespace {

/// Appends one DCell(n, l) to `topo`; the new servers (in address order)
/// go into `servers`.
void build_dcell_rec(Topology& topo, int n, int l,
                     std::vector<NodeId>& servers, const LinkDefaults& d) {
  if (l == 0) {
    const NodeId sw = topo.add_switch();
    for (int i = 0; i < n; ++i) {
      const NodeId h = topo.add_host();
      topo.add_duplex_link(h, sw, d);
      servers.push_back(h);
    }
    return;
  }
  const int t_prev = dcell_server_count(n, l - 1);
  const int cells = t_prev + 1;
  std::vector<std::vector<NodeId>> subs;
  subs.reserve(static_cast<std::size_t>(cells));
  for (int c = 0; c < cells; ++c) {
    std::vector<NodeId> sub;
    build_dcell_rec(topo, n, l - 1, sub, d);
    servers.insert(servers.end(), sub.begin(), sub.end());
    subs.push_back(std::move(sub));
  }
  // Level-l links: sub-cell i's server (j-1) <-> sub-cell j's server i.
  for (int i = 0; i < cells; ++i) {
    for (int j = i + 1; j < cells; ++j) {
      topo.add_duplex_link(subs[static_cast<std::size_t>(i)]
                               [static_cast<std::size_t>(j - 1)],
                           subs[static_cast<std::size_t>(j)]
                               [static_cast<std::size_t>(i)],
                           d);
    }
  }
}

}  // namespace

std::vector<NodeId> build_dcell(Topology& topo, int n, int l,
                                const LinkDefaults& d) {
  assert(n >= 2 && l >= 0);
  std::vector<NodeId> servers;
  servers.reserve(static_cast<std::size_t>(dcell_server_count(n, l)));
  build_dcell_rec(topo, n, l, servers, d);
  return servers;
}

std::vector<NodeId> build_jellyfish(Topology& topo, int num_switches,
                                    int ports, int net_ports,
                                    std::uint64_t seed,
                                    const LinkDefaults& d) {
  assert(net_ports < ports && net_ports >= 2);
  assert(num_switches * net_ports % 2 == 0);
  sim::Rng rng(seed);

  // Random regular graph: stub matching followed by double-edge-swap
  // repair of self-loops and parallel edges (restart-on-conflict almost
  // never terminates for dense graphs).
  std::vector<std::pair<int, int>> edges;
  std::vector<int> stubs;
  for (int s = 0; s < num_switches; ++s)
    for (int p = 0; p < net_ports; ++p) stubs.push_back(s);
  rng.shuffle(stubs);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    edges.emplace_back(stubs[i], stubs[i + 1]);
  }

  auto edge_count = [&](int a, int b) {
    int c = 0;
    for (const auto& [x, y] : edges) {
      if ((x == a && y == b) || (x == b && y == a)) ++c;
    }
    return c;
  };
  auto is_bad = [&](std::size_t i) {
    const auto [a, b] = edges[i];
    return a == b || edge_count(a, b) > 1;
  };

  bool clean = false;
  for (int iter = 0; iter < 200'000 && !clean; ++iter) {
    clean = true;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (!is_bad(i)) continue;
      clean = false;
      // Swap one endpoint with a random other edge.
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(edges.size()) - 1));
      if (j == i) continue;
      auto& [a, b] = edges[i];
      auto& [c, d] = edges[j];
      // Propose (a,d) and (c,b); only apply if it does not create new
      // conflicts at the target edges.
      if (a == d || c == b) continue;
      if (edge_count(a, d) > 0 || edge_count(c, b) > 0) continue;
      std::swap(b, d);
    }
  }
  assert(clean && "jellyfish repair did not converge");

  std::vector<NodeId> switches;
  for (int s = 0; s < num_switches; ++s) switches.push_back(topo.add_switch());
  for (auto [a, b] : edges)
    topo.add_duplex_link(switches[static_cast<std::size_t>(a)],
                         switches[static_cast<std::size_t>(b)], d);

  std::vector<NodeId> servers;
  const int hosts_per_switch = ports - net_ports;
  for (int s = 0; s < num_switches; ++s) {
    for (int h = 0; h < hosts_per_switch; ++h) {
      const NodeId host = topo.add_host();
      topo.add_duplex_link(host, switches[static_cast<std::size_t>(s)], d);
      servers.push_back(host);
    }
  }
  return servers;
}

}  // namespace pdq::net
