// Nodes (hosts and switches) and their output ports.
//
// A Port bundles the outgoing simplex link, its FIFO tail-drop byte queue,
// the transmitter state machine and an optional per-link protocol
// controller. Forwarding is source-routed: packets carry their node path.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "net/link.h"
#include "net/link_controller.h"
#include "net/multi_queue.h"
#include "net/packet.h"
#include "net/queue.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace pdq::net {

class Topology;
class Node;

class Port {
 public:
  Port(Node& owner, SimplexLink& link, std::int64_t buffer_bytes)
      : owner_(owner), link_(link), queue_(buffer_bytes) {}

  SimplexLink& link() { return link_; }
  const SimplexLink& link() const { return link_; }
  DropTailQueue& queue() { return queue_; }
  const DropTailQueue& queue() const { return queue_; }
  Node& owner() { return owner_; }

  LinkController* controller() { return controller_.get(); }
  const LinkController* controller() const { return controller_.get(); }
  void set_controller(std::unique_ptr<LinkController> c);

  /// Optional multi-queue service/marking discipline (multi_queue.h).
  /// When installed, the queue-path helpers below route through it;
  /// when absent they fall through to the single drop-tail FIFO — the
  /// historical code path, bit-for-bit. Install before traffic flows
  /// (packets already sitting in the FIFO stay there).
  MultiQueuePort* multi_queue() { return mq_.get(); }
  const MultiQueuePort* multi_queue() const { return mq_.get(); }
  void set_multi_queue(std::unique_ptr<MultiQueuePort> mq) {
    mq_ = std::move(mq);
  }

  bool enqueue(PacketPtr p) {
    return mq_ ? mq_->push(std::move(p)) : queue_.push(std::move(p));
  }
  PacketPtr dequeue() { return mq_ ? mq_->pop() : queue_.pop(); }
  bool queue_empty() const { return mq_ ? mq_->empty() : queue_.empty(); }
  std::int64_t queued_bytes() const {
    return mq_ ? mq_->bytes() : queue_.bytes();
  }
  std::int64_t queue_drops() const {
    return queue_.drops() + (mq_ ? mq_->drops() : 0);
  }

  /// Optional instrumentation, owned by the harness.
  sim::RateMeter* meter = nullptr;
  sim::TimeSeries* queue_series = nullptr;

  std::int64_t wire_drops = 0;  // random on-the-wire losses (Fig 9)
  /// Net events saved by transmit coalescing on this port (tx-complete
  /// and absorbed processing events avoided, minus resume events added).
  std::uint64_t events_coalesced = 0;

 private:
  friend class Node;
  Node& owner_;
  SimplexLink& link_;
  DropTailQueue queue_;
  std::unique_ptr<MultiQueuePort> mq_;
  std::unique_ptr<LinkController> controller_;
  bool busy_ = false;
  // Coalesced-transmit state: when a transmission is in flight with no
  // tx-complete event (lossless links), busy_until_ records when the wire
  // frees up; a resume event is scheduled lazily only if packets queue up
  // behind the in-flight one.
  bool coalesced_tx_ = false;
  bool resume_scheduled_ = false;
  sim::Time busy_until_ = 0;
  /// When the in-flight coalesced transmission started — the instant the
  /// chain's tx-complete event would have been scheduled — and the event
  /// sequence number reserved there. Resume events adopt both as their
  /// as-if tie-break key so they run exactly where the chain's
  /// tx-complete would have.
  sim::Time tx_started_ = 0;
  std::uint64_t tx_seq_ = 0;
};

class Node {
 public:
  Node(Topology& topo, NodeId id, sim::Time processing_delay);
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  Topology& topo() { return topo_; }
  sim::Time processing_delay() const { return processing_delay_; }

  /// Installs an output port for `out` (called by Topology).
  Port& add_port(SimplexLink& out, std::int64_t buffer_bytes);

  Port* port_to(NodeId neighbor);
  const std::vector<std::unique_ptr<Port>>& ports() const { return ports_; }

  /// Entry point for packets arriving over `in` (hop already advanced).
  void receive(PacketPtr p, SimplexLink* in);

  /// Entry point for locally originated packets (route[0] must be id()).
  void send(PacketPtr p);

 protected:
  /// Handles packets whose destination is this node.
  virtual void deliver_local(PacketPtr p) = 0;

  Topology& topo_;

 private:
  void dispatch(PacketPtr p);
  void transmit_out(Port& port, PacketPtr p);
  void start_tx(Port& port);
  /// Arrival entry point for coalesced transit packets: the upstream
  /// transmitter already accounted for this node's processing delay, so
  /// the packet goes straight to the output port.
  void receive_dispatch(PacketPtr p);
  /// Clears a coalesced-transmit busy marker once the wire has freed up.
  static void settle_coalesced(Port& port, sim::Time now);
  void resume_tx(Port& port);

  NodeId id_;
  sim::Time processing_delay_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::unordered_map<NodeId, Port*> port_by_neighbor_;
};

class Switch : public Node {
 public:
  using Node::Node;

 protected:
  void deliver_local(PacketPtr p) override;
};

struct FlowResult;

/// Transport endpoint installed on a Host; one per flow per direction.
class Agent {
 public:
  virtual ~Agent() = default;
  /// Sender agents: begin transmission. Receiver agents: no-op.
  virtual void start() {}
  virtual void on_packet(const PacketPtr& p) = 0;
  /// Sender agents report their flow outcome here; receivers return null.
  virtual const FlowResult* flow_result() const { return nullptr; }
  /// Replaces the sender's route mid-flow (harness link-failure
  /// timelines). A null route means no path remains — senders that can
  /// should terminate the flow. Packets already in flight keep the old
  /// (immutable) route; only subsequent sends use the new one. Default:
  /// no-op (receivers follow the data packets' route automatically).
  virtual void reroute(RouteRef route) { (void)route; }
  /// Link-down notification preceding the harness's generic reroute
  /// pass. Return true to claim the event: the harness then skips the
  /// parent-route crossing check for this sender. M-PDQ claims it to
  /// re-pin its per-subflow routes, which the parent route does not
  /// describe. Default: not handled.
  virtual bool handle_link_down(NodeId a, NodeId b) {
    (void)a;
    (void)b;
    return false;
  }

  // --- hybrid packet/fluid handoff (scenario.cc hybrid backend) ---
  /// The rate to seed the fluid model with when this sender's packet
  /// segment hands off: the last positive protocol-granted rate
  /// (explicit-rate stacks) or a cwnd/srtt estimate (TCP family).
  /// 0 = unknown; the fluid model then applies its own 2-RTT ramp.
  virtual double handoff_rate_bps() const { return 0.0; }
  /// Seeds initial rate state on a sender resuming a fluid-advanced
  /// flow (the packet tail segment): applied at start() only if the
  /// protocol has not granted a rate by then, so explicit-rate stacks
  /// resume at the fluid equilibrium instead of re-ramping from zero.
  /// Default: ignored (window-based stacks ramp per their own rules).
  virtual void seed_rate(double bps) { (void)bps; }

  // --- retirement protocol (streaming-metrics mode; scenario.cc) ---
  /// True when the agent holds no state a still-running simulation can
  /// observe: its flow is terminated and no in-flight packet will need
  /// it (Host::deliver_local drops packets for detached flows, so a
  /// retirable agent may be destroyed mid-run). Default: never — agents
  /// that cannot prove it (TCP/DCTCP receivers, M-PDQ) live to run end.
  virtual bool retirable() const { return false; }
  /// Cancels any events still scheduled against `this` so destruction
  /// mid-run is safe. Must only cancel events it knows are pending
  /// (guarded by per-event flags): a default-initialized EventId is
  /// (gen 0, slot 0) — a live id in every fresh simulator.
  virtual void quiesce() {}
  /// Approximate heap footprint: sizeof the dynamic type plus owned
  /// container capacities. Used for the peak_flow_bytes counter — an
  /// operation-count-style memory metric, not an allocator measurement.
  virtual std::size_t footprint_bytes() const { return sizeof(*this); }
};

class Host : public Node {
 public:
  using Node::Node;

  /// NIC rate = rate of the first (usually only) outgoing link.
  double nic_rate_bps() const;

  void attach_sender(FlowId f, Agent* a) { senders_[f] = a; }
  void attach_receiver(FlowId f, Agent* a) { receivers_[f] = a; }
  void detach_sender(FlowId f) { senders_.erase(f); }
  void detach_receiver(FlowId f) { receivers_.erase(f); }

  /// Attached sender agents by flow id — the invariant auditor's ground
  /// truth for "a live sender owns this flow" (M-PDQ subflow ids and
  /// hybrid tail-segment ids included, unlike the harness's slot table).
  const std::unordered_map<FlowId, Agent*>& attached_senders() const {
    return senders_;
  }

 protected:
  void deliver_local(PacketPtr p) override;

 private:
  std::unordered_map<FlowId, Agent*> senders_;
  std::unordered_map<FlowId, Agent*> receivers_;
};

}  // namespace pdq::net
