// Shared identifiers and wire-format constants for the packet substrate.
#pragma once

#include <cstdint>

namespace pdq::net {

using NodeId = std::int32_t;
using FlowId = std::int64_t;
using LinkId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr FlowId kInvalidFlow = -1;

/// Ethernet-ish framing used throughout the paper's experiments.
inline constexpr std::int32_t kMtuBytes = 1500;
inline constexpr std::int32_t kHeaderBytes = 40;   // TCP/IP headers
inline constexpr std::int32_t kMaxPayloadBytes = kMtuBytes - kHeaderBytes;
/// PDQ adds a 16-byte scheduling header (4 x 4-byte fields, see paper S7).
inline constexpr std::int32_t kSchedulingHeaderBytes = 16;
/// Control packets (SYN/ACK/probe/TERM) carry headers only.
inline constexpr std::int32_t kControlBytes = kHeaderBytes;

}  // namespace pdq::net
