// Topology partitioning for the sharded engine (sim/sharded.h).
//
// The cut follows the fabric's natural seams: every host groups with its
// attachment switch (its first port's neighbor — the ToR in fat-tree and
// spine-leaf, the cell mini-switch in DCell), attachment groups split
// into K contiguous blocks balanced by host count (pods / cells / rack
// groups), and host-less switches (aggregation, core, spine) join the
// shard they share the most links with. The conservative-sync lookahead
// is the minimum latency any packet needs to cross the cut: min over
// cross-shard links of propagation + minimum-packet (kControlBytes)
// serialization — positive by construction, since transmission_time
// rounds up to at least 1 ns.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/packet_pool.h"
#include "net/topology.h"
#include "sim/sharded.h"

namespace pdq::net {

/// Computes a shard plan for `topo`. Returns false with *error set when
/// the topology cannot honor the request (fewer attachment groups than
/// shards, lossy or faulted links, no cross-shard link).
bool make_shard_plan(Topology& topo, int shards, sim::ShardPlan* plan,
                     std::string* error);

/// Owns everything a sharded run needs beyond the plan: the executor
/// and one cross-thread-guarded PacketPool per shard, installed as each
/// worker thread's PacketPool::local() via ShardPlan::thread_env.
/// Destruction drains the topology's port queues and the executor's
/// pending closures before the pools die, so every in-flight packet is
/// released to its origin pool first (the pools' leak assert stays
/// armed).
class ShardedSession {
 public:
  /// Builds the plan and executor; installs the executor as `sim`'s
  /// backend. Returns null with *error set when make_shard_plan fails.
  static std::unique_ptr<ShardedSession> create(sim::Simulator& sim,
                                                Topology& topo, int shards,
                                                std::string* error);
  ~ShardedSession();

  ShardedSession(const ShardedSession&) = delete;
  ShardedSession& operator=(const ShardedSession&) = delete;

  sim::ShardExecutor& executor() { return *exec_; }
  const sim::ShardExecutor& executor() const { return *exec_; }

  /// Packet counters summed over the per-shard pools. Allocation counts
  /// are execution-strategy-scoped: deterministic for a fixed shard
  /// count, but not comparable across shard counts (each shard warms
  /// its own free list) — see docs/architecture.md "Sharded execution".
  std::uint64_t packet_allocs() const;
  std::uint64_t packet_acquires() const;
  std::size_t pool_highwater() const;

 private:
  explicit ShardedSession(Topology& topo) : topo_(topo) {}

  Topology& topo_;
  std::vector<std::unique_ptr<PacketPool>> pools_;
  std::unique_ptr<sim::ShardExecutor> exec_;
};

}  // namespace pdq::net
