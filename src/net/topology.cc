#include "net/topology.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <unordered_set>

namespace pdq::net {

namespace {

std::uint64_t pair_key(NodeId a, NodeId b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

/// SplitMix64: cheap, well-mixed hash for deterministic ECMP choice.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

NodeId Topology::add_host(sim::Time processing_delay) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Host>(*this, id, processing_delay));
  adjacency_.emplace_back();
  host_ids_.push_back(id);
  is_host_.push_back(true);
  return id;
}

NodeId Topology::add_switch(sim::Time processing_delay) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Switch>(*this, id, processing_delay));
  adjacency_.emplace_back();
  switch_ids_.push_back(id);
  is_host_.push_back(false);
  return id;
}

Host& Topology::host(NodeId id) {
  assert(is_host(id));
  return static_cast<Host&>(node(id));
}

bool Topology::is_host(NodeId id) const {
  return is_host_.at(static_cast<std::size_t>(id));
}

void Topology::add_duplex_link(NodeId a, NodeId b, const LinkDefaults& d) {
  assert(a != b);
  auto make = [&](NodeId from, NodeId to) {
    auto l = std::make_unique<SimplexLink>();
    l->id = static_cast<LinkId>(links_.size());
    l->from = from;
    l->to = to;
    l->rate_bps = d.rate_bps;
    l->prop_delay = d.prop_delay;
    links_.push_back(std::move(l));
    return links_.back().get();
  };
  SimplexLink* ab = make(a, b);
  SimplexLink* ba = make(b, a);
  ab->reverse = ba;
  ba->reverse = ab;
  node(a).add_port(*ab, d.buffer_bytes);
  node(b).add_port(*ba, d.buffer_bytes);
  adjacency_[static_cast<std::size_t>(a)].push_back(b);
  adjacency_[static_cast<std::size_t>(b)].push_back(a);
  // Topology changed: every derived path product is stale.
  const std::lock_guard<std::mutex> lock(route_mu_);
  path_cache_.clear();
  route_cache_.clear();
  disjoint_cache_.clear();
  ++version_;
}

const std::vector<std::vector<NodeId>>& Topology::shortest_paths(NodeId src,
                                                                 NodeId dst) {
  const std::lock_guard<std::mutex> lock(route_mu_);
  return shortest_paths_unlocked(src, dst);
}

const std::vector<std::vector<NodeId>>& Topology::shortest_paths_unlocked(
    NodeId src, NodeId dst) {
  const auto key = pair_key(src, dst);
  auto it = path_cache_.find(key);
  if (it != path_cache_.end()) return it->second;
  auto [ins, _] = path_cache_.emplace(key, compute_shortest_paths(src, dst));
  return ins->second;
}

std::vector<std::vector<NodeId>> Topology::compute_shortest_paths(
    NodeId src, NodeId dst) const {
  const auto n = nodes_.size();
  constexpr int kInf = std::numeric_limits<int>::max();
  std::vector<int> dist(n, kInf);

  // BFS from dst so dist[] gives hops-to-destination; a forward DFS can
  // then walk strictly downhill to enumerate all shortest paths.
  std::queue<NodeId> bfs;
  dist[static_cast<std::size_t>(dst)] = 0;
  bfs.push(dst);
  while (!bfs.empty()) {
    const NodeId u = bfs.front();
    bfs.pop();
    for (NodeId v : adjacency_[static_cast<std::size_t>(u)]) {
      // Administratively-down links (both halves flip together) carry no
      // paths.
      if (!down_links_.empty() && down_links_.count(pair_key(u, v))) continue;
      // Hosts other than the endpoints may relay only in server-centric
      // topologies (BCube): allow transit through any multi-port host, but
      // never through single-port (leaf) hosts.
      if (v != src && v != dst && is_host_[static_cast<std::size_t>(v)] &&
          adjacency_[static_cast<std::size_t>(v)].size() < 2) {
        continue;
      }
      if (dist[static_cast<std::size_t>(v)] == kInf) {
        dist[static_cast<std::size_t>(v)] =
            dist[static_cast<std::size_t>(u)] + 1;
        bfs.push(v);
      }
    }
  }

  std::vector<std::vector<NodeId>> out;
  if (dist[static_cast<std::size_t>(src)] == kInf) return out;

  std::vector<NodeId> cur{src};
  // Iterative DFS enumerating paths that decrease dist by 1 per hop.
  struct Frame {
    NodeId node;
    std::size_t next_idx;
  };
  std::vector<Frame> stack{{src, 0}};
  while (!stack.empty() && out.size() < kMaxEcmpPaths) {
    Frame& f = stack.back();
    if (f.node == dst) {
      out.push_back(cur);
      stack.pop_back();
      cur.pop_back();
      continue;
    }
    const auto& adj = adjacency_[static_cast<std::size_t>(f.node)];
    bool descended = false;
    while (f.next_idx < adj.size()) {
      const NodeId v = adj[f.next_idx++];
      if (!down_links_.empty() && down_links_.count(pair_key(f.node, v))) {
        continue;
      }
      if (dist[static_cast<std::size_t>(v)] ==
          dist[static_cast<std::size_t>(f.node)] - 1) {
        stack.push_back({v, 0});
        cur.push_back(v);
        descended = true;
        break;
      }
    }
    if (!descended && f.next_idx >= adj.size()) {
      stack.pop_back();
      cur.pop_back();
    }
  }
  return out;
}

std::vector<NodeId> Topology::ecmp_path(FlowId flow, NodeId src, NodeId dst,
                                        std::uint64_t salt) {
  const std::lock_guard<std::mutex> lock(route_mu_);
  const auto& paths = shortest_paths_unlocked(src, dst);
  assert(!paths.empty() && "no path between endpoints");
  const std::uint64_t h =
      mix64(static_cast<std::uint64_t>(flow) * 0x9e3779b97f4a7c15ULL + salt);
  return paths[h % paths.size()];
}

RouteRef Topology::ecmp_route(FlowId flow, NodeId src, NodeId dst,
                              std::uint64_t salt) {
  const std::lock_guard<std::mutex> lock(route_mu_);
  const auto& paths = shortest_paths_unlocked(src, dst);
  assert(!paths.empty() && "no path between endpoints");
  const std::uint64_t h =
      mix64(static_cast<std::uint64_t>(flow) * 0x9e3779b97f4a7c15ULL + salt);
  const std::size_t pick = h % paths.size();
  auto& cached = route_cache_[pair_key(src, dst)];
  if (cached.size() < paths.size()) cached.resize(paths.size());
  if (cached[pick] == nullptr) cached[pick] = make_route(paths[pick]);
  return cached[pick];
}

const std::vector<std::vector<NodeId>>& Topology::disjoint_paths(NodeId src,
                                                                 NodeId dst,
                                                                 int k) {
  const std::lock_guard<std::mutex> lock(route_mu_);
  const auto key = pair_key(src, dst);
  auto it = disjoint_cache_.find(key);
  if (it != disjoint_cache_.end()) return it->second;

  std::vector<std::vector<NodeId>> paths;
  std::unordered_set<std::uint64_t> used_links;
  for (int round = 0; round < k; ++round) {
    // BFS shortest path avoiding links consumed by earlier paths. Leaf
    // hosts other than the endpoints never relay.
    std::vector<NodeId> prev(nodes_.size(), kInvalidNode);
    std::vector<bool> seen(nodes_.size(), false);
    std::queue<NodeId> q;
    q.push(src);
    seen[static_cast<std::size_t>(src)] = true;
    bool found = false;
    while (!q.empty() && !found) {
      const NodeId u = q.front();
      q.pop();
      for (NodeId v : adjacency_[static_cast<std::size_t>(u)]) {
        if (seen[static_cast<std::size_t>(v)]) continue;
        if (used_links.count(pair_key(u, v))) continue;
        if (!down_links_.empty() && down_links_.count(pair_key(u, v))) {
          continue;
        }
        if (v != src && v != dst && is_host_[static_cast<std::size_t>(v)] &&
            adjacency_[static_cast<std::size_t>(v)].size() < 2) {
          continue;
        }
        seen[static_cast<std::size_t>(v)] = true;
        prev[static_cast<std::size_t>(v)] = u;
        if (v == dst) {
          found = true;
          break;
        }
        q.push(v);
      }
    }
    if (!found) break;
    std::vector<NodeId> path{dst};
    for (NodeId u = dst; u != src; u = prev[static_cast<std::size_t>(u)])
      path.push_back(prev[static_cast<std::size_t>(u)]);
    std::reverse(path.begin(), path.end());
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      used_links.insert(pair_key(path[h], path[h + 1]));
      used_links.insert(pair_key(path[h + 1], path[h]));
    }
    paths.push_back(std::move(path));
  }
  auto [ins, _] = disjoint_cache_.emplace(key, std::move(paths));
  return ins->second;
}

void Topology::set_link_drop_rate(NodeId a, NodeId b, double rate) {
  Port* ab = node(a).port_to(b);
  Port* ba = node(b).port_to(a);
  assert(ab && ba);
  ab->link().drop_rate = rate;
  ba->link().drop_rate = rate;
}

void Topology::set_link_state(NodeId a, NodeId b, bool up) {
  Port* ab = node(a).port_to(b);
  Port* ba = node(b).port_to(a);
  assert(ab && ba && "set_link_state on a non-existent link");
  if (ab->link().up == up) return;
  ab->link().up = up;
  ba->link().up = up;
  if (up) {
    down_links_.erase(pair_key(a, b));
    down_links_.erase(pair_key(b, a));
  } else {
    down_links_.insert(pair_key(a, b));
    down_links_.insert(pair_key(b, a));
    // Queued packets die with the link; packets already serialized onto
    // the wire (their arrival events are in flight) are still delivered.
    for (Port* p : {ab, ba}) {
      const bool flushed = !p->queue_empty();
      while (!p->queue_empty()) {
        p->dequeue();  // destroying the PacketPtr recycles it
        ++p->wire_drops;
      }
      if (flushed && p->queue_series) {
        p->queue_series->record(sim_.now(),
                                static_cast<double>(p->queued_bytes()));
      }
    }
  }
  // Same invalidation as add_duplex_link: every derived path product is
  // stale. In-flight RouteRefs stay valid (immutable, refcounted); only
  // new lookups recompute.
  const std::lock_guard<std::mutex> lock(route_mu_);
  path_cache_.clear();
  route_cache_.clear();
  disjoint_cache_.clear();
  ++version_;
}

bool Topology::link_is_up(NodeId a, NodeId b) const {
  return down_links_.empty() || !down_links_.count(pair_key(a, b));
}

std::int64_t Topology::total_queue_drops() const {
  std::int64_t total = 0;
  for (const auto& n : nodes_)
    for (const auto& p : n->ports()) total += p->queue_drops();
  return total;
}

std::int64_t Topology::total_wire_drops() const {
  std::int64_t total = 0;
  for (const auto& n : nodes_)
    for (const auto& p : n->ports()) total += p->wire_drops;
  return total;
}

std::uint64_t Topology::total_events_coalesced() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_)
    for (const auto& p : n->ports()) total += p->events_coalesced;
  return total;
}

std::uint64_t Topology::total_flowlist_scan_ops() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_)
    for (const auto& p : n->ports())
      if (const auto* c = p->controller()) total += c->flow_scan_ops();
  return total;
}

}  // namespace pdq::net
