// Links: unidirectional (simplex) halves created in duplex pairs.
//
// A SimplexLink is pure wire: rate, propagation delay, and an optional
// random drop rate (used by the Fig 9 loss-resilience experiment). The
// transmit queue lives in the sending node's Port, not here.
#pragma once

#include <cstdint>

#include "net/types.h"
#include "sim/time.h"

namespace pdq::net {

struct Packet;
struct SimplexLink;

/// Per-link fault-injection hook (src/faults). Consulted once per packet
/// at transmit completion, after the legacy `drop_rate` Bernoulli draw —
/// the fault plane draws from its own salted RNG, so enabling it never
/// shifts the topology/workload random streams. A link with a non-null
/// hook takes the explicit tx-complete event chain (node.cc), exactly
/// like a `drop_rate > 0` link: per-packet decisions must happen in
/// event order.
struct LinkFaultModel {
  virtual ~LinkFaultModel() = default;
  /// True: the packet is lost on the wire (counted as a wire drop).
  virtual bool should_drop(const SimplexLink& link, const Packet& p) = 0;
};

struct SimplexLink {
  LinkId id = -1;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  double rate_bps = 0.0;
  sim::Time prop_delay = 0;
  /// Probability that a packet is lost on the wire (checked per packet at
  /// transmit completion, so the bandwidth is still consumed).
  double drop_rate = 0.0;
  /// Administrative state (Topology::set_link_state). Packets offered to
  /// a down link are dropped at the transmitter (counted as wire drops);
  /// routing skips down links. Both simplex halves flip together.
  bool up = true;
  /// Optional fault-injection hook (non-owning; faults::FaultPlane clears
  /// it on destruction). Null on every historical code path.
  LinkFaultModel* fault = nullptr;

  SimplexLink* reverse = nullptr;  // the paired opposite direction
};

}  // namespace pdq::net
