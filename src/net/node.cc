#include "net/node.h"

#include <cassert>

#include "net/topology.h"

namespace pdq::net {

void Port::set_controller(std::unique_ptr<LinkController> c) {
  controller_ = std::move(c);
  if (controller_) controller_->attach(*this);
}

Node::Node(Topology& topo, NodeId id, sim::Time processing_delay)
    : topo_(topo), id_(id), processing_delay_(processing_delay) {}

Port& Node::add_port(SimplexLink& out, std::int64_t buffer_bytes) {
  assert(out.from == id_);
  ports_.push_back(std::make_unique<Port>(*this, out, buffer_bytes));
  Port& p = *ports_.back();
  port_by_neighbor_[out.to] = &p;
  return p;
}

Port* Node::port_to(NodeId neighbor) {
  auto it = port_by_neighbor_.find(neighbor);
  return it == port_by_neighbor_.end() ? nullptr : it->second;
}

void Node::receive(PacketPtr p, SimplexLink* in) {
  assert(p->route()[static_cast<std::size_t>(p->hop)] == id_);

  // Reverse-direction packets update the paired forward port's controller:
  // this node is the upstream side of the link the ACK is reporting on.
  if (in != nullptr && is_reverse(p->type)) {
    if (Port* fwd = port_to(in->from); fwd && fwd->controller()) {
      fwd->controller()->on_reverse(*p);
    }
  }

  if (p->at_destination()) {
    deliver_local(std::move(p));
    return;
  }

  if (processing_delay_ > 0) {
    topo_.sim().schedule_in(processing_delay_,
                            [this, p = std::move(p)]() mutable {
                              dispatch(std::move(p));
                            });
  } else {
    dispatch(std::move(p));
  }
}

void Node::send(PacketPtr p) {
  assert(!p->route().empty() && p->route().front() == id_);
  p->hop = 0;
  dispatch(std::move(p));
}

void Node::dispatch(PacketPtr p) {
  const NodeId next = p->next_hop();
  assert(next != kInvalidNode && "packet has nowhere to go");
  Port* port = port_to(next);
  assert(port != nullptr && "route uses a non-existent link");
  transmit_out(*port, std::move(p));
}

void Node::receive_dispatch(PacketPtr p) {
  assert(p->route()[static_cast<std::size_t>(p->hop)] == id_);
  assert(!p->at_destination());
  dispatch(std::move(p));
}

void Node::settle_coalesced(Port& port, sim::Time now) {
  // A coalesced transmission has no tx-complete event; the busy marker is
  // cleared lazily once the wire has freed up. At the exact free-up
  // instant, clear only if the chain's tx-complete — whose tie-break key
  // (tx_started_, tx_seq_) was reserved at transmission start — would
  // already have executed before the event running right now; otherwise
  // the port must still count as busy for the rest of this instant (the
  // reserved resume event will do the clearing in chain position).
  if (!port.busy_ || !port.coalesced_tx_) return;
  if (now < port.busy_until_) return;
  if (now == port.busy_until_) {
    sim::Simulator& sim = port.owner().topo_.sim();
    const bool chain_txdone_already_ran =
        port.tx_started_ < sim.current_event_vtime() ||
        (port.tx_started_ == sim.current_event_vtime() &&
         port.tx_seq_ < sim.current_event_seq());
    if (!chain_txdone_already_ran) return;
  }
  port.busy_ = false;
  port.coalesced_tx_ = false;
}

void Node::transmit_out(Port& port, PacketPtr p) {
  if (!port.link().up) {
    // Administratively-down link (scenario timelines): the packet is
    // lost at the transmitter, before any controller sees it.
    ++port.wire_drops;
    return;
  }
  settle_coalesced(port, topo_.sim().now());
  if (is_forward(p->type) && port.controller()) {
    port.controller()->on_forward(*p);
  }
  const bool accepted = port.enqueue(std::move(p));
  if (port.queue_series) {
    port.queue_series->record(topo_.sim().now(),
                              static_cast<double>(port.queued_bytes()));
  }
  if (accepted && port.controller()) port.controller()->on_enqueue();
  if (!accepted) {
    // Attribute the admission drop to the currently executing event so
    // the sharded engine's stop truncation can reproduce the sequential
    // drop total exactly (no-op single-shard).
    topo_.sim().note_queue_drop();
    return;
  }
  if (!port.busy_) {
    start_tx(port);
  } else if (port.coalesced_tx_ && !port.resume_scheduled_) {
    // The in-flight packet has no tx-complete event to start us; wake the
    // transmitter when the wire frees up, tie-ordered exactly as the
    // chain's tx-complete (reserved at transmission start) would be.
    port.resume_scheduled_ = true;
    --port.events_coalesced;
    topo_.sim().schedule_at_reserved(port.busy_until_, port.tx_started_,
                                     port.tx_seq_,
                                     [this, &port] { resume_tx(port); });
  }
}

void Node::resume_tx(Port& port) {
  port.resume_scheduled_ = false;
  // This event *is* the stand-in for the chain's tx-complete: once the
  // wire is free, clear unconditionally (no tie-key comparison — the
  // chain event would be executing right now).
  if (port.busy_ && port.coalesced_tx_ &&
      topo_.sim().now() >= port.busy_until_) {
    port.busy_ = false;
    port.coalesced_tx_ = false;
  }
  if (!port.busy_) {
    start_tx(port);
  } else if (port.coalesced_tx_ && !port.queue_empty()) {
    // Re-busied (a same-instant push restarted the transmitter first);
    // chase the new free-up time for the still-queued packets.
    port.resume_scheduled_ = true;
    --port.events_coalesced;
    topo_.sim().schedule_at_reserved(port.busy_until_, port.tx_started_,
                                     port.tx_seq_,
                                     [this, &port] { resume_tx(port); });
  }
}

void Node::start_tx(Port& port) {
  if (port.queue_empty()) return;
  port.busy_ = true;
  PacketPtr p = port.dequeue();
  if (port.queue_series) {
    port.queue_series->record(topo_.sim().now(),
                              static_cast<double>(port.queued_bytes()));
  }
  const sim::Time tx = sim::transmission_time(p->size_bytes, port.link().rate_bps);

  if (port.link().drop_rate == 0.0 && port.link().fault == nullptr) {
    // Coalesced fast path (lossless link — no RNG draw, so the loss-check
    // event can be elided without perturbing the random stream): schedule
    // the next-hop arrival directly and clear the busy marker lazily.
    // Timestamps, FIFO order and meter/queue-series records are identical
    // to the processing -> serialization -> propagation event chain.
    const sim::Time done = topo_.sim().now() + tx;
    if (port.meter) port.meter->on_bytes(done, p->size_bytes);
    SimplexLink* link = &port.link();
    Node& dst = topo_.node(link->to);
    const sim::Time arrive = done + link->prop_delay;
    port.coalesced_tx_ = true;
    port.busy_until_ = done;
    port.tx_started_ = topo_.sim().now();
    // Reserve the tie-break position the chain's tx-complete event would
    // have held; the arrival below and any resume event inherit it. The
    // keeper pointer lets the sharded engine's barrier relabel the
    // reservation in place if the port stays idle across a window.
    port.tx_seq_ = topo_.sim().reserve_event_order(&port.tx_seq_);

    const auto& r = p->route();
    const bool final_hop = static_cast<std::size_t>(p->hop) + 2 >= r.size();
    bool arrival_work = final_hop;
    if (!arrival_work && is_reverse(p->type)) {
      // Reverse packets must hit the paired forward port's controller at
      // the arrival instant (Algorithm 3 is time-sensitive) — unless that
      // controller declares its reverse pass a no-op.
      Port* paired = dst.port_to(id_);
      arrival_work =
          paired && paired->controller() && paired->controller()->reverse_hook();
    }
    if (arrival_work) {
      ++port.events_coalesced;  // saved the tx-complete event
      // As-if vtime `done`: the chain's tx-complete would have scheduled
      // this arrival at serialization end, so it must tie-break as such.
      // The arrival mutates the downstream node — target its shard.
      sim::Simulator::ScopedShardTarget target(link->to);
      topo_.sim().schedule_at_reserved(
          arrive, done, port.tx_seq_,
          [&dst, link, p = std::move(p)]() mutable {
            ++p->hop;
            dst.receive(std::move(p), link);
          });
    } else {
      // Transit hop with no arrival-instant work: fold this node's
      // tx-complete, the arrival and the downstream processing event into
      // one dispatch event at arrival + processing time. With a
      // processing delay the chain's arrival event would have scheduled
      // the dispatch at the arrival instant (vtime `arrive`); without
      // one, dispatch happens inside the arrival event itself, which the
      // tx-complete scheduled at `done`.
      const sim::Time processing = dst.processing_delay();
      port.events_coalesced += processing > 0 ? 2 : 1;
      sim::Simulator::ScopedShardTarget target(link->to);
      topo_.sim().schedule_at_reserved(arrive + processing,
                                       processing > 0 ? arrive : done,
                                       port.tx_seq_,
                                       [&dst, p = std::move(p)]() mutable {
                                         ++p->hop;
                                         dst.receive_dispatch(std::move(p));
                                       });
    }
    if (!port.queue_empty() && !port.resume_scheduled_) {
      port.resume_scheduled_ = true;
      --port.events_coalesced;
      topo_.sim().schedule_at_reserved(port.busy_until_, port.tx_started_,
                                       port.tx_seq_,
                                       [this, &port] { resume_tx(port); });
    }
    return;
  }

  // Lossy link: keep the explicit tx-complete event — the loss draw must
  // happen there, in event order, to leave the RNG stream untouched. A
  // link with an installed fault model rides the same chain: its
  // per-packet decisions (from the fault plane's own salted RNG) also
  // happen at tx completion, after the legacy drop_rate draw.
  port.coalesced_tx_ = false;
  topo_.sim().schedule_in(tx, [this, &port, p = std::move(p)]() mutable {
    if (port.meter) port.meter->on_bytes(topo_.sim().now(), p->size_bytes);

    bool lost = port.link().drop_rate > 0.0 &&
                topo_.rng().bernoulli(port.link().drop_rate);
    if (!lost && port.link().fault != nullptr) {
      lost = port.link().fault->should_drop(port.link(), *p);
    }
    if (lost) {
      ++port.wire_drops;
    } else {
      SimplexLink* link = &port.link();
      Node& dst = topo_.node(link->to);
      topo_.sim().schedule_in(link->prop_delay,
                              [&dst, link, p = std::move(p)]() mutable {
                                ++p->hop;
                                dst.receive(std::move(p), link);
                              });
    }
    port.busy_ = false;
    start_tx(port);
  });
}

void Switch::deliver_local(PacketPtr p) {
  (void)p;
  assert(false && "switches are never packet destinations");
}

double Host::nic_rate_bps() const {
  assert(!ports().empty());
  return ports().front()->link().rate_bps;
}

void Host::deliver_local(PacketPtr p) {
  // Reverse packets belong to the local sender agent, forward packets to
  // the local receiver agent. Packets for unknown flows (e.g. a retransmit
  // arriving after completion) are dropped silently.
  const auto& table = is_reverse(p->type) ? senders_ : receivers_;
  auto it = table.find(p->flow);
  if (it != table.end()) it->second->on_packet(p);
}

}  // namespace pdq::net
