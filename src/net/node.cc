#include "net/node.h"

#include <cassert>

#include "net/topology.h"

namespace pdq::net {

void Port::set_controller(std::unique_ptr<LinkController> c) {
  controller_ = std::move(c);
  if (controller_) controller_->attach(*this);
}

Node::Node(Topology& topo, NodeId id, sim::Time processing_delay)
    : topo_(topo), id_(id), processing_delay_(processing_delay) {}

Port& Node::add_port(SimplexLink& out, std::int64_t buffer_bytes) {
  assert(out.from == id_);
  ports_.push_back(std::make_unique<Port>(*this, out, buffer_bytes));
  Port& p = *ports_.back();
  port_by_neighbor_[out.to] = &p;
  return p;
}

Port* Node::port_to(NodeId neighbor) {
  auto it = port_by_neighbor_.find(neighbor);
  return it == port_by_neighbor_.end() ? nullptr : it->second;
}

void Node::receive(PacketPtr p, SimplexLink* in) {
  assert(p->route()[static_cast<std::size_t>(p->hop)] == id_);

  // Reverse-direction packets update the paired forward port's controller:
  // this node is the upstream side of the link the ACK is reporting on.
  if (in != nullptr && is_reverse(p->type)) {
    if (Port* fwd = port_to(in->from); fwd && fwd->controller()) {
      fwd->controller()->on_reverse(*p);
    }
  }

  if (p->at_destination()) {
    deliver_local(std::move(p));
    return;
  }

  if (processing_delay_ > 0) {
    topo_.sim().schedule_in(processing_delay_,
                            [this, p = std::move(p)]() mutable {
                              dispatch(std::move(p));
                            });
  } else {
    dispatch(std::move(p));
  }
}

void Node::send(PacketPtr p) {
  assert(!p->route().empty() && p->route().front() == id_);
  p->hop = 0;
  dispatch(std::move(p));
}

void Node::dispatch(PacketPtr p) {
  const NodeId next = p->next_hop();
  assert(next != kInvalidNode && "packet has nowhere to go");
  Port* port = port_to(next);
  assert(port != nullptr && "route uses a non-existent link");
  transmit_out(*port, std::move(p));
}

void Node::transmit_out(Port& port, PacketPtr p) {
  if (is_forward(p->type) && port.controller()) {
    port.controller()->on_forward(*p);
  }
  const bool accepted = port.queue().push(std::move(p));
  if (port.queue_series) {
    port.queue_series->record(topo_.sim().now(),
                              static_cast<double>(port.queue().bytes()));
  }
  if (accepted && !port.busy_) start_tx(port);
}

void Node::start_tx(Port& port) {
  if (port.queue().empty()) return;
  port.busy_ = true;
  PacketPtr p = port.queue().pop();
  if (port.queue_series) {
    port.queue_series->record(topo_.sim().now(),
                              static_cast<double>(port.queue().bytes()));
  }
  const sim::Time tx = sim::transmission_time(p->size_bytes, port.link().rate_bps);
  topo_.sim().schedule_in(tx, [this, &port, p = std::move(p)]() mutable {
    if (port.meter) port.meter->on_bytes(topo_.sim().now(), p->size_bytes);

    const bool lost = port.link().drop_rate > 0.0 &&
                      topo_.rng().bernoulli(port.link().drop_rate);
    if (lost) {
      ++port.wire_drops;
    } else {
      SimplexLink* link = &port.link();
      Node& dst = topo_.node(link->to);
      topo_.sim().schedule_in(link->prop_delay,
                              [&dst, link, p = std::move(p)]() mutable {
                                ++p->hop;
                                dst.receive(std::move(p), link);
                              });
    }
    port.busy_ = false;
    start_tx(port);
  });
}

void Switch::deliver_local(PacketPtr p) {
  (void)p;
  assert(false && "switches are never packet destinations");
}

double Host::nic_rate_bps() const {
  assert(!ports().empty());
  return ports().front()->link().rate_bps;
}

void Host::deliver_local(PacketPtr p) {
  // Reverse packets belong to the local sender agent, forward packets to
  // the local receiver agent. Packets for unknown flows (e.g. a retransmit
  // arriving after completion) are dropped silently.
  const auto& table = is_reverse(p->type) ? senders_ : receivers_;
  auto it = table.find(p->flow);
  if (it != table.end()) it->second->on_packet(p);
}

}  // namespace pdq::net
