#include "net/paced_sender.h"

#include <algorithm>
#include <cassert>

namespace pdq::net {

namespace {
constexpr sim::Time kMinRto = 2 * sim::kMillisecond;
constexpr sim::Time kInitialRtt = 200 * sim::kMicrosecond;
constexpr sim::Time kSynRto = 10 * sim::kMillisecond;
constexpr std::int8_t kDupAckThreshold = 3;
// Loss hardening: TERM retransmit backoff doubles from the RTO up to
// this ceiling, for at most this many retries (a persistently dead
// reverse path must not keep an agent alive forever).
constexpr sim::Time kTermBackoffCap = 100 * sim::kMillisecond;
constexpr int kMaxTermRetries = 8;
}  // namespace

PacedSender::PacedSender(AgentContext ctx)
    : ctx_(std::move(ctx)), rtt_(kInitialRtt) {
  assert(ctx_.spec.size_bytes > 0);
  result_.spec = ctx_.spec;
  num_packets_ =
      (ctx_.spec.size_bytes + kMaxPayloadBytes - 1) / kMaxPayloadBytes;
  last_payload_ = static_cast<std::int32_t>(
      ctx_.spec.size_bytes - (num_packets_ - 1) * kMaxPayloadBytes);
  acked_.assign(static_cast<std::size_t>(num_packets_), false);
  sent_at_.assign(static_cast<std::size_t>(num_packets_), sim::kTimeInfinity);
  payload_.assign(static_cast<std::size_t>(num_packets_), kMaxPayloadBytes);
  payload_.back() = last_payload_;
  acks_after_.assign(static_cast<std::size_t>(num_packets_), 0);
}

void PacedSender::start() {
  // A timeline link failure may terminate a flow before its scheduled
  // start event fires; starting then would emit packets for a finished
  // flow.
  if (finished()) return;
  assert(!started_);
  started_ = true;
  send_syn();
  syn_pending_ = true;
  retry_event_ = sim().schedule_in(kSynRto, [this] {
    syn_pending_ = false;
    syn_retry();
  });
  on_start();
}

void PacedSender::syn_retry() {
  if (finished() || got_reverse_) return;
  send_syn();
  syn_pending_ = true;
  retry_event_ = sim().schedule_in(kSynRto, [this] {
    syn_pending_ = false;
    syn_retry();
  });
}

void PacedSender::quiesce() {
  // Cancel only events known pending: a default EventId is (gen 0,
  // slot 0), a live id in any fresh simulator.
  if (syn_pending_) {
    sim().cancel(retry_event_);
    syn_pending_ = false;
  }
  if (pace_pending_) {
    sim().cancel(pace_event_);
    pace_pending_ = false;
  }
  if (term_retry_pending_) {
    sim().cancel(retry_event_);
    term_retry_pending_ = false;
  }
}

std::size_t PacedSender::footprint_bytes() const {
  return sizeof(*this) + payload_.capacity() * sizeof(std::int32_t) +
         acked_.capacity() / 8 + sent_at_.capacity() * sizeof(sim::Time) +
         acks_after_.capacity() * sizeof(std::int8_t);
}

sim::Time PacedSender::rto() const {
  const sim::Time base = rtt_valid_ ? 4 * rtt_ : 10 * sim::kMillisecond;
  return std::max(base, kMinRto);
}

void PacedSender::reroute(RouteRef route) {
  if (finished()) return;
  if (route == nullptr) {
    // No path left to the receiver: give up. The TERM control packet is
    // offered to the old route and dropped at the down link.
    complete(FlowOutcome::kTerminated);
    return;
  }
  ctx_.route = std::move(route);
}

std::int64_t PacedSender::bytes_unacked() const {
  return ctx_.spec.size_bytes - result_.bytes_acked;
}

std::int64_t PacedSender::remaining_bytes() const { return bytes_unacked(); }

PacketPtr PacedSender::make_forward(PacketType type) {
  PacketPtr p = make_packet();
  p->flow = ctx_.spec.id;
  p->type = type;
  p->src = ctx_.spec.src;
  p->dst = ctx_.spec.dst;
  p->path = ctx_.route;
  p->reversed = false;
  p->hop = 0;
  p->sent_time = now();
  p->size_bytes = kControlBytes;
  return p;
}

void PacedSender::send_syn() { send_control(PacketType::kSyn); }

void PacedSender::send_control(PacketType type) {
  auto p = make_forward(type);
  decorate(*p);
  ++result_.packets_sent;
  ctx_.local->send(std::move(p));
}

void PacedSender::set_rate(double bps) {
  const double old = rate_bps_;
  rate_bps_ = bps;
  if (finished() || !started_) return;
  if (bps <= 0.0) {
    if (pace_pending_) {
      sim().cancel(pace_event_);
      pace_pending_ = false;
    }
    return;
  }
  if (pace_pending_ && old == bps) return;
  // Re-pace the pending transmission at the new rate: a large rate jump
  // must not wait out a gap computed at the old (possibly tiny) rate.
  kick_pacer();
}

void PacedSender::kick_pacer() {
  if (finished() || !started_ || rate_bps_ <= 0.0) return;
  if (pace_pending_) {
    sim().cancel(pace_event_);
    pace_pending_ = false;
  }
  const sim::Time gap = sim::transmission_time(kMtuBytes, rate_bps_);
  const sim::Time at = std::max(now(), last_data_sent_ + gap);
  pace_pending_ = true;
  pace_event_ = sim().schedule_at(at, [this] {
    pace_pending_ = false;
    pace_next();
  });
}

int PacedSender::pick_packet_to_send() {
  // Prefer the lowest-index expired unacked packet; otherwise the next
  // never-sent packet.
  const sim::Time deadline = now() - rto();
  for (std::int64_t i = 0; i < next_new_; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (!acked_[idx] && sent_at_[idx] != sim::kTimeInfinity &&
        sent_at_[idx] <= deadline) {
      return static_cast<int>(i);
    }
  }
  if (next_new_ < num_packets_) return static_cast<int>(next_new_++);
  return -1;
}

void PacedSender::pace_next() {
  if (finished() || rate_bps_ <= 0.0) return;
  const int idx = pick_packet_to_send();
  if (idx >= 0) {
    send_data_packet(static_cast<std::size_t>(idx));
    const auto& sent = sent_at_[static_cast<std::size_t>(idx)];
    (void)sent;
    // Pace the next transmission one serialization time later.
    const std::int32_t on_wire =
        payload_[static_cast<std::size_t>(idx)] + kHeaderBytes;
    const sim::Time gap = sim::transmission_time(on_wire, rate_bps_);
    pace_pending_ = true;
    pace_event_ = sim().schedule_in(gap, [this] {
      pace_pending_ = false;
      pace_next();
    });
    return;
  }
  // Everything is in flight: wake up at the earliest possible expiry.
  sim::Time earliest = sim::kTimeInfinity;
  for (std::size_t i = 0; i < acked_.size(); ++i) {
    if (!acked_[i] && sent_at_[i] != sim::kTimeInfinity)
      earliest = std::min(earliest, sent_at_[i] + rto());
  }
  if (earliest == sim::kTimeInfinity) return;  // all acked; complete() imminent
  pace_pending_ = true;
  pace_event_ =
      sim().schedule_in(std::max<sim::Time>(earliest - now(), 0), [this] {
        pace_pending_ = false;
        pace_next();
      });
}

void PacedSender::send_data_packet(std::size_t idx) {
  auto p = make_forward(PacketType::kData);
  p->seq = static_cast<std::int64_t>(idx) * kMaxPayloadBytes;
  p->payload = payload_[idx];
  p->size_bytes = p->payload + kHeaderBytes;
  decorate(*p);
  if (sent_at_[idx] != sim::kTimeInfinity) ++result_.retransmissions;
  sent_at_[idx] = now();
  acks_after_[idx] = 0;
  last_data_sent_ = now();
  ++result_.packets_sent;
  ctx_.local->send(std::move(p));
}

void PacedSender::update_rtt(const Packet& p) {
  // sent_time is echoed per packet, so the sample is valid even for
  // retransmitted segments.
  const sim::Time sample = now() - p.sent_time;
  if (sample <= 0) return;
  if (!rtt_valid_) {
    rtt_ = sample;
    rtt_valid_ = true;
  } else {
    rtt_ = (7 * rtt_ + sample) / 8;
  }
}

void PacedSender::record_ack(const Packet& p) {
  if (p.type != PacketType::kAck) return;
  const auto idx = static_cast<std::size_t>(p.seq / kMaxPayloadBytes);
  if (idx >= acked_.size() || acked_[idx]) return;
  acked_[idx] = true;
  ++acked_count_;
  result_.bytes_acked += payload_[idx];
  // Fast retransmit: an unacked packet overtaken by three later acks is
  // considered lost (forced to expiry so the pacer resends it next).
  bool forced = false;
  for (std::size_t j = 0; j < idx; ++j) {
    if (acked_[j] || sent_at_[j] == sim::kTimeInfinity) continue;
    if (acks_after_[j] < kDupAckThreshold) {
      if (++acks_after_[j] == kDupAckThreshold) {
        sent_at_[j] = std::min(sent_at_[j], now() - rto());
        forced = true;
      }
    }
  }
  if (forced) kick_pacer();
}

void PacedSender::on_packet(const PacketPtr& p) {
  if (finished()) {
    // Loss hardening keeps the agent alive past completion to confirm
    // the TERM handshake; the TermAck cancels the retry timer.
    if (p->type == PacketType::kTermAck && !term_acked_) {
      term_acked_ = true;
      if (term_retry_pending_) {
        sim().cancel(retry_event_);
        term_retry_pending_ = false;
      }
    }
    return;
  }
  got_reverse_ = true;
  update_rtt(*p);
  record_ack(*p);
  on_reverse(p);
  if (!finished() && acked_count_ == num_packets_) {
    complete(FlowOutcome::kCompleted);
  }
}

std::int64_t PacedSender::unsent_tail_bytes() const {
  std::int64_t total = 0;
  for (std::int64_t i = next_new_; i < num_packets_; ++i)
    total += payload_[static_cast<std::size_t>(i)];
  return total;
}

std::int64_t PacedSender::shrink_tail(std::int64_t bytes) {
  std::int64_t removed = 0;
  while (bytes > removed && num_packets_ > next_new_) {
    removed += payload_.back();
    payload_.pop_back();
    acked_.pop_back();
    sent_at_.pop_back();
    acks_after_.pop_back();
    --num_packets_;
  }
  if (removed == 0) return 0;
  last_payload_ = payload_.empty() ? 0 : payload_.back();
  ctx_.spec.size_bytes -= removed;
  result_.spec.size_bytes = ctx_.spec.size_bytes;
  // Everything left may already be acknowledged.
  if (!finished() && started_ && acked_count_ == num_packets_) {
    complete(FlowOutcome::kCompleted);
  }
  return removed;
}

bool PacedSender::extend_tail(std::int64_t bytes) {
  if (finished() || bytes <= 0) return false;
  // Top up the final packet if it is partial and not yet on the wire.
  if (num_packets_ > next_new_ && payload_.back() < kMaxPayloadBytes) {
    const std::int32_t add = static_cast<std::int32_t>(std::min<std::int64_t>(
        kMaxPayloadBytes - payload_.back(), bytes));
    payload_.back() += add;
    bytes -= add;
  }
  while (bytes > 0) {
    const auto add = static_cast<std::int32_t>(
        std::min<std::int64_t>(kMaxPayloadBytes, bytes));
    payload_.push_back(add);
    acked_.push_back(false);
    sent_at_.push_back(sim::kTimeInfinity);
    acks_after_.push_back(0);
    ++num_packets_;
    bytes -= add;
  }
  last_payload_ = payload_.back();
  std::int64_t total = 0;
  for (auto pb : payload_) total += pb;
  ctx_.spec.size_bytes = total;
  result_.spec.size_bytes = total;
  // Wake the pacer: it may be sleeping on an RTO-scale retry.
  kick_pacer();
  return true;
}

void PacedSender::complete(FlowOutcome outcome) {
  assert(outcome != FlowOutcome::kPending);
  if (finished()) return;
  result_.outcome = outcome;
  result_.finish_time = now();
  if (pace_pending_) {
    sim().cancel(pace_event_);
    pace_pending_ = false;
  }
  // rate_bps_ deliberately keeps its final granted value: every
  // transmission path below is finished()-guarded, and the hybrid
  // backend reads it as the fluid-handoff seed (handoff_rate_bps).
  // A never-started flow (terminated by a pre-start link failure) has
  // no network state to release: no TERM.
  if (started_ && send_term_on_complete()) {
    send_control(PacketType::kTerm);
    // Loss hardening: a lost TERM (or TermAck) must not strand switch
    // state — retransmit on a capped-backoff timer until acknowledged.
    // Gated on the flag because the timer schedules events, which would
    // shift sequence numbers on the byte-identical golden path.
    if (ctx_.topo->loss_hardening()) arm_term_retry();
  }
  if (ctx_.on_done) ctx_.on_done(result_);
}

void PacedSender::arm_term_retry() {
  // The timer slot is shared with the SYN retry; a hardened flow small
  // enough to finish inside the SYN RTO still has that timer pending.
  if (syn_pending_) {
    sim().cancel(retry_event_);
    syn_pending_ = false;
  }
  const int shift = std::min<int>(term_retries_, 6);
  const sim::Time backoff =
      std::min<sim::Time>(rto() << shift, kTermBackoffCap);
  term_retry_pending_ = true;
  retry_event_ = sim().schedule_in(backoff, [this] {
    term_retry_pending_ = false;
    term_retry();
  });
}

void PacedSender::term_retry() {
  if (term_acked_ || term_retries_ >= kMaxTermRetries) return;
  ++term_retries_;
  send_control(PacketType::kTerm);
  arm_term_retry();
}

void EchoReceiver::on_packet(const PacketPtr& p) {
  PacketType reply_type;
  switch (p->type) {
    case PacketType::kSyn:
      reply_type = PacketType::kSynAck;
      break;
    case PacketType::kData:
      bytes_received_ += p->payload;
      reply_type = PacketType::kAck;
      break;
    case PacketType::kProbe:
      reply_type = PacketType::kProbeAck;
      break;
    case PacketType::kTerm:
      reply_type = PacketType::kTermAck;
      break;
    default:
      return;  // reverse packets are not for the receiver
  }
  auto reply = make_reply(*p, reply_type);
  decorate_reply(*reply, *p);
  ctx_.local->send(std::move(reply));
  if (p->type == PacketType::kTerm && !saw_term_) {
    // The TermAck is on the wire; nothing further arrives on this flow.
    // Notify the harness (streaming mode retires the receiver here).
    saw_term_ = true;
    if (ctx_.on_done) ctx_.on_done(FlowResult{});
  }
}

void EchoReceiver::decorate_reply(Packet& reply, const Packet& data) {
  (void)reply;
  (void)data;
}

}  // namespace pdq::net
