// The network container: nodes, links, routing.
//
// Paths are computed on demand (BFS shortest-path DAG, then bounded
// enumeration of equal-cost paths) and cached per (src, dst). ECMP selects
// among the cached paths by hashing the flow id, which matches the paper's
// flow-level ECMP assumption.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/link.h"
#include "net/node.h"
#include "net/route.h"
#include "net/types.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace pdq::net {

/// Default parameters from the paper's evaluation setup (Fig 2).
struct LinkDefaults {
  double rate_bps = 1e9;                         // 1 Gbps
  sim::Time prop_delay = sim::from_micros(0.1);  // 0.1 us per hop
  std::int64_t buffer_bytes = 4 << 20;           // 4 MByte switch buffer
};

inline constexpr sim::Time kDefaultProcessingDelay = 25 * sim::kMicrosecond;

class Topology {
 public:
  explicit Topology(sim::Simulator& sim, std::uint64_t seed = 1)
      : sim_(sim), rng_(seed) {}

  NodeId add_host(sim::Time processing_delay = 0);
  NodeId add_switch(sim::Time processing_delay = kDefaultProcessingDelay);

  /// Adds a duplex link (two simplex halves) between a and b.
  void add_duplex_link(NodeId a, NodeId b, const LinkDefaults& d);
  void add_duplex_link(NodeId a, NodeId b) {
    add_duplex_link(a, b, LinkDefaults{});
  }

  Node& node(NodeId id) { return *nodes_.at(static_cast<std::size_t>(id)); }
  Host& host(NodeId id);
  std::size_t num_nodes() const { return nodes_.size(); }
  const std::vector<NodeId>& host_ids() const { return host_ids_; }
  const std::vector<NodeId>& switch_ids() const { return switch_ids_; }
  std::vector<std::unique_ptr<SimplexLink>>& links() { return links_; }

  bool is_host(NodeId id) const;

  sim::Simulator& sim() { return sim_; }
  sim::Rng& rng() { return rng_; }

  /// Run-scoped loss-hardening switch (set by the harness when a fault
  /// plane with FaultSpec::harden_protocols is armed): senders
  /// retransmit TERM with timeout + capped backoff instead of
  /// fire-and-forget. Lives here rather than per-agent so agent sizeof
  /// (the peak_flow_bytes counter) stays at the golden baseline.
  bool loss_hardening() const { return loss_hardening_; }
  void set_loss_hardening(bool on) { loss_hardening_ = on; }

  /// All equal-cost shortest node paths from src to dst, capped at
  /// kMaxEcmpPaths, in a deterministic order. Cached.
  const std::vector<std::vector<NodeId>>& shortest_paths(NodeId src,
                                                         NodeId dst);

  /// Deterministic ECMP choice among shortest paths; `salt` lets M-PDQ
  /// subflows pick distinct paths.
  std::vector<NodeId> ecmp_path(FlowId flow, NodeId src, NodeId dst,
                                std::uint64_t salt = 0);

  /// Same ECMP choice as ecmp_path(), but returns the shared flyweight
  /// route (forward + reverse) cached per (src, dst, path index) — the
  /// per-flow route cost is one shared_ptr copy instead of a vector.
  /// Cached entries are invalidated when a link is added.
  RouteRef ecmp_route(FlowId flow, NodeId src, NodeId dst,
                      std::uint64_t salt = 0);

  /// Up to `k` link-disjoint paths (shortest first, greedy). In BCube this
  /// recovers the parallel paths through the server's multiple NICs that
  /// M-PDQ stripes subflows across. Cached.
  const std::vector<std::vector<NodeId>>& disjoint_paths(NodeId src,
                                                         NodeId dst,
                                                         int k = 8);

  /// Installs a fresh controller on every output port of every node.
  /// The factory may return nullptr to leave a port uncontrolled.
  template <typename Factory>
  void install_controllers(Factory&& make) {
    for (auto& n : nodes_) {
      // Controllers schedule setup events (e.g. rate ticks) that must
      // land on the owning node's shard under sharded execution.
      sim::Simulator::ScopedShardTarget guard(n->id());
      for (auto& port : n->ports()) {
        auto c = make(*port);
        port->set_controller(std::move(c));
      }
    }
  }

  /// Installs a multi-queue discipline (net/multi_queue.h) on every
  /// output port of every node; the factory may return nullptr to leave
  /// a port on its single drop-tail FIFO. See also
  /// net::install_multi_queue() for the switches-only convenience.
  template <typename Factory>
  void install_multi_queues(Factory&& make) {
    for (auto& n : nodes_) {
      sim::Simulator::ScopedShardTarget guard(n->id());
      for (auto& port : n->ports()) {
        auto mq = make(*port);
        if (mq) port->set_multi_queue(std::move(mq));
      }
    }
  }

  /// Finds the port owning the link a->b (for instrumentation).
  Port* port_on_link(NodeId a, NodeId b) { return node(a).port_to(b); }

  /// Sets a random loss rate on both directions of the a<->b link.
  void set_link_drop_rate(NodeId a, NodeId b, double rate);

  /// Administratively brings both directions of the a<->b link down or
  /// up (scenario timelines: failures and recoveries). Reuses the
  /// add_duplex_link cache-invalidation path — shortest-path, route and
  /// disjoint-path caches are cleared, so subsequent lookups route
  /// around a down link (routes already held by in-flight packets stay
  /// valid; they are immutable flyweights). Bringing a link down also
  /// flushes both port queues (dropped packets count as wire drops);
  /// packets already serialized onto the wire are still delivered.
  void set_link_state(NodeId a, NodeId b, bool up);

  /// False while the a<->b link is administratively down.
  bool link_is_up(NodeId a, NodeId b) const;

  /// Monotonic counter bumped whenever derived path products go stale
  /// (add_duplex_link, set_link_state). External caches keyed on the
  /// topology — e.g. the flow-level simulator's capacities and resolved
  /// ECMP paths — compare against it to know when to recompute.
  std::uint64_t version() const { return version_; }

  std::int64_t total_queue_drops() const;
  std::int64_t total_wire_drops() const;
  /// Net events saved by transmit coalescing (node.cc) across all ports.
  std::uint64_t total_events_coalesced() const;
  /// Flow-state entries visited by controller hot paths (see
  /// LinkController::flow_scan_ops) across all ports.
  std::uint64_t total_flowlist_scan_ops() const;

  static constexpr std::size_t kMaxEcmpPaths = 32;

 private:
  std::vector<std::vector<NodeId>> compute_shortest_paths(NodeId src,
                                                          NodeId dst) const;
  /// Cache lookup bodies; callers hold route_mu_.
  const std::vector<std::vector<NodeId>>& shortest_paths_unlocked(NodeId src,
                                                                  NodeId dst);

  sim::Simulator& sim_;
  sim::Rng rng_;
  bool loss_hardening_ = false;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<SimplexLink>> links_;
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<NodeId> host_ids_;
  std::vector<NodeId> switch_ids_;
  std::vector<bool> is_host_;
  /// pair_key(a, b) for every administratively-down link, both
  /// directions. Empty (the overwhelmingly common case) short-circuits
  /// every routing-time check.
  std::unordered_set<std::uint64_t> down_links_;
  std::uint64_t version_ = 0;
  /// Serializes lazy path/route/disjoint cache fills: shard workers may
  /// route concurrently in-run (M-PDQ subflow rebalance). References
  /// returned to callers stay valid — unordered_map never invalidates
  /// element references on insert, and cache clears happen only in
  /// topology mutations, which sharded runs exclude. Uncontended (and
  /// cheap) in single-shard runs.
  std::mutex route_mu_;
  std::unordered_map<std::uint64_t, std::vector<std::vector<NodeId>>>
      path_cache_;
  std::unordered_map<std::uint64_t, std::vector<std::vector<NodeId>>>
      disjoint_cache_;
  /// Flyweight RoutePairs, parallel to shortest_paths(src, dst); built
  /// lazily per chosen path index.
  std::unordered_map<std::uint64_t, std::vector<RouteRef>> route_cache_;
};

}  // namespace pdq::net
