#include "net/packet_pool.h"

namespace pdq::net {

namespace {
/// The thread's current pool: the per-thread static one unless a
/// ScopedPool has swapped in a caller-owned override.
thread_local PacketPool* t_current_pool = nullptr;
}  // namespace

PacketPool& PacketPool::local() {
  if (t_current_pool == nullptr) {
    thread_local PacketPool pool;
    t_current_pool = &pool;
  }
  return *t_current_pool;
}

PacketPool::ScopedPool::ScopedPool(PacketPool& pool)
    : previous_(t_current_pool) {
  t_current_pool = &pool;
}

PacketPool::ScopedPool::~ScopedPool() { t_current_pool = previous_; }

PacketPtr make_packet() { return PacketPool::local().acquire(); }

void PacketPtr::release() {
  if (p_ == nullptr) return;
  if (--p_->hook_.refs == 0) {
    if (p_->hook_.origin != nullptr) {
      p_->hook_.origin->recycle(p_);
    } else {
      delete p_;
    }
  }
  p_ = nullptr;
}

}  // namespace pdq::net
