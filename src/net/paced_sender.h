// Rate-paced sender scaffolding shared by the explicit-rate protocols
// (PDQ, RCP, D3).
//
// Handles packetization, pacing at the protocol-provided rate, selective
// repeat (per-packet acks + retransmit timeout), RTT estimation, and flow
// completion bookkeeping. Protocol subclasses fill in header handling via
// the virtual hooks.
#pragma once

#include <functional>
#include <vector>

#include "net/flow.h"
#include "net/node.h"
#include "net/packet.h"
#include "net/topology.h"
#include "sim/time.h"

namespace pdq::net {

/// Everything a transport endpoint needs to know about its flow.
struct AgentContext {
  Topology* topo = nullptr;
  Host* local = nullptr;
  FlowSpec spec;
  RouteRef route;  // shared forward+reverse path (sender -> receiver)
  std::function<void(const FlowResult&)> on_done;
};

class PacedSender : public Agent {
 public:
  explicit PacedSender(AgentContext ctx);

  void start() override;
  void on_packet(const PacketPtr& p) override;
  /// Adopts the new route for all subsequent sends (retransmissions
  /// included); a null route terminates the flow (kTerminated).
  void reroute(RouteRef route) override;

  const FlowResult& result() const { return result_; }
  const FlowResult* flow_result() const override { return &result_; }
  double rate_bps() const { return rate_bps_; }

  // Hybrid handoff. complete() leaves rate_bps_ at its final granted
  // value (every post-completion path is finished()-guarded), so the
  // harness can read the handoff rate with no extra state.
  double handoff_rate_bps() const override { return rate_bps_; }
  /// Applies immediately (call after start()): the tail segment resumes
  /// at the fluid equilibrium rate unless the protocol granted one
  /// during on_start().
  void seed_rate(double bps) override {
    if (started_ && !finished() && rate_bps_ <= 0.0 && bps > 0.0)
      set_rate(bps);
  }
  sim::Time rtt_estimate() const { return rtt_; }
  std::int64_t bytes_unacked() const;
  std::int64_t remaining_bytes() const;
  bool finished() const { return result_.outcome != FlowOutcome::kPending; }

  /// Expected remaining transmission time at `rate` (paper's T_S notion,
  /// computed against the given reference rate).
  sim::Time expected_tx_time(double rate) const {
    return sim::transmission_time(remaining_bytes(), rate);
  }

  // --- dynamic resizing (M-PDQ load shifting) ---

  // --- retirement (streaming-metrics mode) ---
  /// A paced sender is safe to destroy once its flow is finished: the
  /// receiver replies along in-flight packets' own routes and the host
  /// drops deliveries for detached flows. Under loss hardening the
  /// sender additionally lives until its TERM is acknowledged (or the
  /// retry budget runs out), so a lost TERM still gets retransmitted.
  bool retirable() const override { return finished() && !term_retry_pending_; }
  void quiesce() override;
  std::size_t footprint_bytes() const override;

  /// Bytes not yet handed to the network (never-sent tail packets).
  std::int64_t unsent_tail_bytes() const;
  /// Removes up to `bytes` from the unsent tail (whole packets); returns
  /// the amount actually removed. May complete the flow if everything
  /// still outstanding was already acknowledged.
  std::int64_t shrink_tail(std::int64_t bytes);
  /// Appends `bytes` to the flow (no-op if already finished; returns
  /// false in that case).
  bool extend_tail(std::int64_t bytes);

 protected:
  /// Called once at flow start, after the SYN is sent.
  virtual void on_start() {}
  /// Fills protocol headers on an outgoing forward packet.
  virtual void decorate(Packet& p) = 0;
  /// Protocol reaction to any reverse packet (rate update etc.). The base
  /// class has already recorded ack bookkeeping and RTT.
  virtual void on_reverse(const PacketPtr& p) = 0;
  /// Hook invoked just before completing; return false to suppress the
  /// TERM packet.
  virtual bool send_term_on_complete() { return true; }

  /// Subclasses drive the pace with this; 0 stops data transmission.
  void set_rate(double bps);

  void send_syn();
  void send_control(PacketType type);
  /// Finishes the flow: kCompleted or kTerminated.
  void complete(FlowOutcome outcome);

  sim::Simulator& sim() { return ctx_.topo->sim(); }
  sim::Time now() { return sim().now(); }
  const AgentContext& ctx() const { return ctx_; }
  bool started() const { return started_; }

  PacketPtr make_forward(PacketType type);

  /// Retransmission timeout: max(k x RTT, floor).
  sim::Time rto() const;

  double nic_rate_bps() const { return ctx_.local->nic_rate_bps(); }

 private:
  void pace_next();
  void send_data_packet(std::size_t idx);
  int pick_packet_to_send();
  void record_ack(const Packet& p);
  void update_rtt(const Packet& p);
  void syn_retry();
  /// (Re)schedules the next pace event at the earliest legal send time.
  void kick_pacer();
  /// Loss hardening: schedules the next TERM retransmit (doubling
  /// backoff from the RTO, capped) until the TermAck arrives or the
  /// retry budget is spent.
  void arm_term_retry();
  void term_retry();

  AgentContext ctx_;
  FlowResult result_;

  std::int64_t num_packets_ = 0;
  std::int32_t last_payload_ = 0;
  std::vector<std::int32_t> payload_;  // per-packet payload bytes
  std::vector<bool> acked_;
  std::vector<sim::Time> sent_at_;     // kTimeInfinity = never sent
  std::vector<std::int8_t> acks_after_;  // higher-seq acks since send
  std::int64_t next_new_ = 0;
  std::int64_t acked_count_ = 0;

  double rate_bps_ = 0.0;
  sim::Time last_data_sent_ = -sim::kSecond;  // "long ago"
  sim::Time rtt_;
  bool rtt_valid_ = false;
  bool started_ = false;
  sim::EventId pace_event_ = 0;
  bool pace_pending_ = false;
  /// One timer slot for both retry loops: SYN retry runs only before
  /// the first feedback, the loss-hardened TERM retransmit only after
  /// completion, so the phases never overlap. Sharing the slot (and
  /// packing the flags below into former tail padding) keeps sizeof at
  /// the golden baseline — peak_flow_bytes in BENCH_engine.json pins it.
  sim::EventId retry_event_ = 0;
  bool syn_pending_ = false;
  bool got_reverse_ = false;  // any feedback at all (gates SYN retry)

  // TERM reliability (loss hardening only; see Topology::loss_hardening).
  bool term_retry_pending_ = false;
  bool term_acked_ = false;
  std::uint8_t term_retries_ = 0;
};

/// Receiver that echoes every forward packet back as the matching reverse
/// type, copying protocol headers (the paper's PDQ receiver behaviour).
class EchoReceiver : public Agent {
 public:
  explicit EchoReceiver(AgentContext ctx) : ctx_(std::move(ctx)) {}

  void on_packet(const PacketPtr& p) override;
  std::int64_t bytes_received() const { return bytes_received_; }

  /// Retirable after echoing the TERM: the TermAck is already on the
  /// wire and the sender sends nothing further on this flow.
  bool retirable() const override { return saw_term_; }
  std::size_t footprint_bytes() const override { return sizeof(*this); }

 protected:
  /// Protocol tweak applied to the reply header (e.g. PDQ rate clamping).
  virtual void decorate_reply(Packet& reply, const Packet& data);

  AgentContext ctx_;
  std::int64_t bytes_received_ = 0;
  bool saw_term_ = false;
};

}  // namespace pdq::net
