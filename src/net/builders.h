// Topology builders for every network used in the paper's evaluation.
//
// Each builder populates `topo` and returns the server (host) node ids in a
// deterministic order.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.h"

namespace pdq::net {

/// Fig 2b: n sender hosts -- switch -- one receiver host. The receiver is
/// the *last* id in the returned vector; the bottleneck is the
/// switch->receiver link.
std::vector<NodeId> build_single_bottleneck(Topology& topo, int n_senders,
                                            const LinkDefaults& d = {});

/// Fig 2a: two-level single-rooted tree. Default 4 ToR x 3 servers = the
/// paper's 17-node, 12-server topology.
std::vector<NodeId> build_single_rooted_tree(Topology& topo, int num_tors = 4,
                                             int servers_per_tor = 3,
                                             const LinkDefaults& d = {});

/// Standard k-ary fat-tree [2]: k pods, k^2/4 cores, k^3/4 servers.
/// k must be even.
std::vector<NodeId> build_fat_tree(Topology& topo, int k,
                                   const LinkDefaults& d = {});

/// Multipath selection over a fabric's equal-cost paths. kPerFlow
/// hashes once per flow (Topology::ecmp_route, the historical
/// behavior); kPerPacket re-hashes per segment with the segment index
/// as extra salt — packet spraying, as in the MQ-ECN/TCN harnesses.
/// Honored by the TCP/DCTCP-family senders (TcpConfig::multipath).
enum class MultipathMode : std::uint8_t { kPerFlow, kPerPacket };

/// Spine-leaf (leaf-spine) fabric, the shape of the MQ-ECN/TCN
/// evaluation scripts: `tors` leaf switches, each hosting
/// `servers_per_rack` servers on `d`-rate links and connecting to every
/// one of the `spines` spine switches. Each leaf->spine uplink runs at
/// d.rate_bps * servers_per_rack / (spines * oversub), so oversub = 1
/// is a non-blocking fabric and larger values oversubscribe the leaf
/// uplinks by that factor. Servers return rack-major; ECMP sees
/// `spines` equal-cost paths between servers in different racks.
std::vector<NodeId> build_spine_leaf(Topology& topo, int spines, int tors,
                                     int servers_per_rack,
                                     double oversub = 1.0,
                                     const LinkDefaults& d = {});

/// BCube(n, k) [13]: n-port switches, k+1 levels, n^(k+1) servers with
/// k+1 NIC ports each. Servers relay traffic (server-centric design).
std::vector<NodeId> build_bcube(Topology& topo, int n, int k,
                                const LinkDefaults& d = {});

/// Jellyfish [17]: random r-regular graph over `num_switches` switches with
/// `ports` ports each, `net_ports` of which interconnect switches; the
/// remaining ports attach servers.
std::vector<NodeId> build_jellyfish(Topology& topo, int num_switches,
                                    int ports, int net_ports,
                                    std::uint64_t seed = 1,
                                    const LinkDefaults& d = {});

/// DCell(n, l): the recursively defined server-centric fabric of Guo et
/// al. DCell(n, 0) is n servers on one mini-switch; DCell(n, l) is
/// t_{l-1}+1 copies of DCell(n, l-1) with one server-to-server link
/// between every pair of copies (sub-cell i's server j-1 to sub-cell j's
/// server i, for i < j). Servers relay traffic through their extra NIC
/// ports, exactly like BCube.
std::vector<NodeId> build_dcell(Topology& topo, int n, int l,
                                const LinkDefaults& d = {});

/// Number of servers in DCell(n, l): t_0 = n, t_l = t_{l-1} * (t_{l-1}+1).
int dcell_server_count(int n, int l);

/// BCube address of server `s` in BCube(n, k): digits a_0..a_k.
std::vector<int> bcube_address(int server, int n, int k);

}  // namespace pdq::net
