#include "faults/fault_plane.h"

#include <algorithm>
#include <cassert>

#include "net/packet.h"

namespace pdq::faults {

namespace {

/// Control = every type except DATA and its ACK: SYN, PROBE, TERM and
/// their echoes. These are the packets whose loss exercises the
/// retransmit/state-expiry machinery rather than selective repeat.
bool is_control(const net::Packet& p) {
  return p.type != net::PacketType::kData && p.type != net::PacketType::kAck;
}

}  // namespace

FaultPlane::FaultPlane(const FaultSpec& spec, net::Topology& topo,
                       std::uint64_t seed)
    : spec_(spec), topo_(topo), rng_(seed ^ kFaultSeedSalt) {}

FaultPlane::~FaultPlane() {
  // Pending fault events may outlive their usefulness (horizon exit)
  // but never outlive the simulator; the hooks, however, live on the
  // topology — detach them so nothing dangles.
  for (net::SimplexLink* l : hooked_) l->fault = nullptr;
}

bool FaultPlane::in_scope(const net::SimplexLink& link) const {
  const bool from_host = topo_.is_host(link.from);
  const bool to_host = topo_.is_host(link.to);
  switch (spec_.scope) {
    case LinkScope::kAllLinks:
      return true;
    case LinkScope::kSwitchSwitch:
      return !from_host && !to_host;
    case LinkScope::kHostEdge:
      return from_host || to_host;
  }
  return false;
}

void FaultPlane::arm(SetLinkState set_link_state) {
  set_link_state_ = std::move(set_link_state);

  if (spec_.per_packet_faults()) {
    auto& links = topo_.links();
    ge_bad_.assign(links.size(), 0);
    for (auto& l : links) {
      if (!in_scope(*l)) continue;
      assert(l->fault == nullptr && "link already has a fault model");
      l->fault = this;
      hooked_.push_back(l.get());
    }
  }

  if (spec_.flapping.enabled()) {
    // Candidate duplex pairs: switch-to-switch only. Flapping a host's
    // lone NIC link is indistinguishable from killing the host; the
    // interesting regime is the fabric rerouting around a bouncing core
    // link. Canonical (min, max) ordering dedupes the two halves.
    std::vector<std::pair<net::NodeId, net::NodeId>> pairs;
    for (auto& l : topo_.links()) {
      if (topo_.is_host(l->from) || topo_.is_host(l->to)) continue;
      const net::NodeId a = std::min(l->from, l->to);
      const net::NodeId b = std::max(l->from, l->to);
      if (std::find(pairs.begin(), pairs.end(), std::make_pair(a, b)) ==
          pairs.end()) {
        pairs.emplace_back(a, b);
      }
    }
    rng_.shuffle(pairs);
    const std::size_t n = std::min<std::size_t>(
        pairs.size(), static_cast<std::size_t>(spec_.flapping.num_links));
    for (std::size_t k = 0; k < n; ++k) {
      Flapper f;
      f.a = pairs[k].first;
      f.b = pairs[k].second;
      f.flaps_left = spec_.flapping.max_flaps;
      flappers_.push_back(f);
    }
    for (std::size_t k = 0; k < flappers_.size(); ++k) schedule_flap_down(k);
  }

  for (const auto& r : spec_.switch_resets) {
    topo_.sim().schedule_at(r.at, [this, r] { do_reset(r); });
  }
}

bool FaultPlane::should_drop(const net::SimplexLink& link,
                             const net::Packet& p) {
  bool drop = false;
  if (spec_.ge.enabled()) {
    auto& bad = ge_bad_[static_cast<std::size_t>(link.id)];
    if (bad != 0) {
      if (rng_.bernoulli(spec_.ge.p_bad_good)) bad = 0;
    } else {
      if (rng_.bernoulli(spec_.ge.p_good_bad)) bad = 1;
    }
    const double pl = bad != 0 ? spec_.ge.loss_bad : spec_.ge.loss_good;
    if (pl > 0.0 && rng_.bernoulli(pl)) drop = true;
  }
  if (spec_.selective.enabled()) {
    const bool ctrl = is_control(p);
    const double rate =
        ctrl ? spec_.selective.control_rate : spec_.selective.data_rate;
    if (rate > 0.0 && rng_.bernoulli(rate)) drop = true;
  }
  if (drop) {
    ++fault_drops_;
    if (is_control(p)) ++control_drops_;
  }
  return drop;
}

void FaultPlane::schedule_flap_down(std::size_t k) {
  const double dwell =
      rng_.exponential(sim::to_seconds(spec_.flapping.mean_up));
  const sim::Time at = std::max(topo_.sim().now(), spec_.flapping.start) +
                       sim::from_seconds(dwell);
  topo_.sim().schedule_at(at, [this, k] { flap_down(k); });
}

void FaultPlane::flap_down(std::size_t k) {
  Flapper& f = flappers_[k];
  if (f.flaps_left <= 0 || f.down) return;
  // A concurrent timeline event may have downed this link already;
  // flapping it "down" again would double-toggle on recovery.
  if (!topo_.link_is_up(f.a, f.b)) {
    schedule_flap_down(k);
    return;
  }
  f.down = true;
  --f.flaps_left;
  ++flaps_executed_;
  set_link_state_(f.a, f.b, false);
  const double dwell =
      rng_.exponential(sim::to_seconds(spec_.flapping.mean_down));
  topo_.sim().schedule_in(sim::from_seconds(dwell), [this, k] { flap_up(k); });
}

void FaultPlane::flap_up(std::size_t k) {
  Flapper& f = flappers_[k];
  if (!f.down) return;
  f.down = false;
  set_link_state_(f.a, f.b, true);
  if (f.flaps_left > 0) schedule_flap_down(k);
}

void FaultPlane::do_reset(const SwitchResetSpec& r) {
  const auto& switches = topo_.switch_ids();
  if (switches.empty()) return;
  std::size_t pick;
  if (r.index >= 0) {
    pick = static_cast<std::size_t>(r.index) % switches.size();
  } else {
    pick = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(switches.size()) - 1));
  }
  net::Node& sw = topo_.node(switches[pick]);
  for (auto& port : sw.ports()) {
    if (port->controller() != nullptr) port->controller()->reset_state();
  }
  ++resets_executed_;
}

std::shared_ptr<const FaultSpec> FaultSpec::preset(const std::string& name,
                                                   std::string* error) {
  if (error != nullptr) error->clear();
  if (name.empty() || name == "off" || name == "none") return nullptr;
  auto spec = std::make_shared<FaultSpec>();
  if (name == "loss") {
    spec->data_loss(0.01).control_loss(0.01);
  } else if (name == "burst") {
    spec->burst_loss(/*p_gb=*/0.0005, /*p_bg=*/0.02, /*loss_bad=*/0.25);
  } else if (name == "ctrl") {
    spec->control_loss(0.05);
  } else if (name == "flap") {
    spec->flap(/*links=*/1, /*mean_up=*/500 * sim::kMillisecond,
               /*mean_down=*/20 * sim::kMillisecond,
               /*start=*/10 * sim::kMillisecond);
  } else if (name == "reset") {
    spec->reset_switch(50 * sim::kMillisecond)
        .reset_switch(150 * sim::kMillisecond);
  } else if (name == "chaos") {
    spec->burst_loss(0.0002, 0.05, 0.15)
        .control_loss(0.01)
        .flap(1, 500 * sim::kMillisecond, 20 * sim::kMillisecond,
              10 * sim::kMillisecond)
        .reset_switch(100 * sim::kMillisecond);
  } else {
    if (error != nullptr) {
      *error = "unknown --faults preset '" + name +
               "' (expected off|loss|burst|ctrl|flap|reset|chaos)";
    }
    return nullptr;
  }
  return spec;
}

}  // namespace pdq::faults
