// FaultSpec: seeded, deterministic per-link fault schedules.
//
// The fault plane generalizes the scalar SimplexLink::drop_rate (the
// Fig 9 loss knob) into four first-class fault classes on long-haul /
// unreliable paths (ROADMAP item 5):
//   - Gilbert-Elliott burst loss: a per-link two-state Markov chain
//     advanced per packet; loss clusters in "bad" episodes instead of
//     the memoryless Bernoulli drop_rate.
//   - Selective control-vs-data drop: independent loss rates for
//     control packets (SYN/PROBE/TERM and their echoes) and data/ack
//     packets — the paper's lost-probe/lost-TERM regime.
//   - Link flapping: random up/down toggles through the same
//     Topology::set_link_state / harness reroute path scripted
//     timeline failures use.
//   - Switch reset: a switch wipes its soft flow state mid-run
//     (LinkController::reset_state) and must rebuild from carried
//     packet headers.
//
// Determinism contract: every fault decision draws from a dedicated
// sim::Rng seeded with `run_seed ^ kFaultSeedSalt` — the workload,
// timeline and topology (wire-loss) streams never shift when faults are
// enabled, and a faulted run is bit-reproducible for a given seed
// across SweepRunner thread counts. With a null FaultSpec the engine is
// byte-for-byte the historical path (no hooks, no events, no draws).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.h"

namespace pdq::faults {

/// Salt for the fault plane's private RNG stream (same pattern as
/// harness::kTimelineSeedSalt): rng = Rng(run_seed ^ kFaultSeedSalt).
inline constexpr std::uint64_t kFaultSeedSalt = 0xFA17BADC0DE5ULL;

/// Two-state Markov (Gilbert-Elliott) burst-loss model, advanced once
/// per packet at transmit completion. Mean good-run length is 1/p_gb
/// packets, mean bad-run length 1/p_bg.
struct GilbertElliott {
  double p_good_bad = 0.0;  // per-packet good -> bad transition
  double p_bad_good = 0.0;  // per-packet bad -> good transition
  double loss_good = 0.0;   // drop probability in the good state
  double loss_bad = 0.0;    // drop probability in the bad state
  bool enabled() const {
    return p_good_bad > 0.0 && (loss_bad > 0.0 || loss_good > 0.0);
  }
};

/// Independent uniform loss by packet class. "Control" is every type
/// except kData/kAck: SYN, PROBE, TERM and their echoes — the packets
/// whose loss PDQ must survive via retransmit + switch state expiry.
struct SelectiveDrop {
  double control_rate = 0.0;
  double data_rate = 0.0;
  bool enabled() const { return control_rate > 0.0 || data_rate > 0.0; }
};

/// Random link up/down toggles on `num_links` switch-to-switch links
/// (chosen once per run from the fault RNG). Up/down dwell times are
/// exponential; each down+up pair counts as one flap against the cap.
struct FlapSpec {
  int num_links = 0;  // 0 disables
  sim::Time mean_up = 500 * sim::kMillisecond;
  sim::Time mean_down = 20 * sim::kMillisecond;
  sim::Time start = 0;        // no flap before this instant
  int max_flaps = 64;         // per chosen link
  bool enabled() const { return num_links > 0 && mean_up > 0; }
};

/// One scheduled switch reset. `index` picks switch_ids()[index % n];
/// -1 draws a switch from the fault RNG at fire time.
struct SwitchResetSpec {
  sim::Time at = 0;
  int index = -1;
};

/// Which links get the per-packet fault hook (burst + selective drop).
enum class LinkScope : std::uint8_t {
  kAllLinks,      // every simplex link, host edges included
  kSwitchSwitch,  // fabric core only (both endpoints switches)
  kHostEdge,      // links with a host endpoint
};

struct FaultSpec {
  GilbertElliott ge;
  SelectiveDrop selective;
  FlapSpec flapping;
  std::vector<SwitchResetSpec> switch_resets;
  LinkScope scope = LinkScope::kSwitchSwitch;
  /// Arms the loss-hardening path in the transport agents (TERM
  /// retransmit with capped backoff, net::Topology::loss_hardening).
  /// On by default: a fault plane without sender-side recovery turns
  /// every lost TERM into switch-GC latency.
  bool harden_protocols = true;

  bool per_packet_faults() const {
    return ge.enabled() || selective.enabled();
  }
  bool any() const {
    return per_packet_faults() || flapping.enabled() ||
           !switch_resets.empty();
  }

  // Chainable builders (mirroring harness::TimelineSpec's style).
  FaultSpec& burst_loss(double p_gb, double p_bg, double loss_bad,
                        double loss_good = 0.0) {
    ge.p_good_bad = p_gb;
    ge.p_bad_good = p_bg;
    ge.loss_bad = loss_bad;
    ge.loss_good = loss_good;
    return *this;
  }
  FaultSpec& control_loss(double rate) {
    selective.control_rate = rate;
    return *this;
  }
  FaultSpec& data_loss(double rate) {
    selective.data_rate = rate;
    return *this;
  }
  FaultSpec& flap(int links, sim::Time mean_up, sim::Time mean_down,
                  sim::Time start = 0) {
    flapping.num_links = links;
    flapping.mean_up = mean_up;
    flapping.mean_down = mean_down;
    flapping.start = start;
    return *this;
  }
  FaultSpec& reset_switch(sim::Time at, int index = -1) {
    switch_resets.push_back({at, index});
    return *this;
  }
  FaultSpec& on_links(LinkScope s) {
    scope = s;
    return *this;
  }

  /// Named presets backing the `--faults` CLI flag:
  ///   off    - no faults (returns null)
  ///   loss   - 1% uniform loss, data + control, fabric core
  ///   burst  - Gilbert-Elliott burst loss (25% in bad episodes)
  ///   ctrl   - 5% control-only drop (lost probes/TERMs, fig9 regime)
  ///   flap   - one core link flapping (500ms up / 20ms down)
  ///   reset  - two scheduled switch resets
  ///   chaos  - mild burst + 1% control drop + flapping + one reset
  /// Unknown names return null and set *error to a message listing the
  /// presets; "off" returns null with *error cleared.
  static std::shared_ptr<const FaultSpec> preset(const std::string& name,
                                                 std::string* error = nullptr);
};

}  // namespace pdq::faults
