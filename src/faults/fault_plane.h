// FaultPlane: the runtime that executes a FaultSpec against one run.
//
// Owned by harness::run_prepared (one per run, like the timeline
// machinery). arm() installs the per-packet hook on every in-scope link
// and schedules the flap / switch-reset events; the destructor detaches
// the hooks so the topology never holds a dangling pointer.
//
// Links with an installed hook take the explicit tx-complete event
// chain in node.cc (the same rule as drop_rate > 0): per-packet fault
// decisions must execute in event order. The legacy drop_rate draw (from
// the topology RNG) runs first and is untouched; the fault plane's own
// draws come from its salted private stream.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "faults/fault_spec.h"
#include "net/link.h"
#include "net/topology.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace pdq::faults {

class FaultPlane : public net::LinkFaultModel {
 public:
  /// Brings a duplex link up or down; the harness passes its timeline
  /// closure, which also reroutes (or terminates) affected senders.
  using SetLinkState = std::function<void(net::NodeId, net::NodeId, bool)>;

  FaultPlane(const FaultSpec& spec, net::Topology& topo, std::uint64_t seed);
  ~FaultPlane() override;

  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  /// Installs hooks and schedules fault events. Call once, after the
  /// topology is built and before the simulator runs.
  void arm(SetLinkState set_link_state);

  // net::LinkFaultModel
  bool should_drop(const net::SimplexLink& link, const net::Packet& p) override;

  // Observability (tests and the auditor's diagnostic dump).
  std::uint64_t fault_drops() const { return fault_drops_; }
  std::uint64_t control_drops() const { return control_drops_; }
  int flaps_executed() const { return flaps_executed_; }
  int resets_executed() const { return resets_executed_; }

 private:
  bool in_scope(const net::SimplexLink& link) const;
  void schedule_flap_down(std::size_t k);
  void flap_down(std::size_t k);
  void flap_up(std::size_t k);
  void do_reset(const SwitchResetSpec& r);

  struct Flapper {
    net::NodeId a = net::kInvalidNode;
    net::NodeId b = net::kInvalidNode;
    int flaps_left = 0;
    bool down = false;
  };

  const FaultSpec spec_;
  net::Topology& topo_;
  sim::Rng rng_;
  SetLinkState set_link_state_;
  std::vector<net::SimplexLink*> hooked_;
  std::vector<std::uint8_t> ge_bad_;  // Gilbert-Elliott state by LinkId
  std::vector<Flapper> flappers_;
  std::uint64_t fault_drops_ = 0;
  std::uint64_t control_drops_ = 0;
  int flaps_executed_ = 0;
  int resets_executed_ = 0;
};

}  // namespace pdq::faults
