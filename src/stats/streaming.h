// Streaming statistics: O(1)-memory, deterministic accumulators for
// metrics over flow populations too large to materialize per-flow
// result vectors (the 100k+-flow fig13 scale points; ROADMAP item 2b).
//
// Design constraints, in order:
//  1. Bit-reproducible across insertion orders we control. Flows report
//     at *termination* order, which differs between runs of different
//     protocol stacks and from the creation order the vector path
//     iterates in. Quantiles therefore use a fixed-gamma log-binned
//     histogram (integer bin counts in a std::map — commutative by
//     construction) rather than a t-digest, whose centroids depend on
//     insertion order. Counts, maxima and integer byte sums are exactly
//     order-independent; floating mean sums can differ by ULPs between
//     orders (see docs/architecture.md "Streaming metrics").
//  2. Mergeable: SweepRunner combines per-trial accumulators by adding
//     bin counts / sums in trial order — deterministic for any thread
//     count (sweep.h merged_streaming()).
//  3. Same definitions as the vector path: nearest_rank() below is the
//     single quantile definition shared by metrics::windowed_p99_fct_ms
//     (vector path), FlowSimResult::p99_fct_ms() and the histogram walk.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <vector>

#include "net/flow.h"
#include "sim/time.h"

namespace pdq::stats {

/// Nearest-rank percentile index: rank = ceil(p * n), 1-based, clamped
/// to [1, n]; returns the 0-based index into a sorted sample. This is
/// the exact formula metrics::windowed_p99_fct_ms has always used.
inline std::size_t nearest_rank_index(double p, std::size_t n) {
  const auto rank =
      static_cast<std::size_t>(std::ceil(p * static_cast<double>(n)));
  return std::min(std::max<std::size_t>(rank, 1), n) - 1;
}

/// Nearest-rank percentile of an ascending-sorted sample (0 when empty).
inline double nearest_rank(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  return sorted[nearest_rank_index(p, sorted.size())];
}

/// Welford's online mean/variance. The running mean here is used for
/// variance only; accumulators that must match the vector path's plain
/// sum (RunStats) keep a separate naive sum.
class Welford {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }

  /// Chan et al. parallel combine; merge order must be fixed (trial
  /// order) for bit-reproducibility.
  void merge(const Welford& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double d = o.mean_ - mean_;
    const double n = na + nb;
    mean_ += d * nb / n;
    m2_ += o.m2_ + d * d * na * nb / n;
    n_ += o.n_;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Population variance (0 for fewer than two samples).
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Fixed-gamma log-binned quantile histogram (the DDSketch bucketing):
/// value x > 0 lands in bin i = ceil(log(x) / log(gamma)) with
/// gamma = (1 + alpha) / (1 - alpha), and bin i reports the mid-point
/// estimate 2 gamma^i / (gamma + 1), which is within relative error
/// alpha of every value the bin covers. Bins are integer counts keyed
/// by bin index, so insertion order and merge grouping cannot change
/// the result. Non-positive values land in a dedicated zero bucket.
/// Memory: O(log(max/min) / alpha) occupied bins — ~1350 for alpha=0.01
/// over 12 decades — independent of the sample count.
class LogHistogram {
 public:
  explicit LogHistogram(double alpha = 0.01)
      : alpha_(alpha), gamma_((1.0 + alpha) / (1.0 - alpha)) {
    inv_log_gamma_ = 1.0 / std::log(gamma_);
  }

  void add(double x) {
    ++count_;
    if (!(x > 0.0)) {
      ++zero_count_;
      return;
    }
    const auto bin =
        static_cast<std::int32_t>(std::ceil(std::log(x) * inv_log_gamma_));
    ++bins_[bin];
  }

  /// Adds the other histogram's bin counts (requires equal alpha).
  void merge(const LogHistogram& o);

  std::uint64_t count() const { return count_; }
  double relative_error() const { return alpha_; }

  /// Nearest-rank quantile estimate: walks the zero bucket then the
  /// ascending bins to rank ceil(p * count). Within relative error
  /// alpha of the exact nearest-rank statistic of the inserted sample.
  double quantile(double p) const;

  /// Occupied bins (for memory assertions in tests).
  std::size_t bin_count() const { return bins_.size(); }

 private:
  double alpha_;
  double gamma_;
  double inv_log_gamma_;
  std::uint64_t count_ = 0;
  std::uint64_t zero_count_ = 0;
  std::map<std::int32_t, std::uint64_t> bins_;  // ordered: quantile walk
};

/// A size bucket for windowed FCT metrics, matching the [lo, hi) bucket
/// arguments of metrics::windowed_mean_fct_ms / windowed_p99_fct_ms.
struct SizeBucket {
  std::int64_t lo = 0;
  std::int64_t hi = std::numeric_limits<std::int64_t>::max();
};

/// Configuration for streaming-metrics mode (RunOptions::streaming /
/// ExperimentSpec::streaming_metrics). The full-range bucket [0, max)
/// is always tracked as bucket 0; list additional buckets only for the
/// size-conditioned windowed metrics the experiment reads.
struct StreamingSpec {
  /// Quantile sketch relative-error bound (LogHistogram alpha).
  double quantile_alpha = 0.01;
  std::vector<SizeBucket> size_buckets;
};

/// Neumaier-compensated running sum: absorbs the low-order bits a naive
/// `sum += x` drops, so the total is independent of fold order at double
/// precision. The streaming path folds flows in *termination* order
/// while the vector path sums in creation order — compensation is what
/// lets the streaming==vector equality tests demand exact equality
/// instead of a ULP tolerance.
class CompensatedSum {
 public:
  void add(double x) {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }
  void merge(const CompensatedSum& o) {
    add(o.sum_);
    add(o.comp_);
  }
  double value() const { return sum_ + comp_; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

/// Per-bucket windowed FCT accumulator.
struct FctAccumulator {
  std::uint64_t count = 0;
  CompensatedSum sum_ms;
  double max_ms = 0.0;
  Welford welford;
  LogHistogram hist;

  explicit FctAccumulator(double alpha = 0.01) : hist(alpha) {}

  void add(double fct_ms) {
    ++count;
    sum_ms.add(fct_ms);
    if (fct_ms > max_ms) max_ms = fct_ms;
    welford.add(fct_ms);
    hist.add(fct_ms);
  }

  void merge(const FctAccumulator& o) {
    count += o.count;
    sum_ms.merge(o.sum_ms);
    if (o.max_ms > max_ms) max_ms = o.max_ms;
    welford.merge(o.welford);
    hist.merge(o.hist);
  }

  double mean_ms() const {
    return count == 0 ? 0.0 : sum_ms.value() / static_cast<double>(count);
  }
  double p99_ms() const { return hist.quantile(0.99); }
};

/// The per-run streaming accumulator set: everything the RunResult
/// metric helpers and the windowed metrics:: family need, fed one
/// net::FlowResult at a time as flows terminate (or, for flows still
/// pending at the horizon, once at the end of the run). Peak per-run
/// memory is O(size_buckets * histogram bins), independent of the flow
/// count.
class RunStats {
 public:
  RunStats(const StreamingSpec& spec, sim::Time window_lo,
           sim::Time window_hi);

  /// Folds one finished (or horizon-pending) flow in. `end_time` is the
  /// run's clock for flows with no finish time (pending at the horizon):
  /// it extends the goodput accounting span exactly as the vector path
  /// does.
  void add(const net::FlowResult& f, sim::Time end_time);

  /// Adds the other run's accumulators (same spec shape required).
  /// Merge in a fixed order (trial order) for bit-reproducibility.
  void merge(const RunStats& o);

  // --- whole-run aggregates (the RunResult helper definitions) ---
  std::size_t flows() const { return static_cast<std::size_t>(flows_); }
  std::size_t completed() const {
    return static_cast<std::size_t>(completed_);
  }
  double mean_fct_ms() const {
    return completed_ == 0
               ? 0.0
               : fct_sum_ms_.value() / static_cast<double>(completed_);
  }
  double max_fct_ms() const { return max_fct_ms_; }
  double application_throughput() const {
    if (deadline_flows_ == 0) return 100.0;
    return 100.0 * static_cast<double>(deadline_met_) /
           static_cast<double>(deadline_flows_);
  }

  // --- windowed metrics (the metrics:: definitions) ---
  /// Bucket index for a [lo, hi) request: 0 for the full range,
  /// 1 + position for a configured size bucket; exits with a
  /// configuration error for an unknown bucket (add it to
  /// StreamingSpec::size_buckets).
  std::size_t bucket_index(std::int64_t lo, std::int64_t hi) const;
  std::size_t num_buckets() const { return buckets_.size(); }
  const FctAccumulator& bucket(std::size_t i) const { return buckets_[i]; }

  double windowed_mean_fct_ms(std::size_t bucket = 0) const {
    return buckets_[bucket].mean_ms();
  }
  double windowed_p99_fct_ms(std::size_t bucket = 0) const {
    return buckets_[bucket].count == 0 ? 0.0 : buckets_[bucket].p99_ms();
  }
  double goodput_gbps() const;
  double deadline_miss_percent() const {
    if (win_deadline_flows_ == 0) return 0.0;
    return 100.0 * static_cast<double>(win_deadline_missed_) /
           static_cast<double>(win_deadline_flows_);
  }

  double quantile_alpha() const { return spec_.quantile_alpha; }
  const StreamingSpec& spec() const { return spec_; }

 private:
  StreamingSpec spec_;
  sim::Time window_lo_ = 0;
  sim::Time window_hi_ = sim::kTimeInfinity;

  // Whole-run counters: order-independent, including fct_sum_ms_ —
  // Neumaier compensation makes the FCT sum invariant to termination
  // order at double precision.
  std::uint64_t flows_ = 0;
  std::uint64_t completed_ = 0;
  CompensatedSum fct_sum_ms_;
  double max_fct_ms_ = 0.0;
  std::uint64_t deadline_flows_ = 0;
  std::uint64_t deadline_met_ = 0;

  // Windowed accumulators. Goodput bytes are exact integer sums.
  std::vector<FctAccumulator> buckets_;  // [0] = full range
  std::int64_t win_bytes_acked_ = 0;
  sim::Time span_end_ = 0;
  std::uint64_t win_deadline_flows_ = 0;
  std::uint64_t win_deadline_missed_ = 0;
};

}  // namespace pdq::stats
