#include "stats/streaming.h"

#include <algorithm>

namespace pdq::stats {

void LogHistogram::merge(const LogHistogram& o) {
  if (o.alpha_ != alpha_) {
    std::fprintf(stderr,
                 "LogHistogram::merge: alpha mismatch (%g vs %g) — merged "
                 "sketches must share one StreamingSpec\n",
                 alpha_, o.alpha_);
    std::exit(2);
  }
  count_ += o.count_;
  zero_count_ += o.zero_count_;
  for (const auto& [bin, c] : o.bins_) bins_[bin] += c;
}

double LogHistogram::quantile(double p) const {
  if (count_ == 0) return 0.0;
  // Nearest-rank over the binned sample: same rank formula as
  // nearest_rank_index, walked over cumulative bin counts.
  const std::uint64_t rank = std::min<std::uint64_t>(
      std::max<std::uint64_t>(
          static_cast<std::uint64_t>(
              std::ceil(p * static_cast<double>(count_))),
          1),
      count_);
  std::uint64_t cum = zero_count_;
  if (rank <= cum) return 0.0;
  for (const auto& [bin, c] : bins_) {
    cum += c;
    if (rank <= cum) {
      // Mid-point estimate of (gamma^(bin-1), gamma^bin]: within
      // relative error alpha of every value in the bin.
      return 2.0 * std::pow(gamma_, static_cast<double>(bin)) /
             (gamma_ + 1.0);
    }
  }
  // Unreachable when counts are consistent.
  return 0.0;
}

RunStats::RunStats(const StreamingSpec& spec, sim::Time window_lo,
                   sim::Time window_hi)
    : spec_(spec), window_lo_(window_lo), window_hi_(window_hi) {
  // The goodput span starts at the window open, exactly like the vector
  // path's span_end = w.lo seed.
  span_end_ = window_lo;
  buckets_.reserve(1 + spec_.size_buckets.size());
  buckets_.emplace_back(spec_.quantile_alpha);  // full range
  for (std::size_t i = 0; i < spec_.size_buckets.size(); ++i) {
    buckets_.emplace_back(spec_.quantile_alpha);
  }
}

void RunStats::add(const net::FlowResult& f, sim::Time end_time) {
  ++flows_;
  const bool completed = f.outcome == net::FlowOutcome::kCompleted;
  double fct_ms = 0.0;
  if (completed) {
    ++completed_;
    fct_ms = sim::to_millis(f.completion_time());
    fct_sum_ms_.add(fct_ms);
    if (fct_ms > max_fct_ms_) max_fct_ms_ = fct_ms;
  }
  if (f.spec.has_deadline()) {
    ++deadline_flows_;
    if (f.deadline_met()) ++deadline_met_;
  }

  // Windowed accounting: flows *starting* in [window_lo, window_hi),
  // the same membership test as metrics::in_window.
  if (f.spec.start_time < window_lo_ || f.spec.start_time >= window_hi_) {
    return;
  }
  win_bytes_acked_ += f.bytes_acked;
  span_end_ = std::max(
      span_end_,
      f.finish_time == sim::kTimeInfinity ? end_time : f.finish_time);
  if (f.spec.has_deadline()) {
    ++win_deadline_flows_;
    if (!f.deadline_met()) ++win_deadline_missed_;
  }
  if (completed) {
    buckets_[0].add(fct_ms);
    for (std::size_t i = 0; i < spec_.size_buckets.size(); ++i) {
      const SizeBucket& b = spec_.size_buckets[i];
      if (f.spec.size_bytes >= b.lo && f.spec.size_bytes < b.hi) {
        buckets_[i + 1].add(fct_ms);
      }
    }
  }
}

void RunStats::merge(const RunStats& o) {
  if (o.buckets_.size() != buckets_.size()) {
    std::fprintf(stderr,
                 "RunStats::merge: bucket-count mismatch (%zu vs %zu) — "
                 "merged runs must share one StreamingSpec\n",
                 buckets_.size(), o.buckets_.size());
    std::exit(2);
  }
  flows_ += o.flows_;
  completed_ += o.completed_;
  fct_sum_ms_.merge(o.fct_sum_ms_);
  if (o.max_fct_ms_ > max_fct_ms_) max_fct_ms_ = o.max_fct_ms_;
  deadline_flows_ += o.deadline_flows_;
  deadline_met_ += o.deadline_met_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].merge(o.buckets_[i]);
  }
  win_bytes_acked_ += o.win_bytes_acked_;
  // Merged goodput spans the union of the runs' accounting spans
  // (sensible only when the merged runs share a window, which sharing
  // one spec via merged_streaming guarantees).
  span_end_ = std::max(span_end_, o.span_end_);
  win_deadline_flows_ += o.win_deadline_flows_;
  win_deadline_missed_ += o.win_deadline_missed_;
}

std::size_t RunStats::bucket_index(std::int64_t lo, std::int64_t hi) const {
  if (lo == 0 && hi == std::numeric_limits<std::int64_t>::max()) return 0;
  for (std::size_t i = 0; i < spec_.size_buckets.size(); ++i) {
    if (spec_.size_buckets[i].lo == lo && spec_.size_buckets[i].hi == hi) {
      return i + 1;
    }
  }
  std::fprintf(stderr,
               "RunStats: no size bucket [%lld, %lld) configured — add it "
               "to StreamingSpec::size_buckets before using a "
               "size-conditioned windowed metric in streaming mode\n",
               static_cast<long long>(lo), static_cast<long long>(hi));
  std::exit(2);
}

double RunStats::goodput_gbps() const {
  // Same expression as the vector-path metrics::goodput_gbps: exact
  // integer byte sum, span from window open to the last in-window
  // flow's finish (or run end).
  if (span_end_ <= window_lo_) return 0.0;
  return static_cast<double>(win_bytes_acked_) * 8.0 /
         sim::to_seconds(span_end_ - window_lo_) / 1e9;
}

}  // namespace pdq::stats
