// Simulation time: signed 64-bit nanoseconds.
//
// All of the simulator uses integer nanoseconds to keep event ordering
// deterministic and free of floating-point drift. Helpers convert to and
// from seconds/milliseconds/microseconds where a human-facing quantity is
// needed.
//
// Units conventions (repo-wide): time is sim::Time in nanoseconds, link and
// flow rates are double bits-per-second (bps), sizes are std::int64_t
// bytes. A `Time` of kTimeInfinity means "never" / "no deadline".
#pragma once

#include <cstdint>

namespace pdq::sim {

using Time = std::int64_t;  // nanoseconds

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;

/// Largest representable time; used as "never".
inline constexpr Time kTimeInfinity = INT64_MAX;

constexpr double to_seconds(Time t) { return static_cast<double>(t) / kSecond; }
constexpr double to_millis(Time t) {
  return static_cast<double>(t) / kMillisecond;
}
constexpr double to_micros(Time t) {
  return static_cast<double>(t) / kMicrosecond;
}

constexpr Time from_seconds(double s) {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}
constexpr Time from_millis(double ms) {
  return static_cast<Time>(ms * static_cast<double>(kMillisecond));
}
constexpr Time from_micros(double us) {
  return static_cast<Time>(us * static_cast<double>(kMicrosecond));
}

/// Time to transmit `bytes` at `rate_bps` (bits per second), rounded up so
/// that a transmission never finishes "early" due to integer truncation.
constexpr Time transmission_time(std::int64_t bytes, double rate_bps) {
  if (rate_bps <= 0) return kTimeInfinity;
  const double ns = static_cast<double>(bytes) * 8.0 * 1e9 / rate_bps;
  const auto t = static_cast<Time>(ns);
  return (static_cast<double>(t) < ns) ? t + 1 : t;
}

}  // namespace pdq::sim
