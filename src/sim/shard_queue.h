// ShardQueue: the per-shard event queue of the sharded engine.
//
// Same slab + implicit 4-ary heap design as sim/event_queue.h, with two
// deliberate differences:
//
//  1. The sequence number lives in the *slot*, not the heap entry, and
//     the comparator reads it through the slot index. During a window a
//     shard stamps provisional sequence numbers (>= kProvisionalSeqBase,
//     numerically above every true one); at the barrier the coordinator
//     relabels them to the dense true values the single-threaded engine
//     would have assigned — an O(1) slot write per patched event. The
//     relabeling is monotone per shard (merge replay preserves each
//     shard's op order), so heap order is never perturbed.
//
//  2. A TimingWheel fronts the heap: events at or beyond the frontier
//     (the current sync-window bound) bucket in the wheel, and
//     set_frontier() flushes due buckets into the heap where the exact
//     (time, vtime, seq) key orders them. Events below the frontier must
//     go straight to the heap — they may run this window.
//
// Single-threaded per shard: the owning worker thread (in-window) or the
// coordinator (at barriers) — never both at once.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/time.h"
#include "sim/timing_wheel.h"

namespace pdq::sim {

/// Provisional in-window sequence numbers start here; true sequence
/// numbers stay far below (a run would need ~4.6e18 events to collide).
/// Provisional > true matches sequential order: an op performed inside
/// the current window sequentially follows every previously numbered op.
inline constexpr std::uint64_t kProvisionalSeqBase = 1ull << 62;

class ShardQueue {
 public:
  struct ScheduledRef {
    EventId id = 0;          // gen<<32|slot, same encoding as EventQueue
    std::uint32_t slot = 0;  // for barrier-time seq patching
    std::uint32_t gen = 0;
  };

  ShardQueue()
      : wheel_(/*granularity=*/64 * kMicrosecond, /*num_slots=*/256) {}

  ~ShardQueue() { clear(); }

  ShardQueue(const ShardQueue&) = delete;
  ShardQueue& operator=(const ShardQueue&) = delete;

  ScheduledRef schedule(Time at, Time vtime, std::uint64_t seq, EventFn fn) {
    assert(vtime <= at);
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    assert(s.state == SlotState::kFree);
    s.state = SlotState::kPending;
    s.fn = std::move(fn);
    s.at = at;
    s.vtime = vtime;
    s.seq = seq;
    if (at < frontier_) {
      heap_push(HeapRef{at, vtime, slot});
    } else {
      s.in_wheel = true;
      wheel_.add(TimingWheel::Entry{at, slot});
    }
    ++pending_;
    if (pending_ > peak_pending_) peak_pending_ = pending_;
    ++scheduled_total_;
    return ScheduledRef{make_id(s.gen, slot), slot, s.gen};
  }

  /// O(1) exact cancel; stale ids (already ran / already cancelled) are
  /// harmless no-ops. A cancelled wheel entry is dropped at flush time.
  /// Returns whether a live event was actually cancelled — the executor
  /// logs only effective cancels, matching EventQueue::cancelled_total.
  bool cancel(EventId id) {
    const std::uint32_t slot = id_slot(id);
    if (slot >= slots_.size()) return false;
    Slot& s = slots_[slot];
    if (s.gen != id_gen(id) || s.state != SlotState::kPending) return false;
    s.state = SlotState::kCancelled;
    s.fn.reset();
    --pending_;
    ++cancelled_total_;
    return true;
  }

  /// Barrier-time provisional->true seq relabel. Generation-checked: an
  /// event that executed inside its own window released its slot (gen
  /// advanced), so a reused slot is never mis-patched. Cancelled
  /// tombstones *are* patched: they still sit in the heap and take part
  /// in comparisons, so leaving a provisional number there would break
  /// the comparator's consistency with later true-space entries.
  void patch_seq(std::uint32_t slot, std::uint32_t gen, std::uint64_t seq) {
    if (slot >= slots_.size()) return;
    Slot& s = slots_[slot];
    if (s.gen != gen || s.state == SlotState::kFree) return;
    s.seq = seq;
  }

  /// Advances the execution frontier to `bound`: wheel buckets that
  /// could hold events before `bound` flush into the heap (the wheel may
  /// release whole buckets early; the heap re-orders exactly). Must be
  /// called quiesced, before the window [*, bound) executes.
  void set_frontier(Time bound) {
    wheel_.flush_until(bound, [this](TimingWheel::Entry e) {
      Slot& s = slots_[e.payload];
      assert(s.in_wheel);
      s.in_wheel = false;
      if (s.state == SlotState::kCancelled) {
        release_slot(e.payload);
        return;
      }
      assert(s.state == SlotState::kPending && s.at == e.at);
      heap_push(HeapRef{s.at, s.vtime, e.payload});
    });
    // The wheel rounds its flush frontier up to a bucket boundary;
    // everything below that boundary must take the heap path.
    frontier_ = wheel_.flushed_until();
    assert(frontier_ >= bound);
  }

  /// Earliest pending time across heap and wheel — bucket-granular for
  /// wheel residents (a lower bound, never late). The coordinator uses
  /// this for window placement: a bound derived from a bucket lower
  /// bound at worst costs one extra sync round, never a wrong order.
  Time next_time_lower_bound() {
    skip_cancelled();
    Time best = heap_.empty() ? kTimeInfinity : heap_.front().at;
    const Time wheel_bound = wheel_.next_lower_bound();
    return wheel_bound < best ? wheel_bound : best;
  }

  /// True when the heap front runs before `bound`. Wheel residents are
  /// all >= frontier_ >= bound by construction, so the heap decides.
  bool has_runnable_before(Time bound) {
    skip_cancelled();
    return !heap_.empty() && heap_.front().at < bound;
  }

  struct Popped {
    Time at;
    Time vtime;
    std::uint64_t seq;
    EventFn fn;
  };

  Popped pop() {
    skip_cancelled();
    assert(!heap_.empty());
    const HeapRef top = heap_.front();
    heap_remove_top();
    Slot& s = slots_[top.slot];
    assert(s.state == SlotState::kPending);
    Popped out{top.at, top.vtime, s.seq, std::move(s.fn)};
    release_slot(top.slot);
    --pending_;
    return out;
  }

  /// Destroys every pending callable (teardown path — packet-carrying
  /// closures must release to their pools before the pools die).
  void clear() {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].state != SlotState::kFree) {
        slots_[i].fn.reset();
        slots_[i].state = SlotState::kFree;
        ++slots_[i].gen;
      }
      slots_[i].in_wheel = false;
    }
    heap_.clear();
    free_slots_.clear();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      free_slots_.push_back(static_cast<std::uint32_t>(i));
    }
    pending_ = 0;
  }

  bool empty() const { return pending_ == 0; }
  std::size_t pending() const { return pending_; }
  std::uint64_t scheduled_total() const { return scheduled_total_; }
  std::uint64_t cancelled_total() const { return cancelled_total_; }
  std::size_t peak_pending() const { return peak_pending_; }
  std::size_t wheel_resident() const { return wheel_.size(); }
  Time frontier() const { return frontier_; }

 private:
  /// Heap entries carry (at, vtime) for locality; seq is read through
  /// the slot so barrier relabeling does not touch the heap.
  struct HeapRef {
    Time at;
    Time vtime;
    std::uint32_t slot;
  };

  enum class SlotState : std::uint8_t { kFree, kPending, kCancelled };

  struct Slot {
    EventFn fn;
    Time at = 0;
    Time vtime = 0;
    std::uint64_t seq = 0;
    std::uint32_t gen = 0;
    SlotState state = SlotState::kFree;
    bool in_wheel = false;
  };

  static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }
  static std::uint32_t id_slot(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  static std::uint32_t id_gen(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  bool before(const HeapRef& a, const HeapRef& b) const {
    if (a.at != b.at) return a.at < b.at;
    if (a.vtime != b.vtime) return a.vtime < b.vtime;
    return slots_[a.slot].seq < slots_[b.slot].seq;
  }

  void release_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.state = SlotState::kFree;
    s.in_wheel = false;
    ++s.gen;
    free_slots_.push_back(slot);
  }

  void skip_cancelled() {
    while (!heap_.empty() &&
           slots_[heap_.front().slot].state == SlotState::kCancelled) {
      release_slot(heap_.front().slot);
      heap_remove_top();
    }
  }

  void heap_push(HeapRef e) {
    heap_.push_back(e);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!before(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void heap_remove_top() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (heap_.size() <= 1) return;
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first_child = 4 * i + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t last_child =
          first_child + 4 < n ? first_child + 4 : n;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], heap_[i])) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  TimingWheel wheel_;
  Time frontier_ = 0;  // schedules below this must take the heap path
  std::vector<HeapRef> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t pending_ = 0;
  std::size_t peak_pending_ = 0;
  std::uint64_t scheduled_total_ = 0;
  std::uint64_t cancelled_total_ = 0;
};

}  // namespace pdq::sim
