// A deterministic discrete-event queue.
//
// Events are (time, sequence, callback) triples kept in a binary heap.
// The monotonically increasing sequence number breaks ties between events
// scheduled for the same instant, so two runs with the same inputs always
// execute events in the same order. Cancellation is lazy: cancelled ids go
// into a hash set and are skipped when they reach the top of the heap.
//
// Ownership: the queue owns every scheduled EventFn until it is popped or
// skipped as cancelled; EventIds are never reused, so a stale cancel() is
// harmless. Units: event times are absolute integer nanoseconds
// (sim::Time).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace pdq::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedules `fn` to run at absolute time `at`. Returns an id usable with
  /// cancel().
  EventId schedule(Time at, EventFn fn) {
    const EventId id = next_id_++;
    heap_.push(Entry{at, id, std::move(fn)});
    return id;
  }

  /// Lazily cancels a pending event. Cancelling an id that already ran is a
  /// harmless no-op (ids are never reused).
  void cancel(EventId id) {
    if (id < next_id_) cancelled_.insert(id);
  }

  bool empty() {
    skip_cancelled();
    return heap_.empty();
  }

  /// Number of events still scheduled, including not-yet-skipped cancelled
  /// entries buried in the heap (an upper bound).
  std::size_t size() const { return heap_.size(); }

  /// Time of the next runnable event, or kTimeInfinity when empty.
  Time next_time() {
    skip_cancelled();
    return heap_.empty() ? kTimeInfinity : heap_.top().at;
  }

  struct Popped {
    Time at;
    EventFn fn;
  };

  /// Pops and returns the next runnable event. Precondition: !empty().
  Popped pop() {
    skip_cancelled();
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    return Popped{top.at, std::move(top.fn)};
  }

 private:
  struct Entry {
    Time at;
    EventId id;
    EventFn fn;
    bool operator>(const Entry& o) const {
      return at != o.at ? at > o.at : id > o.id;
    }
  };

  void skip_cancelled() {
    while (!heap_.empty()) {
      auto it = cancelled_.find(heap_.top().id);
      if (it == cancelled_.end()) return;
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 0;
};

}  // namespace pdq::sim
