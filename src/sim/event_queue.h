// A deterministic discrete-event queue.
//
// Events are (time, virtual-insertion-time, sequence) keys in an implicit
// 4-ary min-heap. Ties between events due at the same instant break on
// the *virtual insertion time* first, then on the monotonically
// increasing sequence number, so two runs with the same inputs always
// execute events in the same order. For plain schedule() calls the
// virtual time is the caller's clock at scheduling, which makes the
// ordering identical to pure insertion order; schedule_as_if() lets an
// event-coalescing caller (node.cc) stamp the instant at which the
// replaced event chain *would* have scheduled the event, preserving the
// chain's tie order while eliding its intermediate events.
//
// Heap entries are 32-byte (time, vtime, seq, slot) PODs — the callable
// itself lives in a slab of recycled slots, so sift operations never
// move callables and scheduling never allocates once the slab has grown
// to the simulation's concurrency high-water mark.
//
// Cancellation is O(1) and exact: an EventId encodes (slot, generation),
// so cancel() can tell a live event from one that already ran (the slot's
// generation has moved on) and destroy the callable immediately. The
// entry left in the heap is a tombstone skipped when it reaches the top.
// pending() counts exactly the events that will still run — cancelled
// tombstones are excluded, which run()/empty() rely on.
//
// Ownership: the queue owns every scheduled EventFn until it is popped
// (moved out to the caller) or cancelled (destroyed on the spot). Units:
// event times are absolute integer nanoseconds (sim::Time).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/inline_function.h"
#include "sim/time.h"

namespace pdq::sim {

using EventId = std::uint64_t;

/// Captures up to this many bytes are stored inline (no heap allocation).
inline constexpr std::size_t kEventCaptureBytes = 48;
using EventFn = InlineFunction<kEventCaptureBytes>;

class EventQueue {
 public:
  /// Schedules `fn` to run at absolute time `at`. Returns an id usable
  /// with cancel().
  EventId schedule(Time at, EventFn fn) {
    return schedule_as_if(at, 0, std::move(fn));
  }

  /// Schedules `fn` at `at` with tie-break key `vtime` (<= at): among
  /// events due at the same instant, smaller vtime runs first, then
  /// insertion order. Callers pass their current clock (Simulator) or the
  /// instant an elided event chain would have scheduled this (node.cc).
  EventId schedule_as_if(Time at, Time vtime, EventFn fn) {
    return schedule_with_seq(at, vtime, next_seq_++, std::move(fn));
  }

  /// Claims the next sequence number without scheduling anything. An
  /// event-coalescing caller reserves at the point where the elided chain
  /// event would have been scheduled, then passes the reservation to
  /// schedule_with_seq() so the replacement event inherits the chain
  /// event's exact tie-break position.
  std::uint64_t reserve_seq() { return next_seq_++; }

  /// schedule_as_if() with a previously reserved sequence number.
  EventId schedule_with_seq(Time at, Time vtime, std::uint64_t seq,
                            EventFn fn) {
    assert(vtime <= at);
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    assert(s.state == SlotState::kFree);
    s.state = SlotState::kPending;
    s.fn = std::move(fn);
    heap_push(Entry{at, vtime, seq, slot});
    ++pending_;
    if (pending_ > peak_pending_) peak_pending_ = pending_;
    ++scheduled_total_;
    return make_id(s.gen, slot);
  }

  /// Cancels a pending event and destroys its callable immediately.
  /// Cancelling an id that already ran (or was already cancelled) is a
  /// harmless no-op: the id's generation no longer matches its slot.
  void cancel(EventId id) {
    const std::uint32_t slot = id_slot(id);
    if (slot >= slots_.size()) return;
    Slot& s = slots_[slot];
    if (s.gen != id_gen(id) || s.state != SlotState::kPending) return;
    s.state = SlotState::kCancelled;
    s.fn.reset();
    --pending_;
    ++cancelled_total_;
  }

  bool empty() const { return pending_ == 0; }

  /// Exactly the number of events that will still run; cancelled entries
  /// buried in the heap are not counted.
  std::size_t pending() const { return pending_; }

  /// Lifetime counters (operation-count metrics for the benches).
  std::uint64_t scheduled_total() const { return scheduled_total_; }
  std::uint64_t cancelled_total() const { return cancelled_total_; }

  /// High-water mark of pending() since construction (or the last
  /// relax_peak_pending()) — the event-queue memory peak, in events.
  std::size_t peak_pending() const { return peak_pending_; }
  /// Resets the high-water mark to the current pending count so one
  /// run's peak can be measured on a reused queue.
  void relax_peak_pending() { peak_pending_ = pending_; }

  /// Time of the next runnable event, or kTimeInfinity when empty.
  Time next_time() {
    skip_cancelled();
    return heap_.empty() ? kTimeInfinity : heap_.front().at;
  }

  struct Popped {
    Time at;
    Time vtime;
    std::uint64_t seq;
    EventFn fn;
  };

  /// Pops and returns the next runnable event. Precondition: !empty().
  Popped pop() {
    skip_cancelled();
    assert(!heap_.empty());
    const Entry top = heap_.front();
    heap_remove_top();
    Slot& s = slots_[top.slot];
    assert(s.state == SlotState::kPending);
    Popped out{top.at, top.vtime, top.seq, std::move(s.fn)};
    release_slot(top.slot);
    --pending_;
    return out;
  }

 private:
  /// Heap entries are POD keys; the callable stays put in its slot.
  struct Entry {
    Time at;
    Time vtime;  // virtual insertion time (tie-break before seq)
    std::uint64_t seq;
    std::uint32_t slot;
  };

  enum class SlotState : std::uint8_t { kFree, kPending, kCancelled };

  struct Slot {
    EventFn fn;
    std::uint32_t gen = 0;
    SlotState state = SlotState::kFree;
  };

  static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }
  static std::uint32_t id_slot(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  static std::uint32_t id_gen(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  static bool before(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.vtime != b.vtime) return a.vtime < b.vtime;
    return a.seq < b.seq;
  }

  void release_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.state = SlotState::kFree;
    ++s.gen;  // invalidates outstanding EventIds for this slot
    free_slots_.push_back(slot);
  }

  /// Drops cancelled tombstones off the top of the heap.
  void skip_cancelled() {
    while (!heap_.empty() &&
           slots_[heap_.front().slot].state == SlotState::kCancelled) {
      release_slot(heap_.front().slot);
      heap_remove_top();
    }
  }

  // ---- implicit 4-ary min-heap over heap_ ----

  void heap_push(Entry e) {
    heap_.push_back(e);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!before(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void heap_remove_top() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (heap_.size() <= 1) return;
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first_child = 4 * i + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t last_child =
          first_child + 4 < n ? first_child + 4 : n;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], heap_[i])) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t pending_ = 0;
  std::size_t peak_pending_ = 0;
  std::uint64_t scheduled_total_ = 0;
  std::uint64_t cancelled_total_ = 0;
};

}  // namespace pdq::sim
