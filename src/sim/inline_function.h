// A move-only, type-erased `void()` callable with small-buffer
// optimization — the event queue's replacement for std::function.
//
// Callables whose state fits `Capacity` bytes (and is nothrow-move-
// constructible) are stored inline; larger or throwing-move callables
// fall back to a single heap allocation. The hot-path simulator lambdas
// (a `this` pointer, a Port reference, a pooled PacketPtr) are all well
// under the default 48-byte budget, so scheduling an event allocates
// nothing.
//
// Ownership: the wrapper owns the callable; moving the wrapper relocates
// (inline case) or re-points (heap case) it. Invoking a moved-from or
// empty wrapper is undefined, exactly like std::function minus the
// bad_function_call ceremony the simulator never wants.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace pdq::sim {

template <std::size_t Capacity = 48>
class InlineFunction {
  // The heap fallback stores a pointer in the buffer.
  static_assert(Capacity >= sizeof(void*),
                "InlineFunction capacity below pointer size");

 public:
  static constexpr std::size_t kCapacity = Capacity;

  InlineFunction() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<void, D&>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFunction(InlineFunction&& o) noexcept {
    if (o.ops_ != nullptr) {
      ops_ = o.ops_;
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& o) noexcept {
    if (this != &o) {
      reset();
      if (o.ops_ != nullptr) {
        ops_ = o.ops_;
        ops_->relocate(buf_, o.buf_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True when a callable of type D would be stored inline (test hook).
  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= Capacity &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs into `dst` from `src`, then destroys `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*static_cast<D*>(s))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* s) noexcept { static_cast<D*>(s)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**static_cast<D**>(s))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* s) noexcept { delete *static_cast<D**>(s); },
  };

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace pdq::sim
