#include "sim/sharded.h"

#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <utility>

namespace pdq::sim {

namespace {

/// Returned for cross-shard schedules: the event is staged in a ring,
/// not yet in any queue, so there is nothing an id could cancel. Arrival
/// events are fire-and-forget (node.cc discards the id), so this never
/// reaches a cancel() that matters.
constexpr EventId kForeignEventId = ~0ull;

/// Executor event ids pack the owning shard in the top nibble
/// (shard + 1, so the all-zero id stays "nothing of ours"); the low 60
/// bits are the ShardQueue id. Caps shards at 14 and slot generations
/// at 2^28 — both far beyond what a run reaches (asserted).
constexpr int kShardIdShift = 60;
constexpr EventId kLocalIdMask = (1ull << kShardIdShift) - 1;

}  // namespace

struct ShardExecutor::Handoff {
  Time at = 0;
  Time vtime = 0;
  std::uint64_t seq = 0;  // raw (possibly provisional) at push; true after merge
  std::int32_t dst = 0;
  EventFn fn;
};

struct ShardExecutor::OpRec {
  enum Kind : std::uint8_t {
    kSchedule,          // local insert, new seq consumed (seq = provisional)
    kScheduleReserved,  // local insert with caller-supplied raw seq
    kReserve,           // seq consumed, handed to caller (keeper cell)
    kCancel,            // effective cancel of a live event
    kHandoff,           // ring push, new seq consumed (seq = provisional)
    kHandoffReserved,   // ring push with caller-supplied raw seq
  };
  Kind kind = kSchedule;
  std::uint64_t seq = 0;
  std::uint32_t slot = 0;  // queue slot (local kinds) or drained-ring index
  std::uint32_t gen = 0;
  std::uint64_t* keeper = nullptr;
};

struct ShardExecutor::ExecRec {
  Time at = 0;
  Time vtime = 0;
  std::uint64_t seq = 0;  // raw key as popped (true, or this window's prov)
  std::uint32_t op_begin = 0;
  std::uint32_t op_count = 0;
  std::uint32_t drops = 0;
  std::uint32_t dones = 0;
  bool stop = false;
};

struct ShardExecutor::MergedExec {
  Time at = 0;
  std::uint32_t drops = 0;
  std::uint32_t dones = 0;
  std::uint32_t scheds = 0;
  std::uint32_t cancels = 0;
  bool stop = false;
};

struct ShardExecutor::Shard {
  ShardQueue q;
  SpscRing<Handoff> ring;
  // Window-scoped logs: worker-written during the window, coordinator-
  // read at the barrier (the epoch mutex orders the two).
  std::vector<OpRec> ops;
  std::vector<ExecRec> execs;
  std::vector<Handoff> drained;  // coordinator-side ring contents
  std::unordered_map<std::uint64_t, std::uint64_t> prov_map;
  std::uint64_t prov_next = kProvisionalSeqBase;
  std::uint32_t handoffs = 0;  // pushed this window
  Time now = 0;
  Time vtime = 0;
  std::uint64_t seq = 0;
  std::size_t cur_exec = 0;
  std::size_t thread_hash = 0;
  bool executed_any = false;
};

struct ShardExecutor::SyncState {
  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::uint64_t epoch = 0;
  Time bound = 0;
  int done = 0;
  bool shutdown = false;
};

ShardExecutor::ShardExecutor(Simulator& sim, ShardPlan plan)
    : sim_(sim), plan_(std::move(plan)), sync_(new SyncState) {
  assert(plan_.shards >= 1 && plan_.shards <= 14);
  assert(plan_.lookahead >= 1);
  shards_.reserve(static_cast<std::size_t>(plan_.shards));
  for (int s = 0; s < plan_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  counters_.shards = static_cast<std::uint64_t>(plan_.shards);
  counters_.lookahead_ns = static_cast<std::uint64_t>(plan_.lookahead);
  sim_.install_shard_hooks(this);
  start_workers();
}

ShardExecutor::~ShardExecutor() {
  {
    std::lock_guard<std::mutex> lk(sync_->mu);
    sync_->shutdown = true;
  }
  sync_->cv_work.notify_all();
  for (std::thread& t : workers_) t.join();
  if (sim_.shard_hooks() == this) sim_.install_shard_hooks(nullptr);
  drain_queues();
}

void ShardExecutor::drain_queues() {
  for (auto& sh : shards_) {
    sh->q.clear();
    sh->drained.clear();
    Handoff h;
    while (sh->ring.pop(h)) {
    }
  }
}

void ShardExecutor::expect_flow_completions(std::uint64_t n) {
  expect_set_ = true;
  expect_flows_ = n;
}

void ShardExecutor::note_flow_done() {
  const int ctx = tls_shard_;
  assert(ctx >= 0 && "flow completions only fire inside events");
  Shard& sh = *shards_[ctx];
  ++sh.execs[sh.cur_exec].dones;
}

std::uint64_t ShardExecutor::flows_remaining() const {
  return expect_flows_ - done_committed_;
}

std::size_t ShardExecutor::peak_pending() const {
  std::size_t sum = 0;
  for (const auto& sh : shards_) sum += sh->q.peak_pending();
  return sum;
}

std::size_t ShardExecutor::pending() const {
  std::size_t sum = 0;
  for (const auto& sh : shards_) sum += sh->q.pending();
  return sum;
}

int ShardExecutor::context_shard() const { return tls_shard_; }

int ShardExecutor::resolve_target_shard() const {
  const std::int32_t node = Simulator::current_target_node();
  if (node >= 0 &&
      static_cast<std::size_t>(node) < plan_.node_shard.size()) {
    return plan_.node_shard[static_cast<std::size_t>(node)];
  }
  const int ctx = tls_shard_;
  return ctx >= 0 ? ctx : 0;
}

EventId ShardExecutor::wrap_id(int shard,
                               ShardQueue::ScheduledRef ref) const {
  assert((ref.id >> kShardIdShift) == 0 && "slot generation overflow");
  return (static_cast<EventId>(shard + 1) << kShardIdShift) | ref.id;
}

Time ShardExecutor::now() const {
  const int ctx = tls_shard_;
  return ctx >= 0 ? shards_[ctx]->now : end_now_;
}

Time ShardExecutor::current_vtime() const {
  const int ctx = tls_shard_;
  return ctx >= 0 ? shards_[ctx]->vtime : 0;
}

std::uint64_t ShardExecutor::current_seq() const {
  const int ctx = tls_shard_;
  return ctx >= 0 ? shards_[ctx]->seq : 0;
}

EventId ShardExecutor::schedule(Time at, Time vtime, EventFn fn) {
  const int ctx = tls_shard_;
  const int dst = resolve_target_shard();
  if (ctx < 0) {
    // Setup / between windows: the coordinator inserts directly in true
    // sequential space (no other thread is touching the queues).
    const std::uint64_t seq = true_next_++;
    ++sched_committed_;
    return wrap_id(dst,
                   shards_[dst]->q.schedule(at, vtime, seq, std::move(fn)));
  }
  Shard& sh = *shards_[ctx];
  const std::uint64_t prov = sh.prov_next++;
  if (dst == ctx) {
    const auto ref = sh.q.schedule(at, vtime, prov, std::move(fn));
    sh.ops.push_back({OpRec::kSchedule, prov, ref.slot, ref.gen, nullptr});
    return wrap_id(ctx, ref);
  }
  assert(at >= window_bound_ &&
         "cross-shard event inside its own window: lookahead violated");
  sh.ring.push(Handoff{at, vtime, prov, dst, std::move(fn)});
  sh.ops.push_back({OpRec::kHandoff, prov, sh.handoffs++, 0, nullptr});
  return kForeignEventId;
}

EventId ShardExecutor::schedule_reserved(Time at, Time vtime,
                                         std::uint64_t seq, EventFn fn) {
  const int ctx = tls_shard_;
  const int dst = resolve_target_shard();
  if (ctx < 0) {
    assert(seq < kProvisionalSeqBase);
    ++sched_committed_;
    return wrap_id(dst,
                   shards_[dst]->q.schedule(at, vtime, seq, std::move(fn)));
  }
  Shard& sh = *shards_[ctx];
  if (dst == ctx) {
    const auto ref = sh.q.schedule(at, vtime, seq, std::move(fn));
    sh.ops.push_back(
        {OpRec::kScheduleReserved, seq, ref.slot, ref.gen, nullptr});
    return wrap_id(ctx, ref);
  }
  assert(at >= window_bound_ &&
         "cross-shard event inside its own window: lookahead violated");
  sh.ring.push(Handoff{at, vtime, seq, dst, std::move(fn)});
  sh.ops.push_back({OpRec::kHandoffReserved, seq, sh.handoffs++, 0, nullptr});
  return kForeignEventId;
}

std::uint64_t ShardExecutor::reserve(std::uint64_t* keeper) {
  const int ctx = tls_shard_;
  if (ctx < 0) return true_next_++;
  Shard& sh = *shards_[ctx];
  const std::uint64_t prov = sh.prov_next++;
  sh.ops.push_back({OpRec::kReserve, prov, 0, 0, keeper});
  return prov;
}

void ShardExecutor::cancel(EventId id) {
  if (id == kForeignEventId) return;
  const std::uint64_t nib = id >> kShardIdShift;
  if (nib == 0) return;  // default-initialized id: nothing of ours
  const int s = static_cast<int>(nib) - 1;
  assert(s >= 0 && s < plan_.shards);
  const int ctx = tls_shard_;
  assert((ctx < 0 || ctx == s) &&
         "agents may only cancel events on their own shard");
  Shard& sh = *shards_[static_cast<std::size_t>(s)];
  if (!sh.q.cancel(id & kLocalIdMask)) return;
  if (ctx >= 0) {
    sh.ops.push_back({OpRec::kCancel, 0, 0, 0, nullptr});
  } else {
    ++cancel_committed_;
  }
}

void ShardExecutor::stop() {
  const int ctx = tls_shard_;
  assert(ctx >= 0 &&
         "stop() outside an event is unsupported under sharded execution");
  Shard& sh = *shards_[ctx];
  sh.execs[sh.cur_exec].stop = true;
}

void ShardExecutor::note_queue_drop() {
  const int ctx = tls_shard_;
  assert(ctx >= 0 && "queue drops only happen inside events");
  Shard& sh = *shards_[ctx];
  ++sh.execs[sh.cur_exec].drops;
}

void ShardExecutor::start_workers() {
  workers_.reserve(static_cast<std::size_t>(plan_.shards));
  for (int s = 0; s < plan_.shards; ++s) {
    workers_.emplace_back([this, s] { worker_main(s); });
  }
}

void ShardExecutor::worker_main(int shard) {
  tls_shard_ = shard;
  std::shared_ptr<void> env;
  if (plan_.thread_env) env = plan_.thread_env(shard);
  std::uint64_t seen = 0;
  for (;;) {
    Time bound;
    {
      std::unique_lock<std::mutex> lk(sync_->mu);
      sync_->cv_work.wait(
          lk, [&] { return sync_->shutdown || sync_->epoch != seen; });
      if (sync_->shutdown) return;
      seen = sync_->epoch;
      bound = sync_->bound;
    }
    run_window(*shards_[static_cast<std::size_t>(shard)], bound);
    {
      std::lock_guard<std::mutex> lk(sync_->mu);
      if (++sync_->done == plan_.shards) sync_->cv_done.notify_one();
    }
  }
}

void ShardExecutor::run_window(Shard& sh, Time bound) {
  sh.ops.clear();
  sh.execs.clear();
  sh.handoffs = 0;
  sh.prov_next = kProvisionalSeqBase;
  sh.q.set_frontier(bound);
  while (sh.q.has_runnable_before(bound)) {
    auto ev = sh.q.pop();
    sh.now = ev.at;
    sh.vtime = ev.vtime;
    sh.seq = ev.seq;
    sh.cur_exec = sh.execs.size();
    ExecRec rec;
    rec.at = ev.at;
    rec.vtime = ev.vtime;
    rec.seq = ev.seq;
    rec.op_begin = static_cast<std::uint32_t>(sh.ops.size());
    sh.execs.push_back(rec);
    ev.fn();
    ExecRec& r = sh.execs[sh.cur_exec];
    r.op_count = static_cast<std::uint32_t>(sh.ops.size()) - r.op_begin;
  }
  if (!sh.execs.empty() && !sh.executed_any) {
    sh.executed_any = true;
    sh.thread_hash =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
  }
}

void ShardExecutor::dispatch_window(Time bound) {
  window_bound_ = bound;
  {
    std::lock_guard<std::mutex> lk(sync_->mu);
    ++sync_->epoch;
    sync_->bound = bound;
    sync_->done = 0;
  }
  sync_->cv_work.notify_all();
  {
    std::unique_lock<std::mutex> lk(sync_->mu);
    sync_->cv_done.wait(lk, [&] { return sync_->done == plan_.shards; });
  }
}

std::uint64_t ShardExecutor::run(Time until) {
  const std::uint64_t before = exec_committed_;
  for (;;) {
    Time m = kTimeInfinity;
    for (const auto& sh : shards_) {
      const Time t = sh->q.next_time_lower_bound();
      if (t < m) m = t;
    }
    if (m == kTimeInfinity || m > until) {
      // Drained or horizon-capped: the sequential run advances the
      // clock to `until` when it is finite.
      if (until != kTimeInfinity && end_now_ < until) end_now_ = until;
      break;
    }
    Time bound = m + plan_.lookahead;
    // Let events at exactly `until` run (sequential breaks only when
    // next_time() > until), but nothing beyond.
    if (until != kTimeInfinity && bound > until) bound = until + 1;
    dispatch_window(bound);
    ++counters_.sync_rounds;
    if (barrier(bound)) break;
  }
  std::unordered_set<std::size_t> distinct;
  for (const auto& sh : shards_) {
    if (sh->executed_any) distinct.insert(sh->thread_hash);
  }
  counters_.shard_threads = distinct.size();
  return exec_committed_ - before;
}

bool ShardExecutor::barrier(Time bound) {
  (void)bound;  // referenced only by the lookahead asserts
  const int num = plan_.shards;
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    sh.drained.clear();
    Handoff h;
    while (sh.ring.pop(h)) sh.drained.push_back(std::move(h));
    assert(sh.drained.size() == sh.handoffs);
    sh.prov_map.clear();
  }

  const auto resolve = [](Shard& sh, std::uint64_t raw) -> std::uint64_t {
    if (raw < kProvisionalSeqBase) return raw;
    const auto it = sh.prov_map.find(raw);
    assert(it != sh.prov_map.end() &&
           "provisional seq used before its creating op was merged");
    return it->second;
  };

  // K-way merge replay: consume execs in exact sequential key order,
  // assigning the same dense true sequence numbers the single-threaded
  // engine would. A front exec's provisional seq is always resolvable —
  // its creating op lives in an earlier exec of the same shard (a
  // cross-shard child cannot run in its parent's window).
  merged_.clear();
  std::vector<std::size_t> cursor(static_cast<std::size_t>(num), 0);
  for (;;) {
    int best = -1;
    Time bat = 0;
    Time bvt = 0;
    std::uint64_t bseq = 0;
    for (int s = 0; s < num; ++s) {
      Shard& sh = *shards_[static_cast<std::size_t>(s)];
      if (cursor[static_cast<std::size_t>(s)] >= sh.execs.size()) continue;
      const ExecRec& e = sh.execs[cursor[static_cast<std::size_t>(s)]];
      const std::uint64_t tseq = resolve(sh, e.seq);
      const bool wins =
          best < 0 || e.at < bat ||
          (e.at == bat &&
           (e.vtime < bvt || (e.vtime == bvt && tseq < bseq)));
      if (wins) {
        best = s;
        bat = e.at;
        bvt = e.vtime;
        bseq = tseq;
      }
    }
    if (best < 0) break;
    Shard& sh = *shards_[static_cast<std::size_t>(best)];
    const ExecRec& e = sh.execs[cursor[static_cast<std::size_t>(best)]++];
    MergedExec me;
    me.at = e.at;
    me.drops = e.drops;
    me.dones = e.dones;
    me.stop = e.stop;
    for (std::uint32_t i = 0; i < e.op_count; ++i) {
      OpRec& op = sh.ops[e.op_begin + i];
      switch (op.kind) {
        case OpRec::kSchedule: {
          const std::uint64_t t = true_next_++;
          sh.prov_map.emplace(op.seq, t);
          sh.q.patch_seq(op.slot, op.gen, t);
          ++me.scheds;
          break;
        }
        case OpRec::kScheduleReserved: {
          sh.q.patch_seq(op.slot, op.gen, resolve(sh, op.seq));
          ++me.scheds;
          break;
        }
        case OpRec::kReserve: {
          const std::uint64_t t = true_next_++;
          sh.prov_map.emplace(op.seq, t);
          // Compare-by-value: a later reservation may have overwritten
          // the cell, in which case that op patches it instead.
          if (op.keeper != nullptr && *op.keeper == op.seq) *op.keeper = t;
          break;
        }
        case OpRec::kCancel:
          ++me.cancels;
          break;
        case OpRec::kHandoff: {
          const std::uint64_t t = true_next_++;
          sh.prov_map.emplace(op.seq, t);
          sh.drained[op.slot].seq = t;
          ++me.scheds;
          break;
        }
        case OpRec::kHandoffReserved: {
          sh.drained[op.slot].seq = resolve(sh, op.seq);
          ++me.scheds;
          break;
        }
      }
    }
    merged_.push_back(me);
  }

  // Stop detection: the first exec (in sequential order) that either
  // called stop() or completed the last expected flow ends the run.
  // Everything after it in the merged order is overshoot the sequential
  // engine never ran — excluded from every committed counter.
  bool stop = false;
  std::size_t commit_n = merged_.size();
  std::uint64_t dones = done_committed_;
  for (std::size_t i = 0; i < merged_.size(); ++i) {
    dones += merged_[i].dones;
    if (merged_[i].stop ||
        (expect_set_ && merged_[i].dones > 0 && dones >= expect_flows_)) {
      stop = true;
      commit_n = i + 1;
      break;
    }
  }
  for (std::size_t i = 0; i < commit_n; ++i) {
    const MergedExec& me = merged_[i];
    ++exec_committed_;
    sched_committed_ += me.scheds;
    cancel_committed_ += me.cancels;
    drops_committed_ += me.drops;
    done_committed_ += me.dones;
    end_now_ = me.at;
  }
  if (stop) return true;

  // Ingest cross-shard handoffs — every record is now in true
  // sequential space, and its lookahead-guaranteed arrival time is at
  // or beyond every shard's frontier.
  for (auto& shp : shards_) {
    for (Handoff& h : shp->drained) {
      assert(h.seq < kProvisionalSeqBase);
      assert(h.at >= bound);
      ++counters_.ring_handoffs;
      shards_[static_cast<std::size_t>(h.dst)]->q.schedule(
          h.at, h.vtime, h.seq, std::move(h.fn));
    }
    shp->drained.clear();
  }
  return false;
}

}  // namespace pdq::sim
