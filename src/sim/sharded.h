// Sharded conservative-parallel execution of one simulation.
//
// The topology is partitioned into K shards (net/shard_plan.h computes
// the cut), each with its own ShardQueue and worker thread. Execution
// proceeds in windows: the coordinator computes m = min next-event time
// across shards and lets every shard run its events in [m, m + L) in
// parallel, where the lookahead L is the minimum latency of any
// cross-shard link. A packet crossing the cut arrives no earlier than
// its send time plus that link's serialization + propagation delay, so
// nothing scheduled during a window can land inside it — shards are
// independent within a window by construction. Cross-shard arrivals
// travel as records in per-shard SPSC rings, drained by the coordinator
// at the window barrier.
//
// Bit-identity with the single-queue engine comes from sequence-number
// resequencing at each barrier. During a window a shard stamps
// *provisional* sequence numbers (kProvisionalSeqBase + n) on every
// seq-consuming operation and logs the operation. At the barrier the
// coordinator replays all shards' logs in exact (time, vtime, seq) merge
// order — the order the single-threaded engine would have interleaved
// them — assigning the same dense true sequence numbers it would have,
// and patches every place a provisional number landed: pending queue
// slots, caller-held reservations (Port::tx_seq_, dormant ticks), and
// ring records. Between windows every persisted key is therefore in true
// sequential space, so the next window's heap order, and every
// coalescing comparison against current_event_seq(), match the
// single-queue run exactly. In-window comparisons are safe unpatched:
// provisional numbers exceed all true ones — exactly the sequential
// order, since in-window ops sequentially follow everything already
// numbered — and same-shard provisionals are assigned in execution
// order.
//
// tests/sim_sharded_determinism_test.cc holds all of this to the
// bit-identical claim across stacks x topologies x shard counts x seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/shard_queue.h"
#include "sim/simulator.h"
#include "sim/spsc_ring.h"
#include "sim/time.h"

namespace pdq::sim {

/// How to split the simulation. Computed from the topology graph by
/// net/shard_plan.h; this layer only needs the node->shard map and the
/// proven-safe lookahead.
struct ShardPlan {
  int shards = 1;
  /// Conservative sync lookahead: min over cross-shard links of
  /// (propagation + minimum-packet serialization) in ns. Must be >= 1;
  /// the window bound is min_next_event + lookahead.
  Time lookahead = 1;
  /// node id -> owning shard, for every node in the topology.
  std::vector<std::int32_t> node_shard;
  /// Per-worker-thread environment hook, called once on each worker at
  /// spawn (shard index argument); the returned token lives for the
  /// thread's lifetime. The harness uses it to install a per-shard
  /// thread-local PacketPool.
  std::function<std::shared_ptr<void>(int)> thread_env;
};

/// Engine-cost counters surfaced through RunResult::engine.
struct ShardCounters {
  std::uint64_t sync_rounds = 0;    // conservative windows dispatched
  std::uint64_t ring_handoffs = 0;  // cross-shard records committed
  std::uint64_t lookahead_ns = 0;
  std::uint64_t shards = 1;
  /// Distinct worker threads that executed at least one event — the
  /// CI-safe proof of parallel execution (never wall time).
  std::uint64_t shard_threads = 0;
};

class ShardExecutor final : public ShardHooks {
 public:
  /// Installs itself as `sim`'s backend. `sim` must be idle (nothing
  /// scheduled yet); the executor owns all event state from here on.
  ShardExecutor(Simulator& sim, ShardPlan plan);
  /// Uninstalls, shuts worker threads down and destroys every still-
  /// pending event closure (on the caller's thread).
  ~ShardExecutor() override;

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  // ---- harness API ----

  /// Declares how many flow completions end the run: the sharded
  /// equivalent of the harness's "--remaining == 0 -> stop()" closure.
  /// The stop point — the key of the event in which the last completion
  /// fires — is interleaving-independent, so the barrier can truncate
  /// every counter to exactly what the sequential run would report.
  void expect_flow_completions(std::uint64_t n);
  /// Called from a flow's on_done callback (worker context).
  void note_flow_done();
  std::uint64_t flows_remaining() const;

  /// Queue-admission drops attributed to events at or before the stop
  /// point (matches the sequential run's port-counter total).
  std::uint64_t committed_queue_drops() const { return drops_committed_; }

  const ShardCounters& counters() const { return counters_; }
  /// Sum of per-shard queue memory peaks (execution-strategy-scoped:
  /// not comparable across shard counts; see docs/architecture.md).
  std::size_t peak_pending() const override;

  /// Destroys every still-pending event closure. Call before tearing
  /// down the packet pools the closures hold packets from; the
  /// destructor also does this.
  void drain_queues();

  // ---- ShardHooks (called through Simulator) ----
  Time now() const override;
  Time current_vtime() const override;
  std::uint64_t current_seq() const override;
  EventId schedule(Time at, Time vtime, EventFn fn) override;
  EventId schedule_reserved(Time at, Time vtime, std::uint64_t seq,
                            EventFn fn) override;
  std::uint64_t reserve(std::uint64_t* keeper) override;
  void cancel(EventId id) override;
  void stop() override;
  void note_queue_drop() override;
  std::uint64_t run(Time until) override;
  Time end_now() const override { return end_now_; }
  std::size_t pending() const override;
  std::uint64_t scheduled_total() const override { return sched_committed_; }
  std::uint64_t cancelled_total() const override { return cancel_committed_; }

 private:
  struct Shard;
  struct OpRec;
  struct ExecRec;
  struct Handoff;
  struct MergedExec;

  int context_shard() const;
  int resolve_target_shard() const;
  EventId wrap_id(int shard, ShardQueue::ScheduledRef ref) const;
  void start_workers();
  void worker_main(int shard);
  void run_window(Shard& sh, Time bound);
  void dispatch_window(Time bound);
  /// Merge-replays the window's op logs in sequential key order,
  /// relabels provisional seqs, detects the stop point, commits
  /// counters and ingests ring handoffs. Returns true when the run
  /// stops inside this window.
  bool barrier(Time bound);

  Simulator& sim_;
  ShardPlan plan_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ShardCounters counters_;

  // Sequential-space sequence counter: evolves exactly as the single
  // queue's next_seq_ would.
  std::uint64_t true_next_ = 0;

  // Committed (stop-truncated) totals, updated only at barriers or
  // during setup — the values the sequential engine would report.
  std::uint64_t exec_committed_ = 0;
  std::uint64_t sched_committed_ = 0;
  std::uint64_t cancel_committed_ = 0;
  std::uint64_t drops_committed_ = 0;
  std::uint64_t done_committed_ = 0;
  Time end_now_ = 0;

  bool expect_set_ = false;
  std::uint64_t expect_flows_ = 0;

  // Worker pool + epoch barrier.
  std::vector<std::thread> workers_;
  struct SyncState;
  std::unique_ptr<SyncState> sync_;
  /// Bound of the in-flight window — the lookahead-violation assert's
  /// reference point. Written by the coordinator before dispatch (the
  /// epoch mutex publishes it to workers).
  Time window_bound_ = 0;

  // Merge scratch (coordinator only).
  std::vector<MergedExec> merged_;

  inline static thread_local int tls_shard_ = -1;
};

}  // namespace pdq::sim
