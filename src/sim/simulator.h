// The simulation executive: owns the clock and the event queue.
//
// Ownership: one Simulator per experiment; every other component holds a
// non-owning Simulator& and must not outlive it. Scheduled callbacks are
// moved into the queue and destroyed after they run (or are cancelled).
// Units: all times are integer nanoseconds (sim::Time); `delay` is relative
// to now(), `at` is absolute simulation time.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace pdq::sim {

class Simulator {
 public:
  Time now() const { return now_; }

  /// Schedules `fn` at `delay` nanoseconds from now (delay >= 0).
  EventId schedule_in(Time delay, EventFn fn) {
    assert(delay >= 0);
    return queue_.schedule(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute time `at` (>= now).
  EventId schedule_at(Time at, EventFn fn) {
    assert(at >= now_);
    return queue_.schedule(at, std::move(fn));
  }

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the queue drains or the clock passes `until`.
  /// Returns the number of events executed.
  std::uint64_t run(Time until = kTimeInfinity) {
    std::uint64_t executed = 0;
    while (!stopped_ && !queue_.empty()) {
      if (queue_.next_time() > until) break;
      auto ev = queue_.pop();
      assert(ev.at >= now_);
      now_ = ev.at;
      ev.fn();
      ++executed;
    }
    if (until != kTimeInfinity && now_ < until) now_ = until;
    stopped_ = false;
    events_executed_ += executed;
    return executed;
  }

  /// Stops the current run() after the in-flight event returns.
  void stop() { stopped_ = true; }

  bool idle() const { return queue_.empty(); }
  /// Exactly the number of events still scheduled to run (cancelled
  /// entries excluded).
  std::size_t pending_events() const { return queue_.pending(); }

  // Lifetime operation counters — the perf currency of the benches on
  // single-core CI (no wall-time assertions anywhere).
  std::uint64_t events_executed() const { return events_executed_; }
  std::uint64_t events_scheduled() const { return queue_.scheduled_total(); }
  std::uint64_t events_cancelled() const { return queue_.cancelled_total(); }

 private:
  EventQueue queue_;
  Time now_ = 0;
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
};

}  // namespace pdq::sim
