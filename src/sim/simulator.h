// The simulation executive: owns the clock and the event queue.
//
// Ownership: one Simulator per experiment; every other component holds a
// non-owning Simulator& and must not outlive it. Scheduled callbacks are
// moved into the queue and destroyed after they run (or are cancelled).
// Units: all times are integer nanoseconds (sim::Time); `delay` is relative
// to now(), `at` is absolute simulation time.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace pdq::sim {

class Simulator {
 public:
  Time now() const { return now_; }

  /// Schedules `fn` at `delay` nanoseconds from now (delay >= 0).
  EventId schedule_in(Time delay, EventFn fn) {
    assert(delay >= 0);
    return queue_.schedule_as_if(now_ + delay, now_, std::move(fn));
  }

  /// Schedules `fn` at absolute time `at` (>= now).
  EventId schedule_at(Time at, EventFn fn) {
    assert(at >= now_);
    return queue_.schedule_as_if(at, now_, std::move(fn));
  }

  /// Schedules `fn` at `at`, ordered among same-instant events as if it
  /// had been scheduled at time `vtime` (<= at; may lie in the past).
  /// Used by event coalescing to preserve the tie order of the event
  /// chain it elides (see event_queue.h).
  EventId schedule_at_as_if(Time at, Time vtime, EventFn fn) {
    assert(at >= now_);
    return queue_.schedule_as_if(at, vtime, std::move(fn));
  }

  /// Claims the next event sequence number (see EventQueue::reserve_seq).
  std::uint64_t reserve_event_order() { return queue_.reserve_seq(); }

  /// Tie-break key of the event currently executing — lets coalescing
  /// callers decide whether an elided chain event with a reserved key
  /// would already have run at this instant.
  Time current_event_vtime() const { return cur_vtime_; }
  std::uint64_t current_event_seq() const { return cur_seq_; }

  /// schedule_at_as_if() with a reserved sequence number: the event takes
  /// the exact tie-break position of the chain event reserved for.
  EventId schedule_at_reserved(Time at, Time vtime, std::uint64_t seq,
                               EventFn fn) {
    assert(at >= now_);
    return queue_.schedule_with_seq(at, vtime, seq, std::move(fn));
  }

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the queue drains, the clock passes `until`, or stop()
  /// is called. Returns the number of events executed.
  std::uint64_t run(Time until = kTimeInfinity) {
    std::uint64_t executed = 0;
    while (!stopped_ && !queue_.empty()) {
      if (queue_.next_time() > until) break;
      auto ev = queue_.pop();
      assert(ev.at >= now_);
      now_ = ev.at;
      cur_vtime_ = ev.vtime;
      cur_seq_ = ev.seq;
      ev.fn();
      ++executed;
    }
    // A stop() mid-run freezes the clock where the run actually ended;
    // only a queue drain or horizon cap advances it to `until`.
    if (!stopped_ && until != kTimeInfinity && now_ < until) now_ = until;
    stopped_ = false;
    events_executed_ += executed;
    return executed;
  }

  /// Stops the current run() after the in-flight event returns.
  void stop() { stopped_ = true; }

  bool idle() const { return queue_.empty(); }
  /// Exactly the number of events still scheduled to run (cancelled
  /// entries excluded).
  std::size_t pending_events() const { return queue_.pending(); }

  // Lifetime operation counters — the perf currency of the benches on
  // single-core CI (no wall-time assertions anywhere).
  std::uint64_t events_executed() const { return events_executed_; }
  std::uint64_t events_scheduled() const { return queue_.scheduled_total(); }
  std::uint64_t events_cancelled() const { return queue_.cancelled_total(); }
  /// High-water mark of pending_events() (see EventQueue::peak_pending).
  std::size_t peak_pending_events() const { return queue_.peak_pending(); }
  void relax_peak_pending() { queue_.relax_peak_pending(); }

 private:
  EventQueue queue_;
  Time now_ = 0;
  Time cur_vtime_ = 0;
  std::uint64_t cur_seq_ = 0;
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
};

}  // namespace pdq::sim
