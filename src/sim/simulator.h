// The simulation executive: owns the clock and the event queue.
//
// Ownership: one Simulator per experiment; every other component holds a
// non-owning Simulator& and must not outlive it. Scheduled callbacks are
// moved into the queue and destroyed after they run (or are cancelled).
// Units: all times are integer nanoseconds (sim::Time); `delay` is relative
// to now(), `at` is absolute simulation time.
//
// Sharded execution (sim/sharded.h) installs a ShardHooks backend; every
// public operation then routes to the shard that owns the calling context
// (or the coordinator between windows). With no hooks installed — the
// default — the single queue below runs exactly as before; the sharded
// engine is bit-identical to it by construction, and the determinism wall
// (tests/sim_sharded_determinism_test.cc) holds both to that claim.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace pdq::sim {

/// Backend interface the sharded executor implements. Each method must
/// resolve the calling context itself: a shard worker thread mid-window,
/// or the quiesced coordinator between windows / during setup.
class ShardHooks {
 public:
  virtual ~ShardHooks() = default;
  virtual Time now() const = 0;
  virtual Time current_vtime() const = 0;
  virtual std::uint64_t current_seq() const = 0;
  virtual EventId schedule(Time at, Time vtime, EventFn fn) = 0;
  virtual EventId schedule_reserved(Time at, Time vtime, std::uint64_t seq,
                                    EventFn fn) = 0;
  /// `keeper`, when non-null, is the caller's storage cell for the
  /// returned reservation; the barrier relabels it in place when the
  /// reservation was provisional (see sim/sharded.h).
  virtual std::uint64_t reserve(std::uint64_t* keeper) = 0;
  virtual void cancel(EventId id) = 0;
  virtual void stop() = 0;
  virtual void note_queue_drop() = 0;
  virtual std::uint64_t run(Time until) = 0;
  virtual Time end_now() const = 0;
  virtual std::size_t pending() const = 0;
  virtual std::uint64_t scheduled_total() const = 0;
  virtual std::uint64_t cancelled_total() const = 0;
  virtual std::size_t peak_pending() const = 0;
};

class Simulator {
 public:
  Time now() const { return shard_ ? shard_->now() : now_; }

  /// Schedules `fn` at `delay` nanoseconds from now (delay >= 0).
  EventId schedule_in(Time delay, EventFn fn) {
    assert(delay >= 0);
    if (shard_) {
      const Time t = shard_->now();
      return shard_->schedule(t + delay, t, std::move(fn));
    }
    return queue_.schedule_as_if(now_ + delay, now_, std::move(fn));
  }

  /// Schedules `fn` at absolute time `at` (>= now).
  EventId schedule_at(Time at, EventFn fn) {
    if (shard_) {
      const Time t = shard_->now();
      assert(at >= t);
      return shard_->schedule(at, t, std::move(fn));
    }
    assert(at >= now_);
    return queue_.schedule_as_if(at, now_, std::move(fn));
  }

  /// Schedules `fn` at `at`, ordered among same-instant events as if it
  /// had been scheduled at time `vtime` (<= at; may lie in the past).
  /// Used by event coalescing to preserve the tie order of the event
  /// chain it elides (see event_queue.h).
  EventId schedule_at_as_if(Time at, Time vtime, EventFn fn) {
    if (shard_) {
      assert(at >= shard_->now());
      return shard_->schedule(at, vtime, std::move(fn));
    }
    assert(at >= now_);
    return queue_.schedule_as_if(at, vtime, std::move(fn));
  }

  /// Claims the next event sequence number (see EventQueue::reserve_seq).
  /// Callers that *store* the reservation across events must pass the
  /// address of that storage: under sharded execution the number handed
  /// out mid-window is provisional, and the barrier rewrites the cell to
  /// the true sequential value. Callers that consume the reservation
  /// before returning to the event loop may pass nothing.
  std::uint64_t reserve_event_order(std::uint64_t* keeper = nullptr) {
    if (shard_) return shard_->reserve(keeper);
    return queue_.reserve_seq();
  }

  /// Tie-break key of the event currently executing — lets coalescing
  /// callers decide whether an elided chain event with a reserved key
  /// would already have run at this instant.
  Time current_event_vtime() const {
    return shard_ ? shard_->current_vtime() : cur_vtime_;
  }
  std::uint64_t current_event_seq() const {
    return shard_ ? shard_->current_seq() : cur_seq_;
  }

  /// schedule_at_as_if() with a reserved sequence number: the event takes
  /// the exact tie-break position of the chain event reserved for.
  EventId schedule_at_reserved(Time at, Time vtime, std::uint64_t seq,
                               EventFn fn) {
    if (shard_) {
      assert(at >= shard_->now());
      return shard_->schedule_reserved(at, vtime, seq, std::move(fn));
    }
    assert(at >= now_);
    return queue_.schedule_with_seq(at, vtime, seq, std::move(fn));
  }

  void cancel(EventId id) {
    if (shard_) {
      shard_->cancel(id);
      return;
    }
    queue_.cancel(id);
  }

  /// Runs until the queue drains, the clock passes `until`, or stop()
  /// is called. Returns the number of events executed.
  std::uint64_t run(Time until = kTimeInfinity) {
    if (shard_) {
      const std::uint64_t executed = shard_->run(until);
      now_ = shard_->end_now();
      events_executed_ += executed;
      return executed;
    }
    std::uint64_t executed = 0;
    while (!stopped_ && !queue_.empty()) {
      if (queue_.next_time() > until) break;
      auto ev = queue_.pop();
      assert(ev.at >= now_);
      now_ = ev.at;
      cur_vtime_ = ev.vtime;
      cur_seq_ = ev.seq;
      ev.fn();
      ++executed;
    }
    // A stop() mid-run freezes the clock where the run actually ended;
    // only a queue drain or horizon cap advances it to `until`.
    if (!stopped_ && until != kTimeInfinity && now_ < until) now_ = until;
    stopped_ = false;
    events_executed_ += executed;
    return executed;
  }

  /// Stops the current run() after the in-flight event returns.
  void stop() {
    if (shard_) {
      shard_->stop();
      return;
    }
    stopped_ = true;
  }

  /// Attributes a queue-admission drop to the currently executing event
  /// (no-op single-shard; the sharded engine needs per-event attribution
  /// to truncate the drop counter exactly at the stop point).
  void note_queue_drop() {
    if (shard_) shard_->note_queue_drop();
  }

  bool idle() const { return pending_events() == 0; }
  /// Exactly the number of events still scheduled to run (cancelled
  /// entries excluded).
  std::size_t pending_events() const {
    return shard_ ? shard_->pending() : queue_.pending();
  }

  // Lifetime operation counters — the perf currency of the benches on
  // single-core CI (no wall-time assertions anywhere).
  std::uint64_t events_executed() const { return events_executed_; }
  std::uint64_t events_scheduled() const {
    return shard_ ? shard_->scheduled_total() : queue_.scheduled_total();
  }
  std::uint64_t events_cancelled() const {
    return shard_ ? shard_->cancelled_total() : queue_.cancelled_total();
  }
  /// High-water mark of pending_events() (see EventQueue::peak_pending).
  std::size_t peak_pending_events() const {
    return shard_ ? shard_->peak_pending() : queue_.peak_pending();
  }
  void relax_peak_pending() {
    if (!shard_) queue_.relax_peak_pending();
  }

  /// Installs / removes the sharded backend. Must happen while idle
  /// (before any scheduling, or after the backend has drained its
  /// queues); the harness brackets a sharded run with these.
  void install_shard_hooks(ShardHooks* hooks) {
    assert(hooks == nullptr || queue_.empty());
    shard_ = hooks;
  }
  ShardHooks* shard_hooks() const { return shard_; }

  /// Scopes the node whose state subsequently scheduled events touch.
  /// Inert single-shard; the sharded engine routes setup-time and
  /// cross-node schedules to the owning shard's queue by reading
  /// current_target_node() (see sim/sharded.h). Thread-local, so shard
  /// workers can nest their own guards without racing.
  class ScopedShardTarget {
   public:
    explicit ScopedShardTarget(std::int32_t node) : prev_(target_node_) {
      target_node_ = node;
    }
    ~ScopedShardTarget() { target_node_ = prev_; }
    ScopedShardTarget(const ScopedShardTarget&) = delete;
    ScopedShardTarget& operator=(const ScopedShardTarget&) = delete;

   private:
    std::int32_t prev_;
  };
  static std::int32_t current_target_node() { return target_node_; }

 private:
  inline static thread_local std::int32_t target_node_ = -1;

  EventQueue queue_;
  ShardHooks* shard_ = nullptr;
  Time now_ = 0;
  Time cur_vtime_ = 0;
  std::uint64_t cur_seq_ = 0;
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
};

}  // namespace pdq::sim
