// SpscRing: a growable single-producer/single-consumer handoff ring.
//
// The sharded engine (sim/sharded.h) gives every shard one outbound ring
// carrying cross-shard event handoffs: the shard's worker thread pushes
// during a window, the coordinator drains at the barrier. Push and pop
// are wait-free; capacity grows by linking a larger segment, so a burst
// of handoffs never blocks the producer (the DPDK-style dataplane shape
// from ROADMAP item 1, minus the fixed-size drop policy — simulation
// events must never be lost).
//
// Memory model: within one segment, `tail` is produced-side (release on
// push, acquire on pop) and `head` is consumer-side. When a segment
// fills, the producer allocates the next (double capacity), publishes it
// through `next` with release semantics, and never touches the old
// segment again; the consumer follows `next` once the old segment
// drains. Segments are reclaimed by the consumer as it leaves them.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace pdq::sim {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t initial_capacity = 64)
      : head_seg_(new Segment(round_up(initial_capacity))),
        tail_seg_(head_seg_) {}

  ~SpscRing() {
    // Single-threaded at destruction (threads joined): drain and free.
    T scratch;
    while (pop(scratch)) {
    }
    Segment* s = head_seg_;
    while (s != nullptr) {
      Segment* next = s->next.load(std::memory_order_relaxed);
      delete s;
      s = next;
    }
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Never fails: a full segment links a bigger successor.
  void push(T value) {
    Segment* s = tail_seg_;
    const std::size_t tail = s->tail.load(std::memory_order_relaxed);
    const std::size_t head = s->head.load(std::memory_order_acquire);
    if (tail - head == s->cap) {
      // Full: grow. The old segment is sealed (producer moves on).
      Segment* bigger = new Segment(s->cap * 2);
      bigger->buf[0] = std::move(value);
      bigger->tail.store(1, std::memory_order_relaxed);
      s->next.store(bigger, std::memory_order_release);
      tail_seg_ = bigger;
      ++size_pushed_;
      return;
    }
    s->buf[tail & (s->cap - 1)] = std::move(value);
    s->tail.store(tail + 1, std::memory_order_release);
    ++size_pushed_;
  }

  /// Consumer side. Returns false when empty.
  bool pop(T& out) {
    Segment* s = head_seg_;
    for (;;) {
      const std::size_t head = s->head.load(std::memory_order_relaxed);
      const std::size_t tail = s->tail.load(std::memory_order_acquire);
      if (head != tail) {
        out = std::move(s->buf[head & (s->cap - 1)]);
        s->head.store(head + 1, std::memory_order_release);
        return true;
      }
      // Segment drained; a sealed segment's successor takes over.
      Segment* next = s->next.load(std::memory_order_acquire);
      if (next == nullptr) return false;
      head_seg_ = next;
      delete s;
      s = next;
    }
  }

  /// Producer-side lifetime count of pushes (not a live size).
  std::size_t pushed() const { return size_pushed_; }

 private:
  struct Segment {
    explicit Segment(std::size_t c) : buf(c), cap(c) {}
    std::vector<T> buf;
    const std::size_t cap;
    std::atomic<std::size_t> head{0};  // consumer cursor
    std::atomic<std::size_t> tail{0};  // producer cursor
    std::atomic<Segment*> next{nullptr};
  };

  static std::size_t round_up(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 2 ? 2 : p;
  }

  Segment* head_seg_;  // consumer end
  Segment* tail_seg_;  // producer end
  std::size_t size_pushed_ = 0;
};

}  // namespace pdq::sim
