// TimingWheel: a hashed timing wheel front-end for far-future events.
//
// Periodic rate-controller grid ticks (PDQ's 2*RTT re-evaluation grid,
// RCP/D3 control intervals) schedule far ahead of the execution frontier
// and would otherwise churn the binary heap: O(log n) sift per tick for
// an event that stays buried for thousands of pops. The wheel buckets
// such events by coarse time slot — O(1) insert — and only hands them to
// the precise heap when the frontier approaches (flush_until), where the
// (time, vtime, seq) key takes over for exact ordering.
//
// The wheel therefore never needs to order events itself; it only
// guarantees it releases every event no later than the frontier that
// needs it. Entries past the wheel horizon go to an overflow list that
// migrates into buckets as the base advances.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace pdq::sim {

class TimingWheel {
 public:
  struct Entry {
    Time at = 0;
    std::uint32_t payload = 0;  // caller cookie (e.g. a queue slot index)
  };

  /// `granularity` is the bucket width in ns; `num_slots` buckets cover
  /// [base, base + granularity * num_slots). Both must be positive;
  /// num_slots is rounded up to a power of two.
  TimingWheel(Time granularity, std::size_t num_slots);

  /// Inserts an entry. Requires e.at >= flushed_until() — earlier times
  /// already belong to the caller's precise heap.
  void add(Entry e);

  /// Moves every entry that could fire before `t` out of the wheel via
  /// `sink(Entry)`, in no particular order, and advances the flush
  /// frontier to max(t, previous frontier). Whole buckets are released,
  /// so some delivered entries may have at >= t; none is ever late.
  template <typename Sink>
  void flush_until(Time t, Sink&& sink) {
    if (t <= flushed_) return;
    flush_collect(t, scratch_);
    for (Entry& e : scratch_) sink(e);
    scratch_.clear();
  }

  /// Lower bound on the earliest entry still in the wheel (bucket
  /// granular), or kTimeInfinity when empty. Never later than the true
  /// minimum, and within one bucket width of it.
  Time next_lower_bound() const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Time flushed_until() const { return flushed_; }
  Time granularity() const { return granularity_; }
  Time horizon() const {
    return base_ + granularity_ * static_cast<Time>(buckets_.size());
  }

 private:
  void flush_collect(Time t, std::vector<Entry>& out);
  void migrate_overflow();
  std::size_t bucket_index(Time at) const {
    return static_cast<std::size_t>(at / granularity_) & mask_;
  }

  Time granularity_;
  Time base_ = 0;     // start time of the bucket at cursor_
  Time flushed_ = 0;  // everything < flushed_ has left the wheel
  std::size_t cursor_ = 0;
  std::size_t size_ = 0;
  std::vector<std::vector<Entry>> buckets_;
  std::size_t mask_;
  std::vector<Entry> overflow_;  // at >= horizon()
  Time overflow_min_ = 0;        // valid when overflow_ non-empty
  std::vector<Entry> scratch_;
};

}  // namespace pdq::sim
