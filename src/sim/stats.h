// Small statistics helpers: scalar accumulators and time series.
//
// Ownership: plain value types; they copy their samples and have no link
// back into the simulator. Units: TimeSeries/RateMeter timestamps are
// integer nanoseconds (sim::Time), RateMeter rates are bits-per-second
// (bps), byte counts are std::int64_t bytes. Summary samples are whatever
// unit the caller adds (the harness uses milliseconds for FCTs).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "sim/time.h"

namespace pdq::sim {

/// Accumulates samples and answers mean/min/max/percentile queries.
/// Percentiles keep all samples; the experiments are small enough for that.
class Summary {
 public:
  void add(double x) { samples_.push_back(x); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double sum() const {
    double s = 0;
    for (double x : samples_) s += x;
    return s;
  }
  double mean() const { return empty() ? 0.0 : sum() / count(); }
  double min() const {
    return empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
  }
  double max() const {
    return empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
  }

  /// p in [0, 1]; nearest-rank on a sorted copy.
  double percentile(double p) const {
    if (empty()) return 0.0;
    std::vector<double> s = samples_;
    std::sort(s.begin(), s.end());
    const auto idx = static_cast<std::size_t>(
        std::clamp(p, 0.0, 1.0) * static_cast<double>(s.size() - 1) + 0.5);
    return s[std::min(idx, s.size() - 1)];
  }

  double stddev() const {
    if (count() < 2) return 0.0;
    const double m = mean();
    double acc = 0;
    for (double x : samples_) acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(count() - 1));
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// (time, value) samples, e.g. queue length or link utilization over time.
class TimeSeries {
 public:
  void record(Time t, double v) { points_.push_back({t, v}); }

  struct Point {
    Time t;
    double v;
  };
  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  /// Average value over [from, to] treating the series as a step function
  /// (each sample holds until the next one).
  double time_average(Time from, Time to) const {
    if (points_.empty() || to <= from) return 0.0;
    double area = 0;
    double last_v = 0;
    Time last_t = from;
    for (const auto& p : points_) {
      if (p.t < from) {
        last_v = p.v;
        continue;
      }
      if (p.t > to) break;
      area += last_v * static_cast<double>(p.t - last_t);
      last_t = p.t;
      last_v = p.v;
    }
    area += last_v * static_cast<double>(to - last_t);
    return area / static_cast<double>(to - from);
  }

  double max_value() const {
    double m = 0;
    for (const auto& p : points_) m = std::max(m, p.v);
    return m;
  }

 private:
  std::vector<Point> points_;
};

/// Counts bytes over fixed bins; utilization per bin = bytes*8 / (rate*bin).
class RateMeter {
 public:
  RateMeter(Time bin, double rate_bps) : bin_(bin), rate_bps_(rate_bps) {}

  void on_bytes(Time t, std::int64_t bytes) {
    const auto idx = static_cast<std::size_t>(t / bin_);
    if (bins_.size() <= idx) bins_.resize(idx + 1, 0);
    bins_[idx] += bytes;
  }

  /// Utilization of bin i in [0, 1+] (can exceed 1 transiently when a packet
  /// finishing in this bin was mostly transmitted in the previous one).
  double utilization(std::size_t i) const {
    if (i >= bins_.size()) return 0.0;
    return static_cast<double>(bins_[i]) * 8.0 /
           (rate_bps_ * to_seconds(bin_));
  }

  std::size_t num_bins() const { return bins_.size(); }
  Time bin_width() const { return bin_; }

 private:
  Time bin_;
  double rate_bps_;
  std::vector<std::int64_t> bins_;
};

}  // namespace pdq::sim
