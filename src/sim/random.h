// Seedable random source with the distributions the experiments need.
//
// One Rng per experiment keeps runs reproducible: the same seed yields the
// same workload regardless of protocol under test.
//
// Ownership: the caller owns the Rng and passes it by reference to
// workload generators; draws mutate the engine, so sharing one Rng across
// logically independent streams couples their sequences. Distribution
// parameters are unitless unless noted (deadline/size generators in
// workload/ document their own ns/bytes units).
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace pdq::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Pareto with shape `alpha` (tail index) and minimum `xm`.
  double pareto(double alpha, double xm) {
    const double u = std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    return xm / std::pow(1.0 - u, 1.0 / alpha);
  }

  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pdq::sim
