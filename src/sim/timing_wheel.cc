#include "sim/timing_wheel.h"

#include <cassert>

namespace pdq::sim {

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p < 2 ? 2 : p;
}
}  // namespace

TimingWheel::TimingWheel(Time granularity, std::size_t num_slots)
    : granularity_(granularity),
      buckets_(round_up_pow2(num_slots)),
      mask_(buckets_.size() - 1) {
  assert(granularity_ > 0);
}

void TimingWheel::add(Entry e) {
  // Invariant: flushed_ == base_ (bucket aligned), so at >= flushed_
  // means the entry lands in the cursor bucket or later — never behind
  // the cursor where a full revolution would deliver it late.
  assert(e.at >= flushed_);
  if (e.at >= horizon()) {
    if (overflow_.empty() || e.at < overflow_min_) overflow_min_ = e.at;
    overflow_.push_back(e);
  } else {
    buckets_[bucket_index(e.at)].push_back(e);
  }
  ++size_;
}

void TimingWheel::flush_collect(Time t, std::vector<Entry>& out) {
  while (base_ < t && size_ > 0) {
    std::vector<Entry>& b = buckets_[cursor_];
    for (Entry& e : b) {
      assert(e.at >= base_ && e.at < base_ + granularity_);
      out.push_back(e);
      --size_;
    }
    b.clear();
    base_ += granularity_;
    cursor_ = (cursor_ + 1) & mask_;
    migrate_overflow();
  }
  if (base_ < t) {
    // Empty wheel: jump the base straight to t's bucket boundary.
    const Time aligned = (t / granularity_) * granularity_;
    const Time target = aligned < t ? aligned + granularity_ : aligned;
    base_ = target > base_ ? target : base_;
    cursor_ = bucket_index(base_);
  }
  flushed_ = base_;
}

void TimingWheel::migrate_overflow() {
  if (overflow_.empty() || overflow_min_ >= horizon()) return;
  const Time h = horizon();
  std::size_t kept = 0;
  Time new_min = 0;
  bool have_min = false;
  for (Entry& e : overflow_) {
    if (e.at < h) {
      buckets_[bucket_index(e.at)].push_back(e);
    } else {
      if (!have_min || e.at < new_min) {
        new_min = e.at;
        have_min = true;
      }
      overflow_[kept++] = e;
    }
  }
  overflow_.resize(kept);
  overflow_min_ = new_min;
}

Time TimingWheel::next_lower_bound() const {
  if (size_ == 0) return kTimeInfinity;
  const std::size_t in_buckets = size_ - overflow_.size();
  Time best = kTimeInfinity;
  if (in_buckets > 0) {
    for (std::size_t k = 0; k < buckets_.size(); ++k) {
      const std::size_t idx = (cursor_ + k) & mask_;
      if (!buckets_[idx].empty()) {
        best = base_ + granularity_ * static_cast<Time>(k);
        break;
      }
    }
  }
  if (!overflow_.empty() && overflow_min_ < best) best = overflow_min_;
  return best;
}

}  // namespace pdq::sim
