#include "harness/audit.h"

#include <cinttypes>
#include <cstdio>

#include "net/node.h"
#include "net/topology.h"

namespace pdq::harness {

std::string AuditReport::to_string() const {
  if (violations.empty()) return "audit: ok\n";
  std::string out = "audit: " + std::to_string(violations.size()) +
                    " invariant violation(s)\n";
  for (const auto& v : violations) {
    out += "[" + v.kind + "] " + v.detail;
    if (out.empty() || out.back() != '\n') out += '\n';
  }
  return out;
}

void scan_ghost_grants(net::Topology& topo, sim::Time now, sim::Time grace,
                       AuditReport& report) {
  // Ground truth for flow ownership: the hosts' attach tables (covers
  // M-PDQ subflow ids and hybrid tail ids, which the harness slot table
  // does not describe).
  std::unordered_set<net::FlowId> owned;
  for (net::NodeId h : topo.host_ids()) {
    for (const auto& [id, agent] : topo.host(h).attached_senders()) {
      (void)agent;
      owned.insert(id);
    }
  }
  std::vector<net::GrantInfo> grants;
  for (net::NodeId id = 0; id < static_cast<net::NodeId>(topo.num_nodes());
       ++id) {
    for (const auto& port : topo.node(id).ports()) {
      const net::LinkController* c = port->controller();
      if (c == nullptr) continue;
      grants.clear();
      c->granted_flows(grants);
      std::string bad;
      for (const auto& g : grants) {
        if (owned.count(g.flow) != 0) continue;
        if (g.last_seen != sim::kTimeInfinity && now - g.last_seen <= grace)
          continue;  // ordinary post-TERM staleness; GC will collect it
        char buf[128];
        std::snprintf(buf, sizeof(buf), " flow=%" PRId64
                      " rate=%.3gMbps age=%.1fms",
                      static_cast<std::int64_t>(g.flow), g.rate_bps / 1e6,
                      g.last_seen == sim::kTimeInfinity
                          ? -1.0
                          : sim::to_millis(now - g.last_seen));
        bad += buf;
      }
      if (bad.empty()) continue;
      char head[96];
      std::snprintf(head, sizeof(head),
                    "link %d->%d grants flows no live sender owns:",
                    port->link().from, port->link().to);
      report.violations.push_back({"ghost_grant", head + bad});
    }
  }
}

std::string describe_controllers(net::Topology& topo, std::size_t max_lines) {
  std::string out;
  std::size_t lines = 0;
  std::vector<net::GrantInfo> grants;
  for (net::NodeId id = 0; id < static_cast<net::NodeId>(topo.num_nodes());
       ++id) {
    for (const auto& port : topo.node(id).ports()) {
      const net::LinkController* c = port->controller();
      if (c == nullptr) continue;
      grants.clear();
      c->granted_flows(grants);
      if (grants.empty() && port->queued_bytes() == 0) continue;
      if (++lines > max_lines) {
        out += "  ... (more links elided)\n";
        return out;
      }
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "  link %d->%d: %zu grants, %" PRId64 " queued bytes",
                    port->link().from, port->link().to, grants.size(),
                    port->queued_bytes());
      out += buf;
      for (std::size_t g = 0; g < grants.size() && g < 4; ++g) {
        std::snprintf(buf, sizeof(buf), " [flow=%" PRId64 " %.3gMbps]",
                      static_cast<std::int64_t>(grants[g].flow),
                      grants[g].rate_bps / 1e6);
        out += buf;
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace pdq::harness
