// ProtocolStack adapters for every transport under evaluation.
//
// Ownership: a stack is a factory plus per-run switch state — construct a
// fresh stack per run_scenario() call (benches use bench::make_stack);
// install() wires controllers whose lifetime is managed by the Topology,
// and make_sender/make_receiver return agents owned by the scenario
// runner. Units follow the repo conventions (sim/time.h): time in integer
// nanoseconds, rates in bits-per-second, sizes in bytes.
#pragma once

#include <memory>
#include <string>

#include "core/mpdq.h"
#include "core/pdq_config.h"
#include "harness/scenario.h"
#include "protocols/d3.h"
#include "protocols/dctcp.h"
#include "protocols/rcp.h"
#include "protocols/tcp.h"

namespace pdq::harness {

class PdqStack : public ProtocolStack {
 public:
  explicit PdqStack(core::PdqConfig cfg = core::PdqConfig::full(),
                    std::string label = "PDQ")
      : cfg_(cfg), label_(std::move(label)) {}

  std::string name() const override { return label_; }
  void install(net::Topology& topo) override;
  std::unique_ptr<net::Agent> make_sender(net::AgentContext ctx) override;
  std::unique_ptr<net::Agent> make_receiver(net::AgentContext ctx) override;

  const core::PdqConfig& config() const { return cfg_; }

 private:
  core::PdqConfig cfg_;
  std::string label_;
};

class MpdqStack : public ProtocolStack {
 public:
  explicit MpdqStack(core::MpdqConfig cfg) : cfg_(cfg) {}

  std::string name() const override { return "M-PDQ"; }
  void install(net::Topology& topo) override;
  std::unique_ptr<net::Agent> make_sender(net::AgentContext ctx) override;
  std::unique_ptr<net::Agent> make_receiver(net::AgentContext ctx) override;
  int subflows() const override { return cfg_.num_subflows; }

 private:
  core::MpdqConfig cfg_;
};

class RcpStack : public ProtocolStack {
 public:
  explicit RcpStack(protocols::RcpConfig cfg = {}) : cfg_(cfg) {}
  std::string name() const override { return "RCP"; }
  void install(net::Topology& topo) override;
  std::unique_ptr<net::Agent> make_sender(net::AgentContext ctx) override;
  std::unique_ptr<net::Agent> make_receiver(net::AgentContext ctx) override;

 private:
  protocols::RcpConfig cfg_;
};

class D3Stack : public ProtocolStack {
 public:
  explicit D3Stack(protocols::D3Config cfg = {}) : cfg_(cfg) {}
  std::string name() const override { return "D3"; }
  void install(net::Topology& topo) override;
  std::unique_ptr<net::Agent> make_sender(net::AgentContext ctx) override;
  std::unique_ptr<net::Agent> make_receiver(net::AgentContext ctx) override;

 private:
  protocols::D3Config cfg_;
};

class TcpStack : public ProtocolStack {
 public:
  explicit TcpStack(protocols::TcpConfig cfg = {}) : cfg_(cfg) {}
  std::string name() const override { return "TCP"; }
  void install(net::Topology& /*topo*/) override {}  // plain drop-tail FIFOs
  std::unique_ptr<net::Agent> make_sender(net::AgentContext ctx) override;
  std::unique_ptr<net::Agent> make_receiver(net::AgentContext ctx) override;

 private:
  protocols::TcpConfig cfg_;
};

/// DCTCP: install() puts marking multi-queue ports on every switch;
/// senders/receivers are the TcpSender subclasses from
/// protocols/dctcp.h. The label is configurable so variants ("DCTCP"
/// vs an MQ-ECN-scheduled "DCTCP(MQ)") can share one run table.
class DctcpStack : public ProtocolStack {
 public:
  explicit DctcpStack(protocols::DctcpConfig cfg = {},
                      std::string label = "DCTCP")
      : cfg_(cfg), label_(std::move(label)) {}
  std::string name() const override { return label_; }
  void install(net::Topology& topo) override;
  std::unique_ptr<net::Agent> make_sender(net::AgentContext ctx) override;
  std::unique_ptr<net::Agent> make_receiver(net::AgentContext ctx) override;

  const protocols::DctcpConfig& config() const { return cfg_; }

 private:
  protocols::DctcpConfig cfg_;
  std::string label_;
};

/// The paper's four PDQ variants.
inline PdqStack pdq_full() { return PdqStack(core::PdqConfig::full(), "PDQ(Full)"); }
inline PdqStack pdq_es_et() { return PdqStack(core::PdqConfig::es_et(), "PDQ(ES+ET)"); }
inline PdqStack pdq_es() { return PdqStack(core::PdqConfig::es(), "PDQ(ES)"); }
inline PdqStack pdq_basic() { return PdqStack(core::PdqConfig::basic(), "PDQ(Basic)"); }

}  // namespace pdq::harness
