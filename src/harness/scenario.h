// Scenario runner: wires a protocol stack onto a topology, runs a set of
// flows, and collects the metrics the paper reports.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harness/audit.h"
#include "net/builders.h"
#include "net/flow.h"
#include "net/paced_sender.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace pdq::stats {
struct StreamingSpec;  // stats/streaming.h
class RunStats;
}  // namespace pdq::stats

namespace pdq::flowsim {
enum class Model;  // flowsim/flowsim.h
}  // namespace pdq::flowsim

namespace pdq::faults {
struct FaultSpec;  // faults/fault_spec.h
}  // namespace pdq::faults

namespace pdq::harness {

struct TimelineSpec;  // harness/timeline.h

/// Hybrid packet/fluid fast-forward (docs/architecture.md, "Hybrid
/// packet/fluid backend"). Large deadline-free flows run their first
/// `head_bytes` and last `tail_bytes` through the packet engine —
/// admission, PDQ preemption against packet flows, and the final ~2-RTT
/// completion dance stay packet-accurate — while the middle advances in
/// the S5.5 fluid model (src/flowsim) on its 1 ms grid at the model's
/// equilibrium rates. Deadline flows and flows below `min_fluid_bytes`
/// never leave the packet engine, so every PDQ scheduling decision that
/// matters for Application Throughput is exact. Hybrid runs are
/// approximate by construction; the hybrid≈packet differential test
/// pins mean/p99 FCT against the pure-packet engine on small fabrics.
/// Requires streaming-metrics mode (per-flow result vectors would
/// defeat its O(active-flows) memory goal).
struct HybridSpec {
  /// Packet-engine prefix of each fluid-eligible flow: long enough to
  /// pay admission/ramp-up costs for real (>= a few BDPs).
  std::int64_t head_bytes = 64 * 1024;
  /// Packet-engine suffix: covers the last ~2 RTTs before completion,
  /// where PDQ's TERM handshake and preemption decisions live.
  std::int64_t tail_bytes = 64 * 1024;
  /// Flows below this — and all deadline flows — stay pure packet.
  /// Clamped up to head_bytes + tail_bytes + 1 if set lower.
  std::int64_t min_fluid_bytes = 256 * 1024;
  /// Fluid recomputation grid (flowsim::Options::step).
  sim::Time grid = sim::kMillisecond;
  /// Fluid rate model; unset derives it from the stack name
  /// (PDQ*/M-PDQ* -> kPdq, D3* -> kD3, anything else -> kRcp max-min).
  std::optional<flowsim::Model> model;
};

/// A pluggable transport: switch-side controllers + end-host agents.
class ProtocolStack {
 public:
  virtual ~ProtocolStack() = default;
  virtual std::string name() const = 0;
  /// Installs per-link controllers (may be a no-op, e.g. TCP).
  virtual void install(net::Topology& topo) = 0;
  virtual std::unique_ptr<net::Agent> make_sender(net::AgentContext ctx) = 0;
  virtual std::unique_ptr<net::Agent> make_receiver(net::AgentContext ctx) = 0;

  /// Stacks that manage their own subflows (M-PDQ) override this to
  /// register extra receiver endpoints. Returns subflow count (1 = none).
  virtual int subflows() const { return 1; }
};

struct RunOptions {
  sim::Time horizon = 30 * sim::kSecond;  // hard stop
  std::uint64_t seed = 1;
  /// Shard count for the conservative-parallel engine (sim/sharded.h):
  /// the topology is cut into `shards` pieces, each run by its own
  /// worker thread, with results proven bit-identical to shards=1 by
  /// the determinism wall. 1 (the default) runs the historical
  /// single-queue engine byte-for-byte. Sharded runs exclude streaming,
  /// hybrid, timeline, faults, audit, watch_link, per_flow_series and
  /// lossy/down links; violations abort with a diagnostic.
  int shards = 1;
  /// Link to instrument with a utilization meter and queue series.
  std::optional<std::pair<net::NodeId, net::NodeId>> watch_link;
  sim::Time meter_bin = sim::kMillisecond;
  /// Random loss rate applied to the watched link, both directions (Fig 9).
  double watch_link_drop_rate = 0.0;
  /// Per-flow throughput sampling for the watched flows (Fig 6/7).
  bool per_flow_series = false;
  sim::Time flow_series_bin = sim::kMillisecond;
  /// Scheduled scenario events executed while the simulation runs
  /// (harness/timeline.h): flow-batch injection, link down/up, load
  /// shifts, plus the steady-state measurement window. Null (the
  /// default) runs the exact pre-timeline code path.
  std::shared_ptr<const TimelineSpec> timeline;
  /// Streaming-metrics mode (stats/streaming.h): flow results fold into
  /// O(1)-memory accumulators as flows terminate, agents are built at
  /// flow start and destroyed at termination, and RunResult::flows stays
  /// empty (RunResult::streaming carries the aggregates instead). Peak
  /// per-flow memory becomes O(active flows), not O(total flows) — the
  /// 100k+-flow scale points. Null (the default) runs the historical
  /// materialize-everything path byte-for-byte. Incompatible with
  /// per_flow_series.
  std::shared_ptr<const stats::StreamingSpec> streaming;
  /// Hybrid packet/fluid fast-forward (see HybridSpec). Null (the
  /// default) keeps every flow in the packet engine byte-for-byte.
  /// Requires `streaming`.
  std::shared_ptr<const HybridSpec> hybrid;
  /// Fault plane (faults/fault_spec.h): seeded per-link fault schedules
  /// — Gilbert-Elliott burst loss, selective control/data drop, link
  /// flapping, switch resets. Draws from its own salted RNG stream, so
  /// workload and timeline draws never shift. Null (the default) hooks
  /// nothing: every link stays on the historical path byte-for-byte.
  std::shared_ptr<const faults::FaultSpec> faults;
  /// Watchdog + invariant auditor (harness/audit.h). Null means "off"
  /// unless `faults` is set, in which case a default AuditSpec is
  /// applied automatically (fault runs should fail loudly, not hang).
  std::shared_ptr<const AuditSpec> audit;
};

/// Operation-count metrics for one run — the perf currency on
/// single-core CI, where wall time is meaningless (never asserted on).
struct EngineCounters {
  std::uint64_t events_executed = 0;
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_cancelled = 0;
  std::uint64_t packet_allocs = 0;    // new Packet objects constructed
  std::uint64_t packet_acquires = 0;  // pool hand-outs (allocs + reuses)
  /// Net events elided by per-hop transmit coalescing (node.cc).
  std::uint64_t events_coalesced = 0;
  /// Flow-state entries visited by switch-controller hot paths (PDQ's
  /// find/prefix/resort work) — flat per packet when the switch fast
  /// path is O(1) amortized.
  std::uint64_t flowlist_scan_ops = 0;

  // Memory peaks (operation-count-style: deterministic object/byte
  // counts, never allocator or RSS measurements).
  /// High-water mark of pending events during the run.
  std::uint64_t peak_pending_events = 0;
  /// High-water mark of in-flight packets (PacketPool live count).
  std::uint64_t pool_highwater = 0;
  /// High-water mark of live transport-agent footprint bytes
  /// (Agent::footprint_bytes sums) — sublinear in total flows under
  /// streaming mode, linear under the default path.
  std::uint64_t peak_flow_bytes = 0;

  // Sharded-engine counters (sim/sharded.h). All zero / one under the
  // single-queue engine; the determinism wall asserts shard_threads
  // equals the shard count (distinct-thread proof — never wall time).
  std::uint64_t sync_rounds = 0;    // conservative windows dispatched
  std::uint64_t ring_handoffs = 0;  // cross-shard ring records committed
  std::uint64_t lookahead_ns = 0;   // conservative-sync lookahead used
  std::uint64_t shards = 1;
  std::uint64_t shard_threads = 0;  // distinct worker threads that ran events

  /// Percent of acquires served from the free list (0 when idle) — the
  /// single definition behind metrics::packet_recycle_percent() and the
  /// fig13 counters table.
  double recycle_percent() const {
    if (packet_acquires == 0) return 0.0;
    return 100.0 * static_cast<double>(packet_acquires - packet_allocs) /
           static_cast<double>(packet_acquires);
  }
};

struct RunResult {
  /// Per-flow results (empty in streaming mode — see `streaming`).
  std::vector<net::FlowResult> flows;
  /// Streaming-mode aggregates (null on the default path). The metric
  /// helpers below read whichever representation is populated.
  std::shared_ptr<const stats::RunStats> streaming;
  std::int64_t queue_drops = 0;
  std::int64_t wire_drops = 0;
  sim::Time end_time = 0;
  EngineCounters engine;

  // Watched-link instrumentation (when requested).
  sim::TimeSeries queue_series;
  std::vector<double> link_utilization;  // per meter bin
  sim::Time meter_bin = sim::kMillisecond;

  /// Per-flow acked-bytes-per-bin series (when per_flow_series).
  std::vector<std::vector<double>> flow_goodput_bps;

  /// Audit outcome (null when auditing was off). A non-ok report means
  /// the run violated a survivability invariant — chaos tests assert
  /// `audit->ok()`.
  std::shared_ptr<const AuditReport> audit;

  // --- metric helpers ---
  double mean_fct_ms() const;
  double max_fct_ms() const;
  /// Percentage of flows meeting their deadline (the paper's Application
  /// Throughput). Counts all flows; terminated/pending = miss.
  double application_throughput() const;
  std::size_t completed() const;
  const net::FlowResult* flow(net::FlowId id) const;
};

/// Builds a topology and returns the server node ids (host endpoints).
using TopologyBuilder = std::function<std::vector<net::NodeId>(net::Topology&)>;

/// Runs `flows` (src/dst are NodeIds produced by the builder) under
/// `stack` on the topology from `build`. Compatibility shim over
/// run_prepared(); new code should describe experiments declaratively
/// with ExperimentSpec (harness/experiment.h) and SweepRunner
/// (harness/sweep.h) instead.
RunResult run_scenario(ProtocolStack& stack, const TopologyBuilder& build,
                       const std::vector<net::FlowSpec>& flows,
                       const RunOptions& opts = {});

/// Runs `flows` on an already-built topology (`opts.seed` is NOT applied
/// to `topo` — the caller owns topology construction). This is the core
/// the sweep engine drives; `simulator` must be the one `topo` was
/// constructed with.
RunResult run_prepared(ProtocolStack& stack, sim::Simulator& simulator,
                       net::Topology& topo,
                       const std::vector<net::FlowSpec>& flows,
                       const RunOptions& opts = {});

/// Binary-searches the largest `n` in [lo, hi] such that predicate(n) is
/// true, assuming monotonicity (true for small n). Returns lo-1 when even
/// `lo` fails. Used for the "max flows at 99% application throughput"
/// experiments (Fig 3c, 4a, 5a).
int binary_search_max(int lo, int hi, const std::function<bool(int)>& pred);

}  // namespace pdq::harness
