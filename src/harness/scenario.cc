#include "harness/scenario.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <unordered_map>

#include "faults/fault_plane.h"
#include "flowsim/flowsim.h"
#include "harness/timeline.h"
#include "net/node.h"
#include "net/packet_pool.h"
#include "net/shard_plan.h"
#include "stats/streaming.h"

namespace pdq::harness {

double RunResult::mean_fct_ms() const {
  if (streaming != nullptr) return streaming->mean_fct_ms();
  // Compensated, like the streaming accumulator: both paths produce the
  // correctly-rounded sum, so streaming==vector holds exactly.
  stats::CompensatedSum sum;
  std::size_t n = 0;
  for (const auto& f : flows) {
    if (f.outcome == net::FlowOutcome::kCompleted) {
      sum.add(sim::to_millis(f.completion_time()));
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum.value() / static_cast<double>(n);
}

double RunResult::max_fct_ms() const {
  if (streaming != nullptr) return streaming->max_fct_ms();
  double m = 0;
  for (const auto& f : flows) {
    if (f.outcome == net::FlowOutcome::kCompleted)
      m = std::max(m, sim::to_millis(f.completion_time()));
  }
  return m;
}

double RunResult::application_throughput() const {
  if (streaming != nullptr) return streaming->application_throughput();
  std::size_t deadline_flows = 0;
  std::size_t met = 0;
  for (const auto& f : flows) {
    if (!f.spec.has_deadline()) continue;
    ++deadline_flows;
    if (f.deadline_met()) ++met;
  }
  if (deadline_flows == 0) return 100.0;
  return 100.0 * static_cast<double>(met) /
         static_cast<double>(deadline_flows);
}

std::size_t RunResult::completed() const {
  if (streaming != nullptr) return streaming->completed();
  std::size_t n = 0;
  for (const auto& f : flows)
    if (f.outcome == net::FlowOutcome::kCompleted) ++n;
  return n;
}

const net::FlowResult* RunResult::flow(net::FlowId id) const {
  for (const auto& f : flows)
    if (f.spec.id == id) return &f;
  return nullptr;
}

RunResult run_scenario(ProtocolStack& stack, const TopologyBuilder& build,
                       const std::vector<net::FlowSpec>& flows,
                       const RunOptions& opts) {
  sim::Simulator simulator;
  net::Topology topo(simulator, opts.seed);
  build(topo);
  return run_prepared(stack, simulator, topo, flows, opts);
}

RunResult run_prepared(ProtocolStack& stack, sim::Simulator& simulator,
                       net::Topology& topo,
                       const std::vector<net::FlowSpec>& flows,
                       const RunOptions& opts) {
  // ---- sharded parallel engine (sim/sharded.h) ----
  // Installed before any event is scheduled: stack installation below
  // already routes setup events to their owning shards. v1 runs only
  // the default materialize-everything path; every excluded feature
  // fails loudly rather than silently degrading to shards=1.
  const bool sharded = opts.shards > 1;
  std::unique_ptr<net::ShardedSession> shard_session;
  if (sharded) {
    if (opts.streaming != nullptr || opts.hybrid != nullptr ||
        opts.faults != nullptr || opts.audit != nullptr ||
        opts.timeline != nullptr || opts.watch_link.has_value() ||
        opts.per_flow_series) {
      std::fprintf(stderr,
                   "run_prepared: sharded execution (RunOptions::shards > 1) "
                   "supports only the default materialize-everything path — "
                   "streaming, hybrid, timeline, fault, audit, watch-link and "
                   "per-flow-series runs must use shards=1\n");
      std::exit(2);
    }
    std::string err;
    shard_session =
        net::ShardedSession::create(simulator, topo, opts.shards, &err);
    if (shard_session == nullptr) {
      std::fprintf(stderr, "run_prepared: cannot shard this topology: %s\n",
                   err.c_str());
      std::exit(2);
    }
  }
  sim::ShardExecutor* shard_exec =
      shard_session != nullptr ? &shard_session->executor() : nullptr;

  stack.install(topo);

  RunResult result;
  result.meter_bin = opts.meter_bin;

  // Instrumentation on the watched link.
  std::unique_ptr<sim::RateMeter> meter;
  if (opts.watch_link) {
    const auto [a, b] = *opts.watch_link;
    net::Port* port = topo.port_on_link(a, b);
    assert(port != nullptr);
    meter = std::make_unique<sim::RateMeter>(opts.meter_bin,
                                             port->link().rate_bps);
    port->meter = meter.get();
    port->queue_series = &result.queue_series;
    if (opts.watch_link_drop_rate > 0.0) {
      topo.set_link_drop_rate(a, b, opts.watch_link_drop_rate);
    }
  }

  // Per-flow agent storage. The default path materializes all agents up
  // front (the historical behaviour, byte-for-byte); streaming mode
  // (opts.streaming) defers construction to each flow's start event and
  // retires agents as flows terminate, so live agent memory tracks the
  // number of *active* flows rather than the total (the 100k-flow scale
  // points; docs/architecture.md "Streaming metrics & memory model").
  struct FlowSlot {
    std::unique_ptr<net::Agent> receiver;
    std::unique_ptr<net::Agent> sender;
    std::size_t receiver_bytes = 0;  // footprint charged at materialize
    std::size_t sender_bytes = 0;
    bool sender_done = false;  // on_done ran; stats folded in
  };
  std::vector<FlowSlot> slots;
  std::vector<net::Agent*> senders;  // null: unmaterialized or retired
  // Parallel to `senders`, for timeline link-failure rerouting: the
  // flow's spec and its *current* route (updated on reroute).
  std::vector<net::FlowSpec> sender_specs;
  std::vector<net::RouteRef> sender_routes;
  // Flows injected while a link outage disconnects their endpoints are
  // stillborn: recorded terminated-at-injection, no agents built.
  std::vector<net::FlowResult> stillborn;
  std::size_t remaining = 0;  // incremented per add_flow
  // Timeline events still to fire; the run must not stop before the
  // last one (it may inject flows). Zero when there is no timeline.
  std::size_t timeline_pending = 0;

  const bool streaming = opts.streaming != nullptr;
  assert(!(streaming && opts.per_flow_series) &&
         "per-flow series needs per-flow agents for the whole run");
  // Loss hardening rides with the fault plane (FaultSpec::
  // harden_protocols): the TERM-retry timer schedules events, which
  // would shift sequence numbers on the byte-identical golden path.
  // Run-scoped, carried by the topology so per-agent state stays at
  // the golden sizeof (peak_flow_bytes).
  topo.set_loss_hardening(opts.faults != nullptr &&
                          opts.faults->harden_protocols);
  // Audit resolution: an explicit spec wins; a fault plane auto-enables
  // the defaults (fault runs should fail loudly, not hang); otherwise
  // fully off — no events scheduled, nothing drawn.
  std::shared_ptr<const AuditSpec> audit = opts.audit;
  if (audit == nullptr && opts.faults != nullptr) {
    audit = std::make_shared<AuditSpec>();
  }
  const bool hybrid = opts.hybrid != nullptr;
  if (hybrid && !streaming) {
    std::fprintf(stderr,
                 "run_prepared: the hybrid packet/fluid backend requires "
                 "streaming-metrics mode (RunOptions::streaming) — per-flow "
                 "result vectors would defeat its O(active-flows) memory\n");
    std::exit(2);
  }

  // ---- hybrid packet/fluid fast-forward state (opts.hybrid) ----
  // Eligible flows live in three segments: a packet head (admission +
  // ramp-up), a fluid middle on the S5.5 model's grid, and a packet tail
  // (the last ~2 RTTs: TERM handshake, completion). `phase` tracks where
  // each slot is; `hyb_seg` is the size the *current* packet segment
  // materializes with; `hyb_done` accumulates bytes delivered by earlier
  // segments so folded FlowResults describe the whole flow. The tail
  // attaches under a *derived* FlowId (`attach_id`): the head's id must
  // not be reused, or a head-segment packet still queued somewhere in
  // the fabric (a TERM delayed behind a congested NIC longer than the
  // fluid middle lasts) would be delivered to the tail's agents — a
  // stale TERM marks the live tail receiver retirable, the sweep frees
  // it, and the tail sender then stalls forever (and, under PDQ, its
  // ghost allocation starves every flow sharing its hosts). With a
  // fresh id, stragglers addressed to the head find no agent and drop
  // silently (node.cc).
  enum class HybridPhase : std::uint8_t { kNone, kHead, kFluid, kTail };
  constexpr net::FlowId kHybridTailIdOffset = net::FlowId{1} << 40;
  std::vector<HybridPhase> phase;
  std::vector<std::int64_t> hyb_seg;
  std::vector<std::int64_t> hyb_done;
  std::vector<net::FlowId> attach_id;  // id the current segment attaches as
  std::unique_ptr<flowsim::FlowLevelSimulator> fluid;
  std::unordered_map<net::FlowId, std::size_t> fluid_slot;
  std::int64_t hyb_head = 0, hyb_tail = 0, hyb_min = 0;
  if (hybrid) {
    hyb_head = std::max<std::int64_t>(opts.hybrid->head_bytes, 1);
    hyb_tail = std::max<std::int64_t>(opts.hybrid->tail_bytes, 1);
    hyb_min = std::max(opts.hybrid->min_fluid_bytes, hyb_head + hyb_tail + 1);
    flowsim::Model model = flowsim::Model::kRcp;
    if (opts.hybrid->model.has_value()) {
      model = *opts.hybrid->model;
    } else {
      const std::string n = stack.name();
      if (n.rfind("PDQ", 0) == 0 || n.rfind("M-PDQ", 0) == 0) {
        model = flowsim::Model::kPdq;
      } else if (n.rfind("D3", 0) == 0) {
        model = flowsim::Model::kD3;
      }
    }
    flowsim::Options fo;
    fo.model = model;
    fo.step = opts.hybrid->grid;
    fo.horizon = opts.horizon;
    fluid = std::make_unique<flowsim::FlowLevelSimulator>(topo, fo);
  }
  const auto hyb_eligible = [&](const net::FlowSpec& f) {
    // Deadline flows never leave the packet engine: quenching/Early
    // Termination and Application Throughput stay exact.
    return hybrid && !f.has_deadline() && f.size_bytes >= hyb_min;
  };
  // Measurement window for the windowed streaming metrics — the same
  // [warmup, measure_end) the vector path's metrics:: family derives
  // from the timeline (whole run when there is none).
  sim::Time window_lo = 0;
  sim::Time window_hi = sim::kTimeInfinity;
  if (opts.timeline != nullptr) {
    window_lo = opts.timeline->warmup;
    window_hi = opts.timeline->measure_end;
  }
  std::shared_ptr<stats::RunStats> run_stats;
  if (streaming) {
    run_stats = std::make_shared<stats::RunStats>(*opts.streaming,
                                                  window_lo, window_hi);
  }
  // Live agent-footprint accounting (both modes — the counter is how
  // the scale benches show streaming keeps agent memory O(active)).
  std::size_t cur_flow_bytes = 0;
  std::size_t peak_flow_bytes = 0;

  // Retirement machinery (streaming only). Terminated flows enqueue
  // their slot index; a zero-delay, coalesced sweep event destroys
  // every retirable agent *outside* the reporting agent's call frame
  // (on_done fires inside agent methods — freeing there would be a
  // use-after-free on return).
  std::vector<std::size_t> retire_ready;
  bool sweep_scheduled = false;
  std::function<void()> do_sweep;
  const auto schedule_sweep = [&] {
    if (sweep_scheduled) return;
    sweep_scheduled = true;
    // EventFn captures are capped: capture one pointer to the sweep
    // closure rather than the sweep state itself.
    simulator.schedule_in(0, [&do_sweep] { do_sweep(); });
  };
  do_sweep = [&] {
    sweep_scheduled = false;
    for (std::size_t k = 0; k < retire_ready.size(); ++k) {
      const std::size_t idx = retire_ready[k];
      FlowSlot& slot = slots[idx];
      const net::FlowSpec& spec = sender_specs[idx];
      // Hybrid tails attach under a derived id — detach what was
      // attached, not the whole-flow spec's id.
      const net::FlowId aid = hybrid ? attach_id[idx] : spec.id;
      if (slot.sender != nullptr && slot.sender_done &&
          slot.sender->retirable()) {
        slot.sender->quiesce();
        topo.host(spec.src).detach_sender(aid);
        cur_flow_bytes -= slot.sender_bytes;
        senders[idx] = nullptr;
        sender_routes[idx] = nullptr;
        slot.sender.reset();
      }
      if (slot.receiver != nullptr && slot.receiver->retirable()) {
        slot.receiver->quiesce();
        topo.host(spec.dst).detach_receiver(aid);
        cur_flow_bytes -= slot.receiver_bytes;
        slot.receiver.reset();
      }
    }
    retire_ready.clear();
  };

  // Hybrid segment completions route through here instead of the plain
  // streaming fold (assigned after the helpers below; declared first so
  // materialize's on_done closure can reference it).
  std::function<void(std::size_t, const net::FlowResult&)> hybrid_segment_done;

  // Builds and attaches the agent pair for flow slot `idx`. The default
  // path calls this synchronously from add_flow — construction order,
  // route-cache fills and the event sequence all identical to the
  // historical code; streaming mode calls it from the flow's start
  // event. Hybrid flows materialize with their current packet-segment
  // size (head or tail) in place of the full flow size.
  std::function<void(std::size_t)> materialize = [&](std::size_t idx) {
    net::FlowSpec f = sender_specs[idx];
    if (hybrid && phase[idx] != HybridPhase::kNone) {
      f.size_bytes = hyb_seg[idx];
      f.id = attach_id[idx];
    }
    if (streaming && topo.shortest_paths(f.src, f.dst).empty()) {
      // Deferred construction can land inside a link outage the default
      // path would have handled via reroute (agents built before the
      // failure): record the flow terminated-at-start.
      net::FlowResult r;
      r.spec = sender_specs[idx];
      r.outcome = net::FlowOutcome::kTerminated;
      r.finish_time = simulator.now();
      if (hybrid) r.bytes_acked = hyb_done[idx];
      run_stats->add(r, simulator.now());
      slots[idx].sender_done = true;
      if (--remaining == 0 && timeline_pending == 0) simulator.stop();
      return;
    }

    net::AgentContext rctx;
    rctx.topo = &topo;
    rctx.local = &topo.host(f.dst);
    rctx.spec = f;
    if (streaming) {
      // Receivers that can prove they are done (EchoReceiver after the
      // TERM echo) notify here so the sweep can retire them.
      rctx.on_done = [&retire_ready, &schedule_sweep,
                      idx](const net::FlowResult&) {
        retire_ready.push_back(idx);
        schedule_sweep();
      };
    }
    std::unique_ptr<net::Agent> receiver;
    {
      // Agent construction may schedule events touching the endpoint's
      // state; route them to its shard (inert single-shard).
      sim::Simulator::ScopedShardTarget target(f.dst);
      receiver = stack.make_receiver(std::move(rctx));
      topo.host(f.dst).attach_receiver(f.id, receiver.get());
    }

    net::AgentContext sctx;
    sctx.topo = &topo;
    sctx.local = &topo.host(f.src);
    sctx.spec = f;
    sctx.route = topo.ecmp_route(f.id, f.src, f.dst);
    if (streaming) {
      sctx.on_done = [&, idx](const net::FlowResult& r) {
        if (hybrid && phase[idx] != HybridPhase::kNone) {
          hybrid_segment_done(idx, r);
          return;
        }
        run_stats->add(r, simulator.now());
        slots[idx].sender_done = true;
        retire_ready.push_back(idx);
        schedule_sweep();
        if (--remaining == 0 && timeline_pending == 0) simulator.stop();
      };
    } else if (shard_exec != nullptr) {
      // Workers must not race on `remaining`; the executor counts
      // completions and finds the interleaving-independent stop point
      // at the window barrier (see expect_flow_completions below).
      sctx.on_done = [shard_exec](const net::FlowResult&) {
        shard_exec->note_flow_done();
      };
    } else {
      sctx.on_done = [&remaining, &timeline_pending,
                      &simulator](const net::FlowResult&) {
        if (--remaining == 0 && timeline_pending == 0) simulator.stop();
      };
    }
    sender_routes[idx] = sctx.route;
    std::unique_ptr<net::Agent> sender;
    {
      sim::Simulator::ScopedShardTarget target(f.src);
      sender = stack.make_sender(std::move(sctx));
      topo.host(f.src).attach_sender(f.id, sender.get());
    }
    senders[idx] = sender.get();

    FlowSlot& slot = slots[idx];
    slot.receiver_bytes = receiver->footprint_bytes();
    slot.sender_bytes = sender->footprint_bytes();
    cur_flow_bytes += slot.receiver_bytes + slot.sender_bytes;
    if (cur_flow_bytes > peak_flow_bytes) peak_flow_bytes = cur_flow_bytes;
    slot.receiver = std::move(receiver);
    slot.sender = std::move(sender);
  };

  // ---- hybrid handoff helpers ----
  // Folds a whole-flow result: the one place hybrid flows finish.
  const auto finish_flow_fold = [&](std::size_t idx,
                                    const net::FlowResult& r) {
    run_stats->add(r, simulator.now());
    slots[idx].sender_done = true;
    retire_ready.push_back(idx);
    schedule_sweep();
    if (--remaining == 0 && timeline_pending == 0) simulator.stop();
  };
  // Force-releases whatever head-segment agents are still attached
  // before the tail segment re-attaches under the same FlowId. The
  // retirement sweep normally got them already; stacks whose receivers
  // never self-retire (TCP family) leave one behind.
  const auto release_agents = [&](std::size_t idx) {
    FlowSlot& slot = slots[idx];
    const net::FlowSpec& spec = sender_specs[idx];
    const net::FlowId aid = attach_id[idx];
    if (slot.sender != nullptr) {
      slot.sender->quiesce();
      topo.host(spec.src).detach_sender(aid);
      cur_flow_bytes -= slot.sender_bytes;
      senders[idx] = nullptr;
      sender_routes[idx] = nullptr;
      slot.sender.reset();
    }
    if (slot.receiver != nullptr) {
      slot.receiver->quiesce();
      topo.host(spec.dst).detach_receiver(aid);
      cur_flow_bytes -= slot.receiver_bytes;
      slot.receiver.reset();
    }
  };
  // The fluid grid tick: one pending event at a time, re-armed while
  // the fluid model holds live flows.
  std::function<void()> fluid_tick;
  bool fluid_tick_pending = false;
  const auto arm_fluid_tick = [&] {
    if (fluid_tick_pending) return;
    fluid_tick_pending = true;
    simulator.schedule_in(opts.hybrid->grid, [&fluid_tick] { fluid_tick(); });
  };
  // Fluid middle finished: start the packet tail (or fold a fluid
  // termination — a failure timeline cut the path).
  const auto start_tail = [&](std::size_t idx,
                              const flowsim::FlowLevelSimulator::Completion&
                                  c) {
    if (c.result.outcome != net::FlowOutcome::kCompleted) {
      net::FlowResult full;
      full.spec = sender_specs[idx];
      full.outcome = net::FlowOutcome::kTerminated;
      full.finish_time = c.result.finish_time;
      full.bytes_acked = hyb_done[idx] + c.result.bytes_acked;
      finish_flow_fold(idx, full);
      return;
    }
    hyb_done[idx] += c.result.bytes_acked;
    phase[idx] = HybridPhase::kTail;
    hyb_seg[idx] = hyb_tail;
    release_agents(idx);
    attach_id[idx] = sender_specs[idx].id + kHybridTailIdOffset;
    slots[idx].sender_done = false;
    materialize(idx);
    if (senders[idx] != nullptr) {
      // Resume at the fluid equilibrium rate instead of re-ramping
      // (seed_rate applies only if on_start() granted nothing).
      senders[idx]->start();
      senders[idx]->seed_rate(c.last_rate_bps);
    }
  };
  fluid_tick = [&] {
    fluid_tick_pending = false;
    fluid->advance(simulator.now());
    for (const auto& c : fluid->drain_completions()) {
      const auto it = fluid_slot.find(c.result.spec.id);
      assert(it != fluid_slot.end());
      const std::size_t idx = it->second;
      fluid_slot.erase(it);
      start_tail(idx, c);
    }
    if (fluid->active_flows() > 0) arm_fluid_tick();
  };
  hybrid_segment_done = [&](std::size_t idx, const net::FlowResult& r) {
    const net::FlowSpec& orig = sender_specs[idx];
    if (phase[idx] == HybridPhase::kHead &&
        r.outcome == net::FlowOutcome::kCompleted) {
      // Head done: hand the middle to the fluid model, seeded with the
      // sender's last granted rate (established — no 2-RTT ramp).
      const double seed = senders[idx]->handoff_rate_bps();
      hyb_done[idx] = r.bytes_acked;
      phase[idx] = HybridPhase::kFluid;
      // Head agents are spent; retire them without folding stats.
      slots[idx].sender_done = true;
      retire_ready.push_back(idx);
      schedule_sweep();
      net::FlowSpec mid = orig;
      mid.start_time = simulator.now();
      const double mid_bits =
          static_cast<double>(orig.size_bytes - hyb_head - hyb_tail) * 8.0;
      fluid_slot[orig.id] = idx;
      fluid->add_flow(mid, mid_bits, seed);
      arm_fluid_tick();
      return;
    }
    // Tail completion — or a segment terminated by a failure timeline:
    // either way the whole flow is finished; rewrite the segment result
    // to the whole-flow view.
    net::FlowResult full = r;
    full.spec = orig;
    full.bytes_acked = r.bytes_acked + hyb_done[idx];
    finish_flow_fold(idx, full);
  };

  // Appends the bookkeeping slot for one flow; scheduling is separate
  // so the initial flow set can chain its creation events.
  const auto add_slot = [&](const net::FlowSpec& f) {
    assert(f.id != net::kInvalidFlow && f.src != f.dst);
    ++remaining;
    slots.emplace_back();
    senders.push_back(nullptr);
    sender_specs.push_back(f);
    sender_routes.push_back(nullptr);
    if (hybrid) {
      const bool h = hyb_eligible(f);
      phase.push_back(h ? HybridPhase::kHead : HybridPhase::kNone);
      hyb_seg.push_back(h ? hyb_head : 0);
      hyb_done.push_back(0);
      attach_id.push_back(f.id);
    }
    return slots.size() - 1;
  };
  const auto add_flow = [&](const net::FlowSpec& f) {
    const std::size_t idx = add_slot(f);
    if (streaming) {
      // One creation event replaces the one start event, 1:1, so the
      // event-sequence stream keeps the same shape as the default path.
      simulator.schedule_at(f.start_time, [&materialize, &senders, idx] {
        materialize(idx);
        if (senders[idx] != nullptr) senders[idx]->start();
      });
    } else {
      materialize(idx);
      // The start event mutates the sender's host: its shard owns it.
      sim::Simulator::ScopedShardTarget target(f.src);
      simulator.schedule_at(f.start_time,
                            [a = senders[idx]] { a->start(); });
    }
  };

  // Initial flow set. The default path materializes everything here, as
  // ever. Streaming mode *chains* the creation events — each one
  // schedules its successor — so the event queue holds O(active flows),
  // not one pre-scheduled creation per flow (the old peak_pending =
  // O(total flows)). Every creation takes a sequence number reserved in
  // add order and is scheduled with vtime 0, the exact (at, vtime, seq)
  // key the historical pre-scheduled event had, so tie-break order — and
  // therefore every downstream event — is unchanged.
  std::vector<std::size_t> chain_order;   // slot indices, by (start, add)
  std::vector<std::uint64_t> chain_seqs;  // parallel to slots
  std::function<void(std::size_t)> chain_next;
  if (streaming) {
    for (const auto& f : flows) {
      add_slot(f);
      chain_seqs.push_back(simulator.reserve_event_order());
    }
    chain_order.resize(flows.size());
    std::iota(chain_order.begin(), chain_order.end(), std::size_t{0});
    std::stable_sort(chain_order.begin(), chain_order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return flows[a].start_time < flows[b].start_time;
                     });
    chain_next = [&](std::size_t k) {
      const std::size_t idx = chain_order[k];
      if (k + 1 < chain_order.size()) {
        const std::size_t nxt = chain_order[k + 1];
        simulator.schedule_at_reserved(
            sender_specs[nxt].start_time, /*vtime=*/0, chain_seqs[nxt],
            [&chain_next, k] { chain_next(k + 1); });
      }
      materialize(idx);
      if (senders[idx] != nullptr) senders[idx]->start();
    };
    if (!chain_order.empty()) {
      const std::size_t first = chain_order[0];
      simulator.schedule_at_reserved(sender_specs[first].start_time,
                                     /*vtime=*/0, chain_seqs[first],
                                     [&chain_next] { chain_next(0); });
    }
  } else {
    for (const auto& f : flows) add_flow(f);
  }

  // Optional per-flow goodput sampler (Fig 6/7 time-series plots). The
  // recurring event holds a weak reference to its own closure: a shared
  // self-capture would form an ownership cycle and leak the sampler.
  auto prev = std::make_shared<std::vector<std::int64_t>>(flows.size(), 0);
  auto sample = std::make_shared<std::function<void()>>();
  // Timeline injections grow the flow set mid-run; series rows join
  // late (leading bins absent — their flows did not exist yet).
  const auto grow_series = [&result, &senders, prev] {
    if (prev->size() < senders.size()) {
      prev->resize(senders.size(), 0);
      result.flow_goodput_bps.resize(senders.size());
    }
  };
  if (opts.per_flow_series) {
    result.flow_goodput_bps.resize(flows.size());
    const sim::Time bin = opts.flow_series_bin;
    *sample = [&, prev, bin,
               weak = std::weak_ptr<std::function<void()>>(sample)]() {
      grow_series();
      for (std::size_t i = 0; i < senders.size(); ++i) {
        const net::FlowResult* r = senders[i]->flow_result();
        const std::int64_t acked = r ? r->bytes_acked : 0;
        result.flow_goodput_bps[i].push_back(
            static_cast<double>(acked - (*prev)[i]) * 8.0 /
            sim::to_seconds(bin));
        (*prev)[i] = acked;
      }
      if (remaining > 0) {
        if (auto self = weak.lock()) simulator.schedule_in(bin, *self);
      }
    };
    simulator.schedule_in(bin, *sample);
  }

  // ---- scheduled scenario timeline (harness/timeline.h) ----
  // Everything below is inert without opts.timeline: no extra events, no
  // extra RNG draws — the pre-timeline code path byte-for-byte.
  sim::Rng timeline_rng(opts.seed ^ kTimelineSeedSalt);
  net::FlowId next_flow_id = 1;
  for (const auto& f : flows) {
    next_flow_id = std::max(next_flow_id, f.id + 1);
  }

  const auto inject = [&](std::vector<net::FlowSpec> batch) {
    const sim::Time now = simulator.now();
    for (net::FlowSpec f : batch) {
      if (f.id == net::kInvalidFlow) {
        f.id = next_flow_id++;
      } else {
        next_flow_id = std::max(next_flow_id, f.id + 1);
      }
      f.start_time += now;  // spec start times are relative to the event
      if (topo.shortest_paths(f.src, f.dst).empty()) {
        // Disconnected at injection time (link outage): stillborn.
        net::FlowResult r;
        r.spec = f;
        r.outcome = net::FlowOutcome::kTerminated;
        r.finish_time = now;
        if (streaming) {
          run_stats->add(r, now);  // folded immediately, O(1) memory
        } else {
          stillborn.push_back(std::move(r));
        }
        continue;
      }
      add_flow(f);
    }
  };

  const auto set_link_state = [&](net::NodeId a, net::NodeId b, bool up) {
    topo.set_link_state(a, b, up);
    if (up) return;  // flows are not re-balanced onto recovered links
    for (std::size_t i = 0; i < senders.size(); ++i) {
      // Streaming mode: unmaterialized flows route at their start event
      // (post-failure routes); retired flows are done. Null is
      // unreachable on the default path.
      if (senders[i] == nullptr) continue;
      const net::FlowResult* r = senders[i]->flow_result();
      if (r == nullptr || r->outcome != net::FlowOutcome::kPending) continue;
      // Senders with private per-subflow routes (M-PDQ) claim the event
      // and handle their own re-pinning; the parent-route check below
      // would miss their subflow paths entirely.
      if (senders[i]->handle_link_down(a, b)) continue;
      const net::RouteRef& route = sender_routes[i];
      if (route == nullptr) continue;
      bool crosses = false;
      for (std::size_t h = 0; h + 1 < route->fwd.size() && !crosses; ++h) {
        crosses = (route->fwd[h] == a && route->fwd[h + 1] == b) ||
                  (route->fwd[h] == b && route->fwd[h + 1] == a);
      }
      if (!crosses) continue;
      const net::FlowSpec& spec = sender_specs[i];
      if (topo.shortest_paths(spec.src, spec.dst).empty()) {
        sender_routes[i] = nullptr;
        senders[i]->reroute(nullptr);  // no path left: terminate
      } else {
        sender_routes[i] = topo.ecmp_route(spec.id, spec.src, spec.dst);
        senders[i]->reroute(sender_routes[i]);
      }
    }
  };

  std::unordered_map<const void*, std::pair<net::NodeId, net::NodeId>>
      resolved_links;
  TimelineCtx tctx{simulator,    topo,   topo.host_ids(),
                   timeline_rng, inject, set_link_state,
                   &resolved_links};
  if (opts.timeline != nullptr && !opts.timeline->events.empty()) {
    // (at, insertion)-ordered execution: stable sort, then schedule —
    // the event queue breaks same-instant ties by scheduling order.
    std::vector<const TimelineEvent*> ordered;
    ordered.reserve(opts.timeline->events.size());
    for (const auto& e : opts.timeline->events) ordered.push_back(&e);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const TimelineEvent* x, const TimelineEvent* y) {
                       return x->at < y->at;
                     });
    timeline_pending = ordered.size();
    for (const TimelineEvent* e : ordered) {
      simulator.schedule_at(e->at, [&, e] {
        e->action(tctx);
        if (--timeline_pending == 0 && remaining == 0) simulator.stop();
      });
    }
  }

  // ---- fault plane (faults/fault_plane.h) ----
  // Armed after the timeline so hook installation and flap/reset
  // scheduling never perturb the no-fault event stream (this whole
  // block is inert when opts.faults is null). Fault decisions draw from
  // their own salted RNG, so workload and timeline draws never shift.
  std::unique_ptr<faults::FaultPlane> fault_plane;
  if (opts.faults != nullptr && opts.faults->any()) {
    fault_plane =
        std::make_unique<faults::FaultPlane>(*opts.faults, topo, opts.seed);
    fault_plane->arm(set_link_state);
  }

  // ---- watchdog + invariant auditor (harness/audit.h) ----
  auto audit_report = std::make_shared<AuditReport>();
  const auto audit_log = [&](AuditViolation v) {
    if (audit->log_to_stderr) {
      std::fprintf(stderr, "audit [%s] %s\n", v.kind.c_str(),
                   v.detail.c_str());
    }
    audit_report->violations.push_back(std::move(v));
  };
  // Progress token: (unfinished flows, Σ acked bytes, live agents).
  // Materialization and retirement count as progress, so late flow
  // starts do not trip the stall detector.
  std::function<void()> watchdog_tick;
  std::int64_t wd_acked = -1;
  std::size_t wd_remaining = 0;
  std::size_t wd_live = 0;
  int wd_stalls = 0;
  if (audit != nullptr && audit->progress_watchdog) {
    watchdog_tick = [&] {
      if (remaining == 0) return;  // drained; no re-arm
      std::int64_t acked = 0;
      std::size_t live = 0;
      for (net::Agent* s : senders) {
        if (s == nullptr) continue;
        ++live;
        const net::FlowResult* r = s->flow_result();
        if (r != nullptr) acked += r->bytes_acked;
      }
      const bool progressed =
          acked != wd_acked || remaining != wd_remaining || live != wd_live;
      wd_acked = acked;
      wd_remaining = remaining;
      wd_live = live;
      if (progressed) {
        wd_stalls = 0;
      } else if (++wd_stalls >= audit->stall_checks) {
        // Structured diagnostic dump — flow ids, last event key,
        // per-link controller state — then fail the run instead of
        // spinning to the horizon.
        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            "t=%.1fms: no acked-byte progress for %d x %.1fms "
            "(%zu flow(s) unfinished, %zu live agent(s), last event "
            "seq=%llu)\n",
            sim::to_millis(simulator.now()), audit->stall_checks,
            sim::to_millis(audit->progress_interval), remaining, live,
            static_cast<unsigned long long>(simulator.current_event_seq()));
        std::string detail = buf;
        std::size_t listed = 0;
        for (std::size_t i = 0; i < senders.size() && listed < 8; ++i) {
          if (senders[i] == nullptr) continue;
          const net::FlowResult* r = senders[i]->flow_result();
          if (r == nullptr || r->outcome != net::FlowOutcome::kPending)
            continue;
          std::snprintf(buf, sizeof(buf),
                        "  flow=%lld acked %lld of %lld bytes\n",
                        static_cast<long long>(sender_specs[i].id),
                        static_cast<long long>(r->bytes_acked),
                        static_cast<long long>(sender_specs[i].size_bytes));
          detail += buf;
          ++listed;
        }
        detail += describe_controllers(topo, 12);
        audit_log({"no_progress", std::move(detail)});
        if (audit->stop_on_stall) {
          simulator.stop();
          return;  // no re-arm
        }
        wd_stalls = 0;
      }
      simulator.schedule_in(audit->progress_interval, watchdog_tick);
    };
    simulator.schedule_in(audit->progress_interval, watchdog_tick);
  }

  net::PacketPool& pool = net::PacketPool::local();
  // Peak trackers measure this run alone even on a reused pool/queue.
  pool.relax_live_highwater();
  simulator.relax_peak_pending();
  const std::size_t live_before = pool.live_count();
  const std::uint64_t allocs_before = pool.total_allocated();
  const std::uint64_t acquires_before = pool.total_acquires();
  const std::uint64_t scheduled_before = simulator.events_scheduled();
  const std::uint64_t cancelled_before = simulator.events_cancelled();
  const std::uint64_t coalesced_before = topo.total_events_coalesced();
  const std::uint64_t scans_before = topo.total_flowlist_scan_ops();

  if (shard_exec != nullptr) shard_exec->expect_flow_completions(remaining);

  result.engine.events_executed = simulator.run(opts.horizon);

  result.engine.events_scheduled =
      simulator.events_scheduled() - scheduled_before;
  result.engine.events_cancelled =
      simulator.events_cancelled() - cancelled_before;
  result.engine.packet_allocs = pool.total_allocated() - allocs_before;
  result.engine.packet_acquires = pool.total_acquires() - acquires_before;
  result.engine.events_coalesced =
      topo.total_events_coalesced() - coalesced_before;
  result.engine.flowlist_scan_ops =
      topo.total_flowlist_scan_ops() - scans_before;
  result.engine.peak_pending_events = simulator.peak_pending_events();
  result.engine.pool_highwater = pool.live_highwater();
  result.engine.peak_flow_bytes = peak_flow_bytes;

  if (shard_exec != nullptr) {
    // Packets live in the per-shard pools, not the coordinator's
    // thread-local pool (whose deltas above are zero). Allocation
    // counts are execution-strategy-scoped: deterministic for a fixed
    // shard count, not comparable across counts.
    result.engine.packet_allocs = shard_session->packet_allocs();
    result.engine.packet_acquires = shard_session->packet_acquires();
    result.engine.pool_highwater = shard_session->pool_highwater();
    const sim::ShardCounters& sc = shard_exec->counters();
    result.engine.sync_rounds = sc.sync_rounds;
    result.engine.ring_handoffs = sc.ring_handoffs;
    result.engine.lookahead_ns = sc.lookahead_ns;
    result.engine.shards = sc.shards;
    result.engine.shard_threads = sc.shard_threads;
    // The sharded on_done path never touched `remaining`; adopt the
    // executor's committed completion count for the post-run checks.
    remaining = static_cast<std::size_t>(shard_exec->flows_remaining());
  }

  // ---- end-of-run invariant audit ----
  if (audit != nullptr) {
    if (audit->check_stranded && remaining > 0 &&
        simulator.pending_events() == 0) {
      // The PR-8 signature: a drained event queue with unfinished flows
      // means someone waits on a packet that will never come.
      std::string detail = "event queue drained with " +
                           std::to_string(remaining) +
                           " flow(s) unfinished:\n";
      std::size_t listed = 0;
      for (std::size_t i = 0; i < senders.size() && listed < 8; ++i) {
        if (senders[i] == nullptr) continue;
        const net::FlowResult* r = senders[i]->flow_result();
        if (r == nullptr || r->outcome != net::FlowOutcome::kPending)
          continue;
        detail += "  flow=" + std::to_string(sender_specs[i].id) +
                  " acked " + std::to_string(r->bytes_acked) + " of " +
                  std::to_string(sender_specs[i].size_bytes) + " bytes\n";
        ++listed;
      }
      detail += describe_controllers(topo, 12);
      audit_log({"stranded_flow", std::move(detail)});
    }
    if (audit->require_drain && remaining > 0) {
      audit_log({"unfinished",
                 std::to_string(remaining) +
                     " flow(s) still unfinished at the horizon"});
    }
    if (audit->check_conservation) {
      // Every packet still live must be accounted for: parked in a port
      // queue or held by a pending event closure (stop()/horizon exits
      // leave in-flight transmissions and timers unexecuted). Anything
      // beyond that bound leaked.
      std::size_t queued = 0;
      for (net::NodeId id = 0;
           id < static_cast<net::NodeId>(topo.num_nodes()); ++id) {
        for (const auto& port : topo.node(id).ports()) {
          queued += port->multi_queue() != nullptr
                        ? port->multi_queue()->packets()
                        : port->queue().packets();
        }
      }
      const std::size_t live_now = pool.live_count();
      const std::size_t bound =
          live_before + queued + simulator.pending_events();
      if (live_now > bound) {
        audit_log(
            {"packet_leak",
             std::to_string(live_now) + " packets live at run end but only " +
                 std::to_string(bound) + " accounted for (" +
                 std::to_string(queued) + " queued, " +
                 std::to_string(simulator.pending_events()) +
                 " pending events, " + std::to_string(live_before) +
                 " pre-run)"});
      }
    }
    if (audit->check_ghost_grants) {
      const std::size_t first = audit_report->violations.size();
      scan_ghost_grants(topo, simulator.now(), audit->ghost_grace,
                        *audit_report);
      if (audit->log_to_stderr) {
        for (std::size_t v = first; v < audit_report->violations.size();
             ++v) {
          std::fprintf(stderr, "audit [%s] %s\n",
                       audit_report->violations[v].kind.c_str(),
                       audit_report->violations[v].detail.c_str());
        }
      }
    }
    result.audit = audit_report;
  }
  // Retirement audit (PR-8 regression guard; cheap, always on in debug
  // builds): once every flow has reported done, no live sender may
  // still think it is pending.
  if (remaining == 0) {
    for (std::size_t i = 0; i < senders.size(); ++i) {
      if (senders[i] == nullptr) continue;
      const net::FlowResult* r = senders[i]->flow_result();
      if (r == nullptr || r->outcome != net::FlowOutcome::kPending) continue;
      if (audit != nullptr) {
        audit_log({"stranded_agent",
                   "flow " + std::to_string(sender_specs[i].id) +
                       " reported done but its sender is still pending"});
      } else {
        assert(false && "sender still pending after the run drained");
      }
    }
  }

  // Flush the final partial bin so goodput integrates to the flow sizes.
  if (opts.per_flow_series) {
    grow_series();
    for (std::size_t i = 0; i < senders.size(); ++i) {
      const net::FlowResult* fr = senders[i]->flow_result();
      const std::int64_t acked = fr ? fr->bytes_acked : 0;
      result.flow_goodput_bps[i].push_back(
          static_cast<double>(acked - (*prev)[i]) * 8.0 /
          sim::to_seconds(opts.flow_series_bin));
      (*prev)[i] = acked;
    }
  }

  result.end_time = simulator.now();
  result.queue_drops = topo.total_queue_drops();
  result.wire_drops = topo.total_wire_drops();
  if (shard_exec != nullptr) {
    // Port counters include drops from overshoot events (events past
    // the stop point that executed inside the final window); the
    // committed total is truncated exactly as the sequential run's.
    result.queue_drops =
        static_cast<std::int64_t>(shard_exec->committed_queue_drops());
  }
  if (streaming) {
    // Flows caught mid-fluid at the horizon fold as pending with the
    // bytes their head + fluid progress delivered (their slots are
    // sender_done from the head handoff, so the loop below skips them).
    // Completions the fluid model reached but whose tail tick never
    // fired (the horizon cut it) fold the same way.
    if (hybrid) {
      for (const auto& c : fluid->drain_completions()) {
        const auto it = fluid_slot.find(c.result.spec.id);
        assert(it != fluid_slot.end());
        net::FlowResult r;
        r.spec = sender_specs[it->second];
        r.bytes_acked = hyb_done[it->second] + c.result.bytes_acked;
        run_stats->add(r, result.end_time);
        fluid_slot.erase(it);
      }
      for (const auto& v : fluid->active_snapshot()) {
        const auto it = fluid_slot.find(v.id);
        if (it == fluid_slot.end()) continue;
        const std::size_t idx = it->second;
        const net::FlowSpec& orig = sender_specs[idx];
        const double mid_bits =
            static_cast<double>(orig.size_bytes - hyb_head - hyb_tail) * 8.0;
        net::FlowResult r;
        r.spec = orig;
        r.bytes_acked =
            hyb_done[idx] +
            static_cast<std::int64_t>((mid_bits - v.remaining_bits) / 8.0);
        run_stats->add(r, result.end_time);
      }
    }
    // Fold in flows still live (or never materialized) at the horizon
    // exactly as the vector path records them: the sender's pending
    // FlowResult, or a zero-byte pending result for flows whose start
    // event never fired. result.flows stays empty — the RunResult
    // helpers read `streaming` instead. A hybrid head/tail segment still
    // in flight folds as the whole flow with its earlier segments' bytes
    // added back.
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].sender_done) continue;
      if (senders[i] != nullptr) {
        const net::FlowResult* r = senders[i]->flow_result();
        assert(r != nullptr);
        if (hybrid && phase[i] != HybridPhase::kNone) {
          net::FlowResult full = *r;
          full.spec = sender_specs[i];
          full.bytes_acked += hyb_done[i];
          run_stats->add(full, result.end_time);
        } else {
          run_stats->add(*r, result.end_time);
        }
      } else {
        net::FlowResult r;
        r.spec = sender_specs[i];
        run_stats->add(r, result.end_time);
      }
      slots[i].sender_done = true;
    }
    result.streaming = run_stats;
  } else {
    for (net::Agent* s : senders) {
      const net::FlowResult* r = s->flow_result();
      assert(r != nullptr);
      result.flows.push_back(*r);
    }
    for (const auto& r : stillborn) result.flows.push_back(r);
  }
  if (meter) {
    for (std::size_t i = 0; i < meter->num_bins(); ++i)
      result.link_utilization.push_back(meter->utilization(i));
  }
  return result;
}

int binary_search_max(int lo, int hi, const std::function<bool(int)>& pred) {
  if (!pred(lo)) return lo - 1;
  int good = lo;
  int bad = hi + 1;
  while (bad - good > 1) {
    const int mid = good + (bad - good) / 2;
    if (pred(mid)) {
      good = mid;
    } else {
      bad = mid;
    }
  }
  return good;
}

}  // namespace pdq::harness
