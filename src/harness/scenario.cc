#include "harness/scenario.h"

#include <algorithm>
#include <cassert>

#include "harness/timeline.h"
#include "net/packet_pool.h"

namespace pdq::harness {

double RunResult::mean_fct_ms() const {
  double sum = 0;
  std::size_t n = 0;
  for (const auto& f : flows) {
    if (f.outcome == net::FlowOutcome::kCompleted) {
      sum += sim::to_millis(f.completion_time());
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double RunResult::max_fct_ms() const {
  double m = 0;
  for (const auto& f : flows) {
    if (f.outcome == net::FlowOutcome::kCompleted)
      m = std::max(m, sim::to_millis(f.completion_time()));
  }
  return m;
}

double RunResult::application_throughput() const {
  std::size_t deadline_flows = 0;
  std::size_t met = 0;
  for (const auto& f : flows) {
    if (!f.spec.has_deadline()) continue;
    ++deadline_flows;
    if (f.deadline_met()) ++met;
  }
  if (deadline_flows == 0) return 100.0;
  return 100.0 * static_cast<double>(met) /
         static_cast<double>(deadline_flows);
}

std::size_t RunResult::completed() const {
  std::size_t n = 0;
  for (const auto& f : flows)
    if (f.outcome == net::FlowOutcome::kCompleted) ++n;
  return n;
}

const net::FlowResult* RunResult::flow(net::FlowId id) const {
  for (const auto& f : flows)
    if (f.spec.id == id) return &f;
  return nullptr;
}

RunResult run_scenario(ProtocolStack& stack, const TopologyBuilder& build,
                       const std::vector<net::FlowSpec>& flows,
                       const RunOptions& opts) {
  sim::Simulator simulator;
  net::Topology topo(simulator, opts.seed);
  build(topo);
  return run_prepared(stack, simulator, topo, flows, opts);
}

RunResult run_prepared(ProtocolStack& stack, sim::Simulator& simulator,
                       net::Topology& topo,
                       const std::vector<net::FlowSpec>& flows,
                       const RunOptions& opts) {
  stack.install(topo);

  RunResult result;
  result.meter_bin = opts.meter_bin;

  // Instrumentation on the watched link.
  std::unique_ptr<sim::RateMeter> meter;
  if (opts.watch_link) {
    const auto [a, b] = *opts.watch_link;
    net::Port* port = topo.port_on_link(a, b);
    assert(port != nullptr);
    meter = std::make_unique<sim::RateMeter>(opts.meter_bin,
                                             port->link().rate_bps);
    port->meter = meter.get();
    port->queue_series = &result.queue_series;
    if (opts.watch_link_drop_rate > 0.0) {
      topo.set_link_drop_rate(a, b, opts.watch_link_drop_rate);
    }
  }

  std::vector<std::unique_ptr<net::Agent>> agents;
  std::vector<net::Agent*> senders;
  // Parallel to `senders`, for timeline link-failure rerouting: the
  // flow's spec and its *current* route (updated on reroute).
  std::vector<net::FlowSpec> sender_specs;
  std::vector<net::RouteRef> sender_routes;
  // Flows injected while a link outage disconnects their endpoints are
  // stillborn: recorded terminated-at-injection, no agents built.
  std::vector<net::FlowResult> stillborn;
  std::size_t remaining = 0;  // incremented per add_flow
  // Timeline events still to fire; the run must not stop before the
  // last one (it may inject flows). Zero when there is no timeline.
  std::size_t timeline_pending = 0;

  const auto add_flow = [&](const net::FlowSpec& f) {
    assert(f.id != net::kInvalidFlow && f.src != f.dst);
    ++remaining;

    net::AgentContext rctx;
    rctx.topo = &topo;
    rctx.local = &topo.host(f.dst);
    rctx.spec = f;
    auto receiver = stack.make_receiver(std::move(rctx));
    topo.host(f.dst).attach_receiver(f.id, receiver.get());

    net::AgentContext sctx;
    sctx.topo = &topo;
    sctx.local = &topo.host(f.src);
    sctx.spec = f;
    sctx.route = topo.ecmp_route(f.id, f.src, f.dst);
    sctx.on_done = [&remaining, &timeline_pending,
                    &simulator](const net::FlowResult&) {
      if (--remaining == 0 && timeline_pending == 0) simulator.stop();
    };
    sender_routes.push_back(sctx.route);
    sender_specs.push_back(f);
    auto sender = stack.make_sender(std::move(sctx));
    topo.host(f.src).attach_sender(f.id, sender.get());
    simulator.schedule_at(f.start_time,
                          [a = sender.get()] { a->start(); });
    senders.push_back(sender.get());

    agents.push_back(std::move(receiver));
    agents.push_back(std::move(sender));
  };
  for (const auto& f : flows) add_flow(f);

  // Optional per-flow goodput sampler (Fig 6/7 time-series plots). The
  // recurring event holds a weak reference to its own closure: a shared
  // self-capture would form an ownership cycle and leak the sampler.
  auto prev = std::make_shared<std::vector<std::int64_t>>(flows.size(), 0);
  auto sample = std::make_shared<std::function<void()>>();
  // Timeline injections grow the flow set mid-run; series rows join
  // late (leading bins absent — their flows did not exist yet).
  const auto grow_series = [&result, &senders, prev] {
    if (prev->size() < senders.size()) {
      prev->resize(senders.size(), 0);
      result.flow_goodput_bps.resize(senders.size());
    }
  };
  if (opts.per_flow_series) {
    result.flow_goodput_bps.resize(flows.size());
    const sim::Time bin = opts.flow_series_bin;
    *sample = [&, prev, bin,
               weak = std::weak_ptr<std::function<void()>>(sample)]() {
      grow_series();
      for (std::size_t i = 0; i < senders.size(); ++i) {
        const net::FlowResult* r = senders[i]->flow_result();
        const std::int64_t acked = r ? r->bytes_acked : 0;
        result.flow_goodput_bps[i].push_back(
            static_cast<double>(acked - (*prev)[i]) * 8.0 /
            sim::to_seconds(bin));
        (*prev)[i] = acked;
      }
      if (remaining > 0) {
        if (auto self = weak.lock()) simulator.schedule_in(bin, *self);
      }
    };
    simulator.schedule_in(bin, *sample);
  }

  // ---- scheduled scenario timeline (harness/timeline.h) ----
  // Everything below is inert without opts.timeline: no extra events, no
  // extra RNG draws — the pre-timeline code path byte-for-byte.
  sim::Rng timeline_rng(opts.seed ^ kTimelineSeedSalt);
  net::FlowId next_flow_id = 1;
  for (const auto& f : flows) {
    next_flow_id = std::max(next_flow_id, f.id + 1);
  }

  const auto inject = [&](std::vector<net::FlowSpec> batch) {
    const sim::Time now = simulator.now();
    for (net::FlowSpec f : batch) {
      if (f.id == net::kInvalidFlow) {
        f.id = next_flow_id++;
      } else {
        next_flow_id = std::max(next_flow_id, f.id + 1);
      }
      f.start_time += now;  // spec start times are relative to the event
      if (topo.shortest_paths(f.src, f.dst).empty()) {
        // Disconnected at injection time (link outage): stillborn.
        net::FlowResult r;
        r.spec = f;
        r.outcome = net::FlowOutcome::kTerminated;
        r.finish_time = now;
        stillborn.push_back(std::move(r));
        continue;
      }
      add_flow(f);
    }
  };

  const auto set_link_state = [&](net::NodeId a, net::NodeId b, bool up) {
    topo.set_link_state(a, b, up);
    if (up) return;  // flows are not re-balanced onto recovered links
    for (std::size_t i = 0; i < senders.size(); ++i) {
      const net::FlowResult* r = senders[i]->flow_result();
      if (r == nullptr || r->outcome != net::FlowOutcome::kPending) continue;
      // Senders with private per-subflow routes (M-PDQ) claim the event
      // and handle their own re-pinning; the parent-route check below
      // would miss their subflow paths entirely.
      if (senders[i]->handle_link_down(a, b)) continue;
      const net::RouteRef& route = sender_routes[i];
      if (route == nullptr) continue;
      bool crosses = false;
      for (std::size_t h = 0; h + 1 < route->fwd.size() && !crosses; ++h) {
        crosses = (route->fwd[h] == a && route->fwd[h + 1] == b) ||
                  (route->fwd[h] == b && route->fwd[h + 1] == a);
      }
      if (!crosses) continue;
      const net::FlowSpec& spec = sender_specs[i];
      if (topo.shortest_paths(spec.src, spec.dst).empty()) {
        sender_routes[i] = nullptr;
        senders[i]->reroute(nullptr);  // no path left: terminate
      } else {
        sender_routes[i] = topo.ecmp_route(spec.id, spec.src, spec.dst);
        senders[i]->reroute(sender_routes[i]);
      }
    }
  };

  std::unordered_map<const void*, std::pair<net::NodeId, net::NodeId>>
      resolved_links;
  TimelineCtx tctx{simulator,    topo,   topo.host_ids(),
                   timeline_rng, inject, set_link_state,
                   &resolved_links};
  if (opts.timeline != nullptr && !opts.timeline->events.empty()) {
    // (at, insertion)-ordered execution: stable sort, then schedule —
    // the event queue breaks same-instant ties by scheduling order.
    std::vector<const TimelineEvent*> ordered;
    ordered.reserve(opts.timeline->events.size());
    for (const auto& e : opts.timeline->events) ordered.push_back(&e);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const TimelineEvent* x, const TimelineEvent* y) {
                       return x->at < y->at;
                     });
    timeline_pending = ordered.size();
    for (const TimelineEvent* e : ordered) {
      simulator.schedule_at(e->at, [&, e] {
        e->action(tctx);
        if (--timeline_pending == 0 && remaining == 0) simulator.stop();
      });
    }
  }

  const net::PacketPool& pool = net::PacketPool::local();
  const std::uint64_t allocs_before = pool.total_allocated();
  const std::uint64_t acquires_before = pool.total_acquires();
  const std::uint64_t scheduled_before = simulator.events_scheduled();
  const std::uint64_t cancelled_before = simulator.events_cancelled();
  const std::uint64_t coalesced_before = topo.total_events_coalesced();
  const std::uint64_t scans_before = topo.total_flowlist_scan_ops();

  result.engine.events_executed = simulator.run(opts.horizon);

  result.engine.events_scheduled =
      simulator.events_scheduled() - scheduled_before;
  result.engine.events_cancelled =
      simulator.events_cancelled() - cancelled_before;
  result.engine.packet_allocs = pool.total_allocated() - allocs_before;
  result.engine.packet_acquires = pool.total_acquires() - acquires_before;
  result.engine.events_coalesced =
      topo.total_events_coalesced() - coalesced_before;
  result.engine.flowlist_scan_ops =
      topo.total_flowlist_scan_ops() - scans_before;

  // Flush the final partial bin so goodput integrates to the flow sizes.
  if (opts.per_flow_series) {
    grow_series();
    for (std::size_t i = 0; i < senders.size(); ++i) {
      const net::FlowResult* fr = senders[i]->flow_result();
      const std::int64_t acked = fr ? fr->bytes_acked : 0;
      result.flow_goodput_bps[i].push_back(
          static_cast<double>(acked - (*prev)[i]) * 8.0 /
          sim::to_seconds(opts.flow_series_bin));
      (*prev)[i] = acked;
    }
  }

  result.end_time = simulator.now();
  result.queue_drops = topo.total_queue_drops();
  result.wire_drops = topo.total_wire_drops();
  for (net::Agent* s : senders) {
    const net::FlowResult* r = s->flow_result();
    assert(r != nullptr);
    result.flows.push_back(*r);
  }
  for (const auto& r : stillborn) result.flows.push_back(r);
  if (meter) {
    for (std::size_t i = 0; i < meter->num_bins(); ++i)
      result.link_utilization.push_back(meter->utilization(i));
  }
  return result;
}

int binary_search_max(int lo, int hi, const std::function<bool(int)>& pred) {
  if (!pred(lo)) return lo - 1;
  int good = lo;
  int bad = hi + 1;
  while (bad - good > 1) {
    const int mid = good + (bad - good) / 2;
    if (pred(mid)) {
      good = mid;
    } else {
      bad = mid;
    }
  }
  return good;
}

}  // namespace pdq::harness
