#include "harness/scenario.h"

#include <algorithm>
#include <cassert>

#include "harness/timeline.h"
#include "net/packet_pool.h"
#include "stats/streaming.h"

namespace pdq::harness {

double RunResult::mean_fct_ms() const {
  if (streaming != nullptr) return streaming->mean_fct_ms();
  double sum = 0;
  std::size_t n = 0;
  for (const auto& f : flows) {
    if (f.outcome == net::FlowOutcome::kCompleted) {
      sum += sim::to_millis(f.completion_time());
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double RunResult::max_fct_ms() const {
  if (streaming != nullptr) return streaming->max_fct_ms();
  double m = 0;
  for (const auto& f : flows) {
    if (f.outcome == net::FlowOutcome::kCompleted)
      m = std::max(m, sim::to_millis(f.completion_time()));
  }
  return m;
}

double RunResult::application_throughput() const {
  if (streaming != nullptr) return streaming->application_throughput();
  std::size_t deadline_flows = 0;
  std::size_t met = 0;
  for (const auto& f : flows) {
    if (!f.spec.has_deadline()) continue;
    ++deadline_flows;
    if (f.deadline_met()) ++met;
  }
  if (deadline_flows == 0) return 100.0;
  return 100.0 * static_cast<double>(met) /
         static_cast<double>(deadline_flows);
}

std::size_t RunResult::completed() const {
  if (streaming != nullptr) return streaming->completed();
  std::size_t n = 0;
  for (const auto& f : flows)
    if (f.outcome == net::FlowOutcome::kCompleted) ++n;
  return n;
}

const net::FlowResult* RunResult::flow(net::FlowId id) const {
  for (const auto& f : flows)
    if (f.spec.id == id) return &f;
  return nullptr;
}

RunResult run_scenario(ProtocolStack& stack, const TopologyBuilder& build,
                       const std::vector<net::FlowSpec>& flows,
                       const RunOptions& opts) {
  sim::Simulator simulator;
  net::Topology topo(simulator, opts.seed);
  build(topo);
  return run_prepared(stack, simulator, topo, flows, opts);
}

RunResult run_prepared(ProtocolStack& stack, sim::Simulator& simulator,
                       net::Topology& topo,
                       const std::vector<net::FlowSpec>& flows,
                       const RunOptions& opts) {
  stack.install(topo);

  RunResult result;
  result.meter_bin = opts.meter_bin;

  // Instrumentation on the watched link.
  std::unique_ptr<sim::RateMeter> meter;
  if (opts.watch_link) {
    const auto [a, b] = *opts.watch_link;
    net::Port* port = topo.port_on_link(a, b);
    assert(port != nullptr);
    meter = std::make_unique<sim::RateMeter>(opts.meter_bin,
                                             port->link().rate_bps);
    port->meter = meter.get();
    port->queue_series = &result.queue_series;
    if (opts.watch_link_drop_rate > 0.0) {
      topo.set_link_drop_rate(a, b, opts.watch_link_drop_rate);
    }
  }

  // Per-flow agent storage. The default path materializes all agents up
  // front (the historical behaviour, byte-for-byte); streaming mode
  // (opts.streaming) defers construction to each flow's start event and
  // retires agents as flows terminate, so live agent memory tracks the
  // number of *active* flows rather than the total (the 100k-flow scale
  // points; docs/architecture.md "Streaming metrics & memory model").
  struct FlowSlot {
    std::unique_ptr<net::Agent> receiver;
    std::unique_ptr<net::Agent> sender;
    std::size_t receiver_bytes = 0;  // footprint charged at materialize
    std::size_t sender_bytes = 0;
    bool sender_done = false;  // on_done ran; stats folded in
  };
  std::vector<FlowSlot> slots;
  std::vector<net::Agent*> senders;  // null: unmaterialized or retired
  // Parallel to `senders`, for timeline link-failure rerouting: the
  // flow's spec and its *current* route (updated on reroute).
  std::vector<net::FlowSpec> sender_specs;
  std::vector<net::RouteRef> sender_routes;
  // Flows injected while a link outage disconnects their endpoints are
  // stillborn: recorded terminated-at-injection, no agents built.
  std::vector<net::FlowResult> stillborn;
  std::size_t remaining = 0;  // incremented per add_flow
  // Timeline events still to fire; the run must not stop before the
  // last one (it may inject flows). Zero when there is no timeline.
  std::size_t timeline_pending = 0;

  const bool streaming = opts.streaming != nullptr;
  assert(!(streaming && opts.per_flow_series) &&
         "per-flow series needs per-flow agents for the whole run");
  // Measurement window for the windowed streaming metrics — the same
  // [warmup, measure_end) the vector path's metrics:: family derives
  // from the timeline (whole run when there is none).
  sim::Time window_lo = 0;
  sim::Time window_hi = sim::kTimeInfinity;
  if (opts.timeline != nullptr) {
    window_lo = opts.timeline->warmup;
    window_hi = opts.timeline->measure_end;
  }
  std::shared_ptr<stats::RunStats> run_stats;
  if (streaming) {
    run_stats = std::make_shared<stats::RunStats>(*opts.streaming,
                                                  window_lo, window_hi);
  }
  // Live agent-footprint accounting (both modes — the counter is how
  // the scale benches show streaming keeps agent memory O(active)).
  std::size_t cur_flow_bytes = 0;
  std::size_t peak_flow_bytes = 0;

  // Retirement machinery (streaming only). Terminated flows enqueue
  // their slot index; a zero-delay, coalesced sweep event destroys
  // every retirable agent *outside* the reporting agent's call frame
  // (on_done fires inside agent methods — freeing there would be a
  // use-after-free on return).
  std::vector<std::size_t> retire_ready;
  bool sweep_scheduled = false;
  std::function<void()> do_sweep;
  const auto schedule_sweep = [&] {
    if (sweep_scheduled) return;
    sweep_scheduled = true;
    // EventFn captures are capped: capture one pointer to the sweep
    // closure rather than the sweep state itself.
    simulator.schedule_in(0, [&do_sweep] { do_sweep(); });
  };
  do_sweep = [&] {
    sweep_scheduled = false;
    for (std::size_t k = 0; k < retire_ready.size(); ++k) {
      const std::size_t idx = retire_ready[k];
      FlowSlot& slot = slots[idx];
      const net::FlowSpec& spec = sender_specs[idx];
      if (slot.sender != nullptr && slot.sender_done &&
          slot.sender->retirable()) {
        slot.sender->quiesce();
        topo.host(spec.src).detach_sender(spec.id);
        cur_flow_bytes -= slot.sender_bytes;
        senders[idx] = nullptr;
        sender_routes[idx] = nullptr;
        slot.sender.reset();
      }
      if (slot.receiver != nullptr && slot.receiver->retirable()) {
        slot.receiver->quiesce();
        topo.host(spec.dst).detach_receiver(spec.id);
        cur_flow_bytes -= slot.receiver_bytes;
        slot.receiver.reset();
      }
    }
    retire_ready.clear();
  };

  // Builds and attaches the agent pair for flow slot `idx`. The default
  // path calls this synchronously from add_flow — construction order,
  // route-cache fills and the event sequence all identical to the
  // historical code; streaming mode calls it from the flow's start
  // event.
  std::function<void(std::size_t)> materialize = [&](std::size_t idx) {
    const net::FlowSpec f = sender_specs[idx];
    if (streaming && topo.shortest_paths(f.src, f.dst).empty()) {
      // Deferred construction can land inside a link outage the default
      // path would have handled via reroute (agents built before the
      // failure): record the flow terminated-at-start.
      net::FlowResult r;
      r.spec = f;
      r.outcome = net::FlowOutcome::kTerminated;
      r.finish_time = simulator.now();
      run_stats->add(r, simulator.now());
      slots[idx].sender_done = true;
      if (--remaining == 0 && timeline_pending == 0) simulator.stop();
      return;
    }

    net::AgentContext rctx;
    rctx.topo = &topo;
    rctx.local = &topo.host(f.dst);
    rctx.spec = f;
    if (streaming) {
      // Receivers that can prove they are done (EchoReceiver after the
      // TERM echo) notify here so the sweep can retire them.
      rctx.on_done = [&retire_ready, &schedule_sweep,
                      idx](const net::FlowResult&) {
        retire_ready.push_back(idx);
        schedule_sweep();
      };
    }
    auto receiver = stack.make_receiver(std::move(rctx));
    topo.host(f.dst).attach_receiver(f.id, receiver.get());

    net::AgentContext sctx;
    sctx.topo = &topo;
    sctx.local = &topo.host(f.src);
    sctx.spec = f;
    sctx.route = topo.ecmp_route(f.id, f.src, f.dst);
    if (streaming) {
      sctx.on_done = [&, idx](const net::FlowResult& r) {
        run_stats->add(r, simulator.now());
        slots[idx].sender_done = true;
        retire_ready.push_back(idx);
        schedule_sweep();
        if (--remaining == 0 && timeline_pending == 0) simulator.stop();
      };
    } else {
      sctx.on_done = [&remaining, &timeline_pending,
                      &simulator](const net::FlowResult&) {
        if (--remaining == 0 && timeline_pending == 0) simulator.stop();
      };
    }
    sender_routes[idx] = sctx.route;
    auto sender = stack.make_sender(std::move(sctx));
    topo.host(f.src).attach_sender(f.id, sender.get());
    senders[idx] = sender.get();

    FlowSlot& slot = slots[idx];
    slot.receiver_bytes = receiver->footprint_bytes();
    slot.sender_bytes = sender->footprint_bytes();
    cur_flow_bytes += slot.receiver_bytes + slot.sender_bytes;
    if (cur_flow_bytes > peak_flow_bytes) peak_flow_bytes = cur_flow_bytes;
    slot.receiver = std::move(receiver);
    slot.sender = std::move(sender);
  };

  const auto add_flow = [&](const net::FlowSpec& f) {
    assert(f.id != net::kInvalidFlow && f.src != f.dst);
    ++remaining;
    const std::size_t idx = slots.size();
    slots.emplace_back();
    senders.push_back(nullptr);
    sender_specs.push_back(f);
    sender_routes.push_back(nullptr);
    if (streaming) {
      // One creation event replaces the one start event, 1:1, so the
      // event-sequence stream keeps the same shape as the default path.
      simulator.schedule_at(f.start_time, [&materialize, &senders, idx] {
        materialize(idx);
        if (senders[idx] != nullptr) senders[idx]->start();
      });
    } else {
      materialize(idx);
      simulator.schedule_at(f.start_time,
                            [a = senders[idx]] { a->start(); });
    }
  };
  for (const auto& f : flows) add_flow(f);

  // Optional per-flow goodput sampler (Fig 6/7 time-series plots). The
  // recurring event holds a weak reference to its own closure: a shared
  // self-capture would form an ownership cycle and leak the sampler.
  auto prev = std::make_shared<std::vector<std::int64_t>>(flows.size(), 0);
  auto sample = std::make_shared<std::function<void()>>();
  // Timeline injections grow the flow set mid-run; series rows join
  // late (leading bins absent — their flows did not exist yet).
  const auto grow_series = [&result, &senders, prev] {
    if (prev->size() < senders.size()) {
      prev->resize(senders.size(), 0);
      result.flow_goodput_bps.resize(senders.size());
    }
  };
  if (opts.per_flow_series) {
    result.flow_goodput_bps.resize(flows.size());
    const sim::Time bin = opts.flow_series_bin;
    *sample = [&, prev, bin,
               weak = std::weak_ptr<std::function<void()>>(sample)]() {
      grow_series();
      for (std::size_t i = 0; i < senders.size(); ++i) {
        const net::FlowResult* r = senders[i]->flow_result();
        const std::int64_t acked = r ? r->bytes_acked : 0;
        result.flow_goodput_bps[i].push_back(
            static_cast<double>(acked - (*prev)[i]) * 8.0 /
            sim::to_seconds(bin));
        (*prev)[i] = acked;
      }
      if (remaining > 0) {
        if (auto self = weak.lock()) simulator.schedule_in(bin, *self);
      }
    };
    simulator.schedule_in(bin, *sample);
  }

  // ---- scheduled scenario timeline (harness/timeline.h) ----
  // Everything below is inert without opts.timeline: no extra events, no
  // extra RNG draws — the pre-timeline code path byte-for-byte.
  sim::Rng timeline_rng(opts.seed ^ kTimelineSeedSalt);
  net::FlowId next_flow_id = 1;
  for (const auto& f : flows) {
    next_flow_id = std::max(next_flow_id, f.id + 1);
  }

  const auto inject = [&](std::vector<net::FlowSpec> batch) {
    const sim::Time now = simulator.now();
    for (net::FlowSpec f : batch) {
      if (f.id == net::kInvalidFlow) {
        f.id = next_flow_id++;
      } else {
        next_flow_id = std::max(next_flow_id, f.id + 1);
      }
      f.start_time += now;  // spec start times are relative to the event
      if (topo.shortest_paths(f.src, f.dst).empty()) {
        // Disconnected at injection time (link outage): stillborn.
        net::FlowResult r;
        r.spec = f;
        r.outcome = net::FlowOutcome::kTerminated;
        r.finish_time = now;
        if (streaming) {
          run_stats->add(r, now);  // folded immediately, O(1) memory
        } else {
          stillborn.push_back(std::move(r));
        }
        continue;
      }
      add_flow(f);
    }
  };

  const auto set_link_state = [&](net::NodeId a, net::NodeId b, bool up) {
    topo.set_link_state(a, b, up);
    if (up) return;  // flows are not re-balanced onto recovered links
    for (std::size_t i = 0; i < senders.size(); ++i) {
      // Streaming mode: unmaterialized flows route at their start event
      // (post-failure routes); retired flows are done. Null is
      // unreachable on the default path.
      if (senders[i] == nullptr) continue;
      const net::FlowResult* r = senders[i]->flow_result();
      if (r == nullptr || r->outcome != net::FlowOutcome::kPending) continue;
      // Senders with private per-subflow routes (M-PDQ) claim the event
      // and handle their own re-pinning; the parent-route check below
      // would miss their subflow paths entirely.
      if (senders[i]->handle_link_down(a, b)) continue;
      const net::RouteRef& route = sender_routes[i];
      if (route == nullptr) continue;
      bool crosses = false;
      for (std::size_t h = 0; h + 1 < route->fwd.size() && !crosses; ++h) {
        crosses = (route->fwd[h] == a && route->fwd[h + 1] == b) ||
                  (route->fwd[h] == b && route->fwd[h + 1] == a);
      }
      if (!crosses) continue;
      const net::FlowSpec& spec = sender_specs[i];
      if (topo.shortest_paths(spec.src, spec.dst).empty()) {
        sender_routes[i] = nullptr;
        senders[i]->reroute(nullptr);  // no path left: terminate
      } else {
        sender_routes[i] = topo.ecmp_route(spec.id, spec.src, spec.dst);
        senders[i]->reroute(sender_routes[i]);
      }
    }
  };

  std::unordered_map<const void*, std::pair<net::NodeId, net::NodeId>>
      resolved_links;
  TimelineCtx tctx{simulator,    topo,   topo.host_ids(),
                   timeline_rng, inject, set_link_state,
                   &resolved_links};
  if (opts.timeline != nullptr && !opts.timeline->events.empty()) {
    // (at, insertion)-ordered execution: stable sort, then schedule —
    // the event queue breaks same-instant ties by scheduling order.
    std::vector<const TimelineEvent*> ordered;
    ordered.reserve(opts.timeline->events.size());
    for (const auto& e : opts.timeline->events) ordered.push_back(&e);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const TimelineEvent* x, const TimelineEvent* y) {
                       return x->at < y->at;
                     });
    timeline_pending = ordered.size();
    for (const TimelineEvent* e : ordered) {
      simulator.schedule_at(e->at, [&, e] {
        e->action(tctx);
        if (--timeline_pending == 0 && remaining == 0) simulator.stop();
      });
    }
  }

  net::PacketPool& pool = net::PacketPool::local();
  // Peak trackers measure this run alone even on a reused pool/queue.
  pool.relax_live_highwater();
  simulator.relax_peak_pending();
  const std::uint64_t allocs_before = pool.total_allocated();
  const std::uint64_t acquires_before = pool.total_acquires();
  const std::uint64_t scheduled_before = simulator.events_scheduled();
  const std::uint64_t cancelled_before = simulator.events_cancelled();
  const std::uint64_t coalesced_before = topo.total_events_coalesced();
  const std::uint64_t scans_before = topo.total_flowlist_scan_ops();

  result.engine.events_executed = simulator.run(opts.horizon);

  result.engine.events_scheduled =
      simulator.events_scheduled() - scheduled_before;
  result.engine.events_cancelled =
      simulator.events_cancelled() - cancelled_before;
  result.engine.packet_allocs = pool.total_allocated() - allocs_before;
  result.engine.packet_acquires = pool.total_acquires() - acquires_before;
  result.engine.events_coalesced =
      topo.total_events_coalesced() - coalesced_before;
  result.engine.flowlist_scan_ops =
      topo.total_flowlist_scan_ops() - scans_before;
  result.engine.peak_pending_events = simulator.peak_pending_events();
  result.engine.pool_highwater = pool.live_highwater();
  result.engine.peak_flow_bytes = peak_flow_bytes;

  // Flush the final partial bin so goodput integrates to the flow sizes.
  if (opts.per_flow_series) {
    grow_series();
    for (std::size_t i = 0; i < senders.size(); ++i) {
      const net::FlowResult* fr = senders[i]->flow_result();
      const std::int64_t acked = fr ? fr->bytes_acked : 0;
      result.flow_goodput_bps[i].push_back(
          static_cast<double>(acked - (*prev)[i]) * 8.0 /
          sim::to_seconds(opts.flow_series_bin));
      (*prev)[i] = acked;
    }
  }

  result.end_time = simulator.now();
  result.queue_drops = topo.total_queue_drops();
  result.wire_drops = topo.total_wire_drops();
  if (streaming) {
    // Fold in flows still live (or never materialized) at the horizon
    // exactly as the vector path records them: the sender's pending
    // FlowResult, or a zero-byte pending result for flows whose start
    // event never fired. result.flows stays empty — the RunResult
    // helpers read `streaming` instead.
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].sender_done) continue;
      if (senders[i] != nullptr) {
        const net::FlowResult* r = senders[i]->flow_result();
        assert(r != nullptr);
        run_stats->add(*r, result.end_time);
      } else {
        net::FlowResult r;
        r.spec = sender_specs[i];
        run_stats->add(r, result.end_time);
      }
      slots[i].sender_done = true;
    }
    result.streaming = run_stats;
  } else {
    for (net::Agent* s : senders) {
      const net::FlowResult* r = s->flow_result();
      assert(r != nullptr);
      result.flows.push_back(*r);
    }
    for (const auto& r : stillborn) result.flows.push_back(r);
  }
  if (meter) {
    for (std::size_t i = 0; i < meter->num_bins(); ++i)
      result.link_utilization.push_back(meter->utilization(i));
  }
  return result;
}

int binary_search_max(int lo, int hi, const std::function<bool(int)>& pred) {
  if (!pred(lo)) return lo - 1;
  int good = lo;
  int bad = hi + 1;
  while (bad - good > 1) {
    const int mid = good + (bad - good) / 2;
    if (pred(mid)) {
      good = mid;
    } else {
      bad = mid;
    }
  }
  return good;
}

}  // namespace pdq::harness
