#include "harness/timeline.h"

#include <algorithm>
#include <cassert>
#include <memory>

namespace pdq::harness {

LinkSelector link_on_path(int src_server, int dst_server, int hop) {
  return [src_server, dst_server, hop](
             net::Topology& topo,
             const std::vector<net::NodeId>& servers) {
    const net::NodeId s = servers.at(static_cast<std::size_t>(src_server));
    const net::NodeId d = servers.at(static_cast<std::size_t>(dst_server));
    const auto& paths = topo.shortest_paths(s, d);
    assert(!paths.empty() && "link_on_path: no path between servers");
    const auto& path = paths.front();
    assert(path.size() >= 2);
    const int last = static_cast<int>(path.size()) - 2;
    int h = hop < 0 ? static_cast<int>(path.size() / 2) - 1 : hop;
    h = std::clamp(h, 0, last);
    return std::make_pair(path[static_cast<std::size_t>(h)],
                          path[static_cast<std::size_t>(h) + 1]);
  };
}

TimelineSpec& TimelineSpec::at(sim::Time t, std::string label,
                               std::function<void(TimelineCtx&)> action) {
  events.push_back({t, std::move(label), std::move(action)});
  return *this;
}

TimelineSpec& TimelineSpec::incast(sim::Time t, int fanin,
                                   std::int64_t bytes_each, int target_server,
                                   sim::Time deadline) {
  assert(fanin > 0 && bytes_each > 0);
  return at(t, "incast", [fanin, bytes_each, target_server,
                          deadline](TimelineCtx& ctx) {
    const int n = static_cast<int>(ctx.servers.size());
    assert(n >= 2);
    const int tgt = target_server < 0 ? n - 1 : target_server;
    std::vector<net::FlowSpec> batch;
    batch.reserve(static_cast<std::size_t>(fanin));
    for (int i = 0; i < fanin; ++i) {
      net::FlowSpec f;
      // Round-robin over the other servers; never the target itself.
      const int src = (tgt + 1 + i % (n - 1)) % n;
      f.src = ctx.servers[static_cast<std::size_t>(src)];
      f.dst = ctx.servers[static_cast<std::size_t>(tgt)];
      f.size_bytes = bytes_each;
      f.deadline = deadline;
      f.start_time = 0;  // relative: released at the event instant
      batch.push_back(f);
    }
    ctx.inject(std::move(batch));
  });
}

TimelineSpec& TimelineSpec::link_down(sim::Time t, LinkSelector sel) {
  return at(t, "link_down", [sel = std::move(sel)](TimelineCtx& ctx) {
    const auto [a, b] = sel(ctx.topo, ctx.servers);
    ctx.set_link_state(a, b, false);
  });
}

TimelineSpec& TimelineSpec::link_up(sim::Time t, LinkSelector sel) {
  return at(t, "link_up", [sel = std::move(sel)](TimelineCtx& ctx) {
    const auto [a, b] = sel(ctx.topo, ctx.servers);
    ctx.set_link_state(a, b, true);
  });
}

TimelineSpec& TimelineSpec::link_failure(sim::Time down_at, sim::Time up_at,
                                         LinkSelector sel) {
  assert(down_at <= up_at);
  // `tag` identifies this down/up pair; the resolved link itself lives
  // in the per-run ctx.resolved_links map (the spec — and this
  // immutable tag — may be shared by many concurrent runs).
  auto tag = std::make_shared<char>();
  at(down_at, "link_down",
     [sel = std::move(sel), tag](TimelineCtx& ctx) {
       const auto link = sel(ctx.topo, ctx.servers);
       (*ctx.resolved_links)[tag.get()] = link;
       ctx.set_link_state(link.first, link.second, false);
     });
  at(up_at, "link_up", [tag](TimelineCtx& ctx) {
    const auto it = ctx.resolved_links->find(tag.get());
    assert(it != ctx.resolved_links->end() && "link_up before link_down");
    ctx.set_link_state(it->second.first, it->second.second, true);
  });
  return *this;
}

TimelineSpec& TimelineSpec::load_shift(sim::Time t,
                                       workload::OpenLoopOptions burst) {
  return at(t, "load_shift", [burst = std::move(burst)](TimelineCtx& ctx) {
    auto flows = workload::make_open_loop_flows(ctx.servers, burst, ctx.rng);
    for (auto& f : flows) f.id = net::kInvalidFlow;  // harness assigns
    ctx.inject(std::move(flows));
  });
}

TimelineSpec& TimelineSpec::window(sim::Time warmup_end, sim::Time end) {
  warmup = warmup_end;
  measure_end = end;
  return *this;
}

}  // namespace pdq::harness
