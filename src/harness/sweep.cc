#include "harness/sweep.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>

#include "harness/timeline.h"
#include "net/packet_pool.h"

namespace pdq::harness {

double SweepResults::mean(std::size_t point, std::size_t column) const {
  const auto& cell = samples[point][column];
  if (cell.empty()) return 0.0;
  double total = 0;
  for (double v : cell) total += v;
  return total / static_cast<double>(cell.size());
}

std::vector<std::vector<double>> SweepResults::means() const {
  std::vector<std::vector<double>> out(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    out[p].reserve(columns.size());
    for (std::size_t c = 0; c < columns.size(); ++c) {
      out[p].push_back(mean(p, c));
    }
  }
  return out;
}

int SweepResults::column_index(const std::string& label) const {
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (columns[c] == label) return static_cast<int>(c);
  }
  return -1;
}

SweepRunner::SweepRunner(int threads) : threads_(threads) {
  if (threads_ <= 0) {
    threads_ = static_cast<int>(std::thread::hardware_concurrency());
    if (threads_ <= 0) threads_ = 1;
  }
}

SweepRunner::SampleRun SweepRunner::run_sample(const Scenario& scenario,
                                               const std::string& stack,
                                               const StackOptions& options,
                                               std::uint64_t seed) {
  // Each sample is a fully isolated simulation: own packet pool, own
  // kernel, own topology (seeded for ECMP), own workload RNG. The cold
  // ScopedPool makes the engine counters deterministic for any thread
  // count; it must outlive the simulator (pending events at the horizon
  // may still hold packets), hence the declaration order.
  net::PacketPool pool;
  net::PacketPool::ScopedPool scope(pool);
  sim::Simulator simulator;
  net::Topology topo(simulator, seed);
  const std::vector<net::NodeId> servers = scenario.topology.build(topo);
  sim::Rng rng(seed);
  SampleRun run;
  run.flows = scenario.workload.make(servers, rng);

  std::string error;
  auto s = StackRegistry::global().make(stack, options, &error);
  if (s == nullptr) {
    std::fprintf(stderr, "SweepRunner: %s\n", error.c_str());
    std::exit(2);
  }
  RunOptions opts = scenario.options;
  opts.seed = seed;
  run.result = run_prepared(*s, simulator, topo, run.flows, opts);
  return run;
}

double SweepRunner::evaluate(const Scenario& scenario, const Column& column,
                             std::uint64_t seed, const MetricFn& fallback,
                             const std::string& point_label, int trial) {
  if (column.evaluate) return column.evaluate(scenario, seed);

  RunContext ctx;
  ctx.scenario = &scenario;
  ctx.point = point_label;
  ctx.seed = seed;
  ctx.trial = trial;

  const MetricFn& metric = column.metric ? column.metric : fallback;
  assert(metric && "column has no metric and no spec default");

  if (column.stack.empty()) {
    // Analytic column: fluid model on the flow set alone, no packets.
    sim::Simulator simulator;
    net::Topology topo(simulator, seed);
    const std::vector<net::NodeId> servers = scenario.topology.build(topo);
    sim::Rng rng(seed);
    const std::vector<net::FlowSpec> flows =
        scenario.workload.make(servers, rng);
    ctx.flows = &flows;
    return metric(ctx);
  }

  const SampleRun run =
      run_sample(scenario, column.stack, column.options, seed);
  ctx.flows = &run.flows;
  ctx.result = &run.result;
  ctx.stack = StackRegistry::global().resolve(column.stack);
  return metric(ctx);
}

namespace {

/// Fails fast — on the calling thread, before any pool is spawned — when
/// a column can never evaluate: unknown registry stack, or no metric
/// anywhere. Workers must never exit the process mid-simulation.
void validate_column(const Column& column, const MetricFn& fallback) {
  if (column.evaluate) return;
  if (!column.metric && !fallback) {
    std::fprintf(stderr,
                 "SweepRunner: column \"%s\" has no metric and no spec "
                 "default\n",
                 column.label.c_str());
    std::exit(2);
  }
  if (!column.stack.empty() &&
      !StackRegistry::global().contains(column.stack)) {
    std::fprintf(
        stderr, "SweepRunner: column \"%s\": unknown stack \"%s\"; "
        "available: %s\n",
        column.label.c_str(), column.stack.c_str(),
        StackRegistry::global().available().c_str());
    std::exit(2);
  }
}

/// Runs `jobs` closures indexed 0..n-1 over `threads` workers. Inline
/// when a single worker suffices (exact same arithmetic either way).
void run_pool(int threads, std::size_t n,
              const std::function<void(std::size_t)>& job) {
  const int workers =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(threads), n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) job(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        job(i);
      }
    });
  }
  for (auto& t : pool) t.join();
}

}  // namespace

SweepResults SweepRunner::run(const ExperimentSpec& spec) const {
  SweepResults results;
  results.name = spec.name;
  results.title = spec.title;
  results.axis = spec.axis;
  results.metric = spec.metric.name;
  results.base_seed = spec.base_seed;
  for (const auto& c : spec.columns) results.columns.push_back(c.label);
  for (const auto& p : spec.points) results.points.push_back(p.label);
  for (int t = 0; t < spec.trials; ++t) {
    results.seeds.push_back(trial_seed(spec.base_seed, t));
  }

  const std::size_t num_points = spec.points.size();
  const std::size_t num_cols = spec.columns.size();
  const std::size_t num_trials = static_cast<std::size_t>(spec.trials);
  results.samples.assign(
      num_points, std::vector<std::vector<double>>(
                      num_cols, std::vector<double>(num_trials, 0.0)));

  // Materialize per-point scenarios and per-(point, column) columns once,
  // up front — the worker loop then only reads shared state.
  std::vector<Scenario> scenarios;
  scenarios.reserve(num_points);
  std::vector<std::vector<Column>> columns(num_points);
  for (std::size_t p = 0; p < num_points; ++p) {
    Scenario s = spec.base;
    if (spec.points[p].apply) spec.points[p].apply(s);
    // After apply: points that replace the scenario wholesale (fig13's
    // topology ladder) still run in streaming mode.
    if (spec.streaming_metrics != nullptr) {
      s.options.streaming = spec.streaming_metrics;
    }
    if (spec.hybrid_backend != nullptr) {
      s.options.hybrid = spec.hybrid_backend;
    }
    if (spec.fault_plane != nullptr) {
      s.options.faults = spec.fault_plane;
    }
    if (spec.shards > 1) {
      s.options.shards = spec.shards;
    }
    scenarios.push_back(std::move(s));
    columns[p].reserve(num_cols);
    for (std::size_t c = 0; c < num_cols; ++c) {
      Column col = spec.columns[c];
      if (spec.points[p].tune) spec.points[p].tune(col);
      validate_column(col, spec.metric.fn);  // fail fast, pre-pool
      columns[p].push_back(std::move(col));
    }
  }

  const std::size_t total = num_points * num_cols * num_trials;
  run_pool(threads_, total, [&](std::size_t i) {
    const std::size_t p = i / (num_cols * num_trials);
    const std::size_t c = (i / num_trials) % num_cols;
    const int t = static_cast<int>(i % num_trials);
    results.samples[p][c][static_cast<std::size_t>(t)] =
        evaluate(scenarios[p], columns[p][c], trial_seed(spec.base_seed, t),
                 spec.metric.fn, spec.points[p].label, t);
  });
  return results;
}

std::vector<double> SweepRunner::samples(const Scenario& scenario,
                                         const Column& column, int trials,
                                         std::uint64_t base_seed,
                                         const MetricFn& fallback) const {
  validate_column(column, fallback);  // fail fast, pre-pool
  std::vector<double> out(static_cast<std::size_t>(trials), 0.0);
  run_pool(threads_, out.size(), [&](std::size_t t) {
    out[t] = evaluate(scenario, column, base_seed + kTrialSeedStride * t,
                      fallback, "", static_cast<int>(t));
  });
  return out;
}

double SweepRunner::average(const Scenario& scenario, const Column& column,
                            int trials, std::uint64_t base_seed,
                            const MetricFn& fallback) const {
  const auto values = samples(scenario, column, trials, base_seed, fallback);
  double total = 0;
  for (double v : values) total += v;
  return values.empty() ? 0.0 : total / static_cast<double>(values.size());
}

stats::RunStats SweepRunner::merged_streaming(
    const Scenario& scenario, const std::string& stack,
    const StackOptions& options, int trials,
    const stats::StreamingSpec& stream_spec, std::uint64_t base_seed) const {
  Scenario sc = scenario;
  sc.options.streaming =
      std::make_shared<const stats::StreamingSpec>(stream_spec);
  // One accumulator per trial slot, merged sequentially in trial order
  // below — determinism does not depend on worker interleaving.
  std::vector<std::shared_ptr<const stats::RunStats>> per_trial(
      static_cast<std::size_t>(trials));
  run_pool(threads_, per_trial.size(), [&](std::size_t t) {
    const SampleRun run =
        run_sample(sc, stack, options, base_seed + kTrialSeedStride * t);
    per_trial[t] = run.result.streaming;
  });
  // The merged window comes from the scenario's timeline, exactly as
  // run_prepared derives it for each trial.
  sim::Time lo = 0;
  sim::Time hi = sim::kTimeInfinity;
  if (sc.options.timeline != nullptr) {
    lo = sc.options.timeline->warmup;
    hi = sc.options.timeline->measure_end;
  }
  stats::RunStats merged(stream_spec, lo, hi);
  for (const auto& s : per_trial) {
    assert(s != nullptr);
    merged.merge(*s);
  }
  return merged;
}

}  // namespace pdq::harness
