// Scheduled scenario timelines: mid-run events over a running simulation.
//
// A TimelineSpec is a sorted list of scheduled events — flow-batch
// injections (incast bursts, open-loop load shifts), link failures and
// recoveries — executed by run_prepared() while the simulation runs,
// plus the steady-state measurement window (warmup/measure_end) the
// windowed metrics trim to. This is the first scenario class where the
// arrival order of work is not known at t = 0: flows materialize when
// their event fires, link failures reroute (or terminate) in-flight
// flows deterministically.
//
// Attach a timeline through RunOptions::timeline
// (scenario.options.timeline on an ExperimentSpec); a scenario without
// one runs the exact pre-timeline code path. All timeline randomness
// draws from a dedicated Rng seeded seed ^ kTimelineSeedSalt, so the
// trial-seed ladder applies and the workload's draw sequence is never
// perturbed by timeline edits.
//
// Server indices used by the builders below index Topology::host_ids(),
// which matches the server list every built-in TopologySpec builder
// returns. M-PDQ subflows are rerouted too: MpdqSender claims the
// link-down event via Agent::handle_link_down and re-pins each affected
// subflow onto the refreshed disjoint-path set (or terminates the flow
// when the receiver becomes unreachable).
//
// See docs/workloads.md for the cookbook.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/flow.h"
#include "net/topology.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "workload/arrivals.h"

namespace pdq::harness {

/// XOR-salt applied to the run seed to derive the timeline Rng stream
/// (documented so figures remain reproducible from (spec, base_seed)).
inline constexpr std::uint64_t kTimelineSeedSalt = 0x7D0D11E5EEDULL;

/// What a timeline event may touch while the simulation runs. The
/// callbacks are provided by run_prepared(); actions must not keep
/// references past their invocation.
struct TimelineCtx {
  sim::Simulator& sim;
  net::Topology& topo;
  /// Topology::host_ids() — the servers timeline indices refer to.
  const std::vector<net::NodeId>& servers;
  /// Dedicated timeline random stream (seed ^ kTimelineSeedSalt).
  sim::Rng& rng;
  /// Injects a flow batch: ids are assigned by the harness (leave
  /// kInvalidFlow), start_time is interpreted *relative to now*.
  std::function<void(std::vector<net::FlowSpec>)> inject;
  /// Administratively flips a link; on `down`, in-flight flows whose
  /// current route crosses it are rerouted via fresh ECMP lookups (or
  /// terminated when no path remains).
  std::function<void(net::NodeId, net::NodeId, bool up)> set_link_state;
  /// Per-run scratch keyed by event identity (link_failure stores the
  /// link its down event resolved so the up event restores the same
  /// physical link). Owned by run_prepared — one map per run, so a
  /// TimelineSpec shared across concurrent SweepRunner samples carries
  /// no mutable run state.
  std::unordered_map<const void*, std::pair<net::NodeId, net::NodeId>>*
      resolved_links = nullptr;
};

/// Resolves a concrete link at run time (node ids depend on the
/// topology builder).
using LinkSelector = std::function<std::pair<net::NodeId, net::NodeId>(
    net::Topology&, const std::vector<net::NodeId>& servers)>;

/// The hop-th link on the first shortest path between two servers (by
/// server index); hop < 0 selects the middle link of the path — on a
/// fat-tree that is an aggregation<->core link.
LinkSelector link_on_path(int src_server, int dst_server, int hop = -1);

struct TimelineEvent {
  sim::Time at = 0;
  std::string label;
  std::function<void(TimelineCtx&)> action;
};

struct TimelineSpec {
  /// Executed in (at, insertion) order — ties keep insertion order.
  std::vector<TimelineEvent> events;

  /// Steady-state measurement window: windowed metrics
  /// (metrics::windowed_* / goodput / deadline-miss) only count flows
  /// whose start_time falls in [warmup, measure_end).
  sim::Time warmup = 0;
  sim::Time measure_end = sim::kTimeInfinity;

  // ---- builders (chainable) ----

  /// Arbitrary event.
  TimelineSpec& at(sim::Time t, std::string label,
                   std::function<void(TimelineCtx&)> action);

  /// N->1 incast burst: `fanin` flows of `bytes_each` into
  /// `target_server` (-1 = last server), all released at `t`. Senders
  /// are the servers following the target round-robin. `deadline` is
  /// per-flow relative (kTimeInfinity = none).
  TimelineSpec& incast(sim::Time t, int fanin, std::int64_t bytes_each,
                       int target_server = -1,
                       sim::Time deadline = sim::kTimeInfinity);

  /// Link failure / recovery at `t` of the link `sel` resolves. NOTE:
  /// selectors resolve at *event* time, against the then-current
  /// topology state — a link_up selector re-resolves after the failure
  /// already changed the path set and may pick a different link. For a
  /// down-then-up pair of the same physical link use link_failure().
  TimelineSpec& link_down(sim::Time t, LinkSelector sel);
  TimelineSpec& link_up(sim::Time t, LinkSelector sel);

  /// Fails the link `sel` resolves at `down_at` and restores the *same
  /// physical link* at `up_at` (the selector runs once, at down time).
  TimelineSpec& link_failure(sim::Time down_at, sim::Time up_at,
                             LinkSelector sel);

  /// Open-loop load shift: injects a fresh open-loop batch generated at
  /// `t` from the timeline Rng; `burst.start` and the generated arrival
  /// times are relative to `t`.
  TimelineSpec& load_shift(sim::Time t, workload::OpenLoopOptions burst);

  /// Sets the measurement window (chainable convenience).
  TimelineSpec& window(sim::Time warmup_end,
                       sim::Time end = sim::kTimeInfinity);
};

}  // namespace pdq::harness
