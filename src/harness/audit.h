// Watchdog + invariant auditor: turns "mysterious hang" into a
// structured violation report.
//
// Motivation: the PR-8 stranded-sender/ghost-grant bug hung 85k-flow
// runs silently — a stale TERM retired a live receiver, the sender
// probed to the horizon, and under PDQ its ghost allocation starved
// every co-hosted flow. The auditor makes that class of failure loud:
// a progress watchdog stops the run and reports instead of spinning,
// and end-of-run checks cover stranded flows, packet conservation,
// retired-agent leaks and PDQ ghost grants.
//
// Wiring: RunOptions::audit enables it explicitly; enabling a fault
// plane (RunOptions::faults) turns a default-constructed AuditSpec on
// automatically. With auditing off, run_prepared schedules no extra
// events and draws nothing — the historical path byte-for-byte (a
// debug-build assert on the drained-run invariant is the only always-on
// piece).
#pragma once

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "net/types.h"
#include "sim/time.h"

namespace pdq::net {
class Topology;
}  // namespace pdq::net

namespace pdq::harness {

struct AuditSpec {
  /// Progress watchdog: fail the run when no live flow acks a byte for
  /// `stall_checks` consecutive intervals. Generous by default — PDQ
  /// legitimately pauses individual flows for long stretches, but in
  /// any non-wedged run *some* flow is acking.
  bool progress_watchdog = true;
  sim::Time progress_interval = 500 * sim::kMillisecond;
  int stall_checks = 6;
  /// Stop the simulation at the stall (the "fail the run instead of
  /// spinning to the horizon" behaviour) rather than only reporting.
  bool stop_on_stall = true;

  // End-of-run checks.
  bool check_stranded = true;      // live flows with a drained event queue
  bool check_conservation = true;  // PacketPool live-count conservation
  bool check_ghost_grants = true;  // switch grants no live sender owns
  /// A grant for an unowned flow younger than this is ordinary
  /// post-TERM staleness the switch GC will collect (PdqConfig::
  /// gc_timeout, default 100 ms); older is a ghost. Keep this above the
  /// stack's GC timeout.
  sim::Time ghost_grace = 250 * sim::kMillisecond;
  /// Chaos-suite mode: flows unfinished at the horizon are violations
  /// (workloads there are sized to drain well before it).
  bool require_drain = false;
  /// Print the diagnostic dump to stderr when a violation is recorded.
  bool log_to_stderr = true;
};

struct AuditViolation {
  /// "no_progress" | "stranded_flow" | "stranded_agent" | "packet_leak"
  /// | "ghost_grant" | "unfinished".
  std::string kind;
  /// Structured diagnostic dump: flow ids, last event key, per-link
  /// controller state — whatever the check saw.
  std::string detail;
};

struct AuditReport {
  std::vector<AuditViolation> violations;
  bool ok() const { return violations.empty(); }
  std::string to_string() const;
};

/// Scans every port's link controller for grants whose flow id no host
/// currently has a sender attached for, older than `grace`. Appends one
/// "ghost_grant" violation per offending link (grant details inline).
void scan_ghost_grants(net::Topology& topo, sim::Time now, sim::Time grace,
                       AuditReport& report);

/// Up to `max_lines` one-line summaries of per-link controller state
/// (links with grants only) — the controller section of the watchdog's
/// diagnostic dump.
std::string describe_controllers(net::Topology& topo, std::size_t max_lines);

}  // namespace pdq::harness
