// SweepRunner: executes an ExperimentSpec's (column x point x trial)
// cross product over a std::thread pool.
//
// Every run is an independent, single-threaded, deterministic simulation
// (its own Simulator, Topology and Rng, all seeded from the documented
// trial-seed ladder), so results are identical for any thread count —
// only wall time changes. Workers write into pre-sized result slots;
// no locks are held around simulation work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "stats/streaming.h"

namespace pdq::harness {

/// The filled-in cross product. samples[p][c][t] is the metric value of
/// point p, column c, trial t (seed = trial_seed(base_seed, t)).
struct SweepResults {
  std::string name;
  std::string title;
  std::string axis;
  std::string metric;
  std::uint64_t base_seed = kDefaultBaseSeed;
  std::vector<std::string> columns;
  std::vector<std::string> points;
  std::vector<std::uint64_t> seeds;  // one per trial
  std::vector<std::vector<std::vector<double>>> samples;

  double mean(std::size_t point, std::size_t column) const;
  /// means()[p][c] — the table the text sink prints.
  std::vector<std::vector<double>> means() const;
  /// Column index by label; -1 when absent.
  int column_index(const std::string& label) const;
};

class SweepRunner {
 public:
  /// threads <= 0 picks std::thread::hardware_concurrency().
  explicit SweepRunner(int threads = 0);

  /// Runs the full spec. Deterministic for any thread count.
  SweepResults run(const ExperimentSpec& spec) const;

  /// One sample: materializes the scenario's topology + workload with
  /// `seed`, runs the column's stack (or analytic/custom evaluation) and
  /// applies its metric. `fallback` supplies the metric when the column
  /// has none.
  static double evaluate(const Scenario& scenario, const Column& column,
                         std::uint64_t seed, const MetricFn& fallback,
                         const std::string& point_label = "", int trial = 0);

  /// A fully materialized simulation sample: the canonical
  /// (scenario, stack, seed) -> RunResult recipe behind evaluate(),
  /// also used by counter-reporting benches (fig13). Runs on a cold
  /// PacketPool (ScopedPool), so RunResult::engine — including
  /// packet_allocs — is a pure function of the inputs: identical for
  /// any thread count or prior pool warmth. Exits with a registry
  /// error message on an unknown stack name.
  struct SampleRun {
    RunResult result;
    std::vector<net::FlowSpec> flows;
  };
  static SampleRun run_sample(const Scenario& scenario,
                              const std::string& stack,
                              const StackOptions& options,
                              std::uint64_t seed);

  /// `trials` samples of one (scenario, column) cell, fanned across the
  /// pool; used by adaptive drivers (binary search over a predicate).
  std::vector<double> samples(const Scenario& scenario, const Column& column,
                              int trials,
                              std::uint64_t base_seed = kDefaultBaseSeed,
                              const MetricFn& fallback = nullptr) const;

  /// Mean of samples() — the seed-averaging helper benches build
  /// predicates from.
  double average(const Scenario& scenario, const Column& column, int trials,
                 std::uint64_t base_seed = kDefaultBaseSeed,
                 const MetricFn& fallback = nullptr) const;

  /// `trials` streaming-mode samples of (scenario, stack), fanned across
  /// the pool, with the per-trial accumulators merged *in trial order* —
  /// byte-identical for any thread count. The scenario's own
  /// options.streaming is replaced by `stream_spec` for these runs.
  stats::RunStats merged_streaming(
      const Scenario& scenario, const std::string& stack,
      const StackOptions& options, int trials,
      const stats::StreamingSpec& stream_spec,
      std::uint64_t base_seed = kDefaultBaseSeed) const;

  int threads() const { return threads_; }

 private:
  int threads_;
};

}  // namespace pdq::harness
