#include "harness/registry.h"

#include <algorithm>

namespace pdq::harness {

StackRegistry& StackRegistry::global() {
  static StackRegistry* registry = [] {
    auto* r = new StackRegistry();
    register_builtin_stacks(*r);
    return r;
  }();
  return *registry;
}

void StackRegistry::add(const std::string& name,
                        const std::string& description, Factory factory) {
  for (auto& e : entries_) {
    if (e.name == name) {
      e.description = description;
      e.factory = std::move(factory);
      return;
    }
  }
  entries_.push_back({name, description, std::move(factory)});
}

void StackRegistry::add_alias(const std::string& alias,
                              const std::string& canonical) {
  aliases_[alias] = canonical;
}

const StackRegistry::Entry* StackRegistry::find(
    const std::string& name) const {
  std::string key = name;
  const auto alias = aliases_.find(name);
  if (alias != aliases_.end()) key = alias->second;
  for (const auto& e : entries_) {
    if (e.name == key) return &e;
  }
  return nullptr;
}

std::unique_ptr<ProtocolStack> StackRegistry::make(
    const std::string& name, const StackOptions& options,
    std::string* error) const {
  const Entry* e = find(name);
  if (e == nullptr) {
    if (error != nullptr) {
      *error = "unknown stack \"" + name + "\"; available: " + available();
    }
    return nullptr;
  }
  return e->factory(options);
}

bool StackRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

std::string StackRegistry::resolve(const std::string& name) const {
  const Entry* e = find(name);
  return e == nullptr ? std::string() : e->name;
}

std::string StackRegistry::describe(const std::string& name) const {
  const Entry* e = find(name);
  return e == nullptr ? std::string() : e->description;
}

std::vector<std::string> StackRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

std::vector<std::string> StackRegistry::aliases_of(
    const std::string& canonical) const {
  std::vector<std::string> out;
  for (const auto& [alias, target] : aliases_) {
    if (target == canonical) out.push_back(alias);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string StackRegistry::available() const {
  std::string out;
  for (const auto& e : entries_) {
    if (!out.empty()) out += ", ";
    out += e.name;
  }
  return out;
}

}  // namespace pdq::harness
