// Result sinks: pluggable outputs for SweepResults.
//
// TableSink prints the aligned text table the bench binaries always
// printed; CsvSink and JsonSink persist per-trial samples (one record
// per (point, column, trial)) for downstream plotting — run_all_figs.sh
// collects them under results/.
#pragma once

#include <cstdio>
#include <string>

#include "harness/sweep.h"

namespace pdq::harness {

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void write(const SweepResults& results) = 0;
};

/// Aligned text table of per-cell means: one row per sweep point, one
/// column per Column (the historical bench format, byte-for-byte).
class TableSink : public ResultSink {
 public:
  explicit TableSink(std::FILE* out = stdout, std::string cell_format = " %12.2f")
      : out_(out), cell_format_(std::move(cell_format)) {}

  /// Swap rows and columns (single-point specs whose natural table lists
  /// one row per protocol).
  TableSink& transpose(bool on = true) { transpose_ = on; return *this; }
  /// Print the title block before the table.
  TableSink& with_title(bool on = true) { with_title_ = on; return *this; }

  void write(const SweepResults& results) override;

 private:
  std::FILE* out_;
  std::string cell_format_;
  bool transpose_ = false;
  bool with_title_ = false;
};

/// results/<name>.csv with header
/// experiment,point,column,trial,seed,metric,value — one row per sample.
/// Rows are emitted in (point, column, trial) order, which is identical
/// for any SweepRunner thread count.
class CsvSink : public ResultSink {
 public:
  explicit CsvSink(std::string path) : path_(std::move(path)) {}
  void write(const SweepResults& results) override;

 private:
  std::string path_;
};

/// results/<name>.json: experiment metadata plus the full sample grid.
class JsonSink : public ResultSink {
 public:
  explicit JsonSink(std::string path) : path_(std::move(path)) {}
  void write(const SweepResults& results) override;

 private:
  std::string path_;
};

/// RFC-4180 field escaping: quotes the field when it contains a comma,
/// quote, CR or LF; embedded quotes are doubled.
std::string csv_escape(const std::string& field);

/// JSON string-body escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

/// `dir`/`name`.`ext`, creating `dir` (one level) if needed.
std::string result_path(const std::string& dir, const std::string& name,
                        const std::string& ext);

}  // namespace pdq::harness
