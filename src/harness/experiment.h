// Experiment API v2: declarative experiment descriptions.
//
// An ExperimentSpec names everything one paper-style experiment needs —
// topology, workload, the stacks under test (as registry names plus
// overrides), the sweep axis, trials and metric — and the SweepRunner
// (sweep.h) executes the (column x point x trial) cross product. The
// v1 entry point, run_scenario(), remains as a thin compatibility shim
// for one-off runs; see docs/architecture.md for the migration map.
//
// Seeding: trial t of an experiment runs with trial_seed(base_seed, t)
// = base_seed + 7*t. The stride is fixed and documented so figures are
// reproducible from (figure, base_seed) alone; trials of one experiment
// never share a seed, and the default base seed 1000 reproduces the
// historical bench outputs. `--seed` on a bench binary replaces the base.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harness/registry.h"
#include "harness/scenario.h"
#include "sched/fluid.h"
#include "workload/arrivals.h"
#include "workload/workload.h"

namespace pdq::harness {

/// Default base seed; with the kTrialSeedStride ladder this reproduces
/// the pre-v2 bench seed sequence 1000, 1007, 1014, ...
inline constexpr std::uint64_t kDefaultBaseSeed = 1000;
inline constexpr std::uint64_t kTrialSeedStride = 7;

/// The documented seed ladder: trial t runs with base + 7*t.
constexpr std::uint64_t trial_seed(std::uint64_t base, int trial) {
  return base + kTrialSeedStride * static_cast<std::uint64_t>(trial);
}

// ---------------------------------------------------------------------------
// Topology + workload specs
// ---------------------------------------------------------------------------

/// A named topology recipe. The builder returns the server node ids.
struct TopologySpec {
  std::string name;
  TopologyBuilder build;

  static TopologySpec single_bottleneck(int n_senders,
                                        net::LinkDefaults d = {});
  static TopologySpec single_rooted_tree(int num_tors = 4,
                                         int servers_per_tor = 3);
  static TopologySpec fat_tree(int k);
  /// Spine-leaf fabric (net::build_spine_leaf); oversub = 1 is
  /// non-blocking. Name: "spine-leaf/<servers>[/os<oversub>]" — the
  /// oversubscription suffix keeps EngineCounterCache keys distinct.
  static TopologySpec spine_leaf(int spines, int tors, int servers_per_rack,
                                 double oversub = 1.0);
  static TopologySpec bcube(int n, int k);
  static TopologySpec dcell(int n, int l);
  static TopologySpec jellyfish(int num_switches, int ports, int net_ports,
                                std::uint64_t seed = 1);
  static TopologySpec custom(std::string name, TopologyBuilder build);
};

/// A named workload recipe: materializes FlowSpecs over the topology's
/// servers with the run's RNG (one fresh Rng per (point, trial)).
struct WorkloadSpec {
  using Fn = std::function<std::vector<net::FlowSpec>(
      const std::vector<net::NodeId>& servers, sim::Rng& rng)>;
  std::string name;
  Fn make;

  /// workload::make_flows over the given options.
  static WorkloadSpec flow_set(workload::FlowSetOptions opts,
                               std::string name = "flow_set");
  /// workload::make_open_loop_flows — open-loop arrivals (Poisson /
  /// deterministic / trace) with sizes from any SizeFn (typically an
  /// EmpiricalCdf::sampler()).
  static WorkloadSpec open_loop(workload::OpenLoopOptions opts,
                                std::string name = "open_loop");
  /// A verbatim flow list (src/dst must already be node ids).
  static WorkloadSpec fixed(std::vector<net::FlowSpec> flows,
                            std::string name = "fixed");
  static WorkloadSpec custom(std::string name, Fn make);
};

/// Everything one simulation run needs except the stack and the seed.
struct Scenario {
  TopologySpec topology;
  WorkloadSpec workload;
  RunOptions options;  // options.seed is overwritten per trial
};

// ---------------------------------------------------------------------------
// Query-aggregation scenario (the paper's S5.2 setting)
// ---------------------------------------------------------------------------

/// n deadline/no-deadline flows into one receiver over the
/// single-bottleneck topology. (Moved here from bench/bench_common.h.)
struct AggregationSpec {
  int num_flows = 5;
  std::int64_t size_lo = 2'000;
  std::int64_t size_hi = 198'000;
  bool deadlines = true;
  sim::Time deadline_mean = 20 * sim::kMillisecond;
  sim::Time deadline_floor = 3 * sim::kMillisecond;
};

/// Topology + workload for an AggregationSpec: min(n, 32) senders into
/// the last server, flow i from sender i mod senders.
Scenario aggregation_scenario(const AggregationSpec& a);

/// The fluid-model jobs for a flow set (Optimal normalization).
std::vector<sched::Job> to_jobs(const std::vector<net::FlowSpec>& flows);

// ---------------------------------------------------------------------------
// Metrics and columns
// ---------------------------------------------------------------------------

/// Everything a metric may look at for one run. `result` is null for
/// analytic columns (no simulation, e.g. the fluid-model Optimal).
struct RunContext {
  const RunResult* result = nullptr;
  const std::vector<net::FlowSpec>* flows = nullptr;
  const Scenario* scenario = nullptr;
  std::string stack;   // canonical stack name; empty for analytic columns
  std::string point;   // sweep-point label
  std::uint64_t seed = 0;
  int trial = 0;
};

using MetricFn = std::function<double(const RunContext&)>;

struct MetricSpec {
  std::string name;
  MetricFn fn;
};

namespace metrics {
MetricSpec mean_fct_ms();
MetricSpec max_fct_ms();
MetricSpec application_throughput();
MetricSpec completed();
/// mean FCT divided by the omniscient Optimal (fluid model) on the same
/// flow set; `bottleneck_bps` is the fluid link rate.
MetricSpec mean_fct_vs_optimal(double bottleneck_bps = 1e9);
/// Analytic columns: fluid-model Optimal on the materialized flow set.
MetricSpec optimal_application_throughput(double bottleneck_bps = 1e9);
MetricSpec optimal_mean_fct_ms(double bottleneck_bps = 1e9);
// Engine operation counters (single-core CI tracks perf by operation
// counts, never wall time). All read RunResult::engine. Under
// SweepRunner these are deterministic for any thread count — every
// sample runs on a cold PacketPool (SweepRunner::run_sample); a bare
// run_prepared() instead deltas the calling thread's pool, so
// packet_allocs there reflects pool warmth.
MetricSpec events_processed();
MetricSpec packet_allocs();
/// Fraction of packet acquires served from the pool free list, percent.
MetricSpec packet_recycle_percent();
/// Net events elided by per-hop transmit coalescing (node.cc).
MetricSpec events_coalesced();
/// Flow-state entries visited by switch-controller hot paths — flat per
/// packet when the PDQ switch fast path is O(1) amortized.
MetricSpec flowlist_scan_ops();
/// High-water mark of pending events during the run.
MetricSpec peak_pending_events();
/// High-water mark of in-flight packets (PacketPool live count).
MetricSpec pool_highwater();
/// High-water mark of live transport-agent footprint bytes — sublinear
/// in total flows under streaming mode, linear on the default path.
MetricSpec peak_flow_bytes();
/// Conservative sync windows dispatched by the sharded engine
/// (sim/sharded.h); 0 under the single-queue engine.
MetricSpec sync_rounds();
/// Cross-shard ring records committed by the sharded engine; 0 under
/// the single-queue engine.
MetricSpec ring_handoffs();

// Steady-state (windowed) metrics for dynamic-traffic scenarios. Only
// flows whose start_time falls in the timeline's measurement window
// [warmup, measure_end) count (the whole run when the scenario has no
// timeline — see harness/timeline.h). The size-bucket variants further
// condition on spec.size_bytes in [lo, hi).
/// Mean FCT (ms) of completed in-window flows in the size bucket.
MetricSpec windowed_mean_fct_ms(
    std::int64_t bucket_lo = 0,
    std::int64_t bucket_hi = std::numeric_limits<std::int64_t>::max());
/// p99 FCT (ms, nearest-rank) of completed in-window flows in the bucket.
MetricSpec windowed_p99_fct_ms(
    std::int64_t bucket_lo = 0,
    std::int64_t bucket_hi = std::numeric_limits<std::int64_t>::max());
/// Flow goodput in Gbit/s: acked bytes of in-window flows over the span
/// from warmup until the last of them finished (so bytes delivered
/// after measure_end are never divided by a shorter window).
MetricSpec goodput_gbps();
/// Percent of in-window deadline flows that missed (terminated and
/// still-pending flows count as misses); 0 when none carry deadlines.
MetricSpec deadline_miss_percent();
}  // namespace metrics

/// One table column: usually a registry stack (plus overrides), measured
/// with `metric` (falling back to the spec's metric). Columns with no
/// stack are analytic (metric computed from the flow set alone); columns
/// with `evaluate` set bypass the packet engine entirely (e.g. flowsim).
struct Column {
  std::string label;
  std::string stack;      // registry name; empty = analytic or custom
  StackOptions options;
  MetricFn metric;        // null = ExperimentSpec::metric.fn
  std::function<double(const Scenario&, std::uint64_t seed)> evaluate;
};

/// Column running registry stack `name` with the default metric.
Column stack_column(std::string name);
Column stack_column(std::string label, std::string name,
                    StackOptions options = {}, MetricFn metric = nullptr);

// ---------------------------------------------------------------------------
// Sweep axis + the spec itself
// ---------------------------------------------------------------------------

/// One x-axis value: `apply` specializes the base scenario, `tune`
/// (optional) adjusts each column's stack options — for sweeps over
/// protocol parameters rather than workload parameters.
struct SweepPoint {
  std::string label;
  std::function<void(Scenario&)> apply;
  std::function<void(Column&)> tune;
};

struct ExperimentSpec {
  std::string name;        // file-safe id, e.g. "fig3a"
  std::string title;       // printed above the table
  std::string axis;        // x-axis label, e.g. "#flows"
  Scenario base;
  std::vector<Column> columns;
  std::vector<SweepPoint> points;
  MetricSpec metric = metrics::mean_fct_ms();  // per-column default
  int trials = 1;
  std::uint64_t base_seed = kDefaultBaseSeed;
  /// Non-null: every run uses streaming metrics (RunOptions::streaming)
  /// — O(1)-memory accumulators instead of per-flow result vectors.
  /// Applied after each SweepPoint's `apply`, so points that replace
  /// the scenario wholesale still stream. The windowed size-bucket
  /// metrics require their [lo, hi) buckets listed in the spec.
  std::shared_ptr<const stats::StreamingSpec> streaming_metrics;
  /// Non-null: every run uses the hybrid packet/fluid fast-forward
  /// backend (RunOptions::hybrid; see HybridSpec in harness/scenario.h).
  /// Requires streaming_metrics. Applied after each SweepPoint's
  /// `apply`, like streaming_metrics.
  std::shared_ptr<const HybridSpec> hybrid_backend;
  /// Non-null: every run injects this fault schedule (RunOptions::
  /// faults; see faults/fault_spec.h) and gets the default audit
  /// (watchdog + end-of-run invariants) unless the scenario sets its
  /// own RunOptions::audit. Applied after each SweepPoint's `apply`.
  std::shared_ptr<const faults::FaultSpec> fault_plane;
  /// > 1: every run partitions its simulation across this many shard
  /// worker threads (RunOptions::shards; sim/sharded.h) — bit-identical
  /// results by the determinism wall. Applied after each SweepPoint's
  /// `apply`, like streaming_metrics.
  int shards = 1;
};

}  // namespace pdq::harness
