#include "harness/stacks.h"

#include "core/pdq_agent.h"
#include "core/pdq_switch.h"
#include "harness/registry.h"

namespace pdq::harness {

void PdqStack::install(net::Topology& topo) {
  core::install_pdq(topo, cfg_);
}

std::unique_ptr<net::Agent> PdqStack::make_sender(net::AgentContext ctx) {
  return std::make_unique<core::PdqSender>(std::move(ctx), cfg_);
}

std::unique_ptr<net::Agent> PdqStack::make_receiver(net::AgentContext ctx) {
  return std::make_unique<core::PdqReceiver>(std::move(ctx));
}

void MpdqStack::install(net::Topology& topo) {
  core::install_pdq(topo, cfg_.pdq);
}

std::unique_ptr<net::Agent> MpdqStack::make_sender(net::AgentContext ctx) {
  return std::make_unique<core::MpdqSender>(std::move(ctx), cfg_);
}

std::unique_ptr<net::Agent> MpdqStack::make_receiver(net::AgentContext ctx) {
  // Subflow receivers are installed by the M-PDQ sender itself; the
  // parent-flow receiver only exists so the host has a registered endpoint.
  return std::make_unique<core::PdqReceiver>(std::move(ctx));
}

void RcpStack::install(net::Topology& topo) {
  protocols::install_rcp(topo, cfg_);
}

std::unique_ptr<net::Agent> RcpStack::make_sender(net::AgentContext ctx) {
  return std::make_unique<protocols::RcpSender>(std::move(ctx), cfg_);
}

std::unique_ptr<net::Agent> RcpStack::make_receiver(net::AgentContext ctx) {
  return std::make_unique<net::EchoReceiver>(std::move(ctx));
}

void D3Stack::install(net::Topology& topo) {
  protocols::install_d3(topo, cfg_);
}

std::unique_ptr<net::Agent> D3Stack::make_sender(net::AgentContext ctx) {
  return std::make_unique<protocols::D3Sender>(std::move(ctx), cfg_);
}

std::unique_ptr<net::Agent> D3Stack::make_receiver(net::AgentContext ctx) {
  return std::make_unique<net::EchoReceiver>(std::move(ctx));
}

std::unique_ptr<net::Agent> TcpStack::make_sender(net::AgentContext ctx) {
  return std::make_unique<protocols::TcpSender>(std::move(ctx), cfg_);
}

std::unique_ptr<net::Agent> TcpStack::make_receiver(net::AgentContext ctx) {
  return std::make_unique<protocols::TcpReceiver>(std::move(ctx));
}

void DctcpStack::install(net::Topology& topo) {
  net::install_multi_queue(topo, cfg_.mq);
}

std::unique_ptr<net::Agent> DctcpStack::make_sender(net::AgentContext ctx) {
  return std::make_unique<protocols::DctcpSender>(std::move(ctx), cfg_);
}

std::unique_ptr<net::Agent> DctcpStack::make_receiver(net::AgentContext ctx) {
  return std::make_unique<protocols::DctcpReceiver>(std::move(ctx));
}

namespace {

/// Factory for the four PDQ variants: `base()` supplies the paper preset,
/// `options.pdq` replaces it wholesale, `options.label` renames the stack.
StackRegistry::Factory pdq_factory(core::PdqConfig (*base)(),
                                   const char* default_label) {
  return [base, default_label](const StackOptions& options) {
    const core::PdqConfig cfg = options.pdq ? *options.pdq : base();
    const std::string label =
        options.label.empty() ? default_label : options.label;
    return std::make_unique<PdqStack>(cfg, label);
  };
}

}  // namespace

void register_builtin_stacks(StackRegistry& r) {
  static bool done = false;
  if (done) return;
  done = true;

  // Canonical names match the paper's figure legends (and the historical
  // bench::all_stacks() order); aliases match pdqsim's CLI spellings.
  r.add("PDQ(Full)", "PDQ with Early Start, Early Termination and Suppressed Probing",
        pdq_factory(&core::PdqConfig::full, "PDQ(Full)"));
  r.add("PDQ(ES+ET)", "PDQ with Early Start and Early Termination",
        pdq_factory(&core::PdqConfig::es_et, "PDQ(ES+ET)"));
  r.add("PDQ(ES)", "PDQ with Early Start only",
        pdq_factory(&core::PdqConfig::es, "PDQ(ES)"));
  r.add("PDQ(Basic)", "PDQ without the optimizations of section 4",
        pdq_factory(&core::PdqConfig::basic, "PDQ(Basic)"));
  r.add("D3", "D3: first-come first-reserved deadline allocation",
        [](const StackOptions& options) {
          return std::make_unique<D3Stack>(options.d3 ? *options.d3
                                                      : protocols::D3Config{});
        });
  r.add("RCP", "RCP with exact flow counting",
        [](const StackOptions& options) {
          return std::make_unique<RcpStack>(
              options.rcp ? *options.rcp : protocols::RcpConfig{});
        });
  r.add("TCP", "incast-tuned TCP Reno on drop-tail FIFOs",
        [](const StackOptions& options) {
          return std::make_unique<TcpStack>(
              options.tcp ? *options.tcp : protocols::TcpConfig{});
        });
  r.add("M-PDQ", "multipath PDQ: subflow striping over disjoint paths",
        [](const StackOptions& options) {
          core::MpdqConfig cfg =
              options.mpdq ? *options.mpdq : core::MpdqConfig{};
          if (options.subflows > 0) cfg.num_subflows = options.subflows;
          if (options.pdq) cfg.pdq = *options.pdq;
          return std::make_unique<MpdqStack>(cfg);
        });
  r.add("DCTCP", "DCTCP: ECN marking at K, g-weighted window scaling",
        [](const StackOptions& options) {
          const protocols::DctcpConfig cfg =
              options.dctcp ? *options.dctcp : protocols::DctcpConfig{};
          const std::string label =
              options.label.empty() ? "DCTCP" : options.label;
          return std::make_unique<DctcpStack>(cfg, label);
        });

  r.add_alias("pdq", "PDQ(Full)");
  r.add_alias("pdq-full", "PDQ(Full)");
  r.add_alias("pdq-eset", "PDQ(ES+ET)");
  r.add_alias("pdq-es", "PDQ(ES)");
  r.add_alias("pdq-basic", "PDQ(Basic)");
  r.add_alias("d3", "D3");
  r.add_alias("rcp", "RCP");
  r.add_alias("tcp", "TCP");
  r.add_alias("mpdq", "M-PDQ");
  r.add_alias("dctcp", "DCTCP");
}

}  // namespace pdq::harness
