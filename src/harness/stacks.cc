#include "harness/stacks.h"

#include "core/pdq_agent.h"
#include "core/pdq_switch.h"

namespace pdq::harness {

void PdqStack::install(net::Topology& topo) {
  core::install_pdq(topo, cfg_);
}

std::unique_ptr<net::Agent> PdqStack::make_sender(net::AgentContext ctx) {
  return std::make_unique<core::PdqSender>(std::move(ctx), cfg_);
}

std::unique_ptr<net::Agent> PdqStack::make_receiver(net::AgentContext ctx) {
  return std::make_unique<core::PdqReceiver>(std::move(ctx));
}

void MpdqStack::install(net::Topology& topo) {
  core::install_pdq(topo, cfg_.pdq);
}

std::unique_ptr<net::Agent> MpdqStack::make_sender(net::AgentContext ctx) {
  return std::make_unique<core::MpdqSender>(std::move(ctx), cfg_);
}

std::unique_ptr<net::Agent> MpdqStack::make_receiver(net::AgentContext ctx) {
  // Subflow receivers are installed by the M-PDQ sender itself; the
  // parent-flow receiver only exists so the host has a registered endpoint.
  return std::make_unique<core::PdqReceiver>(std::move(ctx));
}

void RcpStack::install(net::Topology& topo) {
  protocols::install_rcp(topo, cfg_);
}

std::unique_ptr<net::Agent> RcpStack::make_sender(net::AgentContext ctx) {
  return std::make_unique<protocols::RcpSender>(std::move(ctx), cfg_);
}

std::unique_ptr<net::Agent> RcpStack::make_receiver(net::AgentContext ctx) {
  return std::make_unique<net::EchoReceiver>(std::move(ctx));
}

void D3Stack::install(net::Topology& topo) {
  protocols::install_d3(topo, cfg_);
}

std::unique_ptr<net::Agent> D3Stack::make_sender(net::AgentContext ctx) {
  return std::make_unique<protocols::D3Sender>(std::move(ctx), cfg_);
}

std::unique_ptr<net::Agent> D3Stack::make_receiver(net::AgentContext ctx) {
  return std::make_unique<net::EchoReceiver>(std::move(ctx));
}

std::unique_ptr<net::Agent> TcpStack::make_sender(net::AgentContext ctx) {
  return std::make_unique<protocols::TcpSender>(std::move(ctx), cfg_);
}

std::unique_ptr<net::Agent> TcpStack::make_receiver(net::AgentContext ctx) {
  return std::make_unique<protocols::TcpReceiver>(std::move(ctx));
}

}  // namespace pdq::harness
