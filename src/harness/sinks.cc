#include "harness/sinks.h"

#include <sys/stat.h>

#include <cinttypes>
#include <cstdio>

namespace pdq::harness {

void TableSink::write(const SweepResults& r) {
  if (with_title_ && !r.title.empty()) {
    std::fprintf(out_, "%s\n\n", r.title.c_str());
  }
  const auto grid = r.means();
  const auto& row_labels = transpose_ ? r.columns : r.points;
  const auto& col_labels = transpose_ ? r.points : r.columns;

  std::fprintf(out_, "%-14s", r.axis.c_str());
  for (const auto& c : col_labels) std::fprintf(out_, " %12s", c.c_str());
  std::fprintf(out_, "\n");
  for (std::size_t row = 0; row < row_labels.size(); ++row) {
    std::fprintf(out_, "%-14s", row_labels[row].c_str());
    for (std::size_t col = 0; col < col_labels.size(); ++col) {
      const double v = transpose_ ? grid[col][row] : grid[row][col];
      std::fprintf(out_, cell_format_.c_str(), v);
    }
    std::fprintf(out_, "\n");
  }
}

std::string csv_escape(const std::string& field) {
  bool needs_quotes = false;
  for (char ch : field) {
    if (ch == ',' || ch == '"' || ch == '\n' || ch == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += static_cast<char>(ch);
        }
    }
  }
  return out;
}

std::string result_path(const std::string& dir, const std::string& name,
                        const std::string& ext) {
  if (dir.empty()) return name + "." + ext;
  ::mkdir(dir.c_str(), 0777);  // best effort; fopen reports real failures
  return dir + "/" + name + "." + ext;
}

void CsvSink::write(const SweepResults& r) {
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "CsvSink: cannot open %s\n", path_.c_str());
    return;
  }
  std::fprintf(f, "experiment,point,column,trial,seed,metric,value\n");
  for (std::size_t p = 0; p < r.points.size(); ++p) {
    for (std::size_t c = 0; c < r.columns.size(); ++c) {
      for (std::size_t t = 0; t < r.samples[p][c].size(); ++t) {
        std::fprintf(f, "%s,%s,%s,%zu,%" PRIu64 ",%s,%.17g\n",
                     csv_escape(r.name).c_str(),
                     csv_escape(r.points[p]).c_str(),
                     csv_escape(r.columns[c]).c_str(), t,
                     t < r.seeds.size() ? r.seeds[t] : 0,
                     csv_escape(r.metric).c_str(), r.samples[p][c][t]);
      }
    }
  }
  std::fclose(f);
}

void JsonSink::write(const SweepResults& r) {
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "JsonSink: cannot open %s\n", path_.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"experiment\": \"%s\",\n", json_escape(r.name).c_str());
  std::fprintf(f, "  \"title\": \"%s\",\n", json_escape(r.title).c_str());
  std::fprintf(f, "  \"axis\": \"%s\",\n", json_escape(r.axis).c_str());
  std::fprintf(f, "  \"metric\": \"%s\",\n", json_escape(r.metric).c_str());
  std::fprintf(f, "  \"base_seed\": %" PRIu64 ",\n", r.base_seed);
  std::fprintf(f, "  \"seeds\": [");
  for (std::size_t t = 0; t < r.seeds.size(); ++t) {
    std::fprintf(f, "%s%" PRIu64, t ? ", " : "", r.seeds[t]);
  }
  std::fprintf(f, "],\n  \"columns\": [");
  for (std::size_t c = 0; c < r.columns.size(); ++c) {
    std::fprintf(f, "%s\"%s\"", c ? ", " : "", json_escape(r.columns[c]).c_str());
  }
  std::fprintf(f, "],\n  \"points\": [");
  for (std::size_t p = 0; p < r.points.size(); ++p) {
    std::fprintf(f, "%s\"%s\"", p ? ", " : "", json_escape(r.points[p]).c_str());
  }
  std::fprintf(f, "],\n  \"samples\": [");
  for (std::size_t p = 0; p < r.samples.size(); ++p) {
    std::fprintf(f, "%s\n    [", p ? "," : "");
    for (std::size_t c = 0; c < r.samples[p].size(); ++c) {
      std::fprintf(f, "%s[", c ? ", " : "");
      for (std::size_t t = 0; t < r.samples[p][c].size(); ++t) {
        std::fprintf(f, "%s%.17g", t ? ", " : "", r.samples[p][c][t]);
      }
      std::fprintf(f, "]");
    }
    std::fprintf(f, "]");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

}  // namespace pdq::harness
