#include "harness/experiment.h"

#include <algorithm>
#include <utility>

#include "net/builders.h"

namespace pdq::harness {

// ---------------------------------------------------------------------------
// TopologySpec factories
// ---------------------------------------------------------------------------

TopologySpec TopologySpec::single_bottleneck(int n_senders,
                                             net::LinkDefaults d) {
  return {"bottleneck/" + std::to_string(n_senders),
          [n_senders, d](net::Topology& t) {
            return net::build_single_bottleneck(t, n_senders, d);
          }};
}

TopologySpec TopologySpec::single_rooted_tree(int num_tors,
                                              int servers_per_tor) {
  return {"tree/" + std::to_string(num_tors * servers_per_tor),
          [num_tors, servers_per_tor](net::Topology& t) {
            return net::build_single_rooted_tree(t, num_tors,
                                                 servers_per_tor);
          }};
}

TopologySpec TopologySpec::fat_tree(int k) {
  return {"fat-tree/" + std::to_string(k * k * k / 4),
          [k](net::Topology& t) { return net::build_fat_tree(t, k); }};
}

TopologySpec TopologySpec::bcube(int n, int k) {
  int servers = 1;
  for (int i = 0; i <= k; ++i) servers *= n;
  return {"bcube/" + std::to_string(servers),
          [n, k](net::Topology& t) { return net::build_bcube(t, n, k); }};
}

TopologySpec TopologySpec::dcell(int n, int l) {
  return {"dcell/" + std::to_string(net::dcell_server_count(n, l)),
          [n, l](net::Topology& t) { return net::build_dcell(t, n, l); }};
}

TopologySpec TopologySpec::jellyfish(int num_switches, int ports,
                                     int net_ports, std::uint64_t seed) {
  return {"jellyfish/" + std::to_string(num_switches * (ports - net_ports)),
          [num_switches, ports, net_ports, seed](net::Topology& t) {
            return net::build_jellyfish(t, num_switches, ports, net_ports,
                                        seed);
          }};
}

TopologySpec TopologySpec::custom(std::string name, TopologyBuilder build) {
  return {std::move(name), std::move(build)};
}

// ---------------------------------------------------------------------------
// WorkloadSpec factories
// ---------------------------------------------------------------------------

WorkloadSpec WorkloadSpec::flow_set(workload::FlowSetOptions opts,
                                    std::string name) {
  return {std::move(name),
          [opts](const std::vector<net::NodeId>& servers, sim::Rng& rng) {
            return workload::make_flows(servers, opts, rng);
          }};
}

WorkloadSpec WorkloadSpec::fixed(std::vector<net::FlowSpec> flows,
                                 std::string name) {
  return {std::move(name),
          [flows](const std::vector<net::NodeId>&, sim::Rng&) {
            return flows;
          }};
}

WorkloadSpec WorkloadSpec::custom(std::string name, Fn make) {
  return {std::move(name), std::move(make)};
}

// ---------------------------------------------------------------------------
// Query aggregation
// ---------------------------------------------------------------------------

Scenario aggregation_scenario(const AggregationSpec& a) {
  const int senders = std::max(1, std::min(a.num_flows, 32));
  Scenario s;
  s.topology = TopologySpec::single_bottleneck(senders);
  // Draw order matches the historical bench_common::aggregation_flows:
  // size then (optionally) deadline, per flow, from one stream.
  s.workload = WorkloadSpec::custom(
      "aggregation/" + std::to_string(a.num_flows),
      [a, senders](const std::vector<net::NodeId>& servers, sim::Rng& rng) {
        auto size = workload::uniform_size(a.size_lo, a.size_hi);
        auto dl = workload::exp_deadline(a.deadline_mean, a.deadline_floor);
        std::vector<net::FlowSpec> flows;
        flows.reserve(static_cast<std::size_t>(a.num_flows));
        for (int i = 0; i < a.num_flows; ++i) {
          net::FlowSpec f;
          f.id = i + 1;
          f.size_bytes = size(rng);
          if (a.deadlines) f.deadline = dl(rng);
          f.src = servers[static_cast<std::size_t>(i % senders)];
          f.dst = servers.back();
          flows.push_back(f);
        }
        return flows;
      });
  s.options.horizon = 30 * sim::kSecond;
  return s;
}

std::vector<sched::Job> to_jobs(const std::vector<net::FlowSpec>& flows) {
  std::vector<sched::Job> jobs;
  jobs.reserve(flows.size());
  for (const auto& f : flows) {
    jobs.push_back({f.size_bytes, f.start_time, f.absolute_deadline(),
                    static_cast<int>(f.id)});
  }
  return jobs;
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

namespace metrics {

MetricSpec mean_fct_ms() {
  return {"mean_fct_ms",
          [](const RunContext& c) { return c.result->mean_fct_ms(); }};
}

MetricSpec max_fct_ms() {
  return {"max_fct_ms",
          [](const RunContext& c) { return c.result->max_fct_ms(); }};
}

MetricSpec application_throughput() {
  return {"app_throughput",
          [](const RunContext& c) { return c.result->application_throughput(); }};
}

MetricSpec completed() {
  return {"completed", [](const RunContext& c) {
            return static_cast<double>(c.result->completed());
          }};
}

MetricSpec mean_fct_vs_optimal(double bottleneck_bps) {
  return {"mean_fct_vs_optimal", [bottleneck_bps](const RunContext& c) {
            return c.result->mean_fct_ms() /
                   sched::optimal_mean_fct_ms(to_jobs(*c.flows),
                                              bottleneck_bps);
          }};
}

MetricSpec optimal_application_throughput(double bottleneck_bps) {
  return {"optimal_app_throughput", [bottleneck_bps](const RunContext& c) {
            return sched::optimal_application_throughput(to_jobs(*c.flows),
                                                         bottleneck_bps);
          }};
}

MetricSpec optimal_mean_fct_ms(double bottleneck_bps) {
  return {"optimal_mean_fct_ms", [bottleneck_bps](const RunContext& c) {
            return sched::optimal_mean_fct_ms(to_jobs(*c.flows),
                                              bottleneck_bps);
          }};
}

MetricSpec events_processed() {
  return {"events_processed", [](const RunContext& c) {
            return static_cast<double>(c.result->engine.events_executed);
          }};
}

MetricSpec packet_allocs() {
  return {"packet_allocs", [](const RunContext& c) {
            return static_cast<double>(c.result->engine.packet_allocs);
          }};
}

MetricSpec packet_recycle_percent() {
  return {"packet_recycle_pct", [](const RunContext& c) {
            return c.result->engine.recycle_percent();
          }};
}

MetricSpec events_coalesced() {
  return {"events_coalesced", [](const RunContext& c) {
            return static_cast<double>(c.result->engine.events_coalesced);
          }};
}

MetricSpec flowlist_scan_ops() {
  return {"flowlist_scan_ops", [](const RunContext& c) {
            return static_cast<double>(c.result->engine.flowlist_scan_ops);
          }};
}

}  // namespace metrics

// ---------------------------------------------------------------------------
// Columns
// ---------------------------------------------------------------------------

Column stack_column(std::string name) {
  Column c;
  c.label = name;
  c.stack = std::move(name);
  return c;
}

Column stack_column(std::string label, std::string name, StackOptions options,
                    MetricFn metric) {
  Column c;
  c.label = std::move(label);
  c.stack = std::move(name);
  c.options = std::move(options);
  c.metric = std::move(metric);
  return c;
}

}  // namespace pdq::harness
