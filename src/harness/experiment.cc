#include "harness/experiment.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "harness/timeline.h"
#include "net/builders.h"
#include "stats/streaming.h"

namespace pdq::harness {

// ---------------------------------------------------------------------------
// TopologySpec factories
// ---------------------------------------------------------------------------

TopologySpec TopologySpec::single_bottleneck(int n_senders,
                                             net::LinkDefaults d) {
  return {"bottleneck/" + std::to_string(n_senders),
          [n_senders, d](net::Topology& t) {
            return net::build_single_bottleneck(t, n_senders, d);
          }};
}

TopologySpec TopologySpec::single_rooted_tree(int num_tors,
                                              int servers_per_tor) {
  return {"tree/" + std::to_string(num_tors * servers_per_tor),
          [num_tors, servers_per_tor](net::Topology& t) {
            return net::build_single_rooted_tree(t, num_tors,
                                                 servers_per_tor);
          }};
}

TopologySpec TopologySpec::fat_tree(int k) {
  return {"fat-tree/" + std::to_string(k * k * k / 4),
          [k](net::Topology& t) { return net::build_fat_tree(t, k); }};
}

TopologySpec TopologySpec::spine_leaf(int spines, int tors,
                                      int servers_per_rack, double oversub) {
  std::string name = "spine-leaf/" + std::to_string(tors * servers_per_rack);
  if (oversub != 1.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "/os%g", oversub);
    name += buf;
  }
  return {std::move(name),
          [spines, tors, servers_per_rack, oversub](net::Topology& t) {
            return net::build_spine_leaf(t, spines, tors, servers_per_rack,
                                         oversub);
          }};
}

TopologySpec TopologySpec::bcube(int n, int k) {
  int servers = 1;
  for (int i = 0; i <= k; ++i) servers *= n;
  return {"bcube/" + std::to_string(servers),
          [n, k](net::Topology& t) { return net::build_bcube(t, n, k); }};
}

TopologySpec TopologySpec::dcell(int n, int l) {
  return {"dcell/" + std::to_string(net::dcell_server_count(n, l)),
          [n, l](net::Topology& t) { return net::build_dcell(t, n, l); }};
}

TopologySpec TopologySpec::jellyfish(int num_switches, int ports,
                                     int net_ports, std::uint64_t seed) {
  return {"jellyfish/" + std::to_string(num_switches * (ports - net_ports)),
          [num_switches, ports, net_ports, seed](net::Topology& t) {
            return net::build_jellyfish(t, num_switches, ports, net_ports,
                                        seed);
          }};
}

TopologySpec TopologySpec::custom(std::string name, TopologyBuilder build) {
  return {std::move(name), std::move(build)};
}

// ---------------------------------------------------------------------------
// WorkloadSpec factories
// ---------------------------------------------------------------------------

WorkloadSpec WorkloadSpec::flow_set(workload::FlowSetOptions opts,
                                    std::string name) {
  return {std::move(name),
          [opts](const std::vector<net::NodeId>& servers, sim::Rng& rng) {
            return workload::make_flows(servers, opts, rng);
          }};
}

WorkloadSpec WorkloadSpec::open_loop(workload::OpenLoopOptions opts,
                                     std::string name) {
  return {std::move(name),
          [opts](const std::vector<net::NodeId>& servers, sim::Rng& rng) {
            return workload::make_open_loop_flows(servers, opts, rng);
          }};
}

WorkloadSpec WorkloadSpec::fixed(std::vector<net::FlowSpec> flows,
                                 std::string name) {
  return {std::move(name),
          [flows](const std::vector<net::NodeId>&, sim::Rng&) {
            return flows;
          }};
}

WorkloadSpec WorkloadSpec::custom(std::string name, Fn make) {
  return {std::move(name), std::move(make)};
}

// ---------------------------------------------------------------------------
// Query aggregation
// ---------------------------------------------------------------------------

Scenario aggregation_scenario(const AggregationSpec& a) {
  const int senders = std::max(1, std::min(a.num_flows, 32));
  Scenario s;
  s.topology = TopologySpec::single_bottleneck(senders);
  // Draw order matches the historical bench_common::aggregation_flows:
  // size then (optionally) deadline, per flow, from one stream.
  s.workload = WorkloadSpec::custom(
      "aggregation/" + std::to_string(a.num_flows),
      [a, senders](const std::vector<net::NodeId>& servers, sim::Rng& rng) {
        auto size = workload::uniform_size(a.size_lo, a.size_hi);
        auto dl = workload::exp_deadline(a.deadline_mean, a.deadline_floor);
        std::vector<net::FlowSpec> flows;
        flows.reserve(static_cast<std::size_t>(a.num_flows));
        for (int i = 0; i < a.num_flows; ++i) {
          net::FlowSpec f;
          f.id = i + 1;
          f.size_bytes = size(rng);
          if (a.deadlines) f.deadline = dl(rng);
          f.src = servers[static_cast<std::size_t>(i % senders)];
          f.dst = servers.back();
          flows.push_back(f);
        }
        return flows;
      });
  s.options.horizon = 30 * sim::kSecond;
  return s;
}

std::vector<sched::Job> to_jobs(const std::vector<net::FlowSpec>& flows) {
  std::vector<sched::Job> jobs;
  jobs.reserve(flows.size());
  for (const auto& f : flows) {
    jobs.push_back({f.size_bytes, f.start_time, f.absolute_deadline(),
                    static_cast<int>(f.id)});
  }
  return jobs;
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

namespace metrics {

MetricSpec mean_fct_ms() {
  return {"mean_fct_ms",
          [](const RunContext& c) { return c.result->mean_fct_ms(); }};
}

MetricSpec max_fct_ms() {
  return {"max_fct_ms",
          [](const RunContext& c) { return c.result->max_fct_ms(); }};
}

MetricSpec application_throughput() {
  return {"app_throughput",
          [](const RunContext& c) { return c.result->application_throughput(); }};
}

MetricSpec completed() {
  return {"completed", [](const RunContext& c) {
            return static_cast<double>(c.result->completed());
          }};
}

MetricSpec mean_fct_vs_optimal(double bottleneck_bps) {
  return {"mean_fct_vs_optimal", [bottleneck_bps](const RunContext& c) {
            return c.result->mean_fct_ms() /
                   sched::optimal_mean_fct_ms(to_jobs(*c.flows),
                                              bottleneck_bps);
          }};
}

MetricSpec optimal_application_throughput(double bottleneck_bps) {
  return {"optimal_app_throughput", [bottleneck_bps](const RunContext& c) {
            return sched::optimal_application_throughput(to_jobs(*c.flows),
                                                         bottleneck_bps);
          }};
}

MetricSpec optimal_mean_fct_ms(double bottleneck_bps) {
  return {"optimal_mean_fct_ms", [bottleneck_bps](const RunContext& c) {
            return sched::optimal_mean_fct_ms(to_jobs(*c.flows),
                                              bottleneck_bps);
          }};
}

MetricSpec events_processed() {
  return {"events_processed", [](const RunContext& c) {
            return static_cast<double>(c.result->engine.events_executed);
          }};
}

MetricSpec packet_allocs() {
  return {"packet_allocs", [](const RunContext& c) {
            return static_cast<double>(c.result->engine.packet_allocs);
          }};
}

MetricSpec packet_recycle_percent() {
  return {"packet_recycle_pct", [](const RunContext& c) {
            return c.result->engine.recycle_percent();
          }};
}

MetricSpec events_coalesced() {
  return {"events_coalesced", [](const RunContext& c) {
            return static_cast<double>(c.result->engine.events_coalesced);
          }};
}

MetricSpec flowlist_scan_ops() {
  return {"flowlist_scan_ops", [](const RunContext& c) {
            return static_cast<double>(c.result->engine.flowlist_scan_ops);
          }};
}

MetricSpec peak_pending_events() {
  return {"peak_pending_events", [](const RunContext& c) {
            return static_cast<double>(c.result->engine.peak_pending_events);
          }};
}

MetricSpec pool_highwater() {
  return {"pool_highwater", [](const RunContext& c) {
            return static_cast<double>(c.result->engine.pool_highwater);
          }};
}

MetricSpec peak_flow_bytes() {
  return {"peak_flow_bytes", [](const RunContext& c) {
            return static_cast<double>(c.result->engine.peak_flow_bytes);
          }};
}

MetricSpec sync_rounds() {
  return {"sync_rounds", [](const RunContext& c) {
            return static_cast<double>(c.result->engine.sync_rounds);
          }};
}

MetricSpec ring_handoffs() {
  return {"ring_handoffs", [](const RunContext& c) {
            return static_cast<double>(c.result->engine.ring_handoffs);
          }};
}

namespace {

struct Window {
  sim::Time lo = 0;
  sim::Time hi = sim::kTimeInfinity;
};

/// The scenario timeline's measurement window; whole run when absent.
Window metric_window(const RunContext& c) {
  Window w;
  if (c.scenario != nullptr && c.scenario->options.timeline != nullptr) {
    w.lo = c.scenario->options.timeline->warmup;
    w.hi = c.scenario->options.timeline->measure_end;
  }
  return w;
}

bool in_window(const net::FlowResult& f, const Window& w) {
  return f.spec.start_time >= w.lo && f.spec.start_time < w.hi;
}

/// Sorted completion times (ms) of completed in-window flows with
/// size_bytes in [lo, hi).
std::vector<double> windowed_fcts_ms(const RunContext& c, std::int64_t lo,
                                     std::int64_t hi) {
  std::vector<double> fcts;
  const Window w = metric_window(c);
  for (const auto& f : c.result->flows) {
    if (f.outcome != net::FlowOutcome::kCompleted) continue;
    if (!in_window(f, w)) continue;
    if (f.spec.size_bytes < lo || f.spec.size_bytes >= hi) continue;
    fcts.push_back(sim::to_millis(f.completion_time()));
  }
  std::sort(fcts.begin(), fcts.end());
  return fcts;
}

}  // namespace

MetricSpec windowed_mean_fct_ms(std::int64_t bucket_lo,
                                std::int64_t bucket_hi) {
  return {"windowed_mean_fct_ms", [bucket_lo, bucket_hi](const RunContext& c) {
            if (c.result->streaming != nullptr) {
              const auto& s = *c.result->streaming;
              return s.windowed_mean_fct_ms(
                  s.bucket_index(bucket_lo, bucket_hi));
            }
            const auto fcts = windowed_fcts_ms(c, bucket_lo, bucket_hi);
            if (fcts.empty()) return 0.0;
            // Compensated like the streaming accumulator, so the two
            // representations agree bit-for-bit, not just to a ULP.
            stats::CompensatedSum sum;
            for (double v : fcts) sum.add(v);
            return sum.value() / static_cast<double>(fcts.size());
          }};
}

MetricSpec windowed_p99_fct_ms(std::int64_t bucket_lo,
                               std::int64_t bucket_hi) {
  return {"windowed_p99_fct_ms", [bucket_lo, bucket_hi](const RunContext& c) {
            if (c.result->streaming != nullptr) {
              // Sketch estimate: within quantile_alpha relative error of
              // the exact nearest-rank value below.
              const auto& s = *c.result->streaming;
              return s.windowed_p99_fct_ms(
                  s.bucket_index(bucket_lo, bucket_hi));
            }
            const auto fcts = windowed_fcts_ms(c, bucket_lo, bucket_hi);
            // Nearest-rank percentile, the shared definition
            // (stats::nearest_rank): rank ceil(0.99 n), 1-based.
            return stats::nearest_rank(fcts, 0.99);
          }};
}

MetricSpec goodput_gbps() {
  return {"goodput_gbps", [](const RunContext& c) {
            // Flow goodput: acked bytes of flows *starting* in the
            // window, over the span from warmup until the last of them
            // finished (or the run ended). The accounting span follows
            // the flows rather than clamping at measure_end — bytes
            // acked after the window close would otherwise be divided
            // by a window they were not delivered in, overstating
            // goodput (possibly beyond link capacity).
            if (c.result->streaming != nullptr) {
              return c.result->streaming->goodput_gbps();
            }
            const Window w = metric_window(c);
            double bytes = 0;
            sim::Time span_end = w.lo;
            for (const auto& f : c.result->flows) {
              if (!in_window(f, w)) continue;
              bytes += static_cast<double>(f.bytes_acked);
              span_end = std::max(span_end,
                                  f.finish_time == sim::kTimeInfinity
                                      ? c.result->end_time
                                      : f.finish_time);
            }
            if (span_end <= w.lo) return 0.0;
            return bytes * 8.0 / sim::to_seconds(span_end - w.lo) / 1e9;
          }};
}

MetricSpec deadline_miss_percent() {
  return {"deadline_miss_pct", [](const RunContext& c) {
            if (c.result->streaming != nullptr) {
              return c.result->streaming->deadline_miss_percent();
            }
            const Window w = metric_window(c);
            std::size_t deadline_flows = 0;
            std::size_t missed = 0;
            for (const auto& f : c.result->flows) {
              if (!f.spec.has_deadline() || !in_window(f, w)) continue;
              ++deadline_flows;
              if (!f.deadline_met()) ++missed;
            }
            if (deadline_flows == 0) return 0.0;
            return 100.0 * static_cast<double>(missed) /
                   static_cast<double>(deadline_flows);
          }};
}

}  // namespace metrics

// ---------------------------------------------------------------------------
// Columns
// ---------------------------------------------------------------------------

Column stack_column(std::string name) {
  Column c;
  c.label = name;
  c.stack = std::move(name);
  return c;
}

Column stack_column(std::string label, std::string name, StackOptions options,
                    MetricFn metric) {
  Column c;
  c.label = std::move(label);
  c.stack = std::move(name);
  c.options = std::move(options);
  c.metric = std::move(metric);
  return c;
}

}  // namespace pdq::harness
