// StackRegistry: string-keyed, self-registering factories for every
// ProtocolStack under evaluation.
//
// The registry is the single source of truth for "which transports exist"
// — benches, pdqsim and the sweep engine all construct stacks through it,
// so adding a protocol is one registration call instead of editing every
// driver's switch statement. Stacks keep per-run switch state, so `make`
// returns a *fresh* stack per call; construct one per simulation run.
//
// Registration: the built-in transports register themselves from
// stacks.cc via register_builtin_stacks(), which global() calls on first
// use. (A pure static-initializer scheme would be dropped by the linker
// when nothing else references the registering translation unit of a
// static library — the explicit call keeps the archive member live.)
// External code can add stacks at runtime with add(), or at static-init
// time with a StackRegistrar when its object file is guaranteed linked.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/mpdq.h"
#include "core/pdq_config.h"
#include "harness/scenario.h"
#include "protocols/d3.h"
#include "protocols/dctcp.h"
#include "protocols/rcp.h"
#include "protocols/tcp.h"

namespace pdq::harness {

/// Per-construction overrides a factory may honor. Fields a given stack
/// does not understand are ignored (e.g. `pdq` for TCP).
struct StackOptions {
  /// Display-name override. Honored by the PDQ-variant factories (whose
  /// stacks carry a configurable label); the fixed-name stacks (D3, RCP,
  /// TCP, M-PDQ) ignore it — label table columns via Column::label.
  std::string label;
  /// M-PDQ subflow count; 0 keeps the registered default.
  int subflows = 0;
  /// Full config overrides for the respective transports.
  std::optional<core::PdqConfig> pdq;
  std::optional<core::MpdqConfig> mpdq;
  std::optional<protocols::RcpConfig> rcp;
  std::optional<protocols::D3Config> d3;
  std::optional<protocols::TcpConfig> tcp;
  std::optional<protocols::DctcpConfig> dctcp;
};

class StackRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<ProtocolStack>(const StackOptions&)>;

  /// The process-wide registry, with all built-in transports registered.
  static StackRegistry& global();

  /// Registers `factory` under `name` (the canonical display name).
  /// Re-registering a name replaces the factory and keeps its position.
  void add(const std::string& name, const std::string& description,
           Factory factory);

  /// Registers `alias` as an alternate lookup key for `canonical`
  /// (e.g. "pdq" -> "PDQ(Full)"). Aliases never appear in names().
  void add_alias(const std::string& alias, const std::string& canonical);

  /// Fresh stack by canonical name or alias. On failure returns nullptr
  /// and, when `error` is non-null, stores a message listing the
  /// available stacks.
  std::unique_ptr<ProtocolStack> make(const std::string& name,
                                      const StackOptions& options = {},
                                      std::string* error = nullptr) const;

  bool contains(const std::string& name) const;
  /// Canonical name for `name` (resolves aliases); empty when unknown.
  std::string resolve(const std::string& name) const;
  /// One-line description for a canonical name or alias.
  std::string describe(const std::string& name) const;
  /// Canonical names, in registration order.
  std::vector<std::string> names() const;
  /// Aliases for one canonical name, sorted.
  std::vector<std::string> aliases_of(const std::string& canonical) const;
  /// "name1, name2, ..." of every canonical name — error-message helper.
  std::string available() const;

 private:
  struct Entry {
    std::string name;
    std::string description;
    Factory factory;
  };
  const Entry* find(const std::string& name) const;

  std::vector<Entry> entries_;                   // registration order
  std::map<std::string, std::string> aliases_;   // alias -> canonical
};

/// RAII registrar for translation units that are guaranteed to be linked:
///   static StackRegistrar reg("MyProto", "...", [](const StackOptions&){...});
class StackRegistrar {
 public:
  StackRegistrar(const std::string& name, const std::string& description,
                 StackRegistry::Factory factory) {
    StackRegistry::global().add(name, description, std::move(factory));
  }
};

/// Registers the seven paper transports plus M-PDQ and DCTCP and their
/// CLI aliases.
/// Called by StackRegistry::global(); defined next to the stack adapters
/// in stacks.cc. Idempotent.
void register_builtin_stacks(StackRegistry& registry);

}  // namespace pdq::harness
