#include "core/pdq_switch.h"

#include <algorithm>
#include <cassert>

#include "net/topology.h"

namespace pdq::core {

void PdqLinkController::attach(net::Port& port) {
  net::LinkController::attach(port);
  r_pdq_bps_ = cfg_.r_pdq_fraction * port.link().rate_bps;
  capacity_bps_ = r_pdq_bps_;
  // Kick off the periodic rate-controller / GC loop.
  port.owner().topo().sim().schedule_in(
      static_cast<sim::Time>(cfg_.rc_interval_rtts *
                             static_cast<double>(cfg_.default_rtt)),
      [this] { rate_controller_tick(); });
}

net::NodeId PdqLinkController::my_id() const {
  return port_->owner().id();
}

sim::Time PdqLinkController::now() const {
  return port_->owner().topo().sim().now();
}

int PdqLinkController::find(net::FlowId f) const {
  for (std::size_t i = 0; i < list_.size(); ++i)
    if (list_[i].flow == f) return static_cast<int>(i);
  return -1;
}

void PdqLinkController::remove(net::FlowId f) {
  const int i = find(f);
  if (i >= 0) list_.erase(list_.begin() + i);
}

std::size_t PdqLinkController::resort(std::size_t i) {
  FlowEntry e = list_[i];
  list_.erase(list_.begin() + static_cast<std::ptrdiff_t>(i));
  const Criticality c = e.criticality();
  auto pos = std::lower_bound(
      list_.begin(), list_.end(), c,
      [](const FlowEntry& fe, const Criticality& key) {
        return fe.criticality() < key;
      });
  const auto idx = static_cast<std::size_t>(pos - list_.begin());
  list_.insert(pos, std::move(e));
  peak_list_size_ = std::max(peak_list_size_, list_.size());
  return idx;
}

int PdqLinkController::num_sending() const {
  int n = 0;
  for (const auto& e : list_)
    if (e.sending()) ++n;
  return n;
}

std::size_t PdqLinkController::list_limit() const {
  // Store the most critical 2*kappa flows (kappa = sending flows), with a
  // small floor so short lists never thrash, capped by the memory bound M.
  const auto kappa = static_cast<std::size_t>(num_sending());
  const std::size_t want = std::max<std::size_t>(2 * kappa, 8);
  return std::min(want, static_cast<std::size_t>(cfg_.max_flows_M));
}

double PdqLinkController::avail_bw(std::size_t index) const {
  // Algorithm 2: flows more critical than `index` either consume their
  // committed rate R_i or, if nearly completed (T_i < K * RTT_i) and the
  // Early Start budget X < K allows, are exempted so the next flow can
  // start while they drain.
  const double K = cfg_.early_start ? cfg_.early_start_K : 0.0;
  double X = 0.0;
  double A = 0.0;
  const sim::Time t = now();
  for (std::size_t i = 0; i < index && i < list_.size(); ++i) {
    const FlowEntry& e = list_[i];
    const sim::Time ertt = e.rtt > 0 ? e.rtt : cfg_.default_rtt;
    const double tx_in_rtts =
        static_cast<double>(e.expected_tx) / static_cast<double>(ertt);
    if (tx_in_rtts < K && X < K) {
      X += tx_in_rtts;
    } else {
      double effective = e.rate_bps;
      // Honor a recent provisional grant that has not been committed yet.
      if (e.granted_at >= 0 && t - e.granted_at < 2 * ertt) {
        effective = std::max(effective, e.granted_bps);
      }
      A += effective;
    }
  }
  if (A >= capacity_bps_) return 0.0;
  return capacity_bps_ - A;
}

void PdqLinkController::on_forward(net::Packet& p) {
  if (p.flow == net::kInvalidFlow) return;
  auto& hdr = p.pdq;

  if (p.type == net::PacketType::kTerm) {
    remove(p.flow);
    return;
  }

  // Algorithm 1, line 1: paused by some other switch -> forget the flow.
  if (hdr.pause_by != net::kInvalidNode && hdr.pause_by != my_id()) {
    remove(p.flow);
    return;
  }

  int idx = find(p.flow);
  if (idx < 0) {
    const std::size_t limit = list_limit();
    const Criticality incoming{hdr.deadline, hdr.expected_tx, p.flow};
    const bool fits = list_.size() < limit ||
                      more_critical(incoming, list_.back().criticality());
    if (!fits) {
      // Beyond the state cap: hand the flow to the RCP-style fallback so
      // leftover bandwidth is still used (S3.3.1).
      overflow_flows_.insert(p.flow);
      hdr.rate_bps = std::min(hdr.rate_bps, rcp_fallback_rate());
      if (hdr.rate_bps <= 0.0) {
        hdr.rate_bps = 0.0;
        hdr.pause_by = my_id();
      } else {
        hdr.pause_by = net::kInvalidNode;
      }
      return;
    }
    FlowEntry e;
    e.flow = p.flow;
    e.rate_bps = 0.0;
    e.pause_by = net::kInvalidNode;
    list_.push_back(e);
    idx = static_cast<int>(list_.size() - 1);
  }

  // Update <D_i, T_i, RTT_i> from the header and restore sort order.
  auto& entry = list_[static_cast<std::size_t>(idx)];
  entry.deadline = hdr.deadline;
  entry.expected_tx = hdr.expected_tx;
  if (hdr.rtt > 0) entry.rtt = hdr.rtt;
  entry.last_seen = now();
  std::size_t pos = resort(static_cast<std::size_t>(idx));
  // Evict the least critical entries once sorted (they can re-enter via
  // probes when the list has room again). The newcomer was admitted only
  // if more critical than the old tail, so it survives.
  const std::size_t limit_now = list_limit();
  while (list_.size() > limit_now && list_.back().flow != p.flow) {
    list_.pop_back();
  }
  assert(pos < list_.size() && list_[pos].flow == p.flow);
  FlowEntry& e = list_[pos];

  const double requested = hdr.rate_bps;
  const double W = std::min(avail_bw(pos), hdr.rate_bps);
  const bool not_sending_now = e.pause_by != net::kInvalidNode;
  // Hysteresis target: what this flow could reasonably get *right now* —
  // its request capped by the rate-controlled capacity. Comparing against
  // the raw request would wedge every paused flow whenever the rate
  // controller temporarily depresses C (an Early-Start queue transient).
  const double entitled = std::min(requested, capacity_bps_);
  const bool substantial =
      !not_sending_now || W >= cfg_.unpause_fraction * entitled;
  if (W >= cfg_.min_grant_bps && substantial) {
    const bool not_sending = not_sending_now;
    // Unpausing happens in criticality order ("the switch accepts flows
    // according to their criticality"): a flow paused by this switch may
    // not leapfrog a more critical flow that is also waiting here.
    // Without this, transient slack created by committed-rate fluctuation
    // is granted to whichever paused flow happens to probe first.
    bool leapfrog = false;
    if (not_sending) {
      for (std::size_t i = 0; i < pos; ++i) {
        if (list_[i].pause_by == my_id()) {
          leapfrog = true;
          break;
        }
      }
    }
    const bool dampened =
        not_sending && last_unpause_time_ >= 0 &&
        last_unpaused_flow_ != p.flow &&
        now() - last_unpause_time_ < cfg_.dampening;
    if (leapfrog || dampened) {
      hdr.pause_by = my_id();
      e.pause_by = my_id();
      e.granted_bps = 0.0;
      e.granted_at = -1;
    } else {
      const bool was_not_sending = not_sending || !e.sending();
      hdr.pause_by = net::kInvalidNode;
      hdr.rate_bps = W;
      e.granted_bps = W;
      e.granted_at = now();
      if (was_not_sending) {
        last_unpause_time_ = now();
        last_unpaused_flow_ = p.flow;
      }
    }
  } else {
    hdr.pause_by = my_id();
    e.pause_by = my_id();
    e.granted_bps = 0.0;
    e.granted_at = -1;
  }
}

void PdqLinkController::on_reverse(net::Packet& p) {
  if (p.flow == net::kInvalidFlow) return;
  auto& hdr = p.pdq;

  if (p.type == net::PacketType::kTermAck) {
    remove(p.flow);
    return;
  }

  // Algorithm 3.
  if (hdr.pause_by != net::kInvalidNode && hdr.pause_by != my_id()) {
    remove(p.flow);
  }
  if (hdr.pause_by != net::kInvalidNode) {
    hdr.rate_bps = 0.0;
  }
  const int idx = find(p.flow);
  if (idx >= 0) {
    auto& e = list_[static_cast<std::size_t>(idx)];
    e.pause_by = hdr.pause_by;
    if (cfg_.suppressed_probing) {
      hdr.inter_probe_rtts =
          std::max(hdr.inter_probe_rtts,
                   cfg_.probing_X * static_cast<double>(idx));
    }
    e.rate_bps = hdr.rate_bps;
    e.granted_bps = hdr.rate_bps;  // the commit supersedes the grant
    e.granted_at = hdr.rate_bps > 0.0 ? now() : -1;
    e.last_seen = now();
  }
}

sim::Time PdqLinkController::avg_rtt() const {
  sim::Time total = 0;
  int n = 0;
  for (const auto& e : list_) {
    if (e.rtt > 0) {
      total += e.rtt;
      ++n;
    }
  }
  return n > 0 ? total / n : cfg_.default_rtt;
}

void PdqLinkController::rate_controller_tick() {
  const sim::Time rtt = avg_rtt();

  // Garbage-collect entries whose sender went silent (lost TERM, crashed
  // sender). Keeps a lost pause/terminate message from wedging the link.
  const sim::Time cutoff = now() - cfg_.gc_timeout;
  std::erase_if(list_,
                [&](const FlowEntry& e) { return e.last_seen < cutoff; });

  // C = max(0, r_PDQ - q / (2 RTT)): drain whatever queue Early Start or
  // transient inconsistency built up.
  const double q_bits = static_cast<double>(port_->queue().bytes()) * 8.0;
  const double drain_bps =
      q_bits / (2.0 * sim::to_seconds(rtt));
  capacity_bps_ = std::max(0.0, r_pdq_bps_ - drain_bps);

  overflow_count_estimate_ = overflow_flows_.size();
  overflow_flows_.clear();

  port_->owner().topo().sim().schedule_in(
      static_cast<sim::Time>(cfg_.rc_interval_rtts * static_cast<double>(rtt)),
      [this] { rate_controller_tick(); });
}

double PdqLinkController::rcp_fallback_rate() {
  double committed = 0.0;
  for (const auto& e : list_) committed += e.rate_bps;
  const double leftover = std::max(0.0, capacity_bps_ - committed);
  const auto n = std::max<std::size_t>(
      {overflow_count_estimate_, overflow_flows_.size(), 1});
  return leftover / static_cast<double>(n);
}

void install_pdq(net::Topology& topo, const PdqConfig& cfg) {
  topo.install_controllers([&](net::Port& port) {
    (void)port;
    return std::make_unique<PdqLinkController>(cfg);
  });
}

}  // namespace pdq::core
