#include "core/pdq_switch.h"

#include <algorithm>
#include <cassert>

#include "net/topology.h"

namespace pdq::core {

void PdqLinkController::attach(net::Port& port) {
  net::LinkController::attach(port);
  self_ = port.owner().id();
  r_pdq_bps_ = cfg_.r_pdq_fraction * port.link().rate_bps;
  capacity_bps_ = r_pdq_bps_;
  // The periodic rate-controller / GC loop starts dormant: the link is
  // idle, so every tick until the first packet would be a no-op. The
  // virtual grid is anchored here; wake_rate_controller() re-enters it
  // at exactly the instants the always-on loop would have ticked.
  tick_dormant_ = true;
  dormant_anchor_ = now();
  dormant_interval_ = static_cast<sim::Time>(
      cfg_.rc_interval_rtts * static_cast<double>(cfg_.default_rtt));
  assert(dormant_interval_ > 0);
  dormant_seq_ = port.owner().topo().sim().reserve_event_order(&dormant_seq_);
}

net::NodeId PdqLinkController::my_id() const { return self_; }

sim::Time PdqLinkController::now() const {
  return port_->owner().topo().sim().now();
}

int PdqLinkController::find(net::FlowId f) const {
  ++scan_ops_;
  auto it = index_.find(f);
  if (it == index_.end()) return -1;
  assert(list_[it->second].flow == f);
  return static_cast<int>(it->second);
}

void PdqLinkController::retire(const FlowEntry& e) {
  if (e.sending()) --num_sending_;
  if (e.rtt > 0) {
    rtt_sum_ -= e.rtt;
    --rtt_count_;
  }
}

void PdqLinkController::set_rate(FlowEntry& e, double rate) {
  const bool was = e.sending();
  e.rate_bps = rate;
  const bool is = e.sending();
  num_sending_ += static_cast<int>(is) - static_cast<int>(was);
}

void PdqLinkController::set_rtt(FlowEntry& e, sim::Time rtt) {
  if (e.rtt > 0) {
    rtt_sum_ -= e.rtt;
    --rtt_count_;
  }
  e.rtt = rtt;
  if (e.rtt > 0) {
    rtt_sum_ += e.rtt;
    ++rtt_count_;
  }
}

void PdqLinkController::reindex_from(std::size_t from) {
  for (std::size_t i = from; i < list_.size(); ++i) {
    index_[list_[i].flow] = static_cast<std::uint32_t>(i);
    ++scan_ops_;
  }
}

void PdqLinkController::remove(net::FlowId f) {
  const int i = find(f);
  if (i < 0) return;
  const auto idx = static_cast<std::size_t>(i);
  retire(list_[idx]);
  index_.erase(f);
  list_.erase(list_.begin() + i);
  reindex_from(idx);
  touch(idx);
}

void PdqLinkController::reset_state() {
  // Everything derived from per-flow soft state goes; configuration and
  // tick machinery (dormancy grid, capacity) survive the "reboot". The
  // paper's design tolerates this: switches keep no hard state, so the
  // next forward packet of every live flow re-adds its entry.
  list_.clear();
  index_.clear();
  prefix_.clear();
  prefix_clean_ = 0;
  num_sending_ = 0;
  rtt_sum_ = 0;
  rtt_count_ = 0;
  overflow_flows_.clear();
  overflow_count_estimate_ = 0;
  last_unpause_time_ = -1;
  last_unpaused_flow_ = net::kInvalidFlow;
}

void PdqLinkController::granted_flows(std::vector<net::GrantInfo>& out) const {
  for (const auto& e : list_) {
    if (e.rate_bps <= 0.0 && e.granted_bps <= 0.0) continue;
    net::GrantInfo g;
    g.flow = e.flow;
    g.rate_bps = std::max(e.rate_bps, e.granted_bps);
    g.last_seen = e.last_seen;
    out.push_back(g);
  }
}

std::size_t PdqLinkController::resort(std::size_t i) {
  FlowEntry e = list_[i];
  list_.erase(list_.begin() + static_cast<std::ptrdiff_t>(i));
  const Criticality c = e.criticality();
  auto pos = std::lower_bound(
      list_.begin(), list_.end(), c,
      [](const FlowEntry& fe, const Criticality& key) {
        return fe.criticality() < key;
      });
  const auto idx = static_cast<std::size_t>(pos - list_.begin());
  list_.insert(pos, std::move(e));
  peak_list_size_ = std::max(peak_list_size_, list_.size());
  // Only entries in [min(i, idx), max(i, idx)] changed position.
  const std::size_t lo = std::min(i, idx);
  const std::size_t hi = std::max(i, idx);
  for (std::size_t s = lo; s <= hi; ++s) {
    index_[list_[s].flow] = static_cast<std::uint32_t>(s);
    ++scan_ops_;
  }
  touch(lo);
  return idx;
}

std::size_t PdqLinkController::list_limit() const {
  // Store the most critical 2*kappa flows (kappa = sending flows), with a
  // small floor so short lists never thrash, capped by the memory bound M.
  const auto kappa = static_cast<std::size_t>(num_sending_);
  const std::size_t want = std::max<std::size_t>(2 * kappa, 8);
  return std::min(want, static_cast<std::size_t>(cfg_.max_flows_M));
}

const PdqLinkController::PrefixEntry& PdqLinkController::ensure_prefix(
    std::size_t j) {
  assert(j <= list_.size());
  if (prefix_.size() < list_.size() + 1) prefix_.resize(list_.size() + 1);
  if (prefix_clean_ > list_.size()) prefix_clean_ = list_.size();
  const sim::Time t = now();
  std::size_t s = std::min(prefix_clean_, j);
  // Roll back past positions whose counted provisional grants expired
  // (valid_until is nonincreasing over the clean range, so this stops at
  // the first still-valid position; position 0 is always valid).
  while (s > 0 && prefix_[s].valid_until <= t) --s;
  if (s >= j) return prefix_[j];

  // Resume the exact Algorithm-2 accumulation from the last clean
  // position. Every arithmetic step and its order match the naive
  // front-to-back walk, so cached results are bit-identical to it.
  const double K = cfg_.early_start ? cfg_.early_start_K : 0.0;
  for (std::size_t i = s; i < j; ++i) {
    const FlowEntry& e = list_[i];
    PrefixEntry out = prefix_[i];
    const sim::Time ertt = e.rtt > 0 ? e.rtt : cfg_.default_rtt;
    const double tx_in_rtts =
        static_cast<double>(e.expected_tx) / static_cast<double>(ertt);
    if (tx_in_rtts < K && out.early_start_x < K) {
      out.early_start_x += tx_in_rtts;
    } else {
      double effective = e.rate_bps;
      // Honor a recent provisional grant that has not been committed yet.
      if (e.granted_at >= 0 && t - e.granted_at < 2 * ertt) {
        effective = std::max(effective, e.granted_bps);
        if (e.granted_bps > e.rate_bps) {
          out.valid_until =
              std::min(out.valid_until, e.granted_at + 2 * ertt);
        }
      }
      out.avail_used += effective;
    }
    out.committed += e.rate_bps;
    if (e.pause_by == my_id()) ++out.paused_here;
    prefix_[i + 1] = out;
    ++scan_ops_;
  }
  prefix_clean_ = std::max(prefix_clean_, j);
  return prefix_[j];
}

double PdqLinkController::avail_bw(std::size_t index) {
  // Algorithm 2: flows more critical than `index` either consume their
  // committed rate R_i or, if nearly completed (T_i < K * RTT_i) and the
  // Early Start budget X < K allows, are exempted so the next flow can
  // start while they drain.
  const std::size_t j = std::min(index, list_.size());
  const double A = ensure_prefix(j).avail_used;
  if (A >= capacity_bps_) return 0.0;
  return capacity_bps_ - A;
}

double PdqLinkController::committed_rate_sum() {
  return ensure_prefix(list_.size()).committed;
}

void PdqLinkController::on_enqueue() {
  // Any packet occupying the output queue must restart the rate
  // controller: its next on-grid tick samples the queue depth.
  wake_rate_controller();
}

void PdqLinkController::on_forward(net::Packet& p) {
  if (p.flow == net::kInvalidFlow) return;
  wake_rate_controller();
  auto& hdr = p.pdq;

  if (p.type == net::PacketType::kTerm) {
    remove(p.flow);
    return;
  }

  // Algorithm 1, line 1: paused by some other switch -> forget the flow.
  if (hdr.pause_by != net::kInvalidNode && hdr.pause_by != my_id()) {
    remove(p.flow);
    return;
  }

  int idx = find(p.flow);
  if (idx < 0) {
    const std::size_t limit = list_limit();
    const Criticality incoming{hdr.deadline, hdr.expected_tx, p.flow};
    const bool fits = list_.size() < limit ||
                      more_critical(incoming, list_.back().criticality());
    if (!fits) {
      // Beyond the state cap: hand the flow to the RCP-style fallback so
      // leftover bandwidth is still used (S3.3.1).
      overflow_flows_.insert(p.flow);
      hdr.rate_bps = std::min(hdr.rate_bps, rcp_fallback_rate());
      if (hdr.rate_bps <= 0.0) {
        hdr.rate_bps = 0.0;
        hdr.pause_by = my_id();
      } else {
        hdr.pause_by = net::kInvalidNode;
      }
      return;
    }
    FlowEntry e;
    e.flow = p.flow;
    e.rate_bps = 0.0;
    e.pause_by = net::kInvalidNode;
    list_.push_back(e);
    idx = static_cast<int>(list_.size() - 1);
    index_[p.flow] = static_cast<std::uint32_t>(idx);
  }

  // Update <D_i, T_i, RTT_i> from the header and restore sort order.
  auto& entry = list_[static_cast<std::size_t>(idx)];
  entry.deadline = hdr.deadline;
  entry.expected_tx = hdr.expected_tx;
  if (hdr.rtt > 0) set_rtt(entry, hdr.rtt);
  entry.last_seen = now();
  touch(static_cast<std::size_t>(idx));
  std::size_t pos = resort(static_cast<std::size_t>(idx));
  // Evict the least critical entries once sorted (they can re-enter via
  // probes when the list has room again). The newcomer was admitted only
  // if more critical than the old tail, so it survives.
  const std::size_t limit_now = list_limit();
  while (list_.size() > limit_now && list_.back().flow != p.flow) {
    retire(list_.back());
    index_.erase(list_.back().flow);
    list_.pop_back();
  }
  assert(pos < list_.size() && list_[pos].flow == p.flow);
  FlowEntry& e = list_[pos];

  const double requested = hdr.rate_bps;
  const double W = std::min(avail_bw(pos), hdr.rate_bps);
  const bool not_sending_now = e.pause_by != net::kInvalidNode;
  // Hysteresis target: what this flow could reasonably get *right now* —
  // its request capped by the rate-controlled capacity. Comparing against
  // the raw request would wedge every paused flow whenever the rate
  // controller temporarily depresses C (an Early-Start queue transient).
  const double entitled = std::min(requested, capacity_bps_);
  const bool substantial =
      !not_sending_now || W >= cfg_.unpause_fraction * entitled;
  if (W >= cfg_.min_grant_bps && substantial) {
    const bool not_sending = not_sending_now;
    // Unpausing happens in criticality order ("the switch accepts flows
    // according to their criticality"): a flow paused by this switch may
    // not leapfrog a more critical flow that is also waiting here.
    // Without this, transient slack created by committed-rate fluctuation
    // is granted to whichever paused flow happens to probe first.
    bool leapfrog = false;
    if (not_sending) {
      leapfrog = ensure_prefix(pos).paused_here > 0;
    }
    const bool dampened =
        not_sending && last_unpause_time_ >= 0 &&
        last_unpaused_flow_ != p.flow &&
        now() - last_unpause_time_ < cfg_.dampening;
    if (leapfrog || dampened) {
      hdr.pause_by = my_id();
      e.pause_by = my_id();
      e.granted_bps = 0.0;
      e.granted_at = -1;
    } else {
      const bool was_not_sending = not_sending || !e.sending();
      hdr.pause_by = net::kInvalidNode;
      hdr.rate_bps = W;
      e.granted_bps = W;
      e.granted_at = now();
      if (was_not_sending) {
        last_unpause_time_ = now();
        last_unpaused_flow_ = p.flow;
      }
    }
  } else {
    hdr.pause_by = my_id();
    e.pause_by = my_id();
    e.granted_bps = 0.0;
    e.granted_at = -1;
  }
  touch(pos);
}

void PdqLinkController::on_reverse(net::Packet& p) {
  if (p.flow == net::kInvalidFlow) return;
  auto& hdr = p.pdq;

  if (p.type == net::PacketType::kTermAck) {
    remove(p.flow);
    return;
  }

  // Algorithm 3.
  if (hdr.pause_by != net::kInvalidNode && hdr.pause_by != my_id()) {
    remove(p.flow);
  }
  if (hdr.pause_by != net::kInvalidNode) {
    hdr.rate_bps = 0.0;
  }
  const int idx = find(p.flow);
  if (idx >= 0) {
    auto& e = list_[static_cast<std::size_t>(idx)];
    e.pause_by = hdr.pause_by;
    if (cfg_.suppressed_probing) {
      hdr.inter_probe_rtts =
          std::max(hdr.inter_probe_rtts,
                   cfg_.probing_X * static_cast<double>(idx));
    }
    set_rate(e, hdr.rate_bps);
    e.granted_bps = hdr.rate_bps;  // the commit supersedes the grant
    e.granted_at = hdr.rate_bps > 0.0 ? now() : -1;
    e.last_seen = now();
    touch(static_cast<std::size_t>(idx));
  }
}

sim::Time PdqLinkController::avg_rtt() const {
  return rtt_count_ > 0 ? rtt_sum_ / rtt_count_ : cfg_.default_rtt;
}

void PdqLinkController::schedule_tick(sim::Time interval) {
  port_->owner().topo().sim().schedule_in(interval,
                                          [this] { rate_controller_tick(); });
}

void PdqLinkController::wake_rate_controller() {
  if (!tick_dormant_) return;
  tick_dormant_ = false;
  // Re-enter the virtual grid. Grid ticks strictly before now() all saw
  // an idle link and were exact no-ops. A tick due exactly *now* needs
  // care: the always-on tick at this instant carries tie key
  // (vtime = previous grid point); if that key orders before the event
  // waking us, the tick already "ran" as a no-op (the link was still
  // idle when it would have executed) — but if it orders after, the
  // chain's tick would observe the state this event is introducing, so
  // it must really run, in its chain position. Re-entered ticks
  // tie-order as if scheduled by the previous (virtual) grid tick.
  const sim::Time t = now();
  assert(t >= dormant_anchor_);
  sim::Simulator& sim = port_->owner().topo().sim();
  const sim::Time off = t - dormant_anchor_;
  if (off > 0 && off % dormant_interval_ == 0) {
    const sim::Time prev = t - dormant_interval_;
    // For the first grid point the chain tick's full (vtime, seq) key is
    // known exactly (reserved at dormancy entry); later re-entries fall
    // back to the vtime comparison, resolving exact-vtime ties as
    // tick-first (the virtual tick's ancient vtime at `prev` makes its
    // schedulings earlier than same-instant competitors' in the
    // overwhelming case).
    const bool due =
        off == dormant_interval_
            ? (prev > sim.current_event_vtime() ||
               (prev == sim.current_event_vtime() &&
                dormant_seq_ > sim.current_event_seq()))
            : prev > sim.current_event_vtime();
    if (due) {
      if (off == dormant_interval_) {
        sim.schedule_at_reserved(t, prev, dormant_seq_,
                                 [this] { rate_controller_tick(); });
      } else {
        sim.schedule_at_as_if(t, prev, [this] { rate_controller_tick(); });
      }
      return;
    }
  }
  const auto n = static_cast<sim::Time>(off / dormant_interval_) + 1;
  if (n == 1) {
    sim.schedule_at_reserved(dormant_anchor_ + dormant_interval_,
                             dormant_anchor_, dormant_seq_,
                             [this] { rate_controller_tick(); });
  } else {
    sim.schedule_at_as_if(dormant_anchor_ + n * dormant_interval_,
                          dormant_anchor_ + (n - 1) * dormant_interval_,
                          [this] { rate_controller_tick(); });
  }
}

void PdqLinkController::rate_controller_tick() {
  const sim::Time rtt = avg_rtt();

  // Garbage-collect entries whose sender went silent (lost TERM, crashed
  // sender). Keeps a lost pause/terminate message from wedging the link.
  const sim::Time cutoff = now() - cfg_.gc_timeout;
  std::size_t w = 0;
  std::size_t first_removed = list_.size();
  for (std::size_t r = 0; r < list_.size(); ++r) {
    if (list_[r].last_seen < cutoff) {
      retire(list_[r]);
      index_.erase(list_[r].flow);
      if (first_removed == list_.size()) first_removed = w;
      continue;
    }
    if (w != r) list_[w] = std::move(list_[r]);
    ++w;
  }
  if (w != list_.size()) {
    list_.resize(w);
    reindex_from(first_removed);
    touch(first_removed);
  }

  // C = max(0, r_PDQ - q / (2 RTT)): drain whatever queue Early Start or
  // transient inconsistency built up.
  const double q_bits = static_cast<double>(port_->queue().bytes()) * 8.0;
  const double drain_bps =
      q_bits / (2.0 * sim::to_seconds(rtt));
  capacity_bps_ = std::max(0.0, r_pdq_bps_ - drain_bps);

  overflow_count_estimate_ = overflow_flows_.size();
  overflow_flows_.clear();

  const auto interval =
      static_cast<sim::Time>(cfg_.rc_interval_rtts * static_cast<double>(rtt));
  const auto default_interval = static_cast<sim::Time>(
      cfg_.rc_interval_rtts * static_cast<double>(cfg_.default_rtt));
  if (list_.empty() && port_->queue().empty() &&
      overflow_count_estimate_ == 0 && capacity_bps_ == r_pdq_bps_ &&
      interval == default_interval) {
    // The link is idle and this tick's pitch already matches the idle
    // pitch (an empty list keeps avg_rtt() at cfg_.default_rtt), so every
    // future tick would be this exact no-op on a uniform grid. Suspend
    // the loop; wake_rate_controller() re-enters the grid on the next
    // packet. (A tick whose GC just emptied the list reschedules once at
    // its pre-GC pitch; the next tick then goes dormant.)
    tick_dormant_ = true;
    dormant_anchor_ = now();
    dormant_interval_ = interval;
    // The always-on engine would schedule the anchor+interval tick right
    // here; reserving its seq makes the first grid re-entry tie-exact.
    dormant_seq_ =
        port_->owner().topo().sim().reserve_event_order(&dormant_seq_);
    return;
  }
  schedule_tick(interval);
}

double PdqLinkController::rcp_fallback_rate() {
  const double committed = committed_rate_sum();
  const double leftover = std::max(0.0, capacity_bps_ - committed);
  const auto n = std::max<std::size_t>(
      {overflow_count_estimate_, overflow_flows_.size(), 1});
  return leftover / static_cast<double>(n);
}

void install_pdq(net::Topology& topo, const PdqConfig& cfg) {
  topo.install_controllers([&](net::Port& port) {
    (void)port;
    return std::make_unique<PdqLinkController>(cfg);
  });
}

}  // namespace pdq::core
