// PDQ end-host logic (paper S3.1-S3.2).
//
// Sender: paces data at the switch-granted rate R_S; when paused (R_S = 0)
// it probes every I_S RTTs; optionally applies Early Termination to
// deadline flows and aging to long-waiting flows; supports the inaccurate-
// flow-knowledge criticality modes of S5.6.
// Receiver: echoes the scheduling header into ACKs and clamps the granted
// rate to what it can receive.
#pragma once

#include "core/pdq_config.h"
#include "net/paced_sender.h"

namespace pdq::core {

class PdqSender : public net::PacedSender {
 public:
  PdqSender(net::AgentContext ctx, PdqConfig cfg);

  net::NodeId paused_by() const { return paused_by_; }
  bool is_paused() const { return paused_by_ != net::kInvalidNode; }
  double rmax_bps() const { return rmax_; }

  /// The T_H value this sender currently advertises (after criticality
  /// mode and aging adjustments). Exposed for tests.
  sim::Time advertised_tx_time() const;
  sim::Time advertised_deadline() const;

  /// M-PDQ hook: subflows advertise the whole multipath flow's remaining
  /// bytes instead of their own slice, so criticality stays comparable to
  /// single-path flows.
  void set_remaining_override(std::function<std::int64_t()> fn) {
    remaining_override_ = std::move(fn);
  }

  void quiesce() override;

 protected:
  void on_start() override;
  void decorate(net::Packet& p) override;
  void on_reverse(const net::PacketPtr& p) override;

 private:
  void tick();
  void send_probe();
  bool check_early_termination();

  PdqConfig cfg_;
  double rmax_ = 0.0;
  net::NodeId paused_by_ = net::kInvalidNode;  // P_S
  double inter_probe_rtts_ = 1.0;              // I_S
  sim::Time next_probe_at_ = 0;
  sim::Time random_criticality_ = 0;  // fixed T for CriticalityMode::kRandom
  bool got_feedback_ = false;
  sim::EventId tick_event_ = 0;
  bool tick_pending_ = false;
  std::function<std::int64_t()> remaining_override_;
};

class PdqReceiver : public net::EchoReceiver {
 public:
  /// `receive_rate_bps` caps the granted rate (0 = receiver NIC rate).
  explicit PdqReceiver(net::AgentContext ctx, double receive_rate_bps = 0.0);

 protected:
  void decorate_reply(net::Packet& reply, const net::Packet& data) override;

 private:
  double receive_rate_bps_;
};

}  // namespace pdq::core
