#include "core/mpdq.h"

#include <algorithm>
#include <cassert>

#include "net/topology.h"

namespace pdq::core {

namespace {
/// Same mixer as the topology's ECMP hash.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

MpdqSender::MpdqSender(net::AgentContext ctx, MpdqConfig cfg)
    : ctx_(std::move(ctx)), cfg_(cfg) {
  assert(cfg_.num_subflows >= 1);
  result_.spec = ctx_.spec;

  // Flow-level ECMP: each subflow hashes onto one of the link-disjoint
  // paths (collisions possible, exactly as with switch ECMP).
  const auto& paths = ctx_.topo->disjoint_paths(ctx_.spec.src, ctx_.spec.dst);
  assert(!paths.empty());
  workers_.resize(static_cast<std::size_t>(cfg_.num_subflows));
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const std::uint64_t h =
        mix64(static_cast<std::uint64_t>(ctx_.spec.id) * 1315423911ULL + w);
    workers_[w].route = net::make_route(paths[h % paths.size()]);
  }
}

MpdqSender::~MpdqSender() {
  for (auto& w : workers_) {
    if (w.id != net::kInvalidFlow) {
      ctx_.local->detach_sender(w.id);
      ctx_.topo->host(ctx_.spec.dst).detach_receiver(w.id);
    }
  }
}

int MpdqSender::sending_subflows() const {
  int n = 0;
  for (const auto& w : workers_)
    if (!w.done && w.sender && w.sender->rate_bps() > 0) ++n;
  return n;
}

std::int64_t MpdqSender::remaining_bytes() const {
  // Live view: bytes still unacknowledged across all unfinished subflows.
  std::int64_t rem = 0;
  for (const auto& w : workers_) {
    if (!w.done && w.sender && !w.sender->finished())
      rem += w.sender->remaining_bytes();
  }
  return rem;
}

bool MpdqSender::handle_link_down(net::NodeId a, net::NodeId b) {
  if (result_.outcome != net::FlowOutcome::kPending) return true;

  const auto crosses = [a, b](const net::RouteRef& route) {
    if (route == nullptr) return false;
    for (std::size_t h = 0; h + 1 < route->fwd.size(); ++h) {
      if ((route->fwd[h] == a && route->fwd[h + 1] == b) ||
          (route->fwd[h] == b && route->fwd[h + 1] == a)) {
        return true;
      }
    }
    return false;
  };

  bool any_affected = false;
  for (const auto& w : workers_) any_affected |= crosses(w.route);
  if (!any_affected) return true;

  if (ctx_.topo->shortest_paths(ctx_.spec.src, ctx_.spec.dst).empty()) {
    // Receiver unreachable: terminate every live subflow; the first
    // kTerminated completion tears down the whole flow (and a
    // not-yet-started flow terminates directly).
    for (auto& w : workers_) {
      if (w.sender && !w.sender->finished()) w.sender->reroute(nullptr);
    }
    finish(net::FlowOutcome::kTerminated);
    return true;
  }

  // Re-pin affected subflows onto the refreshed (post-failure)
  // disjoint-path set with the construction-time hash, so the mapping
  // stays deterministic across trials.
  const auto& paths = ctx_.topo->disjoint_paths(ctx_.spec.src, ctx_.spec.dst);
  assert(!paths.empty());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!crosses(workers_[w].route)) continue;
    const std::uint64_t h =
        mix64(static_cast<std::uint64_t>(ctx_.spec.id) * 1315423911ULL + w);
    workers_[w].route = net::make_route(paths[h % paths.size()]);
    if (workers_[w].sender && !workers_[w].sender->finished()) {
      workers_[w].sender->reroute(workers_[w].route);
    }
  }
  return true;
}

void MpdqSender::start() {
  // Terminated before start (timeline link failure): stay silent.
  if (result_.outcome != net::FlowOutcome::kPending) return;
  assert(!started_);
  started_ = true;

  const auto k = static_cast<std::int64_t>(workers_.size());
  const std::int64_t base = ctx_.spec.size_bytes / k;

  for (std::size_t w = 0; w < workers_.size(); ++w) {
    net::FlowSpec sub = ctx_.spec;
    sub.id = ctx_.spec.id * kMpdqIdStride + 1 + static_cast<net::FlowId>(w);
    sub.parent = ctx_.spec.id;
    sub.size_bytes =
        (w == 0) ? ctx_.spec.size_bytes - base * (k - 1) : base;
    if (sub.size_bytes <= 0) {
      workers_[w].done = true;
      continue;
    }

    net::AgentContext rctx;
    rctx.topo = ctx_.topo;
    rctx.local = &ctx_.topo->host(ctx_.spec.dst);
    rctx.spec = sub;
    workers_[w].receiver = std::make_unique<PdqReceiver>(std::move(rctx));
    ctx_.topo->host(ctx_.spec.dst)
        .attach_receiver(sub.id, workers_[w].receiver.get());

    net::AgentContext sctx;
    sctx.topo = ctx_.topo;
    sctx.local = ctx_.local;
    sctx.spec = sub;
    sctx.route = workers_[w].route;
    sctx.on_done = [this, w](const net::FlowResult& r) {
      on_subflow_done(w, r);
    };
    workers_[w].sender = std::make_unique<PdqSender>(std::move(sctx), cfg_.pdq);
    workers_[w].sender->set_remaining_override(
        [this] { return remaining_bytes(); });
    ctx_.local->attach_sender(sub.id, workers_[w].sender.get());
    workers_[w].id = sub.id;
    workers_[w].sender->start();
  }

  rebalance_pending_ = true;
  rebalance_event_ = ctx_.topo->sim().schedule_in(cfg_.rebalance_interval,
                                                  [this] { rebalance(); });
}

void MpdqSender::rebalance() {
  rebalance_pending_ = false;
  if (result_.outcome != net::FlowOutcome::kPending) return;

  // Target: the *sending* subflow with the minimal remaining load.
  Worker* target = nullptr;
  std::int64_t target_remaining = 0;
  for (auto& w : workers_) {
    if (w.done || !w.sender || w.sender->finished()) continue;
    if (w.sender->rate_bps() <= 0) continue;
    const std::int64_t rem = w.sender->remaining_bytes();
    if (!target || rem < target_remaining) {
      target = &w;
      target_remaining = rem;
    }
  }
  if (target) {
    for (auto& w : workers_) {
      if (&w == target || w.done || !w.sender || w.sender->finished())
        continue;
      if (w.sender->rate_bps() > 0) continue;  // only drain paused subflows
      const std::int64_t movable = w.sender->unsent_tail_bytes();
      if (movable <= 0) continue;
      std::int64_t moved = w.sender->shrink_tail(movable);
      if (moved > 0 && !target->sender->extend_tail(moved)) {
        // Target raced to completion; hand the bytes to any live subflow
        // (the donor itself if need be) so none are lost.
        for (auto& other : workers_) {
          if (other.sender && !other.sender->finished() &&
              other.sender->extend_tail(moved)) {
            moved = 0;
            break;
          }
        }
      }
    }
  }

  rebalance_pending_ = true;
  rebalance_event_ = ctx_.topo->sim().schedule_in(cfg_.rebalance_interval,
                                                  [this] { rebalance(); });
}

void MpdqSender::on_subflow_done(std::size_t wi, const net::FlowResult& r) {
  Worker& w = workers_[wi];
  w.done = true;
  result_.packets_sent += r.packets_sent;
  result_.retransmissions += r.retransmissions;
  result_.bytes_acked += r.bytes_acked;

  if (r.outcome == net::FlowOutcome::kTerminated) {
    // Early Termination on any subflow kills the whole multipath flow.
    finish(net::FlowOutcome::kTerminated);
    return;
  }
  if (result_.bytes_acked >= result_.spec.size_bytes) {
    finish(net::FlowOutcome::kCompleted);
    return;
  }
  // Not done yet: remaining bytes live in other (possibly paused)
  // subflows; the rebalancer keeps funneling work to whoever can send.
}

void MpdqSender::finish(net::FlowOutcome outcome) {
  if (result_.outcome != net::FlowOutcome::kPending) return;
  result_.outcome = outcome;
  result_.finish_time = ctx_.topo->sim().now();
  if (rebalance_pending_) {
    ctx_.topo->sim().cancel(rebalance_event_);
    rebalance_pending_ = false;
  }
  if (ctx_.on_done) ctx_.on_done(result_);
}

}  // namespace pdq::core
