// Multipath PDQ (paper S6).
//
// The M-PDQ sender splits a flow into `num_subflows` PDQ subflows assigned
// to paths by flow-level ECMP hashing over the link-disjoint path set (in
// BCube these are the paths through the server's multiple NICs). Each
// subflow starts with an equal slice of the flow. A periodic rebalancer
// implements the paper's load shifting: it moves unsent bytes from paused
// subflows to the sending subflow with the minimal remaining load. Every
// subflow advertises the whole flow's remaining size as its criticality,
// so M-PDQ flows compete with single-path flows on equal terms.
#pragma once

#include <memory>
#include <vector>

#include "core/pdq_agent.h"
#include "core/pdq_config.h"
#include "net/paced_sender.h"

namespace pdq::core {

struct MpdqConfig {
  PdqConfig pdq;
  int num_subflows = 3;  // the paper's Fig 11a setting
  sim::Time rebalance_interval = sim::kMillisecond;
};

/// Subflow ids are parent * kMpdqIdStride + 1 + subflow index; keep parent
/// flow ids below 2^43 to avoid collisions.
inline constexpr net::FlowId kMpdqIdStride = 1 << 20;

class MpdqSender : public net::Agent {
 public:
  MpdqSender(net::AgentContext ctx, MpdqConfig cfg);
  ~MpdqSender() override;

  void start() override;
  void on_packet(const net::PacketPtr&) override {}  // subflows get these
  const net::FlowResult* flow_result() const override { return &result_; }
  /// Link failure (harness timelines): always claims the event — the
  /// parent route does not describe the subflows' disjoint paths.
  /// Affected subflows are re-pinned onto the refreshed disjoint-path
  /// set (same deterministic hash as construction); when the receiver
  /// is unreachable the whole flow terminates.
  bool handle_link_down(net::NodeId a, net::NodeId b) override;

  int sending_subflows() const;
  std::int64_t remaining_bytes() const;

 private:
  struct Worker {
    net::RouteRef route;
    std::unique_ptr<PdqSender> sender;
    std::unique_ptr<PdqReceiver> receiver;
    net::FlowId id = net::kInvalidFlow;
    bool done = false;
  };

  void rebalance();
  void on_subflow_done(std::size_t w, const net::FlowResult& r);
  void finish(net::FlowOutcome outcome);

  net::AgentContext ctx_;
  MpdqConfig cfg_;
  net::FlowResult result_;
  std::vector<Worker> workers_;
  bool started_ = false;
  /// Pending rebalance timer; cancelled on finish so a completed flow
  /// leaves no dead event behind in the queue.
  sim::EventId rebalance_event_ = 0;
  bool rebalance_pending_ = false;
};

}  // namespace pdq::core
