// PDQ switch logic: one PdqLinkController per output port.
//
// Implements the paper's Algorithms 1-3:
//  - Algorithm 1 (on forward packets): add/evict flows in the per-link
//    criticality-sorted list, accept or pause, with Dampening and the
//    RCP-fallback path for flows beyond the state cap M.
//  - Algorithm 2 (Availbw): available bandwidth for the j-th most critical
//    flow, exempting "nearly completed" flows (Early Start, budget K).
//  - Algorithm 3 (on reverse packets): commit the path-wide decision into
//    per-flow state and stretch probe intervals (Suppressed Probing).
// Plus the rate controller: C = max(0, r_PDQ - q/(2*RTT)), updated every
// 2 average RTTs, which both drains Early-Start queues and absorbs
// transient inconsistency (e.g. lost pause messages).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/criticality.h"
#include "core/pdq_config.h"
#include "net/link_controller.h"
#include "net/node.h"

namespace pdq::core {

class PdqLinkController : public net::LinkController {
 public:
  explicit PdqLinkController(PdqConfig cfg) : cfg_(cfg) {}

  void attach(net::Port& port) override;
  void on_forward(net::Packet& p) override;
  void on_reverse(net::Packet& p) override;

  /// Per-flow state for link `e` (paper S3.3.1), kept sorted by
  /// criticality.
  struct FlowEntry {
    net::FlowId flow = net::kInvalidFlow;
    double rate_bps = 0.0;                     // R_i (committed on reverse)
    net::NodeId pause_by = net::kInvalidNode;  // P_i
    sim::Time deadline = sim::kTimeInfinity;   // D_i (absolute)
    sim::Time expected_tx = 0;                 // T_i
    sim::Time rtt = 0;                         // RTT_i
    sim::Time last_seen = 0;
    /// Rate provisionally granted on the forward path. Counted by
    /// avail_bw() until the reverse-path commit lands, so that two flows
    /// racing through their first RTT cannot both be granted the full
    /// link (the committed R_i alone is half an RTT stale).
    double granted_bps = 0.0;
    sim::Time granted_at = -1;

    Criticality criticality() const { return {deadline, expected_tx, flow}; }
    bool sending() const { return rate_bps > 0.0; }
  };

  const std::vector<FlowEntry>& flow_list() const { return list_; }
  double capacity_bps() const { return capacity_bps_; }
  int num_sending() const;
  std::size_t peak_list_size() const { return peak_list_size_; }

  /// Algorithm 2. Exposed for unit tests.
  double avail_bw(std::size_t index) const;

 private:
  int find(net::FlowId f) const;
  void remove(net::FlowId f);
  /// Re-sorts entry `i` after its criticality fields changed; returns its
  /// new index.
  std::size_t resort(std::size_t i);
  std::size_t list_limit() const;
  void rate_controller_tick();
  double rcp_fallback_rate();
  sim::Time avg_rtt() const;
  net::NodeId my_id() const;
  sim::Time now() const;

  PdqConfig cfg_;
  std::vector<FlowEntry> list_;
  double capacity_bps_ = 0.0;  // C, set by the rate controller
  double r_pdq_bps_ = 0.0;     // configured PDQ share of the link

  // Dampening state: the last time a non-sending flow was (provisionally)
  // accepted, and which flow it was.
  sim::Time last_unpause_time_ = -1;
  net::FlowId last_unpaused_flow_ = net::kInvalidFlow;

  // RCP-fallback bookkeeping: overflow flows seen this control interval.
  std::unordered_set<net::FlowId> overflow_flows_;
  std::size_t overflow_count_estimate_ = 0;

  std::size_t peak_list_size_ = 0;
};

/// Installs PDQ controllers on every output port of every node.
void install_pdq(net::Topology& topo, const PdqConfig& cfg);

}  // namespace pdq::core
