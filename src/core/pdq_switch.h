// PDQ switch logic: one PdqLinkController per output port.
//
// Implements the paper's Algorithms 1-3:
//  - Algorithm 1 (on forward packets): add/evict flows in the per-link
//    criticality-sorted list, accept or pause, with Dampening and the
//    RCP-fallback path for flows beyond the state cap M.
//  - Algorithm 2 (Availbw): available bandwidth for the j-th most critical
//    flow, exempting "nearly completed" flows (Early Start, budget K).
//  - Algorithm 3 (on reverse packets): commit the path-wide decision into
//    per-flow state and stretch probe intervals (Suppressed Probing).
// Plus the rate controller: C = max(0, r_PDQ - q/(2*RTT)), updated every
// 2 average RTTs, which both drains Early-Start queues and absorbs
// transient inconsistency (e.g. lost pause messages).
//
// Per-packet cost is O(1) amortized (the paper's S3.3/S4.2 design point):
//  - a FlowId -> index hash map replaces the linear list scan;
//  - Algorithm 2 prefix walks (available bandwidth, Early Start budget,
//    committed-rate sums, paused-ahead counts) are served from a
//    dirty-tracked cached prefix array that resumes the exact original
//    left-to-right accumulation from the last clean position, so results
//    are bit-identical to a fresh O(k) walk;
//  - num_sending()/avg_rtt() read incrementally maintained aggregates;
//  - the rate controller goes dormant on idle links (empty flow list,
//    empty queue) and re-enters its exact tick grid on the next packet,
//    so idle ports schedule no periodic events at all.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/criticality.h"
#include "core/pdq_config.h"
#include "net/link_controller.h"
#include "net/node.h"

namespace pdq::core {

class PdqLinkController : public net::LinkController {
 public:
  explicit PdqLinkController(PdqConfig cfg) : cfg_(cfg) {}

  void attach(net::Port& port) override;
  void on_forward(net::Packet& p) override;
  void on_reverse(net::Packet& p) override;
  void on_enqueue() override;
  std::uint64_t flow_scan_ops() const override { return scan_ops_; }
  /// Switch-reset fault: wipes the flow list, prefix cache and
  /// aggregates as if the switch rebooted. Flows re-register from the
  /// headers their next forward packet carries (Algorithm 1), so the
  /// link recovers without sender cooperation.
  void reset_state() override;
  /// Auditor support: every entry with a committed or fresh provisional
  /// rate, i.e. everything avail_bw() counts against capacity.
  void granted_flows(std::vector<net::GrantInfo>& out) const override;

  /// Per-flow state for link `e` (paper S3.3.1), kept sorted by
  /// criticality.
  struct FlowEntry {
    net::FlowId flow = net::kInvalidFlow;
    double rate_bps = 0.0;                     // R_i (committed on reverse)
    net::NodeId pause_by = net::kInvalidNode;  // P_i
    sim::Time deadline = sim::kTimeInfinity;   // D_i (absolute)
    sim::Time expected_tx = 0;                 // T_i
    sim::Time rtt = 0;                         // RTT_i
    sim::Time last_seen = 0;
    /// Rate provisionally granted on the forward path. Counted by
    /// avail_bw() until the reverse-path commit lands, so that two flows
    /// racing through their first RTT cannot both be granted the full
    /// link (the committed R_i alone is half an RTT stale).
    double granted_bps = 0.0;
    sim::Time granted_at = -1;

    Criticality criticality() const { return {deadline, expected_tx, flow}; }
    bool sending() const { return rate_bps > 0.0; }
  };

  const std::vector<FlowEntry>& flow_list() const { return list_; }
  double capacity_bps() const { return capacity_bps_; }
  int num_sending() const { return num_sending_; }
  std::size_t peak_list_size() const { return peak_list_size_; }

  /// Algorithm 2. Exposed for unit tests. Served from the prefix cache
  /// (hence non-const); bit-identical to the naive O(k) walk.
  double avail_bw(std::size_t index);

  /// Exact left-to-right sum of committed rates R_i over the whole list
  /// (the rate the RCP fallback divides). Exposed for the prefix-cache
  /// property test.
  double committed_rate_sum();

 private:
  /// prefix_[i] summarizes entries [0, i): the Algorithm-2 accumulators
  /// plus a validity bound for time-dependent grant windows.
  struct PrefixEntry {
    double avail_used = 0.0;     // A: sum of counted effective rates
    double early_start_x = 0.0;  // X: Early Start budget consumed
    double committed = 0.0;      // sum of committed R_i
    std::int32_t paused_here = 0;  // entries with P_i == this switch
    /// The cached values above hold for any now() < valid_until: the
    /// earliest counted provisional-grant expiry (granted_at + 2*RTT).
    sim::Time valid_until = sim::kTimeInfinity;
  };

  int find(net::FlowId f) const;
  void remove(net::FlowId f);
  /// Re-sorts entry `i` after its criticality fields changed; returns its
  /// new index.
  std::size_t resort(std::size_t i);
  std::size_t list_limit() const;
  void rate_controller_tick();
  void schedule_tick(sim::Time interval);
  /// Re-arms the dormant rate controller on the next grid point.
  void wake_rate_controller();
  double rcp_fallback_rate();
  sim::Time avg_rtt() const;
  net::NodeId my_id() const;
  sim::Time now() const;

  // --- prefix cache plumbing ---
  /// Invalidate cached prefixes that include entry `i`.
  void touch(std::size_t i) {
    if (prefix_clean_ > i) prefix_clean_ = i;
  }
  /// Aggregate bookkeeping when an entry leaves the list.
  void retire(const FlowEntry& e);
  /// Writes `rate` into `e`, maintaining the num_sending aggregate.
  void set_rate(FlowEntry& e, double rate);
  /// Writes `rtt` into `e`, maintaining the avg_rtt aggregates.
  void set_rtt(FlowEntry& e, sim::Time rtt);
  /// Rebuilds index_ for positions [from, list_.size()).
  void reindex_from(std::size_t from);
  /// Ensures prefix_[0..j] is valid at now(); returns prefix_[j].
  const PrefixEntry& ensure_prefix(std::size_t j);

  PdqConfig cfg_;
  std::vector<FlowEntry> list_;
  double capacity_bps_ = 0.0;  // C, set by the rate controller
  double r_pdq_bps_ = 0.0;     // configured PDQ share of the link
  net::NodeId self_ = net::kInvalidNode;  // cached my_id()

  /// FlowId -> index into list_, kept exact across insert/evict/resort.
  std::unordered_map<net::FlowId, std::uint32_t> index_;
  /// Incremental aggregates (exact integer bookkeeping).
  int num_sending_ = 0;
  sim::Time rtt_sum_ = 0;
  int rtt_count_ = 0;

  /// Dirty-tracked cached prefix array over list_; prefix_[0..prefix_clean_]
  /// is trustworthy modulo per-position valid_until.
  std::vector<PrefixEntry> prefix_;
  std::size_t prefix_clean_ = 0;

  /// Flow-entry visits in hot-path operations (map probes, prefix
  /// recompute steps, resort shifts) — the fig13 flowlist_scan_ops
  /// counter. Mutable: find() is conceptually const.
  mutable std::uint64_t scan_ops_ = 0;

  // Rate-controller dormancy: while the link is idle the periodic tick is
  // suspended; the virtual tick grid (anchor + n * interval) is re-entered
  // exactly on wake, so dormancy is invisible to the simulation.
  bool tick_dormant_ = false;
  sim::Time dormant_anchor_ = 0;
  sim::Time dormant_interval_ = 0;
  /// Seq reserved at dormancy entry — the exact tie-break position the
  /// always-on engine's tick at anchor+interval would occupy (it would
  /// have been scheduled by the tick that went dormant).
  std::uint64_t dormant_seq_ = 0;

  // Dampening state: the last time a non-sending flow was (provisionally)
  // accepted, and which flow it was.
  sim::Time last_unpause_time_ = -1;
  net::FlowId last_unpaused_flow_ = net::kInvalidFlow;

  // RCP-fallback bookkeeping: overflow flows seen this control interval.
  std::unordered_set<net::FlowId> overflow_flows_;
  std::size_t overflow_count_estimate_ = 0;

  std::size_t peak_list_size_ = 0;
};

/// Installs PDQ controllers on every output port of every node.
void install_pdq(net::Topology& topo, const PdqConfig& cfg);

}  // namespace pdq::core
