// Tunables for PDQ, with the paper's defaults.
//
// The four variants evaluated in the paper map to:
//   PDQ(Basic)  : early_start=false, early_termination=false,
//                 suppressed_probing=false
//   PDQ(ES)     : early_start=true
//   PDQ(ES+ET)  : + early_termination=true
//   PDQ(Full)   : + suppressed_probing=true
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace pdq::core {

/// How the sender advertises flow criticality (S5.6 resilience study).
enum class CriticalityMode : std::uint8_t {
  kExact,       // true remaining size (and deadline, if any)
  kRandom,      // random fixed criticality chosen at flow start
  kEstimation,  // criticality from bytes already sent, 50 KB buckets
};

struct PdqConfig {
  // --- switch-side ---
  bool early_start = true;
  /// The paper says any K in [1,2] is reasonable and picks 2. Our switch
  /// grants every Early-Start-exempt flow its full requested rate (rather
  /// than a share), so the admitted burst per switchover is larger than
  /// the authors'; K=1 is the equivalent operating point and measurably
  /// better on short-flow-heavy workloads (see bench/ablation_pdq).
  double early_start_K = 1.0;
  bool suppressed_probing = true;
  double probing_X = 0.2;  // I_H = max(I_H, X * flow_index)
  /// Dampening window: after accepting a non-sending flow, further paused
  /// flows are not unpaused for this long.
  sim::Time dampening = 200 * sim::kMicrosecond;
  /// Fraction of the link rate given to PDQ traffic (r_PDQ).
  double r_pdq_fraction = 1.0;
  /// Hard cap M on per-link flow state; overflow flows fall back to an
  /// RCP-style fair share of leftover bandwidth (S3.3.1).
  int max_flows_M = 1 << 14;
  /// Rate controller period, in (average) RTTs.
  double rc_interval_rtts = 2.0;
  /// RTT assumed before any flow reports a measurement.
  sim::Time default_rtt = 200 * sim::kMicrosecond;
  /// Grants below this are treated as pauses. Accepting a sliver of
  /// bandwidth would let a flow sit "sending" at a microscopic rate,
  /// starving its own feedback loop.
  double min_grant_bps = 1e6;
  /// A *paused* flow is only unpaused when granted at least this fraction
  /// of the rate it requested. Transient slack from rate-controller
  /// oscillation must not flip-flop paused flows into brief trickle
  /// sends — that would defeat criticality-ordered switchover.
  double unpause_fraction = 0.5;
  /// Entries not refreshed for this long are garbage collected; protects
  /// against lost TERM packets.
  sim::Time gc_timeout = 100 * sim::kMillisecond;

  // --- sender-side ---
  bool early_termination = true;
  CriticalityMode criticality = CriticalityMode::kExact;
  std::int64_t estimation_bucket_bytes = 50'000;
  /// Aging (S7, Fig 12): advertised T is divided by 2^(alpha * wait/unit).
  /// 0 disables aging.
  double aging_alpha = 0.0;
  sim::Time aging_unit = 100 * sim::kMillisecond;
  /// Maximal sending rate; 0 means the sender NIC rate.
  double rmax_bps = 0.0;

  static PdqConfig basic() {
    PdqConfig c;
    c.early_start = false;
    c.early_termination = false;
    c.suppressed_probing = false;
    return c;
  }
  static PdqConfig es() {
    PdqConfig c = basic();
    c.early_start = true;
    return c;
  }
  static PdqConfig es_et() {
    PdqConfig c = es();
    c.early_termination = true;
    return c;
  }
  static PdqConfig full() { return PdqConfig{}; }
};

}  // namespace pdq::core
