#include "core/pdq_agent.h"

#include <algorithm>
#include <cmath>

namespace pdq::core {

namespace {
constexpr sim::Time kMinTick = 50 * sim::kMicrosecond;
}  // namespace

PdqSender::PdqSender(net::AgentContext ctx, PdqConfig cfg)
    : net::PacedSender(std::move(ctx)), cfg_(cfg) {
  rmax_ = cfg_.rmax_bps > 0.0 ? cfg_.rmax_bps : nic_rate_bps();
  if (cfg_.criticality == CriticalityMode::kRandom) {
    // A fixed criticality drawn once at flow start; using the transmission
    // time of a uniformly random "size" keeps units consistent.
    const double fake_bytes =
        this->ctx().topo->rng().uniform(1.0, 2.0e6);
    random_criticality_ =
        sim::transmission_time(static_cast<std::int64_t>(fake_bytes), rmax_);
  }
}

sim::Time PdqSender::advertised_tx_time() const {
  switch (cfg_.criticality) {
    case CriticalityMode::kRandom:
      return random_criticality_;
    case CriticalityMode::kEstimation: {
      // Least-attained-service estimate: the more a flow has sent, the
      // larger it probably is. Updated every `estimation_bucket_bytes` so
      // criticality does not flap per packet.
      const std::int64_t sent =
          ctx().spec.size_bytes - remaining_bytes();
      const std::int64_t bucket =
          (sent / cfg_.estimation_bucket_bytes + 1) *
          cfg_.estimation_bucket_bytes;
      return sim::transmission_time(bucket, rmax_);
    }
    case CriticalityMode::kExact:
      break;
  }
  sim::Time t = remaining_override_
                    ? sim::transmission_time(remaining_override_(), rmax_)
                    : expected_tx_time(rmax_);
  if (cfg_.aging_alpha > 0.0 && started()) {
    const double waited = static_cast<double>(
                              ctx().topo->sim().now() - ctx().spec.start_time) /
                          static_cast<double>(cfg_.aging_unit);
    const double factor = std::pow(2.0, cfg_.aging_alpha * waited);
    t = static_cast<sim::Time>(static_cast<double>(t) / factor);
  }
  return t;
}

sim::Time PdqSender::advertised_deadline() const {
  if (cfg_.criticality != CriticalityMode::kExact) return sim::kTimeInfinity;
  return ctx().spec.absolute_deadline();
}

void PdqSender::on_start() { tick(); }

void PdqSender::decorate(net::Packet& p) {
  p.size_bytes += net::kSchedulingHeaderBytes;
  auto& h = p.pdq;
  h.rate_bps = rmax_;  // R_H is always the maximal sending rate
  h.pause_by = paused_by_;
  h.deadline = advertised_deadline();
  h.expected_tx = advertised_tx_time();
  h.rtt = rtt_estimate();
  h.inter_probe_rtts = 0.0;  // switches raise this via Suppressed Probing
}

void PdqSender::on_reverse(const net::PacketPtr& p) {
  got_feedback_ = true;
  const auto& h = p->pdq;
  paused_by_ = h.pause_by;
  if (h.inter_probe_rtts > 0.0) inter_probe_rtts_ = h.inter_probe_rtts;

  if (check_early_termination()) return;

  if (is_paused() || h.rate_bps <= 0.0) {
    set_rate(0.0);
    // Probe at the instructed interval (at least one RTT).
    const double gap_rtts = std::max(1.0, inter_probe_rtts_);
    next_probe_at_ =
        now() + static_cast<sim::Time>(
                    gap_rtts * static_cast<double>(rtt_estimate()));
  } else {
    set_rate(std::min(h.rate_bps, rmax_));
  }
}

bool PdqSender::check_early_termination() {
  if (!cfg_.early_termination || finished()) return false;
  const sim::Time deadline = ctx().spec.absolute_deadline();
  if (deadline == sim::kTimeInfinity) return false;
  const sim::Time t = now();
  const bool past = t > deadline;
  const bool cannot_finish = t + expected_tx_time(rmax_) > deadline;
  const bool paused_too_late =
      (is_paused() || rate_bps() <= 0.0) && t + rtt_estimate() > deadline;
  if (past || cannot_finish || paused_too_late) {
    complete(net::FlowOutcome::kTerminated);
    return true;
  }
  return false;
}

void PdqSender::send_probe() {
  send_control(net::PacketType::kProbe);
}

void PdqSender::tick() {
  if (finished()) return;

  if (check_early_termination()) return;

  if (got_feedback_ && rate_bps() <= 0.0 && now() >= next_probe_at_) {
    send_probe();
    const double gap_rtts = std::max(1.0, inter_probe_rtts_);
    next_probe_at_ =
        now() + static_cast<sim::Time>(
                    gap_rtts * static_cast<double>(rtt_estimate()));
  }

  const sim::Time interval = std::max(rtt_estimate() / 2, kMinTick);
  tick_pending_ = true;
  tick_event_ = sim().schedule_in(interval, [this] {
    tick_pending_ = false;
    tick();
  });
}

void PdqSender::quiesce() {
  net::PacedSender::quiesce();
  if (tick_pending_) {
    sim().cancel(tick_event_);
    tick_pending_ = false;
  }
}

PdqReceiver::PdqReceiver(net::AgentContext ctx, double receive_rate_bps)
    : net::EchoReceiver(std::move(ctx)),
      receive_rate_bps_(receive_rate_bps > 0.0
                            ? receive_rate_bps
                            : ctx_.local->nic_rate_bps()) {}

void PdqReceiver::decorate_reply(net::Packet& reply, const net::Packet&) {
  // The PDQ receiver prevents sender overruns by capping the granted rate
  // at what it can process and receive.
  reply.pdq.rate_bps = std::min(reply.pdq.rate_bps, receive_rate_bps_);
}

}  // namespace pdq::core
