// The shared flow comparator (paper S3.3): flows are ordered by
//   1. earlier absolute deadline        (EDF — deadline flows first)
//   2. smaller expected transmission time (SJF tie-break)
//   3. smaller flow id                  (final tie-break)
// Deadline-unconstrained flows carry deadline = infinity, so EDF naturally
// prioritizes all deadline flows over no-deadline flows.
#pragma once

#include <tuple>

#include "net/types.h"
#include "sim/time.h"

namespace pdq::core {

struct Criticality {
  sim::Time deadline = sim::kTimeInfinity;  // absolute
  sim::Time expected_tx = 0;                // T
  net::FlowId flow = net::kInvalidFlow;

  friend bool operator<(const Criticality& a, const Criticality& b) {
    return std::tie(a.deadline, a.expected_tx, a.flow) <
           std::tie(b.deadline, b.expected_tx, b.flow);
  }
  friend bool operator==(const Criticality& a, const Criticality& b) {
    return a.deadline == b.deadline && a.expected_tx == b.expected_tx &&
           a.flow == b.flow;
  }
};

/// true when a is strictly more critical than b.
inline bool more_critical(const Criticality& a, const Criticality& b) {
  return a < b;
}

}  // namespace pdq::core
