// Flow-level simulator (paper S5.5): computes equilibrium flow rates on a
// 1 ms timescale instead of simulating packets, so protocols can be
// compared on topologies with thousands of servers.
//
// Protocol models:
//  - PDQ: the centralized algorithm of S3 — flows sorted by criticality
//    greedily take min(residual along path, NIC rate).
//  - RCP: max-min fair sharing (progressive filling).
//  - D3: first-come first-reserved — deadline demand granted in arrival
//    order, leftover distributed max-min fair.
// Protocol inefficiencies the paper keeps: 2-RTT flow initialization
// latency and ~3% header overhead. Packet dynamics (loss, timeouts) are
// not modelled.
//
// Two driving modes share the same per-step arithmetic:
//  - run(specs): the historical one-shot column evaluator.
//  - add_flow / advance / drain_completions: the steppable API used by
//    the harness's hybrid packet/fluid backend (docs/architecture.md,
//    "Hybrid packet/fluid backend") — flows enter and leave while the
//    packet simulation is running, and finished flows are compacted away
//    so memory tracks the *active* population.
// Link capacities and cached ECMP paths are refreshed whenever
// Topology::version() changes (add_duplex_link / set_link_state), so
// PR-5 failure timelines are honored; a live flow whose path disappears
// is terminated.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/flow.h"
#include "net/topology.h"
#include "sim/time.h"

namespace pdq::flowsim {

enum class Model { kPdq, kRcp, kD3 };

struct Options {
  Model model = Model::kPdq;
  sim::Time step = sim::kMillisecond;
  /// TCP/IP + scheduling header overhead: effective capacity factor.
  double goodput_factor = 0.97;
  /// Two RTTs before a flow's first payload bit (SYN-ACK + first DATA-ACK).
  sim::Time init_latency = 400 * sim::kMicrosecond;
  /// PDQ Early Termination / D3 quenching for deadline flows.
  bool early_termination = true;
  sim::Time horizon = 60 * sim::kSecond;
  /// Fig 12 flow aging: advertised criticality divided by 2^(alpha*wait).
  double aging_alpha = 0.0;
  sim::Time aging_unit = 100 * sim::kMillisecond;
  /// Grants below this pause the flow (as in the packet-level PDQ).
  double min_grant_bps = 1e6;
};

struct FlowSimResult {
  std::vector<net::FlowResult> flows;
  sim::Time end_time = 0;

  double mean_fct_ms() const;
  double max_fct_ms() const;
  /// Nearest-rank p99 of completed-flow FCTs (stats::nearest_rank — the
  /// same quantile definition as metrics::windowed_p99_fct_ms and the
  /// streaming sketch). 0 when nothing completed.
  double p99_fct_ms() const;
  double application_throughput() const;
  std::size_t completed() const;
};

class FlowLevelSimulator {
 public:
  /// `topo` provides link capacities and ECMP paths; no packet machinery
  /// is used.
  FlowLevelSimulator(net::Topology& topo, Options opts);
  // Out-of-line: flows_ holds the private Active type, incomplete here.
  ~FlowLevelSimulator();

  FlowSimResult run(const std::vector<net::FlowSpec>& specs);

  // --- steppable API (hybrid backend) -------------------------------

  /// A flow that finished inside the fluid model. `result.bytes_acked`
  /// counts only bytes delivered *by the fluid segment* (the harness
  /// adds its packet-segment bytes back); `last_rate_bps` is the flow's
  /// equilibrium rate at the finishing step — the seed for the packet
  /// tail segment.
  struct Completion {
    net::FlowResult result;
    double last_rate_bps = 0.0;
  };

  /// Admit a flow. `remaining_bits < 0` means the full `spec.size_bytes`.
  /// `rate_hint_bps > 0` marks the flow as already established (it went
  /// through packet-level admission): the 2-RTT init latency is skipped
  /// and the hint is its rate until the next grid allocation. A flow
  /// with no path (disconnected src/dst) is terminated immediately.
  void add_flow(const net::FlowSpec& spec, double remaining_bits = -1.0,
                double rate_hint_bps = 0.0);

  /// Advance the fluid clock to `until` (absolute time), running every
  /// whole grid step in (now, until]. Finished flows move to the
  /// completion queue and are compacted out of the active set.
  void advance(sim::Time until);

  /// Flows finished since the last drain, in finishing order.
  std::vector<Completion> drain_completions();

  std::size_t active_flows() const { return open_; }
  sim::Time fluid_now() const { return now_; }

  /// Snapshot of live (not yet finished) flows — the harness folds these
  /// as still-pending at the run horizon.
  struct ActiveView {
    net::FlowId id = net::kInvalidFlow;
    double remaining_bits = 0;
    double rate_bps = 0;
  };
  std::vector<ActiveView> active_snapshot() const;

  /// One allocation round of the configured model at time `at` against a
  /// fresh copy of the link capacities, with every spec treated as
  /// active (arrival gates ignored). Returns rates in spec order —
  /// the unit-test surface for allocate_pdq/allocate_maxmin/allocate_d3.
  std::vector<double> equilibrium_rates(const std::vector<net::FlowSpec>& specs,
                                        sim::Time at = 0);

 private:
  struct Active;
  void allocate_pdq(std::vector<Active*>& active, sim::Time now,
                    std::vector<double>& residual);
  void allocate_maxmin(std::vector<Active*>& active,
                       std::vector<double>& residual);
  void allocate_d3(std::vector<Active*>& active, sim::Time now,
                   std::vector<double>& residual);
  void allocate(std::vector<Active*>& active, sim::Time now,
                std::vector<double>& residual);
  /// Rebuild capacities + directed-link map and re-resolve every live
  /// flow's path when Topology::version() moved (set_link_state /
  /// add_duplex_link). Live flows left with no path are terminated.
  void ensure_network();
  void rebuild_network();
  /// Resolve `a.links` from the topology's current ECMP paths; false if
  /// src/dst are disconnected.
  bool resolve_links(Active& a);
  /// One grid step starting at `now` (arrival gate + quenching + the
  /// completion-by-completion inner loop).
  void step_once(sim::Time now, std::vector<double>& residual);
  /// Move finished flows to completions_ (steppable mode only; run()
  /// keeps them in place for spec-order result collection).
  void compact_done();

  net::Topology& topo_;
  Options opts_;
  std::vector<double> capacity_;  // per directed link, bps (after overhead)
  std::unordered_map<std::uint64_t, std::size_t> link_of_;  // directed key
  std::uint64_t topo_version_ = 0;

  std::vector<Active> flows_;
  std::vector<Completion> completions_;
  std::size_t open_ = 0;   // flows not yet done
  sim::Time now_ = 0;      // fluid clock: next grid step start
  bool retain_all_ = false;  // run(): keep finished flows in flows_
};

}  // namespace pdq::flowsim
