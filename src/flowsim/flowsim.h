// Flow-level simulator (paper S5.5): computes equilibrium flow rates on a
// 1 ms timescale instead of simulating packets, so protocols can be
// compared on topologies with thousands of servers.
//
// Protocol models:
//  - PDQ: the centralized algorithm of S3 — flows sorted by criticality
//    greedily take min(residual along path, NIC rate).
//  - RCP: max-min fair sharing (progressive filling).
//  - D3: first-come first-reserved — deadline demand granted in arrival
//    order, leftover distributed max-min fair.
// Protocol inefficiencies the paper keeps: 2-RTT flow initialization
// latency and ~3% header overhead. Packet dynamics (loss, timeouts) are
// not modelled.
#pragma once

#include <vector>

#include "net/flow.h"
#include "net/topology.h"
#include "sim/time.h"

namespace pdq::flowsim {

enum class Model { kPdq, kRcp, kD3 };

struct Options {
  Model model = Model::kPdq;
  sim::Time step = sim::kMillisecond;
  /// TCP/IP + scheduling header overhead: effective capacity factor.
  double goodput_factor = 0.97;
  /// Two RTTs before a flow's first payload bit (SYN-ACK + first DATA-ACK).
  sim::Time init_latency = 400 * sim::kMicrosecond;
  /// PDQ Early Termination / D3 quenching for deadline flows.
  bool early_termination = true;
  sim::Time horizon = 60 * sim::kSecond;
  /// Fig 12 flow aging: advertised criticality divided by 2^(alpha*wait).
  double aging_alpha = 0.0;
  sim::Time aging_unit = 100 * sim::kMillisecond;
  /// Grants below this pause the flow (as in the packet-level PDQ).
  double min_grant_bps = 1e6;
};

struct FlowSimResult {
  std::vector<net::FlowResult> flows;
  sim::Time end_time = 0;

  double mean_fct_ms() const;
  double max_fct_ms() const;
  /// Nearest-rank p99 of completed-flow FCTs (stats::nearest_rank — the
  /// same quantile definition as metrics::windowed_p99_fct_ms and the
  /// streaming sketch). 0 when nothing completed.
  double p99_fct_ms() const;
  double application_throughput() const;
  std::size_t completed() const;
};

class FlowLevelSimulator {
 public:
  /// `topo` provides link capacities and ECMP paths; no packet machinery
  /// is used.
  FlowLevelSimulator(net::Topology& topo, Options opts);

  FlowSimResult run(const std::vector<net::FlowSpec>& specs);

 private:
  struct Active;
  void allocate_pdq(std::vector<Active*>& active, sim::Time now,
                    std::vector<double>& residual);
  void allocate_maxmin(std::vector<Active*>& active,
                       std::vector<double>& residual);
  void allocate_d3(std::vector<Active*>& active, sim::Time now,
                   std::vector<double>& residual);

  net::Topology& topo_;
  Options opts_;
  std::vector<double> capacity_;  // per directed link, bps (after overhead)
};

}  // namespace pdq::flowsim
