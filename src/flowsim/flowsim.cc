#include "flowsim/flowsim.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <tuple>

#include "stats/streaming.h"

namespace pdq::flowsim {

namespace {
std::uint64_t dir_key(net::NodeId a, net::NodeId b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}
}  // namespace

struct FlowLevelSimulator::Active {
  net::FlowSpec spec;
  double total_bits = 0;
  double remaining_bits = 0;
  std::vector<std::size_t> links;  // directed link indices along the path
  double nic_bps = 0;
  double rate_bps = 0;
  /// Per-flow arrival-to-first-bit latency: Options::init_latency
  /// normally, 0 for flows handed off already-established.
  sim::Time init_latency = 0;
  bool done = false;
  bool terminated = false;
  sim::Time finish = sim::kTimeInfinity;

  sim::Time deadline_abs() const { return spec.absolute_deadline(); }
};

double FlowSimResult::mean_fct_ms() const {
  double s = 0;
  std::size_t n = 0;
  for (const auto& f : flows) {
    if (f.outcome == net::FlowOutcome::kCompleted) {
      s += sim::to_millis(f.completion_time());
      ++n;
    }
  }
  return n ? s / static_cast<double>(n) : 0.0;
}

double FlowSimResult::max_fct_ms() const {
  double m = 0;
  for (const auto& f : flows)
    if (f.outcome == net::FlowOutcome::kCompleted)
      m = std::max(m, sim::to_millis(f.completion_time()));
  return m;
}

double FlowSimResult::p99_fct_ms() const {
  std::vector<double> fcts;
  for (const auto& f : flows)
    if (f.outcome == net::FlowOutcome::kCompleted)
      fcts.push_back(sim::to_millis(f.completion_time()));
  std::sort(fcts.begin(), fcts.end());
  return stats::nearest_rank(fcts, 0.99);
}

double FlowSimResult::application_throughput() const {
  std::size_t dl = 0;
  std::size_t met = 0;
  for (const auto& f : flows) {
    if (!f.spec.has_deadline()) continue;
    ++dl;
    if (f.deadline_met()) ++met;
  }
  return dl == 0 ? 100.0
                 : 100.0 * static_cast<double>(met) / static_cast<double>(dl);
}

std::size_t FlowSimResult::completed() const {
  std::size_t n = 0;
  for (const auto& f : flows)
    if (f.outcome == net::FlowOutcome::kCompleted) ++n;
  return n;
}

FlowLevelSimulator::FlowLevelSimulator(net::Topology& topo, Options opts)
    : topo_(topo), opts_(opts) {
  rebuild_network();
}

FlowLevelSimulator::~FlowLevelSimulator() = default;

void FlowLevelSimulator::rebuild_network() {
  topo_version_ = topo_.version();
  capacity_.clear();
  capacity_.reserve(topo_.links().size());
  link_of_.clear();
  for (std::size_t i = 0; i < topo_.links().size(); ++i) {
    const auto& l = topo_.links()[i];
    link_of_[dir_key(l->from, l->to)] = i;
    // Administratively-down links carry nothing in the fluid model.
    capacity_.push_back(l->up ? l->rate_bps * opts_.goodput_factor : 0.0);
  }
}

void FlowLevelSimulator::ensure_network() {
  if (topo_version_ == topo_.version()) return;
  rebuild_network();
  // Paths were resolved against the old topology: re-resolve every live
  // flow. ECMP re-hashes around failures; a flow whose endpoints are now
  // disconnected is terminated where it stands.
  for (auto& f : flows_) {
    if (f.done) continue;
    if (!resolve_links(f)) {
      f.done = true;
      f.terminated = true;
      f.finish = std::max(now_, f.spec.start_time);
      --open_;
    }
  }
}

bool FlowLevelSimulator::resolve_links(Active& a) {
  a.links.clear();
  if (topo_.shortest_paths(a.spec.src, a.spec.dst).empty()) return false;
  const auto path = topo_.ecmp_path(a.spec.id, a.spec.src, a.spec.dst);
  for (std::size_t h = 0; h + 1 < path.size(); ++h)
    a.links.push_back(link_of_.at(dir_key(path[h], path[h + 1])));
  return true;
}

void FlowLevelSimulator::add_flow(const net::FlowSpec& spec,
                                  double remaining_bits, double rate_hint_bps) {
  ensure_network();
  Active a;
  a.spec = spec;
  a.total_bits = remaining_bits >= 0
                     ? remaining_bits
                     : static_cast<double>(spec.size_bytes) * 8.0;
  a.remaining_bits = a.total_bits;
  a.nic_bps = topo_.host(spec.src).nic_rate_bps() * opts_.goodput_factor;
  if (rate_hint_bps > 0.0) {
    // Handed off mid-flow: already past admission, no 2-RTT ramp.
    a.init_latency = 0;
    a.rate_bps = std::min(rate_hint_bps, a.nic_bps);
  } else {
    a.init_latency = opts_.init_latency;
  }
  if (!resolve_links(a)) {
    a.done = true;
    a.terminated = true;
    a.finish = std::max(now_, spec.start_time);
    flows_.push_back(std::move(a));
    return;
  }
  ++open_;
  flows_.push_back(std::move(a));
}

void FlowLevelSimulator::step_once(sim::Time now,
                                   std::vector<double>& residual) {
  std::vector<Active*> active;
  for (auto& f : flows_) {
    if (f.done) continue;
    // Early termination / quenching for deadline flows — gated on the
    // flow's arrival: a not-yet-started flow has not entered the
    // network, so it must not be terminated with finish < start_time.
    if (opts_.early_termination && f.spec.has_deadline() &&
        f.spec.start_time <= now) {
      const sim::Time eta =
          now + sim::from_seconds(f.remaining_bits / f.nic_bps);
      if (now > f.deadline_abs() || eta > f.deadline_abs()) {
        f.done = true;
        f.terminated = true;
        f.finish = now;
        --open_;
        continue;
      }
    }
    if (f.spec.start_time + f.init_latency <= now) active.push_back(&f);
  }
  if (active.empty()) return;

  sim::Time t = now;
  const sim::Time step_end = now + opts_.step;
  while (t < step_end && !active.empty()) {
    residual = capacity_;
    allocate(active, t, residual);

    // Advance to the earliest completion inside this step, or to the
    // step boundary.
    sim::Time dt = step_end - t;
    for (Active* f : active) {
      if (f->rate_bps > 0) {
        dt = std::min(dt, sim::from_seconds(f->remaining_bits / f->rate_bps));
      }
    }
    dt = std::max<sim::Time>(dt, 1);
    const double dt_s = sim::to_seconds(dt);

    std::vector<Active*> still;
    for (Active* f : active) {
      if (f->rate_bps <= 0) {
        still.push_back(f);
        continue;
      }
      const double sent = f->rate_bps * dt_s;
      if (sent >= f->remaining_bits - 1e-6) {
        f->finish = t + dt;
        f->remaining_bits = 0;
        f->done = true;
        --open_;
      } else {
        f->remaining_bits -= sent;
        still.push_back(f);
      }
    }
    active.swap(still);
    t += dt;
  }
}

void FlowLevelSimulator::allocate(std::vector<Active*>& active, sim::Time now,
                                  std::vector<double>& residual) {
  switch (opts_.model) {
    case Model::kPdq:
      allocate_pdq(active, now, residual);
      break;
    case Model::kRcp:
      allocate_maxmin(active, residual);
      break;
    case Model::kD3:
      allocate_d3(active, now, residual);
      break;
  }
}

void FlowLevelSimulator::compact_done() {
  if (retain_all_) return;
  std::size_t w = 0;
  for (std::size_t r = 0; r < flows_.size(); ++r) {
    Active& f = flows_[r];
    if (f.done) {
      Completion c;
      c.result.spec = f.spec;
      c.last_rate_bps = f.rate_bps;
      if (f.terminated) {
        c.result.outcome = net::FlowOutcome::kTerminated;
        c.result.finish_time = f.finish;
        c.result.bytes_acked = static_cast<std::int64_t>(
            (f.total_bits - f.remaining_bits) / 8.0);
      } else {
        c.result.outcome = net::FlowOutcome::kCompleted;
        c.result.finish_time = f.finish;
        c.result.bytes_acked =
            static_cast<std::int64_t>(f.total_bits / 8.0 + 0.5);
      }
      completions_.push_back(std::move(c));
    } else {
      if (w != r) flows_[w] = std::move(f);
      ++w;
    }
  }
  flows_.resize(w);
}

void FlowLevelSimulator::advance(sim::Time until) {
  ensure_network();
  std::vector<double> residual(capacity_.size());
  while (now_ < until && now_ < opts_.horizon) {
    if (open_ == 0) {
      // Nothing can make progress: fast-forward the fluid clock.
      now_ = std::min(until, opts_.horizon);
      break;
    }
    step_once(now_, residual);
    now_ += opts_.step;
  }
  compact_done();
}

std::vector<FlowLevelSimulator::Completion>
FlowLevelSimulator::drain_completions() {
  std::vector<Completion> out;
  out.swap(completions_);
  return out;
}

std::vector<FlowLevelSimulator::ActiveView>
FlowLevelSimulator::active_snapshot() const {
  std::vector<ActiveView> out;
  out.reserve(open_);
  for (const auto& f : flows_) {
    if (f.done) continue;
    out.push_back({f.spec.id, f.remaining_bits, f.rate_bps});
  }
  return out;
}

std::vector<double> FlowLevelSimulator::equilibrium_rates(
    const std::vector<net::FlowSpec>& specs, sim::Time at) {
  ensure_network();
  std::vector<Active> scratch;
  scratch.reserve(specs.size());
  for (const auto& s : specs) {
    Active a;
    a.spec = s;
    a.total_bits = static_cast<double>(s.size_bytes) * 8.0;
    a.remaining_bits = a.total_bits;
    a.nic_bps = topo_.host(s.src).nic_rate_bps() * opts_.goodput_factor;
    resolve_links(a);  // disconnected -> no links -> NIC-limited
    scratch.push_back(std::move(a));
  }
  std::vector<Active*> active;
  for (auto& a : scratch) active.push_back(&a);
  std::vector<double> residual = capacity_;
  allocate(active, at, residual);
  std::vector<double> out;
  out.reserve(scratch.size());
  for (const auto& a : scratch) out.push_back(a.rate_bps);
  return out;
}

FlowSimResult FlowLevelSimulator::run(const std::vector<net::FlowSpec>& specs) {
  // Each run() is a fresh one-shot evaluation: reset any steppable state
  // and keep finished flows in place so results come out in spec order.
  flows_.clear();
  completions_.clear();
  open_ = 0;
  now_ = 0;
  retain_all_ = true;
  ensure_network();
  flows_.reserve(specs.size());
  for (const auto& s : specs) add_flow(s);

  std::vector<double> residual(capacity_.size());

  // Arrivals, terminations and rate recomputation happen on the 1 ms
  // grid; *within* a step the loop advances completion-by-completion so
  // that capacity freed by a finishing flow is immediately reusable
  // (otherwise serialized schedules like PDQ's would lose the tail of
  // every step).
  for (now_ = 0; now_ < opts_.horizon && open_ > 0; now_ += opts_.step)
    step_once(now_, residual);

  FlowSimResult out;
  sim::Time end = 0;
  for (const auto& f : flows_) {
    net::FlowResult r;
    r.spec = f.spec;
    if (f.done && !f.terminated) {
      r.outcome = net::FlowOutcome::kCompleted;
      r.finish_time = f.finish;
      r.bytes_acked = f.spec.size_bytes;
      end = std::max(end, f.finish);
    } else if (f.terminated) {
      r.outcome = net::FlowOutcome::kTerminated;
      r.finish_time = f.finish;
    }
    out.flows.push_back(r);
  }
  out.end_time = end;
  flows_.clear();
  open_ = 0;
  retain_all_ = false;
  return out;
}

void FlowLevelSimulator::allocate_pdq(std::vector<Active*>& active,
                                      sim::Time now,
                                      std::vector<double>& residual) {
  // Criticality order: (deadline, expected transmission time, id), with
  // optional aging on the no-deadline T term (Fig 12).
  auto criticality = [&](const Active* f) {
    double t_term = f->remaining_bits / f->nic_bps;
    if (opts_.aging_alpha > 0.0) {
      const double waited =
          static_cast<double>(now - f->spec.start_time) /
          static_cast<double>(opts_.aging_unit);
      t_term /= std::pow(2.0, opts_.aging_alpha * waited);
    }
    return std::tuple<sim::Time, double, net::FlowId>(f->deadline_abs(),
                                                      t_term, f->spec.id);
  };
  std::sort(active.begin(), active.end(),
            [&](const Active* a, const Active* b) {
              return criticality(a) < criticality(b);
            });
  for (Active* f : active) {
    double r = f->nic_bps;
    for (auto l : f->links) r = std::min(r, residual[l]);
    if (r < opts_.min_grant_bps) r = 0;
    f->rate_bps = r;
    if (r > 0)
      for (auto l : f->links) residual[l] -= r;
  }
}

void FlowLevelSimulator::allocate_maxmin(std::vector<Active*>& active,
                                         std::vector<double>& residual) {
  // Progressive filling. The sender NIC appears as the first path link,
  // so per-host caps fall out naturally.
  std::vector<int> users(residual.size(), 0);
  for (Active* f : active) {
    f->rate_bps = 0;
    for (auto l : f->links) ++users[l];
  }
  std::vector<Active*> unfrozen = active;
  while (!unfrozen.empty()) {
    // Bottleneck link: smallest residual/users among used links.
    double best_share = std::numeric_limits<double>::infinity();
    for (Active* f : unfrozen) {
      for (auto l : f->links) {
        if (users[l] > 0)
          best_share = std::min(best_share, residual[l] / users[l]);
      }
    }
    if (!std::isfinite(best_share)) break;
    std::vector<Active*> still;
    for (Active* f : unfrozen) {
      bool at_bottleneck = false;
      for (auto l : f->links) {
        if (users[l] > 0 && residual[l] / users[l] <= best_share * (1 + 1e-9)) {
          at_bottleneck = true;
          break;
        }
      }
      if (at_bottleneck) {
        f->rate_bps = best_share;
        for (auto l : f->links) {
          residual[l] -= best_share;
          --users[l];
        }
      } else {
        still.push_back(f);
      }
    }
    if (still.size() == unfrozen.size()) break;  // numerical safety
    unfrozen.swap(still);
  }
}

void FlowLevelSimulator::allocate_d3(std::vector<Active*>& active,
                                     sim::Time now,
                                     std::vector<double>& residual) {
  // Pass 1: deadline demand r = remaining/time-to-deadline, granted
  // greedily in arrival order (first-come first-reserved).
  std::sort(active.begin(), active.end(),
            [](const Active* a, const Active* b) {
              return a->spec.start_time != b->spec.start_time
                         ? a->spec.start_time < b->spec.start_time
                         : a->spec.id < b->spec.id;
            });
  for (Active* f : active) {
    f->rate_bps = 0;
    if (!f->spec.has_deadline()) continue;
    const sim::Time left = f->deadline_abs() - now;
    double want = left > 0 ? f->remaining_bits / sim::to_seconds(left)
                           : f->nic_bps;
    want = std::min(want, f->nic_bps);
    double grant = want;
    for (auto l : f->links) grant = std::min(grant, residual[l]);
    grant = std::max(grant, 0.0);
    f->rate_bps = grant;
    for (auto l : f->links) residual[l] -= grant;
  }
  // Pass 2: leftover capacity shared max-min across all flows (additive),
  // each capped by its NIC headroom.
  std::vector<int> users(residual.size(), 0);
  for (Active* f : active)
    for (auto l : f->links) ++users[l];
  std::vector<Active*> unfrozen = active;
  while (!unfrozen.empty()) {
    double best_share = std::numeric_limits<double>::infinity();
    for (Active* f : unfrozen)
      for (auto l : f->links)
        if (users[l] > 0)
          best_share = std::min(best_share, residual[l] / users[l]);
    if (!std::isfinite(best_share) || best_share <= 0) {
      for (Active* f : unfrozen)
        for (auto l : f->links) --users[l];
      break;
    }
    std::vector<Active*> still;
    for (Active* f : unfrozen) {
      const double headroom = f->nic_bps - f->rate_bps;
      bool freeze = headroom <= best_share;
      if (!freeze) {
        for (auto l : f->links) {
          if (users[l] > 0 &&
              residual[l] / users[l] <= best_share * (1 + 1e-9)) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) {
        const double add = std::min(best_share, std::max(headroom, 0.0));
        f->rate_bps += add;
        for (auto l : f->links) {
          residual[l] -= add;
          --users[l];
        }
      } else {
        still.push_back(f);
      }
    }
    if (still.size() == unfrozen.size()) break;
    unfrozen.swap(still);
  }
}

}  // namespace pdq::flowsim
