// RCP (Rate Control Protocol) baseline [10], with the optimization the
// paper applies: switches count the exact number of active flows rather
// than estimating it, which converges to the fair rate much faster and
// avoids drops on large flow influxes.
//
// Each link advertises R = max(0, (C - queue-drain) / N); senders transmit
// at the minimum advertised rate along their path. With no deadlines this
// is exactly the paper's D3-equivalent fair-sharing baseline.
#pragma once

#include <unordered_map>

#include "net/link_controller.h"
#include "net/node.h"
#include "net/paced_sender.h"

namespace pdq::protocols {

struct RcpConfig {
  /// Control interval and queue-drain horizon, in units of the average
  /// RTT (estimated from packet headers).
  double interval_rtts = 2.0;
  sim::Time default_rtt = 200 * sim::kMicrosecond;
  /// Never advertise less than this (keeps flows probing).
  double min_rate_bps = 1e6;
  /// Flow entries idle longer than this are dropped from the exact count.
  sim::Time gc_timeout = 100 * sim::kMillisecond;
};

class RcpLinkController : public net::LinkController {
 public:
  explicit RcpLinkController(RcpConfig cfg) : cfg_(cfg) {}

  void attach(net::Port& port) override;
  void on_forward(net::Packet& p) override;
  void on_reverse(net::Packet& p) override;
  /// on_reverse is a no-op: reverse arrivals can be coalesced (node.cc).
  bool reverse_hook() const override { return false; }

  double fair_rate_bps() const { return fair_rate_bps_; }
  std::size_t flow_count() const { return flows_.size(); }

 private:
  void tick();
  void recompute();

  RcpConfig cfg_;
  double capacity_bps_ = 0.0;
  double fair_rate_bps_ = 0.0;
  std::unordered_map<net::FlowId, sim::Time> flows_;  // id -> last seen
  double rtt_sum_ = 0.0;
  std::int64_t rtt_samples_ = 0;
  sim::Time avg_rtt_ = 0;
};

class RcpSender : public net::PacedSender {
 public:
  RcpSender(net::AgentContext ctx, RcpConfig cfg);

  void quiesce() override;

 protected:
  void on_start() override;
  void decorate(net::Packet& p) override;
  void on_reverse(const net::PacketPtr& p) override;

 private:
  void tick();

  RcpConfig cfg_;
  double rmax_ = 0.0;
  bool got_feedback_ = false;
  sim::EventId tick_event_ = 0;
  bool tick_pending_ = false;
};

void install_rcp(net::Topology& topo, const RcpConfig& cfg);

}  // namespace pdq::protocols
