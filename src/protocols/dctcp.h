// DCTCP (Alizadeh et al., SIGCOMM 2010) on top of the TCP Reno baseline.
//
// Data packets go out ECN-capable (ECT); multi-queue switch ports
// (net/multi_queue.h) set CE when the backlog exceeds the marking
// threshold K; the receiver echoes CE on every cumulative ACK (ECE —
// per-packet ACKs make the echo exact, no delayed-ACK state machine
// needed); the sender maintains the g-weighted EWMA of the marked-byte
// fraction,
//
//     alpha <- (1 - g) * alpha + g * F,   F = marked bytes / acked bytes
//
// folded in once per window of data, and scales its congestion window
// by (1 - alpha/2) when that window saw any mark. Loss handling
// (dupacks, fast retransmit/recovery, RTO) is TcpSender's Reno
// machinery, reused unchanged — DCTCP only changes how *marks* are
// turned into window reductions.
#pragma once

#include "net/multi_queue.h"
#include "protocols/tcp.h"

namespace pdq::protocols {

struct DctcpConfig {
  /// Reno base: timers, loss path, initial window. `tcp.multipath`
  /// selects per-flow ECMP vs per-packet spraying.
  TcpConfig tcp;
  /// Estimator gain g (the paper's recommended 1/16).
  double g = 1.0 / 16.0;
  /// Switch queueing + marking, installed on every switch port by
  /// DctcpStack. The default is canonical DCTCP: one queue per port,
  /// standard marking at K ~ 20 full-size packets (30 KB at 1 Gbps).
  net::MultiQueueConfig mq;

  DctcpConfig() {
    mq.num_queues = 1;
    mq.ecn = net::EcnScheme::kPerQueue;
    mq.ecn_threshold_bytes = 30'000;
  }
};

class DctcpSender : public TcpSender {
 public:
  DctcpSender(net::AgentContext ctx, DctcpConfig cfg);

  void on_packet(const net::PacketPtr& p) override;

  /// Estimator state, exposed for tests.
  double alpha() const { return alpha_; }
  std::int64_t marks_echoed() const { return marks_echoed_; }
  std::int64_t window_cuts() const { return window_cuts_; }

 protected:
  void decorate_data(net::Packet& p) override { p.ecn_capable = true; }

 private:
  void update_estimator(const net::Packet& ack);

  double g_;
  double alpha_ = 0.0;
  std::int64_t acked_bytes_win_ = 0;   // bytes newly acked this window
  std::int64_t marked_bytes_win_ = 0;  // of those, acked by ECE ACKs
  bool ece_seen_ = false;              // any ECE this window
  std::int64_t window_end_ = 0;        // snd_nxt at the last boundary
  std::int64_t marks_echoed_ = 0;      // ECE ACKs seen, lifetime
  std::int64_t window_cuts_ = 0;       // alpha-scaled reductions applied
};

/// TcpReceiver that echoes the CE codepoint as ECE on every ACK.
class DctcpReceiver : public TcpReceiver {
 public:
  using TcpReceiver::TcpReceiver;

 protected:
  void decorate_ack(const net::Packet& data, net::Packet& ack) override {
    ack.ecn_capable = data.ecn_capable;
    ack.ecn_echo = data.ecn_ce;
  }
};

}  // namespace pdq::protocols
