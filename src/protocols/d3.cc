#include "protocols/d3.h"

#include <algorithm>

#include "net/topology.h"

namespace pdq::protocols {

namespace {
}  // namespace

void D3LinkController::attach(net::Port& port) {
  net::LinkController::attach(port);
  capacity_bps_ = port.link().rate_bps;
  fair_share_bps_ = capacity_bps_;
  port.owner().topo().sim().schedule_in(cfg_.default_rtt,
                                        [this] { tick(); });
}

void D3LinkController::on_forward(net::Packet& p) {
  if (p.flow == net::kInvalidFlow) return;
  auto& sim = port_->owner().topo().sim();
  bytes_window_ += p.size_bytes;

  const auto hop = static_cast<std::size_t>(p.d3.alloc_idx);

  if (p.type == net::PacketType::kTerm) {
    // Release this flow's reservation on the way out.
    if (hop < p.d3.prev_alloc.size()) {
      allocated_bps_ = std::max(0.0, allocated_bps_ - p.d3.prev_alloc[hop]);
    }
    ++p.d3.alloc_idx;
    flows_.erase(p.flow);
    return;
  }

  flows_[p.flow].last_seen = sim.now();

  if (!p.d3.is_request) return;

  ++requests_window_;
  demand_window_bps_ += p.d3.desired_rate_bps;

  // Release last round's grant, then allocate greedily in arrival order.
  if (hop < p.d3.prev_alloc.size()) {
    allocated_bps_ = std::max(0.0, allocated_bps_ - p.d3.prev_alloc[hop]);
  }
  const double left = std::max(0.0, capacity_bps_ - allocated_bps_);
  const double want =
      (p.d3.has_deadline ? p.d3.desired_rate_bps : 0.0) + fair_share_bps_;
  // Every flow keeps at least the base rate so its requests keep flowing
  // (as in D3); the base rate may transiently overcommit the link.
  const double grant = std::max(std::min(want, left), cfg_.min_rate_bps);
  allocated_bps_ += grant;
  flows_[p.flow].last_grant = grant;

  p.d3.alloc.push_back(grant);
  ++p.d3.alloc_idx;
}

void D3LinkController::on_reverse(net::Packet& p) { (void)p; }

void D3LinkController::tick() {
  auto& sim = port_->owner().topo().sim();
  const sim::Time interval = cfg_.default_rtt;

  const double y =
      static_cast<double>(bytes_window_) * 8.0 / sim::to_seconds(interval);
  bytes_window_ = 0;
  // Demand is EWMA-smoothed (requests arrive once per *flow* RTT, which
  // does not line up with our tick window); the flow count is exact.
  demand_bps_ = 0.5 * demand_bps_ + 0.5 * demand_window_bps_;
  flow_count_est_ = std::max<double>(1.0, static_cast<double>(flows_.size()));
  demand_window_bps_ = 0.0;
  requests_window_ = 0;

  // Fair share of capacity left after deadline demand, RCP-style: spare
  // headroom scaled by alpha, queue backlog drained with gain beta. The
  // max(0, .) clamp is the paper's fix to the original D3 formula.
  const double q_bits = static_cast<double>(port_->queue().bytes()) * 8.0;
  const double spare = capacity_bps_ - demand_bps_ +
                       cfg_.alpha * (capacity_bps_ - y) -
                       cfg_.beta * q_bits / sim::to_seconds(interval);
  fair_share_bps_ = std::clamp(spare / flow_count_est_, 0.0, capacity_bps_);

  // GC flows that vanished without a TERM (lost packet, quenched sender).
  const sim::Time cutoff = sim.now() - cfg_.gc_timeout;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.last_seen < cutoff) {
      allocated_bps_ = std::max(0.0, allocated_bps_ - it->second.last_grant);
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }

  sim.schedule_in(interval, [this] { tick(); });
}

D3Sender::D3Sender(net::AgentContext ctx, D3Config cfg)
    : net::PacedSender(std::move(ctx)), cfg_(cfg) {
  rmax_ = nic_rate_bps();
}

void D3Sender::on_start() { tick(); }

double D3Sender::desired_rate_bps() {
  if (!ctx().spec.has_deadline()) return 0.0;
  const sim::Time left = ctx().spec.absolute_deadline() - now();
  if (left <= 0) return rmax_;
  return std::min(
      rmax_, static_cast<double>(remaining_bytes()) * 8.0 /
                 sim::to_seconds(left));
}

bool D3Sender::check_quenching() {
  if (!cfg_.quenching || finished() || !ctx().spec.has_deadline())
    return false;
  const sim::Time deadline = ctx().spec.absolute_deadline();
  const bool past = now() > deadline;
  const bool hopeless = now() + expected_tx_time(rmax_) > deadline;
  if (past || hopeless) {
    complete(net::FlowOutcome::kTerminated);
    return true;
  }
  return false;
}

void D3Sender::decorate(net::Packet& p) {
  auto& h = p.d3;
  h.has_deadline = ctx().spec.has_deadline();
  h.desired_rate_bps = desired_rate_bps();
  h.alloc_idx = 0;
  if (p.type == net::PacketType::kTerm) {
    h.prev_alloc = prev_alloc_;  // switches release the reservation
    return;
  }
  const bool due = now() >= next_request_at_ && !request_outstanding_;
  if (p.type == net::PacketType::kSyn || due) {
    h.is_request = true;
    h.prev_alloc = prev_alloc_;
    request_outstanding_ = true;
    next_request_at_ = now() + rtt_estimate();
  }
}

void D3Sender::on_reverse(const net::PacketPtr& p) {
  got_feedback_ = true;
  if (check_quenching()) return;
  if (!p->d3.is_request) return;
  request_outstanding_ = false;
  prev_alloc_ = p->d3.alloc;
  double rate = rmax_;
  for (double g : prev_alloc_) rate = std::min(rate, g);
  set_rate(std::max(rate, cfg_.min_rate_bps));
}

void D3Sender::tick() {
  if (finished()) return;
  if (check_quenching()) return;
  // If the request got lost, allow a new one after an RTO.
  if (request_outstanding_ && now() > next_request_at_ + rto()) {
    request_outstanding_ = false;
  }
  // At low rates data packets are too sparse to carry the per-RTT rate
  // request; send it on a header-only packet instead (D3's rate request
  // packets are independent of the data stream).
  if (got_feedback_ && !request_outstanding_ && now() >= next_request_at_ &&
      rate_bps() < 10e6) {
    send_control(net::PacketType::kProbe);
  }
  tick_pending_ = true;
  tick_event_ =
      sim().schedule_in(std::max(rtt_estimate(), 100 * sim::kMicrosecond),
                        [this] {
                          tick_pending_ = false;
                          tick();
                        });
}

void D3Sender::quiesce() {
  net::PacedSender::quiesce();
  if (tick_pending_) {
    sim().cancel(tick_event_);
    tick_pending_ = false;
  }
}

void install_d3(net::Topology& topo, const D3Config& cfg) {
  topo.install_controllers([&](net::Port&) {
    return std::make_unique<D3LinkController>(cfg);
  });
}

}  // namespace pdq::protocols
