#include "protocols/dctcp.h"

#include <algorithm>

namespace pdq::protocols {

DctcpSender::DctcpSender(net::AgentContext ctx, DctcpConfig cfg)
    : TcpSender(std::move(ctx), cfg.tcp), g_(cfg.g) {}

void DctcpSender::on_packet(const net::PacketPtr& p) {
  if (result_.outcome == net::FlowOutcome::kPending &&
      p->type == net::PacketType::kAck) {
    update_estimator(*p);
  }
  TcpSender::on_packet(p);
}

void DctcpSender::update_estimator(const net::Packet& ack) {
  // Account the bytes this (possibly duplicate) ACK newly covers.
  const std::int64_t newly_acked = std::max<std::int64_t>(0, ack.ack - snd_una_);
  acked_bytes_win_ += newly_acked;
  if (ack.ecn_echo) {
    marked_bytes_win_ += newly_acked;
    ece_seen_ = true;
    ++marks_echoed_;
  }
  if (ack.ack < window_end_) return;

  // Window boundary: fold the marked fraction into alpha and apply the
  // DCTCP reduction once, if this window saw any mark. A concurrent
  // loss episode (fast recovery) already halved the window — the Reno
  // cut dominates, skip the alpha cut for that window.
  const double F =
      acked_bytes_win_ > 0 ? static_cast<double>(marked_bytes_win_) /
                                 static_cast<double>(acked_bytes_win_)
                           : 0.0;
  alpha_ = (1.0 - g_) * alpha_ + g_ * F;
  if (ece_seen_ && !in_recovery_) {
    cwnd_ = std::max(1.0, cwnd_ * (1.0 - alpha_ / 2.0));
    ssthresh_ = std::max(cwnd_, 2.0);
    ++window_cuts_;
  }
  acked_bytes_win_ = 0;
  marked_bytes_win_ = 0;
  ece_seen_ = false;
  window_end_ = std::max(snd_nxt_, ack.ack);
}

}  // namespace pdq::protocols
