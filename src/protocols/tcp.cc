#include "protocols/tcp.h"

#include <algorithm>
#include <cassert>

#include "net/topology.h"

namespace pdq::protocols {

using net::kMaxPayloadBytes;

TcpSender::TcpSender(net::AgentContext ctx, TcpConfig cfg)
    : ctx_(std::move(ctx)), cfg_(cfg) {
  size_ = ctx_.spec.size_bytes;
  result_.spec = ctx_.spec;
  cwnd_ = cfg_.initial_cwnd_pkts;
  ssthresh_ = cfg_.ssthresh_pkts;
  const auto segs = (size_ + kMaxPayloadBytes - 1) / kMaxPayloadBytes;
  retransmitted_.assign(static_cast<std::size_t>(segs), false);
}

sim::Time TcpSender::now() const { return ctx_.topo->sim().now(); }

sim::Time TcpSender::rto() const {
  sim::Time base = rtt_valid_ ? srtt_ + 4 * rttvar_ : 10 * sim::kMillisecond;
  base = std::max(base, cfg_.rto_min);
  for (int i = 0; i < backoff_; ++i) base = std::min(base * 2, cfg_.rto_max);
  return std::min(base, cfg_.rto_max);
}

void TcpSender::start() {
  // Terminated before start (timeline link failure): stay silent.
  if (result_.outcome != net::FlowOutcome::kPending) return;
  assert(!started_);
  started_ = true;
  try_send();
}

std::int64_t TcpSender::segment_payload(std::int64_t seq) const {
  return std::min<std::int64_t>(kMaxPayloadBytes, size_ - seq);
}

void TcpSender::send_segment(std::int64_t seq, bool is_retx) {
  net::PacketPtr p = net::make_packet();
  p->flow = ctx_.spec.id;
  p->type = net::PacketType::kData;
  p->src = ctx_.spec.src;
  p->dst = ctx_.spec.dst;
  p->path = ctx_.route;
  if (cfg_.multipath == net::MultipathMode::kPerPacket) {
    // Packet spraying: re-hash the ECMP choice per segment. Salt 0 is
    // the flow's own hash, so segment 0 rides the per-flow path.
    net::RouteRef sprayed = ctx_.topo->ecmp_route(
        ctx_.spec.id, ctx_.spec.src, ctx_.spec.dst,
        static_cast<std::uint64_t>(seq / kMaxPayloadBytes));
    if (sprayed != nullptr) p->path = std::move(sprayed);
  }
  p->reversed = false;
  p->seq = seq;
  p->payload = static_cast<std::int32_t>(segment_payload(seq));
  p->size_bytes = p->payload + net::kHeaderBytes;
  p->sent_time = now();
  decorate_data(*p);
  ++result_.packets_sent;
  if (is_retx) {
    ++result_.retransmissions;
    retransmitted_[static_cast<std::size_t>(seq / kMaxPayloadBytes)] = true;
  }
  ctx_.local->send(std::move(p));
}

void TcpSender::try_send() {
  const auto window_bytes =
      static_cast<std::int64_t>(cwnd_ * kMaxPayloadBytes);
  while (snd_nxt_ < size_ && snd_nxt_ - snd_una_ < window_bytes) {
    send_segment(snd_nxt_, false);
    snd_nxt_ += segment_payload(snd_nxt_);
  }
  if (snd_una_ < snd_nxt_ && !timer_armed_) arm_timer();
}

void TcpSender::arm_timer() {
  if (timer_armed_) ctx_.topo->sim().cancel(timer_);
  timer_armed_ = true;
  timer_ = ctx_.topo->sim().schedule_in(rto(), [this] {
    timer_armed_ = false;
    on_timeout();
  });
}

void TcpSender::on_timeout() {
  if (result_.outcome != net::FlowOutcome::kPending) return;
  if (snd_una_ >= size_) return;
  const double flight = static_cast<double>(snd_nxt_ - snd_una_) /
                        kMaxPayloadBytes;
  ssthresh_ = std::max(flight / 2.0, 2.0);
  cwnd_ = 1.0;
  dupacks_ = 0;
  in_recovery_ = false;
  ++backoff_;
  snd_nxt_ = snd_una_;  // go-back-N from the hole
  send_segment(snd_una_, true);
  snd_nxt_ = snd_una_ + segment_payload(snd_una_);
  arm_timer();
}

void TcpSender::enter_fast_retransmit() {
  const double flight = static_cast<double>(snd_nxt_ - snd_una_) /
                        kMaxPayloadBytes;
  ssthresh_ = std::max(flight / 2.0, 2.0);
  cwnd_ = ssthresh_ + static_cast<double>(cfg_.dupack_threshold);
  in_recovery_ = true;
  recover_ = snd_nxt_;
  send_segment(snd_una_, true);
  arm_timer();
}

void TcpSender::on_ack(std::int64_t ack, const net::Packet& p) {
  if (ack > snd_una_) {
    // RTT sample (Karn's rule: skip echoes of retransmitted segments).
    const auto seg = static_cast<std::size_t>(p.seq / kMaxPayloadBytes);
    if (seg < retransmitted_.size() && !retransmitted_[seg]) {
      const sim::Time sample = now() - p.sent_time;
      if (sample > 0) {
        if (!rtt_valid_) {
          srtt_ = sample;
          rttvar_ = sample / 2;
          rtt_valid_ = true;
        } else {
          const sim::Time err =
              sample > srtt_ ? sample - srtt_ : srtt_ - sample;
          rttvar_ = (3 * rttvar_ + err) / 4;
          srtt_ = (7 * srtt_ + sample) / 8;
        }
      }
    }
    backoff_ = 0;

    if (in_recovery_) {
      if (ack >= recover_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;
        dupacks_ = 0;
      } else {
        // Partial ack: retransmit the next hole immediately.
        snd_una_ = ack;
        send_segment(snd_una_, true);
        arm_timer();
      }
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;  // slow start
    } else {
      cwnd_ += 1.0 / cwnd_;  // congestion avoidance
    }

    snd_una_ = ack;
    snd_nxt_ = std::max(snd_nxt_, snd_una_);
    if (!in_recovery_) dupacks_ = 0;

    result_.bytes_acked = snd_una_;
    if (snd_una_ >= size_) {
      complete();
      return;
    }
    arm_timer();
    try_send();
  } else if (ack == snd_una_ && snd_nxt_ > snd_una_) {
    ++dupacks_;
    if (in_recovery_) {
      cwnd_ += 1.0;  // window inflation per extra dupack
      try_send();
    } else if (dupacks_ == cfg_.dupack_threshold) {
      enter_fast_retransmit();
    }
  }
}

void TcpSender::on_packet(const net::PacketPtr& p) {
  if (result_.outcome != net::FlowOutcome::kPending) return;
  if (p->type != net::PacketType::kAck) return;
  on_ack(p->ack, *p);
}

void TcpSender::reroute(net::RouteRef route) {
  if (result_.outcome != net::FlowOutcome::kPending) return;
  if (route == nullptr) {
    finish(net::FlowOutcome::kTerminated);
    return;
  }
  ctx_.route = std::move(route);
}

void TcpSender::quiesce() {
  if (timer_armed_) {
    ctx_.topo->sim().cancel(timer_);
    timer_armed_ = false;
  }
}

void TcpSender::finish(net::FlowOutcome outcome) {
  result_.outcome = outcome;
  result_.finish_time = now();
  if (timer_armed_) {
    ctx_.topo->sim().cancel(timer_);
    timer_armed_ = false;
  }
  if (ctx_.on_done) ctx_.on_done(result_);
}

void TcpSender::complete() {
  result_.bytes_acked = size_;
  finish(net::FlowOutcome::kCompleted);
}

TcpReceiver::TcpReceiver(net::AgentContext ctx) : ctx_(std::move(ctx)) {
  num_segments_ =
      (ctx_.spec.size_bytes + kMaxPayloadBytes - 1) / kMaxPayloadBytes;
  received_.assign(static_cast<std::size_t>(num_segments_), false);
}

void TcpReceiver::on_packet(const net::PacketPtr& p) {
  if (p->type != net::PacketType::kData) return;
  const auto seg = static_cast<std::size_t>(p->seq / kMaxPayloadBytes);
  if (seg < received_.size()) received_[seg] = true;

  // Advance the in-order marker over contiguously received segments.
  auto next = static_cast<std::size_t>(in_order_ / kMaxPayloadBytes);
  while (next < received_.size() && received_[next]) {
    in_order_ = std::min<std::int64_t>(
        ctx_.spec.size_bytes,
        static_cast<std::int64_t>(next + 1) * kMaxPayloadBytes);
    ++next;
  }

  auto ack = net::make_reply(*p, net::PacketType::kAck);
  ack->ack = in_order_;
  decorate_ack(*p, *ack);
  ctx_.local->send(std::move(ack));
}

}  // namespace pdq::protocols
