// TCP Reno baseline with a small RTO_min, the paper's incast-tuned TCP
// (per Vasudevan et al. [18]).
//
// Window-based: slow start, congestion avoidance, fast retransmit on three
// duplicate ACKs, fast recovery, exponential RTO backoff. The receiver
// returns cumulative ACKs. Switches need no controller — plain FIFO
// tail-drop queues provide the loss signal.
#pragma once

#include <vector>

#include "net/builders.h"  // for MultipathMode
#include "net/flow.h"
#include "net/node.h"
#include "net/paced_sender.h"  // for AgentContext

namespace pdq::protocols {

struct TcpConfig {
  double initial_cwnd_pkts = 2.0;
  double ssthresh_pkts = 64.0;
  sim::Time rto_min = sim::kMillisecond;  // "small RTO_min" tuning
  sim::Time rto_max = 200 * sim::kMillisecond;
  std::int32_t dupack_threshold = 3;
  /// Path selection on ECMP fabrics. kPerFlow keeps the historical
  /// single-path behavior bit-for-bit; kPerPacket sprays segments over
  /// the equal-cost paths (segment index as ECMP salt; segment 0 takes
  /// the per-flow path).
  net::MultipathMode multipath = net::MultipathMode::kPerFlow;
};

class TcpSender : public net::Agent {
 public:
  TcpSender(net::AgentContext ctx, TcpConfig cfg);

  void start() override;
  void on_packet(const net::PacketPtr& p) override;
  const net::FlowResult* flow_result() const override { return &result_; }
  /// Adopts the new route for subsequent (re)transmissions; a null route
  /// terminates the flow (kTerminated).
  void reroute(net::RouteRef route) override;
  const net::FlowResult& result() const { return result_; }

  double cwnd_pkts() const { return cwnd_; }
  sim::Time rto() const;

  /// Hybrid handoff: cwnd/srtt throughput estimate (0 until the first
  /// RTT sample, i.e. before any data is acked).
  double handoff_rate_bps() const override {
    if (!rtt_valid_ || srtt_ <= 0) return 0.0;
    return cwnd_ * static_cast<double>(net::kMaxPayloadBytes) * 8.0 /
           sim::to_seconds(srtt_);
  }

  // --- retirement (streaming-metrics mode) ---
  /// Safe to destroy once the flow is finished: finish() cancelled the
  /// RTO timer and the host drops deliveries for detached flows. The
  /// *receiver* is not retirable (no TERM handshake tells it the sender
  /// is done), so TCP-family receivers live to run end.
  bool retirable() const override {
    return result_.outcome != net::FlowOutcome::kPending;
  }
  void quiesce() override;
  std::size_t footprint_bytes() const override {
    return sizeof(*this) + retransmitted_.capacity() / 8;
  }

 protected:
  /// Subclass hooks (the DCTCP family, protocols/dctcp.h). Stamps
  /// applied to every outgoing data segment — e.g. the ECT codepoint.
  virtual void decorate_data(net::Packet& p) { (void)p; }

  void try_send();
  void send_segment(std::int64_t seq, bool is_retx);
  void on_ack(std::int64_t ack_bytes, const net::Packet& p);
  void enter_fast_retransmit();
  void on_timeout();
  void arm_timer();
  /// Shared teardown: outcome, finish time, timer cancel, on_done.
  void finish(net::FlowOutcome outcome);
  void complete();
  sim::Time now() const;

  std::int64_t segment_payload(std::int64_t seq) const;

  net::AgentContext ctx_;
  net::FlowResult result_;
  TcpConfig cfg_;

  std::int64_t size_ = 0;
  std::int64_t snd_nxt_ = 0;   // next new byte to send
  std::int64_t snd_una_ = 0;   // lowest unacked byte
  double cwnd_ = 2.0;          // in segments
  double ssthresh_ = 64.0;
  std::int32_t dupacks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recover_ = 0;  // highest byte sent when loss detected

  // RTT estimation (RFC 6298 style).
  bool rtt_valid_ = false;
  sim::Time srtt_ = 0;
  sim::Time rttvar_ = 0;
  std::int32_t backoff_ = 0;

  sim::EventId timer_ = 0;
  bool timer_armed_ = false;
  std::vector<bool> retransmitted_;  // per segment, for Karn's rule
  bool started_ = false;
};

/// Cumulative-ACK receiver.
class TcpReceiver : public net::Agent {
 public:
  explicit TcpReceiver(net::AgentContext ctx);

  void on_packet(const net::PacketPtr& p) override;
  std::int64_t bytes_in_order() const { return in_order_; }

  std::size_t footprint_bytes() const override {
    return sizeof(*this) + received_.capacity() / 8;
  }

 protected:
  /// Stamps applied to each outgoing cumulative ACK — e.g. DCTCP's ECE
  /// echo of the data packet's CE mark.
  virtual void decorate_ack(const net::Packet& data, net::Packet& ack) {
    (void)data;
    (void)ack;
  }

  net::AgentContext ctx_;
  std::int64_t in_order_ = 0;
  std::vector<bool> received_;  // per segment
  std::int64_t num_segments_ = 0;
};

}  // namespace pdq::protocols
