// D3 baseline [19]: deadline-aware explicit-rate allocation, first-come
// first-reserved.
//
// Once per RTT each sender piggybacks a rate request on a data packet:
// desired rate r = remaining_size / time_to_deadline (0 for flows without
// deadlines) plus the allocation vector it was granted last round. Each
// switch on the path releases the old grant, then greedily allocates
//   grant = min(r + fs, capacity - allocated)
// in arrival order, where fs is the fair share of capacity left after all
// deadline demand. As in the paper's reimplementation, fs is clamped to be
// non-negative (the original formula can go negative under congestion and
// makes flows return reserved bandwidth, hurting D3).
//
// The sender transmits at min(grants along path) and applies the quenching
// rule: a deadline flow that can no longer make its deadline terminates.
// With no deadline flows, the allocation degenerates to exact-count fair
// sharing, i.e. RCP (the two are reported together in the paper's
// deadline-unconstrained plots).
#pragma once

#include <unordered_map>

#include "net/link_controller.h"
#include "net/node.h"
#include "net/paced_sender.h"

namespace pdq::protocols {

struct D3Config {
  double alpha = 0.1;  // headroom gain on spare capacity (paper's alpha)
  double beta = 1.0;   // queue drain gain (paper's beta)
  sim::Time default_rtt = 200 * sim::kMicrosecond;
  double min_rate_bps = 1e6;  // base rate so paused flows keep probing
  sim::Time gc_timeout = 100 * sim::kMillisecond;
  bool quenching = true;
};

class D3LinkController : public net::LinkController {
 public:
  explicit D3LinkController(D3Config cfg) : cfg_(cfg) {}

  void attach(net::Port& port) override;
  void on_forward(net::Packet& p) override;
  void on_reverse(net::Packet& p) override;
  /// on_reverse is a no-op: reverse arrivals can be coalesced (node.cc).
  bool reverse_hook() const override { return false; }

  double allocated_bps() const { return allocated_bps_; }
  std::size_t flow_count() const { return flows_.size(); }
  double fair_share_bps() const { return fair_share_bps_; }

 private:
  void tick();

  D3Config cfg_;
  double capacity_bps_ = 0.0;
  double allocated_bps_ = 0.0;   // sum of outstanding grants on this link
  double fair_share_bps_ = 0.0;  // fs, recomputed every interval
  // Demand/count accumulated during the current interval.
  double demand_window_bps_ = 0.0;
  std::int64_t requests_window_ = 0;
  double demand_bps_ = 0.0;
  double flow_count_est_ = 1.0;
  std::int64_t bytes_window_ = 0;  // measured arrival for alpha term

  struct GrantInfo {
    sim::Time last_seen = 0;
    double last_grant = 0.0;
  };
  std::unordered_map<net::FlowId, GrantInfo> flows_;
};

class D3Sender : public net::PacedSender {
 public:
  D3Sender(net::AgentContext ctx, D3Config cfg);

  void quiesce() override;

 protected:
  void on_start() override;
  void decorate(net::Packet& p) override;
  void on_reverse(const net::PacketPtr& p) override;

 private:
  void tick();
  double desired_rate_bps();
  bool check_quenching();

  D3Config cfg_;
  double rmax_ = 0.0;
  bool got_feedback_ = false;
  sim::Time next_request_at_ = 0;
  net::AllocVec prev_alloc_;  // grants from the last request round
  bool request_outstanding_ = false;
  sim::EventId tick_event_ = 0;
  bool tick_pending_ = false;
};

void install_d3(net::Topology& topo, const D3Config& cfg);

}  // namespace pdq::protocols
