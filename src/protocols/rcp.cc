#include "protocols/rcp.h"

#include <algorithm>

#include "net/topology.h"

namespace pdq::protocols {

void RcpLinkController::attach(net::Port& port) {
  net::LinkController::attach(port);
  capacity_bps_ = port.link().rate_bps;
  fair_rate_bps_ = capacity_bps_;  // optimistic until the first count
  avg_rtt_ = cfg_.default_rtt;
  port.owner().topo().sim().schedule_in(
      static_cast<sim::Time>(cfg_.interval_rtts *
                             static_cast<double>(avg_rtt_)),
      [this] { tick(); });
}

void RcpLinkController::on_forward(net::Packet& p) {
  if (p.flow == net::kInvalidFlow) return;
  auto& sim = port_->owner().topo().sim();
  if (p.type == net::PacketType::kTerm) {
    if (flows_.erase(p.flow) > 0) recompute();
    return;
  }
  const bool is_new = flows_.find(p.flow) == flows_.end();
  flows_[p.flow] = sim.now();
  // Exact flow counting (the paper's optimization): a new flow lowers the
  // advertised rate immediately, so a sudden influx cannot be handed the
  // full line rate on stale information.
  if (is_new) recompute();
  if (p.rcp.rtt > 0) {
    rtt_sum_ += static_cast<double>(p.rcp.rtt);
    ++rtt_samples_;
  }
  // Stamp the running minimum of per-link fair rates along the path.
  if (p.rcp.rate_bps < 0.0 || p.rcp.rate_bps > fair_rate_bps_) {
    p.rcp.rate_bps = fair_rate_bps_;
  }
}

void RcpLinkController::on_reverse(net::Packet& p) { (void)p; }

void RcpLinkController::recompute() {
  const double n = std::max<double>(1.0, static_cast<double>(flows_.size()));
  const double q_bits = static_cast<double>(port_->queue().bytes()) * 8.0;
  const double drain =
      q_bits / (cfg_.interval_rtts * sim::to_seconds(std::max<sim::Time>(
                                         avg_rtt_, sim::kMicrosecond)));
  fair_rate_bps_ =
      std::max(cfg_.min_rate_bps, (capacity_bps_ - drain) / n);
}

void RcpLinkController::tick() {
  auto& sim = port_->owner().topo().sim();

  if (rtt_samples_ > 0) {
    avg_rtt_ = static_cast<sim::Time>(rtt_sum_ /
                                      static_cast<double>(rtt_samples_));
    rtt_sum_ = 0.0;
    rtt_samples_ = 0;
  }

  const sim::Time cutoff = sim.now() - cfg_.gc_timeout;
  std::erase_if(flows_, [&](const auto& kv) { return kv.second < cutoff; });

  recompute();

  sim.schedule_in(
      static_cast<sim::Time>(cfg_.interval_rtts *
                             static_cast<double>(std::max<sim::Time>(
                                 avg_rtt_, 10 * sim::kMicrosecond))),
      [this] { tick(); });
}

namespace {
// Below this rate, data packets are too sparse to carry timely feedback.
constexpr double kProbeRateThreshold = 10e6;
}

RcpSender::RcpSender(net::AgentContext ctx, RcpConfig cfg)
    : net::PacedSender(std::move(ctx)), cfg_(cfg) {
  rmax_ = nic_rate_bps();
}

void RcpSender::on_start() { tick(); }

void RcpSender::tick() {
  if (finished()) return;
  // At very low rates data packets are minutes apart in feedback terms;
  // keep the rate feedback loop alive with header-only probes.
  if (got_feedback_ && rate_bps() < kProbeRateThreshold) {
    send_control(net::PacketType::kProbe);
  }
  tick_pending_ = true;
  tick_event_ =
      sim().schedule_in(std::max(rtt_estimate(), 100 * sim::kMicrosecond),
                        [this] {
                          tick_pending_ = false;
                          tick();
                        });
}

void RcpSender::quiesce() {
  net::PacedSender::quiesce();
  if (tick_pending_) {
    sim().cancel(tick_event_);
    tick_pending_ = false;
  }
}

void RcpSender::decorate(net::Packet& p) {
  p.rcp.rate_bps = rmax_;  // switches take the min along the path
  p.rcp.rtt = rtt_estimate();
}

void RcpSender::on_reverse(const net::PacketPtr& p) {
  got_feedback_ = true;
  if (p->rcp.rate_bps >= 0.0) {
    set_rate(std::min(p->rcp.rate_bps, rmax_));
  }
}

void install_rcp(net::Topology& topo, const RcpConfig& cfg) {
  topo.install_controllers([&](net::Port&) {
    return std::make_unique<RcpLinkController>(cfg);
  });
}

}  // namespace pdq::protocols
