#include "workload/arrivals.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace pdq::workload {

namespace {

void set_error(std::string* error, std::string msg) {
  if (error) *error = std::move(msg);
}

}  // namespace

EmpiricalCdf EmpiricalCdf::from_points(std::vector<Point> pts,
                                       std::string* error) {
  EmpiricalCdf cdf;
  if (pts.empty()) {
    set_error(error, "EmpiricalCdf: no points");
    return cdf;
  }
  if (pts.front().cum > 0.0) {
    // Implicit anchor: all mass below the first listed size sits at it.
    pts.insert(pts.begin(), {pts.front().bytes, 0.0});
  }
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].bytes < 1.0 || pts[i].cum < 0.0 || pts[i].cum > 1.0) {
      set_error(error, "EmpiricalCdf: point " + std::to_string(i) +
                           " out of range (bytes >= 1, cum in [0,1])");
      return cdf;
    }
    if (i > 0 && (pts[i].bytes <= pts[i - 1].bytes &&
                  !(i == 1 && pts[i].bytes == pts[i - 1].bytes))) {
      set_error(error, "EmpiricalCdf: bytes not strictly increasing at point " +
                           std::to_string(i));
      return cdf;
    }
    if (i > 0 && pts[i].cum < pts[i - 1].cum) {
      set_error(error, "EmpiricalCdf: cum decreases at point " +
                           std::to_string(i));
      return cdf;
    }
  }
  if (pts.back().cum != 1.0) {
    set_error(error, "EmpiricalCdf: last point must have cum == 1");
    return cdf;
  }
  cdf.points_ = std::move(pts);
  return cdf;
}

EmpiricalCdf EmpiricalCdf::from_csv_text(const std::string& text,
                                         std::string* error) {
  std::vector<Point> pts;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    for (char& c : line) {
      if (c == ',' || c == '\t') c = ' ';
    }
    std::istringstream fields(line);
    double bytes = 0, cum = 0;
    if (!(fields >> bytes)) continue;  // blank / comment-only line
    if (!(fields >> cum)) {
      set_error(error, "EmpiricalCdf: line " + std::to_string(lineno) +
                           ": expected \"bytes,cum\"");
      return EmpiricalCdf();
    }
    pts.push_back({bytes, cum});
  }
  return from_points(std::move(pts), error);
}

EmpiricalCdf EmpiricalCdf::from_csv(const std::string& path,
                                    std::string* error) {
  std::ifstream f(path);
  if (!f) {
    set_error(error, "EmpiricalCdf: cannot open " + path);
    return EmpiricalCdf();
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return from_csv_text(buf.str(), error);
}

EmpiricalCdf EmpiricalCdf::web_search() {
  // Mice-dominated with a moderate elephant tail: ~53% of flows under
  // 100 KB, the top decile spanning 2 MB - 30 MB. Qualitative shape of
  // the search-cluster distribution in the DCTCP lineage of evaluations.
  std::vector<Point> pts = {
      {6'000, 0.0},      {10'000, 0.15},    {20'000, 0.20},
      {30'000, 0.30},    {50'000, 0.40},    {80'000, 0.53},
      {200'000, 0.60},   {1'000'000, 0.70}, {2'000'000, 0.80},
      {5'000'000, 0.90}, {10'000'000, 0.97}, {30'000'000, 1.0},
  };
  return from_points(std::move(pts));
}

EmpiricalCdf EmpiricalCdf::data_mining() {
  // Extremely mice-heavy: half the flows are sub-kilobyte scatter/gather
  // chatter, ~80% under 10 KB, while nearly all bytes ride in rare
  // multi-megabyte shuffles (VL2-style measurement shape).
  std::vector<Point> pts = {
      {100, 0.0},         {300, 0.30},        {1'000, 0.50},
      {10'000, 0.80},     {100'000, 0.90},    {1'000'000, 0.95},
      {10'000'000, 0.99}, {100'000'000, 1.0},
  };
  return from_points(std::move(pts));
}

double EmpiricalCdf::quantile(double u) const {
  assert(!points_.empty());
  u = std::clamp(u, 0.0, 1.0);
  // Find the first point with cum >= u, then interpolate linearly in
  // bytes across the segment that crosses u.
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (u <= points_[i].cum) {
      const Point& a = points_[i - 1];
      const Point& b = points_[i];
      if (b.cum == a.cum) return b.bytes;
      const double t = (u - a.cum) / (b.cum - a.cum);
      return a.bytes + t * (b.bytes - a.bytes);
    }
  }
  return points_.back().bytes;
}

double EmpiricalCdf::cdf(double bytes) const {
  assert(!points_.empty());
  if (bytes < points_.front().bytes) return 0.0;
  double out = points_.front().cum;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const Point& a = points_[i - 1];
    const Point& b = points_[i];
    if (bytes >= b.bytes) {
      out = b.cum;  // also covers the zero-width implicit-anchor segment
      continue;
    }
    const double t = (bytes - a.bytes) / (b.bytes - a.bytes);
    return a.cum + t * (b.cum - a.cum);
  }
  return out;
}

double EmpiricalCdf::mean_bytes() const {
  assert(!points_.empty());
  // Piecewise-linear CDF => uniform density within each segment; the
  // segment contributes mass * midpoint.
  double mean = 0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const Point& a = points_[i - 1];
    const Point& b = points_[i];
    mean += (b.cum - a.cum) * 0.5 * (a.bytes + b.bytes);
  }
  return mean;
}

std::int64_t EmpiricalCdf::sample(sim::Rng& rng) const {
  assert(!points_.empty());
  const double v = quantile(rng.uniform(0.0, 1.0));
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(v));
}

SizeFn EmpiricalCdf::sampler() const {
  assert(!points_.empty());
  return [cdf = *this](sim::Rng& rng) { return cdf.sample(rng); };
}

// ---------------------------------------------------------------------------
// ArrivalProcess
// ---------------------------------------------------------------------------

ArrivalProcess ArrivalProcess::poisson(double rate_per_sec) {
  assert(rate_per_sec > 0.0);
  ArrivalProcess p;
  p.kind = Kind::kPoisson;
  p.rate_per_sec = rate_per_sec;
  return p;
}

ArrivalProcess ArrivalProcess::deterministic(double rate_per_sec) {
  assert(rate_per_sec > 0.0);
  ArrivalProcess p;
  p.kind = Kind::kDeterministic;
  p.rate_per_sec = rate_per_sec;
  return p;
}

ArrivalProcess ArrivalProcess::from_trace(std::vector<sim::Time> times) {
  assert(std::is_sorted(times.begin(), times.end()));
  ArrivalProcess p;
  p.kind = Kind::kTrace;
  p.trace = std::move(times);
  return p;
}

ArrivalProcess ArrivalProcess::for_load(double rho, double mean_flow_bytes,
                                        double link_bps) {
  assert(rho > 0.0 && rho < 1.0 && mean_flow_bytes > 0.0 && link_bps > 0.0);
  return poisson(rho * link_bps / (8.0 * mean_flow_bytes));
}

double ArrivalProcess::offered_load(double mean_flow_bytes,
                                    double link_bps) const {
  if (kind == Kind::kTrace) return 0.0;
  return rate_per_sec * 8.0 * mean_flow_bytes / link_bps;
}

std::vector<sim::Time> ArrivalProcess::generate(int count, sim::Rng& rng,
                                                sim::Time start) const {
  std::vector<sim::Time> out;
  out.reserve(static_cast<std::size_t>(std::max(0, count)));
  switch (kind) {
    case Kind::kPoisson: {
      const double mean_gap_ns = 1e9 / rate_per_sec;
      sim::Time clock = start;
      for (int i = 0; i < count; ++i) {
        clock += static_cast<sim::Time>(rng.exponential(mean_gap_ns));
        out.push_back(clock);
      }
      break;
    }
    case Kind::kDeterministic: {
      const double gap_ns = 1e9 / rate_per_sec;
      for (int i = 0; i < count; ++i) {
        out.push_back(start + static_cast<sim::Time>(gap_ns * (i + 1)));
      }
      break;
    }
    case Kind::kTrace: {
      for (int i = 0; i < count; ++i) {
        const std::size_t idx = std::min<std::size_t>(
            static_cast<std::size_t>(i),
            trace.empty() ? 0 : trace.size() - 1);
        out.push_back(start + (trace.empty() ? 0 : trace[idx]));
      }
      break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Open-loop flow sets
// ---------------------------------------------------------------------------

std::vector<net::FlowSpec> make_open_loop_flows(
    const std::vector<net::NodeId>& servers, const OpenLoopOptions& opts,
    sim::Rng& rng) {
  assert(opts.size && opts.pattern && opts.num_flows > 0);
  const int n = static_cast<int>(servers.size());
  // Draw order contract (docs/workloads.md): arrivals, pattern, then
  // per-flow size/deadline — so swapping the arrival process never
  // perturbs the sizes a given seed produces.
  const auto arrivals = opts.arrivals.generate(opts.num_flows, rng, opts.start);
  const auto pairs = opts.pattern(n, opts.num_flows, rng);

  std::vector<net::FlowSpec> flows;
  flows.reserve(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    net::FlowSpec f;
    f.id = opts.first_id + static_cast<net::FlowId>(i);
    f.src = servers[static_cast<std::size_t>(pairs[i].src)];
    f.dst = servers[static_cast<std::size_t>(pairs[i].dst)];
    f.size_bytes = opts.size(rng);
    if (opts.deadline) f.deadline = opts.deadline(rng);
    f.start_time = arrivals[i];
    flows.push_back(f);
  }
  return flows;
}

}  // namespace pdq::workload
