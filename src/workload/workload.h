// Workload generation: flow sizes, deadlines, sending patterns, arrival
// processes — everything S5.1/S5.3 of the paper uses.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/flow.h"
#include "sim/random.h"
#include "sim/time.h"

namespace pdq::workload {

// ---------- size distributions ----------

using SizeFn = std::function<std::int64_t(sim::Rng&)>;

/// Uniform in [lo, hi] bytes — the paper's deadline-constrained query
/// traffic is uniform [2 KB, 198 KB].
SizeFn uniform_size(std::int64_t lo, std::int64_t hi);

/// Pareto with tail index alpha and minimum xm bytes (Fig 10 uses 1.1).
SizeFn pareto_size(double alpha, std::int64_t xm,
                   std::int64_t cap = 100'000'000);

/// Synthetic stand-in for the commercial cloud workload of Greenberg et
/// al. [12]: the vast majority of flows are mice, while most delivered
/// bytes come from a small number of elephants.
SizeFn vl2_size();

/// Synthetic stand-in for the university data center trace (EDU1 in
/// Benson et al. [6]): short-flow heavy with a thinner elephant tail.
SizeFn edu_size();

// ---------- deadlines ----------

/// Exponential deadline with the given mean, floored (the paper uses mean
/// 20 ms, floor 3 ms).
std::function<sim::Time(sim::Rng&)> exp_deadline(
    sim::Time mean = 20 * sim::kMillisecond,
    sim::Time floor = 3 * sim::kMillisecond);

// ---------- sending patterns (S5.3) ----------

/// (src index, dst index) pairs into a server vector.
struct Pair {
  int src;
  int dst;
};
using PatternFn =
    std::function<std::vector<Pair>(int num_servers, int num_flows,
                                    sim::Rng&)>;

/// All flows target server `aggregator` (default: the last server).
PatternFn aggregation(int aggregator = -1);

/// Server x sends to (x + stride) mod N; flows are distributed over
/// senders round-robin.
PatternFn stride(int s);

/// With probability p the destination shares the sender's rack (racks of
/// `rack_size` consecutive servers); otherwise any other server.
PatternFn staggered_prob(double p, int rack_size);

/// Random 1-to-1 permutation: every server sends to exactly one server
/// and receives from exactly one.
PatternFn random_permutation();

// ---------- flow set assembly ----------

struct FlowSetOptions {
  int num_flows = 0;
  SizeFn size;
  std::function<sim::Time(sim::Rng&)> deadline;  // null = unconstrained
  PatternFn pattern;
  /// Poisson arrivals at this rate; 0 = all flows start at time 0.
  double arrival_rate_per_sec = 0.0;
  net::FlowId first_id = 1;
};

/// Materializes FlowSpecs over `servers` (NodeIds from a topology
/// builder). src/dst of each flow are real node ids.
std::vector<net::FlowSpec> make_flows(const std::vector<net::NodeId>& servers,
                                      const FlowSetOptions& opts,
                                      sim::Rng& rng);

}  // namespace pdq::workload
