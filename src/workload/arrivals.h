// Dynamic-traffic inputs: empirical flow-size CDFs and open-loop arrival
// processes.
//
// Real datacenter evaluations drive protocols open-loop — flows arrive as
// a Poisson (or trace-driven) process with sizes drawn from a measured
// distribution, and the knob is the *offered load* rho on a reference
// link, not a flow count. This header provides both halves:
//
//  - EmpiricalCdf: a piecewise-linear CDF over flow sizes, sampled by
//    inverse transform. Built-ins reproduce the qualitative shape of the
//    web-search and data-mining distributions the datacenter-transport
//    literature evaluates against; arbitrary CDFs load from CSV.
//  - ArrivalProcess: Poisson / deterministic / trace arrivals, with a
//    target-load parameterization (rho in [0.1, 0.95] of a reference
//    link) that converts to a rate via the size distribution's mean.
//
// Everything is seeded through the caller's sim::Rng, so the harness
// trial-seed ladder (harness/experiment.h) applies unchanged; see
// docs/workloads.md for the draw-order contract.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/flow.h"
#include "sim/random.h"
#include "sim/time.h"
#include "workload/workload.h"

namespace pdq::workload {

// ---------------------------------------------------------------------------
// Empirical flow-size CDFs
// ---------------------------------------------------------------------------

/// A piecewise-linear empirical CDF over flow sizes in bytes.
///
/// Points are (bytes, cum) with bytes strictly increasing and cum
/// nondecreasing, ending at cum == 1. Sampling inverts the CDF with
/// linear interpolation in bytes between adjacent points (so a two-point
/// CDF {(a, 0), (b, 1)} is uniform on [a, b]).
class EmpiricalCdf {
 public:
  struct Point {
    double bytes = 0;
    double cum = 0;  // cumulative probability in [0, 1]
  };

  EmpiricalCdf() = default;

  /// Validates and adopts `pts` (see class comment); `error` (optional)
  /// receives a message and an empty CDF is returned on bad input. A
  /// first point with cum > 0 gets an implicit (bytes, 0) anchor — i.e.
  /// the mass below the first listed size sits *at* that size.
  static EmpiricalCdf from_points(std::vector<Point> pts,
                                  std::string* error = nullptr);

  /// Parses "bytes,cum" lines (one point per line; '#' comments and blank
  /// lines ignored; whitespace-separated also accepted) and validates as
  /// from_points. Empty CDF + message on failure.
  static EmpiricalCdf from_csv_text(const std::string& text,
                                    std::string* error = nullptr);

  /// from_csv_text over the contents of `path`.
  static EmpiricalCdf from_csv(const std::string& path,
                               std::string* error = nullptr);

  /// Web-search workload: mice-dominated with a moderate elephant tail
  /// (the qualitative shape of the search-cluster distribution used by
  /// the DCTCP lineage of evaluations).
  static EmpiricalCdf web_search();

  /// Data-mining workload: extremely mice-heavy flow count with almost
  /// all bytes in rare multi-megabyte elephants (VL2-style measurement).
  static EmpiricalCdf data_mining();

  bool empty() const { return points_.empty(); }
  const std::vector<Point>& points() const { return points_; }

  /// Inverse-transform sample (>= 1 byte).
  std::int64_t sample(sim::Rng& rng) const;

  /// The size at cumulative probability u in [0, 1].
  double quantile(double u) const;

  /// P(size <= bytes) under the piecewise-linear interpolation.
  double cdf(double bytes) const;

  /// Analytic mean of the interpolated distribution — the denominator of
  /// the load -> arrival-rate conversion (ArrivalProcess::for_load).
  double mean_bytes() const;

  /// Adapter into the SizeFn world of workload.h.
  SizeFn sampler() const;

 private:
  std::vector<Point> points_;
};

// ---------------------------------------------------------------------------
// Open-loop arrival processes
// ---------------------------------------------------------------------------

/// Flow inter-arrival process. Construct via the factories; generate()
/// materializes monotone absolute arrival times from the caller's Rng
/// (Poisson draws one exponential per flow; deterministic and trace draw
/// nothing).
struct ArrivalProcess {
  enum class Kind { kPoisson, kDeterministic, kTrace };

  Kind kind = Kind::kPoisson;
  double rate_per_sec = 0.0;      // Poisson / deterministic
  std::vector<sim::Time> trace;   // kTrace: absolute times, sorted

  /// Memoryless arrivals at `rate_per_sec` (> 0).
  static ArrivalProcess poisson(double rate_per_sec);

  /// Evenly spaced arrivals at `rate_per_sec` (> 0).
  static ArrivalProcess deterministic(double rate_per_sec);

  /// Replays the given absolute arrival times (sorted ascending).
  static ArrivalProcess from_trace(std::vector<sim::Time> times);

  /// Target-load parameterization: Poisson arrivals whose offered load on
  /// a reference link of `link_bps` is `rho` (fraction of capacity,
  /// sensible range [0.1, 0.95]):
  ///   rate = rho * link_bps / (8 * mean_flow_bytes)  [flows/sec].
  static ArrivalProcess for_load(double rho, double mean_flow_bytes,
                                 double link_bps = 1e9);

  /// The offered load this process puts on `link_bps` given the mean flow
  /// size (inverse of for_load; 0 for traces).
  double offered_load(double mean_flow_bytes, double link_bps = 1e9) const;

  /// `count` monotone absolute arrival times starting at `start`. Traces
  /// are truncated/cycled never — count beyond the trace reuses the last
  /// time (and the caller should size count to the trace).
  std::vector<sim::Time> generate(int count, sim::Rng& rng,
                                  sim::Time start = 0) const;
};

// ---------------------------------------------------------------------------
// Open-loop flow-set assembly
// ---------------------------------------------------------------------------

/// Everything an open-loop workload needs. Draw order per flow set (the
/// reproducibility contract, documented in docs/workloads.md):
/// (1) arrival times, (2) pattern pairs, (3) per-flow size then deadline.
struct OpenLoopOptions {
  int num_flows = 0;
  ArrivalProcess arrivals;
  SizeFn size;                                   // e.g. cdf.sampler()
  std::function<sim::Time(sim::Rng&)> deadline;  // null = unconstrained
  PatternFn pattern;                             // src/dst pair generator
  net::FlowId first_id = 1;
  sim::Time start = 0;  // arrival clock origin
};

/// Materializes an open-loop FlowSpec set over `servers`.
std::vector<net::FlowSpec> make_open_loop_flows(
    const std::vector<net::NodeId>& servers, const OpenLoopOptions& opts,
    sim::Rng& rng);

}  // namespace pdq::workload
