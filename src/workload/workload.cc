#include "workload/workload.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pdq::workload {

SizeFn uniform_size(std::int64_t lo, std::int64_t hi) {
  assert(lo >= 1 && hi >= lo);
  return [lo, hi](sim::Rng& rng) { return rng.uniform_int(lo, hi); };
}

SizeFn pareto_size(double alpha, std::int64_t xm, std::int64_t cap) {
  return [alpha, xm, cap](sim::Rng& rng) {
    const double v = rng.pareto(alpha, static_cast<double>(xm));
    return std::min<std::int64_t>(static_cast<std::int64_t>(v), cap);
  };
}

namespace {

/// Piecewise log-uniform sampler: P(bucket i) = weight[i], size drawn
/// log-uniformly inside [edges[i], edges[i+1]].
SizeFn piecewise_log_uniform(std::vector<double> weights,
                             std::vector<double> edges) {
  double total = 0;
  for (double w : weights) total += w;
  return [weights = std::move(weights), edges = std::move(edges),
          total](sim::Rng& rng) {
    double u = rng.uniform(0.0, total);
    std::size_t b = 0;
    while (b + 1 < weights.size() && u > weights[b]) {
      u -= weights[b];
      ++b;
    }
    const double lo = std::log(edges[b]);
    const double hi = std::log(edges[b + 1]);
    return static_cast<std::int64_t>(std::exp(rng.uniform(lo, hi)));
  };
}

}  // namespace

SizeFn vl2_size() {
  // Mice dominate the flow count; elephants dominate the byte count —
  // the qualitative shape of the VL2 measurement [12].
  return piecewise_log_uniform(
      {0.50, 0.30, 0.14, 0.05, 0.01},
      {1e3, 1e4, 1e5, 1e6, 1e7, 1e8});
}

SizeFn edu_size() {
  // University data center (EDU1 [6]): overwhelmingly short flows, few
  // flows above 1 MB.
  return piecewise_log_uniform(
      {0.65, 0.25, 0.08, 0.02},
      {5e2, 1e4, 1e5, 1e6, 1e7});
}

std::function<sim::Time(sim::Rng&)> exp_deadline(sim::Time mean,
                                                 sim::Time floor) {
  return [mean, floor](sim::Rng& rng) {
    const double d = rng.exponential(static_cast<double>(mean));
    return std::max(floor, static_cast<sim::Time>(d));
  };
}

PatternFn aggregation(int aggregator) {
  return [aggregator](int n, int flows, sim::Rng&) {
    const int agg = aggregator < 0 ? n - 1 : aggregator;
    std::vector<Pair> out;
    // Round-robin flows over the other servers, as in the paper's query
    // aggregation: each sender carries floor/ceil(f / (n-1)) flows.
    int s = 0;
    for (int f = 0; f < flows; ++f) {
      if (s == agg) s = (s + 1) % n;
      out.push_back({s, agg});
      s = (s + 1) % n;
    }
    return out;
  };
}

PatternFn stride(int stride_by) {
  return [stride_by](int n, int flows, sim::Rng&) {
    std::vector<Pair> out;
    for (int f = 0; f < flows; ++f) {
      const int src = f % n;
      out.push_back({src, (src + stride_by) % n});
    }
    return out;
  };
}

PatternFn staggered_prob(double p, int rack_size) {
  return [p, rack_size](int n, int flows, sim::Rng& rng) {
    std::vector<Pair> out;
    for (int f = 0; f < flows; ++f) {
      const int src = static_cast<int>(rng.uniform_int(0, n - 1));
      const int rack = src / rack_size;
      const int rack_lo = rack * rack_size;
      const int rack_hi = std::min(n, rack_lo + rack_size) - 1;
      int dst = src;
      if (rng.bernoulli(p) && rack_hi > rack_lo) {
        while (dst == src)
          dst = static_cast<int>(rng.uniform_int(rack_lo, rack_hi));
      } else {
        while (dst == src || (dst >= rack_lo && dst <= rack_hi && n > rack_size))
          dst = static_cast<int>(rng.uniform_int(0, n - 1));
      }
      out.push_back({src, dst});
    }
    return out;
  };
}

PatternFn random_permutation() {
  return [](int n, int flows, sim::Rng& rng) {
    // One derangement; flows cycle over it so each server sends to a
    // single fixed peer.
    std::vector<int> perm(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
    do {
      rng.shuffle(perm);
    } while ([&] {
      for (int i = 0; i < n; ++i)
        if (perm[static_cast<std::size_t>(i)] == i) return true;
      return false;
    }());
    std::vector<Pair> out;
    for (int f = 0; f < flows; ++f) {
      const int src = f % n;
      out.push_back({src, perm[static_cast<std::size_t>(src)]});
    }
    return out;
  };
}

std::vector<net::FlowSpec> make_flows(const std::vector<net::NodeId>& servers,
                                      const FlowSetOptions& opts,
                                      sim::Rng& rng) {
  assert(opts.size && opts.pattern && opts.num_flows > 0);
  const int n = static_cast<int>(servers.size());
  const auto pairs = opts.pattern(n, opts.num_flows, rng);

  std::vector<net::FlowSpec> flows;
  sim::Time clock = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    net::FlowSpec f;
    f.id = opts.first_id + static_cast<net::FlowId>(i);
    f.src = servers[static_cast<std::size_t>(pairs[i].src)];
    f.dst = servers[static_cast<std::size_t>(pairs[i].dst)];
    f.size_bytes = opts.size(rng);
    if (opts.deadline) f.deadline = opts.deadline(rng);
    if (opts.arrival_rate_per_sec > 0.0) {
      clock += static_cast<sim::Time>(
          rng.exponential(1e9 / opts.arrival_rate_per_sec));
      f.start_time = clock;
    }
    flows.push_back(f);
  }
  return flows;
}

}  // namespace pdq::workload
