// Burst robustness (the paper's Fig 7 scenario as an application): a
// long-lived background transfer is preempted by a burst of 50 short
// query responses; PDQ pauses the elephant, drains the burst at line
// rate, then resumes -- visible in the printed per-millisecond series.
//
// Build & run:  ./build/examples/incast_burst
#include <cstdio>

#include "harness/stacks.h"

using namespace pdq;

int main() {
  std::vector<net::FlowSpec> flows;
  net::FlowSpec elephant;
  elephant.id = 1;
  elephant.size_bytes = 4'000'000;
  flows.push_back(elephant);
  for (int i = 0; i < 50; ++i) {
    net::FlowSpec f;
    f.id = 2 + i;
    f.size_bytes = 20'000 + (i % 5) * 40;  // ~20 KB with perturbation
    f.start_time = 10 * sim::kMillisecond;
    flows.push_back(f);
  }

  harness::PdqStack stack;
  auto build = [&](net::Topology& t) {
    auto servers = net::build_single_bottleneck(t, 51);
    for (std::size_t i = 0; i < flows.size(); ++i) {
      flows[i].src = servers[i];
      flows[i].dst = servers.back();
    }
    return servers;
  };
  harness::RunOptions opts;
  opts.horizon = sim::kSecond;
  opts.watch_link = std::make_pair(net::NodeId{0}, net::NodeId{52});
  opts.per_flow_series = true;
  auto r = harness::run_scenario(stack, build, flows, opts);

  std::printf(
      "Fig 7 scenario: 50 x 20 KB burst at t=10ms preempting a long flow\n\n");
  std::printf("%5s %12s %12s %12s %10s\n", "ms", "long[Mbps]", "burst[Mbps]",
              "util[%]", "queue[pkt]");
  const std::size_t bins = r.flow_goodput_bps[0].size();
  for (std::size_t b = 0; b < bins && b < 45; ++b) {
    double burst = 0;
    for (std::size_t i = 1; i < r.flow_goodput_bps.size(); ++i) {
      if (b < r.flow_goodput_bps[i].size()) burst += r.flow_goodput_bps[i][b];
    }
    const double util =
        b < r.link_utilization.size() ? 100.0 * r.link_utilization[b] : 0.0;
    const double queue_pkts =
        r.queue_series.time_average(static_cast<sim::Time>(b) *
                                        sim::kMillisecond,
                                    static_cast<sim::Time>(b + 1) *
                                        sim::kMillisecond) /
        1516.0;
    std::printf("%5zu %12.0f %12.0f %12.1f %10.1f\n", b,
                r.flow_goodput_bps[0][b] / 1e6, burst / 1e6, util, queue_pkts);
  }

  sim::Time last_short = 0;
  for (const auto& f : r.flows) {
    if (f.spec.id >= 2) last_short = std::max(last_short, f.finish_time);
  }
  std::printf(
      "\nLong flow FCT: %.1f ms; burst fully drained by t=%.1f ms; "
      "drops: %lld\n",
      sim::to_millis(r.flow(1)->completion_time()),
      sim::to_millis(last_short), static_cast<long long>(r.queue_drops));
  return 0;
}
