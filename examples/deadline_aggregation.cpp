// Partition/aggregate scenario (the paper's S5.2 "query aggregation"):
// a front-end fans a query out to N workers; every worker's response must
// arrive before the deadline or the final answer degrades.
//
// Compares how many responses make their deadline under PDQ, D3, RCP and
// TCP as the fan-out grows.
//
// Build & run:  ./build/examples/deadline_aggregation [max_fanout]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "harness/stacks.h"
#include "workload/workload.h"

using namespace pdq;

namespace {

harness::RunResult run_fanout(harness::ProtocolStack& stack, int fanout,
                              std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<net::FlowSpec> flows;
  for (int i = 0; i < fanout; ++i) {
    net::FlowSpec f;
    f.id = i + 1;
    // Worker responses: uniform [2 KB, 198 KB], exp(20 ms) deadline with a
    // 3 ms floor -- the paper's deadline-constrained workload.
    f.size_bytes = rng.uniform_int(2'000, 198'000);
    f.deadline = workload::exp_deadline()(rng);
    flows.push_back(f);
  }
  auto build = [&](net::Topology& t) {
    auto servers = net::build_single_bottleneck(t, fanout);
    for (int i = 0; i < fanout; ++i) {
      flows[static_cast<std::size_t>(i)].src =
          servers[static_cast<std::size_t>(i)];
      flows[static_cast<std::size_t>(i)].dst = servers.back();
    }
    return servers;
  };
  harness::RunOptions opts;
  opts.horizon = 10 * sim::kSecond;
  opts.seed = seed;
  return harness::run_scenario(stack, build, flows, opts);
}

}  // namespace

int main(int argc, char** argv) {
  const int max_fanout = argc > 1 ? std::atoi(argv[1]) : 24;
  std::printf(
      "Query aggregation: %% of worker responses meeting their deadline\n"
      "(uniform [2,198] KB responses, exponential 20 ms deadlines)\n\n");
  std::printf("%8s %10s %10s %10s %10s\n", "workers", "PDQ", "D3", "RCP",
              "TCP");
  for (int fanout = 4; fanout <= max_fanout; fanout += 4) {
    double cells[4];
    int c = 0;
    for (int proto = 0; proto < 4; ++proto) {
      std::unique_ptr<harness::ProtocolStack> stack;
      switch (proto) {
        case 0: stack = std::make_unique<harness::PdqStack>(); break;
        case 1: stack = std::make_unique<harness::D3Stack>(); break;
        case 2: stack = std::make_unique<harness::RcpStack>(); break;
        default: stack = std::make_unique<harness::TcpStack>(); break;
      }
      double total = 0;
      const int kTrials = 3;
      for (int trial = 0; trial < kTrials; ++trial) {
        total += run_fanout(*stack, fanout,
                            static_cast<std::uint64_t>(97 + trial))
                     .application_throughput();
      }
      cells[c++] = total / kTrials;
    }
    std::printf("%8d %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n", fanout, cells[0],
                cells[1], cells[2], cells[3]);
  }
  std::printf(
      "\nPDQ sustains high application throughput far beyond the point\n"
      "where first-come-first-reserved (D3) and fair sharing (RCP/TCP)\n"
      "start missing deadlines.\n");
  return 0;
}
