// Multipath PDQ on BCube (the paper's S6): stripe each flow across
// subflows on the server's multiple NICs and shift load away from paused
// paths. Prints single-path vs multipath completion times per flow.
//
// Build & run:  ./build/examples/multipath_bcube [num_subflows]
#include <cstdio>
#include <cstdlib>

#include "harness/stacks.h"
#include "workload/workload.h"

using namespace pdq;

int main(int argc, char** argv) {
  const int subflows = argc > 1 ? std::atoi(argv[1]) : 3;

  // BCube(2,3): 16 dual-digit servers, 4 NICs each.
  sim::Simulator scratch_sim;
  net::Topology scratch(scratch_sim, 1);
  auto servers = net::build_bcube(scratch, 2, 3);

  sim::Rng rng(2026);
  workload::FlowSetOptions w;
  w.num_flows = 4;  // 25% of hosts sending: the light-load regime
  w.size = workload::uniform_size(1'000'000, 1'000'000);
  w.pattern = workload::random_permutation();
  auto flows = workload::make_flows(servers, w, rng);

  auto build = [](net::Topology& t) { return net::build_bcube(t, 2, 3); };
  harness::RunOptions opts;
  opts.horizon = 10 * sim::kSecond;

  harness::PdqStack single;
  auto rs = harness::run_scenario(single, build, flows, opts);

  core::MpdqConfig cfg;
  cfg.num_subflows = subflows;
  harness::MpdqStack multi(cfg);
  auto rm = harness::run_scenario(multi, build, flows, opts);

  std::printf("M-PDQ on BCube(2,3), random permutation, 4 x 1 MB flows\n\n");
  std::printf("%6s %14s %16s %9s\n", "flow", "PDQ FCT [ms]",
              "M-PDQ(%d) [ms]", "speedup");
  for (std::size_t i = 0; i < rs.flows.size(); ++i) {
    const double a = sim::to_millis(rs.flows[i].completion_time());
    const double b = sim::to_millis(rm.flows[i].completion_time());
    std::printf("f%-5lld %14.2f %16.2f %8.2fx\n",
                static_cast<long long>(rs.flows[i].spec.id), a, b, a / b);
  }
  std::printf("\nmean: PDQ %.2f ms vs M-PDQ %.2f ms (%.2fx)\n",
              rs.mean_fct_ms(), rm.mean_fct_ms(),
              rs.mean_fct_ms() / rm.mean_fct_ms());
  std::printf(
      "M-PDQ exploits the %d parallel NIC paths BCube provides, shifting\n"
      "load away from paused subflows every millisecond.\n",
      4);
  return 0;
}
