// pdqsim: command-line driver for the PDQ simulator.
//
// Runs any protocol on any built-in topology with a configurable
// workload and prints per-flow results plus summary metrics; the one-stop
// entry point for trying the library without writing C++.
//
// Usage:
//   pdqsim [--protocol NAME] [--list-protocols]
//          [--topology bottleneck|tree|fattree|bcube|jellyfish]
//          [--servers N] [--flows N] [--pattern agg|stride|staggered|perm]
//          [--size-dist uniform|vl2|edu|pareto] [--mean-kb N]
//          [--deadlines] [--deadline-ms N] [--arrival-rate R]
//          [--subflows K] [--seed S] [--faults F] [--csv] [--verbose]
//          [--counters]
//
// --faults arms the fault plane (src/faults/): off|loss|burst|ctrl|
// flap|reset|chaos, mirroring the bench --faults flag. Anything but
// "off" also enables the run auditor (watchdog + end-of-run invariant
// checks); the default "off" is byte-identical to the no-fault path.
//
// --counters appends the engine operation counters (events processed /
// coalesced, flow-list scan ops, packet allocs, pool recycle rate) — the
// same columns the fig13 bench tabulates; operation counts, never wall
// time.
//
// --protocol accepts any name in the stack registry — canonical figure
// names ("PDQ(Full)", "M-PDQ", ...) or CLI aliases (pdq, pdq-basic,
// pdq-es, pdq-eset, mpdq, rcp, d3, tcp); --list-protocols prints them.
//
// Examples:
//   pdqsim --protocol pdq --topology fattree --servers 16 --flows 48
//   pdqsim --protocol tcp --pattern agg --flows 30 --deadlines
//   pdqsim --protocol mpdq --topology bcube --subflows 4
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "faults/fault_spec.h"
#include "harness/registry.h"
#include "workload/workload.h"

using namespace pdq;

namespace {

struct Args {
  std::string protocol = "pdq";
  std::string topology = "bottleneck";
  int servers = 12;
  int flows = 12;
  std::string pattern = "perm";
  std::string size_dist = "uniform";
  int mean_kb = 100;
  bool deadlines = false;
  int deadline_ms = 20;
  double arrival_rate = 0.0;
  int subflows = 3;
  std::uint64_t seed = 1;
  std::string faults = "off";
  bool csv = false;
  bool verbose = false;
  bool counters = false;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: pdqsim [--protocol P] [--list-protocols]\n"
               "              [--topology T] [--servers N]\n"
               "              [--flows N] [--pattern P] [--size-dist D]\n"
               "              [--mean-kb N] [--deadlines] [--deadline-ms N]\n"
               "              [--arrival-rate R] [--subflows K] [--seed S]\n"
               "              [--faults F] [--csv] [--verbose] [--counters]\n"
               "\n"
               "--faults F arms the fault plane with preset F:\n"
               "off|loss|burst|ctrl|flap|reset|chaos (default off,\n"
               "byte-identical to the no-fault path; anything else also\n"
               "enables the watchdog + end-of-run invariant auditor).\n"
               "\n"
               "--counters appends engine operation counters (events\n"
               "processed / coalesced, flowlist_scan_ops, packet allocs,\n"
               "recycle%%) — the fig13 counter-table columns.\n");
  std::exit(2);
}

[[noreturn]] void list_protocols() {
  const auto& registry = harness::StackRegistry::global();
  std::printf("%-12s %-32s %s\n", "name", "aliases", "description");
  for (const auto& name : registry.names()) {
    std::string aliases;
    for (const auto& a : registry.aliases_of(name)) {
      if (!aliases.empty()) aliases += ", ";
      aliases += a;
    }
    std::printf("%-12s %-32s %s\n", name.c_str(), aliases.c_str(),
                registry.describe(name).c_str());
  }
  std::printf(
      "\nEvery protocol reports engine counters (pdqsim --counters, fig13\n"
      "tables, BENCH_engine.json): events_processed, events_coalesced,\n"
      "flowlist_scan_ops, packet_allocs, recycle%% — operation counts,\n"
      "never wall time.\n");
  std::exit(0);
}

Args parse(int argc, char** argv) {
  Args a;
  auto next = [&](int& i) -> const char* {
    if (++i >= argc) usage();
    return argv[i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--protocol") a.protocol = next(i);
    else if (arg == "--topology") a.topology = next(i);
    else if (arg == "--servers") a.servers = std::atoi(next(i));
    else if (arg == "--flows") a.flows = std::atoi(next(i));
    else if (arg == "--pattern") a.pattern = next(i);
    else if (arg == "--size-dist") a.size_dist = next(i);
    else if (arg == "--mean-kb") a.mean_kb = std::atoi(next(i));
    else if (arg == "--deadlines") a.deadlines = true;
    else if (arg == "--deadline-ms") { a.deadline_ms = std::atoi(next(i)); a.deadlines = true; }
    else if (arg == "--arrival-rate") a.arrival_rate = std::atof(next(i));
    else if (arg == "--subflows") a.subflows = std::atoi(next(i));
    else if (arg == "--seed") a.seed = static_cast<std::uint64_t>(std::atoll(next(i)));
    else if (arg == "--faults") {
      a.faults = next(i);
      std::string error;
      faults::FaultSpec::preset(a.faults, &error);
      if (!error.empty()) {
        std::fprintf(stderr, "--faults: %s\n", error.c_str());
        std::exit(2);
      }
    }
    else if (arg == "--csv") a.csv = true;
    else if (arg == "--verbose") a.verbose = true;
    else if (arg == "--counters") a.counters = true;
    else if (arg == "--list-protocols") list_protocols();
    else if (arg == "--help" || arg == "-h") usage();
    else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      usage();
    }
  }
  return a;
}

harness::TopologyBuilder topology_builder(const Args& a) {
  const int n = a.servers;
  if (a.topology == "bottleneck") {
    return [n](net::Topology& t) { return net::build_single_bottleneck(t, n); };
  }
  if (a.topology == "tree") {
    const int tors = std::max(1, n / 3);
    return [tors](net::Topology& t) {
      return net::build_single_rooted_tree(t, tors, 3);
    };
  }
  if (a.topology == "fattree") {
    // Smallest even k with k^3/4 >= n.
    int k = 4;
    while (k * k * k / 4 < n) k += 2;
    return [k](net::Topology& t) { return net::build_fat_tree(t, k); };
  }
  if (a.topology == "bcube") {
    // BCube(2,k): smallest 2^(k+1) >= n.
    int k = 1;
    while ((2 << k) < n) ++k;
    return [k](net::Topology& t) { return net::build_bcube(t, 2, k); };
  }
  if (a.topology == "jellyfish") {
    const int switches = std::max(4, (n + 3) / 4);
    return [switches](net::Topology& t) {
      return net::build_jellyfish(t, switches, 8, 4, 7);
    };
  }
  std::fprintf(stderr, "unknown topology %s\n", a.topology.c_str());
  usage();
}

workload::PatternFn pattern_fn(const Args& a) {
  if (a.pattern == "agg") return workload::aggregation();
  if (a.pattern == "stride") return workload::stride(1);
  if (a.pattern == "staggered") return workload::staggered_prob(0.7, 3);
  if (a.pattern == "perm") return workload::random_permutation();
  std::fprintf(stderr, "unknown pattern %s\n", a.pattern.c_str());
  usage();
}

workload::SizeFn size_fn(const Args& a) {
  const std::int64_t mean = a.mean_kb * 1000L;
  if (a.size_dist == "uniform") {
    return workload::uniform_size(std::max<std::int64_t>(1, mean - 98'000),
                                  mean + 98'000);
  }
  if (a.size_dist == "vl2") return workload::vl2_size();
  if (a.size_dist == "edu") return workload::edu_size();
  if (a.size_dist == "pareto")
    return workload::pareto_size(1.1, std::max<std::int64_t>(1, mean / 11));
  std::fprintf(stderr, "unknown size-dist %s\n", a.size_dist.c_str());
  usage();
}

std::unique_ptr<harness::ProtocolStack> stack_for(const Args& a) {
  harness::StackOptions options;
  options.subflows = a.subflows;
  std::string error;
  auto stack =
      harness::StackRegistry::global().make(a.protocol, options, &error);
  if (stack == nullptr) {
    std::fprintf(stderr, "%s\n", error.c_str());
    std::exit(2);
  }
  return stack;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);

  // Materialize the workload against a scratch topology.
  sim::Simulator scratch_sim;
  net::Topology scratch(scratch_sim, a.seed);
  auto build = topology_builder(a);
  auto servers = build(scratch);

  sim::Rng rng(a.seed);
  workload::FlowSetOptions w;
  w.num_flows = a.flows;
  w.size = size_fn(a);
  if (a.deadlines) {
    w.deadline = workload::exp_deadline(a.deadline_ms * sim::kMillisecond);
  }
  w.pattern = pattern_fn(a);
  w.arrival_rate_per_sec = a.arrival_rate;
  auto flows = workload::make_flows(servers, w, rng);

  auto stack = stack_for(a);
  harness::RunOptions opts;
  opts.horizon = 120 * sim::kSecond;
  opts.seed = a.seed;
  opts.faults = faults::FaultSpec::preset(a.faults);
  auto r = harness::run_scenario(*stack, build, flows, opts);

  if (a.csv) {
    std::printf("flow,src,dst,size_bytes,deadline_ms,fct_ms,outcome,met\n");
    for (const auto& f : r.flows) {
      std::printf("%lld,%d,%d,%lld,%.3f,%.3f,%d,%d\n",
                  static_cast<long long>(f.spec.id), f.spec.src, f.spec.dst,
                  static_cast<long long>(f.spec.size_bytes),
                  f.spec.has_deadline() ? sim::to_millis(f.spec.deadline) : -1,
                  sim::to_millis(f.completion_time()),
                  static_cast<int>(f.outcome), f.deadline_met() ? 1 : 0);
    }
    return 0;
  }

  std::printf("pdqsim: %s on %s (%zu servers), %d flows, seed %llu\n\n",
              stack->name().c_str(), a.topology.c_str(), servers.size(),
              a.flows, static_cast<unsigned long long>(a.seed));
  if (a.verbose) {
    std::printf("%6s %6s %6s %10s %10s %10s %6s\n", "flow", "src", "dst",
                "size[KB]", "dl[ms]", "fct[ms]", "met");
    for (const auto& f : r.flows) {
      std::printf("%6lld %6d %6d %10.1f %10.1f %10.2f %6s\n",
                  static_cast<long long>(f.spec.id), f.spec.src, f.spec.dst,
                  static_cast<double>(f.spec.size_bytes) / 1000.0,
                  f.spec.has_deadline() ? sim::to_millis(f.spec.deadline) : -1,
                  sim::to_millis(f.completion_time()),
                  f.outcome != net::FlowOutcome::kCompleted ? "TERM"
                  : f.deadline_met()                        ? "yes"
                                                            : "no");
    }
    std::printf("\n");
  }
  std::printf("completed:             %zu / %zu\n", r.completed(),
              r.flows.size());
  std::printf("mean FCT:              %.3f ms\n", r.mean_fct_ms());
  std::printf("max FCT:               %.3f ms\n", r.max_fct_ms());
  if (a.deadlines) {
    std::printf("application throughput: %.1f %%\n",
                r.application_throughput());
  }
  std::printf("queue drops:           %lld\n",
              static_cast<long long>(r.queue_drops));
  if (r.audit != nullptr) {
    std::printf("audit:                 %s\n",
                r.audit->ok() ? "ok" : "FAILED (see violations above)");
  }
  if (a.counters) {
    const auto& e = r.engine;
    std::printf("\nengine counters (operation counts, never wall time):\n");
    std::printf("events processed:      %llu\n",
                static_cast<unsigned long long>(e.events_executed));
    std::printf("events coalesced:      %llu\n",
                static_cast<unsigned long long>(e.events_coalesced));
    std::printf("flowlist scan ops:     %llu\n",
                static_cast<unsigned long long>(e.flowlist_scan_ops));
    std::printf("packet allocs:         %llu\n",
                static_cast<unsigned long long>(e.packet_allocs));
    std::printf("pool recycle:          %.1f %%\n", e.recycle_percent());
  }
  return 0;
}
