// Quickstart: the paper's Fig 1 motivating example, two ways.
//
// 1. Fluid model: three flows (sizes 1,2,3 units; deadlines 1,4,6) on one
//    unit-rate link under fair sharing, SJF, and EDF.
// 2. Packet level: the same flows through the full PDQ stack on a real
//    simulated single-bottleneck network.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "harness/stacks.h"
#include "sched/fluid.h"

using namespace pdq;

namespace {

void fluid_part() {
  // 1 size unit = 1 MB; 8 Mbps link => 1 unit takes 1 second, exactly the
  // paper's normalized numbers.
  const std::int64_t u = 1'000'000;
  const double rate = 8e6;
  std::vector<sched::Job> jobs = {
      {1 * u, 0, sim::from_seconds(1.0), 0},  // fA
      {2 * u, 0, sim::from_seconds(4.0), 1},  // fB
      {3 * u, 0, sim::from_seconds(6.0), 2},  // fC
  };

  std::printf("== Fig 1: fluid schedules (completion time in 'seconds')\n");
  std::printf("%-14s %6s %6s %6s %10s %9s\n", "discipline", "fA", "fB", "fC",
              "mean FCT", "on-time");
  struct Row {
    const char* name;
    sched::Schedule s;
  };
  const Row rows[] = {
      {"fair sharing", sched::fair_sharing(jobs, rate)},
      {"SJF", sched::srpt(jobs, rate)},
      {"EDF", sched::edf(jobs, rate)},
  };
  for (const auto& row : rows) {
    std::printf("%-14s %6.2f %6.2f %6.2f %9.2fs %8.0f%%\n", row.name,
                sim::to_seconds(row.s.completion[0]),
                sim::to_seconds(row.s.completion[1]),
                sim::to_seconds(row.s.completion[2]),
                row.s.mean_fct_ms(jobs) / 1000.0, row.s.on_time_percent(jobs));
  }
  std::printf(
      "\nSJF saves %.0f%% mean FCT over fair sharing; EDF meets every "
      "deadline.\n\n",
      100.0 * (1.0 - sched::srpt(jobs, rate).mean_fct_ms(jobs) /
                         sched::fair_sharing(jobs, rate).mean_fct_ms(jobs)));
}

void packet_part() {
  std::printf("== The same three flows through packet-level PDQ (1 Gbps)\n");
  // Scale: 1 unit = 1 MB at 1 Gbps => 8 ms per unit; deadlines scale too.
  std::vector<net::FlowSpec> flows(3);
  const std::int64_t u = 1'000'000;
  const sim::Time ms8 = 8 * sim::kMillisecond;
  // Fluid deadlines (1, 4, 6 units) are exactly tight for EDF; real
  // packets pay handshake + header overhead, so give each ~8% slack.
  flows[0] = {.id = 1, .size_bytes = 1 * u, .deadline = 1 * ms8 + ms8 / 2};
  flows[1] = {.id = 2, .size_bytes = 2 * u, .deadline = 4 * ms8 + ms8 / 4};
  flows[2] = {.id = 3, .size_bytes = 3 * u, .deadline = 6 * ms8 + ms8 / 2};

  harness::PdqStack stack;
  auto build = [&](net::Topology& t) {
    auto servers = net::build_single_bottleneck(t, 3);
    for (int i = 0; i < 3; ++i) {
      flows[static_cast<std::size_t>(i)].src =
          servers[static_cast<std::size_t>(i)];
      flows[static_cast<std::size_t>(i)].dst = servers.back();
    }
    return servers;
  };
  harness::RunOptions opts;
  opts.horizon = sim::kSecond;
  auto r = harness::run_scenario(stack, build, flows, opts);

  std::printf("%-6s %10s %10s %10s %8s\n", "flow", "size", "deadline", "FCT",
              "met?");
  for (const auto& f : r.flows) {
    std::printf("f%-5lld %8.1fMB %8.1fms %8.2fms %8s\n",
                static_cast<long long>(f.spec.id),
                static_cast<double>(f.spec.size_bytes) / 1e6,
                sim::to_millis(f.spec.deadline),
                sim::to_millis(f.completion_time()),
                f.deadline_met() ? "yes" : "NO");
  }
  std::printf(
      "\nPDQ emulates the EDF/SJF schedule distributedly: flows finish\n"
      "one by one in criticality order and every deadline is met.\n");
}

}  // namespace

int main() {
  fluid_part();
  packet_part();
  return 0;
}
