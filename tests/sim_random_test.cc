#include "sim/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace pdq::sim {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 32; ++i) {
    if (a.uniform(0, 1) != b.uniform(0, 1)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformBounds) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    const double v = r.uniform(3.0, 5.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = r.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    saw_lo |= v == 1;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng r(13);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(20.0);
  EXPECT_NEAR(sum / n, 20.0, 0.3);
}

TEST(Rng, ParetoMinimumRespected) {
  Rng r(5);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GE(r.pareto(1.1, 1000.0), 1000.0);
  }
}

TEST(Rng, ParetoIsHeavyTailed) {
  Rng r(5);
  // With alpha=1.1 a sample of 100k should contain values far above the
  // minimum (the mean barely exists).
  double mx = 0;
  for (int i = 0; i < 100'000; ++i) mx = std::max(mx, r.pareto(1.1, 1.0));
  EXPECT_GT(mx, 1000.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(3);
  int heads = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) heads += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(9);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  r.shuffle(v);
  EXPECT_NE(v, orig);  // overwhelmingly likely
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace pdq::sim
