// DCell builder: structure, server-relay routing, and scale recurrence.
#include <gtest/gtest.h>

#include <set>

#include "net/builders.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace pdq::net {
namespace {

TEST(DCell, ServerCountRecurrence) {
  EXPECT_EQ(dcell_server_count(2, 0), 2);
  EXPECT_EQ(dcell_server_count(2, 1), 6);     // 2*3
  EXPECT_EQ(dcell_server_count(2, 2), 42);    // 6*7
  EXPECT_EQ(dcell_server_count(4, 0), 4);
  EXPECT_EQ(dcell_server_count(4, 1), 20);    // 4*5
  EXPECT_EQ(dcell_server_count(3, 2), 156);   // 12*13
}

TEST(DCell, Level0IsOneSwitchStar) {
  sim::Simulator s;
  Topology t(s);
  auto servers = build_dcell(t, 4, 0);
  EXPECT_EQ(servers.size(), 4u);
  EXPECT_EQ(t.switch_ids().size(), 1u);
  for (NodeId h : servers) {
    EXPECT_TRUE(t.is_host(h));
    EXPECT_EQ(t.node(h).ports().size(), 1u);
  }
}

TEST(DCell21, StructureMatchesThePaper) {
  sim::Simulator s;
  Topology t(s);
  auto servers = build_dcell(t, 2, 1);
  // DCell(2,1): 6 servers, 3 mini-switches, 6 host-switch links + 3
  // inter-cell server-server links = 9 duplex = 18 simplex links.
  EXPECT_EQ(servers.size(), 6u);
  EXPECT_EQ(t.switch_ids().size(), 3u);
  EXPECT_EQ(t.links().size(), 18u);
  // Every server has exactly 2 ports (1 switch NIC + 1 level-1 NIC).
  for (NodeId h : servers) {
    EXPECT_EQ(t.node(h).ports().size(), 2u);
  }
}

TEST(DCell21, CrossCellPathsRelayThroughServers) {
  sim::Simulator s;
  Topology t(s);
  auto servers = build_dcell(t, 2, 1);
  // servers[0] (cell 0) -> servers[5] (cell 2): must exist, and some
  // intermediate hop of any shortest path is a server acting as relay
  // unless the two are directly linked.
  const auto& paths = t.shortest_paths(servers[0], servers[5]);
  ASSERT_FALSE(paths.empty());
  for (const auto& p : paths) {
    EXPECT_EQ(p.front(), servers[0]);
    EXPECT_EQ(p.back(), servers[5]);
  }
  // All 30 ordered pairs are connected.
  for (NodeId a : servers) {
    for (NodeId b : servers) {
      if (a == b) continue;
      EXPECT_FALSE(t.shortest_paths(a, b).empty())
          << a << " -> " << b;
    }
  }
}

TEST(DCell21, InterCellLinkPatternIsTheDCellRule) {
  sim::Simulator s;
  Topology t(s);
  auto servers = build_dcell(t, 2, 1);
  // Sub-cell c holds servers[2c], servers[2c+1]. Rule: cell i server
  // (j-1) <-> cell j server i for i < j.
  const std::set<std::pair<NodeId, NodeId>> expected = {
      {servers[0 * 2 + 0], servers[1 * 2 + 0]},  // (0,0)-(1,0)
      {servers[0 * 2 + 1], servers[2 * 2 + 0]},  // (0,1)-(2,0)
      {servers[1 * 2 + 1], servers[2 * 2 + 1]},  // (1,1)-(2,1)
  };
  for (const auto& [a, b] : expected) {
    EXPECT_NE(t.node(a).port_to(b), nullptr)
        << "missing level-1 link " << a << " <-> " << b;
  }
}

TEST(DCell, EndToEndDeliveryAcrossCells) {
  sim::Simulator simulator;
  Topology t(simulator);
  auto servers = build_dcell(t, 2, 1);

  class Sink : public Agent {
   public:
    void on_packet(const PacketPtr&) override { ++delivered; }
    int delivered = 0;
  };
  Sink sink;
  t.host(servers[5]).attach_receiver(1, &sink);
  PacketPtr p = make_packet();
  p->flow = 1;
  p->src = servers[0];
  p->dst = servers[5];
  p->path = t.ecmp_route(1, servers[0], servers[5]);
  p->payload = 1460;
  p->size_bytes = 1500;
  t.host(servers[0]).send(std::move(p));
  simulator.run();
  EXPECT_EQ(sink.delivered, 1);
}

}  // namespace
}  // namespace pdq::net
