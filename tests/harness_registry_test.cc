// StackRegistry: round-trips, aliases, config overrides, error paths.
#include "harness/registry.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "harness/stacks.h"

namespace pdq::harness {
namespace {

const char* kCanonical[] = {"PDQ(Full)", "PDQ(ES+ET)", "PDQ(ES)",
                            "PDQ(Basic)", "D3",         "RCP",
                            "TCP",        "M-PDQ",      "DCTCP"};

TEST(StackRegistry, RoundTripsAllSevenPaperNamesPlusMpdq) {
  auto& r = StackRegistry::global();
  for (const char* name : kCanonical) {
    std::string error;
    auto stack = r.make(name, {}, &error);
    ASSERT_NE(stack, nullptr) << error;
    EXPECT_EQ(stack->name(), name);
  }
}

TEST(StackRegistry, NamesPreserveRegistrationOrder) {
  const auto names = StackRegistry::global().names();
  ASSERT_EQ(names.size(), 9u);
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(names[i], kCanonical[i]);
  }
}

TEST(StackRegistry, UnknownNameReturnsErrorListingAvailableStacks) {
  std::string error;
  auto stack = StackRegistry::global().make("NotAProtocol", {}, &error);
  EXPECT_EQ(stack, nullptr);
  EXPECT_NE(error.find("NotAProtocol"), std::string::npos);
  for (const char* name : kCanonical) {
    EXPECT_NE(error.find(name), std::string::npos)
        << "error should list " << name << ": " << error;
  }
}

TEST(StackRegistry, NullErrorPointerIsSafe) {
  EXPECT_EQ(StackRegistry::global().make("NotAProtocol"), nullptr);
}

TEST(StackRegistry, CliAliasesResolveToCanonicalStacks) {
  auto& r = StackRegistry::global();
  const std::pair<const char*, const char*> cases[] = {
      {"pdq", "PDQ(Full)"},   {"pdq-full", "PDQ(Full)"},
      {"pdq-eset", "PDQ(ES+ET)"}, {"pdq-es", "PDQ(ES)"},
      {"pdq-basic", "PDQ(Basic)"}, {"d3", "D3"},
      {"rcp", "RCP"},         {"tcp", "TCP"},
      {"mpdq", "M-PDQ"},      {"dctcp", "DCTCP"}};
  for (const auto& [alias, canonical] : cases) {
    EXPECT_EQ(r.resolve(alias), canonical);
    auto stack = r.make(alias);
    ASSERT_NE(stack, nullptr) << alias;
    EXPECT_EQ(stack->name(), canonical);
  }
  EXPECT_EQ(r.resolve("bogus"), "");
}

TEST(StackRegistry, SubflowOverrideReachesMpdq) {
  StackOptions options;
  options.subflows = 5;
  auto stack = StackRegistry::global().make("mpdq", options);
  ASSERT_NE(stack, nullptr);
  EXPECT_EQ(stack->subflows(), 5);
  // Default stays at the MpdqConfig default.
  auto dflt = StackRegistry::global().make("mpdq");
  EXPECT_EQ(dflt->subflows(), core::MpdqConfig{}.num_subflows);
}

TEST(StackRegistry, DctcpConfigAndLabelOverridesApply) {
  StackOptions options;
  protocols::DctcpConfig cfg;
  cfg.g = 0.25;
  cfg.mq.num_queues = 4;
  cfg.mq.ecn = net::EcnScheme::kMqEcn;
  options.dctcp = cfg;
  options.label = "DCTCP(MQ4)";
  auto stack = StackRegistry::global().make("dctcp", options);
  ASSERT_NE(stack, nullptr);
  EXPECT_EQ(stack->name(), "DCTCP(MQ4)");
  auto* dctcp = dynamic_cast<DctcpStack*>(stack.get());
  ASSERT_NE(dctcp, nullptr);
  EXPECT_EQ(dctcp->config().g, 0.25);
  EXPECT_EQ(dctcp->config().mq.num_queues, 4);
  // Defaults: canonical DCTCP — one queue, standard marking at 30 KB.
  auto dflt = StackRegistry::global().make("DCTCP");
  auto* d = dynamic_cast<DctcpStack*>(dflt.get());
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->config().mq.num_queues, 1);
  EXPECT_EQ(d->config().mq.ecn, net::EcnScheme::kPerQueue);
  EXPECT_EQ(d->config().mq.ecn_threshold_bytes, 30'000);
}

TEST(StackRegistry, PdqConfigAndLabelOverridesApply) {
  StackOptions options;
  core::PdqConfig cfg = core::PdqConfig::full();
  cfg.criticality = core::CriticalityMode::kEstimation;
  options.pdq = cfg;
  options.label = "PDQ estimate";
  auto stack = StackRegistry::global().make("PDQ(Full)", options);
  ASSERT_NE(stack, nullptr);
  EXPECT_EQ(stack->name(), "PDQ estimate");
  auto* pdq = dynamic_cast<PdqStack*>(stack.get());
  ASSERT_NE(pdq, nullptr);
  EXPECT_EQ(pdq->config().criticality, core::CriticalityMode::kEstimation);
}

TEST(StackRegistry, DescriptionsAndAliasListsAreExposed) {
  auto& r = StackRegistry::global();
  EXPECT_FALSE(r.describe("PDQ(Full)").empty());
  EXPECT_EQ(r.describe("pdq"), r.describe("PDQ(Full)"));
  const auto aliases = r.aliases_of("PDQ(Full)");
  EXPECT_NE(std::find(aliases.begin(), aliases.end(), "pdq"), aliases.end());
}

TEST(StackRegistry, RuntimeRegistrationAndReplacement) {
  StackRegistry local;  // isolated instance; global() stays untouched
  int calls = 0;
  local.add("Custom", "test stack", [&calls](const StackOptions&) {
    ++calls;
    return std::make_unique<TcpStack>();
  });
  EXPECT_TRUE(local.contains("Custom"));
  EXPECT_NE(local.make("Custom"), nullptr);
  EXPECT_EQ(calls, 1);
  // Re-registering replaces in place.
  local.add("Custom", "v2", [](const StackOptions&) {
    return std::make_unique<RcpStack>();
  });
  ASSERT_EQ(local.names().size(), 1u);
  EXPECT_EQ(local.describe("Custom"), "v2");
  EXPECT_EQ(local.make("Custom")->name(), "RCP");
}

}  // namespace
}  // namespace pdq::harness
