#include "net/small_vec.h"

#include <gtest/gtest.h>

#include <utility>

namespace pdq::net {
namespace {

using Vec = SmallVec<double, 4>;

TEST(SmallVec, PushAndIndex) {
  Vec v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 4; ++i) v.push_back(i * 1.5);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
  EXPECT_DOUBLE_EQ(v.back(), 4.5);
  EXPECT_EQ(v.capacity(), 4u);  // still inline
}

TEST(SmallVec, SpillsToHeapBeyondInlineCapacity) {
  Vec v;
  for (int i = 0; i < 20; ++i) v.push_back(static_cast<double>(i));
  EXPECT_EQ(v.size(), 20u);
  EXPECT_GE(v.capacity(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVec, CopyAssignBothDirections) {
  Vec small;
  small.push_back(1.0);
  Vec big;
  for (int i = 0; i < 10; ++i) big.push_back(static_cast<double>(i));

  Vec v = big;  // heap -> fresh
  EXPECT_EQ(v.size(), 10u);
  EXPECT_DOUBLE_EQ(v[9], 9.0);
  v = small;  // shrink; keeps working
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  v = big;  // regrow
  EXPECT_EQ(v.size(), 10u);
  EXPECT_TRUE(v == big);
  EXPECT_FALSE(v == small);
}

TEST(SmallVec, SelfAssignIsNoop) {
  Vec v;
  v.push_back(2.5);
  v = *&v;
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 2.5);
}

TEST(SmallVec, MoveStealsHeapBuffer) {
  Vec big;
  for (int i = 0; i < 10; ++i) big.push_back(static_cast<double>(i));
  const double* data_before = big.begin();
  Vec moved = std::move(big);
  EXPECT_EQ(moved.begin(), data_before);  // pointer stolen, not copied
  EXPECT_EQ(moved.size(), 10u);
  EXPECT_EQ(big.size(), 0u);  // NOLINT(bugprone-use-after-move)
}

TEST(SmallVec, ClearKeepsCapacityForReuse) {
  Vec v;
  for (int i = 0; i < 10; ++i) v.push_back(static_cast<double>(i));
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);  // pooled packets reuse the spill buffer
  v.push_back(7.0);
  EXPECT_DOUBLE_EQ(v[0], 7.0);
}

TEST(SmallVec, RangeForIteratesInOrder) {
  Vec v;
  for (int i = 0; i < 6; ++i) v.push_back(static_cast<double>(i));
  double sum = 0;
  for (double x : v) sum += x;
  EXPECT_DOUBLE_EQ(sum, 15.0);
}

}  // namespace
}  // namespace pdq::net
