// PDQ sender/receiver behaviour: header decoration, Early Termination,
// probing, criticality modes, aging.
#include "core/pdq_agent.h"

#include <gtest/gtest.h>

#include "core/pdq_switch.h"
#include "net/builders.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace pdq::core {
namespace {

struct PdqRig {
  sim::Simulator simulator;
  net::Topology topo{simulator};
  std::vector<net::NodeId> servers;
  std::unique_ptr<PdqSender> sender;
  std::unique_ptr<PdqReceiver> receiver;
  bool done = false;
  net::FlowResult result;

  PdqRig(const PdqConfig& cfg, std::int64_t size,
         sim::Time deadline = sim::kTimeInfinity, bool with_switch_pdq = true,
         sim::Time start_time = 0) {
    servers = net::build_single_bottleneck(topo, 1);
    if (with_switch_pdq) install_pdq(topo, cfg);
    net::FlowSpec f;
    f.id = 1;
    f.src = servers[0];
    f.dst = servers[1];
    f.size_bytes = size;
    f.deadline = deadline;
    f.start_time = start_time;

    net::AgentContext rctx;
    rctx.topo = &topo;
    rctx.local = &topo.host(f.dst);
    rctx.spec = f;
    receiver = std::make_unique<PdqReceiver>(std::move(rctx));
    topo.host(f.dst).attach_receiver(f.id, receiver.get());

    net::AgentContext sctx;
    sctx.topo = &topo;
    sctx.local = &topo.host(f.src);
    sctx.spec = f;
    sctx.route = topo.ecmp_route(f.id, f.src, f.dst);
    sctx.on_done = [this](const net::FlowResult& r) {
      done = true;
      result = r;
    };
    sender = std::make_unique<PdqSender>(std::move(sctx), cfg);
    topo.host(f.src).attach_sender(f.id, sender.get());
  }

  void run(sim::Time horizon = sim::kSecond) {
    simulator.schedule_at(sender->result().spec.start_time,
                          [&] { sender->start(); });
    simulator.run(horizon);
  }
};

TEST(PdqSender, AdvertisesMaxRateAndExpectedTx) {
  PdqRig rig(PdqConfig::full(), 1'000'000);
  net::Packet p;
  p.type = net::PacketType::kSyn;
  // decorate is protected; observe via a real run instead: after start,
  // the switch list holds T ~= size/NIC = 8 ms.
  rig.run(sim::kMillisecond);
  auto* ctl = static_cast<PdqLinkController*>(
      rig.topo.port_on_link(rig.topo.switch_ids()[0], rig.servers[1])
          ->controller());
  ASSERT_FALSE(ctl->flow_list().empty());
  EXPECT_NEAR(sim::to_millis(ctl->flow_list()[0].expected_tx), 8.0, 1.0);
}

TEST(PdqSender, CompletesFlow) {
  PdqRig rig(PdqConfig::full(), 250'000);
  rig.run();
  EXPECT_TRUE(rig.done);
  EXPECT_EQ(rig.result.outcome, net::FlowOutcome::kCompleted);
  // 250 KB at ~1 Gbps plus 2-RTT init: ~2.3 ms.
  EXPECT_LT(sim::to_millis(rig.result.completion_time()), 4.0);
}

TEST(PdqSender, EarlyTerminationWhenSizeExceedsDeadlineBudget) {
  // 10 MB against a 3 ms deadline cannot finish even at line rate; ET
  // must kill it at flow start, not at the deadline.
  PdqRig rig(PdqConfig::full(), 10'000'000, 3 * sim::kMillisecond);
  rig.run();
  EXPECT_TRUE(rig.done);
  EXPECT_EQ(rig.result.outcome, net::FlowOutcome::kTerminated);
  EXPECT_LT(rig.result.finish_time, 3 * sim::kMillisecond);
}

TEST(PdqSender, NoEarlyTerminationInBasicMode) {
  PdqRig rig(PdqConfig::basic(), 10'000'000, 3 * sim::kMillisecond);
  rig.run();
  EXPECT_TRUE(rig.done);
  // Without ET the flow simply runs past its deadline and completes.
  EXPECT_EQ(rig.result.outcome, net::FlowOutcome::kCompleted);
  EXPECT_FALSE(rig.result.deadline_met());
}

TEST(PdqSender, DeadlineFlowThatFitsIsNotTerminated) {
  PdqRig rig(PdqConfig::full(), 100'000, 20 * sim::kMillisecond);
  rig.run();
  EXPECT_EQ(rig.result.outcome, net::FlowOutcome::kCompleted);
  EXPECT_TRUE(rig.result.deadline_met());
}

TEST(PdqSender, RandomCriticalityIsStable) {
  PdqConfig cfg = PdqConfig::full();
  cfg.criticality = CriticalityMode::kRandom;
  PdqRig rig(cfg, 500'000);
  const auto t1 = rig.sender->advertised_tx_time();
  const auto t2 = rig.sender->advertised_tx_time();
  EXPECT_EQ(t1, t2);
  EXPECT_GT(t1, 0);
  // Random mode hides the deadline too.
  EXPECT_EQ(rig.sender->advertised_deadline(), sim::kTimeInfinity);
}

TEST(PdqSender, EstimationModeGrowsWithBytesSent) {
  PdqConfig cfg = PdqConfig::full();
  cfg.criticality = CriticalityMode::kEstimation;
  PdqRig rig(cfg, 500'000);
  const auto at_start = rig.sender->advertised_tx_time();
  // First bucket: 50 KB at 1 Gbps = 0.4 ms.
  EXPECT_NEAR(sim::to_micros(at_start), 400, 1);
  rig.run(2 * sim::kMillisecond);  // ~250 KB sent by now
  const auto later = rig.sender->advertised_tx_time();
  EXPECT_GT(later, at_start);
}

TEST(PdqSender, AgingRaisesCriticalityOverTime) {
  PdqConfig cfg = PdqConfig::full();
  cfg.aging_alpha = 1.0;  // halve T every 100 ms of waiting
  PdqRig rig(cfg, 1'000'000);
  rig.simulator.schedule_at(0, [&] { rig.sender->start(); });
  // Sample right after start, then pretend the flow has been waiting by
  // back-dating its start time (the advertised T divides by 2^(alpha*t)).
  rig.simulator.run(sim::kMicrosecond);
  const auto t0 = rig.sender->advertised_tx_time();
  rig.simulator.run(100 * sim::kMicrosecond);
  const auto t1 = rig.sender->advertised_tx_time();
  // 100 us of waiting is 1e-3 aging units: factor ~2^0.001, nearly 1; but
  // progress also shrinks T. Both effects only ever *reduce* T.
  EXPECT_LE(t1, t0);
  // Direct formula check across a large waiting gap: a flow that started
  // 200 ms in the "past" advertises ~4x less.
  PdqRig waited(cfg, 1'000'000);
  PdqRig fresh(PdqConfig::full(), 1'000'000);
  waited.simulator.schedule_at(0, [&] { waited.sender->start(); });
  fresh.simulator.schedule_at(0, [&] { fresh.sender->start(); });
  // Freeze both right after the SYN (before any byte is acknowledged).
  waited.simulator.run(1);
  fresh.simulator.run(1);
  // Advance the waited rig's clock without letting the flow send: the
  // sender has no rate yet (no SYN-ACK processed at t=1ns).
  const auto base = fresh.sender->advertised_tx_time();
  const auto same = waited.sender->advertised_tx_time();
  // Identical at t~0 regardless of aging config (up to 2^(alpha*1ns)
  // truncation, i.e. one nanosecond).
  EXPECT_NEAR(static_cast<double>(base), static_cast<double>(same), 1.5);
}

TEST(PdqReceiver, ClampsGrantToReceiverRate) {
  sim::Simulator simulator;
  net::Topology topo(simulator);
  auto servers = net::build_single_bottleneck(topo, 1);
  net::FlowSpec f;
  f.id = 1;
  f.src = servers[0];
  f.dst = servers[1];
  f.size_bytes = 1000;
  net::AgentContext rctx;
  rctx.topo = &topo;
  rctx.local = &topo.host(f.dst);
  rctx.spec = f;

  struct TestReceiver : PdqReceiver {
    using PdqReceiver::decorate_reply;
    using PdqReceiver::PdqReceiver;
  };
  TestReceiver recv(std::move(rctx), /*receive_rate_bps=*/3e8);

  net::Packet data;
  data.pdq.rate_bps = 1e9;
  net::Packet reply = data;
  recv.decorate_reply(reply, data);
  EXPECT_DOUBLE_EQ(reply.pdq.rate_bps, 3e8);

  // A grant below the receiver rate passes through untouched.
  net::Packet small;
  small.pdq.rate_bps = 1e8;
  net::Packet reply2 = small;
  recv.decorate_reply(reply2, small);
  EXPECT_DOUBLE_EQ(reply2.pdq.rate_bps, 1e8);
}

TEST(PdqEndToEnd, ReceiverRateCapsThroughput) {
  // End-to-end: a receiver limited to 300 Mbps forces a ~27 ms completion
  // for 1 MB instead of ~8.5 ms.
  sim::Simulator simulator;
  net::Topology topo(simulator);
  auto servers = net::build_single_bottleneck(topo, 1);
  install_pdq(topo, PdqConfig::full());
  net::FlowSpec f;
  f.id = 1;
  f.src = servers[0];
  f.dst = servers[1];
  f.size_bytes = 1'000'000;

  net::AgentContext rctx;
  rctx.topo = &topo;
  rctx.local = &topo.host(f.dst);
  rctx.spec = f;
  auto recv = std::make_unique<PdqReceiver>(std::move(rctx), 3e8);
  topo.host(f.dst).attach_receiver(f.id, recv.get());

  net::AgentContext sctx;
  sctx.topo = &topo;
  sctx.local = &topo.host(f.src);
  sctx.spec = f;
  sctx.route = topo.ecmp_route(f.id, f.src, f.dst);
  bool done = false;
  net::FlowResult result;
  sctx.on_done = [&](const net::FlowResult& r) {
    done = true;
    result = r;
  };
  auto snd = std::make_unique<PdqSender>(std::move(sctx), PdqConfig::full());
  topo.host(f.src).attach_sender(f.id, snd.get());
  simulator.schedule_at(0, [&] { snd->start(); });
  simulator.run(sim::kSecond);
  ASSERT_TRUE(done);
  EXPECT_GT(sim::to_millis(result.completion_time()), 25.0);
}

}  // namespace
}  // namespace pdq::core
