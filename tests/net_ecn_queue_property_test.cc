// Property test for MultiQueuePort (net/multi_queue.h): accept/drop
// decisions, ECN marking decisions, service (pop) order and occupancy
// counters must agree *bit-for-bit* with a naive model that
// transliterates the documented semantics — per-class FIFO deques, a
// shared byte budget, enqueue-time marking on the backlog including the
// arriving packet, and WRR/DWRR service with first-backlogged ring
// order — under randomized push/pop sequences across every
// (service, ecn-scheme) combination. A separate suite pins the
// num_queues == 1 degenerate case to DropTailQueue exactly.
#include "net/multi_queue.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "net/packet.h"
#include "net/queue.h"

namespace pdq::net {
namespace {

/// Same SplitMix64 finalizer as multi_queue.cc / the topology's ECMP
/// hash — the default classifier the model must reproduce.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// What the model tracks per packet — enough to check identity (flow,
/// seq), marking, and byte accounting against the real port's output.
struct ModelPacket {
  FlowId flow = kInvalidFlow;
  std::int64_t seq = 0;
  std::int32_t size = 0;
  bool ect = false;
  bool marked = false;
};

/// The naive model: a direct transliteration of the header-comment
/// semantics, with none of the port's incremental state (no cached
/// totals — everything recomputed from the deques on demand).
class NaiveModel {
 public:
  NaiveModel(const MultiQueueConfig& cfg, std::int64_t capacity)
      : cfg_(cfg), capacity_(capacity) {
    queues_.resize(static_cast<std::size_t>(cfg.num_queues));
    weights_.assign(static_cast<std::size_t>(cfg.num_queues), 1);
    for (std::size_t q = 0;
         q < std::min(weights_.size(), cfg.weights.size()); ++q) {
      weights_[q] = std::max(1, cfg.weights[q]);
    }
    deficit_.assign(queues_.size(), 0);
    credit_.assign(queues_.size(), 0);
    fresh_.assign(queues_.size(), true);
  }

  std::int64_t total_bytes() const {
    std::int64_t b = 0;
    for (const auto& q : queues_)
      for (const auto& p : q) b += p.size;
    return b;
  }
  std::size_t total_packets() const {
    std::size_t n = 0;
    for (const auto& q : queues_) n += q.size();
    return n;
  }
  std::int64_t queue_bytes(std::size_t q) const {
    std::int64_t b = 0;
    for (const auto& p : queues_[q]) b += p.size;
    return b;
  }
  std::int64_t drops() const { return drops_; }
  std::int64_t marks() const { return marks_; }

  int classify(FlowId flow) const {
    return static_cast<int>(mix64(static_cast<std::uint64_t>(flow)) %
                            queues_.size());
  }

  /// Returns whether the packet was accepted; fills `marked`.
  bool push(ModelPacket p, bool* marked) {
    *marked = false;
    if (total_bytes() + p.size > capacity_) {
      ++drops_;
      return false;
    }
    const auto q = static_cast<std::size_t>(classify(p.flow));
    if (p.ect && cfg_.ecn != EcnScheme::kNone) {
      const auto K = static_cast<double>(cfg_.ecn_threshold_bytes);
      const double backlog = static_cast<double>(queue_bytes(q) + p.size);
      switch (cfg_.ecn) {
        case EcnScheme::kPerQueue:
          *marked = backlog > K;
          break;
        case EcnScheme::kPerPort:
          *marked = static_cast<double>(total_bytes() + p.size) > K;
          break;
        case EcnScheme::kMqEcn: {
          std::int64_t active_weight = 0;
          for (std::size_t i = 0; i < queues_.size(); ++i) {
            if (!queues_[i].empty() || i == q) active_weight += weights_[i];
          }
          const double share = static_cast<double>(weights_[q]) /
                               static_cast<double>(active_weight);
          *marked = backlog > K * share;
          break;
        }
        case EcnScheme::kNone:
          break;
      }
    }
    p.marked = *marked;
    if (p.marked) ++marks_;
    if (queues_[q].empty()) ring_.push_back(static_cast<int>(q));
    queues_[q].push_back(p);
    return true;
  }

  ModelPacket pop() {
    for (;;) {
      const auto qi = static_cast<std::size_t>(ring_.front());
      auto& q = queues_[qi];
      if (cfg_.service == MqService::kWrr) {
        if (fresh_[qi]) {
          credit_[qi] = weights_[qi];
          fresh_[qi] = false;
        }
        ModelPacket p = q.front();
        q.pop_front();
        --credit_[qi];
        if (q.empty()) {
          ring_.erase(ring_.begin());
          fresh_[qi] = true;
        } else if (credit_[qi] == 0) {
          ring_.erase(ring_.begin());
          ring_.push_back(static_cast<int>(qi));
          fresh_[qi] = true;
        }
        return p;
      }
      if (fresh_[qi]) {
        deficit_[qi] += cfg_.quantum_bytes * weights_[qi];
        fresh_[qi] = false;
      }
      if (q.front().size <= deficit_[qi]) {
        ModelPacket p = q.front();
        q.pop_front();
        deficit_[qi] -= p.size;
        if (q.empty()) {
          ring_.erase(ring_.begin());
          deficit_[qi] = 0;
          fresh_[qi] = true;
        }
        return p;
      }
      ring_.erase(ring_.begin());
      ring_.push_back(static_cast<int>(qi));
      fresh_[qi] = true;
    }
  }

 private:
  MultiQueueConfig cfg_;
  std::int64_t capacity_;
  std::vector<std::deque<ModelPacket>> queues_;
  std::vector<int> weights_;
  std::vector<std::int64_t> deficit_;
  std::vector<int> credit_;
  std::vector<bool> fresh_;
  std::vector<int> ring_;
  std::int64_t drops_ = 0;
  std::int64_t marks_ = 0;
};

constexpr std::int64_t kCapacity = 20'000;

PacketPtr make_test_packet(FlowId flow, std::int64_t seq, std::int32_t size,
                           bool ect) {
  PacketPtr p = make_packet();
  p->flow = flow;
  p->seq = seq;
  p->size_bytes = size;
  p->ecn_capable = ect;
  return p;
}

/// Drives `steps` randomized operations (push-biased so queues build
/// real backlog) against both implementations and asserts bit-equality
/// of every externally observable decision.
void run_random_ops(const MultiQueueConfig& cfg, std::uint64_t seed,
                    int steps) {
  MultiQueuePort port(cfg, kCapacity);
  NaiveModel model(cfg, kCapacity);

  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pct(0, 99);
  std::uniform_int_distribution<FlowId> flow(1, 12);
  std::uniform_int_distribution<std::int32_t> size(40, 1500);
  std::int64_t next_seq = 0;

  for (int step = 0; step < steps; ++step) {
    if (pct(rng) < 65 || port.empty()) {
      // push
      const FlowId f = flow(rng);
      const std::int32_t sz = size(rng);
      const bool ect = pct(rng) < 80;  // mix ECT and non-ECT traffic
      PacketPtr p = make_test_packet(f, next_seq, sz, ect);

      ModelPacket mp;
      mp.flow = f;
      mp.seq = next_seq;
      mp.size = sz;
      mp.ect = ect;
      ++next_seq;

      bool model_marked = false;
      const bool model_accepted = model.push(mp, &model_marked);
      const bool accepted = port.push(std::move(p));
      ASSERT_EQ(accepted, model_accepted) << "step " << step;
    } else {
      // pop: identity, CE bit, and the classifier agree per packet
      const ModelPacket want = model.pop();
      PacketPtr got = port.pop();
      ASSERT_EQ(got->flow, want.flow) << "step " << step;
      ASSERT_EQ(got->seq, want.seq) << "step " << step;
      ASSERT_EQ(got->size_bytes, want.size) << "step " << step;
      ASSERT_EQ(got->ecn_ce, want.marked) << "step " << step;
      ASSERT_EQ(port.classify(*got), model.classify(got->flow));
    }
    // occupancy + counters after every operation
    ASSERT_EQ(port.bytes(), model.total_bytes()) << "step " << step;
    ASSERT_EQ(port.packets(), model.total_packets()) << "step " << step;
    ASSERT_EQ(port.drops(), model.drops()) << "step " << step;
    ASSERT_EQ(port.ecn_marks(), model.marks()) << "step " << step;
    ASSERT_EQ(port.empty(), model.total_packets() == 0);
    for (int q = 0; q < port.num_queues(); ++q) {
      ASSERT_EQ(port.queue_bytes(q),
                model.queue_bytes(static_cast<std::size_t>(q)))
          << "step " << step << " queue " << q;
    }
  }
  // Drain: the full residual service order must match too.
  while (!port.empty()) {
    const ModelPacket want = model.pop();
    PacketPtr got = port.pop();
    ASSERT_EQ(got->flow, want.flow);
    ASSERT_EQ(got->seq, want.seq);
    ASSERT_EQ(got->ecn_ce, want.marked);
  }
  EXPECT_EQ(model.total_packets(), 0u);
}

MultiQueueConfig make_cfg(int queues, MqService service, EcnScheme ecn,
                          std::vector<int> weights = {}) {
  MultiQueueConfig cfg;
  cfg.num_queues = queues;
  cfg.service = service;
  cfg.ecn = ecn;
  cfg.ecn_threshold_bytes = 6'000;  // small K so marking actually fires
  cfg.weights = std::move(weights);
  return cfg;
}

TEST(EcnQueueProperty, DwrrPerQueueMarkingMatchesModel) {
  run_random_ops(make_cfg(4, MqService::kDwrr, EcnScheme::kPerQueue,
                          {3, 1, 2, 1}),
                 0xD1CE, 4000);
}

TEST(EcnQueueProperty, DwrrPerPortMarkingMatchesModel) {
  run_random_ops(make_cfg(3, MqService::kDwrr, EcnScheme::kPerPort), 0xB0A7,
                 4000);
}

TEST(EcnQueueProperty, DwrrMqEcnMatchesModel) {
  run_random_ops(make_cfg(4, MqService::kDwrr, EcnScheme::kMqEcn,
                          {2, 1, 1, 4}),
                 0xF00D, 4000);
}

TEST(EcnQueueProperty, WrrPerQueueMarkingMatchesModel) {
  run_random_ops(make_cfg(4, MqService::kWrr, EcnScheme::kPerQueue,
                          {1, 3, 1, 2}),
                 0xCAFE, 4000);
}

TEST(EcnQueueProperty, WrrMqEcnMatchesModel) {
  run_random_ops(make_cfg(2, MqService::kWrr, EcnScheme::kMqEcn, {5, 1}),
                 0xBEEF, 4000);
}

TEST(EcnQueueProperty, NoMarkingPureSchedulingMatchesModel) {
  run_random_ops(make_cfg(5, MqService::kDwrr, EcnScheme::kNone,
                          {1, 1, 7, 2, 3}),
                 0xABBA, 4000);
}

TEST(EcnQueueProperty, TinyQuantumForcesMultiRoundDwrrTurns) {
  // quantum < min packet size: a queue may need several fresh rounds to
  // accumulate enough deficit for one packet — the rotate-with-residual
  // path runs constantly.
  MultiQueueConfig cfg =
      make_cfg(3, MqService::kDwrr, EcnScheme::kPerQueue, {1, 2, 1});
  cfg.quantum_bytes = 25;
  run_random_ops(cfg, 0x5EED, 3000);
}

// --- degenerate case: one queue, no marking == DropTailQueue ---

TEST(EcnQueueProperty, SingleQueueNoMarkingEqualsDropTailBitForBit) {
  MultiQueueConfig cfg;  // num_queues = 1, ecn = kNone
  MultiQueuePort port(cfg, kCapacity);
  DropTailQueue fifo(kCapacity);

  std::mt19937_64 rng(0x0DD1);
  std::uniform_int_distribution<int> pct(0, 99);
  std::uniform_int_distribution<std::int32_t> size(40, 1500);
  std::int64_t next_seq = 0;

  for (int step = 0; step < 4000; ++step) {
    if (pct(rng) < 60 || port.empty()) {
      const std::int32_t sz = size(rng);
      PacketPtr a = make_test_packet(7, next_seq, sz, true);
      PacketPtr b = make_test_packet(7, next_seq, sz, true);
      ++next_seq;
      ASSERT_EQ(port.push(std::move(a)), fifo.push(std::move(b)));
    } else {
      PacketPtr a = port.pop();
      PacketPtr b = fifo.pop();
      ASSERT_EQ(a->seq, b->seq);
      ASSERT_FALSE(a->ecn_ce);  // kNone never marks, even ECT packets
    }
    ASSERT_EQ(port.bytes(), fifo.bytes());
    ASSERT_EQ(port.packets(), fifo.packets());
    ASSERT_EQ(port.drops(), fifo.drops());
    ASSERT_EQ(port.empty(), fifo.empty());
  }
  EXPECT_EQ(port.ecn_marks(), 0);
}

// --- targeted semantics pins (deterministic, no randomness) ---

TEST(EcnQueueProperty, NonEctPacketsAreNeverMarked) {
  MultiQueueConfig cfg =
      make_cfg(1, MqService::kDwrr, EcnScheme::kPerQueue);
  cfg.ecn_threshold_bytes = 100;  // everything is above K
  MultiQueuePort port(cfg, kCapacity);
  ASSERT_TRUE(port.push(make_test_packet(1, 0, 1000, /*ect=*/false)));
  ASSERT_TRUE(port.push(make_test_packet(1, 1, 1000, /*ect=*/true)));
  EXPECT_EQ(port.ecn_marks(), 1);
  EXPECT_FALSE(port.pop()->ecn_ce);
  EXPECT_TRUE(port.pop()->ecn_ce);
}

TEST(EcnQueueProperty, MarkingIsDecidedAfterAdmission) {
  // A dropped packet must not count as a mark.
  MultiQueueConfig cfg =
      make_cfg(1, MqService::kDwrr, EcnScheme::kPerQueue);
  cfg.ecn_threshold_bytes = 100;
  MultiQueuePort port(cfg, /*default_capacity=*/1500);
  ASSERT_TRUE(port.push(make_test_packet(1, 0, 1000, true)));
  ASSERT_FALSE(port.push(make_test_packet(1, 1, 1000, true)));  // over budget
  EXPECT_EQ(port.drops(), 1);
  EXPECT_EQ(port.dropped_bytes(), 1000);
  EXPECT_EQ(port.ecn_marks(), 1);  // only the admitted packet
}

TEST(EcnQueueProperty, CapacityZeroAdoptsDefaultAndConfigIsExposed) {
  MultiQueueConfig cfg = make_cfg(2, MqService::kWrr, EcnScheme::kMqEcn,
                                  {4});  // short vector pads with 1
  MultiQueuePort port(cfg, /*default_capacity=*/77'000);
  EXPECT_EQ(port.capacity(), 77'000);
  EXPECT_EQ(port.num_queues(), 2);
  EXPECT_EQ(port.weight(0), 4);
  EXPECT_EQ(port.weight(1), 1);
  EXPECT_EQ(port.config().ecn, EcnScheme::kMqEcn);

  cfg.capacity_bytes = 5'000;  // explicit budget wins over the default
  MultiQueuePort sized(cfg, 77'000);
  EXPECT_EQ(sized.capacity(), 5'000);
}

TEST(EcnQueueProperty, CustomClassifierIsClampedIntoRange) {
  MultiQueueConfig cfg = make_cfg(3, MqService::kDwrr, EcnScheme::kNone);
  cfg.classify = [](const Packet& p) {
    return static_cast<int>(p.flow);  // deliberately out of range
  };
  MultiQueuePort port(cfg, kCapacity);
  Packet probe;
  probe.flow = 99;
  EXPECT_EQ(port.classify(probe), 2);  // clamped to num_queues - 1
  probe.flow = static_cast<FlowId>(-5);
  EXPECT_EQ(port.classify(probe), 0);
}

TEST(EcnQueueProperty, DwrrBytesServedTrackWeightsUnderSaturation) {
  // With both queues permanently backlogged and equal packet sizes,
  // long-run service must split bytes by weight (3:1 here).
  MultiQueueConfig cfg = make_cfg(2, MqService::kDwrr, EcnScheme::kNone,
                                  {3, 1});
  cfg.classify = [](const Packet& p) { return static_cast<int>(p.flow); };
  MultiQueuePort port(cfg, /*default_capacity=*/1'000'000);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(port.push(make_test_packet(0, i, 1000, false)));
    ASSERT_TRUE(port.push(make_test_packet(1, i, 1000, false)));
  }
  std::int64_t served[2] = {0, 0};
  for (int i = 0; i < 200; ++i) {
    PacketPtr p = port.pop();
    served[p->flow] += p->size_bytes;
  }
  // 3:1 weights -> 150'000 vs 50'000 of the 200'000 served bytes, up to
  // one packet of residual-deficit skew when the 200th pop lands
  // mid-round (Shreedhar-Varghese bounds the error by one max packet).
  EXPECT_NEAR(static_cast<double>(served[0]), 150'000, 1000);
  EXPECT_NEAR(static_cast<double>(served[1]), 50'000, 1000);
  EXPECT_EQ(served[0] + served[1], 200'000);
}

}  // namespace
}  // namespace pdq::net
