// The legacy lossy-link path (SimplexLink::drop_rate, the Fig 9 knob)
// after the fault-hook refactor: drop decisions still come from the
// topology RNG in the same order (fault hooks only run when the legacy
// draw kept the packet), packets are conserved end to end, and a
// fault-plane attachment that schedules no pre-completion work leaves a
// lossy run bit-identical.
#include "net/node.h"

#include <gtest/gtest.h>

#include <memory>

#include "faults/fault_spec.h"
#include "harness/audit.h"
#include "harness/registry.h"
#include "net/builders.h"
#include "net/packet_pool.h"
#include "test_util.h"

namespace pdq::net {
namespace {

/// Counts hook consultations; never drops.
struct CountingFault : LinkFaultModel {
  int calls = 0;
  bool should_drop(const SimplexLink&, const Packet&) override {
    ++calls;
    return false;
  }
};

harness::RunOptions lossy_opts(double rate) {
  harness::RunOptions opts;
  // The shared bottleneck for 3 senders: switch (node 0) -> receiver
  // (node 4; hosts are 1..3).
  opts.watch_link = std::make_pair(NodeId{0}, NodeId{4});
  opts.watch_link_drop_rate = rate;
  return opts;
}

TEST(LossyLink, DropRateRunIsSeedDeterministicAndConservesPackets) {
  auto run_once = [&] {
    PacketPool pool;
    double fct;
    {
      PacketPool::ScopedPool scoped(pool);
      auto stack = harness::StackRegistry::global().make("PDQ(Full)");
      const harness::RunResult r = testing::run_single_bottleneck(
          *stack, 3, 100'000, sim::kTimeInfinity, lossy_opts(0.02));
      EXPECT_EQ(r.completed(), 3u);
      EXPECT_GT(r.wire_drops, 0);  // the loss knob actually fired
      fct = r.mean_fct_ms();
    }
    // Simulator and topology are gone: every packet ever drawn from the
    // scoped pool — including the randomly dropped ones — came back.
    EXPECT_EQ(pool.live_count(), 0u);
    return fct;
  };
  const double a = run_once();
  const double b = run_once();
  EXPECT_EQ(a, b);  // bit-identical, not approximately
}

TEST(LossyLink, FaultHookRunsOnlyWhenLegacyDrawKeepsThePacket) {
  // drop_rate = 1.0 loses every packet at the legacy draw, so an
  // attached fault model must never be consulted — the legacy stream
  // owns the first decision, in the historical order.
  sim::Simulator simulator;
  Topology topo(simulator, 1);
  auto servers = build_single_bottleneck(topo, 2);
  CountingFault fault;
  topo.set_link_drop_rate(0, 3, 1.0);
  for (auto& l : topo.links()) {
    if (l->from == 0 && l->to == 3) l->fault = &fault;
  }

  auto stack = harness::StackRegistry::global().make("TCP");
  std::vector<FlowSpec> flows(1);
  flows[0].id = 1;
  flows[0].src = servers[0];
  flows[0].dst = servers.back();
  flows[0].size_bytes = 20'000;
  harness::RunOptions opts;
  opts.horizon = 50 * sim::kMillisecond;
  const harness::RunResult r =
      harness::run_prepared(*stack, simulator, topo, flows, opts);
  EXPECT_GT(r.wire_drops, 0);
  EXPECT_EQ(fault.calls, 0);  // legacy draw dropped first, every time

  // Flip the rates: with drop_rate = 0 the link is lossy only through
  // the hook, which must now see every transmission completion.
  topo.set_link_drop_rate(0, 3, 0.0);
  for (auto& l : topo.links()) {
    if (l->from == 0 && l->to == 3) {
      // Hooked links must not coalesce even at drop_rate 0.
      EXPECT_NE(l->fault, nullptr);
    }
  }
  sim::Simulator sim2;
  Topology topo2(sim2, 1);
  auto servers2 = build_single_bottleneck(topo2, 2);
  CountingFault fault2;
  for (auto& l : topo2.links()) {
    if (l->from == 0 && l->to == 3) l->fault = &fault2;
  }
  auto stack2 = harness::StackRegistry::global().make("TCP");
  std::vector<FlowSpec> flows2(1);
  flows2[0].id = 1;
  flows2[0].src = servers2[0];
  flows2[0].dst = servers2.back();
  flows2[0].size_bytes = 20'000;
  const harness::RunResult r2 =
      harness::run_prepared(*stack2, sim2, topo2, flows2, opts);
  EXPECT_EQ(r2.completed(), 1u);
  EXPECT_GT(fault2.calls, 0);
}

TEST(LossyLink, InertFaultPlaneLeavesLossyRunBitIdentical) {
  // A fault spec whose only event fires after every flow is done (one
  // switch reset at t = 20 s, hardening off) schedules exactly one
  // extra event up front and draws nothing from the topology RNG: the
  // legacy drop decisions, and therefore the whole run, are
  // bit-identical to the fault-free baseline.
  auto run_once = [&](bool with_faults) {
    auto stack = harness::StackRegistry::global().make("PDQ(Full)");
    harness::RunOptions opts = lossy_opts(0.02);
    if (with_faults) {
      auto spec = std::make_shared<faults::FaultSpec>();
      spec->reset_switch(20 * sim::kSecond);
      spec->harden_protocols = false;
      opts.faults = spec;
      // End-of-run checks only: the watchdog would add periodic events.
      auto audit = std::make_shared<harness::AuditSpec>();
      audit->progress_watchdog = false;
      opts.audit = audit;
    }
    return testing::run_single_bottleneck(*stack, 3, 100'000,
                                          sim::kTimeInfinity, opts);
  };
  const harness::RunResult plain = run_once(false);
  const harness::RunResult faulted = run_once(true);
  EXPECT_EQ(plain.mean_fct_ms(), faulted.mean_fct_ms());
  EXPECT_EQ(plain.wire_drops, faulted.wire_drops);
  EXPECT_EQ(plain.queue_drops, faulted.queue_drops);
  ASSERT_NE(faulted.audit, nullptr);
  EXPECT_TRUE(faulted.audit->ok()) << faulted.audit->to_string();
  EXPECT_EQ(plain.audit, nullptr);
}

}  // namespace
}  // namespace pdq::net
