// D3 baseline: deadline demand + first-come first-reserved allocation.
#include "protocols/d3.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace pdq::protocols {
namespace {

using pdq::testing::run_single_bottleneck;

TEST(D3, SingleFlowCompletes) {
  harness::D3Stack stack;
  auto r = run_single_bottleneck(stack, 1, 1'000'000);
  ASSERT_EQ(r.completed(), 1u);
  EXPECT_LT(r.mean_fct_ms(), 12.0);
}

TEST(D3, NoDeadlineBehavesLikeFairSharing) {
  // The paper plots "RCP/D3" as one curve for deadline-unconstrained
  // workloads; completion times should be in the same ballpark.
  harness::D3Stack d3;
  harness::RcpStack rcp;
  auto rd = run_single_bottleneck(d3, 5, 500'000);
  auto rr = run_single_bottleneck(rcp, 5, 500'000);
  ASSERT_EQ(rd.completed(), 5u);
  ASSERT_EQ(rr.completed(), 5u);
  EXPECT_NEAR(rd.mean_fct_ms(), rr.mean_fct_ms(), 0.25 * rr.mean_fct_ms());
}

TEST(D3, FeasibleDeadlinesAreMet) {
  // 10 x 100 KB with 20 ms deadlines: total demand 400 Mbps < 1 Gbps.
  harness::D3Stack stack;
  auto r = run_single_bottleneck(stack, 10, 100'000, 20 * sim::kMillisecond);
  EXPECT_EQ(r.application_throughput(), 100.0);
}

TEST(D3, QuenchingKillsHopelessFlows) {
  // 10 MB against 3 ms cannot finish even alone: quenched early.
  harness::D3Stack stack;
  auto r = run_single_bottleneck(stack, 1, 10'000'000, 3 * sim::kMillisecond);
  ASSERT_EQ(r.flows.size(), 1u);
  EXPECT_EQ(r.flows[0].outcome, net::FlowOutcome::kTerminated);
}

TEST(D3, LateTightDeadlineLosesToEarlyReservationsUnlikePdq) {
  // Fig 1's adversarial order at scale: several loose-deadline flows
  // arrive first and reserve most of the link; a tight-deadline flow
  // arrives last. First-come first-reserved leaves it the scraps; PDQ's
  // EDF preemption serves it first.
  auto make_flows = [](std::vector<net::FlowSpec>& flows) {
    for (int i = 0; i < 6; ++i) {
      net::FlowSpec f;
      f.id = i + 1;
      f.size_bytes = 1'500'000;
      f.start_time = i * 100 * sim::kMicrosecond;
      f.deadline = 60 * sim::kMillisecond;  // loose: needs ~200 Mbps
      flows.push_back(f);
    }
    net::FlowSpec tight;
    tight.id = 7;
    tight.size_bytes = 1'000'000;
    tight.start_time = 2 * sim::kMillisecond;  // arrives last
    tight.deadline = 12 * sim::kMillisecond;   // needs ~800 Mbps
    flows.push_back(tight);
  };
  auto run = [&](harness::ProtocolStack& st) {
    std::vector<net::FlowSpec> flows;
    make_flows(flows);
    auto build = [&](net::Topology& t) {
      auto servers = net::build_single_bottleneck(
          t, static_cast<int>(flows.size()));
      for (std::size_t i = 0; i < flows.size(); ++i) {
        flows[i].src = servers[i];
        flows[i].dst = servers.back();
      }
      return servers;
    };
    harness::RunOptions opts;
    opts.horizon = 5 * sim::kSecond;
    return harness::run_scenario(st, build, flows, opts);
  };
  harness::D3Stack d3;
  auto rd = run(d3);
  harness::PdqStack pdq;
  auto rp = run(pdq);
  // PDQ preempts for the tight flow; D3's earlier reservations block it.
  EXPECT_TRUE(rp.flow(7)->deadline_met());
  EXPECT_FALSE(rd.flow(7)->deadline_met());
  EXPECT_GE(rp.application_throughput(), rd.application_throughput());
}

TEST(D3, AllocatorGrantsDemandPlusFairShare) {
  sim::Simulator simulator;
  net::Topology topo(simulator);
  auto servers = net::build_single_bottleneck(topo, 2);
  D3Config cfg;
  auto c = std::make_unique<D3LinkController>(cfg);
  auto* ctl = c.get();
  topo.port_on_link(topo.switch_ids()[0], servers.back())
      ->set_controller(std::move(c));

  net::Packet p;
  p.flow = 1;
  p.type = net::PacketType::kSyn;
  p.d3.is_request = true;
  p.d3.has_deadline = true;
  p.d3.desired_rate_bps = 2e8;
  ctl->on_forward(p);
  ASSERT_EQ(p.d3.alloc.size(), 1u);
  // Grant covers the demand (fair share comes on top).
  EXPECT_GE(p.d3.alloc[0], 2e8);
  EXPECT_GT(ctl->allocated_bps(), 0.0);
}

TEST(D3, ReleaseOnTermFreesCapacity) {
  sim::Simulator simulator;
  net::Topology topo(simulator);
  auto servers = net::build_single_bottleneck(topo, 2);
  D3Config cfg;
  auto c = std::make_unique<D3LinkController>(cfg);
  auto* ctl = c.get();
  topo.port_on_link(topo.switch_ids()[0], servers.back())
      ->set_controller(std::move(c));

  net::Packet p;
  p.flow = 1;
  p.type = net::PacketType::kSyn;
  p.d3.is_request = true;
  p.d3.has_deadline = true;
  p.d3.desired_rate_bps = 3e8;
  ctl->on_forward(p);
  const double held = ctl->allocated_bps();
  ASSERT_GT(held, 0.0);

  net::Packet t;
  t.flow = 1;
  t.type = net::PacketType::kTerm;
  t.d3.prev_alloc = p.d3.alloc;
  ctl->on_forward(t);
  EXPECT_LT(ctl->allocated_bps(), held);
  EXPECT_NEAR(ctl->allocated_bps(), 0.0, 1.0);
}

TEST(D3, ArrivalOrderMattersUnlikeEdf) {
  // Fig 1d: with arrival order fB, fA (fB's rate reservation first), the
  // later tighter-deadline flow can miss while EDF ordering would fit
  // both. We verify the FCFS property: the earlier arrival is never the
  // one that gets squeezed.
  harness::D3Stack stack;
  std::vector<net::FlowSpec> flows;
  net::FlowSpec fb;  // loose deadline, arrives first, reserves ~620 Mbps
  fb.id = 1;
  fb.size_bytes = 1'500'000;
  fb.deadline = 20 * sim::kMillisecond;
  fb.start_time = 0;
  flows.push_back(fb);
  net::FlowSpec fa;  // tighter deadline, arrives later
  fa.id = 2;
  fa.size_bytes = 1'500'000;
  fa.deadline = 15 * sim::kMillisecond;
  fa.start_time = sim::kMillisecond;
  flows.push_back(fa);
  auto build = [&](net::Topology& t) {
    auto servers = net::build_single_bottleneck(t, 2);
    flows[0].src = servers[0];
    flows[1].src = servers[1];
    flows[0].dst = flows[1].dst = servers.back();
    return servers;
  };
  harness::RunOptions opts;
  opts.horizon = sim::kSecond;
  auto r = harness::run_scenario(stack, build, flows, opts);
  // First-reserved flow B keeps its reservation.
  EXPECT_TRUE(r.flow(1)->deadline_met());
}

}  // namespace
}  // namespace pdq::protocols
