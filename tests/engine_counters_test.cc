// Engine operation counters: the exact pending()/cancelled accounting at
// the Simulator level, and the RunResult::engine counters the fig13
// bench reports (single-core CI tracks perf by operation counts, never
// wall time — no timing assertions here or anywhere).
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/registry.h"
#include "harness/sweep.h"
#include "net/packet_pool.h"
#include "sim/simulator.h"

namespace pdq {
namespace {

TEST(SimulatorCounters, PendingEventsIsExactAfterCancel) {
  sim::Simulator s;
  const sim::EventId a = s.schedule_in(10, [] {});
  s.schedule_in(20, [] {});
  s.schedule_in(30, [] {});
  EXPECT_EQ(s.pending_events(), 3u);
  s.cancel(a);
  // The pre-overhaul size() kept counting the buried tombstone; the
  // exact pending() must not.
  EXPECT_EQ(s.pending_events(), 2u);
  s.run();
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(s.events_executed(), 2u);
  EXPECT_EQ(s.events_scheduled(), 3u);
  EXPECT_EQ(s.events_cancelled(), 1u);
}

TEST(SimulatorCounters, ExecutedAccumulatesAcrossRuns) {
  sim::Simulator s;
  s.schedule_in(10, [] {});
  s.schedule_in(20, [] {});
  s.run(15);
  EXPECT_EQ(s.events_executed(), 1u);
  s.run();
  EXPECT_EQ(s.events_executed(), 2u);
}

TEST(RunPrepared, FillsEngineCounters) {
  harness::AggregationSpec a;
  a.num_flows = 5;
  a.deadlines = false;
  const harness::Scenario sc = harness::aggregation_scenario(a);

  sim::Simulator simulator;
  net::Topology topo(simulator, 1000);
  auto servers = sc.topology.build(topo);
  sim::Rng rng(1000);
  auto flows = sc.workload.make(servers, rng);
  auto stack = harness::StackRegistry::global().make("TCP");
  ASSERT_NE(stack, nullptr);
  const auto result =
      harness::run_prepared(*stack, simulator, topo, flows, sc.options);

  EXPECT_EQ(result.completed(), flows.size());
  EXPECT_GT(result.engine.events_executed, 0u);
  EXPECT_GE(result.engine.events_scheduled, result.engine.events_executed);
  EXPECT_GT(result.engine.packet_acquires, 0u);
  EXPECT_LE(result.engine.packet_allocs, result.engine.packet_acquires);
  // Every data packet is acked: acquires cover at least 2x data packets.
  EXPECT_GE(result.engine.packet_acquires,
            static_cast<std::uint64_t>(result.flows.size()));
}

TEST(RunPrepared, WarmPoolRecyclesInsteadOfAllocating) {
  harness::AggregationSpec a;
  a.num_flows = 5;
  a.deadlines = false;
  const harness::Scenario sc = harness::aggregation_scenario(a);

  auto run_once = [&] {
    sim::Simulator simulator;
    net::Topology topo(simulator, 1000);
    auto servers = sc.topology.build(topo);
    sim::Rng rng(1000);
    auto flows = sc.workload.make(servers, rng);
    auto stack = harness::StackRegistry::global().make("RCP");
    return harness::run_prepared(*stack, simulator, topo, flows,
                                 sc.options);
  };
  const auto cold = run_once();
  const auto warm = run_once();
  // Identical simulation (same seed), but the second run draws from the
  // free list populated by the first: it must allocate (almost) nothing
  // new while acquiring the same number of packets.
  EXPECT_EQ(warm.engine.packet_acquires, cold.engine.packet_acquires);
  EXPECT_LT(warm.engine.packet_allocs, cold.engine.packet_allocs);
  EXPECT_EQ(warm.engine.events_executed, cold.engine.events_executed);
  // And the simulation outcome is bit-identical.
  ASSERT_EQ(warm.flows.size(), cold.flows.size());
  for (std::size_t i = 0; i < warm.flows.size(); ++i) {
    EXPECT_EQ(warm.flows[i].finish_time, cold.flows[i].finish_time);
  }
}

TEST(Metrics, EngineCounterMetricsReadRunResult) {
  harness::RunContext ctx;
  harness::RunResult r;
  r.engine.events_executed = 1000;
  r.engine.packet_allocs = 10;
  r.engine.packet_acquires = 400;
  r.engine.events_coalesced = 750;
  r.engine.flowlist_scan_ops = 4200;
  ctx.result = &r;
  EXPECT_DOUBLE_EQ(harness::metrics::events_processed().fn(ctx), 1000.0);
  EXPECT_DOUBLE_EQ(harness::metrics::packet_allocs().fn(ctx), 10.0);
  EXPECT_DOUBLE_EQ(harness::metrics::packet_recycle_percent().fn(ctx),
                   97.5);
  EXPECT_DOUBLE_EQ(harness::metrics::events_coalesced().fn(ctx), 750.0);
  EXPECT_DOUBLE_EQ(harness::metrics::flowlist_scan_ops().fn(ctx), 4200.0);
}

TEST(RunPrepared, CoalescingAndScanCountersArePopulated) {
  harness::AggregationSpec a;
  a.num_flows = 5;
  a.deadlines = false;
  const harness::Scenario sc = harness::aggregation_scenario(a);

  auto run_with = [&](const char* stack_name) {
    sim::Simulator simulator;
    net::Topology topo(simulator, 1000);
    auto servers = sc.topology.build(topo);
    sim::Rng rng(1000);
    auto flows = sc.workload.make(servers, rng);
    auto stack = harness::StackRegistry::global().make(stack_name);
    return harness::run_prepared(*stack, simulator, topo, flows, sc.options);
  };
  // Lossless links: every hop coalesces at least the tx-complete event.
  const auto tcp = run_with("TCP");
  EXPECT_GT(tcp.engine.events_coalesced, 0u);
  EXPECT_EQ(tcp.engine.flowlist_scan_ops, 0u);  // no controllers installed
  // PDQ: the switch fast path reports its flow-list work.
  const auto pdq = run_with("PDQ(Full)");
  EXPECT_GT(pdq.engine.events_coalesced, 0u);
  EXPECT_GT(pdq.engine.flowlist_scan_ops, 0u);
  // Coalescing throws away a large share of the old per-hop event chain:
  // saved events are a sizable fraction of the events actually executed.
  EXPECT_GT(pdq.engine.events_coalesced, pdq.engine.events_executed / 4);
}

TEST(RunPrepared, Fig9StyleLossyLinkStillCountsWireDrops) {
  // The coalesced fast path must not swallow the loss draw: a lossy link
  // keeps the explicit tx-complete event and its RNG stream.
  harness::AggregationSpec a;
  a.num_flows = 3;
  a.deadlines = false;
  harness::Scenario sc = harness::aggregation_scenario(a);
  sc.options.watch_link_drop_rate = 0.2;

  sim::Simulator simulator;
  net::Topology topo(simulator, 1000);
  auto servers = sc.topology.build(topo);
  sc.options.watch_link = {{topo.switch_ids()[0], servers.back()}};
  sim::Rng rng(1000);
  auto flows = sc.workload.make(servers, rng);
  auto stack = harness::StackRegistry::global().make("TCP");
  const auto result =
      harness::run_prepared(*stack, simulator, topo, flows, sc.options);
  EXPECT_EQ(result.completed(), flows.size());
  EXPECT_GT(result.wire_drops, 0);
}

TEST(Metrics, CounterMetricsAreDeterministicUnderTheSweepRunner) {
  // Every sweep sample runs on a cold pool (SweepRunner::run_sample),
  // so packet_allocs is a pure function of (scenario, stack, seed) —
  // repeated runs and different thread counts must agree exactly, the
  // same byte-identical guarantee every other metric carries.
  harness::AggregationSpec a;
  a.num_flows = 6;
  a.deadlines = false;
  const harness::Scenario s = harness::aggregation_scenario(a);
  const auto col = harness::stack_column("RCP");
  const auto& allocs = harness::metrics::packet_allocs().fn;
  const double first =
      harness::SweepRunner(1).average(s, col, 2, 1000, allocs);
  const double again =
      harness::SweepRunner(1).average(s, col, 2, 1000, allocs);
  const double threaded =
      harness::SweepRunner(2).average(s, col, 2, 1000, allocs);
  EXPECT_GT(first, 0.0);  // a cold pool really does allocate
  EXPECT_DOUBLE_EQ(first, again);
  EXPECT_DOUBLE_EQ(first, threaded);

  const auto run1 = harness::SweepRunner::run_sample(s, "RCP", {}, 1000);
  const auto run2 = harness::SweepRunner::run_sample(s, "RCP", {}, 1000);
  EXPECT_EQ(run1.result.engine.packet_allocs,
            run2.result.engine.packet_allocs);
  EXPECT_EQ(run1.result.engine.events_executed,
            run2.result.engine.events_executed);
}

TEST(Metrics, RecyclePercentHandlesZeroAcquires) {
  harness::RunContext ctx;
  harness::RunResult r;
  ctx.result = &r;
  EXPECT_DOUBLE_EQ(harness::metrics::packet_recycle_percent().fn(ctx), 0.0);
}

TEST(Fig13Scenario, DcellSweepPointRunsThroughTheSpecApi) {
  // A miniature fig13 point: DCell(2,1), mice flows, spec-driven.
  workload::FlowSetOptions w;
  w.num_flows = 40;
  w.size = workload::uniform_size(2'000, 30'000);
  w.pattern = workload::staggered_prob(0.5, 4);
  w.arrival_rate_per_sec = 5000.0;
  harness::Scenario s;
  s.topology = harness::TopologySpec::dcell(2, 1);
  s.workload = harness::WorkloadSpec::flow_set(w, "dc-mice/40");
  s.options.horizon = 120 * sim::kSecond;

  harness::SweepRunner runner(1);
  const double completed =
      runner.average(s, harness::stack_column("TCP"), 1, 1000,
                     harness::metrics::completed().fn);
  EXPECT_DOUBLE_EQ(completed, 40.0);  // every flow finishes
}

}  // namespace
}  // namespace pdq
