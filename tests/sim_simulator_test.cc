#include "sim/simulator.h"

#include <gtest/gtest.h>

namespace pdq::sim {
namespace {

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator s;
  Time seen = -1;
  s.schedule_at(100, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(s.now(), 100);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator s;
  Time seen = -1;
  s.schedule_at(50, [&] {
    s.schedule_in(25, [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 75);
}

TEST(Simulator, RunUntilStopsClock) {
  Simulator s;
  int ran = 0;
  s.schedule_at(10, [&] { ++ran; });
  s.schedule_at(1000, [&] { ++ran; });
  s.run(/*until=*/500);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.now(), 500);  // clock parked at the horizon
  s.run();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, StopBreaksRun) {
  Simulator s;
  int ran = 0;
  s.schedule_at(1, [&] {
    ++ran;
    s.stop();
  });
  s.schedule_at(2, [&] { ++ran; });
  s.run();
  EXPECT_EQ(ran, 1);
  // A subsequent run resumes.
  s.run();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  int ran = 0;
  const EventId id = s.schedule_at(5, [&] { ++ran; });
  s.cancel(id);
  s.run();
  EXPECT_EQ(ran, 0);
}

TEST(Simulator, ReturnsExecutedCount) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule_at(i, [] {});
  EXPECT_EQ(s.run(), 7u);
}

TEST(Simulator, CascadedEventsRunInOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(10, [&] {
    order.push_back(1);
    s.schedule_in(0, [&] { order.push_back(2); });  // same instant, later seq
  });
  s.schedule_at(10, [&] { order.push_back(3); });  // scheduled earlier
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

}  // namespace
}  // namespace pdq::sim
