// Flow-level simulator: protocol models against closed-form expectations.
#include "flowsim/flowsim.h"

#include <gtest/gtest.h>

#include "net/builders.h"
#include "sched/fluid.h"
#include "sim/simulator.h"

namespace pdq::flowsim {
namespace {

struct Rig {
  sim::Simulator simulator;
  net::Topology topo{simulator};
  std::vector<net::NodeId> servers;

  explicit Rig(int n_senders) {
    servers = net::build_single_bottleneck(topo, n_senders);
  }

  std::vector<net::FlowSpec> aggregation_flows(
      int n, std::int64_t size, sim::Time deadline = sim::kTimeInfinity) {
    std::vector<net::FlowSpec> flows;
    for (int i = 0; i < n; ++i) {
      net::FlowSpec f;
      f.id = i + 1;
      f.src = servers[static_cast<std::size_t>(i)];
      f.dst = servers.back();
      f.size_bytes = size;
      f.deadline = deadline;
      flows.push_back(f);
    }
    return flows;
  }
};

Options pure(Model m) {
  // No init latency / overhead: compare against fluid closed forms.
  Options o;
  o.model = m;
  o.goodput_factor = 1.0;
  o.init_latency = 0;
  return o;
}

TEST(FlowSim, PdqMatchesSjfOnSingleBottleneck) {
  Rig rig(3);
  auto flows = rig.aggregation_flows(3, 1'000'000);
  flows[0].size_bytes = 1'000'000;
  flows[1].size_bytes = 2'000'000;
  flows[2].size_bytes = 3'000'000;
  FlowLevelSimulator fs(rig.topo, pure(Model::kPdq));
  auto r = fs.run(flows);
  ASSERT_EQ(r.completed(), 3u);
  // SJF one-by-one: 8, 24, 48 ms (1 Gbps), +- one 1 ms step.
  EXPECT_NEAR(sim::to_millis(r.flows[0].completion_time()), 8.0, 1.5);
  EXPECT_NEAR(sim::to_millis(r.flows[1].completion_time()), 24.0, 1.5);
  EXPECT_NEAR(sim::to_millis(r.flows[2].completion_time()), 48.0, 1.5);
}

TEST(FlowSim, RcpMatchesFairSharing) {
  Rig rig(3);
  auto flows = rig.aggregation_flows(3, 1'000'000);
  FlowLevelSimulator fs(rig.topo, pure(Model::kRcp));
  auto r = fs.run(flows);
  ASSERT_EQ(r.completed(), 3u);
  for (const auto& f : r.flows) {
    EXPECT_NEAR(sim::to_millis(f.completion_time()), 24.0, 1.5);
  }
}

TEST(FlowSim, RcpMaxMinRespectsNicBottleneck) {
  // Two flows from the SAME sender share its NIC; a third from another
  // host gets the leftover of the shared downlink... on the single
  // bottleneck all three share the switch->receiver link equally.
  Rig rig(2);
  std::vector<net::FlowSpec> flows;
  for (int i = 0; i < 2; ++i) {
    net::FlowSpec f;
    f.id = i + 1;
    f.src = rig.servers[0];  // both from host 0
    f.dst = rig.servers.back();
    f.size_bytes = 1'000'000;
    flows.push_back(f);
  }
  net::FlowSpec g;
  g.id = 3;
  g.src = rig.servers[1];
  g.dst = rig.servers.back();
  g.size_bytes = 1'000'000;
  flows.push_back(g);
  FlowLevelSimulator fs(rig.topo, pure(Model::kRcp));
  auto r = fs.run(flows);
  // All three share the receiver downlink: ~333 Mbps each -> 24 ms.
  for (const auto& f : r.flows) {
    EXPECT_NEAR(sim::to_millis(f.completion_time()), 24.0, 2.0);
  }
}

TEST(FlowSim, D3EqualsRcpWithoutDeadlines) {
  Rig rig(4);
  auto flows = rig.aggregation_flows(4, 800'000);
  FlowLevelSimulator d3(rig.topo, pure(Model::kD3));
  auto rd = d3.run(flows);
  FlowLevelSimulator rcp(rig.topo, pure(Model::kRcp));
  auto rr = rcp.run(flows);
  ASSERT_EQ(rd.completed(), 4u);
  EXPECT_NEAR(rd.mean_fct_ms(), rr.mean_fct_ms(), 2.0);
}

TEST(FlowSim, D3GrantsDeadlineDemandFirst) {
  Rig rig(2);
  std::vector<net::FlowSpec> flows;
  net::FlowSpec urgent;
  urgent.id = 1;
  urgent.src = rig.servers[0];
  urgent.dst = rig.servers.back();
  urgent.size_bytes = 2'000'000;
  urgent.deadline = 20 * sim::kMillisecond;  // needs 800 Mbps
  flows.push_back(urgent);
  net::FlowSpec bulk;
  bulk.id = 2;
  bulk.src = rig.servers[1];
  bulk.dst = rig.servers.back();
  bulk.size_bytes = 5'000'000;
  flows.push_back(bulk);
  FlowLevelSimulator fs(rig.topo, pure(Model::kD3));
  auto r = fs.run(flows);
  EXPECT_TRUE(r.flows[0].deadline_met());
}

TEST(FlowSim, PdqEarlyTerminationKillsInfeasibleFlows) {
  Rig rig(1);
  std::vector<net::FlowSpec> flows;
  net::FlowSpec f;
  f.id = 1;
  f.src = rig.servers[0];
  f.dst = rig.servers.back();
  f.size_bytes = 10'000'000;
  f.deadline = 3 * sim::kMillisecond;
  flows.push_back(f);
  FlowLevelSimulator fs(rig.topo, pure(Model::kPdq));
  auto r = fs.run(flows);
  EXPECT_EQ(r.flows[0].outcome, net::FlowOutcome::kTerminated);
}

TEST(FlowSim, InitLatencyDelaysCompletion) {
  Rig rig(1);
  auto flows = rig.aggregation_flows(1, 1'000'000);
  Options with = pure(Model::kPdq);
  with.init_latency = 5 * sim::kMillisecond;
  FlowLevelSimulator a(rig.topo, with);
  auto ra = a.run(flows);
  FlowLevelSimulator b(rig.topo, pure(Model::kPdq));
  auto rb = b.run(flows);
  EXPECT_GT(ra.flows[0].completion_time(),
            rb.flows[0].completion_time() + 4 * sim::kMillisecond);
}

TEST(FlowSim, GoodputFactorScalesCompletion) {
  Rig rig(1);
  auto flows = rig.aggregation_flows(1, 1'000'000);
  Options o = pure(Model::kPdq);
  o.goodput_factor = 0.5;
  FlowLevelSimulator fs(rig.topo, o);
  auto r = fs.run(flows);
  EXPECT_NEAR(sim::to_millis(r.flows[0].completion_time()), 16.0, 1.5);
}

TEST(FlowSim, StaggeredArrivalsHandled) {
  Rig rig(2);
  auto flows = rig.aggregation_flows(2, 1'000'000);
  flows[1].start_time = 50 * sim::kMillisecond;  // after flow 0 finishes
  FlowLevelSimulator fs(rig.topo, pure(Model::kPdq));
  auto r = fs.run(flows);
  ASSERT_EQ(r.completed(), 2u);
  EXPECT_NEAR(sim::to_millis(r.flows[0].completion_time()), 8.0, 1.5);
  EXPECT_NEAR(sim::to_millis(r.flows[1].completion_time()), 8.0, 1.5);
}

TEST(FlowSim, PdqAgingRaisesOldFlows) {
  // With aggressive aging, a long-waiting big flow eventually preempts
  // smaller newcomers, shrinking the max FCT (Fig 12's effect).
  Rig rig(8);
  auto mk = [&](double alpha) {
    std::vector<net::FlowSpec> flows;
    net::FlowSpec big;
    big.id = 1;
    big.src = rig.servers[0];
    big.dst = rig.servers.back();
    big.size_bytes = 5'000'000;
    flows.push_back(big);
    // A stream of smaller flows that would starve it under pure SJF.
    for (int i = 0; i < 40; ++i) {
      net::FlowSpec f;
      f.id = 2 + i;
      f.src = rig.servers[static_cast<std::size_t>(1 + i % 7)];
      f.dst = rig.servers.back();
      f.size_bytes = 2'000'000;
      f.start_time = i * 4 * sim::kMillisecond;
      flows.push_back(f);
    }
    Options o = pure(Model::kPdq);
    o.aging_alpha = alpha;
    FlowLevelSimulator fs(rig.topo, o);
    return fs.run(flows);
  };
  auto no_aging = mk(0.0);
  auto aged = mk(4.0);
  const double big_no =
      sim::to_millis(no_aging.flows[0].completion_time());
  const double big_aged = sim::to_millis(aged.flows[0].completion_time());
  EXPECT_LT(big_aged, big_no);
}

TEST(FlowSim, QuenchWaitsForFlowArrival) {
  // Regression: early termination used to fire for deadline flows that
  // had not arrived yet, stamping finish_time < start_time. A flow must
  // enter the network before it can be quenched.
  Rig rig(1);
  std::vector<net::FlowSpec> flows;
  net::FlowSpec f;
  f.id = 1;
  f.src = rig.servers[0];
  f.dst = rig.servers.back();
  f.size_bytes = 10'000'000;              // needs 80 ms at 1 Gbps
  f.deadline = 3 * sim::kMillisecond;     // infeasible from the start
  f.start_time = 50 * sim::kMillisecond;  // arrives late
  flows.push_back(f);
  FlowLevelSimulator fs(rig.topo, pure(Model::kPdq));
  auto r = fs.run(flows);
  ASSERT_EQ(r.flows[0].outcome, net::FlowOutcome::kTerminated);
  EXPECT_GE(r.flows[0].finish_time, f.start_time);
}

TEST(FlowSim, SteppableMatchesOneShotRun) {
  // The hybrid backend drives the same per-step arithmetic through
  // add_flow/advance; finish times must not depend on the driving mode
  // or on how advance() calls chunk the timeline.
  Rig rig(3);
  auto flows = rig.aggregation_flows(3, 1'000'000);
  flows[1].size_bytes = 2'000'000;
  flows[2].size_bytes = 3'000'000;
  flows[2].start_time = 10 * sim::kMillisecond;

  FlowLevelSimulator oneshot(rig.topo, pure(Model::kPdq));
  auto ref = oneshot.run(flows);

  FlowLevelSimulator step(rig.topo, pure(Model::kPdq));
  for (const auto& f : flows) step.add_flow(f);
  for (sim::Time t = 10 * sim::kMillisecond; t <= 100 * sim::kMillisecond;
       t += 10 * sim::kMillisecond)
    step.advance(t);
  auto done = step.drain_completions();
  ASSERT_EQ(done.size(), flows.size());
  EXPECT_EQ(step.active_flows(), 0u);
  for (const auto& c : done) {
    const auto& expect = ref.flows[static_cast<std::size_t>(c.result.spec.id - 1)];
    EXPECT_EQ(c.result.outcome, expect.outcome) << c.result.spec.id;
    EXPECT_EQ(c.result.finish_time, expect.finish_time) << c.result.spec.id;
  }
}

TEST(FlowSim, RateHintSkipsInitLatency) {
  // A flow handed off mid-stream already went through packet-level
  // admission: no 2-RTT ramp, and it finishes with a usable tail rate.
  Rig rig(1);
  Options o = pure(Model::kPdq);
  o.init_latency = 5 * sim::kMillisecond;
  auto flows = rig.aggregation_flows(1, 1'000'000);

  FlowLevelSimulator cold(rig.topo, o);
  cold.add_flow(flows[0]);
  cold.advance(sim::kSecond);
  auto rc = cold.drain_completions();

  FlowLevelSimulator warm(rig.topo, o);
  warm.add_flow(flows[0], /*remaining_bits=*/-1.0, /*rate_hint_bps=*/1e9);
  warm.advance(sim::kSecond);
  auto rw = warm.drain_completions();

  ASSERT_EQ(rc.size(), 1u);
  ASSERT_EQ(rw.size(), 1u);
  EXPECT_GE(rc[0].result.finish_time,
            rw[0].result.finish_time + 4 * sim::kMillisecond);
  EXPECT_GT(rw[0].last_rate_bps, 0.0);
}

TEST(FlowSim, LinkFailureTerminatesDisconnectedFlows) {
  // Regression: capacities and cached ECMP paths used to be computed
  // once at construction and go stale across set_link_state. They now
  // refresh on Topology::version() changes; a live flow whose path
  // disappears is terminated where it stands, partial bytes retained.
  Rig rig(2);
  FlowLevelSimulator fs(rig.topo, pure(Model::kPdq));
  net::FlowSpec f;
  f.id = 1;
  f.src = rig.servers[0];
  f.dst = rig.servers.back();
  f.size_bytes = 10'000'000;  // 80 ms at 1 Gbps
  fs.add_flow(f);
  fs.advance(5 * sim::kMillisecond);
  ASSERT_EQ(fs.active_flows(), 1u);

  // Cut the switch->receiver hop: the only path disappears.
  const auto path = rig.topo.shortest_paths(f.src, f.dst)[0];
  rig.topo.set_link_state(path[path.size() - 2], path.back(), false);
  fs.advance(10 * sim::kMillisecond);

  auto done = fs.drain_completions();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].result.outcome, net::FlowOutcome::kTerminated);
  EXPECT_GE(done[0].result.finish_time, 5 * sim::kMillisecond);
  EXPECT_GT(done[0].result.bytes_acked, 0);
  EXPECT_EQ(fs.active_flows(), 0u);
}

TEST(FlowSim, UnrelatedLinkFailureLeavesFlowRunning) {
  // The topology-version rebuild re-resolves paths but must not disturb
  // flows whose own path survived.
  Rig rig(2);
  FlowLevelSimulator fs(rig.topo, pure(Model::kPdq));
  net::FlowSpec f;
  f.id = 1;
  f.src = rig.servers[0];
  f.dst = rig.servers.back();
  f.size_bytes = 1'000'000;
  fs.add_flow(f);
  fs.advance(2 * sim::kMillisecond);

  // servers[1]'s uplink is not on the flow's path.
  const auto path = rig.topo.shortest_paths(f.src, f.dst)[0];
  rig.topo.set_link_state(rig.servers[1], path[1], false);
  fs.advance(sim::kSecond);

  auto done = fs.drain_completions();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].result.outcome, net::FlowOutcome::kCompleted);
  EXPECT_NEAR(sim::to_millis(done[0].result.finish_time), 8.0, 1.5);
}

TEST(FlowSim, AgreesWithPacketLevelShape) {
  // Cross-validation (paper Fig 8a/8b): flow- and packet-level PDQ mean
  // FCTs agree within ~20% on the 5-flow canonical scenario. Packet-level
  // numbers from the integration tests: mean ~25.6 ms.
  Rig rig(5);
  auto flows = rig.aggregation_flows(5, 1'000'000);
  Options o;  // default: with init latency and header overhead
  o.model = Model::kPdq;
  FlowLevelSimulator fs(rig.topo, o);
  auto r = fs.run(flows);
  EXPECT_NEAR(r.mean_fct_ms(), 25.6, 5.0);
}

}  // namespace
}  // namespace pdq::flowsim
