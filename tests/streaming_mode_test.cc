// Streaming-metrics mode (RunOptions::streaming): equivalence with the
// per-flow vector path, sketch-quantile error bound on a real run,
// determinism across SweepRunner thread counts, memory-peak counters,
// and smoke coverage for the non-retiring stacks (DCTCP, M-PDQ) and
// timeline runs.
#include "harness/sweep.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "harness/experiment.h"
#include "harness/timeline.h"
#include "stats/streaming.h"
#include "workload/arrivals.h"
#include "workload/workload.h"

namespace pdq::harness {
namespace {

/// Open-loop mice over a small fat-tree: flows arrive spread over time,
/// so the active population is far below the total — the regime the
/// streaming path's lazy-materialize/retire machinery targets.
Scenario open_loop_scenario(int num_flows, double rate_per_sec = 2000.0) {
  workload::OpenLoopOptions w;
  w.num_flows = num_flows;
  w.size = workload::uniform_size(2'000, 60'000);
  w.arrivals = workload::ArrivalProcess::poisson(rate_per_sec);
  w.pattern = workload::staggered_prob(0.5, 4);
  Scenario s;
  s.topology = TopologySpec::fat_tree(4);
  s.workload = WorkloadSpec::open_loop(
      w, "ol-mice/" + std::to_string(num_flows));
  s.options.horizon = 30 * sim::kSecond;
  return s;
}

SweepRunner::SampleRun run_mode(const Scenario& base, const std::string& stack,
                                bool streaming,
                                std::uint64_t seed = kDefaultBaseSeed) {
  Scenario sc = base;
  if (streaming) {
    sc.options.streaming = std::make_shared<const stats::StreamingSpec>();
  }
  return SweepRunner::run_sample(sc, stack, {}, seed);
}

TEST(StreamingMode, AggregatesMatchVectorPathOnAggregationScenario) {
  // fig1/fig3d-style closed scenario, three stacks: the RunResult helper
  // values must agree between representations. Counts, maxima and byte
  // sums are exactly order-independent; the FCT mean is too, now that
  // the streaming side accumulates with a Neumaier-compensated sum —
  // so everything is pinned with exact equality.
  AggregationSpec a;
  a.num_flows = 8;
  const Scenario sc = aggregation_scenario(a);
  for (const char* stack : {"PDQ(Full)", "TCP", "RCP"}) {
    const auto vec = run_mode(sc, stack, false);
    const auto str = run_mode(sc, stack, true);
    ASSERT_NE(str.result.streaming, nullptr) << stack;
    EXPECT_TRUE(str.result.flows.empty()) << stack;
    EXPECT_FALSE(vec.result.flows.empty()) << stack;
    EXPECT_EQ(vec.result.flows.size(), str.result.streaming->flows());
    EXPECT_EQ(vec.result.completed(), str.result.completed()) << stack;
    EXPECT_EQ(vec.result.mean_fct_ms(), str.result.mean_fct_ms()) << stack;
    EXPECT_EQ(vec.result.max_fct_ms(), str.result.max_fct_ms()) << stack;
    EXPECT_EQ(vec.result.application_throughput(),
              str.result.application_throughput())
        << stack;
  }
}

TEST(StreamingMode, WindowedMetricsMatchVectorPathOnOpenLoopRun) {
  const Scenario sc = open_loop_scenario(300);
  const auto vec = run_mode(sc, "PDQ(Full)", false);
  const auto str = run_mode(sc, "PDQ(Full)", true);

  RunContext vctx, sctx;
  vctx.result = &vec.result;
  vctx.scenario = &sc;
  sctx.result = &str.result;
  sctx.scenario = &sc;

  // Goodput: integer byte sums on both paths, identical final division.
  EXPECT_DOUBLE_EQ(metrics::goodput_gbps().fn(vctx),
                   metrics::goodput_gbps().fn(sctx));
  // Deadline-miss: integer counts (no deadlines here: both 0).
  EXPECT_DOUBLE_EQ(metrics::deadline_miss_percent().fn(vctx),
                   metrics::deadline_miss_percent().fn(sctx));
  // Windowed mean: same sample set, exactly — the streaming side's
  // compensated sum reproduces the vector path's value bit-for-bit.
  EXPECT_EQ(metrics::windowed_mean_fct_ms().fn(vctx),
            metrics::windowed_mean_fct_ms().fn(sctx));

  // p99: the sketch estimate is within the documented relative-error
  // bound of the exact nearest-rank statistic the vector path computes.
  const double exact = metrics::windowed_p99_fct_ms().fn(vctx);
  const double est = metrics::windowed_p99_fct_ms().fn(sctx);
  ASSERT_GT(exact, 0.0);
  EXPECT_LE(std::abs(est - exact),
            str.result.streaming->quantile_alpha() * exact);
}

TEST(StreamingMode, SweepResultsIdenticalForAnyThreadCount) {
  ExperimentSpec spec;
  spec.name = "streaming_determinism";
  spec.axis = "#flows";
  spec.metric = metrics::windowed_p99_fct_ms();
  spec.trials = 2;
  spec.base = open_loop_scenario(100);
  spec.streaming_metrics = std::make_shared<const stats::StreamingSpec>();
  spec.columns.push_back(stack_column("PDQ(Full)"));
  spec.columns.push_back(stack_column("TCP"));
  for (int n : {60, 120}) {
    SweepPoint p;
    p.label = std::to_string(n);
    p.apply = [n](Scenario& s) { s = open_loop_scenario(n); };
    spec.points.push_back(std::move(p));
  }
  const auto serial = SweepRunner(1).run(spec);
  const auto parallel = SweepRunner(4).run(spec);
  for (std::size_t p = 0; p < serial.samples.size(); ++p) {
    for (std::size_t c = 0; c < serial.samples[p].size(); ++c) {
      for (std::size_t t = 0; t < serial.samples[p][c].size(); ++t) {
        EXPECT_EQ(serial.samples[p][c][t], parallel.samples[p][c][t])
            << "point " << p << " column " << c << " trial " << t;
      }
    }
  }
}

TEST(StreamingMode, MergedStreamingIsThreadCountInvariant) {
  const Scenario sc = open_loop_scenario(80);
  const stats::StreamingSpec spec;
  const auto a =
      SweepRunner(1).merged_streaming(sc, "PDQ(Full)", {}, 3, spec);
  const auto b =
      SweepRunner(4).merged_streaming(sc, "PDQ(Full)", {}, 3, spec);
  EXPECT_EQ(a.flows(), 240u);
  EXPECT_EQ(a.flows(), b.flows());
  EXPECT_EQ(a.completed(), b.completed());
  // Merged in trial order on both runners: bit-identical, not just near.
  EXPECT_EQ(a.mean_fct_ms(), b.mean_fct_ms());
  EXPECT_EQ(a.windowed_p99_fct_ms(), b.windowed_p99_fct_ms());
  EXPECT_EQ(a.goodput_gbps(), b.goodput_gbps());
}

TEST(StreamingMode, MemoryPeakCountersArePopulated) {
  const auto vec = run_mode(open_loop_scenario(100), "PDQ(Full)", false);
  EXPECT_GT(vec.result.engine.peak_pending_events, 0u);
  EXPECT_GT(vec.result.engine.pool_highwater, 0u);
  EXPECT_GT(vec.result.engine.peak_flow_bytes, 0u);
  // Pool high-water never exceeds total constructions on a cold pool.
  EXPECT_LE(vec.result.engine.pool_highwater,
            vec.result.engine.packet_allocs);
}

TEST(StreamingMode, PeakFlowBytesTracksActiveNotTotalFlows) {
  // 400 spread-out mice: the default path materializes all agents up
  // front (peak ~ total), streaming materializes at start and retires at
  // termination (peak ~ active). The gap is the subsystem's raison
  // d'etre, so assert a wide margin, not just "<".
  const Scenario sc = open_loop_scenario(400, 500.0);
  const auto vec = run_mode(sc, "PDQ(Full)", false);
  const auto str = run_mode(sc, "PDQ(Full)", true);
  EXPECT_EQ(vec.result.completed(), str.result.completed());
  ASSERT_GT(vec.result.engine.peak_flow_bytes, 0u);
  ASSERT_GT(str.result.engine.peak_flow_bytes, 0u);
  EXPECT_LT(str.result.engine.peak_flow_bytes,
            vec.result.engine.peak_flow_bytes / 4);
}

TEST(StreamingMode, PeakPendingEventsTrackActiveNotTotalFlows) {
  // Flow-creation events used to be scheduled up front, so the pending-
  // event peak was O(total flows) even when arrivals spread over 30 s.
  // Streaming runs now chain creations through reserved sequence
  // numbers (tie-break order unchanged): the peak follows the *active*
  // population. The default path still schedules everything at setup.
  const Scenario sc = open_loop_scenario(2000, 500.0);
  const auto vec = run_mode(sc, "PDQ(Full)", false);
  const auto str = run_mode(sc, "PDQ(Full)", true);
  EXPECT_EQ(vec.result.completed(), str.result.completed());
  EXPECT_GE(vec.result.engine.peak_pending_events, 2000u);
  EXPECT_LT(str.result.engine.peak_pending_events, 500u);
}

TEST(StreamingMode, NonRetiringStacksRunToCompletion) {
  // DCTCP receivers and M-PDQ (subflow-owning senders) never retire —
  // streaming mode must still aggregate correctly, just without the
  // memory win. Equivalence against the vector path covers both.
  AggregationSpec a;
  a.num_flows = 6;
  a.deadlines = false;
  const Scenario sc = aggregation_scenario(a);
  for (const char* stack : {"DCTCP", "M-PDQ"}) {
    const auto vec = run_mode(sc, stack, false);
    const auto str = run_mode(sc, stack, true);
    ASSERT_NE(str.result.streaming, nullptr) << stack;
    EXPECT_EQ(vec.result.completed(), str.result.completed()) << stack;
    EXPECT_DOUBLE_EQ(vec.result.mean_fct_ms(), str.result.mean_fct_ms())
        << stack;
  }
}

TEST(StreamingMode, TimelineWindowFeedsTheStreamingWindow) {
  // A measurement window plus an incast burst: windowed aggregates must
  // agree between representations (the streaming window is derived from
  // the same TimelineSpec fields the vector metrics read).
  Scenario sc = open_loop_scenario(150);
  auto tl = std::make_shared<TimelineSpec>();
  tl->incast(20 * sim::kMillisecond, 8, 20'000);
  tl->window(10 * sim::kMillisecond, 20 * sim::kSecond);
  sc.options.timeline = tl;
  const auto vec = run_mode(sc, "PDQ(Full)", false);
  const auto str = run_mode(sc, "PDQ(Full)", true);
  ASSERT_NE(str.result.streaming, nullptr);

  RunContext vctx, sctx;
  vctx.result = &vec.result;
  vctx.scenario = &sc;
  sctx.result = &str.result;
  sctx.scenario = &sc;
  EXPECT_DOUBLE_EQ(metrics::goodput_gbps().fn(vctx),
                   metrics::goodput_gbps().fn(sctx));
  EXPECT_EQ(metrics::windowed_mean_fct_ms().fn(vctx),
            metrics::windowed_mean_fct_ms().fn(sctx));
  EXPECT_EQ(vec.result.completed(), str.result.completed());
}

}  // namespace
}  // namespace pdq::harness
