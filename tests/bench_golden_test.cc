// Golden-value tests: the Experiment API v2 sweep engine must reproduce
// the exact numbers the pre-redesign bench binaries printed for a fixed
// seed. Values below were captured from the v1 binaries (commit
// "PR 1: bootstrap CMake/CTest build") at the default seeds.
#include <gtest/gtest.h>

#include <algorithm>

#include "flowsim/flowsim.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "net/builders.h"
#include "sched/fluid.h"

namespace pdq {
namespace {

// ---------------------------------------------------------------------------
// Fig 3d: mean FCT normalized to Optimal, quick mode (3 trials, base
// seed 1000 -> seeds 1000/1007/1014), via the declarative sweep path.
// ---------------------------------------------------------------------------

struct Fig3dGolden {
  int flows;
  const char* stack;
  double value;
};

// Captured from the v1 fig3d_fct_vs_flows binary (full double precision).
const Fig3dGolden kFig3d[] = {
    {1, "PDQ(Full)", 1.3419738807786963},
    {1, "PDQ(ES)", 1.3419738807786963},
    {1, "PDQ(Basic)", 1.3419738807786963},
    {1, "RCP", 1.3270104159732352},
    {1, "TCP", 1.3958605000402724},
    {10, "PDQ(Full)", 1.4117332624941621},
    {10, "PDQ(ES)", 1.4268268283993393},
    {10, "PDQ(Basic)", 1.4810258662906379},
    {10, "RCP", 2.0317036900197505},
    {10, "TCP", 1.803023700696017},
};

TEST(GoldenFig3d, SweepEngineReproducesPreRedesignNumbers) {
  harness::ExperimentSpec spec;
  spec.name = "golden_fig3d";
  spec.axis = "#flows";
  spec.metric = harness::metrics::mean_fct_vs_optimal();
  spec.trials = 3;
  spec.base_seed = harness::kDefaultBaseSeed;
  spec.base = harness::aggregation_scenario({});
  for (const char* name :
       {"PDQ(Full)", "PDQ(ES)", "PDQ(Basic)", "RCP", "TCP"}) {
    spec.columns.push_back(harness::stack_column(name));
  }
  for (int n : {1, 10}) {
    harness::SweepPoint p;
    p.label = std::to_string(n);
    p.apply = [n](harness::Scenario& s) {
      harness::AggregationSpec a;
      a.num_flows = n;
      a.deadlines = false;
      s = harness::aggregation_scenario(a);
    };
    spec.points.push_back(std::move(p));
  }

  const auto results = harness::SweepRunner().run(spec);
  for (const auto& g : kFig3d) {
    const std::size_t p = g.flows == 1 ? 0 : 1;
    const int c = results.column_index(g.stack);
    ASSERT_GE(c, 0) << g.stack;
    EXPECT_DOUBLE_EQ(results.mean(p, static_cast<std::size_t>(c)), g.value)
        << g.flows << " flows, " << g.stack;
  }
}

// ---------------------------------------------------------------------------
// Fig 1: the motivating example — fluid schedules and D3 per arrival
// order. Deterministic (no seeds involved).
// ---------------------------------------------------------------------------

const std::int64_t kUnit = 1'000'000;  // 1 "size unit" = 1 MB
constexpr double kRate = 8e6;          // 1 unit per second

std::vector<sched::Job> fig1_jobs() {
  return {{1 * kUnit, 0, sim::from_seconds(1.0), 0},
          {2 * kUnit, 0, sim::from_seconds(4.0), 1},
          {3 * kUnit, 0, sim::from_seconds(6.0), 2}};
}

TEST(GoldenFig1, FluidSchedulesMatchThePaperTable) {
  const auto fair = sched::fair_sharing(fig1_jobs(), kRate);
  EXPECT_NEAR(sim::to_seconds(fair.completion[0]), 3.0, 1e-9);
  EXPECT_NEAR(sim::to_seconds(fair.completion[1]), 5.0, 1e-9);
  EXPECT_NEAR(sim::to_seconds(fair.completion[2]), 6.0, 1e-9);
  EXPECT_NEAR(fair.on_time_percent(fig1_jobs()), 100.0 / 3.0, 0.5);

  for (const auto& s :
       {sched::srpt(fig1_jobs(), kRate), sched::edf(fig1_jobs(), kRate)}) {
    EXPECT_NEAR(sim::to_seconds(s.completion[0]), 1.0, 1e-9);
    EXPECT_NEAR(sim::to_seconds(s.completion[1]), 3.0, 1e-9);
    EXPECT_NEAR(sim::to_seconds(s.completion[2]), 6.0, 1e-9);
    EXPECT_NEAR(s.on_time_percent(fig1_jobs()), 100.0, 1e-9);
    EXPECT_NEAR(s.mean_fct_ms(fig1_jobs()), 10000.0 / 3.0, 1.0);
  }
}

/// D3 under a given arrival order — the same flow-level model the fig1
/// bench uses.
int d3_deadlines_met(const std::vector<int>& order) {
  sim::Simulator simulator;
  net::Topology topo(simulator, 1);
  net::LinkDefaults d;
  d.rate_bps = kRate;
  auto servers = net::build_single_bottleneck(topo, 3, d);
  const sim::Time deadlines[3] = {sim::from_seconds(1.0),
                                  sim::from_seconds(4.0),
                                  sim::from_seconds(6.0)};
  const std::int64_t sizes[3] = {1 * kUnit, 2 * kUnit, 3 * kUnit};
  std::vector<net::FlowSpec> flows;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const int i = order[k];
    net::FlowSpec f;
    f.id = i + 1;
    f.src = servers[static_cast<std::size_t>(i)];
    f.dst = servers.back();
    f.size_bytes = sizes[i];
    f.start_time = static_cast<sim::Time>(k) * sim::kMillisecond;
    f.deadline = deadlines[i] - f.start_time;
    flows.push_back(f);
  }
  flowsim::Options o;
  o.model = flowsim::Model::kD3;
  o.goodput_factor = 1.0;
  o.init_latency = 0;
  o.early_termination = false;
  o.horizon = 20 * sim::kSecond;
  flowsim::FlowLevelSimulator fs(topo, o);
  auto r = fs.run(flows);
  int met = 0;
  for (const auto& f : r.flows) met += f.deadline_met() ? 1 : 0;
  return met;
}

// ---------------------------------------------------------------------------
// Fig 5c / Fig 9 / Fig 11: pinned quick-mode values, captured from the
// pre-overhaul engine at base seed 1000 (full double precision).
// ---------------------------------------------------------------------------

TEST(GoldenFig5c, UniversityWorkloadMeanFct) {
  workload::FlowSetOptions w;
  w.num_flows = 250;
  w.size = workload::edu_size();
  w.pattern = workload::random_permutation();
  w.arrival_rate_per_sec = 2000;
  harness::Scenario s;
  s.topology = harness::TopologySpec::single_rooted_tree();
  s.workload = harness::WorkloadSpec::flow_set(w, "edu");
  s.options.horizon = 60 * sim::kSecond;

  const std::pair<const char*, double> expect[] = {
      {"PDQ(Full)", 2.3108666140000018}, {"PDQ(ES)", 2.3108666140000018},
      {"PDQ(Basic)", 2.6914785079999985}, {"RCP", 2.701404674},
      {"TCP", 4.0008906099999999},
  };
  harness::SweepRunner runner(1);
  for (const auto& [stack, value] : expect) {
    EXPECT_DOUBLE_EQ(
        runner.average(s, harness::stack_column(stack), 2, 1000,
                       harness::metrics::mean_fct_ms().fn),
        value)
        << stack;
  }
}

TEST(GoldenFig9, LossResilienceAppThroughput) {
  // 8 deadline flows into one receiver, loss on the bottleneck in both
  // directions, 6 trials.
  struct Case {
    double loss;
    const char* stack;
    double value;
  };
  const Case expect[] = {
      {0.0, "PDQ(Full)", 100.0},
      {0.0, "TCP", 87.5},
      {0.02, "PDQ(Full)", 95.833333333333329},
      {0.02, "TCP", 85.416666666666671},
  };
  harness::SweepRunner runner(1);
  for (const auto& c : expect) {
    harness::AggregationSpec a;
    a.num_flows = 8;
    a.deadlines = true;
    harness::Scenario s = harness::aggregation_scenario(a);
    s.options.horizon = 60 * sim::kSecond;
    s.options.watch_link = std::make_pair(net::NodeId{0}, net::NodeId{9});
    s.options.watch_link_drop_rate = c.loss;
    EXPECT_DOUBLE_EQ(
        runner.average(s, harness::stack_column(c.stack), 6, 1000,
                       harness::metrics::application_throughput().fn),
        c.value)
        << c.stack << " at loss " << c.loss;
  }
}

TEST(GoldenFig11, MpdqBeatsSinglePathPdqOnBcube) {
  struct Case {
    int flows;
    int subflows;  // 0 = single-path PDQ
    double value;
  };
  const Case expect[] = {
      {4, 0, 12.037714999999999},
      {4, 3, 7.7201232500000003},
      {16, 0, 12.601570000000001},
      {16, 3, 10.708453468750001},
  };
  harness::SweepRunner runner(1);
  for (const auto& c : expect) {
    workload::FlowSetOptions w;
    w.num_flows = c.flows;
    w.size = workload::uniform_size(1'000'000, 1'000'000);
    w.pattern = workload::random_permutation();
    harness::Scenario s;
    s.topology = harness::TopologySpec::bcube(2, 3);
    s.workload = harness::WorkloadSpec::flow_set(w, "bcube-perm");
    s.options.horizon = 30 * sim::kSecond;
    harness::Column col;
    if (c.subflows == 0) {
      col = harness::stack_column("PDQ", "PDQ(Full)");
    } else {
      harness::StackOptions mp;
      mp.subflows = c.subflows;
      col = harness::stack_column("M-PDQ(3)", "M-PDQ", mp);
    }
    EXPECT_DOUBLE_EQ(runner.average(s, col, 2, 1000,
                                    harness::metrics::mean_fct_ms().fn),
                     c.value)
        << c.flows << " flows, " << c.subflows << " subflows";
  }
  // The paper's headline: multipath wins at every load level pinned
  // above (7.72 < 12.04, 10.71 < 12.60).
}

TEST(GoldenFig15, DctcpFamilyOnSpineLeafPinnedMeanFct) {
  // The fig15 golden wall: the DCTCP family (multi-queue marking ports)
  // on a small spine-leaf, fixed seed ladder. Any change to the
  // multi-queue admission/marking/service order, the DCTCP estimator,
  // the spine-leaf builder, or the TCP loss path moves these digits.
  workload::FlowSetOptions w;
  w.num_flows = 12;
  w.size = workload::uniform_size(50'000, 500'000);
  w.pattern = workload::random_permutation();
  w.arrival_rate_per_sec = 4000;
  harness::Scenario s;
  s.topology = harness::TopologySpec::spine_leaf(2, 2, 3);
  s.workload = harness::WorkloadSpec::flow_set(w, "spine-mix");
  s.options.horizon = 30 * sim::kSecond;

  harness::StackOptions mq4;
  protocols::DctcpConfig mq_cfg;
  mq_cfg.mq.num_queues = 4;
  mq_cfg.mq.ecn = net::EcnScheme::kMqEcn;
  mq4.dctcp = mq_cfg;
  mq4.label = "DCTCP(MQ4)";

  harness::StackOptions spray;
  protocols::DctcpConfig spray_cfg;
  spray_cfg.tcp.multipath = net::MultipathMode::kPerPacket;
  spray.dctcp = spray_cfg;
  spray.label = "DCTCP(spray)";

  struct Case {
    harness::Column col;
    double value;
  };
  const Case expect[] = {
      {harness::stack_column("DCTCP"), 4.1902837916666673},
      {harness::stack_column("DCTCP(MQ4)", "DCTCP", mq4), 4.0936886666666661},
      {harness::stack_column("DCTCP(spray)", "DCTCP", spray), 3.7656987499999994},
      {harness::stack_column("TCP"), 4.1027810416666668},
  };
  harness::SweepRunner runner(1);
  for (const auto& c : expect) {
    EXPECT_DOUBLE_EQ(runner.average(s, c.col, 2, 1000,
                                    harness::metrics::mean_fct_ms().fn),
                     c.value)
        << c.col.label;
  }
}

TEST(GoldenFig1, D3MeetsAllDeadlinesForExactlyOneArrivalOrder) {
  // Captured from the v1 fig1_motivation binary: deadlines met per
  // next_permutation order of {A,B,C}.
  const int expected[] = {3, 2, 2, 2, 1, 1};
  std::vector<int> order{0, 1, 2};
  int i = 0;
  int orders_all_met = 0;
  do {
    const int met = d3_deadlines_met(order);
    EXPECT_EQ(met, expected[i]) << "order index " << i;
    orders_all_met += (met == 3) ? 1 : 0;
    ++i;
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_EQ(orders_all_met, 1);
}

}  // namespace
}  // namespace pdq
