#include "sim/stats.h"

#include <gtest/gtest.h>

namespace pdq::sim {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.29099, 1e-4);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(0.0), 1, 1);
  EXPECT_NEAR(s.percentile(0.5), 50, 1);
  EXPECT_NEAR(s.percentile(0.99), 99, 1);
  EXPECT_NEAR(s.percentile(1.0), 100, 0);
}

TEST(TimeSeries, TimeAverageOfStepFunction) {
  TimeSeries ts;
  ts.record(0, 10.0);
  ts.record(50, 20.0);  // value 10 over [0,50), 20 over [50,100)
  EXPECT_DOUBLE_EQ(ts.time_average(0, 100), 15.0);
}

TEST(TimeSeries, TimeAverageWindowed) {
  TimeSeries ts;
  ts.record(0, 4.0);
  ts.record(100, 8.0);
  // Window entirely inside the first step.
  EXPECT_DOUBLE_EQ(ts.time_average(10, 60), 4.0);
  // Window starting before any sample sees 0 until the first sample.
  TimeSeries late;
  late.record(50, 6.0);
  EXPECT_DOUBLE_EQ(late.time_average(0, 100), 3.0);
}

TEST(TimeSeries, MaxValue) {
  TimeSeries ts;
  ts.record(1, 5.0);
  ts.record(2, 11.0);
  ts.record(3, 7.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 11.0);
}

TEST(RateMeter, UtilizationPerBin) {
  RateMeter m(kMillisecond, 1e9);  // 1 Gbps link, 1 ms bins
  // 125000 bytes = 1 ms at 1 Gbps -> utilization 1.0.
  m.on_bytes(0, 125'000);
  m.on_bytes(2 * kMillisecond + 1, 62'500);
  ASSERT_GE(m.num_bins(), 3u);
  EXPECT_NEAR(m.utilization(0), 1.0, 1e-9);
  EXPECT_NEAR(m.utilization(1), 0.0, 1e-9);
  EXPECT_NEAR(m.utilization(2), 0.5, 1e-9);
  EXPECT_NEAR(m.utilization(99), 0.0, 1e-9);  // out of range
}

}  // namespace
}  // namespace pdq::sim
