// TimingWheel + ShardQueue property suite.
//
// The wheel's only contract is "never late": flush_until(t) must release
// every entry that could fire before t (whole buckets may come out
// early; nothing may stay behind). The ShardQueue layers the precise
// (time, vtime, seq) heap on top, so the differential oracle here is the
// single-threaded slab EventQueue: any interleaving of schedule / cancel
// / frontier-advance must pop the *identical* (at, vtime, seq, payload)
// sequence from both. The grid tests replay the rate-controller shapes
// that motivated the wheel — periodic re-evaluation ticks, dormancy
// cancels, and wake re-entries that backdate vtime and reuse reserved
// sequence numbers to keep their original tie-break position.
#include "sim/timing_wheel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include "sim/event_queue.h"
#include "sim/shard_queue.h"

namespace pdq::sim {
namespace {

// ---------------------------------------------------------------------------
// TimingWheel alone
// ---------------------------------------------------------------------------

TEST(TimingWheel, FlushReleasesEveryEntryBeforeT) {
  TimingWheel w(/*granularity=*/100, /*num_slots=*/8);
  std::mt19937_64 rng(0x71);
  std::vector<TimingWheel::Entry> live;
  std::uint32_t payload = 0;
  Time t = 0;
  for (int round = 0; round < 200; ++round) {
    // Add a few entries anywhere from "due soon" to far past the
    // horizon (exercising the overflow list and its migration).
    const int adds = static_cast<int>(rng() % 5);
    for (int i = 0; i < adds; ++i) {
      TimingWheel::Entry e;
      // add() requires at >= flushed_until(): the wheel rounds its
      // frontier up to a bucket boundary, so the caller (ShardQueue)
      // routes anything below that to its heap, never the wheel.
      const Time lo = std::max(t, w.flushed_until());
      e.at = lo + static_cast<Time>(rng() % 5000);
      e.payload = payload++;
      w.add(e);
      live.push_back(e);
    }
    ASSERT_EQ(w.size(), live.size());
    // Lower bound is conservative: never later than the true minimum.
    Time true_min = kTimeInfinity;
    for (const auto& e : live) true_min = std::min(true_min, e.at);
    EXPECT_LE(w.next_lower_bound(), true_min);
    // Advance and flush; every released entry is removed from the model.
    t += static_cast<Time>(rng() % 700);
    w.flush_until(t, [&](TimingWheel::Entry e) {
      auto it = std::find_if(live.begin(), live.end(), [&](const auto& m) {
        return m.payload == e.payload;
      });
      ASSERT_NE(it, live.end()) << "duplicate or unknown entry";
      EXPECT_EQ(it->at, e.at);
      live.erase(it);
    });
    EXPECT_GE(w.flushed_until(), t);
    // The contract: nothing due before the flush frontier may remain.
    for (const auto& e : live) {
      EXPECT_GE(e.at, w.flushed_until()) << "entry left behind";
    }
  }
  // Final drain delivers exactly the survivors.
  w.flush_until(t + 1'000'000, [&](TimingWheel::Entry e) {
    auto it = std::find_if(live.begin(), live.end(), [&](const auto& m) {
      return m.payload == e.payload;
    });
    ASSERT_NE(it, live.end());
    live.erase(it);
  });
  EXPECT_TRUE(live.empty());
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.next_lower_bound(), kTimeInfinity);
}

TEST(TimingWheel, LowerBoundWithinOneBucketForInHorizonEntries) {
  TimingWheel w(/*granularity=*/64, /*num_slots=*/16);
  // All entries inside the wheel horizon: the bound is bucket-granular,
  // so it may undershoot the true minimum by at most one bucket width.
  w.add({/*at=*/130, /*payload=*/1});
  w.add({/*at=*/700, /*payload=*/2});
  EXPECT_LE(w.next_lower_bound(), 130);
  EXPECT_GT(w.next_lower_bound() + w.granularity(), 130);
}

TEST(TimingWheel, FlushIsIdempotentAndMonotone) {
  TimingWheel w(/*granularity=*/100, /*num_slots=*/8);
  w.add({/*at=*/250, /*payload=*/7});
  int delivered = 0;
  w.flush_until(300, [&](TimingWheel::Entry) { ++delivered; });
  EXPECT_EQ(delivered, 1);
  // Re-flushing at or below the frontier releases nothing and does not
  // move the frontier backwards.
  const Time frontier = w.flushed_until();
  w.flush_until(10, [&](TimingWheel::Entry) { ++delivered; });
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(w.flushed_until(), frontier);
}

// ---------------------------------------------------------------------------
// ShardQueue vs the slab EventQueue oracle
// ---------------------------------------------------------------------------

/// One event tracked in both queues; popping appends the token to the
/// queue's log so callable identity is verified, not just the keys.
struct LiveEvent {
  EventId oracle_id = 0;
  EventId shard_id = 0;
};

/// Drives identical schedule/cancel/advance interleavings into an
/// EventQueue and a ShardQueue and asserts pops agree exactly. `seed`
/// varies the op mix; `far_spread` controls how far ahead events land
/// (large values park most of them in the wheel first).
void run_differential(std::uint64_t seed, Time far_spread) {
  std::mt19937_64 rng(seed);
  EventQueue oracle;
  ShardQueue shard;
  std::vector<std::uint64_t> oracle_log, shard_log;
  std::map<std::uint64_t, LiveEvent> live;  // token -> ids
  std::uint64_t next_token = 0;
  std::uint64_t next_seq = 0;  // shared dense sequence space
  Time now = 0;

  auto schedule_one = [&](Time at, Time vtime) {
    const std::uint64_t token = next_token++;
    const std::uint64_t seq = next_seq++;
    LiveEvent ev;
    ev.oracle_id = oracle.schedule_with_seq(
        at, vtime, seq, [&oracle_log, token] { oracle_log.push_back(token); });
    ev.shard_id =
        shard
            .schedule(at, vtime, seq,
                      [&shard_log, token] { shard_log.push_back(token); })
            .id;
    live.emplace(token, ev);
  };

  for (int round = 0; round < 300; ++round) {
    // Schedule a burst relative to the current frontier time.
    const int adds = 1 + static_cast<int>(rng() % 6);
    for (int i = 0; i < adds; ++i) {
      const Time at = now + static_cast<Time>(rng() % far_spread);
      // vtime <= at, sometimes backdated to exercise the tie-break.
      const Time vtime = now - std::min<Time>(now, static_cast<Time>(rng() % 3));
      schedule_one(at, vtime);
    }
    // Cancel a random live event in both queues (possibly one that is
    // resident in the wheel). Stale re-cancel must report false.
    if (!live.empty() && rng() % 3 == 0) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng() % live.size()));
      oracle.cancel(it->second.oracle_id);
      EXPECT_TRUE(shard.cancel(it->second.shard_id));
      EXPECT_FALSE(shard.cancel(it->second.shard_id));
      live.erase(it);
    }
    EXPECT_EQ(shard.pending(), oracle.pending());
    EXPECT_EQ(shard.cancelled_total(), oracle.cancelled_total());
    // The shard queue's window-placement bound must never be later
    // than the oracle's exact next event time.
    EXPECT_LE(shard.next_time_lower_bound(), oracle.next_time());

    // Advance: pick a window bound past the next event and execute it
    // from both queues, comparing every key on the way out.
    const Time lb = shard.next_time_lower_bound();
    if (lb == kTimeInfinity) continue;
    const Time bound = lb + 1 + static_cast<Time>(rng() % 1500);
    shard.set_frontier(bound);
    while (shard.has_runnable_before(bound)) {
      auto sp = shard.pop();
      ASSERT_FALSE(oracle.empty());
      ASSERT_LT(oracle.next_time(), bound);
      auto op = oracle.pop();
      ASSERT_EQ(sp.at, op.at);
      ASSERT_EQ(sp.vtime, op.vtime);
      ASSERT_EQ(sp.seq, op.seq);
      sp.fn();
      op.fn();
      ASSERT_EQ(shard_log.back(), oracle_log.back());
      live.erase(shard_log.back());
      now = sp.at;
      // In-window scheduling: occasionally insert below the frontier —
      // the straight-to-heap path that may run this same window.
      if (rng() % 4 == 0) {
        schedule_one(now + static_cast<Time>(rng() % 200), now);
      }
    }
    // Nothing runnable before the bound may remain in the oracle.
    EXPECT_GE(oracle.next_time(), bound);
    now = bound;
  }
  EXPECT_EQ(shard_log, oracle_log);
}

TEST(ShardQueueOracle, MatchesEventQueueNearFuture) {
  // Most events land below the frontier or in the first buckets.
  run_differential(/*seed=*/0xA11CE, /*far_spread=*/400);
}

TEST(ShardQueueOracle, MatchesEventQueueFarFuture) {
  // Spread far beyond the wheel horizon (64us * 256 buckets), pushing
  // entries through the overflow list and bucket migration.
  run_differential(/*seed=*/0xB0B, /*far_spread=*/40'000'000);
}

TEST(ShardQueueOracle, MatchesEventQueueMixedSeeds) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    run_differential(seed, /*far_spread=*/3'000'000);
  }
}

TEST(ShardQueueOracle, DormantWakeGridReentryKeepsTieOrder) {
  // The rate-controller shape: a periodic grid tick schedules one
  // period ahead (far enough to sit in the wheel), goes dormant
  // (cancel), and a later wake re-enters the *same grid instant* with a
  // reserved sequence number and a backdated vtime — it must fire in
  // exactly the position the never-dormant oracle event does, ahead of
  // a same-instant competitor with a later key.
  EventQueue oracle;
  ShardQueue shard;
  std::vector<int> oracle_log, shard_log;
  const Time grid = 500 * kMicrosecond;

  // Reserve the tick's tie-break position first (as the dormancy
  // machinery does at attach time), then burn a competitor seq.
  const std::uint64_t tick_seq = 0;
  const std::uint64_t competitor_seq = 1;
  const std::uint64_t reentry_competitor_seq = 2;

  for (int period = 1; period <= 20; ++period) {
    const Time at = grid * period;
    const Time wake_vtime = grid * (period - 1);  // backdated to schedule time

    // Oracle: the tick was scheduled at the previous grid point and
    // never moved. Shard side: schedule, cancel (dormancy), then wake
    // and re-enter with the reserved seq and backdated vtime.
    oracle.schedule_with_seq(at, wake_vtime, tick_seq,
                             [&oracle_log, period] {
                               oracle_log.push_back(period * 10);
                             });
    const auto dormant = shard.schedule(at, wake_vtime, tick_seq, [] {});
    EXPECT_TRUE(shard.cancel(dormant.id));
    shard.schedule(at, wake_vtime, tick_seq,
                   [&shard_log, period] { shard_log.push_back(period * 10); });

    // A same-instant competitor with identical vtime and a later seq:
    // must lose the tie to the re-entered tick in both queues.
    oracle.schedule_with_seq(at, wake_vtime, competitor_seq,
                             [&oracle_log, period] {
                               oracle_log.push_back(period * 10 + 1);
                             });
    shard.schedule(at, wake_vtime, competitor_seq, [&shard_log, period] {
      shard_log.push_back(period * 10 + 1);
    });
    // And one with a later vtime (fresh schedule at the firing instant):
    // loses on vtime before seq is even consulted.
    oracle.schedule_with_seq(at, at, reentry_competitor_seq,
                             [&oracle_log, period] {
                               oracle_log.push_back(period * 10 + 2);
                             });
    shard.schedule(at, at, reentry_competitor_seq, [&shard_log, period] {
      shard_log.push_back(period * 10 + 2);
    });

    const Time bound = at + 1;
    shard.set_frontier(bound);
    while (shard.has_runnable_before(bound)) {
      auto sp = shard.pop();
      auto op = oracle.pop();
      ASSERT_EQ(sp.at, op.at);
      ASSERT_EQ(sp.vtime, op.vtime);
      ASSERT_EQ(sp.seq, op.seq);
      sp.fn();
      op.fn();
    }
    ASSERT_EQ(shard_log, oracle_log);
    ASSERT_EQ(shard_log.size(), static_cast<std::size_t>(3 * period));
    // Within the instant: tick (reserved seq, backdated vtime) first,
    // same-vtime competitor second, fresh-vtime competitor last.
    EXPECT_EQ(shard_log[shard_log.size() - 3], period * 10);
    EXPECT_EQ(shard_log[shard_log.size() - 2], period * 10 + 1);
    EXPECT_EQ(shard_log[shard_log.size() - 1], period * 10 + 2);
  }
  EXPECT_TRUE(shard.empty());
  EXPECT_TRUE(oracle.empty());
}

TEST(ShardQueueOracle, ProvisionalSeqPatchesToTrueBeforeComparison) {
  // Barrier relabeling: two shards' in-window schedules get provisional
  // numbers above every true one; after patch_seq assigns the dense
  // true values, the pop order must follow the *patched* keys. The
  // cancelled tombstone is patched too (it still participates in heap
  // comparisons until it surfaces).
  ShardQueue q;
  const Time at = 1000;
  const auto a =
      q.schedule(at, 0, kProvisionalSeqBase + 5, [] {});  // later prov
  const auto b =
      q.schedule(at, 0, kProvisionalSeqBase + 2, [] {});  // earlier prov
  const auto c = q.schedule(at, 0, kProvisionalSeqBase + 3, [] {});
  EXPECT_TRUE(q.cancel(c.id));
  // Merge replay decided: b precedes a in true order.
  q.patch_seq(b.slot, b.gen, 10);
  q.patch_seq(a.slot, a.gen, 11);
  q.patch_seq(c.slot, c.gen, 12);  // tombstone patch: no crash, no effect
  q.set_frontier(at + 1);
  auto first = q.pop();
  auto second = q.pop();
  EXPECT_EQ(first.seq, 10u);
  EXPECT_EQ(second.seq, 11u);
  EXPECT_TRUE(q.empty());
  // Generation-checked: patching a released slot is a no-op.
  q.patch_seq(a.slot, a.gen, 99);
}

}  // namespace
}  // namespace pdq::sim
