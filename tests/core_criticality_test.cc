#include "core/criticality.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace pdq::core {
namespace {

Criticality crit(sim::Time d, sim::Time t, net::FlowId f) {
  return Criticality{d, t, f};
}

TEST(Criticality, EarlierDeadlineWins) {
  EXPECT_TRUE(more_critical(crit(100, 999, 5), crit(200, 1, 1)));
}

TEST(Criticality, DeadlineFlowsBeatNoDeadlineFlows) {
  // EDF has priority over SJF (paper S3.3): any deadline beats none.
  EXPECT_TRUE(more_critical(crit(sim::kSecond, 1'000'000, 9),
                            crit(sim::kTimeInfinity, 1, 1)));
}

TEST(Criticality, SjfBreaksDeadlineTies) {
  EXPECT_TRUE(more_critical(crit(100, 10, 5), crit(100, 20, 1)));
  EXPECT_TRUE(more_critical(crit(sim::kTimeInfinity, 10, 5),
                            crit(sim::kTimeInfinity, 20, 1)));
}

TEST(Criticality, FlowIdBreaksFullTies) {
  EXPECT_TRUE(more_critical(crit(100, 10, 1), crit(100, 10, 2)));
  EXPECT_FALSE(more_critical(crit(100, 10, 2), crit(100, 10, 1)));
}

TEST(Criticality, StrictWeakOrdering) {
  const auto a = crit(100, 10, 1);
  EXPECT_FALSE(more_critical(a, a));  // irreflexive
  const auto b = crit(100, 20, 2);
  const auto c = crit(200, 1, 3);
  // transitivity on a known chain a < b < c
  EXPECT_TRUE(more_critical(a, b));
  EXPECT_TRUE(more_critical(b, c));
  EXPECT_TRUE(more_critical(a, c));
}

TEST(Criticality, SortProducesEdfThenSjf) {
  std::vector<Criticality> v{
      crit(sim::kTimeInfinity, 5, 4), crit(300, 1, 3),
      crit(sim::kTimeInfinity, 2, 5), crit(100, 9, 1), crit(100, 3, 2),
  };
  std::sort(v.begin(), v.end());
  std::vector<net::FlowId> order;
  for (const auto& c : v) order.push_back(c.flow);
  EXPECT_EQ(order, (std::vector<net::FlowId>{2, 1, 3, 5, 4}));
}

TEST(Criticality, TotalOrderIsGloballyConsistent) {
  // The comparator depends only on flow state, never on the switch —
  // this is what makes PDQ deadlock-free (Appendix A): all switches
  // rank any two flows identically.
  const auto a = crit(100, 10, 1);
  const auto b = crit(100, 10, 2);
  EXPECT_TRUE(more_critical(a, b) != more_critical(b, a));
}

}  // namespace
}  // namespace pdq::core
