#include "sim/inline_function.h"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <utility>

namespace pdq::sim {
namespace {

using Fn = InlineFunction<48>;

TEST(InlineFunction, InvokesStoredCallable) {
  int ran = 0;
  Fn f([&ran] { ++ran; });
  f();
  f();
  EXPECT_EQ(ran, 2);
}

TEST(InlineFunction, SmallCapturesStayInline) {
  struct Small {
    void* a;
    void* b;
    void operator()() {}
  };
  struct Big {
    std::array<char, 64> blob;
    void operator()() {}
  };
  EXPECT_TRUE(Fn::fits_inline<Small>());
  EXPECT_FALSE(Fn::fits_inline<Big>());
  // The hot-path simulator capture shape: this + Port& + PacketPtr.
  struct HotPath {
    void* self;
    void* port;
    void* packet;
    void operator()() {}
  };
  EXPECT_TRUE(Fn::fits_inline<HotPath>());
  // std::function fits too (scenario.cc's recurring sampler).
  EXPECT_TRUE(Fn::fits_inline<std::function<void()>>());
}

TEST(InlineFunction, HeapFallbackStillWorks) {
  std::array<double, 16> big{};  // 128 bytes: over budget
  big[7] = 42.0;
  double got = 0;
  Fn f([big, &got] { got = big[7]; });
  f();
  EXPECT_DOUBLE_EQ(got, 42.0);
}

TEST(InlineFunction, MoveTransfersOwnership) {
  auto token = std::make_shared<int>(5);
  std::weak_ptr<int> watch = token;
  int got = 0;
  Fn a([t = std::move(token), &got] { got = *t; });
  Fn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(got, 5);
  b.reset();
  EXPECT_TRUE(watch.expired());  // capture destroyed with the wrapper
}

TEST(InlineFunction, MoveAssignDestroysPreviousCallable) {
  auto old_token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = old_token;
  Fn a([t = std::move(old_token)] { (void)*t; });
  a = Fn([] {});
  EXPECT_TRUE(watch.expired());
  a();  // new callable runs fine
}

TEST(InlineFunction, DestructorReleasesCapture) {
  auto token = std::make_shared<int>(9);
  std::weak_ptr<int> watch = token;
  {
    Fn f([t = std::move(token)] { (void)*t; });
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFunction, EmptyIsFalsy) {
  Fn f;
  EXPECT_FALSE(static_cast<bool>(f));
  f = Fn([] {});
  EXPECT_TRUE(static_cast<bool>(f));
}

}  // namespace
}  // namespace pdq::sim
