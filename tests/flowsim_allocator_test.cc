// Direct unit tests for the three fluid allocators (allocate_pdq /
// allocate_maxmin / allocate_d3) through the equilibrium_rates() hook:
// one allocation round against hand-computed equilibria on small
// hand-built topologies where every bottleneck is known exactly.
#include "flowsim/flowsim.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "sim/simulator.h"

namespace pdq::flowsim {
namespace {

constexpr double kGbps = 1e9;

Options pure(Model m) {
  // goodput_factor 1.0 so granted rates compare against raw capacities.
  Options o;
  o.model = m;
  o.goodput_factor = 1.0;
  o.init_latency = 0;
  return o;
}

/// Two sender hosts behind one switch, one receiver. Host uplinks are
/// 1 Gbps; the switch->receiver downlink rate is a parameter, so tests
/// choose whether the uplinks or the downlink bottleneck.
struct TwoHostRig {
  sim::Simulator simulator;
  net::Topology topo{simulator};
  net::NodeId sw, h0, h1, recv;

  explicit TwoHostRig(double downlink_bps = 1e9) {
    sw = topo.add_switch();
    h0 = topo.add_host();
    h1 = topo.add_host();
    recv = topo.add_host();
    net::LinkDefaults up;  // 1 Gbps host uplinks
    topo.add_duplex_link(h0, sw, up);
    topo.add_duplex_link(h1, sw, up);
    net::LinkDefaults down;
    down.rate_bps = downlink_bps;
    topo.add_duplex_link(sw, recv, down);
  }

  net::FlowSpec flow(net::FlowId id, net::NodeId src, std::int64_t size,
                     sim::Time deadline = sim::kTimeInfinity) const {
    net::FlowSpec f;
    f.id = id;
    f.src = src;
    f.dst = recv;
    f.size_bytes = size;
    f.deadline = deadline;
    return f;
  }
};

TEST(FlowSimAllocators, PdqGrantsFullRateInCriticalityOrder) {
  // 3 Gbps downlink, so only the uplinks bottleneck: PDQ packs h0's
  // most-critical (smallest) flow at the full NIC rate, the second h0
  // flow finds zero uplink residual, and h1's flow — less critical than
  // both — still gets its own full uplink. Greedy packing is per-link,
  // not a global priority cutoff.
  TwoHostRig rig(3e9);
  FlowLevelSimulator fs(rig.topo, pure(Model::kPdq));
  std::vector<net::FlowSpec> specs = {
      rig.flow(1, rig.h0, 1'000'000),
      rig.flow(2, rig.h0, 2'000'000),
      rig.flow(3, rig.h1, 3'000'000),
  };
  auto r = fs.equilibrium_rates(specs);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_NEAR(r[0], kGbps, 1.0);
  EXPECT_NEAR(r[1], 0.0, 1.0);
  EXPECT_NEAR(r[2], kGbps, 1.0);
}

TEST(FlowSimAllocators, PdqDeadlineBeatsShorterNonDeadlineFlow) {
  // Criticality sorts by (deadline, T, id): any finite deadline ranks
  // ahead of a deadline-less mouse, so the big deadline flow takes the
  // whole shared 1 Gbps downlink.
  TwoHostRig rig;
  FlowLevelSimulator fs(rig.topo, pure(Model::kPdq));
  std::vector<net::FlowSpec> specs = {
      rig.flow(1, rig.h0, 5'000'000, 100 * sim::kMillisecond),
      rig.flow(2, rig.h1, 1'000),
  };
  auto r = fs.equilibrium_rates(specs);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_NEAR(r[0], kGbps, 1.0);
  EXPECT_NEAR(r[1], 0.0, 1.0);
}

TEST(FlowSimAllocators, MaxMinProgressiveFilling) {
  // Classic two-level instance on a 3 Gbps downlink: h0's two flows
  // split its 1 Gbps uplink (500 Mbps each, the first bottleneck);
  // h1's flow then fills to its own 1 Gbps NIC — not to the 500 Mbps
  // first-round share, which is what a single-pass fair split would
  // wrongly produce.
  TwoHostRig rig(3e9);
  FlowLevelSimulator fs(rig.topo, pure(Model::kRcp));
  std::vector<net::FlowSpec> specs = {
      rig.flow(1, rig.h0, 1'000'000),
      rig.flow(2, rig.h0, 1'000'000),
      rig.flow(3, rig.h1, 1'000'000),
  };
  auto r = fs.equilibrium_rates(specs);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_NEAR(r[0], 0.5 * kGbps, 1.0);
  EXPECT_NEAR(r[1], 0.5 * kGbps, 1.0);
  EXPECT_NEAR(r[2], kGbps, 1.0);
}

TEST(FlowSimAllocators, MaxMinSplitsSharedBottleneckEvenly) {
  // Both uplinks out-provision the shared 1 Gbps downlink: equal split.
  TwoHostRig rig;
  FlowLevelSimulator fs(rig.topo, pure(Model::kRcp));
  std::vector<net::FlowSpec> specs = {
      rig.flow(1, rig.h0, 4'000'000),
      rig.flow(2, rig.h1, 1'000'000),
  };
  auto r = fs.equilibrium_rates(specs);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_NEAR(r[0], 0.5 * kGbps, 1.0);
  EXPECT_NEAR(r[1], 0.5 * kGbps, 1.0);
}

TEST(FlowSimAllocators, D3ReservesDeadlineDemandThenSharesLeftover) {
  // Pass 1 reserves the deadline flow's demand: 8 Mbit / 20 ms =
  // 400 Mbps. Pass 2 splits the downlink's leftover 600 Mbps additively
  // max-min (300 Mbps each), so the equilibrium is 700 / 300 Mbps.
  TwoHostRig rig;
  FlowLevelSimulator fs(rig.topo, pure(Model::kD3));
  std::vector<net::FlowSpec> specs = {
      rig.flow(1, rig.h0, 1'000'000, 20 * sim::kMillisecond),
      rig.flow(2, rig.h1, 5'000'000),
  };
  auto r = fs.equilibrium_rates(specs, /*at=*/0);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_NEAR(r[0], 0.7 * kGbps, 1e3);
  EXPECT_NEAR(r[1], 0.3 * kGbps, 1e3);
}

TEST(FlowSimAllocators, D3DemandShrinksAsDeadlineApproachesWithProgress) {
  // Demand is remaining/time-to-deadline evaluated at `at`: half the
  // deadline gone with no progress doubles the reservation.
  TwoHostRig rig;
  FlowLevelSimulator fs(rig.topo, pure(Model::kD3));
  std::vector<net::FlowSpec> specs = {
      rig.flow(1, rig.h0, 1'000'000, 20 * sim::kMillisecond),
      rig.flow(2, rig.h1, 5'000'000),
  };
  auto r = fs.equilibrium_rates(specs, /*at=*/10 * sim::kMillisecond);
  ASSERT_EQ(r.size(), 2u);
  // 8 Mbit / 10 ms = 800 Mbps reserved; leftover 200 Mbps split 100/100.
  EXPECT_NEAR(r[0], 0.9 * kGbps, 1e3);
  EXPECT_NEAR(r[1], 0.1 * kGbps, 1e3);
}

}  // namespace
}  // namespace pdq::flowsim
