// Build-umbrella smoke test: every protocol stack the harness exposes can
// be instantiated, installed on a topology, and driven end-to-end. Guards
// the build graph itself — if a stack's translation unit falls out of the
// pdq library, this file stops linking.
#include <gtest/gtest.h>

#include "harness/scenario.h"
#include "harness/stacks.h"
#include "test_util.h"

namespace pdq::harness {
namespace {

using pdq::testing::run_single_bottleneck;

constexpr int kFlows = 5;
constexpr std::int64_t kFlowBytes = 200'000;

double mean_fct_ms(ProtocolStack& stack) {
  auto r = run_single_bottleneck(stack, kFlows, kFlowBytes);
  EXPECT_EQ(r.completed(), static_cast<std::size_t>(kFlows))
      << stack.name() << " failed to complete all flows";
  EXPECT_GT(r.mean_fct_ms(), 0.0) << stack.name();
  return r.mean_fct_ms();
}

TEST(SmokeBuild, EveryStackRunsAScenario) {
  TcpStack tcp;
  RcpStack rcp;
  D3Stack d3;
  PdqStack pdq;
  MpdqStack mpdq{core::MpdqConfig{}};
  for (ProtocolStack* stack :
       {static_cast<ProtocolStack*>(&tcp), static_cast<ProtocolStack*>(&rcp),
        static_cast<ProtocolStack*>(&d3), static_cast<ProtocolStack*>(&pdq),
        static_cast<ProtocolStack*>(&mpdq)}) {
    mean_fct_ms(*stack);
  }
}

// The paper's headline ordering on a shared bottleneck with equal flows:
// PDQ serialises flows (shortest/earliest first) so its mean FCT beats the
// fair-sharing transports, which finish all flows near-simultaneously.
TEST(SmokeBuild, FctOrderingMatchesPaper) {
  TcpStack tcp;
  RcpStack rcp;
  D3Stack d3;
  PdqStack pdq;
  MpdqStack mpdq{core::MpdqConfig{}};

  const double fct_tcp = mean_fct_ms(tcp);
  const double fct_rcp = mean_fct_ms(rcp);
  const double fct_d3 = mean_fct_ms(d3);
  const double fct_pdq = mean_fct_ms(pdq);
  const double fct_mpdq = mean_fct_ms(mpdq);

  EXPECT_LT(fct_pdq, fct_tcp);
  EXPECT_LT(fct_pdq, fct_rcp);
  EXPECT_LT(fct_pdq, fct_d3);
  // M-PDQ degenerates to PDQ-like behaviour on a single path; it must stay
  // within striking distance of PDQ and still beat fair sharing.
  EXPECT_LT(fct_mpdq, fct_tcp);
}

}  // namespace
}  // namespace pdq::harness
