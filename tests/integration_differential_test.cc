// Differential tests: the packet-level simulator, the flow-level
// simulator and the fluid schedulers must agree on shapes and, where the
// models coincide, on numbers.
#include <gtest/gtest.h>

#include "flowsim/flowsim.h"
#include "sched/fluid.h"
#include "test_util.h"
#include "workload/workload.h"

namespace pdq {
namespace {

struct CaseParam {
  int flows;
  std::int64_t size;
  std::uint64_t seed;
};

class Differential : public ::testing::TestWithParam<CaseParam> {};

TEST_P(Differential, PacketVsFlowLevelPdqAgreeWithin25Percent) {
  const auto p = GetParam();
  // Packet level.
  harness::PdqStack stack;
  auto rp = testing::run_single_bottleneck(stack, p.flows, p.size);
  ASSERT_EQ(rp.completed(), static_cast<std::size_t>(p.flows));
  // Flow level on the same topology and flows.
  sim::Simulator simulator;
  net::Topology topo(simulator, p.seed);
  auto servers = net::build_single_bottleneck(topo, p.flows);
  std::vector<net::FlowSpec> flows;
  for (int i = 0; i < p.flows; ++i) {
    net::FlowSpec f;
    f.id = i + 1;
    f.src = servers[static_cast<std::size_t>(i)];
    f.dst = servers.back();
    f.size_bytes = p.size;
    flows.push_back(f);
  }
  flowsim::Options o;
  o.model = flowsim::Model::kPdq;
  flowsim::FlowLevelSimulator fs(topo, o);
  auto rf = fs.run(flows);
  ASSERT_EQ(rf.completed(), static_cast<std::size_t>(p.flows));
  EXPECT_NEAR(rp.mean_fct_ms(), rf.mean_fct_ms(),
              0.25 * rf.mean_fct_ms() + 0.5);
}

TEST_P(Differential, PacketVsFluidSrptAgreeOnPdqMean) {
  const auto p = GetParam();
  harness::PdqStack stack;
  auto rp = testing::run_single_bottleneck(stack, p.flows, p.size);
  std::vector<sched::Job> jobs;
  for (int i = 0; i < p.flows; ++i) jobs.push_back({p.size, 0, sim::kTimeInfinity, i});
  // Fluid SRPT is a lower bound; packet PDQ should be within ~35% of it
  // (init latency, headers, switchover).
  const double fluid = sched::srpt(jobs, 1e9).mean_fct_ms(jobs);
  EXPECT_GE(rp.mean_fct_ms(), fluid * 0.99);
  EXPECT_LE(rp.mean_fct_ms(), fluid * 1.35 + 1.0);
}

TEST_P(Differential, PacketRcpVsFluidFairSharing) {
  const auto p = GetParam();
  harness::RcpStack stack;
  auto rr = testing::run_single_bottleneck(stack, p.flows, p.size);
  std::vector<sched::Job> jobs;
  for (int i = 0; i < p.flows; ++i) jobs.push_back({p.size, 0, sim::kTimeInfinity, i});
  const double fluid = sched::fair_sharing(jobs, 1e9).mean_fct_ms(jobs);
  EXPECT_GE(rr.mean_fct_ms(), fluid * 0.99);
  EXPECT_LE(rr.mean_fct_ms(), fluid * 1.35 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Differential,
    ::testing::Values(CaseParam{2, 1'000'000, 1}, CaseParam{4, 500'000, 2},
                      CaseParam{8, 250'000, 3}, CaseParam{3, 2'000'000, 4}));

TEST(Differential, ByteConservationAcrossAllProtocols) {
  // Whatever the protocol, every completed flow delivers exactly its size.
  for (const char* name : {"pdq", "rcp", "d3", "tcp"}) {
    std::unique_ptr<harness::ProtocolStack> stack;
    if (std::string(name) == "pdq") stack = std::make_unique<harness::PdqStack>();
    if (std::string(name) == "rcp") stack = std::make_unique<harness::RcpStack>();
    if (std::string(name) == "d3") stack = std::make_unique<harness::D3Stack>();
    if (std::string(name) == "tcp") stack = std::make_unique<harness::TcpStack>();
    auto r = testing::run_single_bottleneck(*stack, 5, 333'333);
    ASSERT_EQ(r.completed(), 5u) << name;
    for (const auto& f : r.flows) {
      EXPECT_EQ(f.bytes_acked, 333'333) << name;
    }
  }
}

TEST(Differential, TreeTopologyAllProtocolsFinishPermutationTraffic) {
  for (const char* name : {"pdq", "rcp", "d3", "tcp"}) {
    std::unique_ptr<harness::ProtocolStack> stack;
    if (std::string(name) == "pdq") stack = std::make_unique<harness::PdqStack>();
    if (std::string(name) == "rcp") stack = std::make_unique<harness::RcpStack>();
    if (std::string(name) == "d3") stack = std::make_unique<harness::D3Stack>();
    if (std::string(name) == "tcp") stack = std::make_unique<harness::TcpStack>();

    sim::Rng rng(5);
    sim::Simulator s0;
    net::Topology t0(s0, 1);
    auto servers = net::build_single_rooted_tree(t0);
    workload::FlowSetOptions w;
    w.num_flows = 12;
    w.size = workload::uniform_size(50'000, 150'000);
    w.pattern = workload::random_permutation();
    auto flows = workload::make_flows(servers, w, rng);

    auto build = [](net::Topology& t) {
      return net::build_single_rooted_tree(t);
    };
    harness::RunOptions opts;
    opts.horizon = 30 * sim::kSecond;
    auto r = harness::run_scenario(*stack, build, flows, opts);
    EXPECT_EQ(r.completed(), flows.size()) << name;
  }
}

TEST(Differential, FatTreePdqBeatsRcpOnPermutationMix) {
  sim::Rng rng(9);
  sim::Simulator s0;
  net::Topology t0(s0, 1);
  auto servers = net::build_fat_tree(t0, 4);
  workload::FlowSetOptions w;
  w.num_flows = 32;
  // Enough bytes per flow that scheduling (not handshakes) dominates.
  w.size = workload::uniform_size(200'000, 800'000);
  w.pattern = workload::random_permutation();
  auto flows = workload::make_flows(servers, w, rng);

  auto build = [](net::Topology& t) { return net::build_fat_tree(t, 4); };
  harness::RunOptions opts;
  opts.horizon = 30 * sim::kSecond;
  harness::PdqStack pdq;
  auto flows1 = flows;
  auto rp = harness::run_scenario(pdq, build, flows1, opts);
  harness::RcpStack rcp;
  auto flows2 = flows;
  auto rr = harness::run_scenario(rcp, build, flows2, opts);
  ASSERT_EQ(rp.completed(), flows.size());
  ASSERT_EQ(rr.completed(), flows.size());
  EXPECT_LT(rp.mean_fct_ms(), rr.mean_fct_ms() * 1.05);
}

TEST(Differential, JellyfishCarriesAllProtocols) {
  sim::Rng rng(11);
  sim::Simulator s0;
  net::Topology t0(s0, 1);
  auto servers = net::build_jellyfish(t0, 8, 6, 4, 3);
  workload::FlowSetOptions w;
  w.num_flows = 16;
  w.size = workload::uniform_size(20'000, 100'000);
  w.pattern = workload::random_permutation();
  auto flows = workload::make_flows(servers, w, rng);
  auto build = [](net::Topology& t) {
    return net::build_jellyfish(t, 8, 6, 4, 3);
  };
  harness::RunOptions opts;
  opts.horizon = 30 * sim::kSecond;
  harness::PdqStack pdq;
  auto r = harness::run_scenario(pdq, build, flows, opts);
  EXPECT_EQ(r.completed(), flows.size());
}

}  // namespace
}  // namespace pdq
