// ExperimentSpec + SweepRunner: seed ladder, determinism across thread
// counts, analytic columns, per-point tuning, adaptive averaging.
#include "harness/sweep.h"

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "harness/experiment.h"

namespace pdq::harness {
namespace {

TEST(TrialSeed, LadderIsDocumentedBasePlusSevenTimesTrial) {
  EXPECT_EQ(trial_seed(kDefaultBaseSeed, 0), 1000u);
  EXPECT_EQ(trial_seed(kDefaultBaseSeed, 1), 1007u);
  EXPECT_EQ(trial_seed(kDefaultBaseSeed, 3), 1021u);
  EXPECT_EQ(trial_seed(42, 2), 42u + 2 * kTrialSeedStride);
  // Distinct within any experiment.
  std::set<std::uint64_t> seeds;
  for (int t = 0; t < 100; ++t) seeds.insert(trial_seed(7, t));
  EXPECT_EQ(seeds.size(), 100u);
}

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.name = "test_sweep";
  spec.axis = "#flows";
  spec.metric = metrics::application_throughput();
  spec.trials = 2;
  spec.base = aggregation_scenario({});
  Column optimal;
  optimal.label = "Optimal";
  optimal.metric = metrics::optimal_application_throughput().fn;
  spec.columns.push_back(optimal);
  spec.columns.push_back(stack_column("PDQ(Full)"));
  spec.columns.push_back(stack_column("TCP"));
  for (int n : {2, 4}) {
    SweepPoint p;
    p.label = std::to_string(n);
    p.apply = [n](Scenario& s) {
      AggregationSpec a;
      a.num_flows = n;
      s = aggregation_scenario(a);
    };
    spec.points.push_back(std::move(p));
  }
  return spec;
}

TEST(SweepRunner, FillsTheFullCrossProduct) {
  const auto spec = small_spec();
  const auto r = SweepRunner(1).run(spec);
  EXPECT_EQ(r.name, "test_sweep");
  ASSERT_EQ(r.points.size(), 2u);
  ASSERT_EQ(r.columns.size(), 3u);
  ASSERT_EQ(r.seeds.size(), 2u);
  EXPECT_EQ(r.seeds[0], kDefaultBaseSeed);
  EXPECT_EQ(r.seeds[1], kDefaultBaseSeed + kTrialSeedStride);
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t c = 0; c < 3; ++c) {
      ASSERT_EQ(r.samples[p][c].size(), 2u);
      for (double v : r.samples[p][c]) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 100.0);
      }
    }
  }
  EXPECT_EQ(r.column_index("TCP"), 2);
  EXPECT_EQ(r.column_index("nope"), -1);
  const auto grid = r.means();
  EXPECT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid[0].size(), 3u);
}

TEST(SweepRunner, ResultsAreIdenticalForAnyThreadCount) {
  const auto spec = small_spec();
  const auto serial = SweepRunner(1).run(spec);
  const auto parallel = SweepRunner(4).run(spec);
  ASSERT_EQ(serial.samples.size(), parallel.samples.size());
  for (std::size_t p = 0; p < serial.samples.size(); ++p) {
    for (std::size_t c = 0; c < serial.samples[p].size(); ++c) {
      for (std::size_t t = 0; t < serial.samples[p][c].size(); ++t) {
        EXPECT_EQ(serial.samples[p][c][t], parallel.samples[p][c][t])
            << "point " << p << " column " << c << " trial " << t;
      }
    }
  }
}

TEST(SweepRunner, PoolActuallyRunsJobsOnWorkerThreads) {
  // Timing assertions are flaky on small machines; instead observe that
  // a 4-thread pool executes jobs on >1 distinct threads when each job
  // blocks long enough to force overlap.
  ExperimentSpec spec;
  spec.name = "thread_probe";
  spec.metric = {"none", [](const RunContext&) { return 0.0; }};
  spec.trials = 4;
  std::mutex mu;
  std::set<std::thread::id> ids;
  Column probe;
  probe.label = "probe";
  probe.evaluate = [&](const Scenario&, std::uint64_t) {
    {
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return 0.0;
  };
  spec.columns.push_back(probe);
  spec.points.push_back({"p", nullptr, nullptr});
  SweepRunner(4).run(spec);
  EXPECT_GT(ids.size(), 1u);
}

TEST(SweepRunner, TunePointsAdjustColumnsPerPoint) {
  ExperimentSpec spec;
  spec.name = "tuned";
  spec.metric = {"value", [](const RunContext&) { return -1.0; }};
  spec.trials = 1;
  Column c;
  c.label = "col";
  c.evaluate = [](const Scenario&, std::uint64_t) { return 1.0; };
  spec.columns.push_back(c);
  spec.points.push_back({"plain", nullptr, nullptr});
  SweepPoint tuned;
  tuned.label = "tuned";
  tuned.tune = [](Column& col) {
    col.evaluate = [](const Scenario&, std::uint64_t) { return 2.0; };
  };
  spec.points.push_back(std::move(tuned));
  const auto r = SweepRunner(1).run(spec);
  EXPECT_EQ(r.samples[0][0][0], 1.0);
  EXPECT_EQ(r.samples[1][0][0], 2.0);
}

TEST(SweepRunner, CustomEvaluateReceivesTheSeedLadder) {
  ExperimentSpec spec;
  spec.name = "seeds";
  spec.metric = {"seed", [](const RunContext&) { return 0.0; }};
  spec.trials = 3;
  spec.base_seed = 50;
  Column c;
  c.label = "seed";
  c.evaluate = [](const Scenario&, std::uint64_t seed) {
    return static_cast<double>(seed);
  };
  spec.columns.push_back(c);
  spec.points.push_back({"p", nullptr, nullptr});
  const auto r = SweepRunner(1).run(spec);
  EXPECT_EQ(r.samples[0][0][0], 50.0);
  EXPECT_EQ(r.samples[0][0][1], 57.0);
  EXPECT_EQ(r.samples[0][0][2], 64.0);
}

TEST(SweepRunner, AverageMatchesMeanOfSamples) {
  SweepRunner runner(2);
  AggregationSpec a;
  a.num_flows = 3;
  const auto scenario = aggregation_scenario(a);
  const auto column = stack_column("PDQ(Full)");
  const auto values =
      runner.samples(scenario, column, 3, kDefaultBaseSeed,
                     metrics::mean_fct_ms().fn);
  ASSERT_EQ(values.size(), 3u);
  const double avg = runner.average(scenario, column, 3, kDefaultBaseSeed,
                                    metrics::mean_fct_ms().fn);
  EXPECT_DOUBLE_EQ(avg, (values[0] + values[1] + values[2]) / 3.0);
  for (double v : values) EXPECT_GT(v, 0.0);
}

TEST(SweepRunner, AnalyticColumnsRunWithoutASimulation) {
  // Optimal on one 100 KB flow over a 1 Gbps bottleneck: 0.8 ms.
  AggregationSpec a;
  a.num_flows = 1;
  a.size_lo = a.size_hi = 100'000;
  a.deadlines = false;
  Column optimal;
  optimal.label = "Optimal";
  optimal.metric = metrics::optimal_mean_fct_ms().fn;
  const double v = SweepRunner::evaluate(aggregation_scenario(a), optimal,
                                         1, nullptr);
  EXPECT_NEAR(v, 0.8, 1e-9);
}

TEST(SweepRunner, AggregationScenarioMatchesRunScenarioShim) {
  // The declarative path must reproduce the v1 imperative path exactly.
  AggregationSpec a;
  a.num_flows = 4;
  const std::uint64_t seed = 1234;

  // v2: engine evaluation.
  const double v2 = SweepRunner::evaluate(aggregation_scenario(a),
                                          stack_column("PDQ(Full)"), seed,
                                          metrics::mean_fct_ms().fn);

  // v1: materialize by hand and call the compatibility shim.
  const auto scenario = aggregation_scenario(a);
  sim::Simulator simulator;
  net::Topology topo(simulator, seed);
  auto servers = scenario.topology.build(topo);
  sim::Rng rng(seed);
  auto flows = scenario.workload.make(servers, rng);
  auto stack = StackRegistry::global().make("PDQ(Full)");
  RunOptions opts = scenario.options;
  opts.seed = seed;
  const auto r = run_scenario(
      *stack, [&](net::Topology& t) { return scenario.topology.build(t); },
      flows, opts);
  EXPECT_DOUBLE_EQ(v2, r.mean_fct_ms());
}

}  // namespace
}  // namespace pdq::harness
