#include "net/queue.h"

#include <gtest/gtest.h>

namespace pdq::net {
namespace {

PacketPtr sized_packet(std::int32_t size) {
  PacketPtr p = make_packet();
  p->size_bytes = size;
  return p;
}

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q(10'000);
  for (int i = 0; i < 3; ++i) {
    auto p = sized_packet(100);
    p->seq = i;
    EXPECT_TRUE(q.push(std::move(p)));
  }
  for (int i = 0; i < 3; ++i) EXPECT_EQ(q.pop()->seq, i);
  EXPECT_TRUE(q.empty());
}

TEST(DropTailQueue, ByteAccounting) {
  DropTailQueue q(10'000);
  q.push(sized_packet(1500));
  q.push(sized_packet(40));
  EXPECT_EQ(q.bytes(), 1540);
  EXPECT_EQ(q.packets(), 2u);
  q.pop();
  EXPECT_EQ(q.bytes(), 40);
}

TEST(DropTailQueue, TailDropWhenFull) {
  DropTailQueue q(3'000);
  EXPECT_TRUE(q.push(sized_packet(1500)));
  EXPECT_TRUE(q.push(sized_packet(1500)));
  EXPECT_FALSE(q.push(sized_packet(1500)));  // would exceed capacity
  EXPECT_EQ(q.drops(), 1);
  EXPECT_EQ(q.dropped_bytes(), 1500);
  EXPECT_EQ(q.packets(), 2u);
}

TEST(DropTailQueue, SmallPacketFitsAfterBigDrop) {
  DropTailQueue q(3'100);
  q.push(sized_packet(1500));
  q.push(sized_packet(1500));
  EXPECT_FALSE(q.push(sized_packet(1500)));
  EXPECT_TRUE(q.push(sized_packet(100)));  // 100 bytes still fit
}

TEST(DropTailQueue, ExactCapacityFits) {
  DropTailQueue q(1500);
  EXPECT_TRUE(q.push(sized_packet(1500)));
  EXPECT_FALSE(q.push(sized_packet(1)));
}

}  // namespace
}  // namespace pdq::net
