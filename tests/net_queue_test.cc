#include "net/queue.h"

#include <gtest/gtest.h>

namespace pdq::net {
namespace {

PacketPtr sized_packet(std::int32_t size) {
  PacketPtr p = make_packet();
  p->size_bytes = size;
  return p;
}

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q(10'000);
  for (int i = 0; i < 3; ++i) {
    auto p = sized_packet(100);
    p->seq = i;
    EXPECT_TRUE(q.push(std::move(p)));
  }
  for (int i = 0; i < 3; ++i) EXPECT_EQ(q.pop()->seq, i);
  EXPECT_TRUE(q.empty());
}

TEST(DropTailQueue, ByteAccounting) {
  DropTailQueue q(10'000);
  q.push(sized_packet(1500));
  q.push(sized_packet(40));
  EXPECT_EQ(q.bytes(), 1540);
  EXPECT_EQ(q.packets(), 2u);
  q.pop();
  EXPECT_EQ(q.bytes(), 40);
}

TEST(DropTailQueue, TailDropWhenFull) {
  DropTailQueue q(3'000);
  EXPECT_TRUE(q.push(sized_packet(1500)));
  EXPECT_TRUE(q.push(sized_packet(1500)));
  EXPECT_FALSE(q.push(sized_packet(1500)));  // would exceed capacity
  EXPECT_EQ(q.drops(), 1);
  EXPECT_EQ(q.dropped_bytes(), 1500);
  EXPECT_EQ(q.packets(), 2u);
}

TEST(DropTailQueue, SmallPacketFitsAfterBigDrop) {
  DropTailQueue q(3'100);
  q.push(sized_packet(1500));
  q.push(sized_packet(1500));
  EXPECT_FALSE(q.push(sized_packet(1500)));
  EXPECT_TRUE(q.push(sized_packet(100)));  // 100 bytes still fit
}

TEST(DropTailQueue, ExactCapacityFits) {
  DropTailQueue q(1500);
  EXPECT_TRUE(q.push(sized_packet(1500)));
  EXPECT_FALSE(q.push(sized_packet(1)));
}

TEST(DropTailQueue, StaysInlineUpToInlineSlots) {
  DropTailQueue q(1 << 20);
  for (std::size_t i = 0; i < DropTailQueue::kInlineSlots; ++i) {
    EXPECT_TRUE(q.push(sized_packet(100)));
  }
  EXPECT_EQ(q.slot_capacity(), DropTailQueue::kInlineSlots);
}

TEST(DropTailQueue, GrowsBeyondInlineRingPreservingFifo) {
  DropTailQueue q(1 << 20);
  constexpr int kN = 100;  // several doublings past the inline ring
  for (int i = 0; i < kN; ++i) {
    auto p = sized_packet(100);
    p->seq = i;
    EXPECT_TRUE(q.push(std::move(p)));
  }
  EXPECT_GE(q.slot_capacity(), static_cast<std::size_t>(kN));
  EXPECT_EQ(q.packets(), static_cast<std::size_t>(kN));
  EXPECT_EQ(q.bytes(), 100 * kN);
  for (int i = 0; i < kN; ++i) EXPECT_EQ(q.pop()->seq, i);
  EXPECT_TRUE(q.empty());
}

TEST(DropTailQueue, WrapAroundUnderChurnKeepsOrderAndGrowsMidWrap) {
  DropTailQueue q(1 << 20);
  std::int64_t next = 0, expect = 0;
  // Offset the head so later growth happens mid-wrap.
  for (int i = 0; i < 5; ++i) {
    auto p = sized_packet(10);
    p->seq = next++;
    q.push(std::move(p));
  }
  for (int i = 0; i < 3; ++i) EXPECT_EQ(q.pop()->seq, expect++);
  // Interleaved bursts force wrap-around and a ring growth with the head
  // in the middle of the storage.
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 7; ++i) {
      auto p = sized_packet(10);
      p->seq = next++;
      ASSERT_TRUE(q.push(std::move(p)));
    }
    for (int i = 0; i < 4; ++i) ASSERT_EQ(q.pop()->seq, expect++);
  }
  while (!q.empty()) ASSERT_EQ(q.pop()->seq, expect++);
  EXPECT_EQ(expect, next);
  EXPECT_EQ(q.bytes(), 0);
}

}  // namespace
}  // namespace pdq::net
