// Property test for the PDQ switch fast path: the dirty-tracked cached
// prefix array behind avail_bw() / committed_rate_sum() / the leapfrog
// check, and the incremental num_sending() aggregate, must agree
// *bit-for-bit* with a naive from-scratch recomputation over the public
// flow list — under randomized insert / update / commit / pause /
// terminate / evict sequences with simulation time advancing between
// operations (so provisional-grant windows expire under the cache).
#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "core/pdq_switch.h"
#include "net/builders.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace pdq::core {
namespace {

/// The original O(k) Algorithm-2 walk, kept verbatim as the model.
double naive_avail_bw(const PdqLinkController& ctl, const PdqConfig& cfg,
                      sim::Time now, std::size_t index) {
  const auto& list = ctl.flow_list();
  const double K = cfg.early_start ? cfg.early_start_K : 0.0;
  double X = 0.0;
  double A = 0.0;
  for (std::size_t i = 0; i < index && i < list.size(); ++i) {
    const auto& e = list[i];
    const sim::Time ertt = e.rtt > 0 ? e.rtt : cfg.default_rtt;
    const double tx_in_rtts =
        static_cast<double>(e.expected_tx) / static_cast<double>(ertt);
    if (tx_in_rtts < K && X < K) {
      X += tx_in_rtts;
    } else {
      double effective = e.rate_bps;
      if (e.granted_at >= 0 && now - e.granted_at < 2 * ertt) {
        effective = std::max(effective, e.granted_bps);
      }
      A += effective;
    }
  }
  if (A >= ctl.capacity_bps()) return 0.0;
  return ctl.capacity_bps() - A;
}

double naive_committed_sum(const PdqLinkController& ctl) {
  double committed = 0.0;
  for (const auto& e : ctl.flow_list()) committed += e.rate_bps;
  return committed;
}

int naive_num_sending(const PdqLinkController& ctl) {
  int n = 0;
  for (const auto& e : ctl.flow_list())
    if (e.sending()) ++n;
  return n;
}

class PdqPrefixPropertyTest : public ::testing::Test {
 protected:
  void install(PdqConfig cfg) {
    cfg_ = cfg;
    servers_ = net::build_single_bottleneck(topo_, 2);
    sw_ = topo_.switch_ids()[0];
    auto c = std::make_unique<PdqLinkController>(cfg);
    ctl_ = c.get();
    topo_.port_on_link(sw_, servers_.back())->set_controller(std::move(c));
  }

  net::Packet random_forward(std::mt19937_64& rng) {
    std::uniform_int_distribution<int> pct(0, 99);
    std::uniform_int_distribution<net::FlowId> flow(1, flow_universe_);
    net::Packet p;
    p.flow = flow(rng);
    const int t = pct(rng);
    p.type = t < 10   ? net::PacketType::kSyn
             : t < 85 ? net::PacketType::kData
             : t < 95 ? net::PacketType::kProbe
                      : net::PacketType::kTerm;
    // Mix nearly-complete (Early-Start-exempt) and long flows.
    std::uniform_int_distribution<sim::Time> tx(0, 3 * sim::kMillisecond);
    std::uniform_int_distribution<sim::Time> small_tx(0,
                                                      150 * sim::kMicrosecond);
    p.pdq.expected_tx = pct(rng) < 30 ? small_tx(rng) : tx(rng);
    p.pdq.rtt = pct(rng) < 20 ? 0
                              : std::uniform_int_distribution<sim::Time>(
                                    100 * sim::kMicrosecond,
                                    400 * sim::kMicrosecond)(rng);
    p.pdq.deadline = pct(rng) < 30
                         ? topo_.sim().now() + tx(rng) + sim::kMillisecond
                         : sim::kTimeInfinity;
    p.pdq.rate_bps = std::uniform_real_distribution<double>(0.0, 1e9)(rng);
    const int pb = pct(rng);
    p.pdq.pause_by = pb < 80 ? net::kInvalidNode
                     : pb < 90 ? sw_
                               : net::NodeId{12345};  // some other switch
    return p;
  }

  void verify_against_model() {
    const sim::Time now = topo_.sim().now();
    const std::size_t n = ctl_->flow_list().size();
    for (std::size_t j = 0; j <= n + 1; ++j) {
      // EXPECT_EQ: the cache must resume the exact accumulation, so the
      // doubles are identical to the last bit, not merely close.
      ASSERT_EQ(ctl_->avail_bw(j), naive_avail_bw(*ctl_, cfg_, now, j))
          << "avail_bw(" << j << ") diverged at t=" << now;
    }
    ASSERT_EQ(ctl_->committed_rate_sum(), naive_committed_sum(*ctl_));
    ASSERT_EQ(ctl_->num_sending(), naive_num_sending(*ctl_));
    // Flow ids must stay unique (the FlowId -> index map mirrors the
    // list; a stale index would surface as a duplicated or lost entry).
    auto flows = std::vector<net::FlowId>();
    for (const auto& e : ctl_->flow_list()) flows.push_back(e.flow);
    std::sort(flows.begin(), flows.end());
    ASSERT_TRUE(std::adjacent_find(flows.begin(), flows.end()) ==
                flows.end());
  }

  void run_random_ops(std::uint64_t seed, int steps) {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> pct(0, 99);
    std::uniform_int_distribution<sim::Time> gap(0, 700 * sim::kMicrosecond);
    sim::Time t = 0;
    for (int step = 0; step < steps; ++step) {
      // Gaps up to ~2 grant windows: provisional grants recorded by
      // earlier steps expire while cached prefixes still cover them.
      t += gap(rng);
      topo_.sim().schedule_at(t, [this, &rng, &pct] {
        if (pct(rng) < 70) {
          auto p = random_forward(rng);
          ctl_->on_forward(p);
        } else {
          auto p = random_forward(rng);
          p.type = pct(rng) < 85 ? net::PacketType::kAck
                                 : net::PacketType::kTermAck;
          ctl_->on_reverse(p);
        }
        verify_against_model();
      });
    }
    topo_.sim().run();
    verify_against_model();
  }

  PdqConfig cfg_;
  net::FlowId flow_universe_ = 12;
  sim::Simulator simulator_;
  net::Topology topo_{simulator_};
  std::vector<net::NodeId> servers_;
  net::NodeId sw_ = net::kInvalidNode;
  PdqLinkController* ctl_ = nullptr;
};

TEST_F(PdqPrefixPropertyTest, FullConfigMatchesNaiveModel) {
  install(PdqConfig::full());
  run_random_ops(0xC0FFEE, 600);
}

TEST_F(PdqPrefixPropertyTest, BasicConfigMatchesNaiveModel) {
  install(PdqConfig::basic());  // no Early Start: pure rate prefix
  run_random_ops(0xBEEF, 600);
}

TEST_F(PdqPrefixPropertyTest, TinyStateCapExercisesEviction) {
  PdqConfig cfg = PdqConfig::full();
  cfg.max_flows_M = 8;  // constant churn: insert/evict/overflow fallback
  install(cfg);
  flow_universe_ = 24;
  run_random_ops(0xD1CE, 800);
}

TEST_F(PdqPrefixPropertyTest, GcUnderRandomTrafficKeepsAggregatesExact) {
  PdqConfig cfg = PdqConfig::full();
  cfg.gc_timeout = 2 * sim::kMillisecond;  // aggressive GC churn
  install(cfg);
  run_random_ops(0xFEED, 600);
}

}  // namespace
}  // namespace pdq::core
