// PacedSender scaffolding: pacing, reliability, RTT estimation, resizing.
#include "net/paced_sender.h"

#include <gtest/gtest.h>

#include "net/builders.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace pdq::net {
namespace {

/// Minimal concrete sender: fixed rate from the first reverse packet.
class FixedRateSender : public PacedSender {
 public:
  FixedRateSender(AgentContext ctx, double bps)
      : PacedSender(std::move(ctx)), bps_(bps) {}

  using PacedSender::extend_tail;
  using PacedSender::shrink_tail;
  using PacedSender::unsent_tail_bytes;

 protected:
  void decorate(Packet&) override {}
  void on_reverse(const PacketPtr&) override { set_rate(bps_); }

 private:
  double bps_;
};

struct Rig {
  sim::Simulator simulator;
  Topology topo{simulator};
  std::vector<NodeId> servers;
  std::unique_ptr<FixedRateSender> sender;
  std::unique_ptr<EchoReceiver> receiver;
  bool done = false;
  FlowResult done_result;

  explicit Rig(std::int64_t size, double rate = 1e9,
               double drop = 0.0) {
    servers = build_single_bottleneck(topo, 1);
    if (drop > 0.0) {
      topo.set_link_drop_rate(topo.switch_ids()[0], servers[1], drop);
    }
    FlowSpec f;
    f.id = 1;
    f.src = servers[0];
    f.dst = servers[1];
    f.size_bytes = size;

    AgentContext rctx;
    rctx.topo = &topo;
    rctx.local = &topo.host(f.dst);
    rctx.spec = f;
    receiver = std::make_unique<EchoReceiver>(std::move(rctx));
    topo.host(f.dst).attach_receiver(f.id, receiver.get());

    AgentContext sctx;
    sctx.topo = &topo;
    sctx.local = &topo.host(f.src);
    sctx.spec = f;
    sctx.route = topo.ecmp_route(f.id, f.src, f.dst);
    sctx.on_done = [this](const FlowResult& r) {
      done = true;
      done_result = r;
    };
    sender = std::make_unique<FixedRateSender>(std::move(sctx), rate);
    topo.host(f.src).attach_sender(f.id, sender.get());
  }

  void run(sim::Time horizon = 5 * sim::kSecond) {
    simulator.schedule_at(0, [&] { sender->start(); });
    simulator.run(horizon);
  }
};

TEST(PacedSender, CompletesAndConservesBytes) {
  Rig rig(100'000);
  rig.run();
  EXPECT_TRUE(rig.done);
  EXPECT_EQ(rig.done_result.outcome, FlowOutcome::kCompleted);
  EXPECT_EQ(rig.done_result.bytes_acked, 100'000);
  EXPECT_EQ(rig.receiver->bytes_received(), 100'000);
}

TEST(PacedSender, SingleByteFlow) {
  Rig rig(1);
  rig.run();
  EXPECT_TRUE(rig.done);
  EXPECT_EQ(rig.done_result.bytes_acked, 1);
}

TEST(PacedSender, ExactlyOnePacket) {
  Rig rig(kMaxPayloadBytes);
  rig.run();
  EXPECT_TRUE(rig.done);
  // SYN + 1 data + TERM.
  EXPECT_EQ(rig.done_result.packets_sent, 3);
  EXPECT_EQ(rig.done_result.retransmissions, 0);
}

TEST(PacedSender, PacingRespectsRate) {
  // 100 KB at 100 Mbps should take ~8 ms + handshake; at 1 Gbps ~0.8 ms.
  Rig slow(100'000, 100e6);
  slow.run();
  const double slow_ms = sim::to_millis(slow.done_result.completion_time());
  Rig fast(100'000, 1e9);
  fast.run();
  const double fast_ms = sim::to_millis(fast.done_result.completion_time());
  EXPECT_GT(slow_ms, 8.0);
  EXPECT_LT(slow_ms, 10.0);
  EXPECT_LT(fast_ms, 2.0);
}

TEST(PacedSender, RecoversFromHeavyLoss) {
  Rig rig(50'000, 1e9, /*drop=*/0.2);
  rig.run(20 * sim::kSecond);
  EXPECT_TRUE(rig.done);
  EXPECT_EQ(rig.done_result.bytes_acked, 50'000);
  EXPECT_GT(rig.done_result.retransmissions, 0);
}

TEST(PacedSender, RttEstimateTracksPath) {
  Rig rig(200'000);
  rig.run();
  // Host->switch->host with 25us processing: RTT is tens of microseconds.
  EXPECT_GT(rig.sender->rtt_estimate(), 10 * sim::kMicrosecond);
  EXPECT_LT(rig.sender->rtt_estimate(), sim::kMillisecond);
}

TEST(PacedSender, ShrinkTailRemovesOnlyUnsent) {
  Rig rig(100'000);
  // Before start everything is unsent.
  EXPECT_EQ(rig.sender->unsent_tail_bytes(), 100'000);
  const auto removed = rig.sender->shrink_tail(30'000);
  EXPECT_GE(removed, 30'000);          // whole packets
  EXPECT_LE(removed, 30'000 + kMaxPayloadBytes);
  rig.run();
  EXPECT_TRUE(rig.done);
  EXPECT_EQ(rig.done_result.bytes_acked, 100'000 - removed);
  EXPECT_EQ(rig.receiver->bytes_received(), 100'000 - removed);
}

TEST(PacedSender, ExtendTailGrowsFlow) {
  Rig rig(10'000);
  EXPECT_TRUE(rig.sender->extend_tail(20'000));
  rig.run();
  EXPECT_TRUE(rig.done);
  EXPECT_EQ(rig.done_result.bytes_acked, 30'000);
  EXPECT_EQ(rig.receiver->bytes_received(), 30'000);
}

TEST(PacedSender, ShrinkEverythingUnsentBeforeStartLeavesMinimum) {
  Rig rig(10'000);
  // Shrink all but nothing was sent; flow cannot shrink to zero packets
  // below what was already transmitted (here: nothing was transmitted, so
  // everything can go -- but the flow then completes vacuously when run).
  const auto removed = rig.sender->shrink_tail(1 << 30);
  EXPECT_EQ(removed, 10'000);
  EXPECT_EQ(rig.sender->unsent_tail_bytes(), 0);
}

TEST(PacedSender, ExtendAfterCompleteFails) {
  Rig rig(1'000);
  rig.run();
  EXPECT_TRUE(rig.done);
  EXPECT_FALSE(rig.sender->extend_tail(1'000));
}

TEST(PacedSender, SynRetransmittedWhenLost) {
  // 100% loss on the forward wire means the SYN never arrives... use a
  // transiently lossy link instead: drop everything, then heal.
  Rig rig(5'000);
  rig.topo.set_link_drop_rate(rig.topo.switch_ids()[0], rig.servers[1], 1.0);
  rig.simulator.schedule_at(25 * sim::kMillisecond, [&] {
    rig.topo.set_link_drop_rate(rig.topo.switch_ids()[0], rig.servers[1], 0.0);
  });
  rig.run();
  EXPECT_TRUE(rig.done);  // only possible if the SYN was retried
}

}  // namespace
}  // namespace pdq::net
