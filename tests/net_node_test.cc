// Packet transport through nodes, ports and links: timing, queueing,
// controller hooks, loss.
#include "net/node.h"

#include <gtest/gtest.h>

#include "net/builders.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace pdq::net {
namespace {

/// Captures delivered packets at a host.
class SinkAgent : public Agent {
 public:
  void on_packet(const PacketPtr& p) override { delivered.push_back(p); }
  std::vector<PacketPtr> delivered;
};

class CountingController : public LinkController {
 public:
  void on_forward(Packet&) override { ++forwards; }
  void on_reverse(Packet&) override { ++reverses; }
  int forwards = 0;
  int reverses = 0;
};

PacketPtr make_data(FlowId flow, NodeId src, NodeId dst,
                    std::vector<NodeId> route, std::int32_t payload) {
  PacketPtr p = make_packet();
  p->flow = flow;
  p->type = PacketType::kData;
  p->src = src;
  p->dst = dst;
  p->set_route(std::move(route));
  p->payload = payload;
  p->size_bytes = payload + kHeaderBytes;
  return p;
}

class NodeTest : public ::testing::Test {
 protected:
  sim::Simulator simulator;
};

TEST_F(NodeTest, StoreAndForwardTiming) {
  Topology t(simulator);
  // Zero processing delay to isolate serialization + propagation.
  const NodeId a = t.add_host();
  const NodeId b = t.add_host();
  LinkDefaults d;
  d.rate_bps = 1e9;
  d.prop_delay = 100;  // 0.1 us
  t.add_duplex_link(a, b, d);

  SinkAgent sink;
  t.host(b).attach_receiver(7, &sink);
  auto p = make_data(7, a, b, {a, b}, 1460);
  t.host(a).send(std::move(p));
  simulator.run();
  ASSERT_EQ(sink.delivered.size(), 1u);
  // 1500 B at 1 Gbps = 12 us serialization + 0.1 us propagation.
  EXPECT_EQ(simulator.now(), 12 * sim::kMicrosecond + 100);
}

TEST_F(NodeTest, TwoHopIncludesSwitchProcessingDelay) {
  Topology t(simulator);
  auto servers = build_single_bottleneck(t, 1);
  SinkAgent sink;
  t.host(servers[1]).attach_receiver(1, &sink);
  auto p = make_data(1, servers[0], servers[1],
                     t.ecmp_path(1, servers[0], servers[1]), 1460);
  t.host(servers[0]).send(std::move(p));
  simulator.run();
  ASSERT_EQ(sink.delivered.size(), 1u);
  // Two serializations (12 us) + two props (0.1 us) + 25 us processing.
  const sim::Time expect =
      2 * (12 * sim::kMicrosecond + 100) + kDefaultProcessingDelay;
  EXPECT_EQ(simulator.now(), expect);
}

TEST_F(NodeTest, QueueSerializesBackToBackPackets) {
  Topology t(simulator);
  const NodeId a = t.add_host();
  const NodeId b = t.add_host();
  LinkDefaults d;
  d.prop_delay = 0;
  t.add_duplex_link(a, b, d);
  SinkAgent sink;
  t.host(b).attach_receiver(1, &sink);
  for (int i = 0; i < 3; ++i) {
    t.host(a).send(make_data(1, a, b, {a, b}, 1460));
  }
  simulator.run();
  EXPECT_EQ(sink.delivered.size(), 3u);
  EXPECT_EQ(simulator.now(), 3 * 12 * sim::kMicrosecond);
}

TEST_F(NodeTest, ForwardControllerSeesForwardPacketsOnly) {
  Topology t(simulator);
  auto servers = build_single_bottleneck(t, 1);
  const NodeId sw = t.switch_ids()[0];
  auto* fwd_ctl = new CountingController();
  t.port_on_link(sw, servers[1])->set_controller(
      std::unique_ptr<LinkController>(fwd_ctl));

  SinkAgent sink;
  t.host(servers[1]).attach_receiver(1, &sink);
  t.host(servers[0]).send(make_data(
      1, servers[0], servers[1], t.ecmp_path(1, servers[0], servers[1]), 100));
  simulator.run();
  EXPECT_EQ(fwd_ctl->forwards, 1);
  EXPECT_EQ(fwd_ctl->reverses, 0);
}

TEST_F(NodeTest, ReverseHitsPairedForwardPortController) {
  Topology t(simulator);
  auto servers = build_single_bottleneck(t, 1);
  const NodeId sw = t.switch_ids()[0];
  auto* fwd_ctl = new CountingController();
  t.port_on_link(sw, servers[1])->set_controller(
      std::unique_ptr<LinkController>(fwd_ctl));

  // Receiver host sends an ACK back toward servers[0]; when it arrives at
  // the switch, the controller of the switch->receiver port must see it.
  SinkAgent sink;
  t.host(servers[0]).attach_sender(1, &sink);
  PacketPtr ack = make_packet();
  ack->flow = 1;
  ack->type = PacketType::kAck;
  ack->src = servers[0];
  ack->dst = servers[0];
  ack->set_route({servers[1], sw, servers[0]});
  t.host(servers[1]).send(std::move(ack));
  simulator.run();
  EXPECT_EQ(fwd_ctl->reverses, 1);
  EXPECT_EQ(fwd_ctl->forwards, 0);
  EXPECT_EQ(sink.delivered.size(), 1u);
}

TEST_F(NodeTest, WireLossDropsPacket) {
  Topology t(simulator, /*seed=*/1);
  const NodeId a = t.add_host();
  const NodeId b = t.add_host();
  t.add_duplex_link(a, b);
  t.set_link_drop_rate(a, b, 1.0);  // lose everything
  SinkAgent sink;
  t.host(b).attach_receiver(1, &sink);
  t.host(a).send(make_data(1, a, b, {a, b}, 100));
  simulator.run();
  EXPECT_TRUE(sink.delivered.empty());
  EXPECT_EQ(t.total_wire_drops(), 1);
}

TEST_F(NodeTest, BufferOverflowCountsQueueDrop) {
  Topology t(simulator);
  const NodeId a = t.add_host();
  const NodeId b = t.add_host();
  LinkDefaults d;
  d.buffer_bytes = 3'000;  // fits two 1500B packets
  t.add_duplex_link(a, b, d);
  SinkAgent sink;
  t.host(b).attach_receiver(1, &sink);
  // First packet goes straight to the transmitter; the queue holds two
  // more; the fourth of the burst overflows... send enough to be sure.
  for (int i = 0; i < 6; ++i) t.host(a).send(make_data(1, a, b, {a, b}, 1460));
  simulator.run();
  EXPECT_GT(t.total_queue_drops(), 0);
  EXPECT_LT(sink.delivered.size(), 6u);
}

TEST_F(NodeTest, UnknownFlowIsDroppedSilently) {
  Topology t(simulator);
  const NodeId a = t.add_host();
  const NodeId b = t.add_host();
  t.add_duplex_link(a, b);
  t.host(a).send(make_data(99, a, b, {a, b}, 100));  // nobody attached
  simulator.run();  // must not crash
  SUCCEED();
}

}  // namespace
}  // namespace pdq::net
