// PacketPool unit tests: recycle-reset correctness (no stale header
// fields after reuse), pool growth accounting, and leak-free teardown
// (the ASan CI job runs this suite).
#include "net/packet_pool.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace pdq::net {
namespace {

TEST(PacketPool, AcquireGrowsThenRecycles) {
  PacketPool pool;
  EXPECT_EQ(pool.total_allocated(), 0u);
  {
    PacketPtr a = pool.acquire();
    PacketPtr b = pool.acquire();
    EXPECT_EQ(pool.total_allocated(), 2u);
    EXPECT_EQ(pool.live_count(), 2u);
    EXPECT_EQ(pool.free_count(), 0u);
  }
  EXPECT_EQ(pool.live_count(), 0u);
  EXPECT_EQ(pool.free_count(), 2u);
  // Steady state: reuse, no growth.
  for (int i = 0; i < 100; ++i) {
    PacketPtr p = pool.acquire();
    EXPECT_EQ(pool.total_allocated(), 2u) << "iteration " << i;
  }
  EXPECT_EQ(pool.total_acquires(), 102u);
}

TEST(PacketPool, RecycledPacketIsFullyReset) {
  PacketPool pool;
  Packet* raw;
  {
    PacketPtr p = pool.acquire();
    raw = p.get();
    p->flow = 99;
    p->type = PacketType::kTerm;
    p->src = 1;
    p->dst = 2;
    p->seq = 777;
    p->payload = 1460;
    p->ack = 888;
    p->size_bytes = 1500;
    p->set_route({1, 5, 2});
    p->hop = 2;
    p->sent_time = 1234;
    p->pdq.rate_bps = 1e9;
    p->pdq.pause_by = 5;
    p->rcp.rate_bps = 2e8;
    p->d3.desired_rate_bps = 3e8;
    p->d3.has_deadline = true;
    p->d3.is_request = true;
    p->d3.alloc.push_back(1.0);
    p->d3.prev_alloc.push_back(2.0);
    p->d3.alloc_idx = 1;
  }
  PacketPtr q = pool.acquire();
  ASSERT_EQ(q.get(), raw);  // same object, recycled
  EXPECT_EQ(q->flow, kInvalidFlow);
  EXPECT_EQ(q->type, PacketType::kData);
  EXPECT_EQ(q->src, kInvalidNode);
  EXPECT_EQ(q->dst, kInvalidNode);
  EXPECT_EQ(q->seq, 0);
  EXPECT_EQ(q->payload, 0);
  EXPECT_EQ(q->ack, 0);
  EXPECT_EQ(q->size_bytes, kControlBytes);
  EXPECT_EQ(q->path, nullptr);
  EXPECT_FALSE(q->reversed);
  EXPECT_EQ(q->hop, 0);
  EXPECT_EQ(q->sent_time, 0);
  EXPECT_DOUBLE_EQ(q->pdq.rate_bps, 0.0);
  EXPECT_EQ(q->pdq.pause_by, kInvalidNode);
  EXPECT_EQ(q->pdq.deadline, sim::kTimeInfinity);
  EXPECT_DOUBLE_EQ(q->rcp.rate_bps, -1.0);
  EXPECT_DOUBLE_EQ(q->d3.desired_rate_bps, 0.0);
  EXPECT_FALSE(q->d3.has_deadline);
  EXPECT_FALSE(q->d3.is_request);
  EXPECT_TRUE(q->d3.alloc.empty());
  EXPECT_TRUE(q->d3.prev_alloc.empty());
  EXPECT_EQ(q->d3.alloc_idx, 0);
}

TEST(PacketPool, RecycleReleasesSharedRouteImmediately) {
  PacketPool pool;
  RouteRef route = make_route({1, 2, 3});
  std::weak_ptr<const RoutePair> watch = route;
  {
    PacketPtr p = pool.acquire();
    p->path = route;
    route = nullptr;
    EXPECT_FALSE(watch.expired());
  }
  // Recycle must drop the RouteRef at release time, not hold it hostage
  // in the free list until the next acquire.
  EXPECT_TRUE(watch.expired());
}

TEST(PacketPool, RefcountSharesOnePacket) {
  PacketPool pool;
  PacketPtr a = pool.acquire();
  PacketPtr b = a;  // copy: same packet
  EXPECT_EQ(a.get(), b.get());
  a = nullptr;
  EXPECT_EQ(pool.live_count(), 1u);  // b still holds it
  b = nullptr;
  EXPECT_EQ(pool.live_count(), 0u);
}

TEST(PacketPool, MoveTransfersWithoutRefcountChurn) {
  PacketPool pool;
  PacketPtr a = pool.acquire();
  Packet* raw = a.get();
  PacketPtr b = std::move(a);
  EXPECT_EQ(b.get(), raw);
  EXPECT_EQ(a.get(), nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(pool.live_count(), 1u);
}

TEST(PacketPool, ValueCopiedPacketDoesNotInheritPoolIdentity) {
  PacketPool pool;
  PacketPtr p = pool.acquire();
  p->flow = 7;
  p->set_route({1, 2});
  Packet standalone = *p;  // value copy: payload only, no pool hook
  p = nullptr;
  EXPECT_EQ(pool.live_count(), 0u);  // copy did not keep the pool entry
  EXPECT_EQ(standalone.flow, 7);
  EXPECT_EQ(standalone.route().size(), 2u);
}

TEST(PacketPool, TrimReleasesIdleMemoryButKeepsLifetimeCount) {
  PacketPool pool;
  PacketPtr keep = pool.acquire();
  { std::vector<PacketPtr> burst(64, nullptr);
    for (auto& p : burst) p = pool.acquire();
  }
  EXPECT_EQ(pool.free_count(), 64u);
  EXPECT_EQ(pool.owned_count(), 65u);
  pool.trim();
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_EQ(pool.owned_count(), 1u);  // the live packet survives
  // total_allocated() is a lifetime counter: monotone across trim(), so
  // before/after deltas (run_prepared's engine counters) never
  // underflow.
  EXPECT_EQ(pool.total_allocated(), 65u);
  EXPECT_EQ(keep->size_bytes, kControlBytes);
  PacketPtr p = pool.acquire();
  EXPECT_NE(p.get(), nullptr);
  EXPECT_EQ(pool.total_allocated(), 66u);
}

TEST(PacketPool, ScopedPoolOverridesThreadLocal) {
  PacketPool& outer = PacketPool::local();
  PacketPool fresh;
  {
    PacketPool::ScopedPool scope(fresh);
    EXPECT_EQ(&PacketPool::local(), &fresh);
    PacketPtr p = make_packet();
    EXPECT_EQ(fresh.live_count(), 1u);
  }
  EXPECT_EQ(&PacketPool::local(), &outer);
  EXPECT_EQ(fresh.live_count(), 0u);
  EXPECT_EQ(fresh.total_allocated(), 1u);
}

TEST(PacketPool, ScopedPoolsNest) {
  PacketPool a, b;
  PacketPool::ScopedPool sa(a);
  {
    PacketPool::ScopedPool sb(b);
    { PacketPtr p = make_packet(); }
    EXPECT_EQ(b.total_allocated(), 1u);
  }
  { PacketPtr p = make_packet(); }
  EXPECT_EQ(a.total_allocated(), 1u);
  EXPECT_EQ(b.total_allocated(), 1u);
}

TEST(PacketPool, ThreadLocalPoolBacksMakePacket) {
  PacketPool& pool = PacketPool::local();
  const auto live_before = pool.live_count();
  {
    PacketPtr p = make_packet();
    EXPECT_EQ(pool.live_count(), live_before + 1);
  }
  EXPECT_EQ(pool.live_count(), live_before);
}

}  // namespace
}  // namespace pdq::net
