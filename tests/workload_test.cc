// Workload generators: distributions, patterns, arrival processes.
#include "workload/workload.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace pdq::workload {
namespace {

std::vector<net::NodeId> fake_servers(int n) {
  std::vector<net::NodeId> v;
  for (int i = 0; i < n; ++i) v.push_back(i + 100);
  return v;
}

TEST(Sizes, UniformRange) {
  sim::Rng rng(1);
  auto f = uniform_size(2'000, 198'000);
  for (int i = 0; i < 10'000; ++i) {
    const auto s = f(rng);
    EXPECT_GE(s, 2'000);
    EXPECT_LE(s, 198'000);
  }
}

TEST(Sizes, UniformMeanMatchesPaper) {
  // The paper's query traffic: uniform [2 KB, 198 KB] -> mean 100 KB.
  sim::Rng rng(2);
  auto f = uniform_size(2'000, 198'000);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(f(rng));
  EXPECT_NEAR(sum / n, 100'000, 1'500);
}

TEST(Sizes, ParetoTail) {
  sim::Rng rng(3);
  auto f = pareto_size(1.1, 1'000);
  std::int64_t mx = 0;
  for (int i = 0; i < 100'000; ++i) mx = std::max(mx, f(rng));
  EXPECT_GT(mx, 1'000'000);  // heavy tail reaches far
}

TEST(Sizes, Vl2MiceDominateCountsElephantsDominateBytes) {
  sim::Rng rng(4);
  auto f = vl2_size();
  int mice = 0;
  double mice_bytes = 0, total_bytes = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const auto s = f(rng);
    total_bytes += static_cast<double>(s);
    if (s < 100'000) {
      ++mice;
      mice_bytes += static_cast<double>(s);
    }
  }
  EXPECT_GT(mice, n * 3 / 4);                 // most flows are mice
  EXPECT_LT(mice_bytes / total_bytes, 0.25);  // most bytes from elephants
}

TEST(Sizes, EduShortFlowHeavy) {
  sim::Rng rng(5);
  auto f = edu_size();
  int small = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    if (f(rng) < 10'000) ++small;
  }
  EXPECT_GT(small, n / 2);
}

TEST(Deadlines, ExponentialWithFloor) {
  sim::Rng rng(6);
  auto f = exp_deadline(20 * sim::kMillisecond, 3 * sim::kMillisecond);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const auto d = f(rng);
    EXPECT_GE(d, 3 * sim::kMillisecond);
    sum += sim::to_millis(d);
  }
  // Floored exponential: mean slightly above 20 ms.
  EXPECT_NEAR(sum / n, 20.9, 1.0);
}

TEST(Patterns, AggregationTargetsOneReceiver) {
  sim::Rng rng(7);
  auto pairs = aggregation()(12, 30, rng);
  ASSERT_EQ(pairs.size(), 30u);
  for (const auto& p : pairs) {
    EXPECT_EQ(p.dst, 11);
    EXPECT_NE(p.src, 11);
  }
  // Senders are spread nearly evenly: each sender carries 2-3 flows.
  std::map<int, int> per_sender;
  for (const auto& p : pairs) ++per_sender[p.src];
  for (const auto& [s, c] : per_sender) {
    EXPECT_GE(c, 2);
    EXPECT_LE(c, 3);
  }
}

TEST(Patterns, StrideWraps) {
  sim::Rng rng(8);
  auto pairs = stride(4)(12, 12, rng);
  for (const auto& p : pairs) {
    EXPECT_EQ(p.dst, (p.src + 4) % 12);
  }
}

TEST(Patterns, StaggeredProbRespectsRackProbability) {
  sim::Rng rng(9);
  auto pairs = staggered_prob(0.7, 3)(12, 50'000, rng);
  int local = 0;
  for (const auto& p : pairs) {
    EXPECT_NE(p.src, p.dst);
    if (p.src / 3 == p.dst / 3) ++local;
  }
  EXPECT_NEAR(static_cast<double>(local) / 50'000, 0.7, 0.02);
}

TEST(Patterns, RandomPermutationIsDerangement) {
  sim::Rng rng(10);
  auto pairs = random_permutation()(16, 16, rng);
  std::set<int> dsts;
  for (const auto& p : pairs) {
    EXPECT_NE(p.src, p.dst);
    dsts.insert(p.dst);
  }
  EXPECT_EQ(dsts.size(), 16u);  // 1-to-1
}

TEST(MakeFlows, MapsToServerIdsAndAssignsMetadata) {
  sim::Rng rng(11);
  FlowSetOptions o;
  o.num_flows = 20;
  o.size = uniform_size(1'000, 2'000);
  o.deadline = exp_deadline();
  o.pattern = aggregation();
  o.first_id = 500;
  auto servers = fake_servers(8);
  auto flows = make_flows(servers, o, rng);
  ASSERT_EQ(flows.size(), 20u);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(flows[i].id, 500 + static_cast<net::FlowId>(i));
    EXPECT_EQ(flows[i].dst, 107);  // last server id
    EXPECT_GE(flows[i].src, 100);
    EXPECT_TRUE(flows[i].has_deadline());
    EXPECT_GE(flows[i].size_bytes, 1'000);
    EXPECT_LE(flows[i].size_bytes, 2'000);
    EXPECT_EQ(flows[i].start_time, 0);
  }
}

TEST(MakeFlows, PoissonArrivalsAreMonotoneWithCorrectRate) {
  sim::Rng rng(12);
  FlowSetOptions o;
  o.num_flows = 20'000;
  o.size = uniform_size(1'000, 1'000);
  o.pattern = random_permutation();
  o.arrival_rate_per_sec = 5'000;
  auto flows = make_flows(fake_servers(16), o, rng);
  sim::Time prev = 0;
  for (const auto& f : flows) {
    EXPECT_GE(f.start_time, prev);
    prev = f.start_time;
  }
  // 20k arrivals at 5k/s last about 4 seconds.
  EXPECT_NEAR(sim::to_seconds(prev), 4.0, 0.2);
}

TEST(MakeFlows, DeterministicForSameSeed) {
  FlowSetOptions o;
  o.num_flows = 50;
  o.size = vl2_size();
  o.pattern = random_permutation();
  sim::Rng a(42), b(42);
  auto fa = make_flows(fake_servers(10), o, a);
  auto fb = make_flows(fake_servers(10), o, b);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].size_bytes, fb[i].size_bytes);
    EXPECT_EQ(fa[i].src, fb[i].src);
    EXPECT_EQ(fa[i].dst, fb[i].dst);
  }
}

}  // namespace
}  // namespace pdq::workload
