// Chaos property suite: randomized fault schedules (the "chaos" preset:
// Gilbert-Elliott burst loss + control drop + link flapping + a switch
// reset) crossed with every registered stack and three topology
// families, 8 seeds each. Properties asserted for every sample:
//
//   termination   - the run ends before the horizon or the watchdog
//                   fails it; it never silently spins (a violation-free
//                   sample that hit the horizon is fine: open-loop tails
//                   may straddle it, and the auditor checked it anyway),
//   conservation  - the end-of-run audit (packet conservation vs the
//                   PacketPool live counters, stranded flows, retired-
//                   agent leaks, PDQ ghost grants) finds nothing,
//   reproducibility - SweepRunner(1) and SweepRunner(4) produce the
//                   same samples bit for bit: fault draws are keyed off
//                   (seed ^ salt) only, never off worker interleaving.
//
// Each sample's metric is a composite `violations * 10000 + completed`
// so a single matrix of doubles carries both properties through the
// thread-count comparison.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "faults/fault_spec.h"
#include "harness/audit.h"
#include "harness/experiment.h"
#include "harness/registry.h"
#include "harness/sweep.h"
#include "workload/arrivals.h"
#include "workload/workload.h"

namespace pdq::harness {
namespace {

constexpr int kTrials = 8;
constexpr double kViolationWeight = 10000.0;

ExperimentSpec chaos_spec() {
  workload::OpenLoopOptions w;
  w.num_flows = 16;
  w.arrivals = workload::ArrivalProcess::poisson(2000.0);
  w.size = workload::uniform_size(2'000, 20'000);
  w.pattern = workload::staggered_prob(0.5, 4);

  ExperimentSpec spec;
  spec.name = "chaos_property";
  spec.trials = kTrials;
  spec.base.workload = WorkloadSpec::open_loop(w, "chaos");
  spec.base.options.horizon = 20 * sim::kSecond;
  auto audit = std::make_shared<AuditSpec>();
  audit->log_to_stderr = false;  // violations are the assertion, not noise
  spec.base.options.audit = audit;
  spec.fault_plane = faults::FaultSpec::preset("chaos");

  spec.points.push_back({"ft4", [](Scenario& s) {
                           s.topology = TopologySpec::fat_tree(4);
                         }});
  spec.points.push_back({"dcell", [](Scenario& s) {
                           s.topology = TopologySpec::dcell(3, 1);
                         }});
  spec.points.push_back({"spine-leaf", [](Scenario& s) {
                           s.topology = TopologySpec::spine_leaf(2, 4, 4);
                         }});

  spec.metric = {"violationsx1e4_plus_completed", [](const RunContext& c) {
                   const auto* audit_report = c.result->audit.get();
                   const double violations =
                       audit_report == nullptr
                           ? kViolationWeight  // audit must exist under faults
                           : static_cast<double>(
                                 audit_report->violations.size());
                   return violations * kViolationWeight +
                          static_cast<double>(c.result->completed());
                 }};
  for (const std::string& stack : StackRegistry::global().names()) {
    spec.columns.push_back(stack_column(stack));
  }
  return spec;
}

TEST(ChaosProperty, EveryStackSurvivesChaosOnEveryTopology) {
  const ExperimentSpec spec = chaos_spec();
  const SweepResults r = SweepRunner(1).run(spec);
  for (std::size_t p = 0; p < r.points.size(); ++p) {
    for (std::size_t c = 0; c < r.columns.size(); ++c) {
      for (std::size_t t = 0; t < r.samples[p][c].size(); ++t) {
        const double v = r.samples[p][c][t];
        // No audit violation of any kind: the integer part below the
        // weight is the completed-flow count alone.
        EXPECT_LT(v, kViolationWeight)
            << r.points[p] << " / " << r.columns[c] << " trial " << t;
        // Chaos is survivable by construction: progress is made even if
        // the open-loop tail straddles the horizon.
        EXPECT_GT(v, 0.0) << r.points[p] << " / " << r.columns[c]
                          << " trial " << t;
      }
    }
  }
}

TEST(ChaosProperty, SamplesAreByteIdenticalAcrossSweepThreadCounts) {
  const ExperimentSpec spec = chaos_spec();
  const SweepResults serial = SweepRunner(1).run(spec);
  const SweepResults fanned = SweepRunner(4).run(spec);
  ASSERT_EQ(serial.samples.size(), fanned.samples.size());
  for (std::size_t p = 0; p < serial.samples.size(); ++p) {
    for (std::size_t c = 0; c < serial.samples[p].size(); ++c) {
      for (std::size_t t = 0; t < serial.samples[p][c].size(); ++t) {
        // Exact equality: every completed count and violation total must
        // match bit for bit regardless of worker interleaving.
        EXPECT_EQ(serial.samples[p][c][t], fanned.samples[p][c][t])
            << serial.points[p] << " / " << serial.columns[c] << " trial "
            << t;
      }
    }
  }
}

}  // namespace
}  // namespace pdq::harness
