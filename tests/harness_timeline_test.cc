// Scheduled scenario timelines: injection, link failure, determinism,
// windowed metrics — and the docs/workloads.md cookbook example.
#include "harness/timeline.h"

#include <gtest/gtest.h>

#include "test_util.h"

#include <fstream>
#include <memory>
#include <sstream>

#include "harness/experiment.h"
#include "harness/sinks.h"
#include "harness/stacks.h"
#include "harness/sweep.h"
#include "workload/arrivals.h"

namespace pdq::harness {
namespace {

using pdq::testing::slurp;

/// A small dynamic scenario: open-loop mice on a fat-tree k=4 with an
/// incast burst and a core-link failure.
Scenario small_dynamic_scenario() {
  workload::OpenLoopOptions w;
  w.num_flows = 25;
  w.arrivals = workload::ArrivalProcess::poisson(2000.0);
  w.size = workload::uniform_size(2'000, 30'000);
  w.pattern = workload::staggered_prob(0.5, 4);

  Scenario s;
  s.topology = TopologySpec::fat_tree(4);
  s.workload = WorkloadSpec::open_loop(w, "timeline-test");
  s.options.horizon = 10 * sim::kSecond;

  auto tl = std::make_shared<TimelineSpec>();
  tl->window(sim::kMillisecond);
  tl->incast(3 * sim::kMillisecond, 6, 20'000, -1, 10 * sim::kMillisecond);
  tl->link_failure(4 * sim::kMillisecond, 8 * sim::kMillisecond,
                   link_on_path(0, 12));
  s.options.timeline = std::move(tl);
  return s;
}

TEST(Timeline, DeterministicAcrossSweepRunnerThreadCounts) {
  ExperimentSpec spec;
  spec.name = "timeline_determinism";
  spec.axis = "scenario";
  spec.metric = metrics::windowed_mean_fct_ms();
  spec.trials = 2;
  spec.base = small_dynamic_scenario();
  spec.columns = {stack_column("PDQ(Full)"), stack_column("TCP")};
  spec.points.push_back({"dynamic", nullptr, nullptr});

  const SweepResults one = SweepRunner(1).run(spec);
  const SweepResults four = SweepRunner(4).run(spec);
  ASSERT_EQ(one.samples.size(), four.samples.size());
  for (std::size_t p = 0; p < one.samples.size(); ++p) {
    for (std::size_t c = 0; c < one.samples[p].size(); ++c) {
      for (std::size_t t = 0; t < one.samples[p][c].size(); ++t) {
        // Bit-identical, not approximately equal.
        EXPECT_EQ(one.samples[p][c][t], four.samples[p][c][t])
            << "point " << p << " column " << c << " trial " << t;
      }
    }
  }
  // The per-trial CSV is byte-identical too.
  const std::string dir = ::testing::TempDir();
  CsvSink(dir + "/timeline_one.csv").write(one);
  CsvSink(dir + "/timeline_four.csv").write(four);
  EXPECT_EQ(slurp(dir + "/timeline_one.csv"),
            slurp(dir + "/timeline_four.csv"));
  EXPECT_NE(one.samples[0][0][0], 0.0);  // something actually ran
}

TEST(Timeline, DctcpSpineLeafDeterministicAcrossThreadCounts) {
  // The fig15 regime: DCTCP-family stacks (multi-queue marking ports
  // installed per run) over a spine-leaf fabric with the dynamic
  // timeline. Results and the per-trial CSV must be byte-identical for
  // any SweepRunner thread count.
  Scenario s = small_dynamic_scenario();
  s.topology = TopologySpec::spine_leaf(4, 4, 4);

  StackOptions mq4;
  protocols::DctcpConfig cfg;
  cfg.mq.num_queues = 4;
  cfg.mq.ecn = net::EcnScheme::kMqEcn;
  mq4.dctcp = cfg;
  mq4.label = "DCTCP(MQ4)";

  ExperimentSpec spec;
  spec.name = "timeline_dctcp_determinism";
  spec.axis = "scenario";
  spec.metric = metrics::windowed_mean_fct_ms();
  spec.trials = 2;
  spec.base = s;
  spec.columns = {stack_column("DCTCP"),
                  stack_column("DCTCP(MQ4)", "DCTCP", mq4)};
  spec.points.push_back({"dynamic", nullptr, nullptr});

  const SweepResults one = SweepRunner(1).run(spec);
  const SweepResults four = SweepRunner(4).run(spec);
  ASSERT_EQ(one.samples.size(), four.samples.size());
  for (std::size_t c = 0; c < one.samples[0].size(); ++c) {
    for (std::size_t t = 0; t < one.samples[0][c].size(); ++t) {
      EXPECT_EQ(one.samples[0][c][t], four.samples[0][c][t])
          << "column " << c << " trial " << t;
    }
  }
  const std::string dir = ::testing::TempDir();
  CsvSink(dir + "/dctcp_one.csv").write(one);
  CsvSink(dir + "/dctcp_four.csv").write(four);
  EXPECT_EQ(slurp(dir + "/dctcp_one.csv"), slurp(dir + "/dctcp_four.csv"));
  EXPECT_NE(one.samples[0][0][0], 0.0);
}

TEST(Timeline, IncastAndLoadShiftInjectFlows) {
  std::vector<net::FlowSpec> base(1);
  base[0].id = 1;
  base[0].size_bytes = 500'000;

  auto tl = std::make_shared<TimelineSpec>();
  tl->incast(sim::kMillisecond, 5, 30'000, -1, 10 * sim::kMillisecond);
  workload::OpenLoopOptions burst;
  burst.num_flows = 4;
  burst.arrivals = workload::ArrivalProcess::deterministic(10'000.0);
  burst.size = workload::uniform_size(1'000, 1'000);
  burst.pattern = workload::stride(1);
  tl->load_shift(2 * sim::kMillisecond, burst);

  RunOptions opts;
  opts.timeline = tl;
  opts.horizon = 5 * sim::kSecond;
  TcpStack tcp;
  std::vector<net::NodeId> servers;
  const RunResult result = run_scenario(
      tcp,
      [&](net::Topology& t) {
        servers = net::build_single_rooted_tree(t, 4, 3);
        base[0].src = servers[0];
        base[0].dst = servers[1];
        return servers;
      },
      base, opts);

  ASSERT_EQ(result.flows.size(), 1u + 5u + 4u);
  // Injected ids continue after the base workload's.
  for (std::size_t i = 0; i < result.flows.size(); ++i) {
    EXPECT_EQ(result.flows[i].spec.id, static_cast<net::FlowId>(i + 1));
  }
  // The incast batch: released at the event instant, deadlines attached,
  // all into the last server.
  for (std::size_t i = 1; i <= 5; ++i) {
    const auto& f = result.flows[i].spec;
    EXPECT_EQ(f.start_time, sim::kMillisecond);
    EXPECT_EQ(f.size_bytes, 30'000);
    EXPECT_TRUE(f.has_deadline());
    EXPECT_EQ(f.dst, servers.back());  // default incast target
  }
  // The load-shift batch: deterministic arrivals 0.1 ms apart after the
  // event.
  for (std::size_t i = 6; i <= 9; ++i) {
    const auto& f = result.flows[i].spec;
    EXPECT_EQ(f.start_time,
              2 * sim::kMillisecond +
                  static_cast<sim::Time>(i - 5) * 100 * sim::kMicrosecond);
    EXPECT_EQ(f.size_bytes, 1'000);
  }
  // Everything completed (no failures in this timeline).
  EXPECT_EQ(result.completed(), result.flows.size());
}

TEST(Timeline, LinkFailureReroutesInFlightFlows) {
  for (const char* stack_name : {"PDQ(Full)", "TCP"}) {
    std::vector<net::FlowSpec> flows(1);
    flows[0].id = 1;
    flows[0].size_bytes = 2'000'000;  // ~16 ms at 1 Gbps: alive at 2 ms

    auto tl = std::make_shared<TimelineSpec>();
    // Fail the middle link of THIS flow's ECMP path (never restored):
    // completion is only possible via rerouting.
    tl->at(2 * sim::kMillisecond, "cut", [](TimelineCtx& ctx) {
      const auto path =
          ctx.topo.ecmp_path(1, ctx.servers[0], ctx.servers[12]);
      const std::size_t mid = path.size() / 2 - 1;
      ctx.set_link_state(path[mid], path[mid + 1], false);
    });

    RunOptions opts;
    opts.timeline = tl;
    opts.horizon = 5 * sim::kSecond;
    auto stack = StackRegistry::global().make(stack_name, {}, nullptr);
    ASSERT_NE(stack, nullptr);
    const RunResult result = run_scenario(
        *stack,
        [&](net::Topology& t) {
          auto servers = net::build_fat_tree(t, 4);
          flows[0].src = servers[0];
          flows[0].dst = servers[12];  // cross-pod: alternate paths exist
          return servers;
        },
        flows, opts);

    ASSERT_EQ(result.flows.size(), 1u);
    EXPECT_EQ(result.flows[0].outcome, net::FlowOutcome::kCompleted)
        << stack_name;
    EXPECT_EQ(result.flows[0].bytes_acked, 2'000'000) << stack_name;
  }
}

TEST(Timeline, LinkFailureTerminatesDisconnectedFlows) {
  // M-PDQ rides along: its sender claims the link-down event
  // (Agent::handle_link_down) and must terminate every subflow when the
  // receiver becomes unreachable — including the flow that never started.
  for (const char* stack_name : {"PDQ(Full)", "TCP", "RCP", "D3", "M-PDQ"}) {
    std::vector<net::FlowSpec> flows(2);
    flows[0].id = 1;
    flows[0].size_bytes = 2'000'000;
    // Terminated before its start event fires: must never send.
    flows[1].id = 2;
    flows[1].size_bytes = 10'000;
    flows[1].start_time = 3 * sim::kMillisecond;

    auto tl = std::make_shared<TimelineSpec>();
    // The receiver's only link goes down: no path remains.
    tl->at(2 * sim::kMillisecond, "cut", [](TimelineCtx& ctx) {
      const net::NodeId dst = ctx.servers.back();
      const net::NodeId sw =
          ctx.topo.host(dst).ports().front()->link().to;
      ctx.set_link_state(dst, sw, false);
    });

    RunOptions opts;
    opts.timeline = tl;
    opts.horizon = 5 * sim::kSecond;
    auto stack = StackRegistry::global().make(stack_name, {}, nullptr);
    ASSERT_NE(stack, nullptr);
    const RunResult result = run_scenario(
        *stack,
        [&](net::Topology& t) {
          auto servers = net::build_single_bottleneck(t, 2);
          flows[0].src = servers[0];
          flows[0].dst = servers.back();
          flows[1].src = servers[1];
          flows[1].dst = servers.back();
          return servers;
        },
        flows, opts);

    ASSERT_EQ(result.flows.size(), 2u);
    for (const auto& f : result.flows) {
      EXPECT_EQ(f.outcome, net::FlowOutcome::kTerminated) << stack_name;
      // Termination is prompt (at the cut), not a horizon timeout.
      EXPECT_EQ(f.finish_time, 2 * sim::kMillisecond) << stack_name;
    }
    // The not-yet-started flow stayed silent after termination.
    EXPECT_EQ(result.flows[1].packets_sent, 0) << stack_name;
  }
}

/// Same SplitMix64 finalizer as mpdq.cc — replicated so the test can
/// predict which disjoint path each subflow is pinned to.
std::uint64_t mpdq_mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

TEST(Timeline, MpdqLinkFailureReroutesSubflowsToCompletion) {
  // BCube(2,3): servers have multiple NICs, so the disjoint-path set is
  // genuinely multipath. Cut the middle link of the exact path subflow 0
  // is pinned to (the construction hash is deterministic, replicated
  // here); MpdqSender::handle_link_down must re-pin the affected
  // subflows onto the surviving paths and the flow must still deliver
  // every byte — no reliance on the generic parent-route reroute, which
  // is meaningless for subflows.
  std::vector<net::FlowSpec> flows(1);
  flows[0].id = 1;
  flows[0].size_bytes = 4'000'000;  // ~32 ms at 1 Gbps: alive at 2 ms

  auto tl = std::make_shared<TimelineSpec>();
  tl->at(2 * sim::kMillisecond, "cut subflow-0 path", [](TimelineCtx& ctx) {
    const auto& paths =
        ctx.topo.disjoint_paths(ctx.servers[0], ctx.servers.back());
    ASSERT_GT(paths.size(), 1u) << "scenario needs real path diversity";
    const auto& path =
        paths[mpdq_mix64(1 * 1315423911ULL + 0) % paths.size()];
    const std::size_t mid = path.size() / 2 - 1;
    ctx.set_link_state(path[mid], path[mid + 1], false);
  });

  RunOptions opts;
  opts.timeline = tl;
  opts.horizon = 5 * sim::kSecond;
  auto stack = StackRegistry::global().make("M-PDQ", {}, nullptr);
  ASSERT_NE(stack, nullptr);
  const RunResult result = run_scenario(
      *stack,
      [&](net::Topology& t) {
        auto servers = net::build_bcube(t, 2, 3);
        flows[0].src = servers.front();
        flows[0].dst = servers.back();
        return servers;
      },
      flows, opts);

  ASSERT_EQ(result.flows.size(), 1u);
  EXPECT_EQ(result.flows[0].outcome, net::FlowOutcome::kCompleted);
  EXPECT_EQ(result.flows[0].bytes_acked, 4'000'000);
}

TEST(Timeline, MpdqDeterministicAcrossThreadCountsUnderChurn) {
  // The PR-5 gap test, closed: M-PDQ through the full dynamic scenario
  // (incast + link failure) must be bit-identical for any SweepRunner
  // thread count, like every other stack.
  ExperimentSpec spec;
  spec.name = "timeline_mpdq_determinism";
  spec.axis = "scenario";
  spec.metric = metrics::windowed_mean_fct_ms();
  spec.trials = 2;
  spec.base = small_dynamic_scenario();
  spec.columns = {stack_column("M-PDQ")};
  spec.points.push_back({"dynamic", nullptr, nullptr});

  const SweepResults one = SweepRunner(1).run(spec);
  const SweepResults four = SweepRunner(4).run(spec);
  for (std::size_t c = 0; c < one.samples[0].size(); ++c) {
    for (std::size_t t = 0; t < one.samples[0][c].size(); ++t) {
      EXPECT_EQ(one.samples[0][c][t], four.samples[0][c][t])
          << "column " << c << " trial " << t;
    }
  }
  EXPECT_NE(one.samples[0][0][0], 0.0);
}

TEST(Timeline, InjectionWhileDisconnectedIsStillbornTerminated) {
  std::vector<net::FlowSpec> flows(1);
  flows[0].id = 1;
  flows[0].size_bytes = 10'000;

  auto tl = std::make_shared<TimelineSpec>();
  tl->at(sim::kMillisecond, "cut", [](TimelineCtx& ctx) {
    const net::NodeId dst = ctx.servers.back();
    ctx.set_link_state(dst, ctx.topo.host(dst).ports().front()->link().to,
                       false);
  });
  tl->incast(2 * sim::kMillisecond, 2, 5'000);  // into the cut-off server

  RunOptions opts;
  opts.timeline = tl;
  opts.horizon = sim::kSecond;
  TcpStack tcp;
  const RunResult result = run_scenario(
      tcp,
      [&](net::Topology& t) {
        auto servers = net::build_single_bottleneck(t, 2);
        flows[0].src = servers[0];
        flows[0].dst = servers[1];  // NOT the cut-off receiver
        return servers;
      },
      flows, opts);

  ASSERT_EQ(result.flows.size(), 3u);
  EXPECT_EQ(result.flows[0].outcome, net::FlowOutcome::kCompleted);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(result.flows[i].outcome, net::FlowOutcome::kTerminated);
    EXPECT_EQ(result.flows[i].finish_time, 2 * sim::kMillisecond);
  }
}

TEST(Timeline, WindowedMetricsTrimToMeasurementWindow) {
  // Synthetic results: no simulation needed — the metrics read only the
  // RunContext.
  RunResult result;
  auto add = [&](sim::Time start, sim::Time fct, std::int64_t bytes,
                 sim::Time deadline, net::FlowOutcome outcome) {
    net::FlowResult f;
    f.spec.id = static_cast<net::FlowId>(result.flows.size() + 1);
    f.spec.start_time = start;
    f.spec.size_bytes = bytes;
    f.spec.deadline = deadline;
    f.outcome = outcome;
    f.finish_time = outcome == net::FlowOutcome::kPending
                        ? sim::kTimeInfinity
                        : start + fct;
    f.bytes_acked = bytes;
    result.flows.push_back(f);
  };
  using net::FlowOutcome;
  // Before the window: ignored by every windowed metric.
  add(0, 10 * sim::kMillisecond, 1'000'000, sim::kTimeInfinity,
      FlowOutcome::kCompleted);
  // In window: a mouse meeting its deadline and an elephant missing it.
  add(20 * sim::kMillisecond, 4 * sim::kMillisecond, 50'000,
      8 * sim::kMillisecond, FlowOutcome::kCompleted);
  add(30 * sim::kMillisecond, 40 * sim::kMillisecond, 5'000'000,
      10 * sim::kMillisecond, FlowOutcome::kCompleted);
  // After measure_end: ignored.
  add(200 * sim::kMillisecond, sim::kMillisecond, 1'000, sim::kTimeInfinity,
      FlowOutcome::kCompleted);
  result.end_time = 300 * sim::kMillisecond;

  Scenario scenario;
  auto tl = std::make_shared<TimelineSpec>();
  tl->window(10 * sim::kMillisecond, 100 * sim::kMillisecond);
  scenario.options.timeline = tl;

  RunContext ctx;
  ctx.result = &result;
  ctx.scenario = &scenario;

  EXPECT_DOUBLE_EQ(metrics::windowed_mean_fct_ms().fn(ctx), (4.0 + 40.0) / 2);
  EXPECT_DOUBLE_EQ(metrics::windowed_p99_fct_ms().fn(ctx), 40.0);
  EXPECT_DOUBLE_EQ(metrics::windowed_mean_fct_ms(0, 100'000).fn(ctx), 4.0);
  EXPECT_DOUBLE_EQ(metrics::windowed_mean_fct_ms(100'000).fn(ctx), 40.0);
  // 50% of in-window deadline flows missed.
  EXPECT_DOUBLE_EQ(metrics::deadline_miss_percent().fn(ctx), 50.0);
  // Goodput: in-window acked bytes over [warmup, last in-window
  // finish) = [10 ms, 70 ms).
  const double expect_gbps =
      (50'000.0 + 5'000'000.0) * 8.0 / 0.06 / 1e9;
  EXPECT_DOUBLE_EQ(metrics::goodput_gbps().fn(ctx), expect_gbps);

  // No timeline: the window is the whole run.
  scenario.options.timeline = nullptr;
  EXPECT_DOUBLE_EQ(metrics::windowed_mean_fct_ms().fn(ctx),
                   (10.0 + 4.0 + 40.0 + 1.0) / 4);
}

TEST(Timeline, NoTimelineMatchesLegacyRunExactly) {
  // A scenario with a null timeline must produce bit-identical results
  // to the same scenario run before timelines existed; here we pin that
  // the empty-timeline *object* is also inert (events = {}, window only).
  AggregationSpec agg;
  agg.num_flows = 5;
  Scenario base = aggregation_scenario(agg);

  const auto run_with = [&](std::shared_ptr<const TimelineSpec> tl) {
    Scenario s = base;
    s.options.timeline = std::move(tl);
    return SweepRunner::run_sample(s, "PDQ(Full)", {}, 1000);
  };
  const auto plain = run_with(nullptr);
  auto window_only = std::make_shared<TimelineSpec>();
  window_only->window(0, sim::kTimeInfinity);
  const auto windowed = run_with(window_only);

  ASSERT_EQ(plain.result.flows.size(), windowed.result.flows.size());
  for (std::size_t i = 0; i < plain.result.flows.size(); ++i) {
    EXPECT_EQ(plain.result.flows[i].finish_time,
              windowed.result.flows[i].finish_time);
  }
  EXPECT_EQ(plain.result.engine.events_executed,
            windowed.result.engine.events_executed);
  EXPECT_EQ(plain.result.engine.packet_allocs,
            windowed.result.engine.packet_allocs);
}

// ---------------------------------------------------------------------------
// The docs/workloads.md cookbook example, compiled verbatim (keep in
// sync with the "add your own scenario in 30 lines" section).
// ---------------------------------------------------------------------------

TEST(Timeline, CookbookExample) {
  // -- begin docs/workloads.md example --
  workload::OpenLoopOptions w;
  w.num_flows = 40;
  const auto cdf = workload::EmpiricalCdf::web_search();
  w.arrivals = workload::ArrivalProcess::for_load(0.4, cdf.mean_bytes());
  w.size = cdf.sampler();
  w.pattern = workload::random_permutation();

  Scenario s;
  s.topology = TopologySpec::fat_tree(4);
  s.workload = WorkloadSpec::open_loop(w, "cookbook");
  s.options.horizon = 30 * sim::kSecond;

  auto tl = std::make_shared<TimelineSpec>();
  tl->window(10 * sim::kMillisecond);
  tl->incast(50 * sim::kMillisecond, 6, 30'000, -1, 10 * sim::kMillisecond);
  tl->link_failure(80 * sim::kMillisecond, 150 * sim::kMillisecond,
                   link_on_path(0, 12));
  s.options.timeline = std::move(tl);

  ExperimentSpec spec;
  spec.name = "cookbook_incast_failure";
  spec.axis = "scenario";
  spec.metric = metrics::windowed_mean_fct_ms();
  spec.base = s;
  spec.columns = {stack_column("PDQ(Full)"), stack_column("TCP")};
  spec.points.push_back({"dynamic", nullptr, nullptr});

  const SweepResults results = SweepRunner().run(spec);
  // -- end docs/workloads.md example --

  ASSERT_EQ(results.columns.size(), 2u);
  ASSERT_EQ(results.points.size(), 1u);
  EXPECT_GT(results.mean(0, 0), 0.0);  // PDQ(Full)
  EXPECT_GT(results.mean(0, 1), 0.0);  // TCP
}

}  // namespace
}  // namespace pdq::harness
