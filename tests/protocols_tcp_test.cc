// TCP Reno baseline: window dynamics, loss recovery, incast behaviour.
#include "protocols/tcp.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace pdq::protocols {
namespace {

using pdq::testing::run_single_bottleneck;

TEST(Tcp, SingleFlowCompletes) {
  harness::TcpStack stack;
  auto r = run_single_bottleneck(stack, 1, 1'000'000);
  ASSERT_EQ(r.completed(), 1u);
  // Slow start costs a few RTTs; still well under 2x raw time.
  EXPECT_LT(r.mean_fct_ms(), 16.0);
}

TEST(Tcp, TinyFlowFinishesInFewRtts) {
  harness::TcpStack stack;
  auto r = run_single_bottleneck(stack, 1, 2'920);  // 2 segments
  ASSERT_EQ(r.completed(), 1u);
  EXPECT_LT(r.mean_fct_ms(), 1.0);
}

TEST(Tcp, ByteConservation) {
  harness::TcpStack stack;
  auto r = run_single_bottleneck(stack, 3, 777'777);
  ASSERT_EQ(r.completed(), 3u);
  for (const auto& f : r.flows) EXPECT_EQ(f.bytes_acked, 777'777);
}

TEST(Tcp, SharesBandwidthRoughlyFairly) {
  harness::TcpStack stack;
  auto r = run_single_bottleneck(stack, 4, 2'000'000);
  ASSERT_EQ(r.completed(), 4u);
  // All four finish within ~75% of each other (TCP fairness is rough).
  EXPECT_LT(r.max_fct_ms(), 2.0 * r.mean_fct_ms());
}

TEST(Tcp, RecoversFromWireLoss) {
  harness::TcpStack stack;
  harness::RunOptions opts;
  opts.horizon = 30 * sim::kSecond;
  opts.watch_link = std::make_pair(net::NodeId{0}, net::NodeId{2});
  opts.watch_link_drop_rate = 0.01;
  auto r = run_single_bottleneck(stack, 1, 1'000'000, sim::kTimeInfinity,
                                 opts);
  ASSERT_EQ(r.completed(), 1u);
  EXPECT_GT(r.flows[0].retransmissions, 0);
  EXPECT_EQ(r.flows[0].bytes_acked, 1'000'000);
}

TEST(Tcp, SurvivesHeavyLoss) {
  harness::TcpStack stack;
  harness::RunOptions opts;
  opts.horizon = 60 * sim::kSecond;
  opts.watch_link = std::make_pair(net::NodeId{0}, net::NodeId{2});
  opts.watch_link_drop_rate = 0.05;
  auto r = run_single_bottleneck(stack, 1, 300'000, sim::kTimeInfinity, opts);
  EXPECT_EQ(r.completed(), 1u);
}

TEST(Tcp, IncastDegradesShortFlowLatency) {
  // Many synchronized senders into one receiver: some flows suffer
  // timeouts; mean FCT is far above the raw serial time. (The incast
  // problem PDQ's pausing avoids.)
  harness::TcpStack tcp;
  auto rt = run_single_bottleneck(tcp, 32, 50'000);
  EXPECT_EQ(rt.completed(), 32u);
  harness::PdqStack pdq;
  auto rp = run_single_bottleneck(pdq, 32, 50'000);
  EXPECT_EQ(rp.completed(), 32u);
  EXPECT_LT(rp.mean_fct_ms(), rt.mean_fct_ms() * 1.05);
}

TEST(Tcp, SmallRtoMinBeatsLargeUnderIncast) {
  // The paper tunes RTO_min down per [18]; verify the tuning matters.
  TcpConfig small;
  small.rto_min = sim::kMillisecond;
  TcpConfig large;
  large.rto_min = 200 * sim::kMillisecond;
  harness::TcpStack fast(small);
  harness::TcpStack slow(large);
  harness::RunOptions opts;
  opts.horizon = 60 * sim::kSecond;
  // Small buffer to force incast drops.
  std::vector<net::FlowSpec> flows;
  for (int i = 0; i < 24; ++i) {
    net::FlowSpec f;
    f.id = i + 1;
    f.size_bytes = 100'000;
    flows.push_back(f);
  }
  auto build = [&](net::Topology& t) {
    net::LinkDefaults d;
    d.buffer_bytes = 64 << 10;  // 64 KB: classic incast setting
    auto servers = net::build_single_bottleneck(t, 24, d);
    for (std::size_t i = 0; i < flows.size(); ++i) {
      flows[i].src = servers[i];
      flows[i].dst = servers.back();
    }
    return servers;
  };
  auto flows2 = flows;
  auto rf = harness::run_scenario(fast, build, flows, opts);
  auto build2 = [&](net::Topology& t) {
    net::LinkDefaults d;
    d.buffer_bytes = 64 << 10;
    auto servers = net::build_single_bottleneck(t, 24, d);
    for (std::size_t i = 0; i < flows2.size(); ++i) {
      flows2[i].src = servers[i];
      flows2[i].dst = servers.back();
    }
    return servers;
  };
  auto rs = harness::run_scenario(slow, build2, flows2, opts);
  EXPECT_EQ(rf.completed(), 24u);
  EXPECT_EQ(rs.completed(), 24u);
  EXPECT_LT(rf.mean_fct_ms(), rs.mean_fct_ms());
}

TEST(Tcp, SlowStartDoublesWindow) {
  // Unit-level: feed a TcpSender acks and watch cwnd.
  sim::Simulator simulator;
  net::Topology topo(simulator);
  auto servers = net::build_single_bottleneck(topo, 1);
  net::FlowSpec f;
  f.id = 1;
  f.src = servers[0];
  f.dst = servers[1];
  f.size_bytes = 1'000'000;
  net::AgentContext ctx;
  ctx.topo = &topo;
  ctx.local = &topo.host(f.src);
  ctx.spec = f;
  ctx.route = topo.ecmp_route(1, f.src, f.dst);
  TcpConfig cfg;
  TcpSender snd(std::move(ctx), cfg);
  EXPECT_DOUBLE_EQ(snd.cwnd_pkts(), cfg.initial_cwnd_pkts);
  snd.start();
  // Ack the first two segments one by one: +1 cwnd per ack in slow start.
  for (int i = 1; i <= 2; ++i) {
    auto ack = net::make_packet();
    ack->flow = 1;
    ack->type = net::PacketType::kAck;
    ack->seq = (i - 1) * net::kMaxPayloadBytes;
    ack->ack = i * net::kMaxPayloadBytes;
    ack->sent_time = 0;
    snd.on_packet(ack);
  }
  EXPECT_DOUBLE_EQ(snd.cwnd_pkts(), cfg.initial_cwnd_pkts + 2);
}

}  // namespace
}  // namespace pdq::protocols
